// Chaos resilience — QoS retention under injected faults, scrub-on versus
// scrub-off (robustness experiment; methodological, not a paper table).
//
// The Fig. 4 switch (8 GB flows with reserved shares onto one output, plus
// a small GL heartbeat under a GL reservation) runs under a sweep of
// single-event-upset rates and under a hard stuck-at bitline lane. For each
// fault level the bench reports, with state scrubbing off and on:
//
//   * min GB share ratio: worst-case accepted/entitled over the GB flows
//     (entitled = reserved fraction of the deliverable 8/9 ceiling) — the
//     bandwidth-guarantee retention headline,
//   * GL p95/max latency — the latency-guarantee retention headline,
//   * faults injected, scrub repairs, quarantined lanes,
//   * detection latency: cycles from each injected upset to the next scrub
//     repair on the same output (mean/max over attributed faults). With a
//     pass every `kScrubInterval` cycles the max stays within one interval.
//
// `--quick` shrinks the sweep and the windows (CI smoke); `--csv` and
// `--json[=PATH]` behave as in every bench (see bench/common.hpp).
#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/scrubber.hpp"
#include "obs/event.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

// 0.35+0.20+0.10+0.10+4*0.05 = 0.95 GB, plus the 0.05 GL reservation.
const std::vector<double> kRates = {0.35, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};
constexpr std::uint32_t kPacketLen = 8;
constexpr Cycle kScrubInterval = 256;
constexpr double kDeliverable = 8.0 / 9.0;  // Fig. 4 arbitration ceiling

traffic::Workload workload() {
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, kRates[i], kPacketLen, 0.9));
  }
  w.add_flow(bench::make_gl_flow(7, 0, 1, 0.005));
  w.set_gl_reservation(0, 0.05, 1);
  return w;
}

struct RunResult {
  double min_gb_ratio = 0.0;
  double gl_p95 = 0.0;
  double gl_max = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t repairs = 0;
  std::uint32_t quarantined = 0;
  double mean_detect = 0.0;
  Cycle max_detect = 0;
};

/// Cycles from injection to detection, measured per scrub repair: the
/// corruption a pass repairs must have been injected after the previous
/// pass (an earlier upset would have been repaired — or laundered by a
/// legitimate write — by then), so each repair is attributed to the most
/// recent preceding fault on the same output. Outages are excluded
/// (nothing to scrub). The max stays within one scrub interval.
void detection_latency(const std::vector<obs::Event>& events, RunResult& r) {
  double sum = 0.0;
  std::uint64_t matched = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& rep = events[i];
    if (rep.kind != obs::EventKind::ScrubRepair) continue;
    for (std::size_t j = i; j-- > 0;) {
      const auto& f = events[j];
      if (f.kind != obs::EventKind::FaultInjected || f.output != rep.output ||
          f.arg0 == obs::kTargetPortKill) {
        continue;
      }
      const Cycle gap = rep.cycle - f.cycle;
      sum += static_cast<double>(gap);
      r.max_detect = std::max(r.max_detect, gap);
      ++matched;
      break;
    }
  }
  if (matched > 0) r.mean_detect = sum / static_cast<double>(matched);
}

RunResult run_one(const fault::FaultPlan& plan, bool scrub, Cycle warmup,
                  Cycle measure, bool attribute_detect = true) {
  auto config = bench::paper_switch_config();
  sw::CrossbarSwitch sim(config, workload());

  fault::FaultInjector injector(plan);
  fault::StateScrubber scrubber(kScrubInterval);
  obs::SwitchProbe probe(config.radix);
  obs::CollectSink sink;
  obs::Tracer tracer(sink);

  const bool faulted = !plan.empty();
  if (faulted) sim.attach_fault_injector(&injector);
  if (scrub) {
    sim.attach_scrubber(&scrubber);
    probe.set_tracer(&tracer);
    sim.attach_probe(&probe);
  }

  sim.warmup(warmup);
  sim.measure(measure);
  const auto res = sw::summarize(sim);

  RunResult r;
  r.min_gb_ratio = 1e9;
  for (const auto& f : res.flows) {
    if (f.cls == TrafficClass::GuaranteedBandwidth) {
      const double entitled = f.reserved_rate * kDeliverable;
      r.min_gb_ratio = std::min(r.min_gb_ratio, f.accepted_rate / entitled);
    } else if (f.cls == TrafficClass::GuaranteedLatency) {
      r.gl_p95 = f.p95_latency;
      r.gl_max = f.max_latency;
    }
  }
  r.faults = injector.log().size();
  r.repairs = scrubber.repairs();
  r.quarantined = static_cast<std::uint32_t>(
      std::popcount(sim.qos_arbiter(0).quarantined_lanes()));
  if (scrub && attribute_detect) detection_latency(sink.events(), r);
  return r;
}

void add_row(stats::Table& t, const std::string& fault,
             const std::string& scrub, const RunResult& r) {
  t.row()
      .cell(fault)
      .cell(scrub)
      .cell(r.faults)
      .cell(r.repairs)
      .cell(static_cast<std::uint64_t>(r.quarantined))
      .cell(r.min_gb_ratio, 3)
      .cell(r.gl_p95, 1)
      .cell(r.gl_max, 0)
      .cell(r.mean_detect, 1)
      .cell(static_cast<std::uint64_t>(r.max_detect));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("chaos_resilience", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const Cycle warmup = quick ? 1000 : 3000;
  const Cycle measure = quick ? 10000 : 50000;

  std::vector<double> rates = {0.0, 1e-4, 1e-3, 5e-3, 1e-2};
  if (quick) rates = {0.0, 1e-3, 1e-2};

  stats::Table t(
      "QoS retention vs single-event-upset rate (scrub interval " +
      std::to_string(kScrubInterval) +
      " cycles; ratio = accepted/entitled, min over GB flows; detect in "
      "cycles)");
  t.header({"bitflip_rate", "scrub", "faults", "repairs", "quarantined",
            "min_gb_ratio", "gl_p95", "gl_max", "mean_detect", "max_detect"});
  RunResult worst_off, worst_on;
  for (const double rate : rates) {
    fault::FaultPlan plan;
    plan.seed = 0xc7a05;
    plan.bitflip_rate = rate;
    const RunResult off = run_one(plan, /*scrub=*/false, warmup, measure);
    const RunResult on = run_one(plan, /*scrub=*/true, warmup, measure);
    add_row(t, std::to_string(rate), "off", off);
    add_row(t, std::to_string(rate), "on", on);
    if (rate == rates.back()) {
      worst_off = off;
      worst_on = on;
    }
  }
  report.table(t);

  stats::Table s(
      "QoS retention with one GB bitline lane stuck at 1 (hard fault; "
      "scrub-on quarantines the lane; detect columns are per-upset and do "
      "not apply to continuous forcing)");
  s.header({"fault", "scrub", "faults", "repairs", "quarantined",
            "min_gb_ratio", "gl_p95", "gl_max", "mean_detect", "max_detect"});
  {
    fault::FaultPlan plan;
    plan.seed = 0xc7a05;
    plan.stuck_lanes.push_back(
        {.output = 0, .lane = 5, .stuck_high = true, .at = 0});
    add_row(s, "stuck_lane", "off",
            run_one(plan, /*scrub=*/false, warmup, measure,
                    /*attribute_detect=*/false));
    add_row(s, "stuck_lane", "on",
            run_one(plan, /*scrub=*/true, warmup, measure,
                    /*attribute_detect=*/false));
  }
  report.table(s);

  report.metric("min_gb_ratio_scrub_off", worst_off.min_gb_ratio);
  report.metric("min_gb_ratio_scrub_on", worst_on.min_gb_ratio);
  report.metric("max_detect_cycles", static_cast<double>(worst_on.max_detect));
  report.metric("scrub_interval", static_cast<double>(kScrubInterval));

  if (!report.csv()) {
    std::cout << "\nheadline: at bitflip rate " << rates.back()
              << ", min GB share ratio " << worst_off.min_gb_ratio
              << " (scrub off) vs " << worst_on.min_gb_ratio
              << " (scrub on); worst detection latency "
              << worst_on.max_detect << " cycles against a scrub interval of "
              << kScrubInterval << "\n";
  }
  return 0;
}
