// Extension ablation — buffer depth.
//
// Eq. (1) says the GL bound scales linearly with the GL buffer depth b:
// deeper buffers admit bigger bursts but cost worst-case latency. And GB
// input buffering sets how much backlog can sit at the switch: too shallow
// and arbitration slots go begging under bursty arrivals; deeper only adds
// queueing latency once the channel saturates. Both trade-offs, measured.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/gl_bound.hpp"
#include "stats/table.hpp"
#include "switch/crossbar.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

void gl_depth_sweep(bench::BenchReport& report) {
  stats::Table t("GL buffer depth b vs Eq. (1) bound and measured worst "
                 "wait (4 compliant GL senders, saturated GB background)");
  t.header({"b_flits", "eq1_bound", "measured_max_wait", "mean_wait"});
  for (std::uint32_t b : {2u, 4u, 8u, 16u}) {
    traffic::Workload w(8);
    for (InputId i = 4; i < 8; ++i) {
      w.add_flow(bench::make_gb_flow(i, 0, 0.15, 8, 1.0));
    }
    std::vector<FlowId> gl;
    for (InputId i = 0; i < 4; ++i) {
      gl.push_back(w.add_flow(bench::make_gl_flow(i, 0, 2, 0.012)));
    }
    w.set_gl_reservation(0, 0.25, 2);
    auto config = bench::paper_switch_config();
    config.buffers.gl_flits = b;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(2000);
    sim.measure(150000);
    double max_wait = 0.0, sum = 0.0;
    std::uint64_t n = 0;
    for (FlowId f : gl) {
      const auto& s = sim.wait().flow_summary(f);
      if (!s.count()) continue;
      max_wait = std::max(max_wait, s.max());
      sum += s.sum();
      n += s.count();
    }
    const double bound = qosmath::gl_wait_bound(
        {.l_max = 8, .l_min = 2, .n_gl = 4, .buffer_flits = b});
    t.row()
        .cell(static_cast<std::uint64_t>(b))
        .cell(bound, 1)
        .cell(max_wait, 1)
        .cell(n ? sum / static_cast<double>(n) : 0.0, 2);
  }
  report.table(t);
}

void gb_depth_sweep(bench::BenchReport& report) {
  stats::Table t("GB crosspoint-buffer depth vs throughput and latency "
                 "(Fig. 4 workload, bursty on/off injection at saturation)");
  t.header({"gb_flits_per_out", "total_accepted", "mean_latency",
            "p95_latency_40pct_flow"});
  const std::vector<double> rates = {0.40, 0.20, 0.10, 0.10,
                                     0.05, 0.05, 0.05, 0.05};
  for (std::uint32_t depth : {8u, 16u, 32u, 64u}) {
    traffic::Workload w(8);
    for (InputId i = 0; i < 8; ++i) {
      auto f = bench::make_gb_flow(i, 0, rates[i], 8, rates[i] * 1.5,
                                   traffic::InjectKind::OnOff);
      f.mean_on_cycles = 100.0;
      f.mean_off_cycles = 100.0 * (0.8 / (rates[i] * 1.5) - 1.0);
      w.add_flow(f);
    }
    auto config = bench::paper_switch_config();
    config.buffers.gb_flits_per_output = depth;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(5000);
    sim.measure(150000);
    double total = 0.0, lat = 0.0;
    for (FlowId f = 0; f < 8; ++f) {
      total += sim.throughput().rate(f);
      lat += sim.latency().flow_summary(f).mean();
    }
    t.row()
        .cell(static_cast<std::uint64_t>(depth))
        .cell(total, 3)
        .cell(lat / 8.0, 1)
        .cell(sim.latency().flow_histogram(0).percentile(0.95), 1);
  }
  report.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_buffers", argc, argv);
  std::cout << "Extension ablation: buffer depths (Table 1 budgets 4 flits "
               "per class; Fig. 4 used 16)\n\n";
  gl_depth_sweep(report);
  gb_depth_sweep(report);
  std::cout << "Deeper GL buffers raise the Eq. (1) bound linearly; deeper "
               "GB buffers absorb burstiness (throughput) until the channel "
               "saturates, after which they only add queueing latency.\n";
  return 0;
}
