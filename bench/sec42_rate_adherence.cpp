// §4.2 — "We simulated 20 combinations of reserved rates and a variety of
// packet sizes and verified that in each case SSVC is able to give flows
// their requested rates" / "All three methods were able to provide bandwidth
// to flows on average within 2% of their reserved rates" (§4.3).
//
// 20 random admissible allocation vectors x packet sizes {1,2,4,8,16}, all
// flows saturated; reports the worst relative shortfall of any flow against
// its (quantised) reserved share of the delivered total.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/vtick_analysis.hpp"
#include "sim/rng.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

std::vector<double> random_rates(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  std::vector<double> r(8);
  double sum = 0.0;
  for (auto& v : r) {
    v = 0.03 + rng.uniform();
    sum += v;
  }
  for (auto& v : r) v = v / sum * 0.9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("sec42_rate_adherence", argc, argv);
  std::cout << "Sec. 4.2 reproduction: rate adherence over 20 random "
               "allocation vectors x packet sizes\n\n";

  stats::Table t("Worst per-flow shortfall vs quantised reservation "
                 "(negative = surplus), % of entitlement");
  t.header({"combo", "len1", "len2", "len4", "len8", "len16"});

  double global_worst = 0.0;
  for (int combo = 0; combo < 20; ++combo) {
    const auto rates = random_rates(static_cast<std::uint64_t>(combo));
    t.row().cell(combo);
    for (std::uint32_t len : {1u, 2u, 4u, 8u, 16u}) {
      traffic::Workload w(8);
      for (InputId i = 0; i < 8; ++i) {
        w.add_flow(bench::make_gb_flow(i, 0, rates[i], len, 0.9));
      }
      auto config = bench::paper_switch_config();
      config.ssvc.lsb_bits = 6;  // rates down to ~0.5% need Vtick range
      config.seed = static_cast<std::uint64_t>(combo) * 31 + 7;
      const auto r = sw::run_experiment(config, std::move(w), 5000, 60000);
      double worst = -1e9;
      for (std::size_t i = 0; i < 8; ++i) {
        const double effective =
            qosmath::vtick_error(config.ssvc, rates[i], len).effective_rate;
        const double entitled = effective * r.total_accepted_rate;
        const double shortfall =
            (entitled - r.flows[i].accepted_rate) / entitled * 100.0;
        worst = std::max(worst, shortfall);
      }
      global_worst = std::max(global_worst, worst);
      t.cell(worst, 1);
    }
  }
  report.table(t);
  report.metric("worst_shortfall_pct", global_worst);
  std::cout << "Worst shortfall over all 100 runs: " << global_worst
            << " % of entitlement (paper: within 2 % of reserved rates on "
               "average).\n";
  return 0;
}
