// Extension ablation — reconfiguration transient: how fast does SSVC
// re-apportion bandwidth when a reserved flow joins a saturated output?
//
// Seven flows saturate output 0 (reservations 20/10/10/5/5/5/5 %); the 40 %
// flow joins at cycle 30000. Before the join the leftover is redistributed;
// after it, SSVC must claw back 40 % of the channel from flows that were
// enjoying the surplus. Reported per counter policy: the windowed rate of
// the joining flow and the time until it converges to within 10 % of its
// entitlement. The baselines join for context (LRG never converges — it has
// no notion of the reservation).
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "switch/crossbar.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

constexpr Cycle kJoin = 30000;
constexpr Cycle kWindow = 1000;
constexpr Cycle kTotal = 90000;
const std::vector<double> kRates = {0.40, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};

struct Outcome {
  std::vector<double> joiner_series;
  std::vector<double> others_series;  // aggregate of the 7 incumbent flows
  double converge_cycles = -1.0;      // -1 = never within the run
};

Outcome run(sw::ArbitrationMode mode, arb::Kind kind,
            core::CounterPolicy policy) {
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    auto f = bench::make_gb_flow(i, 0, kRates[i], 8, 0.9);
    if (i == 0) f.start_cycle = kJoin;
    w.add_flow(f);
  }
  auto config = bench::paper_switch_config();
  config.ssvc.policy = policy;
  config.mode = mode;
  config.baseline = kind;
  sw::CrossbarSwitch sim(config, std::move(w));

  // Windowed rates by differencing delivered packets.
  Outcome out;
  std::vector<std::uint64_t> last(8, 0);
  while (sim.now() < kTotal) {
    sim.run(kWindow);
    double others = 0.0;
    for (FlowId f = 0; f < 8; ++f) {
      const auto delivered = sim.delivered_packets(f);
      const double rate =
          static_cast<double>(delivered - last[f]) * 8.0 / kWindow;
      if (f == 0) {
        out.joiner_series.push_back(rate);
      } else {
        others += rate;
      }
      last[f] = delivered;
    }
    out.others_series.push_back(others);
  }
  // Two-sided convergence: within [0.9, 1.15] x the 0.356 entitlement for
  // three consecutive windows (overshoot = starving the incumbents = not
  // converged).
  const double target = 0.4 * 8.0 / 9.0;
  const auto join_window = static_cast<std::size_t>(kJoin / kWindow);
  for (std::size_t wdx = join_window; wdx < out.joiner_series.size(); ++wdx) {
    bool stable = wdx + 3 <= out.joiner_series.size();
    for (std::size_t k = wdx; stable && k < wdx + 3; ++k) {
      if (out.joiner_series[k] < target * 0.9 ||
          out.joiner_series[k] > target * 1.15) {
        stable = false;
      }
    }
    if (stable) {
      out.converge_cycles =
          static_cast<double>(wdx * kWindow) - static_cast<double>(kJoin);
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_convergence", argc, argv);
  std::cout << "Extension ablation: bandwidth reconfiguration transient — "
               "a 40% flow joins a saturated output at cycle " << kJoin
            << "\n\n";

  struct Case {
    const char* name;
    sw::ArbitrationMode mode;
    arb::Kind kind;
    core::CounterPolicy policy;
  };
  const std::vector<Case> cases = {
      {"ssvc/subtract", sw::ArbitrationMode::SsvcQos, arb::Kind::Lrg,
       core::CounterPolicy::SubtractRealClock},
      {"ssvc/halve", sw::ArbitrationMode::SsvcQos, arb::Kind::Lrg,
       core::CounterPolicy::Halve},
      {"ssvc/reset", sw::ArbitrationMode::SsvcQos, arb::Kind::Lrg,
       core::CounterPolicy::Reset},
      {"virtual_clock (exact)", sw::ArbitrationMode::Baseline,
       arb::Kind::VirtualClock, core::CounterPolicy::SubtractRealClock},
      {"lrg (no QoS)", sw::ArbitrationMode::Baseline, arb::Kind::Lrg,
       core::CounterPolicy::SubtractRealClock},
  };

  stats::Table t("Joining flow: windowed rate around the join; convergence "
                 "= within [0.9,1.15]x the 0.356 entitlement for 3 windows");
  t.header({"scheme", "joiner@join+2w", "incumbents@join+2w",
            "joiner@join+10w", "joiner@end", "converge_cycles"});
  for (const auto& cs : cases) {
    const auto o = run(cs.mode, cs.kind, cs.policy);
    const auto jw = static_cast<std::size_t>(kJoin / kWindow);
    t.row()
        .cell(cs.name)
        .cell(o.joiner_series[jw + 2], 3)
        .cell(o.others_series[jw + 2], 3)
        .cell(o.joiner_series[jw + 10], 3)
        .cell(o.joiner_series.back(), 3)
        .cell(o.converge_cycles < 0 ? std::string("never")
                                    : std::to_string(static_cast<long>(
                                          o.converge_cycles)));
  }
  report.table(t);
  std::cout
      << "Exact Virtual Clock exhibits the join burst the paper warns about "
         "(Sec. 2.2: a flow whose\nclock fell behind \"can starve other "
         "flows until its VirtualClock value has caught up\");\nthe "
         "bounded SSVC counters hand the joiner exactly its entitlement "
         "immediately.\n";
  return 0;
}
