// Table 1 — "SSVC storage requirements (in bytes) for 64x64 switch with
// 512-bit output buses."
//
// Reconstructed worst-case budget: 4-flit/64-byte-flit buffers per class
// (GB buffered per output), plus per-crosspoint auxVC (3+8 b), thermometer
// (8 b), Vtick (8 b) and the replicated 63-bit LRG row. The OCR of the
// paper mangles the totals; the arithmetic gives 1,056 KiB buffering +
// 45 KiB crosspoint state = 1,101 KiB ("about 1 MB").
#include <iostream>

#include "common.hpp"
#include "hw/storage_model.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace ssq;
  bench::BenchReport report("table1_storage", argc, argv);

  const hw::StorageParams params{};  // Table 1's configuration
  const auto b = hw::compute_storage(params);

  stats::Table t1("Table 1 - SSVC storage requirements, 64x64 switch, "
                  "512-bit output buses");
  t1.header({"component", "detail", "bytes"});
  t1.row().cell("Buffering/Input BE").cell("4 flits, 64 bytes/flit")
      .cell(b.be_buffer_bytes, 0);
  t1.row().cell("Buffering/Input GB").cell("4 flits/out, 64 outs, 64 B/flit")
      .cell(b.gb_buffer_bytes, 0);
  t1.row().cell("Buffering/Input GL").cell("4 flits, 64 bytes/flit")
      .cell(b.gl_buffer_bytes, 0);
  t1.row().cell("Total buffering, all 64 inputs")
      .cell(std::to_string(b.total_buffering_kib()) + " KiB")
      .cell(b.total_buffering_bytes, 0);
  t1.row().cell("Per-crosspoint auxVC").cell("3+8 bits")
      .cell(b.aux_vc_bytes, 3);
  t1.row().cell("Per-crosspoint thermometer").cell("8 bits")
      .cell(b.thermometer_bytes, 3);
  t1.row().cell("Per-crosspoint Vtick").cell("8 bits").cell(b.vtick_bytes, 3);
  t1.row().cell("Per-crosspoint LRG").cell("63 bits").cell(b.lrg_bytes, 3);
  t1.row().cell("Total storage, 4096 crosspoints")
      .cell(std::to_string(b.total_crosspoint_kib()) + " KiB")
      .cell(b.total_crosspoint_bytes, 0);
  t1.row().cell("Total switch storage")
      .cell(std::to_string(b.total_kib()) + " KiB")
      .cell(b.total_bytes, 0);
  report.table(t1);

  std::cout << "Paper (reconstructed from its arithmetic): 1,056 K buffering"
               " + 45 K crosspoint state = 1,101 K total.\n";
  return 0;
}
