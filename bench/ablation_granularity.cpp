// §4.4 ablation — "The accuracy of the SSVC technique increases with more
// lanes of arbitration."
//
// Two sweeps on the saturated Fig. 4 workload (reservations
// 40/20/10/10/5/5/5/5 %):
//   * GB lane count (thermometer levels, 2^level_bits) at fixed LSB width —
//     more lanes = finer auxVC comparison = smaller worst shortfall;
//   * LSB width (level granularity in cycles) at fixed lane count — the
//     level must resolve the Vtick spread for differentiation to work.
//
// Reported metric: worst per-flow shortfall against the quantised
// reservation's share of the delivered total, and the latency spread across
// flows (the fairness side of the coin).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/vtick_analysis.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kRates = {0.40, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};

struct Outcome {
  double worst_shortfall_pct = 0.0;  // vs quantised entitlement
  double latency_spread = 0.0;       // max-min mean latency across flows
};

Outcome run(std::uint32_t level_bits, std::uint32_t lsb_bits) {
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, kRates[i], 8, 0.9));
  }
  auto config = bench::paper_switch_config();
  config.ssvc.level_bits = level_bits;
  config.ssvc.lsb_bits = lsb_bits;
  const auto r = sw::run_experiment(config, std::move(w), 5000, 80000);
  Outcome out;
  double lat_lo = 1e18, lat_hi = -1e18;
  for (std::size_t i = 0; i < 8; ++i) {
    const double effective =
        qosmath::vtick_error(config.ssvc, kRates[i], 8).effective_rate;
    const double entitled = effective * r.total_accepted_rate;
    out.worst_shortfall_pct =
        std::max(out.worst_shortfall_pct,
                 (entitled - r.flows[i].accepted_rate) / entitled * 100.0);
    lat_lo = std::min(lat_lo, r.flows[i].mean_latency);
    lat_hi = std::max(lat_hi, r.flows[i].mean_latency);
  }
  out.latency_spread = lat_hi - lat_lo;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_granularity", argc, argv);
  std::cout << "Sec. 4.4 ablation: SSVC accuracy vs arbitration lanes and "
               "level granularity (saturated Fig. 4 workload)\n\n";

  stats::Table lanes("GB lanes sweep (lsb_bits = 5, 32-cycle levels)");
  lanes.header({"level_bits", "gb_lanes", "bus_bits_at_radix8",
                "worst_shortfall_%", "latency_spread_cycles"});
  for (std::uint32_t lb : {1u, 2u, 3u, 4u, 5u}) {
    const auto o = run(lb, 5);
    lanes.row()
        .cell(static_cast<std::uint64_t>(lb))
        .cell(static_cast<std::uint64_t>(1u << lb))
        .cell(static_cast<std::uint64_t>((1u << lb) * 8))
        .cell(o.worst_shortfall_pct, 2)
        .cell(o.latency_spread, 1);
  }
  report.table(lanes);
  std::cout << "Paper: \"The accuracy of the SSVC technique increases with "
               "more lanes of arbitration.\"\n\n";

  stats::Table lsb("Level-granularity sweep (level_bits = 4, 16 lanes)");
  lsb.header({"lsb_bits", "cycles_per_level", "worst_shortfall_%",
              "latency_spread_cycles"});
  for (std::uint32_t lsb_bits : {3u, 4u, 5u, 6u, 8u}) {
    const auto o = run(4, lsb_bits);
    lsb.row()
        .cell(static_cast<std::uint64_t>(lsb_bits))
        .cell(static_cast<std::uint64_t>(1u << lsb_bits))
        .cell(o.worst_shortfall_pct, 2)
        .cell(o.latency_spread, 1);
  }
  report.table(lsb);
  std::cout << "Coarser levels trade bandwidth accuracy for latency "
               "fairness — the Fig. 5 effect in ablation form.\n";
  return 0;
}
