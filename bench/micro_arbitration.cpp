// Micro-benchmarks (google-benchmark) for the arbitration hot paths: one
// behavioural SSVC pick+grant, one bit-level circuit arbitration, and the
// baseline arbiters, across radices — plus whole-switch stepping with the
// observability probe off/metrics-only/tracing, so the obs overhead shows
// up as items_per_second = simulated cycles per wall-clock second. These
// quantify simulator cost per modelled cycle (methodological, not a paper
// table). `--benchmark_out=BENCH_micro_arbitration.json
// --benchmark_out_format=json` writes the native google-benchmark report.
#include <benchmark/benchmark.h>

#include <memory>
#include <ostream>
#include <streambuf>
#include <vector>

#include "arb/factory.hpp"
#include "arb/lrg.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "common.hpp"
#include "core/output_arbiter.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/scrubber.hpp"
#include "obs/conformance.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "switch/observe.hpp"
#include "sim/rng.hpp"
#include "switch/crossbar.hpp"
#include "switch/switch_batch.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

std::vector<arb::Request> all_requests(std::uint32_t radix) {
  std::vector<arb::Request> reqs;
  for (InputId i = 0; i < radix; ++i) reqs.push_back({i, 8, 0});
  return reqs;
}

void BM_BaselineArbiter(benchmark::State& state, arb::Kind kind) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  std::vector<double> rates(radix, 1.0);
  auto arbiter = arb::make_arbiter(kind, radix, rates, 8);
  const auto reqs = all_requests(radix);
  Cycle now = 0;
  for (auto _ : state) {
    const InputId w = arbiter->pick(reqs, now);
    arbiter->on_grant(w, 8, now);
    benchmark::DoNotOptimize(w);
    now += 9;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SsvcPickGrant(benchmark::State& state, core::ArbKernel kernel) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  core::SsvcParams params;
  params.level_bits = 3;
  params.lsb_bits = 6;
  auto alloc = core::OutputAllocation::none(radix);
  for (InputId i = 0; i < radix; ++i) alloc.gb_rate[i] = 0.9 / radix;
  alloc.gb_packet_len = 8;
  core::OutputQosArbiter arbiter(radix, params, alloc,
                                 core::GlPolicing::Stall, 32, kernel);
  std::vector<core::ClassRequest> reqs;
  for (InputId i = 0; i < radix; ++i) {
    reqs.push_back({i, TrafficClass::GuaranteedBandwidth, 8});
  }
  Cycle now = 0;
  for (auto _ : state) {
    arbiter.advance_to(now);
    const InputId w = arbiter.pick(reqs, now);
    arbiter.on_grant(w, arbiter.picked_class(), 8, now);
    benchmark::DoNotOptimize(w);
    now += 9;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CircuitArbitrate(benchmark::State& state) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  circuit::LaneLayout layout{.radix = radix,
                             .bus_width = radix * 8,
                             .gb_lanes = 4,
                             .has_gl_lane = true,
                             .has_be_lane = true};
  circuit::CircuitArbiter wires(layout);
  arb::LrgArbiter lrg(radix);
  Rng rng(1);
  std::vector<circuit::CrosspointRequest> reqs;
  for (InputId i = 0; i < radix; ++i) {
    reqs.push_back({i, circuit::RequestKind::Gb,
                    static_cast<std::uint32_t>(rng.below(4))});
  }
  for (auto _ : state) {
    const auto trace = wires.arbitrate(reqs, lrg);
    lrg.on_grant(trace.winner, 1, 0);
    benchmark::DoNotOptimize(trace.winner);
  }
  state.SetItemsProcessed(state.iterations());
}

// Discards everything written to it; the tracing benchmark still pays for
// event formatting, just not for disk I/O.
struct NullStreambuf final : std::streambuf {
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

enum class ObsMode { Off, Metrics, Trace, Monitor };

// Whole-switch stepping on the saturated Fig. 4 workload (8 GB flows onto
// one output). items_per_second = simulated cycles per wall-clock second;
// compare the modes for the observability overhead (Monitor attaches the
// online QoS conformance monitor on the probe's extra sink — the cost the
// ssq_sim/ssq_fuzz --monitor flag pays per cycle).
void BM_SwitchStep(benchmark::State& state, ObsMode mode) {
  const std::vector<double> rates = {0.40, 0.20, 0.10, 0.10,
                                     0.05, 0.05, 0.05, 0.05};
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, rates[i], 8, 0.9));
  }
  sw::CrossbarSwitch sim(bench::paper_switch_config(), std::move(w));

  obs::SwitchProbe probe(8);
  NullStreambuf null_buf;
  std::ostream null_os(&null_buf);
  obs::JsonlSink sink(null_os);
  obs::Tracer tracer(sink);
  std::unique_ptr<obs::ConformanceMonitor> monitor;
  if (mode != ObsMode::Off) {
    if (mode == ObsMode::Trace) probe.set_tracer(&tracer);
    if (mode == ObsMode::Monitor) {
      monitor = std::make_unique<obs::ConformanceMonitor>(
          sw::make_conformance_config(sim.config(), sim.workload(), 2048));
      probe.set_extra_sink(monitor.get());
    }
    sim.attach_probe(&probe);
  }

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    sim.run(kChunk);
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}

// Whole-switch SSVC stepping parameterised by radix (8/16/32/64) on a
// saturated hotspot: radix/2 GB reservations onto output 0 plus spread
// best-effort from the remaining inputs. This is the configuration the
// perf-regression gate tracks (tools/ssq_bench, BENCH_hotpath.json) —
// items_per_second here is the radix-N "cycles/sec" headline.
void BM_SwitchStepRadix(benchmark::State& state, core::ArbKernel kernel) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t gb = radix / 2;
  traffic::Workload w(radix);
  for (InputId i = 0; i < gb; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, 0.88 / gb, 8, 0.5));
  }
  for (InputId i = gb; i < radix; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 1 + (i % (radix - 1));
    f.cls = TrafficClass::BestEffort;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = 0.3;
    w.add_flow(f);
  }
  auto config = bench::paper_switch_config();
  config.radix = radix;
  config.kernel = kernel;
  config.ssvc.level_bits = 2;
  config.ssvc.lsb_bits = 8;
  sw::CrossbarSwitch sim(config, std::move(w));
  sim.warmup(2000);

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    sim.run(kChunk);
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}

// Sparse periodic workload (the ssq_bench "sparse64" shape: synchronized
// periodic flows, ~97% globally idle) with idle-cycle fast-forward on/off.
// items_per_second counts SIMULATED cycles, so the ff variant's speedup is
// the fast-forward win; the ff_skipped / ff_idle_stepped counters report
// how many of those cycles were jumped over vs cheaply stepped.
void BM_SwitchStepSparse(benchmark::State& state, bool fast_forward) {
  const std::uint32_t radix = 64;
  traffic::Workload w(radix);
  for (InputId i = 0; i < radix / 4; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 1 + (i % (radix - 1));
    f.cls = TrafficClass::BestEffort;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Periodic;
    f.inject_rate = 0.02;  // period = 400 cycles
    w.add_flow(f);
  }
  auto config = bench::paper_switch_config();
  config.radix = radix;
  config.fast_forward = fast_forward;
  config.ssvc.level_bits = 2;
  config.ssvc.lsb_bits = 8;
  sw::CrossbarSwitch sim(config, std::move(w));
  sim.warmup(2000);

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    sim.run(kChunk);
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
  state.counters["ff_skipped_cycles"] =
      static_cast<double>(sim.ff_skipped_cycles());
  state.counters["ff_idle_stepped_cycles"] =
      static_cast<double>(sim.ff_idle_stepped_cycles());
}

// The same saturated stepping with the step pipeline selection toggled:
// `specialized` runs the compile-time instantiation matching the (detached)
// attachment state, `generic` forces the fully dynamic pipeline that
// branches on every hook pointer each cycle (config.specialize = false).
// The gap is exactly the per-cycle cost specialization removes; both
// variants are byte-identical in behaviour (the determinism suites assert
// it), so this is a pure execution-cost comparison.
void BM_SwitchStepPipeline(benchmark::State& state, bool specialize) {
  const std::vector<double> rates = {0.40, 0.20, 0.10, 0.10,
                                     0.05, 0.05, 0.05, 0.05};
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, rates[i], 8, 0.9));
  }
  auto config = bench::paper_switch_config();
  config.specialize = specialize;
  sw::CrossbarSwitch sim(config, std::move(w));
  sim.warmup(2000);

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    sim.run(kChunk);
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}

// B independent radix-64 hotspot switches stepped lock-step through
// sw::SwitchBatch (the SoA batch plane behind `ssq_fuzz --batch` and the
// batched shard runner). items_per_second counts simulated cycles SUMMED
// over the batch, so B=1 is the plain serial rate and higher B shows the
// scheduling overhead / cache-residency trade of the strided round-robin.
void BM_SwitchBatchStep(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const std::uint32_t radix = 64;
  const std::uint32_t gb = radix / 2;
  std::vector<std::unique_ptr<sw::CrossbarSwitch>> sims;
  std::vector<sw::CrossbarSwitch*> ptrs;
  for (std::size_t b = 0; b < width; ++b) {
    traffic::Workload w(radix);
    for (InputId i = 0; i < gb; ++i) {
      w.add_flow(bench::make_gb_flow(i, 0, 0.88 / gb, 8, 0.5));
    }
    for (InputId i = gb; i < radix; ++i) {
      traffic::FlowSpec f;
      f.src = i;
      f.dst = 1 + (i % (radix - 1));
      f.cls = TrafficClass::BestEffort;
      f.len_min = f.len_max = 8;
      f.inject = traffic::InjectKind::Bernoulli;
      f.inject_rate = 0.3;
      w.add_flow(f);
    }
    auto config = bench::paper_switch_config();
    config.radix = radix;
    config.ssvc.level_bits = 2;
    config.ssvc.lsb_bits = 8;
    config.seed += b;  // decorrelate the instances' injection draws
    sims.push_back(
        std::make_unique<sw::CrossbarSwitch>(config, std::move(w)));
    sims.back()->warmup(2000);
    ptrs.push_back(sims.back().get());
  }
  sw::SwitchBatch batch(ptrs);

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    batch.run(kChunk);
    benchmark::DoNotOptimize(sims.front()->now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk) *
                          static_cast<std::int64_t>(width));
}

// Same stepping workload with the fault subsystem in its three states:
// detached (the default null-pointer fast path — must be within noise of
// BM_SwitchStep/obs_off), attached with an empty plan (outage checks only),
// and actively injecting with scrubbing on.
enum class FaultMode { Detached, EmptyPlan, Active };

void BM_SwitchStepFaults(benchmark::State& state, FaultMode mode) {
  const std::vector<double> rates = {0.40, 0.20, 0.10, 0.10,
                                     0.05, 0.05, 0.05, 0.05};
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, rates[i], 8, 0.9));
  }
  sw::CrossbarSwitch sim(bench::paper_switch_config(), std::move(w));

  fault::FaultPlan plan;
  if (mode == FaultMode::Active) plan.bitflip_rate = 1e-3;
  fault::FaultInjector injector(plan);
  fault::StateScrubber scrubber(/*interval=*/256);
  if (mode != FaultMode::Detached) {
    sim.attach_fault_injector(&injector);
    if (mode == FaultMode::Active) sim.attach_scrubber(&scrubber);
  }

  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    sim.run(kChunk);
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}

}  // namespace

BENCHMARK_CAPTURE(BM_BaselineArbiter, lrg, ssq::arb::Kind::Lrg)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, wfq, ssq::arb::Kind::Wfq)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, dwrr, ssq::arb::Kind::Dwrr)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, virtual_clock,
                  ssq::arb::Kind::VirtualClock)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_SsvcPickGrant, bitsliced,
                  ssq::core::ArbKernel::Bitsliced)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_SsvcPickGrant, scalar, ssq::core::ArbKernel::Scalar)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_SsvcPickGrant, simd, ssq::core::ArbKernel::Simd)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_CircuitArbitrate)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_SwitchStepRadix, bitsliced,
                  ssq::core::ArbKernel::Bitsliced)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_SwitchStepRadix, scalar, ssq::core::ArbKernel::Scalar)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_SwitchStepRadix, simd, ssq::core::ArbKernel::Simd)
    ->Arg(8)->Arg(64);
BENCHMARK(BM_SwitchBatchStep)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_SwitchStepSparse, ff_on, true);
BENCHMARK_CAPTURE(BM_SwitchStepSparse, ff_off, false);
BENCHMARK_CAPTURE(BM_SwitchStep, obs_off, ObsMode::Off);
BENCHMARK_CAPTURE(BM_SwitchStep, obs_metrics, ObsMode::Metrics);
BENCHMARK_CAPTURE(BM_SwitchStep, obs_trace_null_sink, ObsMode::Trace);
BENCHMARK_CAPTURE(BM_SwitchStep, obs_monitor, ObsMode::Monitor);
BENCHMARK_CAPTURE(BM_SwitchStepPipeline, specialized, true);
BENCHMARK_CAPTURE(BM_SwitchStepPipeline, generic, false);
BENCHMARK_CAPTURE(BM_SwitchStepFaults, fault_detached, FaultMode::Detached);
BENCHMARK_CAPTURE(BM_SwitchStepFaults, fault_empty_plan, FaultMode::EmptyPlan);
BENCHMARK_CAPTURE(BM_SwitchStepFaults, fault_active_scrubbed,
                  FaultMode::Active);

BENCHMARK_MAIN();
