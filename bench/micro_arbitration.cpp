// Micro-benchmarks (google-benchmark) for the arbitration hot paths: one
// behavioural SSVC pick+grant, one bit-level circuit arbitration, and the
// baseline arbiters, across radices. These quantify simulator cost per
// modelled cycle (methodological, not a paper table).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "arb/factory.hpp"
#include "arb/lrg.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "core/output_arbiter.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ssq;

std::vector<arb::Request> all_requests(std::uint32_t radix) {
  std::vector<arb::Request> reqs;
  for (InputId i = 0; i < radix; ++i) reqs.push_back({i, 8, 0});
  return reqs;
}

void BM_BaselineArbiter(benchmark::State& state, arb::Kind kind) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  std::vector<double> rates(radix, 1.0);
  auto arbiter = arb::make_arbiter(kind, radix, rates, 8);
  const auto reqs = all_requests(radix);
  Cycle now = 0;
  for (auto _ : state) {
    const InputId w = arbiter->pick(reqs, now);
    arbiter->on_grant(w, 8, now);
    benchmark::DoNotOptimize(w);
    now += 9;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SsvcPickGrant(benchmark::State& state) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  core::SsvcParams params;
  params.level_bits = 3;
  params.lsb_bits = 6;
  auto alloc = core::OutputAllocation::none(radix);
  for (InputId i = 0; i < radix; ++i) alloc.gb_rate[i] = 0.9 / radix;
  alloc.gb_packet_len = 8;
  core::OutputQosArbiter arbiter(radix, params, alloc);
  std::vector<core::ClassRequest> reqs;
  for (InputId i = 0; i < radix; ++i) {
    reqs.push_back({i, TrafficClass::GuaranteedBandwidth, 8});
  }
  Cycle now = 0;
  for (auto _ : state) {
    arbiter.advance_to(now);
    const InputId w = arbiter.pick(reqs, now);
    arbiter.on_grant(w, arbiter.picked_class(), 8, now);
    benchmark::DoNotOptimize(w);
    now += 9;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CircuitArbitrate(benchmark::State& state) {
  const auto radix = static_cast<std::uint32_t>(state.range(0));
  circuit::LaneLayout layout{.radix = radix,
                             .bus_width = radix * 8,
                             .gb_lanes = 4,
                             .has_gl_lane = true,
                             .has_be_lane = true};
  circuit::CircuitArbiter wires(layout);
  arb::LrgArbiter lrg(radix);
  Rng rng(1);
  std::vector<circuit::CrosspointRequest> reqs;
  for (InputId i = 0; i < radix; ++i) {
    reqs.push_back({i, circuit::RequestKind::Gb,
                    static_cast<std::uint32_t>(rng.below(4))});
  }
  for (auto _ : state) {
    const auto trace = wires.arbitrate(reqs, lrg);
    lrg.on_grant(trace.winner, 1, 0);
    benchmark::DoNotOptimize(trace.winner);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK_CAPTURE(BM_BaselineArbiter, lrg, ssq::arb::Kind::Lrg)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, wfq, ssq::arb::Kind::Wfq)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, dwrr, ssq::arb::Kind::Dwrr)
    ->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_BaselineArbiter, virtual_clock,
                  ssq::arb::Kind::VirtualClock)
    ->Arg(8)->Arg(64);
BENCHMARK(BM_SsvcPickGrant)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_CircuitArbitrate)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

BENCHMARK_MAIN();
