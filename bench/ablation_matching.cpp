// Extension ablation — input-request policy: the Swizzle Switch's
// single-request port logic vs iSLIP-style iterative matching.
//
// The paper's switch raises ONE request per input per cycle (the input bus
// is singular, and arbitration is per-output). A cell-switch intuition says
// an input whose request loses wastes the cycle and iSLIP-style
// request/grant/accept matching should recover it. The measured result is a
// (supportive) null: with packet-granular transfers and idle-output-aware
// request selection, the simple port logic already achieves near-maximal
// matching — the allocator iterations buy nothing. The paper's choice of
// minimal single-cycle port logic costs essentially no throughput.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

constexpr std::uint32_t kRadix = 8;

traffic::Workload uniform_workload(double per_flow_load) {
  traffic::Workload w(kRadix);
  for (InputId i = 0; i < kRadix; ++i) {
    for (OutputId o = 0; o < kRadix; ++o) {
      if (i == o) continue;
      w.add_flow(
          bench::make_gb_flow(i, o, 0.9 / (kRadix - 1), 8, per_flow_load));
    }
  }
  return w;
}

double run(sw::AllocationMode alloc, std::uint32_t iterations,
           double per_flow_load) {
  auto config = bench::paper_switch_config();
  config.allocation = alloc;
  config.match_iterations = iterations;
  const auto r = sw::run_experiment(config, uniform_workload(per_flow_load),
                                    5000, 40000);
  return r.total_accepted_rate;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_matching", argc, argv);
  std::cout << "Extension ablation: single-request ports vs iterative "
               "matching, uniform all-to-all GB traffic, radix 8, 8-flit "
               "packets (aggregate ceiling = 8 x 8/9 = 7.11 flits/cycle)\n\n";

  stats::Table t("Aggregate accepted throughput (flits/cycle) vs per-flow "
                 "offered load");
  t.header({"per_flow_load", "single_request", "matched_1iter",
            "matched_2iter", "matched_4iter"});
  for (double load : {0.02, 0.05, 0.08, 0.1, 0.125, 0.2}) {
    t.row()
        .cell(load, 3)
        .cell(run(sw::AllocationMode::SingleRequest, 1, load), 3)
        .cell(run(sw::AllocationMode::IterativeMatching, 1, load), 3)
        .cell(run(sw::AllocationMode::IterativeMatching, 2, load), 3)
        .cell(run(sw::AllocationMode::IterativeMatching, 4, load), 3);
  }
  report.table(t);
  std::cout << "Matching != winning here: long packets amortise the "
               "allocation, and the single-request policy only asserts "
               "requests toward idle outputs, so it already forms a "
               "near-maximal match. The paper's simple port logic is "
               "throughput-neutral.\n";
  return 0;
}
