// §2.2 ablation — SSVC vs. the earlier Swizzle Switch 4-level message-based
// QoS [14], demonstrating the paper's three claimed differences:
//
//   A. Bandwidth control: "we allocate certain fractions of bandwidth to
//      each input … In the previous design inputs could only assign a
//      priority level to messages and could not control how much bandwidth
//      each priority level receives."
//   B. Starvation: "the previous design used a fixed-priority QoS mechanism
//      … which could lead to starvation of messages in other levels."
//   C. Arbitration latency: "the previous design required two arbitration
//      cycles, whereas our entire arbitration (Virtual Clock arbitration +
//      LRG arbitration) is within a single cycle."
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kRates = {0.40, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};

void table_a(bench::BenchReport& report) {
  // Same saturated workload, reservations 40/20/10/10/5x4. Under [14] every
  // flow can only say "I am level 2"; under SSVC the Vticks encode rates.
  auto run = [](sw::ArbitrationMode mode, std::uint32_t arb_cycles) {
    traffic::Workload w(8);
    for (InputId i = 0; i < 8; ++i) {
      auto f = bench::make_gb_flow(i, 0, kRates[i], 8, 0.9);
      f.legacy_priority = 2;
      w.add_flow(f);
    }
    auto config = bench::paper_switch_config();
    config.mode = mode;
    config.baseline = arb::Kind::MultiLevel;
    config.arbitration_cycles = arb_cycles;
    return sw::run_experiment(config, std::move(w), 5000, 80000);
  };
  const auto legacy = run(sw::ArbitrationMode::Baseline, 2);
  const auto ssvc = run(sw::ArbitrationMode::SsvcQos, 1);

  stats::Table t("A. Bandwidth control: accepted throughput (flits/cycle), "
                 "all inputs saturated, reservations 40/20/10/10/5/5/5/5 %");
  t.header({"scheme", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8",
            "total"});
  auto row = [&t](const char* name, const sw::ExperimentResult& r) {
    t.row().cell(name);
    for (const auto& f : r.flows) t.cell(f.accepted_rate, 3);
    t.cell(r.total_accepted_rate, 3);
  };
  row("4-level [14] (all level 2)", legacy);
  row("SSVC (this paper)", ssvc);
  report.table(t);
}

void table_b(bench::BenchReport& report) {
  // A saturated level-3 sender vs a level-1 sender under [14]; the same pair
  // expressed as two GB reservations under SSVC.
  traffic::Workload legacy_w(8);
  auto hi = bench::make_gb_flow(0, 0, 0.5, 8, 1.0);
  hi.legacy_priority = 3;
  auto lo = bench::make_gb_flow(1, 0, 0.4, 8, 1.0);
  lo.legacy_priority = 1;
  legacy_w.add_flow(hi);
  legacy_w.add_flow(lo);
  auto legacy_cfg = bench::paper_switch_config();
  legacy_cfg.mode = sw::ArbitrationMode::Baseline;
  legacy_cfg.baseline = arb::Kind::MultiLevel;
  legacy_cfg.arbitration_cycles = 2;
  const auto legacy = sw::run_experiment(legacy_cfg, std::move(legacy_w),
                                         5000, 80000);

  traffic::Workload ssvc_w(8);
  ssvc_w.add_flow(bench::make_gb_flow(0, 0, 0.5, 8, 1.0));
  ssvc_w.add_flow(bench::make_gb_flow(1, 0, 0.4, 8, 1.0));
  const auto ssvc = sw::run_experiment(bench::paper_switch_config(),
                                       std::move(ssvc_w), 5000, 80000);

  stats::Table t("B. Starvation: two saturated senders");
  t.header({"scheme", "sender0", "sender1", "sender1_share_%"});
  t.row()
      .cell("4-level [14]: level 3 vs level 1")
      .cell(legacy.flows[0].accepted_rate, 3)
      .cell(legacy.flows[1].accepted_rate, 3)
      .cell(legacy.flows[1].accepted_rate /
                (legacy.total_accepted_rate + 1e-12) * 100.0,
            1);
  t.row()
      .cell("SSVC: 50 % vs 40 % reservations")
      .cell(ssvc.flows[0].accepted_rate, 3)
      .cell(ssvc.flows[1].accepted_rate, 3)
      .cell(ssvc.flows[1].accepted_rate /
                (ssvc.total_accepted_rate + 1e-12) * 100.0,
            1);
  report.table(t);
}

void table_c(bench::BenchReport& report) {
  // Saturated single flow: the arbitration-cycle cost and its mitigations.
  stats::Table t("C. Arbitration occupancy: saturated 8-flit flow");
  t.header({"configuration", "ceiling", "measured"});
  struct Case {
    const char* name;
    std::uint32_t arb_cycles;
    bool chaining;
    double ceiling;
  };
  for (const Case cs : {Case{"4-level [14], 2 arbitration cycles", 2u, false,
                             8.0 / 10.0},
                        Case{"SSVC, single-cycle arbitration", 1u, false,
                             8.0 / 9.0},
                        Case{"SSVC + Packet Chaining [10]", 1u, true, 1.0}}) {
    traffic::Workload w(8);
    const FlowId id = w.add_flow(bench::make_gb_flow(
        0, 1, 1.0, 8, 1.0, traffic::InjectKind::Periodic));
    auto config = bench::paper_switch_config();
    config.arbitration_cycles = cs.arb_cycles;
    config.packet_chaining = cs.chaining;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(1000);
    sim.measure(20000);
    t.row().cell(cs.name).cell(cs.ceiling, 3).cell(sim.throughput().rate(id),
                                                   3);
  }
  report.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_legacy_qos", argc, argv);
  std::cout << "Sec. 2.2 ablation: SSVC vs the 4-level message-based QoS of "
               "the earlier Swizzle Switch design [14]\n\n";
  table_a(report);
  table_b(report);
  table_c(report);
  return 0;
}
