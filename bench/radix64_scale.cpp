// §1 / §4.4 — the headline claim, exercised directly: "an efficient QoS
// implementation for a single-stage, high-radix switch, which is readily
// scalable to 64 nodes."
//
// A full radix-64 switch (512-bit bus: 8 lanes, of which 4 carry GB levels
// plus the GL and BE lanes — §4.4's comfortable radix-64 configuration):
//   * a hot-spot output taking GB reservations from 32 inputs plus a shared
//     GL reservation serving interrupt traffic from 4 more inputs,
//   * background all-to-all best-effort traffic from every node.
// Reported: adherence of a sample of reservations, GL worst-case wait vs
// the Eq. (1) bound, aggregate utilisation, and wall-clock simulation speed.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/gl_bound.hpp"
#include "stats/table.hpp"
#include "switch/crossbar.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

constexpr std::uint32_t kRadix = 64;
constexpr OutputId kHotspot = 0;
constexpr std::uint32_t kGbSenders = 32;
constexpr std::uint32_t kGlSenders = 4;

traffic::Workload build_workload() {
  traffic::Workload w(kRadix);
  // 32 GB reservations to the hotspot: 4 big flows at 8 %, 28 small at 2 %
  // (total 88 %), everyone saturated.
  for (InputId i = 0; i < kGbSenders; ++i) {
    const double rate = i < 4 ? 0.08 : 0.02;
    w.add_flow(bench::make_gb_flow(i, kHotspot, rate, 8, 0.5));
  }
  // 4 GL senders (interrupts) sharing a 6 % reservation.
  for (InputId i = kGbSenders; i < kGbSenders + kGlSenders; ++i) {
    w.add_flow(bench::make_gl_flow(i, kHotspot, 2, 0.004));
  }
  w.set_gl_reservation(kHotspot, 0.06, 2);
  // Background BE from the remaining inputs to spread outputs.
  for (InputId i = kGbSenders + kGlSenders; i < kRadix; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 1 + (i % (kRadix - 1));
    f.cls = TrafficClass::BestEffort;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = 0.3;
    w.add_flow(f);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("radix64_scale", argc, argv);
  std::cout << "Radix-64 scale run: 64x64 SSVC switch, 512-bit bus "
               "(4 GB levels + GL lane + BE lane), hotspot output with 36 "
               "reserved senders\n\n";

  auto config = bench::paper_switch_config();
  config.radix = kRadix;
  config.ssvc.level_bits = 2;  // 4 GB lanes: the 512-bit-bus radix-64 config
  config.ssvc.lsb_bits = 8;
  config.buffers.gl_flits = 4;

  sw::CrossbarSwitch sim(config, build_workload());
  const auto t0 = std::chrono::steady_clock::now();
  sim.warmup(10000);
  sim.measure(200000);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();

  stats::Table t("Hotspot reservations (sample)");
  t.header({"flow", "reserved", "offered_share_of_entitlement",
            "accepted", "entitled(min(offer,share))", "kept"});
  const double total = [&] {
    double sum = 0.0;
    for (FlowId f = 0; f < kGbSenders; ++f) sum += sim.throughput().rate(f);
    return sum;
  }();
  for (FlowId f : {FlowId{0}, FlowId{3}, FlowId{4}, FlowId{20},
                   FlowId{31}}) {
    const double reserved = sim.workload().flow(f).reserved_rate;
    const double accepted = sim.throughput().rate(f);
    const double entitled = std::min(0.5, reserved * 8.0 / 9.0);
    t.row()
        .cell("in" + std::to_string(f))
        .cell(reserved, 3)
        .cell(0.5 / (reserved * 8.0 / 9.0), 1)
        .cell(accepted, 4)
        .cell(entitled, 4)
        .cell(accepted >= entitled * 0.93 ? "yes" : "NO");
  }
  report.table(t);

  double gl_max_wait = 0.0;
  std::uint64_t gl_packets = 0;
  for (FlowId f = kGbSenders; f < kGbSenders + kGlSenders; ++f) {
    const auto& s = sim.wait().flow_summary(f);
    if (s.count()) {
      gl_max_wait = std::max(gl_max_wait, s.max());
      gl_packets += s.count();
    }
  }
  const double bound = qosmath::gl_wait_bound(
      {.l_max = 8, .l_min = 2, .n_gl = kGlSenders, .buffer_flits = 4});
  stats::Table g("Guaranteed latency at radix 64");
  g.header({"gl_packets", "measured_max_wait", "eq1_bound", "within"});
  g.row()
      .cell(gl_packets)
      .cell(gl_max_wait, 1)
      .cell(bound, 1)
      .cell(gl_max_wait <= bound ? "yes" : "NO");
  report.table(g);

  std::cout << "Hotspot GB aggregate: " << total
            << " flits/cycle of the 0.889 deliverable; simulated 210k "
               "cycles of a 64x64 switch in "
            << wall_s << " s ("
            << static_cast<long>(210000.0 / wall_s) << " cycles/s).\n";
  report.metric("sim_cycles_per_sec", 210000.0 / wall_s);
  return 0;
}
