// §1 / §4.4 — the headline claim, exercised directly: "an efficient QoS
// implementation for a single-stage, high-radix switch, which is readily
// scalable to 64 nodes."
//
// A full radix-64 switch (512-bit bus: 8 lanes, of which 4 carry GB levels
// plus the GL and BE lanes — §4.4's comfortable radix-64 configuration):
//   * a hot-spot output taking GB reservations from 32 inputs plus a shared
//     GL reservation serving interrupt traffic from 4 more inputs,
//   * background all-to-all best-effort traffic from every node.
// Reported: adherence of a sample of reservations, GL worst-case wait vs
// the Eq. (1) bound, aggregate utilisation, and wall-clock simulation speed.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/gl_bound.hpp"
#include "stats/table.hpp"
#include "switch/crossbar.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

constexpr std::uint32_t kRadix = 64;
constexpr OutputId kHotspot = 0;
constexpr std::uint32_t kGlSenders = 4;

constexpr std::uint32_t gb_senders(std::uint32_t radix) { return radix / 2; }

// Reservations at the hotspot: 4 big flows at 8 %, the rest splitting 56 %
// (at radix 64: 28 small flows at exactly 2 %), total 88 %.
double gb_rate(std::uint32_t radix, InputId i) {
  return i < 4 ? 0.08 : 0.56 / static_cast<double>(gb_senders(radix) - 4);
}

traffic::Workload build_workload(std::uint32_t radix) {
  const std::uint32_t gb = gb_senders(radix);
  traffic::Workload w(radix);
  for (InputId i = 0; i < gb; ++i) {
    w.add_flow(bench::make_gb_flow(i, kHotspot, gb_rate(radix, i), 8, 0.5));
  }
  // 4 GL senders (interrupts) sharing a 6 % reservation.
  for (InputId i = gb; i < gb + kGlSenders; ++i) {
    w.add_flow(bench::make_gl_flow(i, kHotspot, 2, 0.004));
  }
  w.set_gl_reservation(kHotspot, 0.06, 2);
  // Background BE from the remaining inputs to spread outputs.
  for (InputId i = gb + kGlSenders; i < radix; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 1 + (i % (radix - 1));
    f.cls = TrafficClass::BestEffort;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = 0.3;
    w.add_flow(f);
  }
  return w;
}

// Everything the tables need, extracted inside the point function so the
// per-radix simulations are independent and can run on the pool.
struct ScalePoint {
  std::uint32_t radix = 0;
  double wall_s = 0.0;
  double gb_total = 0.0;  // aggregate accepted rate of the GB reservations
  std::vector<double> sampled_rates;  // flows {0, 3, 4, gb*5/8, gb-1}
  double gl_max_wait = 0.0;
  std::uint64_t gl_packets = 0;
};

ScalePoint run_scale(std::uint32_t radix) {
  auto config = bench::paper_switch_config();
  config.radix = radix;
  config.ssvc.level_bits = 2;  // 4 GB lanes: the 512-bit-bus radix-64 config
  config.ssvc.lsb_bits = 8;
  config.buffers.gl_flits = 4;

  sw::CrossbarSwitch sim(config, build_workload(radix));
  const auto t0 = std::chrono::steady_clock::now();
  sim.warmup(10000);
  sim.measure(200000);
  const auto t1 = std::chrono::steady_clock::now();

  const std::uint32_t gb = gb_senders(radix);
  ScalePoint r;
  r.radix = radix;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (FlowId f = 0; f < gb; ++f) r.gb_total += sim.throughput().rate(f);
  for (FlowId f : {FlowId{0}, FlowId{3}, FlowId{4}, FlowId{gb * 5 / 8},
                   FlowId{gb - 1}}) {
    r.sampled_rates.push_back(sim.throughput().rate(f));
  }
  for (FlowId f = gb; f < gb + kGlSenders; ++f) {
    const auto& s = sim.wait().flow_summary(f);
    if (s.count()) {
      r.gl_max_wait = std::max(r.gl_max_wait, s.max());
      r.gl_packets += s.count();
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("radix64_scale", argc, argv);
  const unsigned jobs = ssq::bench::parse_jobs(argc, argv);
  std::cout << "Radix-64 scale run: 64x64 SSVC switch, 512-bit bus "
               "(4 GB levels + GL lane + BE lane), hotspot output with 36 "
               "reserved senders\n\n";

  // Three independent configuration points (the same hotspot scenario at
  // radix 16/32/64), farmed out to the pool; the radix-64 point feeds the
  // detailed tables below.
  constexpr std::uint32_t kRadices[] = {16, 32, kRadix};
  const std::vector<ScalePoint> points = ssq::bench::run_points<ScalePoint>(
      jobs, 3, [&](std::size_t i) { return run_scale(kRadices[i]); });
  const ScalePoint& r64 = points[2];

  stats::Table t("Hotspot reservations (sample)");
  t.header({"flow", "reserved", "offered_share_of_entitlement",
            "accepted", "entitled(min(offer,share))", "kept"});
  const std::uint32_t gb = gb_senders(kRadix);
  const FlowId sampled[] = {FlowId{0}, FlowId{3}, FlowId{4},
                            FlowId{gb * 5 / 8}, FlowId{gb - 1}};
  for (std::size_t i = 0; i < 5; ++i) {
    const double reserved = gb_rate(kRadix, sampled[i]);
    const double accepted = r64.sampled_rates[i];
    const double entitled = std::min(0.5, reserved * 8.0 / 9.0);
    t.row()
        .cell("in" + std::to_string(sampled[i]))
        .cell(reserved, 3)
        .cell(0.5 / (reserved * 8.0 / 9.0), 1)
        .cell(accepted, 4)
        .cell(entitled, 4)
        .cell(accepted >= entitled * 0.93 ? "yes" : "NO");
  }
  report.table(t);

  const double bound = qosmath::gl_wait_bound(
      {.l_max = 8, .l_min = 2, .n_gl = kGlSenders, .buffer_flits = 4});
  stats::Table g("Guaranteed latency at radix 64");
  g.header({"gl_packets", "measured_max_wait", "eq1_bound", "within"});
  g.row()
      .cell(r64.gl_packets)
      .cell(r64.gl_max_wait, 1)
      .cell(bound, 1)
      .cell(r64.gl_max_wait <= bound ? "yes" : "NO");
  report.table(g);

  stats::Table sp("Simulation speed vs radix (210k cycles each)");
  sp.header({"radix", "wall_s", "cycles_per_sec"});
  for (const ScalePoint& p : points) {
    sp.row()
        .cell(static_cast<std::uint64_t>(p.radix))
        .cell(p.wall_s, 3)
        .cell(210000.0 / p.wall_s, 0);
  }
  report.table(sp);

  std::cout << "Hotspot GB aggregate: " << r64.gb_total
            << " flits/cycle of the 0.889 deliverable; simulated 210k "
               "cycles of a 64x64 switch in "
            << r64.wall_s << " s ("
            << static_cast<long>(210000.0 / r64.wall_s) << " cycles/s).\n";
  report.metric("sim_cycles_per_sec", 210000.0 / r64.wall_s);
  return 0;
}
