// Extension ablation — arbitration energy vs lane count.
//
// The inhibit-based arbitration's dynamic energy is the number of bitlines
// discharged per arbitration (the Swizzle Switch reuses the data bus, so
// these are full-length output-bus wires). More GB lanes buy SSVC accuracy
// (see ablation_granularity) but every extra lane is radix more bitlines
// that higher-priority inputs discharge. This bench drives the bit-level
// circuit model with random saturated request sets and reports the average
// discharge count and relative energy per arbitration across layouts —
// from a 1-lane pure-LRG bus to the 16-lane Fig. 4 configuration.
#include <iostream>
#include <string>
#include <vector>

#include "arb/lrg.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "common.hpp"
#include "hw/energy_model.hpp"
#include "sim/rng.hpp"
#include "stats/streaming.hpp"
#include "stats/table.hpp"

namespace {

using namespace ssq;

struct Measured {
  double mean_discharged = 0.0;
  double mean_fraction = 0.0;  // of the bus width
  double energy_pj = 0.0;
};

Measured measure(std::uint32_t radix, std::uint32_t gb_lanes, int trials) {
  circuit::LaneLayout layout{.radix = radix,
                             .bus_width = radix * (gb_lanes + 2),
                             .gb_lanes = gb_lanes,
                             .has_gl_lane = true,
                             .has_be_lane = true};
  layout.validate();
  circuit::CircuitArbiter wires(layout);
  arb::LrgArbiter lrg(radix);
  Rng rng(gb_lanes * 1000 + radix);
  stats::Streaming discharged;
  for (int t = 0; t < trials; ++t) {
    std::vector<circuit::CrosspointRequest> reqs;
    for (InputId i = 0; i < radix; ++i) {
      // Saturated GB traffic with uniformly spread levels.
      reqs.push_back({i, circuit::RequestKind::Gb,
                      static_cast<std::uint32_t>(rng.below(gb_lanes))});
    }
    const auto trace = wires.arbitrate(reqs, lrg);
    lrg.on_grant(trace.winner, 1, 0);
    discharged.add(static_cast<double>(trace.bitlines.popcount()));
  }
  Measured m;
  m.mean_discharged = discharged.mean();
  m.mean_fraction = discharged.mean() / layout.bus_width;
  m.energy_pj = hw::arbitration_energy_pj(
      static_cast<std::uint32_t>(discharged.mean() + 0.5), radix);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("ablation_energy", argc, argv);
  std::cout << "Extension ablation: arbitration energy vs GB lane count "
               "(bit-level circuit model, saturated random GB requests)\n\n";

  stats::Table t("Mean bitlines discharged per arbitration");
  t.header({"radix", "gb_lanes", "bus_bits", "mean_discharged",
            "fraction_of_bus", "rel_energy_pj"});
  for (std::uint32_t radix : {8u, 16u}) {
    for (std::uint32_t lanes : {1u, 2u, 4u, 8u, 16u}) {
      const auto m = measure(radix, lanes, 20000);
      t.row()
          .cell(static_cast<std::uint64_t>(radix))
          .cell(static_cast<std::uint64_t>(lanes))
          .cell(static_cast<std::uint64_t>(radix * (lanes + 2)))
          .cell(m.mean_discharged, 1)
          .cell(m.mean_fraction, 3)
          .cell(m.energy_pj, 2);
    }
  }
  report.table(t);
  std::cout << "1 gb_lane = pure LRG arbitration. Accuracy grows with lanes "
               "(ablation_granularity); so does the discharged-wire energy "
               "of every arbitration.\n";
  return 0;
}
