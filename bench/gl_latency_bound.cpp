// §3.4 — Guaranteed-Latency bound (Eq. 1) and burst budgets (Eqs. 2–3).
//
// Part A: for N_GL ∈ {1,2,4,8} inputs injecting compliant GL traffic into an
// output saturated by GB background flows, the measured worst-case waiting
// time of a buffered GL packet must stay below
//     τ_GL = l_max + N_GL · (b + b/l_min).
//
// Part B: the admissible burst sizes of Eqs. (2)–(3) for the paper's worked
// example shape (equal 100-cycle constraints, and a tightest-to-loosest
// ladder), validated by injecting single bursts of exactly σ_n packets and
// measuring every packet's creation-to-delivery latency against its bound.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "qosmath/gl_bound.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

void part_a(ssq::bench::BenchReport& report) {
  stats::Table t("Eq. (1) - worst-case GL waiting time vs measured "
                 "(saturated GB background, b = 4 flits, GL packets 2 "
                 "flits, GB packets 8 flits)");
  t.header({"N_GL", "bound_tau_cycles", "measured_max_wait", "mean_wait",
            "gl_packets"});
  // Input 7 always carries saturated GB traffic so the Eq. (1) l_max
  // channel-release hazard is present; N_GL inputs send compliant GL traffic
  // well inside the shared 25 % reservation.
  for (std::uint32_t n_gl : {1u, 2u, 4u, 7u}) {
    traffic::Workload w(8);
    for (InputId i = n_gl; i < 8; ++i) {
      w.add_flow(
          bench::make_gb_flow(i, 0, 0.4 / (8 - n_gl + 1), 8, 1.0));
    }
    std::vector<FlowId> gl_flows;
    for (InputId i = 0; i < n_gl; ++i) {
      gl_flows.push_back(w.add_flow(bench::make_gl_flow(i, 0, 2, 0.012)));
    }
    w.set_gl_reservation(0, 0.25, 2);
    auto config = bench::paper_switch_config();
    config.buffers.gl_flits = 4;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(2000);
    sim.measure(200000);

    double max_wait = 0.0, mean_wait = 0.0;
    std::uint64_t packets = 0;
    for (FlowId f : gl_flows) {
      const auto& s = sim.wait().flow_summary(f);
      if (s.count() == 0) continue;
      max_wait = std::max(max_wait, s.max());
      mean_wait += s.sum();
      packets += s.count();
    }
    mean_wait = packets ? mean_wait / static_cast<double>(packets) : 0.0;
    const double bound = qosmath::gl_wait_bound(
        {.l_max = 8, .l_min = 2, .n_gl = n_gl, .buffer_flits = 4});
    t.row()
        .cell(static_cast<std::uint64_t>(n_gl))
        .cell(bound, 1)
        .cell(max_wait, 1)
        .cell(mean_wait, 2)
        .cell(packets);
  }
  report.table(t);
}

void part_b_budgets(ssq::bench::BenchReport& report) {
  stats::Table t("Eqs. (2)-(3) - admissible burst sizes (packets)");
  t.header({"scenario", "constraints_L", "l_max", "sigma"});
  {
    const auto s = qosmath::gl_burst_budget({100.0}, 8);
    t.row().cell("1 input, L=100, 8-flit").cell("100").cell(8)
        .cell(s[0], 2);
  }
  {
    const auto s = qosmath::gl_burst_budget(std::vector<double>(8, 100.0), 1);
    t.row().cell("8 inputs, L=100 each, 1-flit").cell("100 x8").cell(1)
        .cell(s[0], 2);
  }
  {
    const auto s = qosmath::gl_burst_budget({50.0, 100.0, 200.0}, 4);
    t.row()
        .cell("3 inputs, ladder, 4-flit")
        .cell("50/100/200")
        .cell(4)
        .cell(std::to_string(s[0]).substr(0, 5) + "/" +
              std::to_string(s[1]).substr(0, 5) + "/" +
              std::to_string(s[2]).substr(0, 5));
  }
  report.table(t);
}

void part_b_validation(ssq::bench::BenchReport& report) {
  // Inject single bursts of floor(sigma_n) GL packets from n_gl inputs at
  // once, with an idle switch otherwise except one GB flow providing the
  // l_max channel-release hazard; check creation-to-delivery latency of
  // every burst packet against its constraint.
  stats::Table t("Burst validation - sigma-sized bursts meet their bounds");
  t.header({"n_gl", "L_cycles", "sigma_pkts", "measured_max_latency",
            "within_bound"});
  for (std::uint32_t n_gl : {1u, 2u, 4u}) {
    const double L = 120.0;
    constexpr std::uint32_t kGlLen = 2;
    const auto sigma = qosmath::gl_burst_budget(
        std::vector<double>(n_gl, L), /*l_max=*/8);
    const auto burst =
        static_cast<std::uint32_t>(std::floor(std::max(1.0, sigma[0])));

    traffic::Workload w(8);
    w.add_flow(bench::make_gb_flow(7, 0, 0.3, 8, 1.0));  // channel hazard
    std::vector<FlowId> gl_flows;
    for (InputId i = 0; i < n_gl; ++i) {
      traffic::FlowSpec f;
      f.src = i;
      f.dst = 0;
      f.cls = TrafficClass::GuaranteedLatency;
      f.len_min = f.len_max = kGlLen;
      f.inject = traffic::InjectKind::BurstOnce;
      f.burst_start = 5000;
      f.burst_packets = burst;
      gl_flows.push_back(w.add_flow(f));
    }
    w.set_gl_reservation(0, 0.25, kGlLen);
    auto config = bench::paper_switch_config();
    config.buffers.gl_flits = burst * kGlLen + kGlLen;  // burst fits (Eq. 2
    // derivation assumes b covers the burst)
    config.latency_from_creation = true;
    config.gl_allowance_packets = burst * n_gl + 4;  // compliant by design
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(0);
    sim.measure(20000);

    double max_lat = 0.0;
    for (FlowId f : gl_flows) {
      const auto& s = sim.latency().flow_summary(f);
      if (s.count()) max_lat = std::max(max_lat, s.max());
    }
    t.row()
        .cell(static_cast<std::uint64_t>(n_gl))
        .cell(L, 0)
        .cell(static_cast<std::uint64_t>(burst))
        .cell(max_lat, 1)
        .cell(max_lat <= L ? "yes" : "NO");
  }
  report.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("gl_latency_bound", argc, argv);
  std::cout << "Sec. 3.4 reproduction: GL latency bound and burst sizing\n\n";
  part_a(report);
  part_b_budgets(report);
  part_b_validation(report);
  return 0;
}
