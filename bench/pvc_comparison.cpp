// Reference [7] head-to-head — Preemptive Virtual Clock vs SSVC on one
// switch.
//
// PVC (Grot/Keckler/Mutlu, MICRO'09) is the NoC QoS scheme the paper's
// introduction cites alongside Virtual Clock: frame-based bandwidth
// accounting plus preemption of lower-priority in-flight packets. Adapted
// to the single crossbar (src/arb/pvc + SwitchConfig::pvc):
//
//   A. bandwidth adherence on the Fig. 4 workload — both schemes deliver
//      the reserved proportions;
//   B. latency of a low-rate flow under a saturated heavy flow — PVC's
//      preemption vs SSVC's thermometer coarsening, including the price PVC
//      pays in aborted-transfer waste.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "switch/crossbar.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kRates = {0.40, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};

void table_a(ssq::bench::BenchReport& report) {
  stats::Table t("A. Fig. 4 workload, all saturated: accepted throughput");
  t.header({"scheme", "f1(40%)", "f2(20%)", "f3(10%)", "f5(5%)", "total",
            "preemptions", "wasted_flits"});
  struct Case {
    const char* name;
    sw::ArbitrationMode mode;
    bool preempt;
  };
  for (const Case cs : {Case{"ssvc", sw::ArbitrationMode::SsvcQos, false},
                        Case{"pvc (no preemption)",
                             sw::ArbitrationMode::Baseline, false},
                        Case{"pvc + preemption",
                             sw::ArbitrationMode::Baseline, true}}) {
    traffic::Workload w(8);
    for (InputId i = 0; i < 8; ++i) {
      w.add_flow(bench::make_gb_flow(i, 0, kRates[i], 8, 0.9));
    }
    auto config = bench::paper_switch_config();
    config.mode = cs.mode;
    config.baseline = arb::Kind::Pvc;
    config.pvc.preemption = cs.preempt;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(5000);
    sim.measure(80000);
    double total = 0.0;
    for (FlowId f = 0; f < 8; ++f) total += sim.throughput().rate(f);
    std::uint64_t preempts = 0;
    for (OutputId o = 0; o < 8; ++o) preempts += sim.preemptions(o);
    t.row()
        .cell(cs.name)
        .cell(sim.throughput().rate(0), 3)
        .cell(sim.throughput().rate(1), 3)
        .cell(sim.throughput().rate(2), 3)
        .cell(sim.throughput().rate(4), 3)
        .cell(total, 3)
        .cell(preempts)
        .cell(sim.wasted_flits());
  }
  report.table(t);
}

void table_b(ssq::bench::BenchReport& report) {
  stats::Table t("B. Low-rate flow (2-flit packets, 2% load) under a "
                 "saturated 8-flit heavy flow: waiting time");
  t.header({"scheme", "light_mean_wait", "light_max_wait", "heavy_accepted",
            "wasted_flits"});
  struct Case {
    const char* name;
    sw::ArbitrationMode mode;
    arb::Kind kind;
    bool preempt;
  };
  for (const Case cs :
       {Case{"lrg (no QoS)", sw::ArbitrationMode::Baseline, arb::Kind::Lrg,
             false},
        Case{"ssvc", sw::ArbitrationMode::SsvcQos, arb::Kind::Lrg, false},
        Case{"pvc (no preemption)", sw::ArbitrationMode::Baseline,
             arb::Kind::Pvc, false},
        Case{"pvc + preemption", sw::ArbitrationMode::Baseline,
             arb::Kind::Pvc, true}}) {
    traffic::Workload w(8);
    const FlowId heavy =
        w.add_flow(bench::make_gb_flow(0, 0, 0.70, 8, 1.0));
    auto light_spec = bench::make_gb_flow(1, 0, 0.20, 2, 0.04,
                                          traffic::InjectKind::Periodic);
    const FlowId light = w.add_flow(light_spec);
    auto config = bench::paper_switch_config();
    config.mode = cs.mode;
    config.baseline = cs.kind;
    config.pvc.preemption = cs.preempt;
    sw::CrossbarSwitch sim(config, std::move(w));
    sim.warmup(5000);
    sim.measure(100000);
    t.row()
        .cell(cs.name)
        .cell(sim.wait().flow_summary(light).mean(), 2)
        .cell(sim.wait().flow_summary(light).max(), 0)
        .cell(sim.throughput().rate(heavy), 3)
        .cell(sim.wasted_flits());
  }
  report.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("pvc_comparison", argc, argv);
  std::cout << "Reference [7] comparison: Preemptive Virtual Clock vs SSVC "
               "on the single crossbar\n\n";
  table_a(report);
  table_b(report);
  std::cout << "PVC matches the reserved shares with per-input frame "
               "counters and cuts the light flow's\nwait via preemption — "
               "at the cost of aborted transfers (wasted flits). SSVC gets "
               "a similar\nwait with zero waste from its coarse-compare + "
               "LRG arbitration alone.\n";
  return 0;
}
