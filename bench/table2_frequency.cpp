// Table 2 — "Frequency (in GHz) with and without SSVC" across radix
// {8,16,32,64} and channel width {128,256,512} bits, plus the §4.5 area
// figures.
//
// The analytical timing model is calibrated to the two published anchors
// (64x64/128-bit Swizzle Switch at 1.5 GHz [16]; worst SSVC slowdown 8.4 %
// at 8x8/256-bit); the actual Table 2 cell values are corrupted in the
// available text, so the reproduced quantities are the anchors plus the
// table's monotonic shape.
#include <iostream>
#include <string>

#include "common.hpp"
#include "hw/area_model.hpp"
#include "hw/timing_model.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace ssq;
  bench::BenchReport report("table2_frequency", argc, argv);

  const hw::TimingModel model;
  stats::Table t2("Table 2 - Frequency (GHz) with and without SSVC");
  t2.header({"radix", "ss_128b", "ssvc_128b", "ss_256b", "ssvc_256b",
             "ss_512b", "ssvc_512b", "worst_slowdown_%"});
  for (std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    double worst = 0.0;
    t2.row().cell(std::to_string(radix) + "x" + std::to_string(radix));
    for (std::uint32_t width : {128u, 256u, 512u}) {
      t2.cell(model.ss_freq_ghz(radix, width), 3);
      t2.cell(model.ssvc_freq_ghz(radix, width), 3);
      worst = std::max(worst, model.slowdown(radix, width));
    }
    t2.cell(worst * 100.0, 2);
  }
  report.table(t2);
  std::cout << "Anchors: SS 64x64/128-bit = "
            << model.ss_freq_ghz(64, 128) << " GHz (paper: 1.5 [16]); "
            << "worst slowdown = " << model.slowdown(8, 256) * 100.0
            << " % at 8x8/256-bit (paper: 8.4 %).\n\n";

  stats::Table area("Sec. 4.5 - SSVC crosspoint area overhead");
  area.header({"channel_bits", "overhead_%", "equivalent_channel_bits"});
  for (std::uint32_t width : {128u, 256u, 512u}) {
    area.row()
        .cell(static_cast<std::uint64_t>(width))
        .cell(hw::ssvc_area_overhead(width) * 100.0, 2)
        .cell(hw::ssvc_equivalent_channel_bits(width), 1);
  }
  report.table(area);
  std::cout << "Paper: +2 % at 128-bit (\"equivalent to the area of a "
               "131-bit channel\"); no overhead at 256/512-bit.\n";
  return 0;
}
