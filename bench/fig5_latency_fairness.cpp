// Fig. 5 — "The SSVC implementation improved the packet latency for GB flows
// with low bandwidth allocations (<10%)."
//
// Eight GB flows share one output with allocations spanning 1 %–40 %, each
// injecting burstily (on/off source) slightly above its reserved rate. The
// four series are the paper's:
//   * Original Virtual Clock — exact (infinite-precision) auxVC comparison,
//   * Subtract Real Clock    — SSVC default finite-counter management,
//   * Divide by 2            — halve-on-saturation,
//   * Reset                  — reset-on-saturation.
//
// Expected shape: original Virtual Clock gives the <10 % flows very high
// mean latency (their clock leaps a full Vtick ahead after every packet);
// the SSVC variants flatten the left side of the curve at the price of a
// mild increase for the large allocations; reset has the least variance.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/ascii_plot.hpp"
#include "stats/streaming.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kAllocs = {0.01, 0.02, 0.04, 0.05,
                                     0.08, 0.10, 0.20, 0.40};
constexpr std::uint32_t kPacketLen = 8;

std::vector<double> run_series(sw::ArbitrationMode mode,
                               core::CounterPolicy policy) {
  traffic::Workload w(8);
  // Bursty sources: every flow bursts at a >=0.4 flits/cycle peak (several
  // packets per ON period) and idles long enough that its average offer is
  // 2x its reservation (congestion). Multi-packet bursts are what bank
  // virtual-clock debt for the low-allocation flows — the case §3.1's
  // halve/reset policies target ("especially during bursty injection").
  for (InputId i = 0; i < 8; ++i) {
    const double offered = kAllocs[i] * 2.0;  // congestion: 2x reservations
    const double peak = std::max(0.4, offered * 2.0);
    auto f = bench::make_gb_flow(i, 0, kAllocs[i], kPacketLen, offered,
                                 traffic::InjectKind::OnOff);
    f.mean_on_cycles = 100.0;
    f.mean_off_cycles = 100.0 * (peak / offered - 1.0);
    w.add_flow(f);
  }
  auto config = bench::paper_switch_config();
  // Fig. 1's configuration: radix-8 switch with a 64-bit bus — 8 GB lanes
  // (3 significant auxVC bits). The small counter range (9 bits) is what
  // makes registers saturate on bursts, firing the halve/reset events.
  config.ssvc.level_bits = 3;
  config.ssvc.lsb_bits = 6;
  config.ssvc.policy = policy;
  config.mode = mode;
  config.baseline = arb::Kind::VirtualClock;
  const auto r = sw::run_experiment(config, std::move(w), 10000, 400000);
  std::vector<double> lat;
  for (const auto& f : r.flows) lat.push_back(f.mean_latency);
  for (const auto& f : r.flows) lat.push_back(f.p95_latency);  // appended
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("fig5_latency_fairness", argc, argv);
  std::cout << "Fig. 5 reproduction: average GB packet latency "
               "(cycles/packet) vs % allocation of the output's bandwidth\n"
            << "8 flows, one output, 8-flit packets, bursty (on/off) "
               "injection at 2x the reserved rate\n\n";

  const auto vc = run_series(sw::ArbitrationMode::Baseline,
                             core::CounterPolicy::SubtractRealClock);
  const auto sub = run_series(sw::ArbitrationMode::SsvcQos,
                              core::CounterPolicy::SubtractRealClock);
  const auto halve =
      run_series(sw::ArbitrationMode::SsvcQos, core::CounterPolicy::Halve);
  const auto reset =
      run_series(sw::ArbitrationMode::SsvcQos, core::CounterPolicy::Reset);

  stats::Table table("Fig. 5 - Average latency (cycles/packet)");
  table.header({"alloc_%", "original_vc", "subtract_real_clock",
                "divide_by_2", "reset"});
  for (std::size_t i = 0; i < kAllocs.size(); ++i) {
    table.row()
        .cell(kAllocs[i] * 100.0, 0)
        .cell(vc[i], 1)
        .cell(sub[i], 1)
        .cell(halve[i], 1)
        .cell(reset[i], 1);
  }
  report.table(table);

  stats::Table p95("Tail view - p95 latency (cycles/packet)");
  p95.header({"alloc_%", "original_vc", "subtract_real_clock", "divide_by_2",
              "reset"});
  const std::size_t n = kAllocs.size();
  for (std::size_t i = 0; i < n; ++i) {
    p95.row()
        .cell(kAllocs[i] * 100.0, 0)
        .cell(vc[n + i], 1)
        .cell(sub[n + i], 1)
        .cell(halve[n + i], 1)
        .cell(reset[n + i], 1);
  }
  report.table(p95);

  if (!report.csv()) {
    stats::AsciiPlot plot("Fig. 5 - mean latency vs % allocation", 16);
    auto head = [n](const std::vector<double>& v) {
      return std::vector<double>(v.begin(),
                                 v.begin() + static_cast<std::ptrdiff_t>(n));
    };
    plot.add_series("original_vc", head(vc), 'V');
    plot.add_series("subtract", head(sub), 's');
    plot.add_series("halve", head(halve), 'h');
    plot.add_series("reset", head(reset), 'r');
    plot.x_labels("1%", "40%");
    plot.render(std::cout, /*log_y=*/true);
  }

  auto spread = [n](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(
        v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n));
    return *hi - *lo;
  };
  stats::Table summary("Latency spread across allocations (max - min)");
  summary.header({"series", "spread_cycles"});
  summary.row().cell("original_vc").cell(spread(vc), 1);
  summary.row().cell("subtract_real_clock").cell(spread(sub), 1);
  summary.row().cell("divide_by_2").cell(spread(halve), 1);
  summary.row().cell("reset").cell(spread(reset), 1);
  report.table(summary);
  return 0;
}
