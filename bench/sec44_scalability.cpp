// §4.4 — "Scalability": num_lanes = output_bus_width / radix; at least three
// lanes are needed for the three QoS classes; 128-bit buses cover radix
// 8/16/32 and a radix-64 switch needs a 256-bit bus. Also reports the GB
// level resolution each configuration affords and the Vtick quantisation
// error of the finite register.
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/params.hpp"
#include "qosmath/lanes.hpp"
#include "qosmath/vtick_analysis.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace ssq;
  bench::BenchReport report("sec44_scalability", argc, argv);
  const unsigned jobs = bench::parse_jobs(argc, argv);
  std::cout << "Sec. 4.4 reproduction: lane budget and SSVC accuracy vs "
               "radix and bus width\n\n";

  stats::Table lanes("Lane budget (num_lanes = bus_width / radix)");
  lanes.header({"radix", "bus_bits", "lanes", "supports_3_classes",
                "gb_lanes_with_gl_be", "gb_level_bits"});
  for (std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t width : {128u, 256u, 512u}) {
      const auto gb = qosmath::gb_lanes_available(width, radix, true, true);
      std::uint32_t bits = 0;
      while (gb != 0 && (1u << bits) < gb) ++bits;
      lanes.row()
          .cell(static_cast<std::uint64_t>(radix))
          .cell(static_cast<std::uint64_t>(width))
          .cell(static_cast<std::uint64_t>(qosmath::num_lanes(width, radix)))
          .cell(qosmath::supports_classes(width, radix, 3) ? "yes" : "no")
          .cell(static_cast<std::uint64_t>(gb))
          .cell(static_cast<std::uint64_t>(gb ? bits : 0));
    }
  }
  report.table(lanes);
  std::cout << "Paper: 128-bit suffices for radix 8/16/32; radix 64 needs "
               "256-bit for three classes; not scalable past 64 nodes.\n\n";

  stats::Table vt("Vtick register quantisation (8-bit register, 8-flit "
                  "packets)");
  vt.header({"vtick_shift", "rate_range", "worst_rate_error_%"});
  // Each shift's error sweep is an independent configuration point.
  constexpr std::uint32_t kShifts[] = {0u, 1u, 2u, 3u};
  struct VtPoint {
    double lo = 0.0;
    double error = 0.0;
  };
  const std::vector<VtPoint> vts =
      bench::run_points<VtPoint>(jobs, 4, [&](std::size_t i) {
        core::SsvcParams p;
        p.vtick_bits = 8;
        p.vtick_shift = kShifts[i];
        VtPoint out;
        out.lo = kShifts[i] >= 2 ? 0.01 : 0.05;  // range the register covers
        out.error = qosmath::max_vtick_error(p, out.lo, 0.40, 8);
        return out;
      });
  for (std::size_t i = 0; i < 4; ++i) {
    vt.row()
        .cell(static_cast<std::uint64_t>(kShifts[i]))
        .cell(std::to_string(vts[i].lo) + " .. 0.40")
        .cell(vts[i].error * 100.0, 2);
  }
  report.table(vt);
  return 0;
}
