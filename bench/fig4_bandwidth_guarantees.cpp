// Fig. 4 — "Bandwidth received by flows without and with QoS."
//
// 8 inputs -> 1 output, 128-bit channel, 8-flit packets, 16-flit buffers,
// GB traffic only, 4 significant bits of auxVC. Reserved fractions:
// 40/20/10/10/5/5/5/5 %. The injection rate of every input sweeps from well
// below saturation to deep saturation.
//
// (a) Without QoS (LRG arbitration): during congestion all flows converge to
//     an equal 1/8 share of the deliverable 8/9 ≈ 0.889 flits/cycle.
// (b) With SSVC: each flow receives at least min(its offer, its reserved
//     fraction of the deliverable total); at deep saturation the shares
//     stand in the reserved 8:4:2:2:1:1:1:1 proportions.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/ascii_plot.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kRates = {0.40, 0.20, 0.10, 0.10,
                                    0.05, 0.05, 0.05, 0.05};
constexpr std::uint32_t kPacketLen = 8;

traffic::Workload workload(double inject_rate) {
  traffic::Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(bench::make_gb_flow(i, 0, kRates[i], kPacketLen, inject_rate));
  }
  return w;
}

void run_series(const char* title, sw::ArbitrationMode mode,
                bench::BenchReport& report) {
  std::vector<std::vector<double>> curves(4);  // flows 1, 2, 3, 5
  stats::Table table(title);
  std::vector<std::string> header = {"inj_rate"};
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    header.push_back("flow" + std::to_string(i + 1) + "(r=" +
                     std::to_string(kRates[i]).substr(0, 4) + ")");
  }
  header.push_back("total");
  table.header(std::move(header));

  for (double inj : {0.0125, 0.025, 0.05, 0.075, 0.1, 0.111, 0.125, 0.15,
                     0.2, 0.3, 0.4, 0.5}) {
    auto config = bench::paper_switch_config();
    config.mode = mode;
    config.baseline = arb::Kind::Lrg;
    const auto r = sw::run_experiment(config, workload(inj), 5000, 60000);
    table.row().cell(inj, 4);
    for (const auto& f : r.flows) table.cell(f.accepted_rate, 4);
    table.cell(r.total_accepted_rate, 4);
    curves[0].push_back(r.flows[0].accepted_rate);
    curves[1].push_back(r.flows[1].accepted_rate);
    curves[2].push_back(r.flows[2].accepted_rate);
    curves[3].push_back(r.flows[4].accepted_rate);
  }
  report.table(table);
  if (!report.csv()) {
    stats::AsciiPlot plot(std::string(title) +
                          ": accepted throughput vs injection rate");
    plot.add_series("flow1 r=40%", curves[0], '1');
    plot.add_series("flow2 r=20%", curves[1], '2');
    plot.add_series("flow3 r=10%", curves[2], '3');
    plot.add_series("flow5 r=5%", curves[3], '5');
    plot.x_labels("0.0125", "0.5");
    plot.render(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("fig4_bandwidth_guarantees", argc, argv);
  std::cout << "Fig. 4 reproduction: accepted throughput at the output "
               "(flits/input/cycle) vs injection rate\n"
            << "Max deliverable with 8-flit packets: 8/9 = 0.8889 "
               "flits/cycle (one arbitration cycle per packet)\n\n";
  run_series("Fig. 4(a) - No QoS (LRG arbitration)",
             ssq::sw::ArbitrationMode::Baseline, report);
  run_series("Fig. 4(b) - QoS (SSVC, Virtual Clock arbitration)",
             ssq::sw::ArbitrationMode::SsvcQos, report);
  return 0;
}
