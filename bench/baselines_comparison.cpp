// §2.2 / §5 — SSVC against every related QoS mechanism the paper discusses,
// on the same switch and workload:
//
//   * LRG (no QoS), round-robin, age — class-blind fairness baselines,
//   * TDM slot tables (Æthereal/Nostrum style) — strict but wasteful,
//   * GSF-style frame regulation at the source,
//   * WRR / DWRR — static weighted baselines,
//   * packet-level WFQ — the O(N) finish-time family,
//   * exact Virtual Clock — SSVC without the thermometer coarsening,
//   * the 4-level fixed-priority design of [14],
//   * SSVC (this paper).
//
// Scenario 1: all flows saturated (does the policy deliver the reserved
// split?). Scenario 2: the largest reservation goes idle (is the leftover
// redistributed, or wasted? — "WRR and DWRR lead to network underutilization
// as they do not distribute leftover bandwidth…", "[in TDM] that time slot
// is wasted").
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

const std::vector<double> kRates = {0.40, 0.30, 0.20, 0.10};
constexpr std::uint32_t kLen = 8;

struct Policy {
  const char* name;
  sw::ArbitrationMode mode;
  arb::Kind kind;
  bool gsf;
};

const std::vector<Policy> kPolicies = {
    {"lrg (no QoS)", sw::ArbitrationMode::Baseline, arb::Kind::Lrg, false},
    {"round_robin", sw::ArbitrationMode::Baseline, arb::Kind::RoundRobin,
     false},
    {"age", sw::ArbitrationMode::Baseline, arb::Kind::Age, false},
    {"tdm (Aethereal/Nostrum)", sw::ArbitrationMode::Baseline, arb::Kind::Tdm,
     false},
    {"gsf-style (frames+lrg)", sw::ArbitrationMode::Baseline, arb::Kind::Lrg,
     true},
    {"wrr", sw::ArbitrationMode::Baseline, arb::Kind::Wrr, false},
    {"dwrr", sw::ArbitrationMode::Baseline, arb::Kind::Dwrr, false},
    {"wfq", sw::ArbitrationMode::Baseline, arb::Kind::Wfq, false},
    {"virtual_clock (exact)", sw::ArbitrationMode::Baseline,
     arb::Kind::VirtualClock, false},
    {"4-level fixed prio [14]", sw::ArbitrationMode::Baseline,
     arb::Kind::MultiLevel, false},
    {"ssvc (this paper)", sw::ArbitrationMode::SsvcQos, arb::Kind::Lrg,
     false},
};

sw::ExperimentResult run(const Policy& p, bool flow0_idle) {
  traffic::Workload w(4);
  for (InputId i = 0; i < 4; ++i) {
    auto f = bench::make_gb_flow(i, 0, kRates[i], kLen,
                                 (i == 0 && flow0_idle) ? 0.001 : 0.9);
    f.legacy_priority = 2;  // the 4-level design: all "level 2" messages
    w.add_flow(f);
  }
  auto config = bench::paper_switch_config();
  config.radix = 4;
  config.mode = p.mode;
  config.baseline = p.kind;
  config.gsf.enabled = p.gsf;
  config.arbitration_cycles =
      p.kind == arb::Kind::MultiLevel && p.mode == sw::ArbitrationMode::Baseline
          ? 2
          : 1;
  return sw::run_experiment(config, std::move(w), 5000, 60000);
}

void scenario(const char* title, bool flow0_idle, unsigned jobs,
              bench::BenchReport& report) {
  stats::Table t(title);
  t.header({"policy", "f0(40%)", "f1(30%)", "f2(20%)", "f3(10%)", "total",
            "mean_latency"});
  // One independent simulation per policy; results rendered in policy order.
  const std::vector<sw::ExperimentResult> results =
      bench::run_points<sw::ExperimentResult>(
          jobs, kPolicies.size(),
          [&](std::size_t i) { return run(kPolicies[i], flow0_idle); });
  for (std::size_t pi = 0; pi < kPolicies.size(); ++pi) {
    const auto& p = kPolicies[pi];
    const auto& r = results[pi];
    t.row().cell(p.name);
    double lat = 0.0;
    int lat_n = 0;
    for (const auto& f : r.flows) {
      t.cell(f.accepted_rate, 3);
      if (f.delivered_packets > 0) {
        lat += f.mean_latency;
        ++lat_n;
      }
    }
    t.cell(r.total_accepted_rate, 3);
    t.cell(lat_n ? lat / lat_n : 0.0, 1);
  }
  report.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("baselines_comparison", argc, argv);
  const unsigned jobs = ssq::bench::parse_jobs(argc, argv);
  std::cout << "Sec. 2.2 / Sec. 5 baselines: one output, reservations "
               "40/30/20/10 %, 8-flit packets\n\n";
  scenario("Scenario 1 - all flows saturated (offered 0.9 each)", false, jobs,
           report);
  scenario("Scenario 2 - the 40% flow goes idle: is its share "
           "redistributed or wasted?",
           true, jobs, report);
  std::cout
      << "Reading scenario 2's `total`: work-conserving policies fill the "
         "channel (~0.889);\nTDM wastes the idle owner's slots; GSF loses "
         "its barrier window on top of LRG's\nequal split; SSVC "
         "redistributes the leftover while still honouring the remaining\n"
         "reservations.\n";
  return 0;
}
