// §4.4 — "Scaling to more nodes involve[s] composing multiple switches,
// which makes the QoS technique more complex. Crosspoints will have to be
// shared by several flows … It becomes increasingly difficult to maintain
// separation between flows in buffers."
//
// The experiment: 16 nodes reach 4 destinations either through ONE radix-16
// SSVC switch or through a composed network (4 concentrators with one uplink
// each, feeding a 4x4 second stage). Same flows, same reservations. Node 0
// sends flow A to destination 0 (30 % reservation) and a greedy flow B to
// destination 1 (5 % reservation); in the composed network both share the
// single (node0, uplink) crosspoint and its one GB FIFO, so when node 1
// congests the uplink the arbiter can only shape node 0's AGGREGATE: A and
// B split it evenly, A misses its guarantee, B over-consumes 5x. The single
// switch gives the two flows distinct crosspoints and keeps both.
#include <iostream>
#include <string>
#include <vector>

#include "multihop/two_stage.hpp"
#include "common.hpp"
#include "stats/table.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ssq;

struct FlowDef {
  std::uint32_t node;
  OutputId dest;
  double rate;
  double inject;
  const char* label;
};

const std::vector<FlowDef> kFlows = {
    {0, 0, 0.30, 0.35, "A: node0 -> d0 (r=30%)"},
    {0, 1, 0.05, 0.35, "B: node0 -> d1 (r=5%, greedy)"},
    {1, 0, 0.30, 0.40, "C: node1 -> d0 (r=30%)"},
};

std::vector<double> run_single() {
  traffic::Workload w(16);
  for (const auto& fd : kFlows) {
    traffic::FlowSpec f;
    f.src = fd.node;
    f.dst = fd.dest;
    f.cls = TrafficClass::GuaranteedBandwidth;
    f.reserved_rate = fd.rate;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = fd.inject;
    w.add_flow(f);
  }
  sw::SwitchConfig c;
  c.radix = 16;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_shift = 2;
  c.seed = 5;
  const auto r = sw::run_experiment(c, std::move(w), 5000, 100000);
  std::vector<double> rates;
  for (const auto& f : r.flows) rates.push_back(f.accepted_rate);
  return rates;
}

std::vector<double> run_composed() {
  std::vector<multihop::HopFlow> flows;
  for (const auto& fd : kFlows) {
    multihop::HopFlow f;
    f.node = fd.node;
    f.dest = fd.dest;
    f.cls = TrafficClass::GuaranteedBandwidth;
    f.reserved_rate = fd.rate;
    f.packet_len = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = fd.inject;
    flows.push_back(f);
  }
  multihop::TwoStageConfig c;
  c.groups = 4;
  c.nodes_per_group = 4;
  c.dests = 4;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_shift = 2;
  c.seed = 5;
  multihop::TwoStageNetwork net(c, std::move(flows));
  net.warmup(5000);
  net.measure(100000);
  std::vector<double> rates;
  for (std::size_t f = 0; f < kFlows.size(); ++f) {
    rates.push_back(net.throughput().rate(f));
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("sec44_composition", argc, argv);
  std::cout << "Sec. 4.4 reproduction: single-stage QoS vs composed "
               "multi-switch QoS (flits/cycle)\n\n";

  const auto single = run_single();
  const auto composed = run_composed();

  stats::Table t("Per-flow accepted throughput");
  t.header({"flow", "reserved", "offered", "single_switch", "composed",
            "guarantee"});
  for (std::size_t f = 0; f < kFlows.size(); ++f) {
    const bool single_ok =
        single[f] >= std::min(kFlows[f].inject, kFlows[f].rate * 8.0 / 9.0) -
                         0.02;
    const bool composed_ok =
        composed[f] >= std::min(kFlows[f].inject, kFlows[f].rate * 8.0 / 9.0) -
                           0.02;
    t.row()
        .cell(kFlows[f].label)
        .cell(kFlows[f].rate, 2)
        .cell(kFlows[f].inject, 2)
        .cell(single[f], 3)
        .cell(composed[f], 3)
        .cell(std::string(single_ok ? "kept" : "VIOLATED") + " / " +
              (composed_ok ? "kept" : "VIOLATED"));
  }
  report.table(t);

  std::cout << "Node-0 aggregate (A+B): single " << single[0] + single[1]
            << ", composed " << composed[0] + composed[1]
            << " — the aggregate survives composition; the per-flow split "
               "across the shared crosspoint does not.\n";
  return 0;
}
