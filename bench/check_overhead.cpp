// Micro-benchmark (google-benchmark) for the differential checker's cost:
// whole-switch stepping bare, under invariants-only checking, and under the
// full three-way differential (with and without the bit-level circuit leg
// and the deep state comparison). items_per_second = simulated cycles per
// wall-clock second, so the overhead of each checking tier reads directly
// off the report. Methodological (fuzz-throughput budgeting), not a paper
// table.
#include <benchmark/benchmark.h>

#include <optional>

#include "check/differential.hpp"
#include "check/scenario.hpp"

namespace {

using namespace ssq;

enum class Mode { Bare, Invariants, NoCircuit, NoState, Full };

check::Scenario base_scenario() {
  check::Scenario s;
  s.name = "bench";
  s.seed = 99;
  s.radix = 8;
  for (InputId i = 0; i < 3; ++i) {
    traffic::FlowSpec gb;
    gb.src = i;
    gb.dst = 4;
    gb.cls = TrafficClass::GuaranteedBandwidth;
    gb.reserved_rate = 0.2;
    gb.inject = traffic::InjectKind::Bernoulli;
    gb.inject_rate = 0.25;
    s.flows.push_back(gb);
  }
  traffic::FlowSpec be;
  be.src = 5;
  be.dst = 4;
  be.inject = traffic::InjectKind::Bernoulli;
  be.inject_rate = 0.4;
  s.flows.push_back(be);
  traffic::FlowSpec gl;
  gl.src = 6;
  gl.dst = 4;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.inject = traffic::InjectKind::Bernoulli;
  gl.inject_rate = 0.02;
  s.flows.push_back(gl);
  s.gl_reservations.push_back({4, 0.05, 1});
  return s;
}

void BM_CheckedStep(benchmark::State& state, Mode mode) {
  const check::Scenario s = base_scenario();
  check::ScenarioRun rig = check::instantiate(s);
  std::optional<check::DifferentialChecker> checker;
  if (mode != Mode::Bare) {
    check::CheckOptions opts;
    opts.differential = mode != Mode::Invariants;
    opts.circuit = mode == Mode::Full || mode == Mode::NoState;
    opts.state_compare = mode == Mode::Full || mode == Mode::NoCircuit;
    checker.emplace(*rig.sim, opts);
  }
  constexpr Cycle kChunk = 1000;
  for (auto _ : state) {
    if (checker.has_value()) {
      for (Cycle c = 0; c < kChunk; ++c) checker->step();
    } else {
      for (Cycle c = 0; c < kChunk; ++c) rig.sim->step();
    }
    benchmark::DoNotOptimize(rig.sim->now());
  }
  if (checker.has_value() && checker->divergence().has_value()) {
    state.SkipWithError("differential checker diverged during benchmark");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}

}  // namespace

BENCHMARK_CAPTURE(BM_CheckedStep, bare, Mode::Bare);
BENCHMARK_CAPTURE(BM_CheckedStep, invariants_only, Mode::Invariants);
BENCHMARK_CAPTURE(BM_CheckedStep, differential_no_circuit, Mode::NoCircuit);
BENCHMARK_CAPTURE(BM_CheckedStep, differential_no_state, Mode::NoState);
BENCHMARK_CAPTURE(BM_CheckedStep, differential_full, Mode::Full);

BENCHMARK_MAIN();
