// Shared helpers for the bench binaries: paper-standard configurations and
// flow builders. Every bench prints its tables via ssq::stats::Table and
// accepts `--csv` for machine-readable output.
#pragma once

#include <cstdint>

#include "switch/config.hpp"
#include "traffic/flow.hpp"

namespace ssq::bench {

/// The evaluation-section switch configuration: radix 8, 128-bit channel
/// (16 lanes), "4 significant bits of auxVC", 16-flit buffers, 8-flit
/// packets (Fig. 4 details). lsb_bits = 5 keeps the level granularity at 32
/// cycles so the Fig. 4 Vtick range (22.5–180 cycles) resolves across
/// levels; vtick_shift = 2 extends the 8-bit Vtick register to the 1 %
/// allocations of Fig. 5.
inline sw::SwitchConfig paper_switch_config() {
  sw::SwitchConfig c;
  c.radix = 8;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_bits = 8;
  c.ssvc.vtick_shift = 2;
  c.buffers.be_flits = 16;
  c.buffers.gb_flits_per_output = 16;
  c.buffers.gl_flits = 16;
  c.seed = 0xDAC2014;
  return c;
}

inline traffic::FlowSpec make_gb_flow(
    InputId src, OutputId dst, double rate, std::uint32_t len,
    double inject_rate,
    traffic::InjectKind kind = traffic::InjectKind::Bernoulli) {
  traffic::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.len_min = f.len_max = len;
  f.inject = kind;
  f.inject_rate = inject_rate;
  return f;
}

inline traffic::FlowSpec make_gl_flow(InputId src, OutputId dst,
                                      std::uint32_t len, double inject_rate) {
  traffic::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedLatency;
  f.len_min = f.len_max = len;
  f.inject = traffic::InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

}  // namespace ssq::bench
