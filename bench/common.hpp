// Shared helpers for the bench binaries: paper-standard configurations,
// flow builders, and the BenchReport output harness. Every bench prints its
// tables via ssq::stats::Table, accepts `--csv` for machine-readable output
// and `--json[=PATH]` to also write a BENCH_<name>.json report (schema
// documented in docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "stats/table.hpp"
#include "switch/config.hpp"
#include "traffic/flow.hpp"

namespace ssq::bench {

/// Parses `--jobs=N` from argv (default 1 = serial; 0 = all hardware
/// threads). Sweep benches use this to farm independent configuration
/// points out to a thread pool; each point seeds its own RNG from the
/// switch config, so results are identical at any job count.
inline unsigned parse_jobs(int argc, char** argv) {
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--jobs=") {
      jobs = static_cast<unsigned>(
          std::strtoul(std::string(arg.substr(7)).c_str(), nullptr, 10));
      if (jobs == 0) jobs = exec::ThreadPool::hardware_threads();
    }
  }
  return jobs;
}

/// Runs `fn(i)` for every configuration point in [0, n) on `jobs` threads
/// and returns the results in index order. `fn` must be pure per index
/// (every sweep bench constructs its switch + RNG inside the callable).
template <typename R, typename Fn>
std::vector<R> run_points(unsigned jobs, std::size_t n, Fn&& fn) {
  exec::ThreadPool pool(jobs);
  return exec::run_batch<R>(pool, n, std::forward<Fn>(fn));
}

/// Per-bench output harness. Renders every table to stdout exactly like the
/// old `t.render(std::cout, csv)` calls, and — when `--json` (default path
/// `BENCH_<name>.json`) or `--json=PATH` is passed — also serialises all
/// tables plus any scalar metrics to one JSON object on destruction:
///
///   {"schema":"ssq.bench.v1","bench":"<name>",
///    "metrics":{"<name>":<number>,...},
///    "tables":[{"title":"...","columns":[...],"rows":[[...],...]},...]}
class BenchReport {
 public:
  BenchReport(std::string name, int argc, char** argv)
      : name_(std::move(name)), csv_(stats::want_csv(argc, argv)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--json") {
        json_path_ = "BENCH_" + name_ + ".json";
      } else if (arg.substr(0, 7) == "--json=") {
        json_path_ = std::string(arg.substr(7));
      }
    }
  }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { write(); }

  [[nodiscard]] bool csv() const noexcept { return csv_; }

  /// Renders `t` to stdout and queues it for the JSON report.
  void table(const stats::Table& t) {
    t.render(std::cout, csv_);
    if (!json_path_.empty()) tables_.push_back(t);
  }

  /// Records a headline scalar (e.g. cycles/sec) for the JSON report.
  void metric(std::string name, double value) {
    metrics_.emplace_back(std::move(name), value);
  }

  /// Writes the JSON report now (idempotent; also called by the dtor).
  void write() {
    if (json_path_.empty() || written_) return;
    written_ = true;
    std::ofstream os(json_path_);
    if (!os) {
      std::cerr << "bench: cannot open '" << json_path_ << "' for writing\n";
      return;
    }
    os << "{\"schema\":\"ssq.bench.v1\",\"bench\":" << obs::json_quote(name_)
       << ",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) os << ',';
      os << obs::json_quote(metrics_[i].first) << ':'
         << obs::json_number(metrics_[i].second);
    }
    os << "},\"tables\":[";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& tab = tables_[t];
      if (t) os << ',';
      os << "\n{\"title\":" << obs::json_quote(tab.title())
         << ",\"columns\":[";
      for (std::size_t c = 0; c < tab.columns().size(); ++c) {
        if (c) os << ',';
        os << obs::json_quote(tab.columns()[c]);
      }
      os << "],\"rows\":[";
      for (std::size_t r = 0; r < tab.rows().size(); ++r) {
        if (r) os << ',';
        os << '[';
        for (std::size_t c = 0; c < tab.rows()[r].size(); ++c) {
          if (c) os << ',';
          os << obs::json_quote(tab.rows()[r][c]);
        }
        os << ']';
      }
      os << "]}";
    }
    os << "]}\n";
    if (!csv_) std::cout << "json report: " << json_path_ << "\n";
  }

 private:
  std::string name_;
  bool csv_ = false;
  bool written_ = false;
  std::string json_path_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<stats::Table> tables_;
};

/// The evaluation-section switch configuration: radix 8, 128-bit channel
/// (16 lanes), "4 significant bits of auxVC", 16-flit buffers, 8-flit
/// packets (Fig. 4 details). lsb_bits = 5 keeps the level granularity at 32
/// cycles so the Fig. 4 Vtick range (22.5–180 cycles) resolves across
/// levels; vtick_shift = 2 extends the 8-bit Vtick register to the 1 %
/// allocations of Fig. 5.
inline sw::SwitchConfig paper_switch_config() {
  sw::SwitchConfig c;
  c.radix = 8;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_bits = 8;
  c.ssvc.vtick_shift = 2;
  c.buffers.be_flits = 16;
  c.buffers.gb_flits_per_output = 16;
  c.buffers.gl_flits = 16;
  c.seed = 0xDAC2014;
  return c;
}

inline traffic::FlowSpec make_gb_flow(
    InputId src, OutputId dst, double rate, std::uint32_t len,
    double inject_rate,
    traffic::InjectKind kind = traffic::InjectKind::Bernoulli) {
  traffic::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.len_min = f.len_max = len;
  f.inject = kind;
  f.inject_rate = inject_rate;
  return f;
}

inline traffic::FlowSpec make_gl_flow(InputId src, OutputId dst,
                                      std::uint32_t len, double inject_rate) {
  traffic::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedLatency;
  f.len_min = f.len_max = len;
  f.inject = traffic::InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

}  // namespace ssq::bench
