// stability_lab — throughput floor and delay curves for the matching
// engines (SSVC single-request emulation, iSLIP, QPS-r, SW-QPS) on the cell
// model (src/check/stability.hpp), over admissible synthetic patterns.
//
// One wide comparison table: a row per (pattern, load) point, a column
// group (throughput, mean delay, p99 delay) per engine, so the engines are
// read side by side. `--json[=PATH]` additionally writes every point as an
// ssq.stability.v1 report (schema in docs/SCHEDULING.md).
//
// Exit codes: 0 ok, 2 bad usage/config.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/stability.hpp"
#include "common.hpp"
#include "obs/json.hpp"
#include "sim/error.hpp"
#include "stats/table.hpp"

namespace {

using namespace ssq;

constexpr const char* kHelp = R"(usage: stability_lab [options]

Measures throughput floor, mean/p99 cell delay and convergence iterations
for the matching engines on the cell model (unit cells, unbounded VOQs).

  --radix=N       switch radix (default 16)
  --cycles=N      measured slots per point (default 20000)
  --warmup=N      warmup slots before measurement (default 2000)
  --iters=N       iteration budget / SW-QPS window (default 3)
  --seed=N        base seed (default 1); traffic is identical across engines
  --engines=LIST  comma list of ssvc,islip,qps,swqps (default all four)
  --patterns=LIST comma list of uniform,diagonal,logdiag,hotspot
                  (default all four)
  --loads=LIST    comma list of offered loads in (0,1)
                  (default 0.5,0.7,0.85,0.95)
  --jobs=N        measure points on N threads (0 = all hardware threads)
  --csv           CSV table output
  --json[=PATH]   also write the ssq.stability.v1 JSON report
                  (default stability.json)
  --help          this message
)";

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  for (std::string item; std::getline(ss, item, ',');) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw ConfigError("empty list value");
  return out;
}

std::uint64_t parse_u64(const std::string& value, std::string_view option) {
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    throw ConfigError("invalid value '" + value + "' for " +
                      std::string(option));
  }
  return x;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t radix = 16;
  Cycle cycles = 20000;
  Cycle warmup = 2000;
  std::uint32_t iters = 3;
  std::uint64_t seed = 1;
  std::vector<arb::MatchKind> engines = {
      arb::MatchKind::Ssvc, arb::MatchKind::Islip, arb::MatchKind::Qps,
      arb::MatchKind::SwQps};
  std::vector<check::TrafficPattern> patterns = {
      check::TrafficPattern::Uniform, check::TrafficPattern::Diagonal,
      check::TrafficPattern::LogDiagonal, check::TrafficPattern::Hotspot};
  std::vector<double> loads = {0.5, 0.7, 0.85, 0.95};
  std::string json_path;
  bool csv = false;

  try {
    for (int a = 1; a < argc; ++a) {
      const std::string_view arg = argv[a];
      const auto value = [&](std::string_view key) -> std::string {
        return std::string(arg.substr(key.size() + 1));
      };
      if (arg == "--help") {
        std::cout << kHelp;
        return 0;
      } else if (arg.substr(0, 8) == "--radix=") {
        radix = static_cast<std::uint32_t>(parse_u64(value("--radix"),
                                                     "--radix"));
      } else if (arg.substr(0, 9) == "--cycles=") {
        cycles = parse_u64(value("--cycles"), "--cycles");
      } else if (arg.substr(0, 9) == "--warmup=") {
        warmup = parse_u64(value("--warmup"), "--warmup");
      } else if (arg.substr(0, 8) == "--iters=") {
        iters = static_cast<std::uint32_t>(parse_u64(value("--iters"),
                                                     "--iters"));
      } else if (arg.substr(0, 7) == "--seed=") {
        seed = parse_u64(value("--seed"), "--seed");
      } else if (arg.substr(0, 10) == "--engines=") {
        engines.clear();
        for (const auto& e : split_csv(value("--engines"))) {
          engines.push_back(arb::parse_match_kind(e));
        }
      } else if (arg.substr(0, 11) == "--patterns=") {
        patterns.clear();
        for (const auto& p : split_csv(value("--patterns"))) {
          patterns.push_back(check::parse_pattern(p));
        }
      } else if (arg.substr(0, 8) == "--loads=") {
        loads.clear();
        for (const auto& l : split_csv(value("--loads"))) {
          char* end = nullptr;
          const double x = std::strtod(l.c_str(), &end);
          if (end == l.c_str() || *end != '\0') {
            throw ConfigError("invalid load '" + l + "'");
          }
          loads.push_back(x);
        }
      } else if (arg == "--json") {
        json_path = "stability.json";
      } else if (arg.substr(0, 7) == "--json=") {
        json_path = value("--json");
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg.substr(0, 7) == "--jobs=") {
        // handled by bench::parse_jobs below
      } else {
        std::cerr << "unknown option '" << arg << "' (--help for the list)\n";
        return 2;
      }
    }

    // One measurement per (pattern, load, engine), farmed out per point;
    // every point draws from its own (seed, pattern, load) streams, so the
    // results are identical at any --jobs value. Engines see IDENTICAL
    // traffic at a given (pattern, load): the comparison is paired.
    struct PointSpec {
      check::TrafficPattern pattern;
      double load;
      arb::MatchKind engine;
    };
    std::vector<PointSpec> specs;
    for (const auto p : patterns) {
      for (const double l : loads) {
        for (const auto e : engines) specs.push_back({p, l, e});
      }
    }
    const unsigned jobs = bench::parse_jobs(argc, argv);
    std::vector<check::StabilityPoint> points =
        bench::run_points<check::StabilityPoint>(
            jobs, specs.size(), [&](std::size_t k) {
              check::StabilityConfig cfg;
              cfg.radix = radix;
              cfg.engine = specs[k].engine;
              cfg.iterations = iters;
              cfg.pattern = specs[k].pattern;
              cfg.load = specs[k].load;
              cfg.warmup = warmup;
              cfg.cycles = cycles;
              cfg.seed = seed;
              return check::measure_stability(cfg);
            });

    // Wide comparison table: engines side by side per (pattern, load).
    stats::Table t("stability lab: radix " + std::to_string(radix) + ", " +
                   std::to_string(cycles) + " slots, iters " +
                   std::to_string(iters));
    std::vector<std::string> head = {"pattern", "load"};
    for (const auto e : engines) {
      const std::string n(arb::match_kind_name(e));
      head.push_back(n + "_thpt");
      head.push_back(n + "_mean");
      head.push_back(n + "_p99");
    }
    t.header(head);
    std::size_t k = 0;
    for (const auto p : patterns) {
      for (const double l : loads) {
        auto& row = t.row();
        row.cell(std::string(check::to_string(p))).cell(l, 2);
        for (std::size_t e = 0; e < engines.size(); ++e, ++k) {
          const check::StabilityPoint& pt = points[k];
          row.cell(pt.throughput, 4)
              .cell(pt.mean_delay, 1)
              .cell(static_cast<std::uint64_t>(pt.p99_delay));
        }
      }
    }
    t.render(std::cout, csv);

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) throw ConfigError("cannot open '" + json_path + "'");
      os << "{\"schema\":\"ssq.stability.v1\",\"radix\":" << radix
         << ",\"cycles\":" << cycles << ",\"warmup\":" << warmup
         << ",\"iterations\":" << iters << ",\"seed\":" << seed
         << ",\"points\":[";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const check::StabilityPoint& pt = points[i];
        if (i) os << ',';
        os << "\n{\"engine\":" << obs::json_quote(pt.engine)
           << ",\"pattern\":" << obs::json_quote(pt.pattern)
           << ",\"load\":" << fmt(pt.load, 4)
           << ",\"offered\":" << fmt(pt.offered, 6)
           << ",\"throughput\":" << fmt(pt.throughput, 6)
           << ",\"arrived\":" << pt.arrived << ",\"departed\":" << pt.departed
           << ",\"mean_delay\":" << fmt(pt.mean_delay, 3)
           << ",\"p99_delay\":" << pt.p99_delay
           << ",\"max_backlog\":" << pt.max_backlog
           << ",\"backlog_end\":" << pt.backlog_end
           << ",\"avg_iterations\":" << fmt(pt.avg_iterations, 3) << "}";
      }
      os << "\n]}\n";
      if (!csv) std::cout << "json report: " << json_path << "\n";
    }
    return 0;
  } catch (const ConfigError& e) {
    std::cerr << "stability_lab: " << e.what() << "\n";
    return 2;
  }
}
