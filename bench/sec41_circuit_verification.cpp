// §4.1 — the paper's verification methodology, as a runnable harness:
// "we further modeled the behavior of each wire, multiplexer, and sense amp
// in a C++ program. We tested this program with all input combinations of
// thermometer code vectors and valid LRG states. The arbitration decision of
// the level model was compared to the arbitration decision of a true
// (non-coarse grained) auxVC value comparison."
//
// Exhaustive sweeps at small radix (every LRG total order x every request
// subset x every level combination), randomized sweeps at radix 8/16/64.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "arb/lrg.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "sim/rng.hpp"
#include "common.hpp"
#include "stats/table.hpp"

namespace {

using namespace ssq;

std::vector<std::uint64_t> matrix_from_permutation(
    const std::vector<InputId>& perm) {
  std::vector<std::uint64_t> rows(perm.size(), 0);
  for (std::size_t a = 0; a < perm.size(); ++a) {
    for (std::size_t b = a + 1; b < perm.size(); ++b) {
      rows[perm[a]] |= 1ULL << perm[b];
    }
  }
  return rows;
}

struct SweepResult {
  std::uint64_t cases = 0;
  std::uint64_t mismatches = 0;
};

SweepResult exhaustive(std::uint32_t radix, std::uint32_t gb_lanes) {
  circuit::LaneLayout layout{.radix = radix,
                             .bus_width = radix * gb_lanes,
                             .gb_lanes = gb_lanes,
                             .has_gl_lane = false,
                             .has_be_lane = false};
  circuit::CircuitArbiter wires(layout);
  arb::LrgArbiter lrg(radix);
  SweepResult result;

  std::vector<InputId> perm(radix);
  std::iota(perm.begin(), perm.end(), 0u);
  do {
    lrg.set_matrix(matrix_from_permutation(perm));
    for (std::uint32_t mask = 1; mask < (1u << radix); ++mask) {
      std::vector<InputId> members;
      for (InputId i = 0; i < radix; ++i) {
        if ((mask >> i) & 1u) members.push_back(i);
      }
      std::vector<std::uint32_t> levels(members.size(), 0);
      while (true) {
        std::vector<circuit::CrosspointRequest> reqs;
        for (std::size_t k = 0; k < members.size(); ++k) {
          reqs.push_back({members[k], circuit::RequestKind::Gb, levels[k]});
        }
        const auto trace = wires.arbitrate(reqs, lrg);
        if (trace.winner != circuit::reference_decision(reqs, lrg, layout)) {
          ++result.mismatches;
        }
        ++result.cases;
        std::size_t d = 0;
        while (d < levels.size() && ++levels[d] == gb_lanes) {
          levels[d] = 0;
          ++d;
        }
        if (d == levels.size()) break;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return result;
}

SweepResult randomized(std::uint32_t radix, std::uint32_t gb_lanes,
                       std::uint32_t bus_width, int trials) {
  circuit::LaneLayout layout{.radix = radix,
                             .bus_width = bus_width,
                             .gb_lanes = gb_lanes,
                             .has_gl_lane = true,
                             .has_be_lane = true};
  circuit::CircuitArbiter wires(layout);
  arb::LrgArbiter lrg(radix);
  Rng rng(0x41);
  SweepResult result;
  for (int t = 0; t < trials; ++t) {
    lrg.on_grant(static_cast<InputId>(rng.below(radix)), 1, 0);
    std::vector<circuit::CrosspointRequest> reqs;
    for (InputId i = 0; i < radix; ++i) {
      switch (rng.below(4)) {
        case 0: break;
        case 1: reqs.push_back({i, circuit::RequestKind::BestEffort, 0}); break;
        case 2:
          reqs.push_back({i, circuit::RequestKind::Gb,
                          static_cast<std::uint32_t>(rng.below(gb_lanes))});
          break;
        case 3: reqs.push_back({i, circuit::RequestKind::Gl, 0}); break;
      }
    }
    if (reqs.empty()) continue;
    const auto trace = wires.arbitrate(reqs, lrg);
    if (trace.winner != circuit::reference_decision(reqs, lrg, layout)) {
      ++result.mismatches;
    }
    ++result.cases;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("sec41_circuit_verification", argc, argv);
  std::cout << "Sec. 4.1 reproduction: bit-level circuit model vs true "
               "auxVC-comparison reference\n\n";
  stats::Table t("Circuit-equivalence sweeps");
  t.header({"sweep", "radix", "gb_lanes", "cases", "mismatches"});

  {
    const auto r = exhaustive(3, 4);
    t.row().cell("exhaustive (orders x subsets x levels)").cell(3).cell(4)
        .cell(r.cases).cell(r.mismatches);
  }
  {
    const auto r = exhaustive(4, 4);
    t.row().cell("exhaustive (orders x subsets x levels)").cell(4).cell(4)
        .cell(r.cases).cell(r.mismatches);
  }
  {
    const auto r = randomized(8, 8, 128, 200000);
    t.row().cell("randomized, all classes").cell(8).cell(8).cell(r.cases)
        .cell(r.mismatches);
  }
  {
    const auto r = randomized(16, 4, 128, 100000);
    t.row().cell("randomized, all classes").cell(16).cell(4).cell(r.cases)
        .cell(r.mismatches);
  }
  {
    const auto r = randomized(64, 4, 512, 20000);
    t.row().cell("randomized, all classes").cell(64).cell(4).cell(r.cases)
        .cell(r.mismatches);
  }
  report.table(t);
  std::cout << "Every arbitration decision of the wire model must match the "
               "reference (0 mismatches).\n";
  return 0;
}
