// Extension — classic synthetic traffic patterns across the switch.
//
// The NoC evaluation staples (uniform random, hotspot, transpose, tornado,
// neighbour) on the radix-8 SSVC crossbar: saturation throughput and mean
// latency per pattern, with and without QoS reservations. Permutation
// patterns saturate at the full L/(L+1) per port (no output conflicts);
// uniform random loses to output contention; the hotspot concentrates
// everything on one channel.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "stats/table.hpp"
#include "switch/crossbar.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace ssq;

struct Result {
  double accepted_per_input = 0.0;
  double mean_latency = 0.0;
};

Result run(traffic::Pattern pattern, TrafficClass cls, double load) {
  traffic::PatternConfig pc;
  pc.pattern = pattern;
  pc.radix = 8;
  pc.load_per_input = load;
  pc.packet_len = 8;
  pc.cls = cls;
  auto workload = traffic::build_pattern(pc);
  const std::size_t flows = workload.num_flows();

  auto config = bench::paper_switch_config();
  sw::CrossbarSwitch sim(config, std::move(workload));
  sim.warmup(5000);
  sim.measure(40000);
  Result r;
  double lat = 0.0;
  std::size_t lat_n = 0;
  for (FlowId f = 0; f < flows; ++f) {
    r.accepted_per_input += sim.throughput().rate(f);
    const auto& s = sim.latency().flow_summary(f);
    if (s.count()) {
      lat += s.mean();
      ++lat_n;
    }
  }
  r.accepted_per_input /= 8.0;
  r.mean_latency = lat_n ? lat / static_cast<double>(lat_n) : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ssq::bench::BenchReport report("patterns_sweep", argc, argv);
  const unsigned jobs = ssq::bench::parse_jobs(argc, argv);
  std::cout << "Extension: classic synthetic patterns on the radix-8 SSVC "
               "switch (8-flit packets; per-port ceiling 8/9)\n\n";

  // Enumerate every (class, pattern, load) point, farm the independent
  // simulations out to the pool, then render in enumeration order.
  constexpr TrafficClass kClasses[] = {TrafficClass::BestEffort,
                                       TrafficClass::GuaranteedBandwidth};
  constexpr traffic::Pattern kPatterns[] = {
      traffic::Pattern::UniformRandom, traffic::Pattern::Hotspot,
      traffic::Pattern::Transpose, traffic::Pattern::Tornado,
      traffic::Pattern::Neighbour};
  constexpr double kLoads[] = {0.2, 0.5, 0.9};
  struct Point {
    TrafficClass cls;
    traffic::Pattern pattern;
    double load;
  };
  std::vector<Point> points;
  for (TrafficClass cls : kClasses)
    for (traffic::Pattern p : kPatterns)
      for (double load : kLoads) points.push_back({cls, p, load});
  const std::vector<Result> results = ssq::bench::run_points<Result>(
      jobs, points.size(), [&](std::size_t i) {
        return run(points[i].pattern, points[i].cls, points[i].load);
      });

  std::size_t next = 0;
  for (TrafficClass cls : kClasses) {
    stats::Table t(std::string("Accepted flits/input/cycle (") +
                   (cls == TrafficClass::BestEffort ? "best-effort"
                                                    : "GB-reserved") +
                   ")");
    t.header({"pattern", "load=0.2", "lat", "load=0.5", "lat", "load=0.9",
              "lat"});
    for (traffic::Pattern p : kPatterns) {
      t.row().cell(traffic::pattern_name(p));
      for ([[maybe_unused]] double load : kLoads) {
        const Result& r = results[next++];
        t.cell(r.accepted_per_input, 3);
        t.cell(r.mean_latency, 1);
      }
    }
    report.table(t);
  }
  std::cout << "Permutations reach the 0.889 per-port ceiling; uniform "
               "random is limited by the single-BE-queue head-of-line "
               "blocking (BE) or sustains higher load via per-output GB "
               "queues (GB); the hotspot funnels all eight inputs into one "
               "0.889 channel (~0.111/input).\n";
  return 0;
}
