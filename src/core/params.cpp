#include "core/params.hpp"

#include <cmath>

namespace ssq::core {

std::uint64_t quantize_vtick(const SsvcParams& params,
                             double ideal_vtick_cycles) {
  SSQ_EXPECT(ideal_vtick_cycles > 0.0);
  const double scaled =
      ideal_vtick_cycles / static_cast<double>(1ULL << params.vtick_shift);
  auto reg = static_cast<std::uint64_t>(std::llround(scaled));
  if (reg < 1) reg = 1;
  const std::uint64_t reg_max = (1ULL << params.vtick_bits) - 1;
  if (reg > reg_max) reg = reg_max;
  return reg << params.vtick_shift;
}

double ideal_vtick(double rate, std::uint32_t packet_len) {
  SSQ_EXPECT(rate > 0.0 && rate <= 1.0);
  SSQ_EXPECT(packet_len >= 1);
  // Every packet costs packet_len transfer cycles PLUS the arbitration cycle
  // (the Swizzle Switch reuses the output bus wires to arbitrate, so a
  // channel delivers at most L/(L+1) flits/cycle). A flow reserving
  // fraction `rate` of the channel is therefore entitled to one packet per
  // (L+1)/rate cycles. Calibrating Vtick against L/rate instead would make
  // every admissible reservation collectively infeasible and the real-time
  // clamp would wash out the differentiation.
  return static_cast<double>(packet_len + 1) / rate;
}

}  // namespace ssq::core
