// Guaranteed-Latency class usage tracker (paper §3.4).
//
// "The bandwidth usage of the GL class is tracked by a counter similar to
// the auxVC counters of the GB class and increments by a tick count
// proportional to the reserved rate." The GL reservation is shared by every
// input injecting to the output, so there is ONE tracker per output, not one
// per crosspoint.
//
// Policing ("we put safeguards in place to prevent its abuse"): the class is
// eligible for its absolute-priority override only while its virtual clock
// has not run further ahead of real time than an allowance of
// `allowance_packets` Vticks. An over-budget GL class either stalls (waits
// for real time to catch up — the default, which preserves GB guarantees and
// the Eq. (1) bound for compliant senders) or is demoted to best-effort
// priority, selectable via GlPolicing.
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::core {

enum class GlPolicing : std::uint8_t {
  /// Over-budget GL requests wait until the class is compliant again.
  Stall = 0,
  /// Over-budget GL requests compete at best-effort priority.
  Demote = 1,
  /// No policing (trust the senders). Used to demonstrate abuse in tests.
  None = 2,
};

[[nodiscard]] constexpr const char* to_string(GlPolicing p) noexcept {
  switch (p) {
    case GlPolicing::Stall: return "stall";
    case GlPolicing::Demote: return "demote";
    case GlPolicing::None: return "none";
  }
  return "?";
}

class GlTracker {
 public:
  /// `vtick_cycles` = cycles of virtual time per GL packet at the reserved
  /// rate (l / r_GL); 0 disables tracking (no GL reservation configured).
  /// `allowance_packets` = burst depth the policer tolerates before the
  /// class goes over budget.
  GlTracker(std::uint64_t vtick_cycles, std::uint32_t allowance_packets,
            GlPolicing policing)
      : vtick_(vtick_cycles),
        allowance_(allowance_packets),
        policing_(policing) {}

  [[nodiscard]] bool enabled() const noexcept { return vtick_ != 0; }
  [[nodiscard]] GlPolicing policing() const noexcept { return policing_; }
  [[nodiscard]] std::uint64_t vtick() const noexcept { return vtick_; }
  [[nodiscard]] std::uint64_t clock() const noexcept { return vc_; }

  /// True iff the GL class may use its absolute-priority override at `now`.
  [[nodiscard]] bool eligible(Cycle now) const noexcept {
    if (!enabled() || policing_ == GlPolicing::None) return true;
    const std::uint64_t allowance = vtick_ * allowance_;
    return vc_ <= now + allowance;
  }

  /// How far the class is over budget at `now`, in cycles (0 if compliant).
  [[nodiscard]] std::uint64_t overrun(Cycle now) const noexcept {
    if (!enabled()) return 0;
    const std::uint64_t allowance = vtick_ * allowance_;
    const std::uint64_t budget = now + allowance;
    return vc_ > budget ? vc_ - budget : 0;
  }

  /// Commits one GL packet grant at `now`.
  void on_grant(Cycle now) noexcept {
    if (!enabled()) return;
    const std::uint64_t base = vc_ > now ? vc_ : now;
    vc_ = base + vtick_;
  }

  void reset() noexcept { vc_ = 0; }

  // ---- fault injection / scrubbing (hardware DFT surface) ----

  /// Flips bit `bit` of the virtual-clock register — the fault.
  void fault_flip(std::uint32_t bit) noexcept { vc_ ^= 1ULL << (bit & 63); }

  /// Budget sanity: under Stall policing a clean clock can never run more
  /// than one grant past the eligibility budget, because an ineligible class
  /// is never granted — so vc <= now + vtick*(allowance+1) always holds.
  /// Demote/None legitimately let the clock run arbitrarily far ahead, so no
  /// bound exists and sane() is vacuously true there.
  [[nodiscard]] bool sane(Cycle now) const noexcept {
    if (!enabled() || policing_ != GlPolicing::Stall) return true;
    return vc_ <= now + vtick_ * (allowance_ + 1ULL);
  }

  /// Scrub pass: a clock past the Stall-policing bound is corrupt and is
  /// rewound to `now` (compliant and neutral — neither grants the class a
  /// burst nor stalls it spuriously). Returns true iff a repair happened.
  bool scrub(Cycle now) noexcept {
    if (sane(now)) return false;
    vc_ = now;
    return true;
  }

 private:
  std::uint64_t vtick_;
  std::uint32_t allowance_;
  GlPolicing policing_;
  std::uint64_t vc_ = 0;
};

}  // namespace ssq::core
