// Finite auxVC counter for one crosspoint (paper §3.1).
//
// The counter holds the flow's virtual clock *relative to the current
// real-time epoch* in cycle units: the top `level_bits` form the level
// exposed to arbitration (via the thermometer code), the low `lsb_bits` are
// at real-time-clock granularity. On every packet grant:
//
//     value <- min(max(value, rt) + Vtick, cap)
//
// where `rt` is the epoch-relative real time — the paper's modified step 1
// (auxVC <- max(auxVC, real_time) - real_time) fused with step 2. The
// companion ThermometerCode is kept in lock-step by the same incremental
// updates the hardware performs (shift up on MSB increment, shift down on
// epoch wrap, compress on halve, clear on reset); `level()` recomputed from
// the raw value always equals `code().level()` — an invariant the tests
// exercise.
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "core/thermometer.hpp"
#include "sim/contracts.hpp"

namespace ssq::core {

class AuxVc {
 public:
  /// `vtick_cycles` >= 1: virtual time per granted packet. Pass the value
  /// returned by quantize_vtick so register-width effects are modelled.
  AuxVc(const SsvcParams& params, std::uint64_t vtick_cycles)
      : params_(params),
        vtick_(vtick_cycles),
        cap_(params.policy == CounterPolicy::None ? (1ULL << 62)
                                                  : params.aux_vc_cap()),
        code_(params.gb_levels()) {
    params.validate();
    SSQ_EXPECT(vtick_cycles >= 1);
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] std::uint64_t vtick() const noexcept { return vtick_; }
  [[nodiscard]] std::uint64_t cap() const noexcept { return cap_; }

  /// Arbitration level (0 = highest priority), clamped to the top lane.
  [[nodiscard]] std::uint32_t level() const noexcept {
    const std::uint64_t lvl = value_ >> params_.lsb_bits;
    const std::uint32_t top = params_.gb_levels() - 1;
    return lvl < top ? static_cast<std::uint32_t>(lvl) : top;
  }

  [[nodiscard]] const ThermometerCode& code() const noexcept { return code_; }

  /// Level the arbitration actually senses: the (possibly fault-corrupted)
  /// thermometer vector's top lane. Equals level() while the state is clean
  /// — the invariant the scrubber restores after a fault.
  [[nodiscard]] std::uint32_t arb_level() const noexcept {
    return code_.effective_level();
  }

  /// Commits one packet grant at epoch-relative real time `rt`.
  /// Returns true iff the counter saturated: either the register hit its cap
  /// or the thermometer code was pushed to (or past) the top lane — the
  /// hardware's shift-up with an already-all-ones vector. The halve/reset
  /// policies treat this as their global management trigger.
  bool on_grant(std::uint64_t rt) {
    std::uint64_t v = value_ > rt ? value_ : rt;
    bool saturated = false;
    if (v > cap_ - vtick_ && cap_ >= vtick_) {
      // Would overflow the register: saturate.
      v = cap_;
      saturated = true;
    } else {
      v += vtick_;
      if (v >= cap_) {
        v = cap_;
        saturated = true;
      }
    }
    value_ = v;
    parity_ = value_parity();
    code_.set_level(level());
    // Thermometer shift-up overflow also counts as saturation — except for
    // the None policy, whose (unbounded) counter simply clamps its level.
    if (params_.policy != CounterPolicy::None &&
        code_.level() == code_.width() - 1) {
      saturated = true;
    }
    return saturated;
  }

  /// Subtract-real-clock policy, epoch wrap: MSB value drops by one
  /// (value -= 2^lsb_bits, floored at 0); thermometer shifts down one lane.
  void epoch_wrap() noexcept {
    // The incremental-update invariant only holds from a clean state: an
    // injected upset legitimately breaks it until the scrubber repairs it.
    const bool was_clean = !corrupted();
    const std::uint64_t epoch = params_.epoch_cycles();
    value_ = value_ >= epoch ? value_ - epoch : 0;
    parity_ = value_parity();
    code_.shift_down();
    SSQ_ENSURE(!was_clean || code_.level() == level());
  }

  /// Halve policy: register shifted down one position; thermometer top half
  /// copied to bottom half (level halves).
  void halve() noexcept {
    const bool was_clean = !corrupted();
    value_ >>= 1;
    parity_ = value_parity();
    code_.halve();
    SSQ_ENSURE(!was_clean || code_.level() == level());
  }

  /// Reset policy: register and thermometer cleared.
  void reset() noexcept {
    value_ = 0;
    parity_ = false;
    code_.reset();
  }

  void set_vtick(std::uint64_t vtick_cycles) {
    SSQ_EXPECT(vtick_cycles >= 1);
    vtick_ = vtick_cycles;
  }

  // ---- fault injection / scrubbing (hardware DFT surface) ----
  //
  // The register is parity-protected the way a scrub-capable SRAM macro
  // would be: every legitimate write refreshes the parity bit, a particle
  // strike does not. The scrubber exploits two invariants — stored parity
  // matches the register, and the thermometer vector is the encoding of the
  // register's MSBs — to detect any single-bit upset in either structure.

  /// Width of the protected register in bits (level_bits + lsb_bits).
  [[nodiscard]] std::uint32_t register_bits() const noexcept {
    return params_.level_bits + params_.lsb_bits;
  }

  /// Flips register bit `bit` without refreshing parity — the fault.
  void fault_flip_value(std::uint32_t bit) noexcept {
    if (bit < register_bits()) value_ ^= 1ULL << bit;
  }

  /// Flips thermometer-vector cell `bit` — the fault.
  void fault_flip_code(std::uint32_t bit) noexcept { code_.fault_flip(bit); }

  /// What one scrub pass found (and did) for this crosspoint.
  enum class ScrubOutcome : std::uint8_t {
    Clean = 0,
    /// Thermometer vector disagreed with the register; rewritten from the
    /// register MSBs — an exact repair.
    CodeRepaired,
    /// Register parity mismatch: the value itself is untrustworthy, so it is
    /// re-synchronised to the epoch-relative real time `rt` (a neutral
    /// virtual clock neither ahead nor behind) and the thermometer rewritten.
    ValueReset,
  };

  /// Checks both invariants and repairs in place. `rt` is the arbiter's
  /// current epoch-relative real time, used as the neutral reset value.
  ScrubOutcome scrub(std::uint64_t rt) noexcept {
    const bool parity_ok = parity_ == value_parity();
    const bool code_ok = !code_.corrupted() && code_.level() == level();
    if (parity_ok && code_ok) return ScrubOutcome::Clean;
    if (!parity_ok) {
      value_ = rt < cap_ ? rt : cap_;
      parity_ = value_parity();
      code_.clear_corruption();
      code_.set_level(level());
      return ScrubOutcome::ValueReset;
    }
    code_.clear_corruption();
    code_.set_level(level());
    return ScrubOutcome::CodeRepaired;
  }

  /// True iff a scrub pass at this instant would find corruption.
  [[nodiscard]] bool corrupted() const noexcept {
    return parity_ != value_parity() || code_.corrupted() ||
           code_.level() != level();
  }

 private:
  [[nodiscard]] bool value_parity() const noexcept {
    return __builtin_parityll(value_) != 0;
  }

  SsvcParams params_;
  std::uint64_t vtick_;
  std::uint64_t cap_;
  std::uint64_t value_ = 0;
  bool parity_ = false;  // stored parity bit, refreshed on legitimate writes
  ThermometerCode code_;
};

}  // namespace ssq::core
