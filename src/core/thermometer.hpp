// Thermometer code vector (paper §3.1 "Thermometer Code Creation").
//
// The top `level_bits` bits of an auxVC counter encode a level m; the
// hardware stores it one-hot-prefix style as a thermometer vector with bits
// T_0..T_m set (T_0 is hardwired 1 in Fig. 1's examples: a present flow
// always occupies at least lane 0). Lower level = smaller auxVC = higher
// priority.
//
// The hardware never recomputes the vector from the counter — it shifts it
// up when the auxVC MSBs increment, shifts every vector down on a real-time
// epoch wrap, and compresses or clears it for the halve/reset policies. This
// class mirrors those incremental updates so the circuit model can be tested
// for equivalence against recomputation from the level.
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"

namespace ssq::core {

class ThermometerCode {
 public:
  /// `width` = number of lanes (GB levels), 1..64.
  explicit ThermometerCode(std::uint32_t width, std::uint32_t level = 0)
      : width_(width) {
    SSQ_EXPECT(width >= 1 && width <= 64);
    set_level(level);
  }

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

  /// Encoded level: index of the highest set bit. bits() always has at least
  /// T_0 set, so level() is in [0, width).
  [[nodiscard]] std::uint32_t level() const noexcept { return level_; }

  /// Raw vector; bit i == T_i.
  [[nodiscard]] std::uint64_t bits() const noexcept {
    return (width_ == 64 ? ~0ULL : ((1ULL << (level_ + 1)) - 1));
  }

  [[nodiscard]] bool bit(std::uint32_t i) const noexcept {
    SSQ_EXPECT(i < width_);
    return i <= level_;
  }

  /// Direct (re)encode from a level; clamps to the top lane, matching the
  /// hardware where levels past the last lane all share it.
  void set_level(std::uint32_t level) noexcept {
    level_ = level < width_ ? level : width_ - 1;
  }

  /// Hardware update: auxVC MSBs incremented -> one more lane occupied.
  /// Saturates at the top lane.
  void shift_up() noexcept {
    if (level_ + 1 < width_) ++level_;
  }

  /// Hardware update on real-time epoch wrap: one lane released. Floors at
  /// lane 0.
  void shift_down() noexcept {
    if (level_ > 0) --level_;
  }

  /// Halve policy: "the auxVC register is shifted down by 1 position and the
  /// top half of the thermometer code is copied to the bottom half and then
  /// reset" — i.e. the encoded level halves.
  void halve() noexcept { level_ /= 2; }

  /// Reset policy: all thermometer codes cleared to level 0.
  void reset() noexcept { level_ = 0; }

  // ---- fault injection / scrubbing (hardware DFT surface) ----
  //
  // A soft error flips one storage cell of the thermometer vector; the
  // incremental shift logic keeps operating on the intended level while the
  // stored vector silently disagrees. The corruption is modelled as an XOR
  // overlay so the logical state (`level_`) and the physical vector
  // (`raw_bits()`) can diverge exactly the way a flipped SRAM cell makes
  // them diverge: a flip above the level grows the sensed level, a flip at
  // the top shrinks it, a flip below punches a hole the shape check catches.

  /// Flips stored bit `i` of the vector. Does NOT update the logical level —
  /// that is the fault.
  void fault_flip(std::uint32_t i) noexcept {
    if (i < width_) corrupt_ ^= 1ULL << i;
  }

  /// True iff the stored vector is no longer the thermometer encoding of the
  /// logical level (any outstanding flip).
  [[nodiscard]] bool corrupted() const noexcept { return corrupt_ != 0; }

  /// Stored vector including corruption; equals bits() when clean.
  [[nodiscard]] std::uint64_t raw_bits() const noexcept {
    return bits() ^ corrupt_;
  }

  /// Level the arbitration hardware senses: index of the highest set bit of
  /// the stored vector (0 when the vector reads all-zero — the sense amp
  /// falls back to lane 0). Equals level() when clean.
  [[nodiscard]] std::uint32_t effective_level() const noexcept {
    if (corrupt_ == 0) return level_;
    const std::uint64_t raw = raw_bits();
    if (raw == 0) return 0;
    return static_cast<std::uint32_t>(63 - __builtin_clzll(raw));
  }

  /// Scrub repair: rewrites the stored vector from the logical level.
  void clear_corruption() noexcept { corrupt_ = 0; }

  friend bool operator==(const ThermometerCode& a,
                         const ThermometerCode& b) noexcept {
    return a.width_ == b.width_ && a.level_ == b.level_;
  }

 private:
  std::uint32_t width_;
  std::uint32_t level_ = 0;
  std::uint64_t corrupt_ = 0;  // XOR overlay of fault-flipped cells
};

}  // namespace ssq::core
