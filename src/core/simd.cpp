#include "core/simd.hpp"

#include <cstdlib>
#include <cstring>

// AVX2 code is compiled only for x86-64 and only unless explicitly disabled;
// the portable tier is the complete implementation on every other target.
#if defined(__x86_64__) && !defined(SSQ_NO_AVX2)
#define SSQ_SIMD_X86 1
#else
#define SSQ_SIMD_X86 0
#endif

namespace ssq::core::simd {

namespace {

// ---- portable tier ----
//
// Straight-line integer loops; GCC auto-vectorizes these to whatever the
// baseline target allows (SSE2 on x86-64), and they are the reference
// semantics the AVX2 tier must reproduce bit for bit.

std::uint64_t covering_mask_portable(const std::uint64_t* rows,
                                     std::uint32_t n,
                                     std::uint64_t mask) noexcept {
  std::uint64_t out = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t bit = 1ULL << i;
    if ((mask & ~bit & ~rows[i]) == 0) out |= bit;
  }
  return out;
}

std::uint32_t first_hit_lane_portable(const std::uint64_t* lanes,
                                      std::uint32_t n,
                                      std::uint64_t occ) noexcept {
  for (std::uint32_t l = 0; l < n; ++l) {
    if ((lanes[l] & occ) != 0) return l;
  }
  return n;
}

// One xoshiro256** step on scalar state words — must match Rng::operator()().
std::uint64_t xoshiro_step(std::uint64_t& s0, std::uint64_t& s1,
                           std::uint64_t& s2, std::uint64_t& s3) noexcept {
  const auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(s1 * 5, 7) * 9;
  const std::uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = rotl(s3, 45);
  return result;
}

void xoshiro_batch_portable(std::uint64_t* s0, std::uint64_t* s1,
                            std::uint64_t* s2, std::uint64_t* s3,
                            std::uint64_t* out, std::size_t n) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = xoshiro_step(s0[k], s1[k], s2[k], s3[k]);
  }
}

#if SSQ_SIMD_X86

// ---- AVX2 tier ----
//
// GCC vector extensions compiled under the target("avx2") attribute, so the
// translation unit itself needs no -mavx2 and non-AVX2 hosts still link the
// portable tier. Four 64-bit lanes per step; tails fall back to the portable
// loops (identical arithmetic).

typedef std::uint64_t v4u64 __attribute__((vector_size(32)));

__attribute__((target("avx2"))) v4u64 load4(const std::uint64_t* p) noexcept {
  v4u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((target("avx2"))) void store4(std::uint64_t* p,
                                            v4u64 v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

__attribute__((target("avx2"))) std::uint64_t covering_mask_avx2(
    const std::uint64_t* rows, std::uint32_t n, std::uint64_t mask) noexcept {
  std::uint64_t out = 0;
  const v4u64 vmask = {mask, mask, mask, mask};
  v4u64 bits = {1ULL << 0, 1ULL << 1, 1ULL << 2, 1ULL << 3};
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4, bits <<= 4) {
    const v4u64 r = load4(rows + i);
    // covers(i) <=> every other requester appears in row i:
    // (mask & ~bit_i & ~row_i) == 0.
    const v4u64 t = vmask & ~bits & ~r;
    const v4u64 z = (t == 0);  // all-ones lane where input i covers
    out |= (z[0] & (1ULL << (i + 0))) | (z[1] & (1ULL << (i + 1))) |
           (z[2] & (1ULL << (i + 2))) | (z[3] & (1ULL << (i + 3)));
  }
  for (; i < n; ++i) {
    const std::uint64_t bit = 1ULL << i;
    if ((mask & ~bit & ~rows[i]) == 0) out |= bit;
  }
  return out;
}

__attribute__((target("avx2"))) std::uint32_t first_hit_lane_avx2(
    const std::uint64_t* lanes, std::uint32_t n, std::uint64_t occ) noexcept {
  const v4u64 vocc = {occ, occ, occ, occ};
  std::uint32_t l = 0;
  for (; l + 4 <= n; l += 4) {
    const v4u64 hit = (load4(lanes + l) & vocc) != 0;
    if (hit[0]) return l;
    if (hit[1]) return l + 1;
    if (hit[2]) return l + 2;
    if (hit[3]) return l + 3;
  }
  for (; l < n; ++l) {
    if ((lanes[l] & occ) != 0) return l;
  }
  return n;
}

__attribute__((target("avx2"))) void xoshiro_batch_avx2(
    std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
    std::uint64_t* s3, std::uint64_t* out, std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    v4u64 v0 = load4(s0 + k);
    v4u64 v1 = load4(s1 + k);
    v4u64 v2 = load4(s2 + k);
    v4u64 v3 = load4(s3 + k);
    // result = rotl(s1 * 5, 7) * 9, with the multiplies strength-reduced
    // to shift+add so the whole step is shifts/xors/adds.
    const v4u64 m5 = (v1 << 2) + v1;
    const v4u64 r7 = (m5 << 7) | (m5 >> 57);
    const v4u64 res = (r7 << 3) + r7;
    const v4u64 t = v1 << 17;
    v2 ^= v0;
    v3 ^= v1;
    v1 ^= v2;
    v0 ^= v3;
    v2 ^= t;
    v3 = (v3 << 45) | (v3 >> 19);
    store4(s0 + k, v0);
    store4(s1 + k, v1);
    store4(s2 + k, v2);
    store4(s3 + k, v3);
    store4(out + k, res);
  }
  for (; k < n; ++k) {
    out[k] = xoshiro_step(s0[k], s1[k], s2[k], s3[k]);
  }
}

SimdTier detect_tier() noexcept {
  if (const char* env = std::getenv("SSQ_SIMD");
      env != nullptr && std::strcmp(env, "portable") == 0) {
    return SimdTier::Portable;
  }
  return __builtin_cpu_supports("avx2") ? SimdTier::Avx2 : SimdTier::Portable;
}

#else  // !SSQ_SIMD_X86

SimdTier detect_tier() noexcept { return SimdTier::Portable; }

#endif  // SSQ_SIMD_X86

}  // namespace

SimdTier active_tier() noexcept {
  static const SimdTier tier = detect_tier();
  return tier;
}

std::uint64_t covering_mask(const std::uint64_t* rows, std::uint32_t n,
                            std::uint64_t mask) noexcept {
#if SSQ_SIMD_X86
  if (active_tier() == SimdTier::Avx2) {
    return covering_mask_avx2(rows, n, mask);
  }
#endif
  return covering_mask_portable(rows, n, mask);
}

std::uint32_t first_hit_lane(const std::uint64_t* lanes, std::uint32_t n,
                             std::uint64_t occ) noexcept {
#if SSQ_SIMD_X86
  if (active_tier() == SimdTier::Avx2) {
    return first_hit_lane_avx2(lanes, n, occ);
  }
#endif
  return first_hit_lane_portable(lanes, n, occ);
}

void xoshiro_batch(std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
                   std::uint64_t* s3, std::uint64_t* out,
                   std::size_t n) noexcept {
#if SSQ_SIMD_X86
  if (active_tier() == SimdTier::Avx2) {
    xoshiro_batch_avx2(s0, s1, s2, s3, out, n);
    return;
  }
#endif
  xoshiro_batch_portable(s0, s1, s2, s3, out, n);
}

}  // namespace ssq::core::simd
