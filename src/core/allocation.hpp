// Per-output bandwidth allocation (paper §3.3 "Bandwidth Allocation To
// Traffic Classes").
//
// Each input may reserve a fraction of an output channel's bandwidth for its
// GB flow (at most one GB flow per crosspoint — "each crosspoint is
// configured to transmit packets of one particular flow"), and the output
// reserves one small shared fraction for the GL class. Admission control:
// the sum of all GB fractions plus the GL fraction must not exceed the
// channel capacity. BE has no reservation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/error.hpp"
#include "sim/types.hpp"

namespace ssq::core {

struct OutputAllocation {
  /// gb_rate[i] = fraction of this output's bandwidth reserved by input i's
  /// GB flow (0 = no reservation). Each in [0, 1].
  std::vector<double> gb_rate;
  /// Shared GL-class fraction for this output.
  double gl_rate = 0.0;
  /// Nominal packet length (flits) used to derive Vticks for this output's
  /// GB flows.
  std::uint32_t gb_packet_len = 1;
  /// Nominal GL packet length (flits) for the GL Vtick.
  std::uint32_t gl_packet_len = 1;

  /// Builds an allocation with no reservations (pure best-effort output).
  static OutputAllocation none(std::uint32_t radix) {
    OutputAllocation a;
    a.gb_rate.assign(radix, 0.0);
    return a;
  }

  [[nodiscard]] double gb_total() const noexcept {
    double sum = 0.0;
    for (double r : gb_rate) sum += r;
    return sum;
  }

  /// True iff admissible: every rate in range and ΣGB + GL <= 1 (+eps).
  [[nodiscard]] bool admissible(std::uint32_t radix) const noexcept {
    if (gb_rate.size() != radix) return false;
    if (gl_rate < 0.0 || gl_rate > 1.0) return false;
    for (double r : gb_rate)
      if (r < 0.0 || r > 1.0) return false;
    return gb_total() + gl_rate <= 1.0 + 1e-9;
  }

  /// Throws ssq::ConfigError: the allocation is user configuration (workload
  /// files, CLI flags), not an internal invariant.
  void validate(std::uint32_t radix) const {
    detail::config_check(
        admissible(radix),
        "output allocation not admissible: reservations out of range or "
        "over-subscribed (sum of GB rates + GL rate > 1)");
    detail::config_check(gb_packet_len >= 1, "gb_packet_len must be >= 1");
    detail::config_check(gl_packet_len >= 1, "gl_packet_len must be >= 1");
  }
};

}  // namespace ssq::core
