// Three-class SSVC output arbitration (paper §3) — the behavioural model of
// what the modified inhibit-based circuit computes in one clock cycle.
//
// Per output channel:
//   * one LRG matrix (shared by all classes, as in the silicon where each
//     crosspoint stores its 63-bit LRG row),
//   * one AuxVc + Vtick per input's GB flow (the crosspoint state),
//   * one GlTracker for the shared GL reservation,
//   * the finite-counter management policy.
//
// A single pick() resolves all three classes exactly as the circuit does:
// any eligible GL request discharges every GB lane (Fig. 3) and GL inputs
// LRG-arbitrate in the GL lane; otherwise GB requests compete by thermometer
// level (smallest auxVC level wins) with LRG breaking ties inside a lane;
// otherwise BE requests LRG-arbitrate. All of this is one arbitration — the
// paper's single-cycle contribution versus the two-cycle scheme of [14].
//
// Equivalence with the bit-level circuit model (src/circuit) is established
// by the §4.1-style verification tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arb/lrg.hpp"
#include "core/allocation.hpp"
#include "core/aux_vc.hpp"
#include "core/gl_tracker.hpp"
#include "core/params.hpp"
#include "sim/types.hpp"

namespace ssq::obs {
class SwitchProbe;
}

namespace ssq::core {

/// One input's request in a three-class arbitration.
struct ClassRequest {
  InputId input = 0;
  TrafficClass cls = TrafficClass::BestEffort;
  std::uint32_t length = 1;
};

class OutputQosArbiter {
 public:
  /// `gl_allowance_packets` parameterises the GL policer (see GlTracker).
  /// `kernel` selects the pick() implementation (ArbKernel); the packed
  /// lane-mask mirrors are maintained either way so the two kernels can be
  /// swapped (and cross-checked) at any time.
  OutputQosArbiter(std::uint32_t radix, const SsvcParams& params,
                   OutputAllocation alloc,
                   GlPolicing policing = GlPolicing::Stall,
                   std::uint32_t gl_allowance_packets = 32,
                   ArbKernel kernel = ArbKernel::Bitsliced);

  /// Advances internal real-time bookkeeping to `now`. Must be called with
  /// non-decreasing `now` before pick()/on_grant() at that cycle; handles
  /// epoch wraps (subtract-real-clock policy). Idempotent within a cycle.
  void advance_to(Cycle now);

  /// Picks the winner of a single-cycle arbitration at `now`, or kNoPort if
  /// no request is serviceable (empty, or GL-only and the GL class is
  /// stalled by the policer). Does not mutate arbitration state.
  [[nodiscard]] InputId pick(std::span<const ClassRequest> requests,
                             Cycle now);

  /// Bit-sliced form of pick(): the three classes arrive as packed request
  /// masks (bit i == input i requests in that class; an input may appear in
  /// at most one mask). Semantically identical to pick() over the same
  /// request set presented in ascending input order. Used directly by the
  /// crossbar's mask path; pick() delegates here under ArbKernel::Bitsliced
  /// and ArbKernel::Simd (the vectorized schedule of the same resolve).
  [[nodiscard]] InputId pick_masked(std::uint64_t gl_mask,
                                    std::uint64_t gb_mask,
                                    std::uint64_t be_mask, Cycle now);

  /// Class the last pick's winner belonged to (after policing, a demoted GL
  /// request reports BestEffort priority but retains its own class — this
  /// returns the *class of the winning request*).
  [[nodiscard]] TrafficClass picked_class() const noexcept {
    return picked_class_;
  }

  /// Commits a grant. `cls` must be the winner's traffic class.
  void on_grant(InputId input, TrafficClass cls, std::uint32_t length,
                Cycle now);

  void reset();

  /// Connects the observability probe; `self` is this arbiter's output id
  /// in trace events. Pass nullptr to detach. The arbiter then reports GL
  /// policer stalls, LRG lane tie-breaks, auxVC saturations, epoch wraps
  /// and halve/reset management events.
  void set_probe(obs::SwitchProbe* probe, OutputId self) noexcept {
    probe_ = probe;
    self_ = self;
  }

  // ---- introspection (tests, benches, circuit cross-checks) ----
  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }
  [[nodiscard]] const SsvcParams& params() const noexcept { return params_; }
  [[nodiscard]] const OutputAllocation& allocation() const noexcept {
    return alloc_;
  }
  // (Inline: the differential checker compares every input's counter state
  // against the reference every cycle — these are its hottest reads.)
  [[nodiscard]] const AuxVc& aux_vc(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return gb_vc_[i];
  }
  [[nodiscard]] std::uint32_t gb_level(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return gb_vc_[i].level();
  }
  [[nodiscard]] const arb::LrgArbiter& lrg() const noexcept { return lrg_; }
  [[nodiscard]] arb::LrgArbiter& lrg() noexcept { return lrg_; }
  [[nodiscard]] const GlTracker& gl_tracker() const noexcept { return gl_; }
  /// Epoch-relative real time at the last advance_to().
  [[nodiscard]] std::uint64_t epoch_rt() const noexcept { return rt_; }
  [[nodiscard]] ArbKernel kernel() const noexcept { return kernel_; }

  // ---- packed lane-mask mirrors (bit-sliced kernel state) ----
  //
  // lane_mask(m) mirrors, incrementally, the set of inputs whose *raw*
  // sensed thermometer level (AuxVc::arb_level(), before the quarantine
  // remap) is m. Inputs listed in dirty_inputs() may be stale — a fault
  // touched them, or their corruption makes the incremental transforms
  // diverge from the stored vector — and are re-read from the counters at
  // the top of every masked pick. Invariant (checked by the kernel property
  // tests): after resync_lane_masks(), bit i of lane_mask(m) is set iff
  // aux_vc(i).arb_level() == m, for every input i.
  [[nodiscard]] std::uint64_t lane_mask(std::uint32_t lane) const {
    SSQ_EXPECT(lane < params_.gb_levels());
    return lane_mask_[lane];
  }
  [[nodiscard]] std::uint64_t dirty_inputs() const noexcept { return dirty_; }
  /// Re-reads every dirty input's lane slot from its counter; corrupted
  /// inputs stay marked dirty (their stored vector no longer follows the
  /// incremental transforms until the scrubber repairs it).
  void resync_lane_masks();

  // ---- fault injection / recovery (driven by src/fault) ----

  /// Mutable crosspoint state, for the fault injector and scrubber only.
  [[nodiscard]] AuxVc& aux_vc_mut(InputId i);
  [[nodiscard]] GlTracker& gl_tracker_mut() noexcept { return gl_; }

  /// GB level arbitration actually senses for input `i`: the (possibly
  /// corrupted) thermometer read, then the quarantine remap. Equals
  /// gb_level(i) while the state is clean and no lane is quarantined.
  [[nodiscard]] std::uint32_t sensed_gb_level(InputId i) const {
    SSQ_EXPECT(i < radix_);
    const std::uint32_t lvl = gb_vc_[i].arb_level();
    return lane_map_.empty() ? lvl : lane_map_[lvl];
  }

  /// Takes GB lane `lane` out of service: its occupants merge into the
  /// nearest healthy lane below, so arbitration keeps a total (if coarser)
  /// priority order and LRG absorbs the lost resolution. Persists across
  /// reset() — a quarantine models physically damaged bitlines. Idempotent.
  void quarantine_lane(std::uint32_t lane);
  /// Bitmask of quarantined GB lanes (bit l == lane l out of service).
  [[nodiscard]] std::uint64_t quarantined_lanes() const noexcept {
    return quarantined_;
  }

  /// One scrub pass at `now`: checks and repairs every auxVC
  /// register/thermometer pair (parity + level invariant), the LRG matrix's
  /// total order, and the GL clock's policing bound. Returns the number of
  /// repairs made; each one is reported through the probe.
  std::uint32_t scrub(Cycle now);

 private:
  /// Applies the halve/reset global management event.
  void on_saturation(Cycle now);

  [[nodiscard]] InputId lrg_pick(std::span<const ClassRequest> reqs) const;
  /// Mask-space LRG resolution: first input (ascending) whose row covers
  /// every other requester; degrades like lrg_pick under a corrupt matrix.
  [[nodiscard]] InputId lrg_winner(std::uint64_t mask) const;
  /// Moves input i's lane-mask bit to its current raw sensed level.
  void resync_input(InputId i);

  std::uint32_t radix_;
  SsvcParams params_;
  OutputAllocation alloc_;
  arb::LrgArbiter lrg_;
  std::vector<AuxVc> gb_vc_;  // one per input (crosspoint column state)
  GlTracker gl_;
  Cycle epoch_base_ = 0;
  std::uint64_t rt_ = 0;  // now - epoch_base_
  Cycle last_now_ = 0;
  TrafficClass picked_class_ = TrafficClass::BestEffort;
  std::uint64_t quarantined_ = 0;        // out-of-service GB lanes
  std::vector<std::uint32_t> lane_map_;  // level remap; empty = identity
  ArbKernel kernel_ = ArbKernel::Bitsliced;
  std::vector<std::uint64_t> lane_mask_;  // per raw lane: occupant inputs
  std::uint64_t dirty_ = 0;       // inputs whose lane slot may be stale
  std::uint64_t gb_capable_ = 0;  // inputs with a GB reservation
  std::vector<ClassRequest> bucket_;     // pick() scratch; reserved to radix
  obs::SwitchProbe* probe_ = nullptr;  // null = observability off
  OutputId self_ = kNoPort;
};

}  // namespace ssq::core
