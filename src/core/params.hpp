// SSVC configuration parameters (paper §3.1).
//
// The hardware splits each crosspoint's auxVC counter into `level_bits` most
// significant bits — the part compared during arbitration, via the
// thermometer-code/lane mapping — and `lsb_bits` low bits at real-time-clock
// (cycle) granularity. Fig. 1 uses a 12-bit counter with 3 MSBs; Table 1
// budgets "auxVC (3+8 bits)"; Fig. 4 uses "4 significant bits". All are
// reachable through this struct.
//
// `vtick_bits` models the finite Vtick register (8 bits in Table 1);
// `vtick_shift` is a power-of-two pre-scaler that trades Vtick granularity
// for range (a 1 % reservation of an 8-flit-packet flow needs Vtick = 800
// cycles, which does not fit in 8 bits unscaled). The quantisation error this
// introduces is analysed in ssq::qosmath.
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"
#include "sim/error.hpp"

namespace ssq::core {

/// Finite-counter management policies (§3.1 "Finite Counters and Real Time
/// Clock" + "Improving Latency Fairness").
enum class CounterPolicy : std::uint8_t {
  /// auxVC <- max(auxVC, real_time) - real_time, implemented with an epoch
  /// counter: when the real-time LSB counter saturates, every auxVC's MSB
  /// value drops by one and thermometer codes shift down one lane. The
  /// paper's default SSVC scheme.
  SubtractRealClock = 0,
  /// When any auxVC saturates, all auxVC registers (and the epoch-relative
  /// real-time reference) are halved; thermometer codes compress: "the top
  /// half of the thermometer code is copied to the bottom half".
  Halve = 1,
  /// When any auxVC saturates, all auxVC registers and thermometer codes
  /// reset to zero. Least latency variance across allocations (Fig. 5).
  Reset = 2,
  /// No management: counters are wide enough to never saturate during the
  /// run. Models the original Virtual Clock's unbounded clock and is used by
  /// the Fig. 5 baseline and by differential tests.
  None = 3,
};

[[nodiscard]] constexpr const char* to_string(CounterPolicy p) noexcept {
  switch (p) {
    case CounterPolicy::SubtractRealClock: return "subtract_real_clock";
    case CounterPolicy::Halve: return "halve";
    case CounterPolicy::Reset: return "reset";
    case CounterPolicy::None: return "none";
  }
  return "?";
}

/// Which arbitration-kernel implementation OutputQosArbiter::pick() runs.
/// Both compute the same function (the differential checker and the golden
/// corpus assert byte-identical grants and traces); the bit-sliced kernel is
/// the word-parallel form of the paper's bitline circuit.
enum class ArbKernel : std::uint8_t {
  /// Per-request scan: buckets requests per class/lane with explicit loops.
  Scalar = 0,
  /// Packed-mask kernel: requester/lane/class state held as uint64 masks
  /// (one bit per input), winner found by ANDing masks top-priority-first —
  /// O(lanes + words) per arbitration instead of O(radix) passes.
  Bitsliced = 1,
  /// Vectorized form of the bit-sliced kernel: the GB min-level lane scan and
  /// the LRG covering test sweep 4 lanes/rows per instruction (AVX2 when the
  /// host supports it, a portable fixed-width fallback otherwise — see
  /// core::simd::active_tier()). Same function, byte-identical picks.
  Simd = 2,
};

[[nodiscard]] constexpr const char* to_string(ArbKernel k) noexcept {
  switch (k) {
    case ArbKernel::Scalar: return "scalar";
    case ArbKernel::Bitsliced: return "bitsliced";
    case ArbKernel::Simd: return "simd";
  }
  return "?";
}

struct SsvcParams {
  /// MSBs of auxVC exposed to arbitration; the thermometer code has
  /// 2^level_bits bits, one per GB lane.
  std::uint32_t level_bits = 3;
  /// Low bits of auxVC at cycle granularity; also the width of the shared
  /// real-time clock counter.
  std::uint32_t lsb_bits = 8;
  /// Width of the per-crosspoint Vtick register.
  std::uint32_t vtick_bits = 8;
  /// Power-of-two Vtick pre-scale: stored value v represents v << vtick_shift
  /// cycles.
  std::uint32_t vtick_shift = 2;
  /// Finite-counter management policy.
  CounterPolicy policy = CounterPolicy::SubtractRealClock;

  /// Number of GB levels distinguishable by arbitration.
  [[nodiscard]] constexpr std::uint32_t gb_levels() const noexcept {
    return 1u << level_bits;
  }
  /// Saturation cap of the auxVC register (inclusive).
  [[nodiscard]] constexpr std::uint64_t aux_vc_cap() const noexcept {
    return (1ULL << (level_bits + lsb_bits)) - 1;
  }
  /// Cycles per epoch of the real-time clock counter.
  [[nodiscard]] constexpr std::uint64_t epoch_cycles() const noexcept {
    return 1ULL << lsb_bits;
  }
  /// Largest Vtick (in cycles) representable by the register.
  [[nodiscard]] constexpr std::uint64_t max_vtick_cycles() const noexcept {
    return ((1ULL << vtick_bits) - 1) << vtick_shift;
  }

  /// Throws ssq::ConfigError on out-of-range geometry — these values come
  /// straight from CLI flags and workload files.
  void validate() const {
    detail::config_check(level_bits >= 1 && level_bits <= 6,
                         "ssvc level_bits out of range [1,6]");
    detail::config_check(lsb_bits >= 1 && lsb_bits <= 20,
                         "ssvc lsb_bits out of range [1,20]");
    detail::config_check(level_bits + lsb_bits <= 40,
                         "ssvc counter wider than 40 bits");
    detail::config_check(vtick_bits >= 1 && vtick_bits <= 20,
                         "ssvc vtick_bits out of range [1,20]");
    detail::config_check(vtick_shift <= 12,
                         "ssvc vtick_shift out of range [0,12]");
  }
};

/// Quantises an ideal Vtick (cycles, real-valued) to the finite register.
/// Returns the register's represented value in cycles (>= 1). Rounds to
/// nearest representable; saturates at the register maximum.
[[nodiscard]] std::uint64_t quantize_vtick(const SsvcParams& params,
                                           double ideal_vtick_cycles);

/// Ideal Vtick for a flow reserving fraction `rate` of an output channel
/// with `packet_len` flits per packet: mean inter-packet time in cycles.
[[nodiscard]] double ideal_vtick(double rate, std::uint32_t packet_len);

}  // namespace ssq::core
