// Runtime-dispatched SIMD primitives for the arbitration kernels and the
// injection plane.
//
// Every function here computes an exact integer function of its inputs; the
// AVX2 and portable tiers are two instruction schedules of the same
// arithmetic, so results are byte-identical across tiers and across hosts.
// Dispatch is resolved once per process (cpuid + the SSQ_SIMD environment
// override) so the per-call cost is one predictable load.
//
// Tier selection:
//   * compiled out entirely with -DSSQ_NO_AVX2 (the `-mno-avx2` CI job adds
//     it) or on non-x86-64 targets — active_tier() then always reports
//     Portable;
//   * otherwise AVX2 code is emitted behind the GCC `target("avx2")`
//     attribute and entered only when __builtin_cpu_supports("avx2");
//   * SSQ_SIMD=portable forces the portable tier at runtime (CI runs the
//     whole suite both ways on the same binary to prove identity).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssq::core::simd {

enum class SimdTier : std::uint8_t {
  Portable = 0,
  Avx2 = 1,
};

[[nodiscard]] constexpr const char* to_string(SimdTier t) noexcept {
  switch (t) {
    case SimdTier::Portable: return "portable";
    case SimdTier::Avx2: return "avx2";
  }
  return "?";
}

/// The tier every simd:: call below executes on, resolved once per process.
[[nodiscard]] SimdTier active_tier() noexcept;

/// LRG covering sweep: bit i (i < n) of the result is set iff input i's
/// beats-row covers every other member of `mask`, i.e.
/// (mask & ~(1<<i) & ~rows[i]) == 0. The first set bit of
/// (covering_mask(...) & mask) is exactly the winner the scalar
/// first-covering-requester loop returns; a zero intersection reproduces the
/// scalar loop's "no covering requester" (corrupt matrix) outcome.
[[nodiscard]] std::uint64_t covering_mask(const std::uint64_t* rows,
                                          std::uint32_t n,
                                          std::uint64_t mask) noexcept;

/// GB min-level scan: first lane index l < n with (lanes[l] & occ) != 0,
/// or n when every intersection is empty.
[[nodiscard]] std::uint32_t first_hit_lane(const std::uint64_t* lanes,
                                           std::uint32_t n,
                                           std::uint64_t occ) noexcept;

/// Batched xoshiro256** advance over structure-of-arrays generator state:
/// for each k in [0, n), out[k] = next draw of state k, and the four state
/// words are updated in place. Per-slot results equal Rng::operator()() on
/// the same state words in any order (slots are independent).
void xoshiro_batch(std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2,
                   std::uint64_t* s3, std::uint64_t* out,
                   std::size_t n) noexcept;

}  // namespace ssq::core::simd
