#include "core/output_arbiter.hpp"

#include <algorithm>
#include <bit>

#include "circuit/lane_masks.hpp"
#include "core/simd.hpp"
#include "obs/probe.hpp"

namespace ssq::core {

namespace {

/// Vtick for input i's GB reservation, quantised to the register.
std::uint64_t gb_vtick(const SsvcParams& params, const OutputAllocation& alloc,
                       InputId i) {
  const double rate = alloc.gb_rate[i];
  if (rate <= 0.0) return 1;  // inactive crosspoint; value never used
  return quantize_vtick(params, ideal_vtick(rate, alloc.gb_packet_len));
}

std::uint64_t gl_vtick(const SsvcParams& params,
                       const OutputAllocation& alloc) {
  if (alloc.gl_rate <= 0.0) return 0;  // GL tracking disabled
  return quantize_vtick(params, ideal_vtick(alloc.gl_rate, alloc.gl_packet_len));
}

}  // namespace

OutputQosArbiter::OutputQosArbiter(std::uint32_t radix,
                                   const SsvcParams& params,
                                   OutputAllocation alloc,
                                   GlPolicing policing,
                                   std::uint32_t gl_allowance_packets,
                                   ArbKernel kernel)
    : radix_(radix),
      params_(params),
      alloc_(std::move(alloc)),
      lrg_(radix),
      gl_(gl_vtick(params, alloc_), gl_allowance_packets, policing),
      kernel_(kernel) {
  SSQ_EXPECT(radix >= 1 && radix <= 64);
  params_.validate();
  alloc_.validate(radix);
  gb_vc_.reserve(radix);
  for (InputId i = 0; i < radix; ++i) {
    gb_vc_.emplace_back(params_, gb_vtick(params_, alloc_, i));
    if (alloc_.gb_rate[i] > 0.0) gb_capable_ |= 1ULL << i;
  }
  lane_mask_.assign(params_.gb_levels(), 0);
  lane_mask_[0] = circuit::all_inputs_mask(radix);
  bucket_.reserve(radix);
}

AuxVc& OutputQosArbiter::aux_vc_mut(InputId i) {
  SSQ_EXPECT(i < radix_);
  // Whoever takes this reference (fault injector, scrubber, tests) may move
  // the counter out from under the incremental lane-mask mirror: mark the
  // input stale so the next masked pick re-reads its level.
  dirty_ |= 1ULL << i;
  return gb_vc_[i];
}

void OutputQosArbiter::resync_input(InputId i) {
  const std::uint64_t bit = 1ULL << i;
  for (auto& lm : lane_mask_) lm &= ~bit;
  lane_mask_[gb_vc_[i].arb_level()] |= bit;
}

void OutputQosArbiter::resync_lane_masks() {
  std::uint64_t still = 0;
  for (std::uint64_t m = dirty_; m != 0; m &= m - 1) {
    const auto i = static_cast<InputId>(std::countr_zero(m));
    resync_input(i);
    // A corrupted thermometer vector no longer follows the incremental
    // transforms (the XOR overlay is pinned to physical cells while the
    // logical level keeps shifting), so the input stays dirty until the
    // scrubber clears the corruption.
    if (gb_vc_[i].corrupted()) still |= 1ULL << i;
  }
  dirty_ = still;
}

void OutputQosArbiter::advance_to(Cycle now) {
  SSQ_EXPECT(now >= last_now_);
  last_now_ = now;
  SSQ_EXPECT(now >= epoch_base_);
  rt_ = now - epoch_base_;

  // The real-time clock counter is lsb_bits wide in every finite-counter
  // design; its wrap ("once that counter saturates") subtracts one MSB from
  // every auxVC and shifts the thermometer codes down. This runs for all
  // three management policies — it is how real time is kept.
  if (params_.policy != CounterPolicy::None) {
    const std::uint64_t epoch = params_.epoch_cycles();
    while (rt_ >= epoch) {
      for (auto& vc : gb_vc_) vc.epoch_wrap();
      circuit::lane_masks_shift_down(lane_mask_);
      epoch_base_ += epoch;
      rt_ -= epoch;
      if (probe_ != nullptr) probe_->epoch_wrap(now, self_);
    }
  }
}

void OutputQosArbiter::on_saturation(Cycle now) {
  // Global management event when any auxVC register saturates despite the
  // periodic subtraction — which is what happens on multi-packet bursts
  // from low-rate (large-Vtick) flows, the paper's "especially during
  // bursty injection" case. The subtract policy merely clamps the register
  // (a bounded debt that still takes ~cap cycles to decay); halving and
  // resetting erase the banked debt for everyone at once, "reduc[ing] the
  // number of unique thermometer code values in existence" so LRG resolves
  // more of the contention.
  switch (params_.policy) {
    case CounterPolicy::Halve:
      for (auto& vc : gb_vc_) vc.halve();
      circuit::lane_masks_halve(lane_mask_);
      if (probe_ != nullptr) probe_->mgmt_event(now, self_, /*halve=*/true);
      break;
    case CounterPolicy::Reset:
      for (auto& vc : gb_vc_) vc.reset();
      circuit::lane_masks_reset(lane_mask_, circuit::all_inputs_mask(radix_));
      if (probe_ != nullptr) probe_->mgmt_event(now, self_, /*halve=*/false);
      break;
    case CounterPolicy::SubtractRealClock:
    case CounterPolicy::None:
      break;  // no global event for these policies; registers clamp
  }
}

InputId OutputQosArbiter::lrg_pick(std::span<const ClassRequest> reqs) const {
  if (reqs.empty()) return kNoPort;
  std::uint64_t mask = 0;
  for (const auto& r : reqs) mask |= 1ULL << r.input;
  for (const auto& r : reqs) {
    const std::uint64_t others = mask & ~(1ULL << r.input);
    if ((lrg_.row(r.input) & others) == others) return r.input;
  }
  if (lrg_.fault_tolerant()) {
    // Corrupted matrix: degrade to the max-out-degree requester (first in
    // request order on ties) until the scrubber rebuilds the total order.
    InputId best = reqs.front().input;
    int best_deg = -1;
    for (const auto& r : reqs) {
      const std::uint64_t others = mask & ~(1ULL << r.input);
      const int deg = std::popcount(lrg_.row(r.input) & others);
      if (deg > best_deg) {
        best_deg = deg;
        best = r.input;
      }
    }
    return best;
  }
  SSQ_ENSURE(false && "LRG matrix lost its total order");
  return kNoPort;
}

InputId OutputQosArbiter::lrg_winner(std::uint64_t mask) const {
  SSQ_EXPECT(mask != 0);
  // Same resolution as lrg_pick over the requesters in ascending input
  // order — the order the crossbar always presents. A valid LRG matrix is a
  // total order, so the winner is order-independent.
  if (kernel_ == ArbKernel::Simd) {
    // Vector sweep over all rows at once; the first covering requester is
    // the first set bit of the intersection — the same input the per-bit
    // scan below lands on. An empty intersection (corrupt matrix) falls
    // through to the shared fault-tolerant degradation.
    const std::uint64_t covering =
        simd::covering_mask(lrg_.rows_data(), radix_, mask) & mask;
    if (covering != 0) {
      return static_cast<InputId>(std::countr_zero(covering));
    }
  } else {
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(m));
      const std::uint64_t others = mask & ~(1ULL << i);
      if ((lrg_.row(i) & others) == others) return i;
    }
  }
  if (lrg_.fault_tolerant()) {
    InputId best = static_cast<InputId>(std::countr_zero(mask));
    int best_deg = -1;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(m));
      const std::uint64_t others = mask & ~(1ULL << i);
      const int deg = std::popcount(lrg_.row(i) & others);
      if (deg > best_deg) {
        best_deg = deg;
        best = i;
      }
    }
    return best;
  }
  SSQ_ENSURE(false && "LRG matrix lost its total order");
  return kNoPort;
}

InputId OutputQosArbiter::pick(std::span<const ClassRequest> requests,
                               Cycle now) {
  SSQ_EXPECT(now == last_now_ && "call advance_to(now) before pick()");
  if (kernel_ != ArbKernel::Scalar) {
    // One pass packs the request set into the three class masks; all the
    // per-request validity checks of the scalar kernel happen here.
    std::uint64_t gl = 0;
    std::uint64_t gb = 0;
    std::uint64_t be = 0;
    std::uint64_t packed = 0;
    for (const auto& r : requests) {
      SSQ_EXPECT(r.input < radix_);
      const std::uint64_t bit = 1ULL << r.input;
      SSQ_EXPECT((packed & bit) == 0);
      packed |= bit;
      switch (r.cls) {
        case TrafficClass::GuaranteedLatency: gl |= bit; break;
        case TrafficClass::GuaranteedBandwidth: gb |= bit; break;
        case TrafficClass::BestEffort: be |= bit; break;
      }
    }
    return pick_masked(gl, gb, be, now);
  }
  std::uint64_t seen = 0;
  for (const auto& r : requests) {
    SSQ_EXPECT(r.input < radix_);
    SSQ_EXPECT(((seen >> r.input) & 1ULL) == 0);
    seen |= 1ULL << r.input;
  }
  if (requests.empty()) return kNoPort;

  // Stage 1 — GL override (Fig. 3): any *eligible* GL request discharges all
  // GB lanes; GL inputs LRG-arbitrate in the GL lane.
  const bool gl_ok = gl_.eligible(now);
  std::vector<ClassRequest>& bucket = bucket_;  // construction-time capacity
  bucket.clear();
  if (gl_ok) {
    for (const auto& r : requests)
      if (r.cls == TrafficClass::GuaranteedLatency) bucket.push_back(r);
    if (!bucket.empty()) {
      const InputId w = lrg_pick(bucket);
      if (probe_ != nullptr && bucket.size() > 1) {
        probe_->lane_tie_break(now, self_, TrafficClass::GuaranteedLatency, w,
                               0, static_cast<std::uint32_t>(bucket.size()));
      }
      picked_class_ = TrafficClass::GuaranteedLatency;
      return w;
    }
  } else if (probe_ != nullptr) {
    for (const auto& r : requests) {
      if (r.cls == TrafficClass::GuaranteedLatency) {
        probe_->gl_stall(now, self_, gl_.overrun(now));
        break;
      }
    }
  }

  // Stage 2 — GB: smallest thermometer level wins; LRG breaks ties in-lane.
  // The comparison reads the *sensed* level — the stored thermometer vector
  // (which a fault may have corrupted) through the quarantine remap — not
  // the logical register, because that is what the bitlines discharge on.
  bucket.clear();
  std::uint32_t min_level = params_.gb_levels();
  for (const auto& r : requests) {
    if (r.cls != TrafficClass::GuaranteedBandwidth) continue;
    SSQ_EXPECT(alloc_.gb_rate[r.input] > 0.0 &&
               "GB request from an input with no reservation");
    min_level = std::min(min_level, sensed_gb_level(r.input));
  }
  for (const auto& r : requests) {
    if (r.cls == TrafficClass::GuaranteedBandwidth &&
        sensed_gb_level(r.input) == min_level) {
      bucket.push_back(r);
    }
  }
  if (!bucket.empty()) {
    const InputId w = lrg_pick(bucket);
    if (probe_ != nullptr && bucket.size() > 1) {
      probe_->lane_tie_break(now, self_, TrafficClass::GuaranteedBandwidth, w,
                             min_level,
                             static_cast<std::uint32_t>(bucket.size()));
    }
    picked_class_ = TrafficClass::GuaranteedBandwidth;
    return w;
  }

  // Stage 3 — BE, plus GL requests demoted by the policer if so configured.
  bucket.clear();
  for (const auto& r : requests) {
    if (r.cls == TrafficClass::BestEffort) bucket.push_back(r);
    if (r.cls == TrafficClass::GuaranteedLatency && !gl_ok &&
        gl_.policing() == GlPolicing::Demote) {
      bucket.push_back(r);
    }
  }
  if (!bucket.empty()) {
    std::uint64_t dup = 0;  // an input could appear as both GL and BE? No —
    for (const auto& r : bucket) {
      SSQ_EXPECT(((dup >> r.input) & 1ULL) == 0);
      dup |= 1ULL << r.input;
    }
    const InputId w = lrg_pick(bucket);
    if (probe_ != nullptr && bucket.size() > 1) {
      probe_->lane_tie_break(now, self_, TrafficClass::BestEffort, w, 0,
                             static_cast<std::uint32_t>(bucket.size()));
    }
    for (const auto& r : bucket) {
      if (r.input == w) picked_class_ = r.cls;
    }
    return w;
  }

  // Only stalled GL requests present: no winner this cycle.
  return kNoPort;
}

InputId OutputQosArbiter::pick_masked(std::uint64_t gl_mask,
                                      std::uint64_t gb_mask,
                                      std::uint64_t be_mask, Cycle now) {
  SSQ_EXPECT(now == last_now_ && "call advance_to(now) before pick_masked()");
  const std::uint64_t all = circuit::all_inputs_mask(radix_);
  SSQ_EXPECT(((gl_mask | gb_mask | be_mask) & ~all) == 0);
  SSQ_EXPECT((gl_mask & gb_mask) == 0 && (gl_mask & be_mask) == 0 &&
             (gb_mask & be_mask) == 0 &&
             "an input requests in at most one class");
  SSQ_EXPECT((gb_mask & ~gb_capable_) == 0 &&
             "GB request from an input with no reservation");
  if ((gl_mask | gb_mask | be_mask) == 0) return kNoPort;
  if (dirty_ != 0) resync_lane_masks();

  // Stage 1 — GL override (Fig. 3): any *eligible* GL request discharges all
  // GB lanes; GL inputs LRG-arbitrate in the GL lane.
  const bool gl_ok = gl_.eligible(now);
  if (gl_ok) {
    if (gl_mask != 0) {
      const InputId w = lrg_winner(gl_mask);
      if (probe_ != nullptr && std::popcount(gl_mask) > 1) {
        probe_->lane_tie_break(
            now, self_, TrafficClass::GuaranteedLatency, w, 0,
            static_cast<std::uint32_t>(std::popcount(gl_mask)));
      }
      picked_class_ = TrafficClass::GuaranteedLatency;
      return w;
    }
  } else if (probe_ != nullptr && gl_mask != 0) {
    probe_->gl_stall(now, self_, gl_.overrun(now));
  }

  // Stage 2 — GB: AND the requester mask into the lane masks lowest-lane
  // (= highest-priority) first; the first non-empty intersection is the
  // winning lane, and LRG breaks the tie inside it. Under a quarantine
  // remap, consecutive raw lanes can share a sensed level (lane_map_ is
  // monotone with contiguous equal-value runs), so the candidate set absorbs
  // the rest of the run.
  if (gb_mask != 0) {
    const auto n = static_cast<std::uint32_t>(lane_mask_.size());
    std::uint64_t cand = 0;
    std::uint32_t lane = 0;
    if (kernel_ == ArbKernel::Simd) {
      lane = simd::first_hit_lane(lane_mask_.data(), n, gb_mask);
      if (lane < n) cand = gb_mask & lane_mask_[lane];
    } else {
      for (; lane < n; ++lane) {
        cand = gb_mask & lane_mask_[lane];
        if (cand != 0) break;
      }
    }
    SSQ_ENSURE(cand != 0 && "every input occupies exactly one lane");
    std::uint32_t min_level = lane;
    if (!lane_map_.empty()) {
      min_level = lane_map_[lane];
      for (std::uint32_t m = lane + 1; m < n && lane_map_[m] == min_level;
           ++m) {
        cand |= gb_mask & lane_mask_[m];
      }
    }
    const InputId w = lrg_winner(cand);
    if (probe_ != nullptr && std::popcount(cand) > 1) {
      probe_->lane_tie_break(now, self_, TrafficClass::GuaranteedBandwidth, w,
                             min_level,
                             static_cast<std::uint32_t>(std::popcount(cand)));
    }
    picked_class_ = TrafficClass::GuaranteedBandwidth;
    return w;
  }

  // Stage 3 — BE, plus GL requests demoted by the policer if so configured.
  const std::uint64_t demoted =
      (!gl_ok && gl_.policing() == GlPolicing::Demote) ? gl_mask : 0;
  const std::uint64_t stage3 = be_mask | demoted;
  if (stage3 != 0) {
    const InputId w = lrg_winner(stage3);
    if (probe_ != nullptr && std::popcount(stage3) > 1) {
      probe_->lane_tie_break(
          now, self_, TrafficClass::BestEffort, w, 0,
          static_cast<std::uint32_t>(std::popcount(stage3)));
    }
    picked_class_ = ((demoted >> w) & 1ULL) != 0
                        ? TrafficClass::GuaranteedLatency
                        : TrafficClass::BestEffort;
    return w;
  }

  // Only stalled GL requests present: no winner this cycle.
  return kNoPort;
}

void OutputQosArbiter::on_grant(InputId input, TrafficClass cls,
                                std::uint32_t length, Cycle now) {
  SSQ_EXPECT(input < radix_);
  SSQ_EXPECT(length >= 1);
  SSQ_EXPECT(now == last_now_ && "call advance_to(now) before on_grant()");

  lrg_.on_grant(input, length, now);
  switch (cls) {
    case TrafficClass::GuaranteedBandwidth: {
      const bool saturated = gb_vc_[input].on_grant(rt_);
      if (saturated && probe_ != nullptr) {
        probe_->auxvc_saturated(now, self_, input, gb_vc_[input].cap());
      }
      if (saturated && (params_.policy == CounterPolicy::Halve ||
                        params_.policy == CounterPolicy::Reset)) {
        on_saturation(now);
      }
      // The grant moved this input's counter (and a management event may
      // have moved everyone); re-slot the granted input's lane-mask bit.
      resync_input(input);
      break;
    }
    case TrafficClass::GuaranteedLatency:
      gl_.on_grant(now);
      break;
    case TrafficClass::BestEffort:
      break;
  }
}

void OutputQosArbiter::quarantine_lane(std::uint32_t lane) {
  SSQ_EXPECT(lane < params_.gb_levels());
  if ((quarantined_ >> lane) & 1ULL) return;
  quarantined_ |= 1ULL << lane;
  // Remap each level to its rank among the healthy lanes below it: the
  // quarantined lane's occupants land on the nearest healthy lane beneath,
  // compressing the code to fewer distinct levels.
  const std::uint32_t n = params_.gb_levels();
  lane_map_.assign(n, 0);
  for (std::uint32_t l = 1; l < n; ++l) {
    const std::uint64_t healthy_below = ~quarantined_ & ((1ULL << l) - 1);
    lane_map_[l] = static_cast<std::uint32_t>(std::popcount(healthy_below));
  }
  if (probe_ != nullptr) probe_->lane_quarantined(last_now_, self_, lane);
}

std::uint32_t OutputQosArbiter::scrub(Cycle now) {
  advance_to(now);
  std::uint32_t repairs = 0;
  for (InputId i = 0; i < radix_; ++i) {
    const auto outcome = gb_vc_[i].scrub(rt_);
    if (outcome == AuxVc::ScrubOutcome::Clean) continue;
    ++repairs;
    dirty_ |= 1ULL << i;  // repaired level: re-slot the lane-mask bit
    if (probe_ != nullptr) {
      probe_->scrub_repair(now, self_, i,
                           outcome == AuxVc::ScrubOutcome::ValueReset
                               ? obs::kRepairAuxValue
                               : obs::kRepairAuxCode);
    }
  }
  if (lrg_.repair_order()) {
    ++repairs;
    if (probe_ != nullptr) {
      probe_->scrub_repair(now, self_, kNoPort, obs::kRepairLrgOrder);
    }
  }
  if (gl_.scrub(now)) {
    ++repairs;
    if (probe_ != nullptr) {
      probe_->scrub_repair(now, self_, kNoPort, obs::kRepairGlClock);
    }
  }
  if (dirty_ != 0) resync_lane_masks();
  return repairs;
}

void OutputQosArbiter::reset() {
  lrg_.reset();
  for (InputId i = 0; i < radix_; ++i) {
    gb_vc_[i] = AuxVc(params_, gb_vtick(params_, alloc_, i));
  }
  gl_.reset();
  epoch_base_ = 0;
  rt_ = 0;
  last_now_ = 0;
  picked_class_ = TrafficClass::BestEffort;
  circuit::lane_masks_reset(lane_mask_, circuit::all_inputs_mask(radix_));
  dirty_ = 0;
}

}  // namespace ssq::core
