// Crash-safe whole-file writes: write-tmp + fsync + rename.
//
// A process that dies (or a disk that fills) mid-write must never leave a
// torn half-file where a reader expects a complete one — a truncated repro
// or report is worse than none, because it parses as a *different* artifact.
// write_file_atomic stages the content in a sibling temp file (same
// directory, so the final rename(2) is atomic on POSIX), flushes it to disk,
// and renames it over the destination. Readers therefore observe either the
// old content or the complete new content, never a prefix.
#pragma once

#include <cerrno>
#include <cstdio>
#include <string>
#include <string_view>

#include <unistd.h>

namespace ssq {

/// Atomically replaces `path` with `content`. Returns true on success; on
/// failure the destination is untouched and the temp file is removed.
/// `noexcept` so callers on error-reporting paths (signal drains, failure
/// handlers) can use it without a second layer of failure handling.
inline bool write_file_atomic(const std::string& path,
                              std::string_view content) noexcept {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = content.empty() ||
            std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = ok && std::fflush(f) == 0;
  // fsync before rename: otherwise a power loss can replace the old file
  // with a *zero-length* new one (the rename can hit disk before the data).
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace ssq
