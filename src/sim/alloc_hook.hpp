// Global-allocation counting hook for the zero-allocation step() contract.
//
// The counters are defined in alloc_hook.cpp alongside replacement global
// `operator new`/`operator delete` implementations, packaged as the
// `ssq_alloc_hook` library. Link that library ONLY into binaries that need
// allocation accounting (tests/hotpath_alloc_test, tools/ssq_bench) — every
// other binary keeps the stock allocator and is unperturbed.
//
// Usage:
//   warm_up_the_hot_path();          // reach steady-state capacities first
//   ssq::alloc_hook::reset();
//   run_the_hot_path();
//   EXPECT_EQ(ssq::alloc_hook::allocations(), 0u);
//
// Counting is process-wide and thread-safe (relaxed atomics): a count of
// zero is exact, and any nonzero count means some thread allocated.
#pragma once

#include <cstdint>

namespace ssq::alloc_hook {

/// Zeroes both counters.
void reset() noexcept;

/// Number of global operator new calls since the last reset().
[[nodiscard]] std::uint64_t allocations() noexcept;

/// Number of global operator delete calls since the last reset().
[[nodiscard]] std::uint64_t deallocations() noexcept;

}  // namespace ssq::alloc_hook
