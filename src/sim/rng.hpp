// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of an experiment (injection processes, random
// allocation vectors, tie-shuffles in tests) draws from an Rng seeded from a
// single experiment-level seed, so every table row printed by the bench
// harness is exactly reproducible.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via splitmix64 —
// small, fast, and statistically strong for simulation purposes. It satisfies
// the C++ UniformRandomBitGenerator requirements so it can be used with
// <random> distributions, but the common draws (uniform double, Bernoulli,
// bounded int, geometric) are provided directly with stable semantics.
#pragma once

#include <cstdint>
#include <limits>

namespace ssq {

/// splitmix64 — used to expand a 64-bit seed into generator state, and as a
/// convenient stateless hash for deriving per-flow sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state by running splitmix64 on `seed`. Any seed is valid.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  constexpr bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection-free-in-the-common-case method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Debiased multiply method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Geometric draw: number of failures before the first success of a
  /// Bernoulli(p) process; mean (1-p)/p. Precondition: 0 < p <= 1.
  constexpr std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    std::uint64_t n = 0;
    while (!bernoulli(p)) ++n;
    return n;
  }

  /// Derives an independent child generator (stable: depends only on the
  /// parent's current state and `stream`).
  constexpr Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t s = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng{s};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ssq
