// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of an experiment (injection processes, random
// allocation vectors, tie-shuffles in tests) draws from an Rng seeded from a
// single experiment-level seed, so every table row printed by the bench
// harness is exactly reproducible.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via splitmix64 —
// small, fast, and statistically strong for simulation purposes. It satisfies
// the C++ UniformRandomBitGenerator requirements so it can be used with
// <random> distributions, but the common draws (uniform double, Bernoulli,
// bounded int, geometric) are provided directly with stable semantics.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ssq {

/// Sentinels of bernoulli_threshold(): probabilities clamped to never/always
/// consume no draw, exactly like Rng::bernoulli on p <= 0 / p >= 1.
inline constexpr std::uint64_t kBernoulliNever = 0;
inline constexpr std::uint64_t kBernoulliAlways = ~0ULL;

/// Exact integer form of the `uniform() < p` trial: for 0 < p < 1,
/// (x >> 11) < bernoulli_threshold(p) holds for exactly the x where
/// bernoulli(p) drawing x returns true. uniform() is (x >> 11) * 2^-53 with
/// both the product and p exact doubles, so the double compare is an exact
/// real compare of (x >> 11) against p * 2^53 — i.e. an integer compare
/// against ceil(p * 2^53). Multiplying p by 2^53 only shifts its exponent
/// (no rounding), so the threshold is exact too.
[[nodiscard]] constexpr std::uint64_t bernoulli_threshold(double p) noexcept {
  if (p <= 0.0) return kBernoulliNever;
  if (p >= 1.0) return kBernoulliAlways;
  const double scaled = p * 9007199254740992.0;  // p * 2^53, exact
  auto t = static_cast<std::uint64_t>(scaled);   // floor; scaled < 2^53
  if (static_cast<double>(t) < scaled) ++t;      // ceil on non-integral
  return t;  // in [1, 2^53]: distinct from both sentinels
}

/// splitmix64 — used to expand a 64-bit seed into generator state, and as a
/// convenient stateless hash for deriving per-flow sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform integer in [0, bound) drawn from `next()` (a callable returning
/// uniform uint64s) by Lemire's multiply-shift method. Rng::below() and the
/// SoA injector bank (which keeps xoshiro state in struct-of-arrays form)
/// both route through this so their draw sequences stay byte-identical.
template <typename Next>
constexpr std::uint64_t below_with(Next&& next, std::uint64_t bound) noexcept {
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state by running splitmix64 on `seed`. Any seed is valid.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Rebuilds a generator from exported state words (see state()).
  explicit constexpr Rng(const std::array<std::uint64_t, 4>& st) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = st[static_cast<std::size_t>(i)];
  }

  /// Exports the raw xoshiro state, e.g. into the SoA injector bank which
  /// advances many generators in lock-step.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  constexpr bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection-free-in-the-common-case method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return below_with([this] { return (*this)(); }, bound);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Geometric draw: number of failures before the first success of a
  /// Bernoulli(p) process; mean (1-p)/p. Precondition: 0 < p <= 1.
  constexpr std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    std::uint64_t n = 0;
    while (!bernoulli(p)) ++n;
    return n;
  }

  /// Derives an independent child generator (stable: depends only on the
  /// parent's current state and `stream`).
  constexpr Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t s = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng{s};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ssq
