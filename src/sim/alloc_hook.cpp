// Counting replacements for the global allocation functions. This TU must
// live in its own library (ssq_alloc_hook) linked only into the binaries
// that measure allocations — see alloc_hook.hpp.
#include "sim/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t padded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, padded)) return p;
  throw std::bad_alloc{};
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace ssq::alloc_hook {

void reset() noexcept {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
}

std::uint64_t allocations() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t deallocations() noexcept {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace ssq::alloc_hook

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
