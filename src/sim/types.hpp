// Fundamental vocabulary types shared by every subsystem of the Swizzle
// Switch QoS reproduction.
//
// The simulator is cycle-accurate: time is an unsigned 64-bit cycle count.
// Ports are identified by small indices; traffic classes follow the paper's
// three-class model (Best-Effort < Guaranteed-Bandwidth < Guaranteed-Latency,
// in increasing priority).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

namespace ssq {

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "not yet".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Input-port index of a switch (0 .. radix-1).
using InputId = std::uint32_t;

/// Output-port index of a switch (0 .. radix-1).
using OutputId = std::uint32_t;

/// Sentinel for "no port".
inline constexpr std::uint32_t kNoPort = std::numeric_limits<std::uint32_t>::max();

/// Monotonically increasing identifier assigned to each injected packet.
using PacketId = std::uint64_t;

/// Identifier of a (source, destination, class) flow within a workload.
using FlowId = std::uint32_t;

/// The paper's three traffic classes, ordered by increasing priority.
///
/// * BE — Best-Effort: no reservations, LRG arbitration, lowest priority.
/// * GB — Guaranteed-Bandwidth: Virtual-Clock-regulated reservations.
/// * GL — Guaranteed-Latency: policed highest-priority class with the
///        closed-form waiting-time bound of Eq. (1).
enum class TrafficClass : std::uint8_t {
  BestEffort = 0,
  GuaranteedBandwidth = 1,
  GuaranteedLatency = 2,
};

/// Number of traffic classes (array sizing).
inline constexpr std::size_t kNumClasses = 3;

/// Short stable name for logs and table headers ("BE", "GB", "GL").
constexpr std::string_view to_string(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::BestEffort: return "BE";
    case TrafficClass::GuaranteedBandwidth: return "GB";
    case TrafficClass::GuaranteedLatency: return "GL";
  }
  return "??";
}

/// Priority comparison: GL > GB > BE.
constexpr bool higher_priority(TrafficClass a, TrafficClass b) noexcept {
  return static_cast<std::uint8_t>(a) > static_cast<std::uint8_t>(b);
}

}  // namespace ssq
