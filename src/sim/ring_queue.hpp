// RingQueue — a FIFO over a power-of-two ring buffer that never shrinks.
//
// std::deque allocates and frees node blocks as elements flow through it, so
// a steadily draining packet queue keeps the allocator on the hot path. The
// simulator's queues (per-flow source queues, per-class input buffers) have
// a bounded steady-state depth: a ring that grows geometrically and keeps
// its capacity makes every push/pop allocation-free once the high-water mark
// has been reached, which is what the zero-allocation step() contract (see
// docs/PERFORMANCE.md) is built on.
//
// Deque-compatible subset: push_back, push_front (preemption restores a
// victim to the head), pop_front, front/back, size/empty, clear. Elements
// must be movable; moved-from slots are left in place and overwritten on
// reuse (no destruction per pop — T is expected to be trivially
// destructible, like Packet).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/contracts.hpp"

namespace ssq {

template <typename T>
class RingQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  RingQueue() = default;

  /// Pre-sizes the ring to hold at least `n` elements without reallocating.
  explicit RingQueue(std::size_t n) { reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  [[nodiscard]] T& front() {
    SSQ_EXPECT(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    SSQ_EXPECT(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    SSQ_EXPECT(size_ > 0);
    return buf_[wrap(head_ + size_ - 1)];
  }
  [[nodiscard]] const T& back() const {
    SSQ_EXPECT(size_ > 0);
    return buf_[wrap(head_ + size_ - 1)];
  }

  /// Element `i` counted from the front (0 == front()).
  [[nodiscard]] const T& at(std::size_t i) const {
    SSQ_EXPECT(i < size_);
    return buf_[wrap(head_ + i)];
  }

  void push_back(T&& v) {
    grow_if_full();
    buf_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }
  void push_back(const T& v) { push_back(T(v)); }

  void push_front(T&& v) {
    grow_if_full();
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = std::move(v);
    ++size_;
  }

  void pop_front() {
    SSQ_EXPECT(size_ > 0);
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Drops every element; capacity is retained.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Grows capacity to at least `n` (rounded up to a power of two).
  void reserve(std::size_t n) {
    if (n <= buf_.size()) return;
    std::size_t cap = buf_.empty() ? kMinCapacity : buf_.size();
    while (cap < n) cap *= 2;
    regrow(cap);
  }

 private:
  static constexpr std::size_t kMinCapacity = 4;

  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i & (buf_.size() - 1);  // capacity is always a power of two
  }

  void grow_if_full() {
    if (size_ == buf_.size()) {
      regrow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    }
  }

  void regrow(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ssq
