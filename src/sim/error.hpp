// Named error type for user-reachable configuration mistakes.
//
// The contract macros (sim/contracts.hpp) abort, which is right for internal
// invariants — a simulator that keeps running after violating a hardware
// invariant produces plausible-looking wrong numbers. But a bad CLI flag, an
// over-subscribed workload file or an out-of-range counter geometry is the
// *user's* input, not a bug: those paths throw ConfigError instead, and the
// drivers (tools/ssq_sim) catch it at main() and exit nonzero with a
// one-line message — no core dumps on bad input.
#pragma once

#include <stdexcept>
#include <string>

namespace ssq {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Throws ConfigError(message) when `ok` is false. Used by the validate()
/// methods of every user-reachable configuration struct.
inline void config_check(bool ok, const std::string& message) {
  if (!ok) throw ConfigError(message);
}

}  // namespace detail

}  // namespace ssq
