// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6/I.8): preconditions and invariants are always checked — a simulator
// that silently continues after violating a hardware invariant produces
// numbers that look plausible and are wrong, which is worse than aborting.
//
// SSQ_EXPECT  — precondition on function entry.
// SSQ_ENSURE  — postcondition / invariant.
// Both print file:line and the failed expression, then abort. They are cheap
// (a predictable branch) and stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ssq::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) noexcept {
  std::fprintf(stderr, "ssq: %s failed: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace ssq::detail

#define SSQ_EXPECT(cond)                                                      \
  do {                                                                        \
    if (!(cond)) ::ssq::detail::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define SSQ_ENSURE(cond)                                                      \
  do {                                                                        \
    if (!(cond)) ::ssq::detail::contract_failure("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
