// The multiplexer before the sense amp (paper Fig. 2) — "The most
// significant bits of the auxVC counter [are used] to select the wire to be
// sensed by the sense amp", and §4.5: "The critical path is extended by the
// multiplexer before the sense amp."
//
// Modelled as the hardware builds it: a binary tree of 2:1 muxes whose
// select lines are the auxVC MSBs. depth() — ceil(log2(num_lanes)) — is the
// critical-path term that produces Table 2's SSVC slowdown (hw::TimingModel
// grows its mux delay with the lane count). sense() evaluates the tree
// stage by stage, which the tests check against the direct wire lookup.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/bus_bits.hpp"
#include "circuit/lane_layout.hpp"
#include "sim/contracts.hpp"

namespace ssq::circuit {

class SenseMux {
 public:
  /// `num_lanes` selectable lanes (power of two, as the select lines are
  /// counter bits).
  explicit SenseMux(std::uint32_t num_lanes) : num_lanes_(num_lanes) {
    SSQ_EXPECT(num_lanes >= 1 && num_lanes <= 64);
    SSQ_EXPECT((num_lanes & (num_lanes - 1)) == 0);
    while ((1u << depth_) < num_lanes_) ++depth_;
  }

  /// 2:1-mux tree depth — the §4.5 critical-path extension.
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }

  /// Number of 2:1 muxes in the tree (area term).
  [[nodiscard]] std::uint32_t mux_count() const noexcept {
    return num_lanes_ - 1;
  }

  /// Evaluates the tree: reads input `n`'s candidate wire from every lane of
  /// `bus` and selects with `level` as the select lines, one stage (one
  /// select bit) at a time. Returns the charge of the selected wire
  /// (true = still charged = won).
  [[nodiscard]] bool sense(const BusBits& bus, const LaneLayout& layout,
                           InputId n, std::uint32_t level) const {
    SSQ_EXPECT(layout.gb_lanes == num_lanes_);
    SSQ_EXPECT(level < num_lanes_);
    // Leaf inputs: the candidate wire of every lane. "Charged" is the
    // absence of a discharge in the BusBits record.
    std::vector<bool> stage(num_lanes_);
    for (std::uint32_t lane = 0; lane < num_lanes_; ++lane) {
      stage[lane] = !bus.get(layout.wire(lane, n));
    }
    // Tree evaluation, LSB select bit first.
    for (std::uint32_t bit = 0; bit < depth_; ++bit) {
      const bool sel = (level >> bit) & 1u;
      std::vector<bool> next(stage.size() / 2);
      for (std::size_t m = 0; m < next.size(); ++m) {
        next[m] = sel ? stage[2 * m + 1] : stage[2 * m];
      }
      stage = std::move(next);
    }
    SSQ_ENSURE(stage.size() == 1);
    return stage[0];
  }

 private:
  std::uint32_t num_lanes_;
  std::uint32_t depth_ = 0;
};

}  // namespace ssq::circuit
