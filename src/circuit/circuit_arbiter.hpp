// Bit-level model of the SSVC inhibit-based arbitration (paper §3.1, §4.1).
//
// "To verify the correctness of SSVC, we further modeled the behavior of
// each wire, multiplexer, and sense amp in a C++ program." — this is that
// program. One arbitration:
//
//   1. Precharge: every bitline of the output bus is charged.
//   2. Discharge: every requesting crosspoint drives its discharge vector
//      (Fig. 1(b) cells per GB lane + Fig. 3 GL override + BE completion)
//      onto the bus; discharges wire-OR.
//   3. Sense: every requesting crosspoint's sense amp reads the single wire
//      selected by its auxVC MSBs (or the GL/BE lane); a still-charged wire
//      means "won".
//
// The model checks the single-winner invariant (exactly one sense amp reads
// a charged wire) and returns the winner. ReferenceArbiter computes the same
// decision directly from (class, level, LRG order) — the "true … auxVC value
// comparison" of §4.1 — and the test suite proves the two agree for all
// input combinations of thermometer codes and valid LRG states.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arb/lrg.hpp"
#include "circuit/bus_bits.hpp"
#include "circuit/discharge.hpp"
#include "circuit/lane_layout.hpp"
#include "sim/types.hpp"

namespace ssq::circuit {

/// One crosspoint's contribution to an arbitration.
struct CrosspointRequest {
  InputId input = 0;
  RequestKind kind = RequestKind::None;
  /// Thermometer level (auxVC MSBs) — meaningful for Gb requests only.
  std::uint32_t level = 0;
};

/// Outcome of one arbitration, with the wire states exposed for inspection.
/// Reusable: arbitrate_into() clears and refills one of these in place, so a
/// caller that keeps the trace across calls pays no per-arbitration heap
/// allocation once the sensed_* vectors have reached their high-water size.
struct ArbitrationTrace {
  InputId winner = kNoPort;
  BusBits bitlines;           // post-discharge: set == discharged
  std::vector<std::uint32_t> sensed_wire;   // per requester, parallel order
  std::vector<bool> sensed_charged;         // per requester
  explicit ArbitrationTrace(std::uint32_t bus_width) : bitlines(bus_width) {}
};

class CircuitArbiter {
 public:
  explicit CircuitArbiter(const LaneLayout& layout);

  /// Runs one full precharge/discharge/sense arbitration. `lrg` supplies the
  /// replicated per-crosspoint LRG rows. Requests must name distinct inputs;
  /// at least one request must be present. Enforces the single-winner
  /// invariant among the winning class.
  [[nodiscard]] ArbitrationTrace arbitrate(
      std::span<const CrosspointRequest> requests,
      const arb::LrgArbiter& lrg) const;

  /// Same arbitration, writing into a caller-owned trace (which must have
  /// been constructed with this layout's bus_width). The hot differential
  /// checker reuses one trace across every grant check.
  void arbitrate_into(std::span<const CrosspointRequest> requests,
                      const arb::LrgArbiter& lrg,
                      ArbitrationTrace& trace) const;

  [[nodiscard]] const LaneLayout& layout() const noexcept { return layout_; }

  // ---- fault injection: stuck-at bitlines ----
  //
  // A stuck-at-0 wire is permanently discharged: every sense amp on it reads
  // "lost", so requests routed there can never win. A stuck-at-1 wire is
  // permanently charged: every claimant reads "won", the single-winner
  // invariant breaks, and the grant encoder's wired priority resolves the
  // multi-claim to the lowest input index. With no stuck wires the strict
  // invariant is enforced exactly as before.

  /// Marks bitline `wire` stuck-at-0 (clears any stuck-at-1 on it).
  void set_stuck_low(std::uint32_t wire);
  /// Marks bitline `wire` stuck-at-1 (clears any stuck-at-0 on it).
  void set_stuck_high(std::uint32_t wire);
  /// Heals all stuck wires (tests / repair-what-if experiments).
  void clear_stuck();
  [[nodiscard]] bool any_stuck() const noexcept { return any_stuck_; }

 private:
  LaneLayout layout_;
  BusBits stuck_low_;
  BusBits stuck_high_;
  bool any_stuck_ = false;
};

/// Golden reference: the same decision computed directly from levels and the
/// LRG total order, with no wires. GL (if any) beats everything and resolves
/// by LRG; else GB by (level, LRG); else BE by LRG.
[[nodiscard]] InputId reference_decision(
    std::span<const CrosspointRequest> requests, const arb::LrgArbiter& lrg,
    const LaneLayout& layout);

}  // namespace ssq::circuit
