// Dynamic fixed-width bit vector modelling the output bus bitlines.
//
// The Swizzle Switch repurposes the output data bus wires for arbitration:
// bitlines are precharged, then requesting inputs selectively discharge them.
// BusBits models the wire states for buses up to 1024 bits (512-bit channels
// are the largest the paper evaluates).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"

namespace ssq::circuit {

class BusBits {
 public:
  explicit BusBits(std::uint32_t width) : width_(width) {
    SSQ_EXPECT(width >= 1 && width <= 1024);
    words_.assign((width + 63) / 64, 0);
  }

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

  [[nodiscard]] bool get(std::uint32_t i) const {
    SSQ_EXPECT(i < width_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::uint32_t i) {
    SSQ_EXPECT(i < width_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void clear(std::uint32_t i) {
    SSQ_EXPECT(i < width_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Writes `bits` (low `count` bits) starting at wire `offset`.
  void set_range(std::uint32_t offset, std::uint64_t bits,
                 std::uint32_t count) {
    SSQ_EXPECT(count >= 1 && count <= 64);
    SSQ_EXPECT(offset + count <= width_);
    for (std::uint32_t k = 0; k < count; ++k) {
      if ((bits >> k) & 1ULL) set(offset + k);
    }
  }

  /// Bitwise OR-in of another vector of the same width (wired-OR discharge).
  BusBits& operator|=(const BusBits& other) {
    SSQ_EXPECT(other.width_ == width_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  [[nodiscard]] std::uint32_t popcount() const noexcept {
    std::uint32_t n = 0;
    for (auto w : words_) n += static_cast<std::uint32_t>(__builtin_popcountll(w));
    return n;
  }

  friend bool operator==(const BusBits& a, const BusBits& b) noexcept {
    return a.width_ == b.width_ && a.words_ == b.words_;
  }

 private:
  std::uint32_t width_;
  std::vector<std::uint64_t> words_;
};

}  // namespace ssq::circuit
