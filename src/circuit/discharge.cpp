#include "circuit/discharge.hpp"

namespace ssq::circuit {

namespace {

constexpr std::uint64_t lane_mask(std::uint32_t radix) noexcept {
  return radix == 64 ? ~0ULL : ((1ULL << radix) - 1);
}

}  // namespace

LaneDecision gb_lane_decision(const core::ThermometerCode& code,
                              std::uint32_t lane, std::uint64_t lrg_row,
                              std::uint32_t radix) {
  SSQ_EXPECT(lane < code.width());
  const bool t_i = code.bit(lane);
  const bool t_next = (lane + 1 < code.width()) && code.bit(lane + 1);
  LaneDecision d;
  if (!t_i) {
    d.bits = lane_mask(radix);  // lane above my level: inhibit everyone
  } else if (!t_next) {
    d.bits = lrg_row & lane_mask(radix);  // my lane: LRG tie-break
  } else {
    d.bits = 0;  // lane below my level: better inputs live here
  }
  return d;
}

BusBits discharge_vector(const LaneLayout& layout, RequestKind kind,
                         const core::ThermometerCode& code,
                         std::uint64_t lrg_row) {
  layout.validate();
  BusBits bus(layout.bus_width);
  discharge_into(bus, layout, kind, code, lrg_row);
  return bus;
}

void discharge_into(BusBits& bus, const LaneLayout& layout, RequestKind kind,
                    const core::ThermometerCode& code,
                    std::uint64_t lrg_row) {
  SSQ_EXPECT(bus.width() == layout.bus_width);
  SSQ_EXPECT(code.width() == layout.gb_lanes);
  const std::uint64_t all = lane_mask(layout.radix);

  switch (kind) {
    case RequestKind::None:
      break;

    case RequestKind::Gb:
      for (std::uint32_t lane = 0; lane < layout.gb_lanes; ++lane) {
        const LaneDecision d =
            gb_lane_decision(code, lane, lrg_row, layout.radix);
        bus.set_range(layout.wire(lane, 0), d.bits, layout.radix);
      }
      // BE completion: a reserved-class request defeats all best-effort.
      if (layout.has_be_lane) {
        bus.set_range(layout.wire(layout.be_lane(), 0), all, layout.radix);
      }
      break;

    case RequestKind::Gl:
      SSQ_EXPECT(layout.has_gl_lane);
      // Fig. 3: all bitlines in GB class lanes are discharged.
      for (std::uint32_t lane = 0; lane < layout.gb_lanes; ++lane) {
        bus.set_range(layout.wire(lane, 0), all, layout.radix);
      }
      // LRG arbitration among GL requesters in the GL lane.
      bus.set_range(layout.wire(layout.gl_lane(), 0), lrg_row & all,
                    layout.radix);
      if (layout.has_be_lane) {
        bus.set_range(layout.wire(layout.be_lane(), 0), all, layout.radix);
      }
      break;

    case RequestKind::BestEffort:
      SSQ_EXPECT(layout.has_be_lane);
      bus.set_range(layout.wire(layout.be_lane(), 0), lrg_row & all,
                    layout.radix);
      break;
  }
}

std::uint32_t sense_wire(const LaneLayout& layout, RequestKind kind,
                         const core::ThermometerCode& code, InputId input) {
  SSQ_EXPECT(input < layout.radix);
  switch (kind) {
    case RequestKind::Gb:
      return layout.wire(code.level(), input);
    case RequestKind::Gl:
      SSQ_EXPECT(layout.has_gl_lane);
      return layout.wire(layout.gl_lane(), input);
    case RequestKind::BestEffort:
      SSQ_EXPECT(layout.has_be_lane);
      return layout.wire(layout.be_lane(), input);
    case RequestKind::None:
      break;
  }
  SSQ_EXPECT(false && "no sense wire for a non-requesting crosspoint");
  return 0;
}

}  // namespace ssq::circuit
