#include "circuit/circuit_arbiter.hpp"

#include "core/thermometer.hpp"

namespace ssq::circuit {

CircuitArbiter::CircuitArbiter(const LaneLayout& layout)
    : layout_(layout),
      stuck_low_(layout.bus_width),
      stuck_high_(layout.bus_width) {
  layout_.validate();
}

void CircuitArbiter::set_stuck_low(std::uint32_t wire) {
  SSQ_EXPECT(wire < layout_.bus_width);
  stuck_high_.clear(wire);
  stuck_low_.set(wire);
  any_stuck_ = true;
}

void CircuitArbiter::set_stuck_high(std::uint32_t wire) {
  SSQ_EXPECT(wire < layout_.bus_width);
  stuck_low_.clear(wire);
  stuck_high_.set(wire);
  any_stuck_ = true;
}

void CircuitArbiter::clear_stuck() {
  stuck_low_.clear_all();
  stuck_high_.clear_all();
  any_stuck_ = false;
}

ArbitrationTrace CircuitArbiter::arbitrate(
    std::span<const CrosspointRequest> requests,
    const arb::LrgArbiter& lrg) const {
  ArbitrationTrace trace(layout_.bus_width);
  arbitrate_into(requests, lrg, trace);
  return trace;
}

void CircuitArbiter::arbitrate_into(
    std::span<const CrosspointRequest> requests, const arb::LrgArbiter& lrg,
    ArbitrationTrace& trace) const {
  SSQ_EXPECT(!requests.empty());
  SSQ_EXPECT(lrg.radix() == layout_.radix);
  SSQ_EXPECT(trace.bitlines.width() == layout_.bus_width);
  std::uint64_t seen = 0;
  for (const auto& r : requests) {
    SSQ_EXPECT(r.input < layout_.radix);
    SSQ_EXPECT(((seen >> r.input) & 1ULL) == 0);
    seen |= 1ULL << r.input;
    SSQ_EXPECT(r.kind != RequestKind::None);
    if (r.kind == RequestKind::Gb) SSQ_EXPECT(r.level < layout_.gb_lanes);
  }

  trace.winner = kNoPort;
  trace.bitlines.clear_all();
  trace.sensed_wire.clear();
  trace.sensed_charged.clear();

  // Phase 1+2 — precharge then wired-OR discharge. `bitlines` records
  // discharges; a clear bit is a still-charged wire. A stuck-at-0 wire
  // behaves as if some crosspoint always discharged it.
  if (any_stuck_) trace.bitlines |= stuck_low_;
  for (const auto& r : requests) {
    core::ThermometerCode code(layout_.gb_lanes, r.level);
    discharge_into(trace.bitlines, layout_, r.kind, code, lrg.row(r.input));
  }

  // Phase 3 — sense. A stuck-at-1 wire reads charged no matter what was
  // driven onto it.
  trace.sensed_wire.reserve(requests.size());
  trace.sensed_charged.reserve(requests.size());
  std::uint32_t winners = 0;
  for (const auto& r : requests) {
    core::ThermometerCode code(layout_.gb_lanes, r.level);
    const std::uint32_t wire = sense_wire(layout_, r.kind, code, r.input);
    const bool charged =
        any_stuck_ ? (stuck_high_.get(wire) || !trace.bitlines.get(wire))
                   : !trace.bitlines.get(wire);
    trace.sensed_wire.push_back(wire);
    trace.sensed_charged.push_back(charged);
    if (charged) {
      trace.winner = r.input;
      ++winners;
    }
  }
  if (!any_stuck_) {
    SSQ_ENSURE(winners == 1 && "inhibit arbitration must leave exactly one "
                               "charged sense wire");
  } else if (winners > 1) {
    // Multi-claim from a stuck-at-1 wire: the grant encoder's wired priority
    // resolves to the lowest claiming input index.
    InputId best = kNoPort;
    for (std::size_t k = 0; k < requests.size(); ++k) {
      if (trace.sensed_charged[k] && requests[k].input < best) {
        best = requests[k].input;
      }
    }
    trace.winner = best;
  } else if (winners == 0) {
    // Every claimant lost to a stuck-at-0 wire: no grant this cycle.
    trace.winner = kNoPort;
  }
}

InputId reference_decision(std::span<const CrosspointRequest> requests,
                           const arb::LrgArbiter& lrg,
                           const LaneLayout& layout) {
  SSQ_EXPECT(!requests.empty());

  auto lrg_best = [&](RequestKind kind, std::uint32_t level,
                      bool use_level) -> InputId {
    InputId best = kNoPort;
    for (const auto& r : requests) {
      if (r.kind != kind) continue;
      if (use_level && r.level != level) continue;
      if (best == kNoPort || lrg.beats(r.input, best)) best = r.input;
    }
    return best;
  };

  // GL beats all.
  if (InputId w = lrg_best(RequestKind::Gl, 0, false); w != kNoPort) return w;

  // GB: smallest level, LRG tie-break.
  std::uint32_t min_level = layout.gb_lanes;
  for (const auto& r : requests) {
    if (r.kind == RequestKind::Gb && r.level < min_level) min_level = r.level;
  }
  if (min_level < layout.gb_lanes) {
    return lrg_best(RequestKind::Gb, min_level, true);
  }

  // BE only.
  return lrg_best(RequestKind::BestEffort, 0, false);
}

}  // namespace ssq::circuit
