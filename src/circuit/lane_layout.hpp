// Lane layout of the output bus (paper §3.1/§3.2/§4.4).
//
// "A lane has exactly the number of bitlines required to perform LRG
// arbitration; usually equal to the number of inputs" — so
// num_lanes = bus_width / radix (Eq. in §4.4). Lanes are assigned, low to
// high: GB thermometer levels first (lane index == level; lane 0 is the
// highest priority / smallest auxVC), then the GL lane (Fig. 3), then the BE
// lane. "To support all three classes, at least three lanes are needed."
// Fig. 4's GB-only experiment uses all 16 lanes of a 128-bit/radix-8 bus as
// GB levels ("4 significant bits of auxVC").
//
// Wire addressing: input N in lane i senses / is inhibited on bitline
// i*radix + N (Fig. 1: for N=2 on a 64-bit radix-8 bus, the sense amp can
// sense wires 2, 10, 18, 26, 34, 42, 50, 58).
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::circuit {

struct LaneLayout {
  std::uint32_t radix = 8;
  std::uint32_t bus_width = 128;
  /// Number of lanes carrying GB thermometer levels. Power of two (the level
  /// is taken from auxVC MSBs).
  std::uint32_t gb_lanes = 8;
  bool has_gl_lane = false;
  bool has_be_lane = false;

  [[nodiscard]] constexpr std::uint32_t num_lanes() const noexcept {
    return bus_width / radix;
  }
  [[nodiscard]] constexpr std::uint32_t lanes_used() const noexcept {
    return gb_lanes + (has_gl_lane ? 1u : 0u) + (has_be_lane ? 1u : 0u);
  }
  [[nodiscard]] constexpr std::uint32_t gl_lane() const noexcept {
    return gb_lanes;  // valid only if has_gl_lane
  }
  [[nodiscard]] constexpr std::uint32_t be_lane() const noexcept {
    return gb_lanes + (has_gl_lane ? 1u : 0u);  // valid only if has_be_lane
  }

  /// Bitline index of input `n` in lane `lane`.
  [[nodiscard]] constexpr std::uint32_t wire(std::uint32_t lane,
                                             InputId n) const noexcept {
    return lane * radix + n;
  }

  /// Bits of auxVC MSB exposed by this layout (log2 of gb_lanes).
  [[nodiscard]] std::uint32_t level_bits() const noexcept {
    std::uint32_t b = 0;
    while ((1u << b) < gb_lanes) ++b;
    return b;
  }

  void validate() const {
    SSQ_EXPECT(radix >= 2 && radix <= 64);
    SSQ_EXPECT(bus_width % radix == 0);
    SSQ_EXPECT(gb_lanes >= 1);
    SSQ_EXPECT((gb_lanes & (gb_lanes - 1)) == 0 && "gb_lanes must be 2^k");
    SSQ_EXPECT(lanes_used() <= num_lanes());
  }
};

}  // namespace ssq::circuit
