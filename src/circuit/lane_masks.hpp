// Packed lane-occupancy masks — the word-parallel view of the bitline lanes.
//
// A set of GB lanes with up to 64 occupants (one bit per input) is stored as
// one uint64 per lane: bit i of lane_masks[m] == input i's thermometer code
// currently encodes level m. Every input sits in exactly one lane, so the
// masks partition the all-inputs mask. The management transforms below are
// the mask-space images of the per-counter updates in core::ThermometerCode
// (shift_down on epoch wrap, halve, reset) applied to every occupant at
// once — O(lanes) word operations instead of O(radix) counter walks.
//
// This header is a dependency-free leaf shared by src/core (the bit-sliced
// arbitration kernel's incremental mirrors) and src/circuit (bitline-level
// models); it must not include anything beyond the standard library.
#pragma once

#include <cstdint>
#include <span>

namespace ssq::circuit {

/// Mask with one bit set per input, for `radix` inputs (radix in [1, 64]).
[[nodiscard]] constexpr std::uint64_t all_inputs_mask(
    std::uint32_t radix) noexcept {
  return radix >= 64 ? ~0ULL : ((1ULL << radix) - 1);
}

/// Epoch wrap: every occupant drops one lane (lane 0 floors). Image of
/// ThermometerCode::shift_down() applied to all inputs.
constexpr void lane_masks_shift_down(std::span<std::uint64_t> lanes) noexcept {
  const std::size_t n = lanes.size();
  if (n <= 1) return;
  lanes[0] |= lanes[1];
  for (std::size_t m = 1; m + 1 < n; ++m) lanes[m] = lanes[m + 1];
  lanes[n - 1] = 0;
}

/// Halve policy: occupants of lanes 2m and 2m+1 merge into lane m. Image of
/// ThermometerCode::halve() (level /= 2) applied to all inputs.
constexpr void lane_masks_halve(std::span<std::uint64_t> lanes) noexcept {
  const std::size_t n = lanes.size();
  for (std::size_t m = 0; 2 * m + 1 < n; ++m) {
    lanes[m] = lanes[2 * m] | lanes[2 * m + 1];
  }
  for (std::size_t m = (n + 1) / 2; m < n; ++m) lanes[m] = 0;
}

/// Reset policy: every occupant returns to lane 0.
constexpr void lane_masks_reset(std::span<std::uint64_t> lanes,
                                std::uint64_t all_inputs) noexcept {
  if (lanes.empty()) return;
  lanes[0] = all_inputs;
  for (std::size_t m = 1; m < lanes.size(); ++m) lanes[m] = 0;
}

}  // namespace ssq::circuit
