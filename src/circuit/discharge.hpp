// Per-crosspoint discharge-decision logic (paper Fig. 1(b) and Fig. 3).
//
// During the arbitration phase every requesting crosspoint decides, for each
// lane, which of that lane's `radix` bitlines it pulls down. The paper's
// cell takes two adjacent thermometer-code bits and produces one of three
// decisions for the lane:
//
//   T_i = 0                 -> discharge ALL bitlines   (my level < lane i:
//                               inhibit every occupant of a worse lane)
//   T_i = 1 and T_{i+1} = 0 -> discharge my LRG row     (lane i is my lane:
//                               inhibit the inputs I beat, tie-break)
//   T_{i+1} = 1             -> discharge NOTHING        (my level > lane i)
//
// with T_{gb_lanes} defined as 0. The GL modification (Fig. 3) ORs in: a GL
// request discharges every bitline of every GB lane ("In the presence of a
// GL request, all bitlines in GB class lanes will be discharged") and plays
// LRG in the GL lane.
//
// The paper does not draw the BE cell; we complete it symmetrically: GB and
// GL requesters discharge the whole BE lane (BE loses to any reserved
// class), BE requesters play LRG in the BE lane and touch nothing else.
#pragma once

#include <cstdint>

#include "circuit/bus_bits.hpp"
#include "circuit/lane_layout.hpp"
#include "core/thermometer.hpp"
#include "sim/types.hpp"

namespace ssq::circuit {

/// What a crosspoint asserts in one arbitration.
enum class RequestKind : std::uint8_t { None = 0, BestEffort, Gb, Gl };

/// One lane's discharge decision as produced by the Fig. 1(b) cell, before
/// mapping onto bus bitlines.
struct LaneDecision {
  /// Low `radix` bits; bit j set == pull down this lane's bitline for
  /// input j.
  std::uint64_t bits = 0;
};

/// The Fig. 1(b) cell for a GB request: decision for lane `lane` given the
/// crosspoint's thermometer code and its LRG row (bit j == "I beat j").
[[nodiscard]] LaneDecision gb_lane_decision(const core::ThermometerCode& code,
                                            std::uint32_t lane,
                                            std::uint64_t lrg_row,
                                            std::uint32_t radix);

/// Full-bus discharge vector for one crosspoint's request, combining the
/// Fig. 1(b) cells for every GB lane, the Fig. 3 GL override, and the BE
/// completion. `lrg_row` is the crosspoint's replicated LRG register.
[[nodiscard]] BusBits discharge_vector(const LaneLayout& layout,
                                       RequestKind kind,
                                       const core::ThermometerCode& code,
                                       std::uint64_t lrg_row);

/// Wired-OR form: ORs the crosspoint's discharge decisions directly into
/// `bus` (the shared bitlines) without materialising a temporary vector —
/// the allocation-free path used by CircuitArbiter::arbitrate_into. `bus`
/// must have width layout.bus_width; `layout` must already be validated.
void discharge_into(BusBits& bus, const LaneLayout& layout, RequestKind kind,
                    const core::ThermometerCode& code, std::uint64_t lrg_row);

/// The bitline this crosspoint's sense amp watches, given its request kind
/// and thermometer level (paper: "The most significant bits of the auxVC
/// counter … select the wire to be sensed by the sense amp").
[[nodiscard]] std::uint32_t sense_wire(const LaneLayout& layout,
                                       RequestKind kind,
                                       const core::ThermometerCode& code,
                                       InputId input);

}  // namespace ssq::circuit
