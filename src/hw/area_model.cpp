#include "hw/area_model.hpp"

#include "sim/contracts.hpp"

namespace ssq::hw {

namespace {

constexpr double kBaseWidth = 128.0;
/// SSVC logic area as a fraction of the 128-bit crosspoint footprint,
/// calibrated to the paper's "+2 % at 128-bit channels".
constexpr double kSsvcLogicFraction = 0.02;

double footprint(double bits) { return bits * bits; }

}  // namespace

double ssvc_area_overhead(std::uint32_t channel_bits) {
  SSQ_EXPECT(channel_bits >= 32);
  const double fp = footprint(static_cast<double>(channel_bits));
  const double logic =
      footprint(kBaseWidth) * (1.0 + kSsvcLogicFraction);  // arb + SSVC
  const double spill = logic - fp;
  return spill > 0.0 ? spill / fp : 0.0;
}

double ssvc_equivalent_channel_bits(std::uint32_t channel_bits) {
  return static_cast<double>(channel_bits) *
         (1.0 + ssvc_area_overhead(channel_bits));
}

}  // namespace ssq::hw
