// SSVC storage cost model — reproduces Table 1.
//
// Two components:
//   * input-port buffering: one BE buffer, one GB buffer per output (the
//     crosspoint queue), one GL buffer — each `buffer_flits` deep at
//     `flit_bytes` per flit;
//   * per-crosspoint QoS state: the auxVC register (level+LSB bits), the
//     thermometer code register (one bit per GB lane), the Vtick register,
//     and the replicated LRG row (radix-1 bits).
//
// Table 1's worst case (radix 64, 512-bit buses, 64-byte flits, 4-flit
// buffers) evaluates to 1,056 KiB of buffering + 45 KiB of crosspoint state
// = 1,101 KiB — the OCR of the paper prints these as "1,56 K", "45 K" and
// "1,11 K" (commas eaten). The per-crosspoint cells are 11 bits (1.375 B,
// printed "1.35"), 8 bits, 8 bits, and 63 bits (7.875 B, printed ".85").
#pragma once

#include <cstdint>

namespace ssq::hw {

struct StorageParams {
  std::uint32_t radix = 64;
  std::uint32_t flit_bytes = 64;        // 512-bit channel
  std::uint32_t be_buffer_flits = 4;
  std::uint32_t gb_buffer_flits = 4;    // per output
  std::uint32_t gl_buffer_flits = 4;
  std::uint32_t aux_vc_bits = 11;       // 3 level + 8 LSB (Table 1)
  std::uint32_t thermometer_bits = 8;   // one per GB lane
  std::uint32_t vtick_bits = 8;
};

struct StorageBreakdown {
  // Per input port, bytes.
  double be_buffer_bytes = 0.0;
  double gb_buffer_bytes = 0.0;  // all outputs
  double gl_buffer_bytes = 0.0;
  double per_input_bytes = 0.0;
  double total_buffering_bytes = 0.0;  // all inputs

  // Per crosspoint, bytes.
  double aux_vc_bytes = 0.0;
  double thermometer_bytes = 0.0;
  double vtick_bytes = 0.0;
  double lrg_bytes = 0.0;
  double per_crosspoint_bytes = 0.0;
  std::uint64_t num_crosspoints = 0;
  double total_crosspoint_bytes = 0.0;

  double total_bytes = 0.0;

  [[nodiscard]] double total_buffering_kib() const {
    return total_buffering_bytes / 1024.0;
  }
  [[nodiscard]] double total_crosspoint_kib() const {
    return total_crosspoint_bytes / 1024.0;
  }
  [[nodiscard]] double total_kib() const { return total_bytes / 1024.0; }
};

[[nodiscard]] StorageBreakdown compute_storage(const StorageParams& p);

}  // namespace ssq::hw
