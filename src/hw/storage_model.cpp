#include "hw/storage_model.hpp"

#include "sim/contracts.hpp"

namespace ssq::hw {

StorageBreakdown compute_storage(const StorageParams& p) {
  SSQ_EXPECT(p.radix >= 2 && p.radix <= 64);
  SSQ_EXPECT(p.flit_bytes >= 1);

  StorageBreakdown b;
  const double flit = static_cast<double>(p.flit_bytes);
  const double radix = static_cast<double>(p.radix);

  b.be_buffer_bytes = p.be_buffer_flits * flit;
  b.gb_buffer_bytes = p.gb_buffer_flits * flit * radix;  // one queue per out
  b.gl_buffer_bytes = p.gl_buffer_flits * flit;
  b.per_input_bytes = b.be_buffer_bytes + b.gb_buffer_bytes + b.gl_buffer_bytes;
  b.total_buffering_bytes = b.per_input_bytes * radix;

  b.aux_vc_bytes = p.aux_vc_bits / 8.0;
  b.thermometer_bytes = p.thermometer_bits / 8.0;
  b.vtick_bytes = p.vtick_bits / 8.0;
  b.lrg_bytes = (p.radix - 1) / 8.0;  // 63 bits at radix 64
  b.per_crosspoint_bytes =
      b.aux_vc_bytes + b.thermometer_bytes + b.vtick_bytes + b.lrg_bytes;
  b.num_crosspoints = static_cast<std::uint64_t>(p.radix) * p.radix;
  b.total_crosspoint_bytes =
      b.per_crosspoint_bytes * static_cast<double>(b.num_crosspoints);

  b.total_bytes = b.total_buffering_bytes + b.total_crosspoint_bytes;
  return b;
}

}  // namespace ssq::hw
