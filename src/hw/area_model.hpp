// SSVC crosspoint area model (paper §4.5).
//
// The Swizzle Switch's arbitration logic sits underneath the crosspoint on a
// separate metal layer; without QoS it "fits within the same area as the
// crosspoint width of a 128-bit channel". The SSVC additions (auxVC
// counters, the Vtick adder, the sense-amp lane multiplexer) need a fixed
// amount of extra logic area. At 128-bit channels that spills past the
// footprint by 2 % ("equivalent to the area of a 131-bit channel"); at
// 256/512-bit the footprint — which grows quadratically with channel width,
// being the intersection of the input and output buses — absorbs it for
// free.
//
// Model: footprint(w) ∝ w²; baseline arbitration logic exactly fills
// footprint(128); SSVC logic adds 2 % of footprint(128) (calibrated to the
// paper's 128-bit figure). Overhead(w) = max(0, logic − footprint(w)) /
// footprint(w).
#pragma once

#include <cstdint>

namespace ssq::hw {

/// Fractional crosspoint area overhead of SSVC at the given channel width
/// (0.02 at 128 bits; 0 at 256/512 bits).
[[nodiscard]] double ssvc_area_overhead(std::uint32_t channel_bits);

/// The channel width whose un-augmented crosspoint has the same area as the
/// SSVC-augmented crosspoint at `channel_bits` (the paper's "131-bit
/// channel" equivalence at 128 bits, using the paper's linear bit-slice
/// equivalence).
[[nodiscard]] double ssvc_equivalent_channel_bits(std::uint32_t channel_bits);

}  // namespace ssq::hw
