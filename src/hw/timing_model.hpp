// SSVC arbitration timing model — regenerates Table 2's structure.
//
// Delay composition:
//   t_SS(r, w)   = t_fixed + k_wire · (r · w)        — the arbitration
//     bitline spans all r crosspoints whose pitch grows with channel width
//     w, so wire RC grows with r·w; t_fixed covers precharge/sense.
//   t_SSVC(r, w) = t_SS + k_mux · lanes^p, lanes = w / r — the critical path
//     is "extended by the multiplexer before the sense amp" (Fig. 2), whose
//     depth grows with the number of selectable lanes.
//
// The constants are solved from the two published anchors (the Table 2 cells
// themselves are corrupted in the available text — see EXPERIMENTS.md):
//   * SS at radix 64 / 128-bit runs at 1.5 GHz [16],
//   * the worst SSVC slowdown is 8.4 % at radix 8 / 256-bit (§4.5),
// with t_fixed = 100 ps and p = 0.6 chosen so the slowdown peaks at the
// 256-bit column for radix 8 as the paper reports. Reproduced shape:
// frequency falls with radix and width; slowdown is largest for small-radix,
// many-lane configurations and bounded by 8.4 %.
#pragma once

#include <cstdint>

namespace ssq::hw {

class TimingModel {
 public:
  /// Constants solved from the published anchors; see file comment.
  TimingModel();

  /// Arbitration-limited cycle time, picoseconds, without QoS.
  [[nodiscard]] double ss_delay_ps(std::uint32_t radix,
                                   std::uint32_t channel_bits) const;
  /// Cycle time with the SSVC lane multiplexer on the critical path.
  [[nodiscard]] double ssvc_delay_ps(std::uint32_t radix,
                                     std::uint32_t channel_bits) const;

  [[nodiscard]] double ss_freq_ghz(std::uint32_t radix,
                                   std::uint32_t channel_bits) const;
  [[nodiscard]] double ssvc_freq_ghz(std::uint32_t radix,
                                     std::uint32_t channel_bits) const;

  /// Fractional frequency slowdown of SSVC vs SS.
  [[nodiscard]] double slowdown(std::uint32_t radix,
                                std::uint32_t channel_bits) const;

 private:
  double t_fixed_ps_;
  double k_wire_ps_per_bit_;
  double k_mux_ps_;
  double mux_exponent_;
};

}  // namespace ssq::hw
