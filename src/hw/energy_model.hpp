// Arbitration energy model (extension).
//
// The Swizzle Switch's headline efficiency comes from reusing the output
// data bus for arbitration [15][16]: the dynamic energy of one arbitration
// is the energy of the bitlines actually discharged. The bit-level circuit
// model (src/circuit) reports exactly how many bitlines each arbitration
// pulls down, so a relative energy comparison between arbitration schemes
// (LRG-only vs SSVC, few vs many lanes) falls out of the reproduction.
//
// Constants: a 128-bit, radix-64 bitline is ~1 pJ-class in 32/45 nm
// literature; we normalise to `kBitlineEnergyPj` per discharged bitline at
// radix 64 and scale linearly with bitline length (= radix crosspoints).
// Absolute numbers are indicative; the benches compare *relative* energy.
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"

namespace ssq::hw {

/// Energy of one arbitration that discharged `discharged_bitlines` wires on
/// a switch of the given radix, in picojoules (relative scale).
[[nodiscard]] inline double arbitration_energy_pj(
    std::uint32_t discharged_bitlines, std::uint32_t radix) {
  SSQ_EXPECT(radix >= 2 && radix <= 64);
  constexpr double kBitlineEnergyPjAtRadix64 = 1.0;
  const double per_bitline =
      kBitlineEnergyPjAtRadix64 * static_cast<double>(radix) / 64.0;
  return per_bitline * static_cast<double>(discharged_bitlines);
}

}  // namespace ssq::hw
