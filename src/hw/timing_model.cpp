#include "hw/timing_model.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace ssq::hw {

namespace {

// Published anchors.
constexpr double kAnchorFreqGhz = 1.5;   // SS, radix 64, 128-bit [16]
constexpr std::uint32_t kAnchorRadix = 64;
constexpr std::uint32_t kAnchorWidth = 128;
constexpr double kWorstSlowdown = 0.084;  // SSVC, radix 8, 256-bit (§4.5)
constexpr std::uint32_t kWorstRadix = 8;
constexpr std::uint32_t kWorstWidth = 256;

}  // namespace

TimingModel::TimingModel()
    : t_fixed_ps_(100.0), mux_exponent_(0.6) {
  // Solve k_wire from the 1.5 GHz anchor: t_fixed + k·(64·128) = 1000/1.5.
  const double anchor_delay = 1000.0 / kAnchorFreqGhz;
  k_wire_ps_per_bit_ = (anchor_delay - t_fixed_ps_) /
                       (static_cast<double>(kAnchorRadix) * kAnchorWidth);
  SSQ_ENSURE(k_wire_ps_per_bit_ > 0.0);

  // Solve k_mux from the worst-slowdown anchor:
  //   t_mux / (t_SS + t_mux) = s  =>  t_mux = t_SS · s / (1 - s).
  const double base =
      t_fixed_ps_ +
      k_wire_ps_per_bit_ * static_cast<double>(kWorstRadix) * kWorstWidth;
  const double t_mux = base * kWorstSlowdown / (1.0 - kWorstSlowdown);
  const double lanes = static_cast<double>(kWorstWidth) / kWorstRadix;
  k_mux_ps_ = t_mux / std::pow(lanes, mux_exponent_);
  SSQ_ENSURE(k_mux_ps_ > 0.0);
}

double TimingModel::ss_delay_ps(std::uint32_t radix,
                                std::uint32_t channel_bits) const {
  SSQ_EXPECT(radix >= 2 && radix <= 64);
  SSQ_EXPECT(channel_bits >= radix);
  return t_fixed_ps_ +
         k_wire_ps_per_bit_ * static_cast<double>(radix) * channel_bits;
}

double TimingModel::ssvc_delay_ps(std::uint32_t radix,
                                  std::uint32_t channel_bits) const {
  const double lanes = static_cast<double>(channel_bits) / radix;
  return ss_delay_ps(radix, channel_bits) +
         k_mux_ps_ * std::pow(lanes, mux_exponent_);
}

double TimingModel::ss_freq_ghz(std::uint32_t radix,
                                std::uint32_t channel_bits) const {
  return 1000.0 / ss_delay_ps(radix, channel_bits);
}

double TimingModel::ssvc_freq_ghz(std::uint32_t radix,
                                  std::uint32_t channel_bits) const {
  return 1000.0 / ssvc_delay_ps(radix, channel_bits);
}

double TimingModel::slowdown(std::uint32_t radix,
                             std::uint32_t channel_bits) const {
  const double ss = ss_delay_ps(radix, channel_bits);
  const double ssvc = ssvc_delay_ps(radix, channel_bits);
  return (ssvc - ss) / ssvc;
}

}  // namespace ssq::hw
