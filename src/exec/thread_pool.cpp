#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "sim/contracts.hpp"

namespace ssq::exec {

// Persistent workers parked on a condition variable. run_indexed() publishes
// a batch under the mutex, wakes everyone, then joins the batch as the
// (threads_)th worker so `threads` counts total active threads. Workers
// claim indices from a shared atomic; the last index consumer signals done.
struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;

  // Batch state, guarded by mu except where atomic.
  std::uint64_t generation = 0;  // bumped per batch
  std::size_t batch_n = 0;
  const std::function<void(std::size_t)>* batch_fn = nullptr;
  const CancelToken* cancel = nullptr;  // optional cooperative stop
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};  // an item threw: skip the rest
  std::size_t active = 0;          // workers still inside the current batch
  bool shutdown = false;

  // First-thrown-by-index exception (serial-equivalent error reporting).
  std::exception_ptr error;
  std::size_t error_index = 0;

  void drain(std::uint64_t gen) {
    // Claim and run items until the batch is exhausted (or aborted, or
    // cancelled — the token is checked before every claim, so no new work
    // starts after it fires; claimed items always run to completion).
    while (!abort.load(std::memory_order_relaxed)) {
      if (cancel != nullptr && cancel->cancelled()) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch_n) break;
      try {
        (*batch_fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (error == nullptr || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
        abort.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    (void)gen;
    if (--active == 0) done_cv.notify_all();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mu);
      work_cv.wait(lock, [&] { return shutdown || generation != seen; });
      if (shutdown) return;
      seen = generation;
      lock.unlock();
      drain(seen);
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  if (threads_ <= 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(threads_ - 1);
  for (unsigned t = 0; t + 1 < threads_; ++t) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

std::size_t ThreadPool::run_indexed(std::size_t n,
                                    const std::function<void(std::size_t)>& fn,
                                    const CancelToken* cancel) {
  if (n == 0) return 0;
  if (impl_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return i;
      fn(i);
    }
    return n;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    SSQ_EXPECT(impl_->active == 0 && "run_indexed is not re-entrant");
    impl_->batch_n = n;
    impl_->batch_fn = &fn;
    impl_->cancel = cancel;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->abort.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->error_index = 0;
    impl_->active = threads_;  // workers + this thread
    gen = ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->drain(gen);  // participate as the last worker
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
  impl_->batch_fn = nullptr;
  impl_->cancel = nullptr;
  if (impl_->error != nullptr) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
  // Items are claimed in index order from the shared counter, so the set of
  // executed indices is exactly [0, min(next, n)) — a clean prefix even
  // when several workers raced the token.
  return std::min(impl_->next.load(std::memory_order_relaxed), n);
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace ssq::exec
