// Fixed thread pool with deterministic, result-ordered batch execution.
//
// Design constraints (see docs/PERFORMANCE.md):
//   * No work stealing, no task graph — the only primitive is "run f(i) for
//     i in [0, n)". Workers pull indices from one atomic counter, so items
//     are claimed in index order and the dispatch overhead is one
//     fetch_add per item.
//   * Determinism: results are stored by index, never in completion order,
//     so run_batch() output is identical at any thread count — the property
//     the fuzz campaign and the sweep benches rely on for byte-exact
//     reproducibility. The callable must itself be pure per index (no
//     shared mutable state); every caller in this repo derives per-item RNG
//     streams from the item index.
//   * threads <= 1 executes inline on the caller's thread: no workers are
//     spawned and behaviour is bit-for-bit the serial loop.
//   * An exception thrown by f(i) is captured; the one from the LOWEST index
//     is rethrown on the calling thread after the batch drains (matching
//     what a serial loop would have thrown first). Remaining items are
//     skipped once an exception is seen.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace ssq::exec {

/// Cooperative cancellation flag for batch execution. cancel() is async-
/// signal-safe (a relaxed store on a lock-free atomic), so a SIGINT/SIGTERM
/// handler can request a prompt stop: workers finish the items they have
/// already claimed but stop claiming new ones. Because items are claimed
/// from an incrementing counter, the completed set is always a prefix
/// [0, completed) of the batch — cancellation never leaves holes.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

class ThreadPool {
 public:
  /// `threads` = total workers used per batch, including the calling thread
  /// doing nothing; 0 and 1 both mean "inline, spawn nothing".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. Must not
  /// be called re-entrantly from inside fn. With a cancel token, workers
  /// stop claiming new indices once it fires; indices already claimed run to
  /// completion. Returns the number of items executed — always n without a
  /// token, and always a prefix length ([0, completed) ran, nothing above
  /// it) with one.
  std::size_t run_indexed(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          const CancelToken* cancel = nullptr);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null when threads_ <= 1 (inline mode)
  unsigned threads_ = 1;
};

/// Runs fn(i) for i in [0, n) on the pool and returns the results in index
/// order. R must be default-constructible and movable. With a cancel token,
/// only the prefix [0, *completed) holds results; the rest are default-
/// constructed (completed == n when the batch was not cancelled).
template <typename R, typename Fn>
std::vector<R> run_batch(ThreadPool& pool, std::size_t n, Fn&& fn,
                         const CancelToken* cancel = nullptr,
                         std::size_t* completed = nullptr) {
  std::vector<R> out(n);
  const std::size_t done =
      pool.run_indexed(n, [&](std::size_t i) { out[i] = fn(i); }, cancel);
  if (completed != nullptr) *completed = done;
  return out;
}

}  // namespace ssq::exec
