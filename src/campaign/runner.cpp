#include "campaign/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "check/scenario.hpp"
#include "sim/atomic_file.hpp"

namespace ssq::campaign {

namespace fs = std::filesystem;

ShardClaim::ShardClaim(ShardClaim&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), shard_(other.shard_) {}

ShardClaim& ShardClaim::operator=(ShardClaim&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
    shard_ = other.shard_;
  }
  return *this;
}

bool ShardClaim::try_claim(const std::string& dir, std::uint64_t k) {
  release();
  const std::string path = lock_path(dir, k);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return false;
  }
  // Advisory breadcrumb for humans poking at the directory; the flock is
  // the actual mutual exclusion and dies with us, so this never goes stale
  // in a way that matters.
  const std::string who = std::to_string(static_cast<long>(::getpid())) + "\n";
  (void)::ftruncate(fd, 0);
  (void)!::write(fd, who.data(), who.size());
  fd_ = fd;
  shard_ = k;
  return true;
}

void ShardClaim::release() {
  if (fd_ >= 0) {
    ::close(fd_);  // drops the flock
    fd_ = -1;
  }
}

std::optional<std::uint64_t> claim_lowest_undone(const std::string& dir,
                                                 const Manifest& m,
                                                 ShardClaim& claim) {
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    if (fs::exists(done_marker_path(dir, k))) continue;
    if (m.shard_begin(k) == m.shard_end(k)) continue;  // empty trailing shard
    if (claim.try_claim(dir, k)) return k;
  }
  return std::nullopt;
}

bool all_shards_done(const std::string& dir, const Manifest& m) {
  return count_done_shards(dir, m) == m.shards;
}

std::uint64_t count_done_shards(const std::string& dir, const Manifest& m) {
  std::uint64_t n = 0;
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    if (m.shard_begin(k) == m.shard_end(k) ||
        fs::exists(done_marker_path(dir, k))) {
      ++n;
    }
  }
  return n;
}

namespace {

/// Writes the quarantined unit's repro next to the checkpoints so a human
/// (or the nightly-CI artifact upload) can replay exactly what poisoned the
/// worker: `ssq_fuzz --replay=poisoned-....scenario`.
void write_poisoned_repro(const std::string& dir, const Manifest& m,
                          std::uint64_t j, const std::string& reason,
                          std::uint32_t attempts) {
  const std::uint64_t g = m.grid_of(j);
  const std::uint64_t i = m.scenario_of(j);
  std::ostringstream body;
  try {
    const check::Scenario s = check::generate_scenario(i, m.base_seed);
    check::write_scenario(body, s);
  } catch (const ConfigError&) {
    body << "# scenario generation itself failed\n";
  }
  body << "# quarantined: reason=" << reason << " attempts=" << attempts
       << " grid=" << m.grid[g].label << " index=" << j << "\n";
  const std::string path = dir + "/poisoned-" + std::to_string(m.base_seed) +
                           "-" + std::to_string(j) + ".scenario";
  (void)write_file_atomic(path, body.str());
}

Record done_record(std::uint64_t j, std::uint32_t attempt,
                   const check::RunResult& res, bool faulted) {
  Record d;
  d.type = Record::Type::Done;
  d.j = j;
  d.attempt = attempt;
  d.verdict = res.failed ? Verdict::Fail : Verdict::Ok;
  d.kind = res.kind;
  d.fail_cycle = res.fail_cycle;
  d.grants = res.grants_checked;
  d.delivered = res.delivered;
  d.violations_gb = res.violations_gb;
  d.violations_gl = res.violations_gl;
  d.violations_be = res.violations_be;
  d.windows = res.windows_checked;
  d.faulted = faulted;
  return d;
}

}  // namespace

ShardOutcome run_shard(const std::string& dir, const Manifest& m,
                       std::uint64_t k, const RunnerHooks& hooks) {
  const std::string path = ckpt_path(dir, k);
  ShardState state = load_checkpoint(path);
  CheckpointWriter journal;
  if (!journal.open(path, state.valid_bytes, hooks.durable)) {
    return ShardOutcome::IoError;
  }

  // Lock-step batching: units are gathered (start records written) and then
  // run together through check::run_scenario_batch. A batch never spans a
  // grid point (the CheckOptions differ) and is flushed before any planted
  // unit fires, so the journal a plant's crash leaves behind matches the
  // serial runner's: every earlier unit has its done record.
  struct PendingUnit {
    std::uint64_t j = 0;
    std::uint32_t attempt = 0;
    std::uint64_t i = 0;           // scenario index (repro regeneration)
    bool faulted = false;
    bool runnable = false;         // false: generation failed, res is final
    check::Scenario scenario;
    check::RunResult res;
  };
  const std::uint32_t width = hooks.batch > 0 ? hooks.batch : 1;
  std::vector<PendingUnit> pending;
  std::vector<check::Scenario> batch_scenarios;
  std::uint64_t batch_g = 0;  // grid point of the gathered batch

  const auto flush = [&]() -> bool {
    if (pending.empty()) return true;
    if (hooks.beat) hooks.beat();
    batch_scenarios.clear();
    for (const PendingUnit& u : pending) {
      if (u.runnable) batch_scenarios.push_back(u.scenario);
    }
    std::vector<check::RunResult> results =
        check::run_scenario_batch(batch_scenarios, m.grid[batch_g].opts);
    std::size_t r = 0;
    for (PendingUnit& u : pending) {
      if (u.runnable) u.res = std::move(results[r++]);
      // A QoS violation in a fault-free monitored scenario is a finding in
      // its own right even when every grant matched the reference.
      if (!u.res.failed && !u.faulted && m.grid[batch_g].opts.monitor &&
          u.res.violations_gb + u.res.violations_gl > 0) {
        u.res.failed = true;
        u.res.kind = "qos_violation";
      }
      if (u.res.failed) {
        // Ship the repro (and incident snapshot when one was recorded)
        // immediately — the journal records the verdict, the files carry
        // the evidence. The campaign keeps running: one divergence must not
        // cost the other 999,999 scenarios of a nightly sweep.
        std::ostringstream body;
        try {
          check::write_scenario(body,
                                check::generate_scenario(u.i, m.base_seed));
          const std::string stem = dir + "/repro-" +
                                   std::to_string(m.base_seed) + "-" +
                                   std::to_string(u.j);
          (void)write_file_atomic(stem + ".scenario", body.str());
          if (!u.res.flight_dump.empty()) {
            (void)write_file_atomic(stem + ".flight.jsonl",
                                    u.res.flight_dump);
          }
        } catch (const ConfigError&) {
          // generation failed above; nothing to serialise
        }
      }
      if (!journal.append(done_record(u.j, u.attempt, u.res, u.faulted))) {
        return false;
      }
      state.units[u.j].done = Record{};  // only is_done() is consulted below
    }
    pending.clear();
    return true;
  };

  for (std::uint64_t j = m.shard_begin(k); j < m.shard_end(k); ++j) {
    if (state.is_done(j)) continue;
    if (hooks.drain && hooks.drain()) {
      // Gathered units already carry start records: finish them (they are
      // started work, not new work), then stop.
      if (!flush()) return ShardOutcome::IoError;
      return ShardOutcome::Drained;
    }
    if (hooks.beat) hooks.beat();

    const std::uint64_t g = m.grid_of(j);
    const std::uint64_t i = m.scenario_of(j);
    const std::uint32_t attempts = state.attempts(j);

    if (!pending.empty() && (g != batch_g || pending.size() >= width)) {
      if (!flush()) return ShardOutcome::IoError;
    }

    if (attempts >= m.max_attempts) {
      // Every allowed attempt started and none finished: this unit wedges
      // or kills whoever runs it. Fence it off and keep going — the
      // campaign completes, the repro ships.
      const Plant* plant = m.planted_at(j);
      const std::string reason =
          plant == nullptr
              ? "unresponsive"  // real poison: it hung or killed the worker
              : (plant->kind == Plant::Kind::Crash ? "crash" : "hang");
      write_poisoned_repro(dir, m, j, reason, attempts);
      Record q;
      q.type = Record::Type::Done;
      q.j = j;
      q.attempt = attempts;
      q.verdict = Verdict::Quarantined;
      q.kind = reason;
      if (!journal.append(q)) return ShardOutcome::IoError;
      continue;
    }

    if (m.planted_at(j) != nullptr && !flush()) return ShardOutcome::IoError;

    Record s;
    s.type = Record::Type::Start;
    s.j = j;
    s.attempt = attempts + 1;
    if (!journal.append(s)) return ShardOutcome::IoError;
    state.units[j].attempts = attempts + 1;

    if (const Plant* plant = m.planted_at(j)) {
      // Robustness teeth (tests/CI only): this unit is poisoned by
      // construction. Wedge silently — no heartbeat — so the watchdog has
      // something real to catch, or die abruptly so the supervisor does.
      if (plant->kind == Plant::Kind::Hang) {
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
      std::abort();
    }
    if (m.throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(m.throttle_ms));
    }

    PendingUnit u;
    u.j = j;
    u.attempt = attempts + 1;
    u.i = i;
    try {
      u.scenario = check::generate_scenario(i, m.base_seed);
      u.scenario.kernel = m.grid[g].kernel;
      u.scenario.fast_forward = m.grid[g].fast_forward;
      if (m.grid[g].engine != arb::MatchKind::None) {
        u.scenario.matching_engine = m.grid[g].engine;
        u.scenario.packet_chaining = false;  // invalid under an engine
      }
      u.faulted = u.scenario.has_faults();
      u.runnable = true;
    } catch (const ConfigError& e) {
      u.res.failed = true;
      u.res.kind = "config_error";
      u.res.detail = e.what();
    }
    if (pending.empty()) batch_g = g;
    pending.push_back(std::move(u));
  }
  if (!flush()) return ShardOutcome::IoError;

  journal.close();
  // The marker is pure acceleration (claim scans skip finished shards
  // without replaying journals); the journal stays the source of truth.
  if (!write_file_atomic(done_marker_path(dir, k), "done\n")) {
    return ShardOutcome::IoError;
  }
  return ShardOutcome::Completed;
}

}  // namespace ssq::campaign
