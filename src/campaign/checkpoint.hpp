// Per-shard checkpoint journals: append-only, checksummed JSONL.
//
// Every work unit a shard runner touches leaves a record here:
//
//   {"t":"s","j":J,"a":A,"crc":C}                   — attempt A started
//   {"t":"d","j":J,"a":A,"v":"ok",...,"crc":C}      — finished, verdict
//
// The journal is the campaign's durability story, so it is designed around
// the failure modes, not the happy path:
//   * Records are appended and fsync'd one at a time; a `kill -9` (or power
//     cut) can therefore lose at most the record being written.
//   * Every record carries a CRC-32 of its own body. A torn tail — half a
//     line, a line with a corrupted byte, garbage after a partial block
//     write — fails the checksum and is discarded back to the last good
//     record (load_checkpoint reports the byte offset to truncate to before
//     appending resumes, so the file never accumulates junk).
//   * A start record without a matching done record is evidence: the
//     process died or wedged inside that unit. Attempts are counted from
//     start records, which is what drives retry-then-quarantine.
//
// Replaying the journal against the manifest re-derives exactly which units
// are done, which failed, and which are poisoned — resume needs no other
// state.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ssq::campaign {

/// CRC-32 (IEEE 802.3, reflected) of `data`. Stable across platforms.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

enum class Verdict : std::uint8_t { Ok, Fail, Quarantined };
[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// One journal record. Start records use only j/attempt; done records carry
/// the verdict and the scenario's telemetry (merged into the final report).
struct Record {
  enum class Type : std::uint8_t { Start, Done };
  Type type = Type::Start;
  std::uint64_t j = 0;        // global work-unit index
  std::uint32_t attempt = 1;  // 1-based
  Verdict verdict = Verdict::Ok;
  std::string kind;  // failure kind / quarantine reason ("hang", "crash")
  std::uint64_t fail_cycle = 0;
  std::uint64_t grants = 0;
  std::uint64_t delivered = 0;
  std::uint64_t violations_gb = 0;
  std::uint64_t violations_gl = 0;
  std::uint64_t violations_be = 0;
  std::uint64_t windows = 0;
  bool faulted = false;

  /// One JSONL line, newline-terminated, with the trailing CRC field.
  [[nodiscard]] std::string encode() const;
};

/// Parses one line (without requiring the trailing newline). Returns
/// nullopt for anything that does not round-trip: wrong shape, bad CRC,
/// truncation.
[[nodiscard]] std::optional<Record> parse_record(std::string_view line);

/// Everything the journal proves about a shard's progress.
struct ShardState {
  struct Unit {
    std::uint32_t attempts = 0;  // start records seen
    std::optional<Record> done;  // first done record wins
  };
  std::map<std::uint64_t, Unit> units;  // by global index j
  /// Byte offset of the end of the last intact record; everything after is
  /// a torn tail to truncate before appending.
  std::uint64_t valid_bytes = 0;
  /// Records dropped by checksum/shape validation (0 on a clean file).
  std::uint64_t corrupt_records = 0;

  [[nodiscard]] bool is_done(std::uint64_t j) const {
    const auto it = units.find(j);
    return it != units.end() && it->second.done.has_value();
  }
  [[nodiscard]] std::uint32_t attempts(std::uint64_t j) const {
    const auto it = units.find(j);
    return it == units.end() ? 0 : it->second.attempts;
  }
};

/// Loads a journal, validating record by record; stops at the first bad
/// record. A missing file is an empty state (fresh shard), not an error.
[[nodiscard]] ShardState load_checkpoint(const std::string& path);

/// Append-side handle. open() truncates a torn tail (as reported by
/// load_checkpoint) so appends always extend a valid prefix, then opens in
/// append mode. Every append is flushed, and fsync'd when `durable`.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Returns false (with the handle closed) on I/O failure.
  bool open(const std::string& path, std::uint64_t truncate_to,
            bool durable = true);
  bool append(const Record& r);
  void close();
  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  bool durable_ = true;
};

/// Campaign-directory layout helpers (shard files are zero-padded so a
/// directory listing sorts in shard order).
[[nodiscard]] std::string ckpt_path(const std::string& dir, std::uint64_t k);
[[nodiscard]] std::string lock_path(const std::string& dir, std::uint64_t k);
[[nodiscard]] std::string done_marker_path(const std::string& dir,
                                           std::uint64_t k);

}  // namespace ssq::campaign
