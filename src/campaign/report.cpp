#include "campaign/report.hpp"

#include <map>

#include "obs/json.hpp"

namespace ssq::campaign {

Report merge_checkpoints(const std::string& dir, const Manifest& m) {
  // Collect the first done-record per unit across shards. Shards partition
  // the unit space, so cross-shard duplicates cannot happen; within a shard
  // load_checkpoint already keeps the first record. Iterating the map gives
  // canonical global-index order regardless of which shard finished when —
  // this, not accumulation-time order, is what makes the report bytes
  // independent of the execution schedule.
  std::map<std::uint64_t, Record> done;
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    const ShardState s = load_checkpoint(ckpt_path(dir, k));
    for (const auto& [j, unit] : s.units) {
      if (unit.done.has_value()) done.emplace(j, *unit.done);
    }
  }

  Report r;
  r.total = m.total_units();
  r.grid.resize(m.grid.size());
  for (std::size_t g = 0; g < m.grid.size(); ++g) {
    r.grid[g].label = m.grid[g].label;
  }
  for (const auto& [j, rec] : done) {
    if (j >= r.total) continue;  // stale journal from a larger manifest
    Report::GridTotals& gt = r.grid[m.grid_of(j)];
    ++r.completed;
    switch (rec.verdict) {
      case Verdict::Ok:
        ++r.ok;
        ++gt.ok;
        break;
      case Verdict::Fail:
        ++r.failed;
        ++gt.failed;
        break;
      case Verdict::Quarantined:
        ++r.quarantined;
        ++gt.quarantined;
        break;
    }
    r.grants += rec.grants;
    r.delivered += rec.delivered;
    r.windows += rec.windows;
    r.violations_gb += rec.violations_gb;
    r.violations_gl += rec.violations_gl;
    r.violations_be += rec.violations_be;
    if (rec.faulted) ++r.faulted;
    gt.grants += rec.grants;
    gt.delivered += rec.delivered;
    if (rec.verdict != Verdict::Ok) {
      Report::Incident inc;
      inc.index = j;
      inc.scenario = m.scenario_of(j);
      inc.grid_label = m.grid[m.grid_of(j)].label;
      inc.kind = rec.kind;
      inc.cycle = rec.fail_cycle;
      (rec.verdict == Verdict::Fail ? r.failures : r.quarantines)
          .push_back(std::move(inc));
    }
  }
  r.skipped = r.total - r.completed;
  // Per-grid skipped: units of that grid point without a done record.
  for (std::size_t g = 0; g < m.grid.size(); ++g) {
    r.grid[g].skipped =
        m.scenarios - (r.grid[g].ok + r.grid[g].failed + r.grid[g].quarantined);
  }
  return r;
}

namespace {

void render_incidents(std::string& out, const char* key,
                      const std::vector<Report::Incident>& list) {
  out += std::string(",\"") + key + "\":[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i) out += ',';
    const Report::Incident& inc = list[i];
    out += "{\"index\":" + std::to_string(inc.index) +
           ",\"grid\":" + obs::json_quote(inc.grid_label) +
           ",\"scenario\":" + std::to_string(inc.scenario) +
           ",\"kind\":" + obs::json_quote(inc.kind) +
           ",\"cycle\":" + std::to_string(inc.cycle) + "}";
  }
  out += "]";
}

}  // namespace

std::string render_report(const Report& r, const Manifest& m) {
  std::string out = "{\"schema\":\"ssq.campaign.v1\"";
  out += ",\"manifest\":{\"base_seed\":" + std::to_string(m.base_seed) +
         ",\"scenarios\":" + std::to_string(m.scenarios) +
         ",\"shards\":" + std::to_string(m.shards) + ",\"grid\":[";
  for (std::size_t g = 0; g < m.grid.size(); ++g) {
    if (g) out += ',';
    out += obs::json_quote(m.grid[g].label);
  }
  out += "]}";
  out += ",\"work\":{\"total\":" + std::to_string(r.total) +
         ",\"completed\":" + std::to_string(r.completed) +
         ",\"ok\":" + std::to_string(r.ok) +
         ",\"failed\":" + std::to_string(r.failed) +
         ",\"quarantined\":" + std::to_string(r.quarantined) +
         ",\"skipped\":" + std::to_string(r.skipped) + "}";
  out += ",\"totals\":{\"grants\":" + std::to_string(r.grants) +
         ",\"delivered\":" + std::to_string(r.delivered) +
         ",\"windows\":" + std::to_string(r.windows) +
         ",\"violations\":{\"gb\":" + std::to_string(r.violations_gb) +
         ",\"gl\":" + std::to_string(r.violations_gl) +
         ",\"be\":" + std::to_string(r.violations_be) +
         "},\"faulted\":" + std::to_string(r.faulted) + "}";
  out += ",\"grid_totals\":[";
  for (std::size_t g = 0; g < r.grid.size(); ++g) {
    if (g) out += ',';
    const Report::GridTotals& gt = r.grid[g];
    out += "{\"grid\":" + obs::json_quote(gt.label) +
           ",\"ok\":" + std::to_string(gt.ok) +
           ",\"failed\":" + std::to_string(gt.failed) +
           ",\"quarantined\":" + std::to_string(gt.quarantined) +
           ",\"skipped\":" + std::to_string(gt.skipped) +
           ",\"grants\":" + std::to_string(gt.grants) +
           ",\"delivered\":" + std::to_string(gt.delivered) + "}";
  }
  out += "]";
  render_incidents(out, "failed", r.failures);
  render_incidents(out, "quarantined", r.quarantines);
  out += std::string(",\"resumable\":") + (r.complete() ? "false" : "true");
  out += "}\n";
  return out;
}

std::string render_execution(const ExecutionStats& e, const Report& r) {
  std::string out = "{\"schema\":\"ssq.campaign.exec.v1\"";
  out += ",\"retried\":" + std::to_string(e.retried);
  out += ",\"worker_restarts\":" + std::to_string(e.worker_restarts);
  out += ",\"watchdog_kills\":" + std::to_string(e.watchdog_kills);
  out += ",\"corrupt_records_discarded\":" + std::to_string(e.corrupt_records);
  out += ",\"workers\":" + std::to_string(e.workers);
  out += ",\"elapsed_s\":" + obs::json_number(e.elapsed_s);
  out += std::string(",\"interrupted\":") + (e.interrupted ? "true" : "false");
  out += std::string(",\"gave_up\":") + (e.gave_up ? "true" : "false");
  out += std::string(",\"resumable\":") + (r.complete() ? "false" : "true");
  out += ",\"completed\":" + std::to_string(r.completed);
  out += ",\"skipped\":" + std::to_string(r.skipped);
  out += "}\n";
  return out;
}

void fold_journal_history(const std::string& dir, const Manifest& m,
                          ExecutionStats& e) {
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    const ShardState s = load_checkpoint(ckpt_path(dir, k));
    e.corrupt_records += s.corrupt_records;
    for (const auto& [j, unit] : s.units) {
      (void)j;
      if (unit.attempts > 1) e.retried += unit.attempts - 1;
    }
  }
}

}  // namespace ssq::campaign
