#include "campaign/service.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "campaign/runner.hpp"
#include "sim/atomic_file.hpp"
#include "sim/error.hpp"

namespace ssq::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

void install_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking waits promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

std::string hb_path(const std::string& dir, unsigned worker_id) {
  return dir + "/worker-" + std::to_string(worker_id) + ".hb";
}

/// True when at least one undone shard could be claimed right now (probed
/// with a momentary flock, immediately released).
bool any_claimable(const std::string& dir, const Manifest& m) {
  ShardClaim probe;
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    if (m.shard_begin(k) == m.shard_end(k)) continue;
    if (fs::exists(done_marker_path(dir, k))) continue;
    if (probe.try_claim(dir, k)) {
      probe.release();
      return true;
    }
  }
  return false;
}

struct Slot {
  pid_t pid = -1;  // -1 = idle
  std::uint64_t restarts = 0;
  Clock::time_point respawn_at{};  // idle: earliest next spawn
  std::string last_beat;
  Clock::time_point last_beat_change{};
};

pid_t spawn_worker(const std::string& exe, const std::string& dir,
                   unsigned worker_id) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or -1 on failure)
#if defined(__linux__)
  // Die with the supervisor: a kill -9 of the service must not leave
  // orphaned workers appending to the journals the next --resume reads.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) _exit(127);  // parent already gone
#endif
  const std::string worker_flag = "--worker=" + dir;
  const std::string id_flag = "--worker-id=" + std::to_string(worker_id);
  char* const argv[] = {const_cast<char*>("ssq_campaign"),
                        const_cast<char*>(worker_flag.c_str()),
                        const_cast<char*>(id_flag.c_str()), nullptr};
  ::execv(exe.c_str(), argv);
  _exit(127);
}

}  // namespace

int run_worker_loop(const std::string& dir, unsigned worker_id) {
  install_handlers();
  const std::string hb = hb_path(dir, worker_id);
  std::uint64_t beats = 0;
  RunnerHooks hooks;
  hooks.beat = [&] {
    // Plain truncate-and-write: the beat is a liveness signal, not data —
    // a torn read just looks like "changed", which is the truth.
    std::ofstream os(hb, std::ios::trunc);
    os << ++beats << "\n";
  };
  hooks.drain = [] { return g_signal != 0; };

  const Manifest m = load_manifest(dir);
  for (;;) {
    if (g_signal != 0) return 0;
    ShardClaim claim;
    const auto k = claim_lowest_undone(dir, m, claim);
    if (!k.has_value()) return 0;  // nothing claimable: let the supervisor decide
    hooks.beat();
    switch (run_shard(dir, m, *k, hooks)) {
      case ShardOutcome::Completed:
      case ShardOutcome::Drained:
        break;
      case ShardOutcome::IoError:
        std::cerr << "ssq_campaign worker " << worker_id
                  << ": journal write failure on shard " << *k << "\n";
        return kExitWorkerError;
    }
  }
}

Report write_reports(const std::string& dir, const Manifest& m,
                     const ExecutionStats& exec) {
  ExecutionStats e = exec;
  fold_journal_history(dir, m, e);
  const Report r = merge_checkpoints(dir, m);
  if (!write_file_atomic(dir + "/report.json", render_report(r, m))) {
    throw ConfigError("campaign: cannot write '" + dir + "/report.json'");
  }
  if (!write_file_atomic(dir + "/execution.json", render_execution(e, r))) {
    throw ConfigError("campaign: cannot write '" + dir + "/execution.json'");
  }
  return r;
}

void print_status(std::ostream& os, const std::string& dir,
                  const Manifest& m) {
  const Report r = merge_checkpoints(dir, m);
  os << "campaign " << dir << ": " << r.completed << "/" << r.total
     << " units done (" << r.ok << " ok, " << r.failed << " failed, "
     << r.quarantined << " quarantined), " << count_done_shards(dir, m) << "/"
     << m.shards << " shards complete\n";
  for (std::uint64_t k = 0; k < m.shards; ++k) {
    const std::uint64_t b = m.shard_begin(k);
    const std::uint64_t e = m.shard_end(k);
    if (b == e) continue;
    const ShardState s = load_checkpoint(ckpt_path(dir, k));
    std::uint64_t done = 0;
    for (std::uint64_t j = b; j < e; ++j) {
      if (s.is_done(j)) ++done;
    }
    os << "  shard " << k << ": " << done << "/" << (e - b)
       << (fs::exists(done_marker_path(dir, k)) ? " [done]" : "")
       << (s.corrupt_records ? " [torn tail discarded]" : "") << "\n";
  }
}

int supervise(const std::string& dir, const Manifest& m,
              const ServiceOptions& opts) {
  install_handlers();
  const auto t0 = Clock::now();
  const unsigned workers = opts.workers == 0 ? 1 : opts.workers;
  std::vector<Slot> slots(workers);
  ExecutionStats exec;
  exec.workers = workers;

  auto log = [&](const std::string& line) {
    if (!opts.quiet) std::cout << line << "\n" << std::flush;
  };

  auto backoff = [&](const Slot& s) {
    std::uint64_t ms = opts.backoff_base_ms;
    for (std::uint64_t i = 0; i < s.restarts && ms < opts.backoff_cap_ms; ++i) {
      ms *= 2;
    }
    return std::chrono::milliseconds(std::min(ms, opts.backoff_cap_ms));
  };

  auto spawn = [&](unsigned slot_id) {
    Slot& s = slots[slot_id];
    s.pid = spawn_worker(opts.exe_path, dir, slot_id);
    if (s.pid < 0) {
      throw ConfigError("campaign: fork failed: " +
                        std::string(std::strerror(errno)));
    }
    s.last_beat.clear();
    s.last_beat_change = Clock::now();
  };

  auto terminate_all = [&](int sig) {
    for (Slot& s : slots) {
      if (s.pid > 0) ::kill(s.pid, sig);
    }
  };

  auto reap_all_blocking = [&](std::chrono::milliseconds grace) {
    const auto deadline = Clock::now() + grace;
    for (;;) {
      bool alive = false;
      for (Slot& s : slots) {
        if (s.pid <= 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
        if (r == s.pid) {
          s.pid = -1;
        } else {
          alive = true;
        }
      }
      if (!alive) return;
      if (Clock::now() >= deadline) {
        terminate_all(SIGKILL);
        grace = std::chrono::milliseconds(5000);  // always converges
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };

  for (unsigned w = 0; w < workers; ++w) spawn(w);
  log("campaign: " + std::to_string(m.total_units()) + " work units in " +
      std::to_string(m.shards) + " shards, " + std::to_string(workers) +
      " worker(s)");

  bool drained = false;
  bool gave_up = false;
  while (!all_shards_done(dir, m)) {
    if (g_signal != 0) {
      log("campaign: signal received, draining (workers finish their "
          "in-flight scenario)...");
      terminate_all(SIGTERM);
      reap_all_blocking(std::chrono::milliseconds(
          std::max<std::uint64_t>(2 * m.scenario_timeout_ms, 10000)));
      drained = true;
      break;
    }

    // Reap exits.
    for (unsigned w = 0; w < workers; ++w) {
      Slot& s = slots[w];
      if (s.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r != s.pid) continue;
      s.pid = -1;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean) {
        s.respawn_at = Clock::now() + std::chrono::milliseconds(200);
        continue;
      }
      ++exec.worker_restarts;
      ++s.restarts;
      if (exec.worker_restarts > opts.max_restarts) {
        log("campaign: restart budget exhausted (" +
            std::to_string(opts.max_restarts) + "); giving up");
        gave_up = true;
        break;
      }
      std::ostringstream why;
      if (WIFSIGNALED(status)) {
        why << "killed by signal " << WTERMSIG(status);
      } else {
        why << "exit code " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      }
      const auto delay = backoff(s);
      log("campaign: worker " + std::to_string(w) + " " + why.str() +
          "; restart " + std::to_string(s.restarts) + " in " +
          std::to_string(delay.count()) + "ms");
      s.respawn_at = Clock::now() + delay;
    }
    if (gave_up) {
      terminate_all(SIGTERM);
      reap_all_blocking(std::chrono::milliseconds(10000));
      break;
    }

    // Watchdog: a live worker whose heartbeat has not changed within the
    // scenario timeout is wedged (a hung scenario never beats again).
    for (unsigned w = 0; w < workers; ++w) {
      Slot& s = slots[w];
      if (s.pid <= 0) continue;
      std::string beat;
      {
        std::ifstream is(hb_path(dir, w));
        std::getline(is, beat);
      }
      const auto now = Clock::now();
      if (beat != s.last_beat) {
        s.last_beat = beat;
        s.last_beat_change = now;
      } else if (now - s.last_beat_change >
                 std::chrono::milliseconds(m.scenario_timeout_ms)) {
        ++exec.watchdog_kills;
        log("campaign: worker " + std::to_string(w) +
            " heartbeat silent for > " +
            std::to_string(m.scenario_timeout_ms) +
            "ms; killing wedged worker");
        ::kill(s.pid, SIGKILL);
        s.last_beat_change = now;  // the reap above handles the restart
      }
    }

    // Respawn idle slots while claimable work remains. (Clean exits mean
    // "nothing claimable from where I stood" — which changes when another
    // worker dies holding a shard.)
    for (unsigned w = 0; w < workers; ++w) {
      Slot& s = slots[w];
      if (s.pid > 0 || Clock::now() < s.respawn_at) continue;
      if (!any_claimable(dir, m)) break;
      spawn(w);
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (!drained && !gave_up) {
    // Shards are all done; workers exit by themselves, but hurry them up.
    terminate_all(SIGTERM);
    reap_all_blocking(std::chrono::milliseconds(10000));
  }

  exec.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  exec.interrupted = drained;
  exec.gave_up = gave_up;
  const Report r = write_reports(dir, m, exec);
  fold_journal_history(dir, m, exec);  // summary shows journal-proven retries

  std::ostringstream sum;
  sum << "campaign " << (r.complete() ? "complete" : "interrupted") << ": "
      << r.completed << "/" << r.total << " units (" << r.ok << " ok, "
      << r.failed << " failed, " << r.quarantined << " quarantined, "
      << r.skipped << " skipped), " << r.grants << " grants checked, "
      << exec.retried << " retried, " << exec.worker_restarts
      << " worker restarts, " << exec.watchdog_kills << " watchdog kills";
  log(sum.str());
  if (!r.complete()) {
    log("resume with: ssq_campaign --resume=" + dir);
    return kExitResumable;
  }
  log("report written to " + dir + "/report.json");
  return r.failed == 0 ? kExitOk : kExitFailures;
}

}  // namespace ssq::campaign
