#include "campaign/manifest.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "sim/atomic_file.hpp"
#include "sim/error.hpp"

namespace ssq::campaign {

namespace fs = std::filesystem;

GridPoint parse_grid_point(const std::string& label) {
  GridPoint p;
  p.label = label;
  std::stringstream ss(label);
  std::string tok;
  if (label.empty()) throw ConfigError("empty grid label");
  while (std::getline(ss, tok, '+')) {
    if (tok == "default") {
      // no-op: the plain differential configuration
    } else if (tok == "monitor") {
      p.opts.monitor = true;
      p.opts.flight_recorder = 256;
    } else if (tok == "no-circuit") {
      p.opts.circuit = false;
    } else if (tok == "no-state") {
      p.opts.state_compare = false;
    } else if (tok == "scalar") {
      p.kernel = core::ArbKernel::Scalar;
    } else if (tok == "simd") {
      p.kernel = core::ArbKernel::Simd;
    } else if (tok == "noff") {
      p.fast_forward = false;
    } else if (tok.rfind("engine=", 0) == 0) {
      // Overrides every scenario's matching engine: the sweep then exercises
      // that engine's invariants-only checking across the whole corpus.
      p.engine = arb::parse_match_kind(tok.substr(7));
    } else {
      throw ConfigError("unknown grid token '" + tok + "' in '" + label +
                        "' (expected default, monitor, no-circuit, no-state, "
                        "scalar, simd, noff or engine=<name>, joined with "
                        "'+')");
    }
  }
  return p;
}

std::uint64_t Manifest::shard_begin(std::uint64_t k) const noexcept {
  // Adaptive tail sizing: the last quarter of the shards carry half the
  // units of the rest (weight 1 vs 2), so a campaign ends on small shards —
  // parallel workers converge instead of one worker holding a final
  // full-size shard while the others idle. Realised by proportional weight
  // prefixes, which partitions [0, total) exactly for any shard count:
  // begin(0) == 0, begin(shards) == total, and begins are non-decreasing
  // because the weight prefix is.
  const std::uint64_t total = total_units();
  if (k >= shards) return total;
  const std::uint64_t tail = shards / 4;  // 0 for tiny shard counts
  const std::uint64_t head = shards - tail;
  const std::uint64_t weight_sum = 2 * head + tail;
  const std::uint64_t prefix = 2 * std::min(k, head) + (k > head ? k - head : 0);
  // 128-bit intermediate: total * prefix can exceed 64 bits on huge sweeps.
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(total) * prefix /
                                    weight_sum);
}

std::uint64_t Manifest::shard_end(std::uint64_t k) const noexcept {
  return shard_begin(k + 1);
}

const Plant* Manifest::planted_at(std::uint64_t j) const noexcept {
  for (const Plant& p : planted) {
    if (p.index == j) return &p;
  }
  return nullptr;
}

void Manifest::validate() const {
  detail::config_check(scenarios > 0, "campaign: scenarios must be positive");
  detail::config_check(shards > 0, "campaign: shards must be positive");
  detail::config_check(shards <= 100000, "campaign: shards too large (max 100000)");
  detail::config_check(!grid.empty(), "campaign: grid must not be empty");
  detail::config_check(max_attempts > 0,
                       "campaign: max-attempts must be positive");
  detail::config_check(scenario_timeout_ms >= 100,
                       "campaign: scenario-timeout-ms must be >= 100");
  for (const GridPoint& g : grid) {
    (void)parse_grid_point(g.label);  // label must round-trip
  }
  for (const Plant& p : planted) {
    detail::config_check(p.index < total_units(),
                         "campaign: planted index out of range");
  }
}

std::string Manifest::serialize() const {
  std::string out = "{\"schema\":\"ssq.campaign.manifest.v1\"";
  out += ",\"base_seed\":" + std::to_string(base_seed);
  out += ",\"scenarios\":" + std::to_string(scenarios);
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"grid\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i) out += ',';
    out += obs::json_quote(grid[i].label);
  }
  out += "],\"max_attempts\":" + std::to_string(max_attempts);
  out += ",\"scenario_timeout_ms\":" + std::to_string(scenario_timeout_ms);
  out += ",\"throttle_ms\":" + std::to_string(throttle_ms);
  out += ",\"planted\":[";
  for (std::size_t i = 0; i < planted.size(); ++i) {
    if (i) out += ',';
    out += std::string("{\"kind\":\"") +
           (planted[i].kind == Plant::Kind::Hang ? "hang" : "crash") +
           "\",\"index\":" + std::to_string(planted[i].index) + "}";
  }
  out += "]}\n";
  return out;
}

namespace {

/// Extracts the integer value of `"key":N` from our own serialised form.
std::uint64_t find_u64(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) {
    throw ConfigError("manifest: missing field '" + key + "'");
  }
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(start, &end, 10);
  if (end == start) {
    throw ConfigError("manifest: field '" + key + "' is not an integer");
  }
  return v;
}

/// Extracts the `"key":[...]` array body (between the brackets).
std::string find_array(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) {
    throw ConfigError("manifest: missing field '" + key + "'");
  }
  const std::size_t open = at + needle.size();
  const std::size_t close = text.find(']', open);
  if (close == std::string::npos) {
    throw ConfigError("manifest: unterminated array '" + key + "'");
  }
  return text.substr(open, close - open);
}

}  // namespace

Manifest parse_manifest(const std::string& text) {
  if (text.find("\"schema\":\"ssq.campaign.manifest.v1\"") ==
      std::string::npos) {
    throw ConfigError("manifest: missing or unknown schema "
                      "(expected ssq.campaign.manifest.v1)");
  }
  Manifest m;
  m.base_seed = find_u64(text, "base_seed");
  m.scenarios = find_u64(text, "scenarios");
  m.shards = find_u64(text, "shards");
  m.max_attempts = static_cast<std::uint32_t>(find_u64(text, "max_attempts"));
  m.scenario_timeout_ms = find_u64(text, "scenario_timeout_ms");
  m.throttle_ms = find_u64(text, "throttle_ms");
  m.grid.clear();
  const std::string grid = find_array(text, "grid");
  std::size_t pos = 0;
  while ((pos = grid.find('"', pos)) != std::string::npos) {
    const std::size_t end = grid.find('"', pos + 1);
    if (end == std::string::npos) {
      throw ConfigError("manifest: unterminated grid label");
    }
    m.grid.push_back(parse_grid_point(grid.substr(pos + 1, end - pos - 1)));
    pos = end + 1;
  }
  const std::string planted = find_array(text, "planted");
  pos = 0;
  while ((pos = planted.find("{\"kind\":\"", pos)) != std::string::npos) {
    const std::size_t k0 = pos + 9;
    const std::size_t k1 = planted.find('"', k0);
    if (k1 == std::string::npos) {
      throw ConfigError("manifest: unterminated planted kind");
    }
    const std::string kind = planted.substr(k0, k1 - k0);
    Plant p;
    if (kind == "hang") {
      p.kind = Plant::Kind::Hang;
    } else if (kind == "crash") {
      p.kind = Plant::Kind::Crash;
    } else {
      throw ConfigError("manifest: unknown planted kind '" + kind + "'");
    }
    const std::string idx_key = "\"index\":";
    const std::size_t i0 = planted.find(idx_key, k1);
    if (i0 == std::string::npos) {
      throw ConfigError("manifest: planted entry missing index");
    }
    p.index = std::strtoull(planted.c_str() + i0 + idx_key.size(), nullptr, 10);
    m.planted.push_back(p);
    pos = k1 + 1;
  }
  m.validate();
  return m;
}

Manifest load_manifest(const std::string& dir) {
  const fs::path path = fs::path(dir) / "manifest.json";
  std::ifstream is(path);
  if (!is) {
    throw ConfigError("campaign: cannot open '" + path.string() +
                      "' — not a campaign directory? (create one with --new)");
  }
  std::stringstream buf;
  buf << is.rdbuf();
  return parse_manifest(buf.str());
}

void init_campaign_dir(const std::string& dir, const Manifest& m) {
  m.validate();
  const fs::path root(dir);
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    throw ConfigError("campaign: cannot create directory '" + dir +
                      "': " + ec.message());
  }
  const fs::path path = root / "manifest.json";
  if (fs::exists(path)) {
    throw ConfigError("campaign: '" + path.string() +
                      "' already exists (resume it with --resume, or pick a "
                      "fresh directory)");
  }
  if (!write_file_atomic(path.string(), m.serialize())) {
    throw ConfigError("campaign: cannot write '" + path.string() + "'");
  }
}

}  // namespace ssq::campaign
