// Shard runner: claims shards and executes their work units, journaling
// every step, under a drain flag and a heartbeat.
//
// Claiming uses flock(2) on a per-shard lock file: the lock dies with the
// process (kill -9 included), so there are no stale locks to garbage-collect
// and any number of cooperating workers — in one supervisor, several
// supervisors, or several hosts sharing the campaign directory — can race
// claims safely. Workers always claim the lowest undone unclaimed shard, so
// progress concentrates at the front of the unit space and a `--status`
// glance tells you how far the campaign is.
//
// Per unit, in order within the claimed shard:
//   1. done in the journal? skip (this is what makes resume cheap);
//   2. attempts exhausted? quarantine: write poisoned-*.scenario (atomic
//      rename) and a quarantined done-record, and move on — a poisoned
//      input costs one repro file, never the campaign;
//   3. otherwise journal a start record, run the scenario under the
//      differential checker, journal the done record. A crash or watchdog
//      kill between start and done leaves exactly the evidence the next
//      attempt needs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/manifest.hpp"

namespace ssq::campaign {

/// Hooks the runner calls on the way; all optional.
struct RunnerHooks {
  /// Invoked immediately before each unit starts (the liveness signal the
  /// supervisor's watchdog watches).
  std::function<void()> beat;
  /// Checked between units; true = graceful drain (finish nothing new,
  /// leave the shard claimable and return).
  std::function<bool()> drain;
  /// Overrides manifest.throttle_ms / fsync for in-process callers (bench).
  bool durable = true;
  /// Work units run per lock-step batch (check::run_scenario_batch). A
  /// runtime knob, not manifest identity: verdicts and repro files are
  /// byte-identical at any width. Batches never span a grid point (its
  /// CheckOptions are per-batch) or a planted unit. A crash mid-batch costs
  /// one attempt for at most `batch` started-but-unfinished units, which
  /// resume re-runs. 1 = the serial unit-at-a-time loop.
  std::uint32_t batch = 8;
};

enum class ShardOutcome : std::uint8_t {
  Completed,  // every unit has a done record; .done marker written
  Drained,    // drain() asked us to stop; shard left resumable
  IoError,    // journal write failed; shard left resumable
};

/// Runs shard `k` of the campaign in `dir` end to end. The caller must hold
/// the shard's claim (see ShardClaim below).
[[nodiscard]] ShardOutcome run_shard(const std::string& dir, const Manifest& m,
                                     std::uint64_t k,
                                     const RunnerHooks& hooks = {});

/// flock(2)-held claim on one shard; released on destruction or process
/// death.
class ShardClaim {
 public:
  ShardClaim() = default;
  ~ShardClaim() { release(); }
  ShardClaim(ShardClaim&& other) noexcept;
  ShardClaim& operator=(ShardClaim&& other) noexcept;
  ShardClaim(const ShardClaim&) = delete;
  ShardClaim& operator=(const ShardClaim&) = delete;

  /// Tries to claim shard `k` (non-blocking). False if another process
  /// holds it.
  [[nodiscard]] bool try_claim(const std::string& dir, std::uint64_t k);
  void release();
  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t shard() const noexcept { return shard_; }

 private:
  int fd_ = -1;
  std::uint64_t shard_ = 0;
};

/// Lowest undone, unclaimed shard, claimed; nullopt when every shard is
/// either done or held by someone else right now.
[[nodiscard]] std::optional<std::uint64_t> claim_lowest_undone(
    const std::string& dir, const Manifest& m, ShardClaim& claim);

/// True once every shard has its done marker.
[[nodiscard]] bool all_shards_done(const std::string& dir, const Manifest& m);
[[nodiscard]] std::uint64_t count_done_shards(const std::string& dir,
                                              const Manifest& m);

}  // namespace ssq::campaign
