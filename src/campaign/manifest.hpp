// Campaign manifests: a deterministic description of a sharded differential-
// testing sweep — scenario-generator seed range × a grid of checking
// configurations, split into fixed shards.
//
// The manifest is the campaign's *identity*: everything a worker needs to
// regenerate and check any scenario lives here (the campaign directory adds
// only progress — checkpoints, locks, markers — never definition). It is
// written once at --new via atomic rename and never modified, so any number
// of worker processes (or hosts sharing the directory) agree on the exact
// same work split forever, and `--resume` after a crash or reboot re-derives
// identical work from it. Runtime knobs that do NOT affect results (worker
// count, restart budget) are deliberately not part of the manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arb/matching.hpp"
#include "check/differential.hpp"
#include "core/params.hpp"

namespace ssq::campaign {

/// One checking configuration of the grid, parsed from a label like
/// "default", "monitor", "scalar" or combinations joined with '+'
/// ("monitor+scalar"). The label is the canonical serialised form.
struct GridPoint {
  std::string label = "default";
  check::CheckOptions opts;
  core::ArbKernel kernel = core::ArbKernel::Bitsliced;
  /// Matching engine override (None = keep each scenario's own engine; the
  /// classic differential path). Set by an "engine=<name>" token.
  arb::MatchKind engine = arb::MatchKind::None;
  /// Idle-cycle fast-forward; a "noff" token turns it off so a grid can pit
  /// a fast-forwarded point against its fully-stepped twin (byte-identical
  /// verdicts by construction — the event-horizon regression sweep).
  bool fast_forward = true;
};

/// Parses a grid label; throws ssq::ConfigError on an unknown token.
/// Recognised tokens: default (no-op), monitor, no-circuit, no-state,
/// scalar, simd, noff, engine=<islip|qps|swqps|ssvc>.
[[nodiscard]] GridPoint parse_grid_point(const std::string& label);

/// Test-only planted harness defects: the robustness teeth. A "hang" makes
/// the shard runner wedge forever *before* running that work unit (the
/// watchdog must kill it and the retry budget must quarantine it); a
/// "crash" aborts the worker process (the supervisor must restart it and
/// the checkpoint must carry the finished work across).
struct Plant {
  enum class Kind { Hang, Crash };
  Kind kind = Kind::Hang;
  std::uint64_t index = 0;  // global work-unit index
};

struct Manifest {
  std::uint64_t base_seed = 1;
  std::uint64_t scenarios = 200;  // per grid point
  std::uint64_t shards = 8;
  std::vector<GridPoint> grid{GridPoint{}};
  /// Work-unit attempts before quarantine (a started-but-never-finished
  /// unit — crash or watchdog kill — costs one attempt).
  std::uint32_t max_attempts = 3;
  /// Watchdog: a worker whose heartbeat is silent this long is presumed
  /// wedged, SIGKILLed and restarted. Must exceed the slowest legitimate
  /// scenario by a comfortable margin.
  std::uint64_t scenario_timeout_ms = 30000;
  /// Test/CI pacing: sleep this long before each scenario so an external
  /// kill can be timed to land mid-campaign. 0 in real use.
  std::uint64_t throttle_ms = 0;
  std::vector<Plant> planted;

  /// Global work units: every grid point runs every scenario index.
  [[nodiscard]] std::uint64_t total_units() const noexcept {
    return scenarios * static_cast<std::uint64_t>(grid.size());
  }
  /// Work unit j -> grid point (j / scenarios) and scenario index
  /// (j % scenarios).
  [[nodiscard]] std::uint64_t grid_of(std::uint64_t j) const noexcept {
    return j / scenarios;
  }
  [[nodiscard]] std::uint64_t scenario_of(std::uint64_t j) const noexcept {
    return j % scenarios;
  }
  /// Contiguous shard ranges: shard k covers [begin, end) of the global
  /// unit space; the last shards may be empty when shards > total_units().
  [[nodiscard]] std::uint64_t shard_begin(std::uint64_t k) const noexcept;
  [[nodiscard]] std::uint64_t shard_end(std::uint64_t k) const noexcept;

  [[nodiscard]] const Plant* planted_at(std::uint64_t j) const noexcept;

  /// Cross-field validation; throws ssq::ConfigError.
  void validate() const;

  /// ssq.campaign.manifest.v1 JSON, deterministic byte-for-byte.
  [[nodiscard]] std::string serialize() const;
};

/// Parses serialize() output; throws ssq::ConfigError with context.
[[nodiscard]] Manifest parse_manifest(const std::string& text);

/// Loads `dir`/manifest.json; throws ssq::ConfigError (missing directory or
/// manifest included — the actionable "did you mean --new?" case).
[[nodiscard]] Manifest load_manifest(const std::string& dir);

/// Creates `dir` (must not already contain a manifest) and writes
/// manifest.json atomically; throws ssq::ConfigError.
void init_campaign_dir(const std::string& dir, const Manifest& m);

}  // namespace ssq::campaign
