// Streaming aggregation of shard checkpoints into one campaign report.
//
// Two output files with deliberately different contracts:
//
//   report.json (ssq.campaign.v1) — the *merged result*: a pure function of
//     the manifest and the set of done-records, aggregated in canonical
//     global-index order. It contains no timestamps, paths, attempt counts
//     or anything else that depends on how execution unfolded, so a
//     campaign that was kill -9'd and resumed produces a report
//     byte-identical to an uninterrupted run — that equality is the
//     durability claim, and the crash/resume ctest asserts it with cmp(1).
//
//   execution.json (ssq.campaign.exec.v1) — the *history*: retries, worker
//     restarts, watchdog kills, wall clock, the resumable marker. Useful
//     for operators, explicitly not byte-stable.
//
// Work is never silently lost or double-counted: every unit of
// manifest.total_units() lands in exactly one of ok / failed / quarantined
// / skipped, and `skipped` is nonzero only in a partial (resumable) report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/manifest.hpp"

namespace ssq::campaign {

struct Report {
  std::uint64_t total = 0;
  std::uint64_t completed = 0;  // ok + failed + quarantined
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t skipped = 0;  // total - completed

  std::uint64_t grants = 0;
  std::uint64_t delivered = 0;
  std::uint64_t windows = 0;
  std::uint64_t violations_gb = 0;
  std::uint64_t violations_gl = 0;
  std::uint64_t violations_be = 0;
  std::uint64_t faulted = 0;

  struct GridTotals {
    std::string label;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t skipped = 0;
    std::uint64_t grants = 0;
    std::uint64_t delivered = 0;
  };
  std::vector<GridTotals> grid;

  struct Incident {
    std::uint64_t index = 0;     // global work unit
    std::uint64_t scenario = 0;  // generator index within the grid point
    std::string grid_label;
    std::string kind;  // failure kind or quarantine reason
    std::uint64_t cycle = 0;
  };
  std::vector<Incident> failures;     // by global index
  std::vector<Incident> quarantines;  // by global index

  [[nodiscard]] bool complete() const noexcept { return skipped == 0; }
};

/// Merges the done-records of every shard journal under `dir`. Corrupt
/// journal tails are skipped (they only ever cost not-yet-finished units,
/// which show up as skipped work, never as wrong totals).
[[nodiscard]] Report merge_checkpoints(const std::string& dir,
                                       const Manifest& m);

/// ssq.campaign.v1 — deterministic, see the header comment.
[[nodiscard]] std::string render_report(const Report& r, const Manifest& m);

/// Execution history for execution.json (ssq.campaign.exec.v1).
struct ExecutionStats {
  std::uint64_t retried = 0;  // extra attempts recorded across all units
  std::uint64_t worker_restarts = 0;
  std::uint64_t watchdog_kills = 0;
  std::uint64_t corrupt_records = 0;  // discarded by checksum on load
  double elapsed_s = 0.0;
  unsigned workers = 0;
  bool interrupted = false;  // graceful drain (SIGINT/SIGTERM)
  bool gave_up = false;      // restart budget exhausted
};
[[nodiscard]] std::string render_execution(const ExecutionStats& e,
                                           const Report& r);

/// Counts retries + corrupt records across all shard journals (for
/// ExecutionStats) without touching verdict totals.
void fold_journal_history(const std::string& dir, const Manifest& m,
                          ExecutionStats& e);

}  // namespace ssq::campaign
