// Campaign service: the supervised, crash-safe execution layer.
//
// One supervisor process fork/execs N worker processes (re-invocations of
// the same binary in --worker mode) against a shared campaign directory and
// babysits them:
//   * liveness — each worker beats a heartbeat file before every unit; a
//     worker silent for longer than the manifest's scenario timeout is
//     presumed wedged, SIGKILLed, and restarted (the journal turns the
//     orphaned start-record into a retry, and retries into quarantine);
//   * crashes — a worker that dies (SIGSEGV, abort, OOM-kill) is restarted
//     with exponential per-slot backoff, against a global restart budget so
//     a systematically-poisoned campaign fails loudly instead of looping;
//   * shutdown — SIGINT/SIGTERM drain gracefully: workers finish their
//     in-flight unit, flush the journal, and exit; the supervisor then
//     writes a partial report marked resumable:true;
//   * completion — when every shard carries its done marker, shard journals
//     are merged into report.json (deterministic) + execution.json
//     (history) via atomic rename.
//
// Workers set PR_SET_PDEATHSIG so a kill -9 of the supervisor takes the
// whole tree down — exactly the crash `--resume` is then tested against.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/manifest.hpp"
#include "campaign/report.hpp"

namespace ssq::campaign {

struct ServiceOptions {
  unsigned workers = 1;
  /// Abnormal worker exits tolerated campaign-wide before giving up.
  std::uint64_t max_restarts = 64;
  std::uint64_t backoff_base_ms = 200;
  std::uint64_t backoff_cap_ms = 5000;
  /// Absolute path of this binary, for re-exec'ing workers.
  std::string exe_path;
  bool quiet = false;
};

/// Exit codes shared by the supervisor and the CLI.
inline constexpr int kExitOk = 0;           // complete, no failed scenarios
inline constexpr int kExitFailures = 1;     // complete, >=1 failed verdict
inline constexpr int kExitUsage = 2;        // bad flags / config
inline constexpr int kExitResumable = 3;    // drained or gave up; --resume
inline constexpr int kExitWorkerError = 4;  // internal: worker I/O failure

/// Runs the campaign in `dir` to completion (or drain/give-up) and writes
/// the merged reports. Returns one of the kExit* codes.
int supervise(const std::string& dir, const Manifest& m,
              const ServiceOptions& opts);

/// Worker-mode entry point (internal, spawned by supervise): claims and
/// runs shards until none are claimable or a drain signal arrives.
int run_worker_loop(const std::string& dir, unsigned worker_id);

/// Merges whatever the journals prove and writes report.json +
/// execution.json (both atomic). Returns the merged report.
Report write_reports(const std::string& dir, const Manifest& m,
                     const ExecutionStats& exec);

/// Prints shard-by-shard progress for `dir` (the --status command).
void print_status(std::ostream& os, const std::string& dir, const Manifest& m);

}  // namespace ssq::campaign
