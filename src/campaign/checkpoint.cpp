#include "campaign/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace ssq::campaign {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::Ok: return "ok";
    case Verdict::Fail: return "fail";
    case Verdict::Quarantined: return "quarantined";
  }
  return "?";
}

std::string Record::encode() const {
  std::string body;
  body.reserve(160);
  if (type == Type::Start) {
    body = "{\"t\":\"s\",\"j\":" + std::to_string(j) +
           ",\"a\":" + std::to_string(attempt);
  } else {
    body = "{\"t\":\"d\",\"j\":" + std::to_string(j) +
           ",\"a\":" + std::to_string(attempt) + ",\"v\":\"" +
           to_string(verdict) + "\",\"kind\":\"" + kind +
           "\",\"cycle\":" + std::to_string(fail_cycle) +
           ",\"grants\":" + std::to_string(grants) +
           ",\"delivered\":" + std::to_string(delivered) +
           ",\"gb\":" + std::to_string(violations_gb) +
           ",\"gl\":" + std::to_string(violations_gl) +
           ",\"be\":" + std::to_string(violations_be) +
           ",\"win\":" + std::to_string(windows) +
           ",\"faulted\":" + std::to_string(faulted ? 1 : 0);
  }
  return body + ",\"crc\":" + std::to_string(crc32(body)) + "}\n";
}

namespace {

/// Pulls `"key":<u64>` out of the record body; false when absent/malformed.
bool take_u64(std::string_view body, const char* key, std::uint64_t& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string_view::npos) return false;
  const std::size_t start = at + needle.size();
  if (start >= body.size() ||
      !std::isdigit(static_cast<unsigned char>(body[start]))) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t p = start;
       p < body.size() && std::isdigit(static_cast<unsigned char>(body[p]));
       ++p) {
    v = v * 10 + static_cast<std::uint64_t>(body[p] - '0');
  }
  out = v;
  return true;
}

/// Pulls `"key":"value"` (no escapes — our writer never emits any in these
/// fields, and a record containing them would fail the CRC anyway).
bool take_str(std::string_view body, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string_view::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string_view::npos) return false;
  out.assign(body.substr(start, end - start));
  return true;
}

}  // namespace

std::optional<Record> parse_record(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  // Shape: <body>,"crc":<digits>}
  static constexpr std::string_view kCrc = ",\"crc\":";
  if (line.size() < kCrc.size() + 2 || line.front() != '{' ||
      line.back() != '}') {
    return std::nullopt;
  }
  const std::size_t crc_at = line.rfind(kCrc);
  if (crc_at == std::string_view::npos) return std::nullopt;
  const std::string_view body = line.substr(0, crc_at);
  const std::string_view crc_text =
      line.substr(crc_at + kCrc.size(), line.size() - crc_at - kCrc.size() - 1);
  if (crc_text.empty() || crc_text.size() > 10) return std::nullopt;
  std::uint64_t claimed = 0;
  for (const char c : crc_text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    claimed = claimed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (claimed > 0xFFFFFFFFull || crc32(body) != claimed) return std::nullopt;

  Record r;
  std::string type;
  if (!take_str(body, "t", type)) return std::nullopt;
  std::uint64_t attempt = 0;
  if (!take_u64(body, "j", r.j) || !take_u64(body, "a", attempt)) {
    return std::nullopt;
  }
  r.attempt = static_cast<std::uint32_t>(attempt);
  if (type == "s") {
    r.type = Record::Type::Start;
    return r;
  }
  if (type != "d") return std::nullopt;
  r.type = Record::Type::Done;
  std::string verdict;
  if (!take_str(body, "v", verdict)) return std::nullopt;
  if (verdict == "ok") {
    r.verdict = Verdict::Ok;
  } else if (verdict == "fail") {
    r.verdict = Verdict::Fail;
  } else if (verdict == "quarantined") {
    r.verdict = Verdict::Quarantined;
  } else {
    return std::nullopt;
  }
  take_str(body, "kind", r.kind);
  std::uint64_t faulted = 0;
  if (!take_u64(body, "cycle", r.fail_cycle) ||
      !take_u64(body, "grants", r.grants) ||
      !take_u64(body, "delivered", r.delivered) ||
      !take_u64(body, "gb", r.violations_gb) ||
      !take_u64(body, "gl", r.violations_gl) ||
      !take_u64(body, "be", r.violations_be) ||
      !take_u64(body, "win", r.windows) ||
      !take_u64(body, "faulted", faulted)) {
    return std::nullopt;
  }
  r.faulted = faulted != 0;
  return r;
}

ShardState load_checkpoint(const std::string& path) {
  ShardState state;
  std::ifstream is(path, std::ios::binary);
  if (!is) return state;  // fresh shard
  std::string line;
  std::uint64_t offset = 0;
  while (std::getline(is, line)) {
    const std::uint64_t line_bytes = line.size() + 1;  // + '\n'
    const bool complete = !is.eof();  // getline at EOF without '\n'
    const std::optional<Record> r = parse_record(line);
    if (!r.has_value() || !complete) {
      // Torn or corrupted: everything from here is untrusted. A bad record
      // mid-file (bit rot, concurrent writer bug) also invalidates the tail
      // — records after it may depend on work we can no longer vouch for.
      ++state.corrupt_records;
      break;
    }
    offset += line_bytes;
    ShardState::Unit& u = state.units[r->j];
    if (r->type == Record::Type::Start) {
      u.attempts = std::max(u.attempts, r->attempt);
    } else if (!u.done.has_value()) {
      u.done = *r;
    }
  }
  state.valid_bytes = offset;
  return state;
}

CheckpointWriter::~CheckpointWriter() { close(); }

bool CheckpointWriter::open(const std::string& path, std::uint64_t truncate_to,
                            bool durable) {
  close();
  durable_ = durable;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size > truncate_to) {
    std::filesystem::resize_file(path, truncate_to, ec);
    if (ec) return false;
  }
  file_ = std::fopen(path.c_str(), "ab");
  return file_ != nullptr;
}

bool CheckpointWriter::append(const Record& r) {
  if (file_ == nullptr) return false;
  const std::string line = r.encode();
  bool ok = std::fwrite(line.data(), 1, line.size(), file_) == line.size();
  ok = ok && std::fflush(file_) == 0;
  if (ok && durable_) ok = ::fsync(::fileno(file_)) == 0;
  if (!ok) close();
  return ok;
}

void CheckpointWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {
std::string shard_file(const std::string& dir, std::uint64_t k,
                       const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%05" PRIu64, k);
  return dir + "/" + buf + suffix;
}
}  // namespace

std::string ckpt_path(const std::string& dir, std::uint64_t k) {
  return shard_file(dir, k, ".ckpt.jsonl");
}
std::string lock_path(const std::string& dir, std::uint64_t k) {
  return shard_file(dir, k, ".lock");
}
std::string done_marker_path(const std::string& dir, std::uint64_t k) {
  return shard_file(dir, k, ".done");
}

}  // namespace ssq::campaign
