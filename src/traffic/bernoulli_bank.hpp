// Struct-of-arrays home for the Bernoulli injectors' RNG streams.
//
// A radix-64 switch under Bernoulli load rolls up to 64 independent
// xoshiro256** generators every cycle — over a third of the step budget when
// done one injector at a time. The bank keeps those generators' state words
// in parallel arrays (s0/s1/s2/s3) and advances all of them in one pass per
// cycle through core::simd::xoshiro_batch, which runs 4-wide under AVX2 and
// as a tight portable loop otherwise.
//
// Byte-identity with the scalar path is structural, not approximate:
//   * each slot holds exactly the state the Injector's private Rng held, so
//     the draw sequence per flow is unchanged;
//   * per-flow streams are independent forks of the experiment RNG, so
//     advancing them in bank order instead of flow-loop order is invisible;
//   * within a flow the order (one trial per cycle, then any length draws)
//     is preserved because roll() happens once at the top of the creation
//     pass and draw() pulls from the same slot afterwards;
//   * a slot whose start_cycle has not been reached is not advanced and
//     reports no fire, matching packets_at()'s early return.
//
// Only strict-interior probabilities (0 < p < 1) are banked: the clamped
// cases consume no RNG in Rng::bernoulli and must keep consuming none.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ssq::traffic {

class BernoulliBank {
 public:
  /// Registers one generator. `rng` is the flow's forked stream (its state
  /// is copied in; the caller's copy must not be used afterwards), `thr` is
  /// bernoulli_threshold(p) for a strict-interior p, `start` the flow's
  /// start_cycle. Returns the slot index. All slots must be added before the
  /// first roll().
  std::size_t add(const Rng& rng, std::uint64_t thr, Cycle start);

  /// Advances every started slot one trial and latches its outcome. Call
  /// exactly once per simulated cycle, before reading fire(); `now` must be
  /// non-decreasing across calls.
  void roll(Cycle now);

  /// Outcome of slot's trial at the last roll() (false if not yet started).
  [[nodiscard]] bool fire(std::size_t slot) const {
    SSQ_EXPECT(slot < fire_.size());
    return fire_[slot] != 0;
  }

  /// One scalar draw from the slot's generator — the flow's length-draw
  /// stream, interleaved with its trials exactly as in the private Rng.
  [[nodiscard]] std::uint64_t draw(std::size_t slot);

  [[nodiscard]] std::size_t size() const noexcept { return thr_.size(); }
  [[nodiscard]] bool empty() const noexcept { return thr_.empty(); }

 private:
  // xoshiro256** state, one lane per slot.
  std::vector<std::uint64_t> s0_, s1_, s2_, s3_;
  std::vector<std::uint64_t> thr_;   // bernoulli_threshold, in [1, 2^53]
  std::vector<std::uint64_t> res_;   // raw draws from the last roll()
  std::vector<std::uint8_t> fire_;   // latched trial outcomes
  std::vector<Cycle> start_;         // per-slot first active cycle
  Cycle max_start_ = 0;  // all slots started once now >= this
};

}  // namespace ssq::traffic
