#include "traffic/injector.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace ssq::traffic {

Injector::Injector(const FlowSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  const double mean_len = static_cast<double>(spec_.mean_len());
  switch (spec_.inject) {
    case InjectKind::Bernoulli: {
      const double p_inject = spec_.inject_rate / mean_len;
      SSQ_EXPECT(p_inject <= 1.0 + 1e-12);
      thr_inject_ = bernoulli_threshold(p_inject);
      break;
    }
    case InjectKind::OnOff: {
      // Average rate = peak_rate * duty; duty = on / (on + off).
      const double duty =
          spec_.mean_on_cycles / (spec_.mean_on_cycles + spec_.mean_off_cycles);
      const double peak = spec_.inject_rate / duty;
      double p_inject = peak / mean_len;
      if (p_inject > 1.0) p_inject = 1.0;  // saturated bursts
      thr_inject_ = bernoulli_threshold(p_inject);
      thr_leave_on_ = bernoulli_threshold(1.0 / spec_.mean_on_cycles);
      thr_leave_off_ = bernoulli_threshold(
          spec_.mean_off_cycles > 0.0 ? 1.0 / spec_.mean_off_cycles : 1.0);
      on_ = false;
      break;
    }
    case InjectKind::Periodic: {
      const double ideal = mean_len / spec_.inject_rate;
      period_ = static_cast<Cycle>(std::llround(ideal));
      if (period_ < 1) period_ = 1;
      next_fire_ = spec_.start_cycle;
      break;
    }
    case InjectKind::BurstOnce:
    case InjectKind::Trace:
      break;
  }
}

bool Injector::bind_bank(BernoulliBank& bank) {
  // Only strict-interior Bernoulli flows: the clamped thresholds consume no
  // RNG per cycle and OnOff interleaves two trial streams, so both keep
  // their private generator.
  if (spec_.inject != InjectKind::Bernoulli || thr_inject_ == kBernoulliNever ||
      thr_inject_ == kBernoulliAlways) {
    return false;
  }
  slot_ = bank.add(rng_, thr_inject_, spec_.start_cycle);
  bank_ = &bank;
  return true;
}

Cycle Injector::next_active_cycle(Cycle now) const {
  switch (spec_.inject) {
    case InjectKind::Bernoulli:
    case InjectKind::OnOff:
      // Consumes RNG every cycle from start_cycle on; only the pre-start
      // stretch is skippable (packets_at returns 0 there without drawing).
      return now < spec_.start_cycle ? spec_.start_cycle : now;
    case InjectKind::Periodic:
      return next_fire_ > now ? next_fire_ : now;
    case InjectKind::BurstOnce:
      if (burst_done_) return kNoCycle;
      return spec_.burst_start > now ? spec_.burst_start : now;
    case InjectKind::Trace:
      if (trace_pos_ >= spec_.trace.size()) return kNoCycle;
      return spec_.trace[trace_pos_] > now ? spec_.trace[trace_pos_] : now;
  }
  return now;
}

}  // namespace ssq::traffic
