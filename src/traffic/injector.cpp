#include "traffic/injector.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace ssq::traffic {

Injector::Injector(const FlowSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  const double mean_len = static_cast<double>(spec_.mean_len());
  switch (spec_.inject) {
    case InjectKind::Bernoulli:
      p_inject_ = spec_.inject_rate / mean_len;
      SSQ_EXPECT(p_inject_ <= 1.0 + 1e-12);
      break;
    case InjectKind::OnOff: {
      // Average rate = peak_rate * duty; duty = on / (on + off).
      const double duty =
          spec_.mean_on_cycles / (spec_.mean_on_cycles + spec_.mean_off_cycles);
      const double peak = spec_.inject_rate / duty;
      p_inject_ = peak / mean_len;
      if (p_inject_ > 1.0) p_inject_ = 1.0;  // saturated bursts
      p_leave_on_ = 1.0 / spec_.mean_on_cycles;
      p_leave_off_ =
          spec_.mean_off_cycles > 0.0 ? 1.0 / spec_.mean_off_cycles : 1.0;
      on_ = false;
      break;
    }
    case InjectKind::Periodic: {
      const double ideal = mean_len / spec_.inject_rate;
      period_ = static_cast<Cycle>(std::llround(ideal));
      if (period_ < 1) period_ = 1;
      next_fire_ = spec_.start_cycle;
      break;
    }
    case InjectKind::BurstOnce:
    case InjectKind::Trace:
      break;
  }
}

std::uint32_t Injector::packets_at(Cycle now) {
  if (now < spec_.start_cycle && spec_.inject != InjectKind::BurstOnce &&
      spec_.inject != InjectKind::Trace) {
    return 0;
  }
  std::uint32_t n = 0;
  switch (spec_.inject) {
    case InjectKind::Bernoulli:
      n = rng_.bernoulli(p_inject_) ? 1 : 0;
      break;
    case InjectKind::OnOff:
      if (on_) {
        n = rng_.bernoulli(p_inject_) ? 1 : 0;
        if (rng_.bernoulli(p_leave_on_)) on_ = false;
      } else {
        if (rng_.bernoulli(p_leave_off_)) on_ = true;
      }
      break;
    case InjectKind::Periodic:
      if (now >= next_fire_) {
        n = 1;
        next_fire_ = now + period_;
      }
      break;
    case InjectKind::BurstOnce:
      if (!burst_done_ && now >= spec_.burst_start) {
        n = spec_.burst_packets;
        burst_done_ = true;
      }
      break;
    case InjectKind::Trace:
      while (trace_pos_ < spec_.trace.size() && spec_.trace[trace_pos_] <= now) {
        ++n;
        ++trace_pos_;
      }
      break;
  }
  created_ += n;
  return n;
}

std::uint32_t Injector::draw_length() {
  if (spec_.len_min == spec_.len_max) return spec_.len_min;
  return static_cast<std::uint32_t>(
      rng_.between(spec_.len_min, spec_.len_max));
}

}  // namespace ssq::traffic
