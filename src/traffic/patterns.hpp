// Classic synthetic traffic patterns (the standard NoC evaluation set:
// uniform random, hotspot, transpose, tornado, neighbour), expressed as
// Workload builders over the single crossbar.
//
// Each builder creates one flow per (source, destination) pair the pattern
// uses. For GB variants every flow reserves an equal admissible fraction of
// its destination; BE variants carry no reservations.
#pragma once

#include <cstdint>

#include "traffic/workload.hpp"

namespace ssq::traffic {

enum class Pattern : std::uint8_t {
  /// Every input sends to every other output with equal load.
  UniformRandom = 0,
  /// Every input sends to one output (plus optional background).
  Hotspot,
  /// Permutation: input i sends to output (N-1) - i.
  Transpose,
  /// dst = (i + N/2 - 1) mod N — adversarial for rings, a permutation here.
  Tornado,
  /// dst = (i + 1) mod N.
  Neighbour,
};

[[nodiscard]] const char* pattern_name(Pattern p) noexcept;

struct PatternConfig {
  Pattern pattern = Pattern::UniformRandom;
  std::uint32_t radix = 8;
  /// Offered load per input, flits/cycle, spread across the input's flows.
  double load_per_input = 0.5;
  std::uint32_t packet_len = 8;
  TrafficClass cls = TrafficClass::BestEffort;
  /// Hotspot only: the hot output.
  OutputId hotspot = 0;
};

/// Builds the workload for a pattern. GB variants reserve equal admissible
/// fractions (0.9 of each destination split among its senders).
[[nodiscard]] Workload build_pattern(const PatternConfig& config);

}  // namespace ssq::traffic
