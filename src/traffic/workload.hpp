// Workload: the set of flows offered to a switch, plus per-output GL-class
// reservations, with admission validation and derivation of the per-output
// allocations the QoS arbiters are configured with (paper §3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "sim/types.hpp"
#include "traffic/flow.hpp"

namespace ssq::traffic {

class Workload {
 public:
  explicit Workload(std::uint32_t radix);

  /// Adds a flow and returns its FlowId (dense, in insertion order).
  FlowId add_flow(FlowSpec spec);

  /// Configures the shared GL reservation of output `dst` (§3.3: "the
  /// output reserves a small fraction of bandwidth for any GL packet
  /// injected from any input to that output"). `packet_len` is the nominal
  /// GL packet length used for the GL Vtick.
  void set_gl_reservation(OutputId dst, double rate, std::uint32_t packet_len);

  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }
  [[nodiscard]] const std::vector<FlowSpec>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] const FlowSpec& flow(FlowId id) const;
  [[nodiscard]] std::size_t num_flows() const noexcept { return flows_.size(); }

  /// Configured GL reservation of output `dst` (0 if none).
  [[nodiscard]] double gl_reservation_rate(OutputId dst) const {
    SSQ_EXPECT(dst < radix_);
    return gl_rate_[dst];
  }
  [[nodiscard]] std::uint32_t gl_reservation_packet_len(OutputId dst) const {
    SSQ_EXPECT(dst < radix_);
    return gl_packet_len_[dst];
  }

  /// Per-output allocation implied by this workload's GB flows and GL
  /// reservations. The GB nominal packet length is taken as the largest
  /// mean packet length among that output's GB flows.
  [[nodiscard]] core::OutputAllocation allocation_for(OutputId dst) const;

  /// Validates every flow and every output's admissibility. Throws
  /// ssq::ConfigError on violations — an inadmissible workload would produce
  /// guarantees the hardware could not give.
  void validate() const;

  /// True iff at most one GB flow occupies each (src, dst) crosspoint —
  /// the hardware constraint ("each crosspoint is configured to transmit
  /// packets of one particular flow").
  [[nodiscard]] bool crosspoints_exclusive() const;

 private:
  std::uint32_t radix_;
  std::vector<FlowSpec> flows_;
  std::vector<double> gl_rate_;                 // per output
  std::vector<std::uint32_t> gl_packet_len_;    // per output
};

}  // namespace ssq::traffic
