#include "traffic/workload.hpp"

#include <algorithm>
#include <string>

#include "sim/contracts.hpp"
#include "sim/error.hpp"

namespace ssq::traffic {

Workload::Workload(std::uint32_t radix) : radix_(radix) {
  ssq::detail::config_check(radix >= 1 && radix <= 64,
                            "workload radix out of range [1,64]");
  gl_rate_.assign(radix, 0.0);
  gl_packet_len_.assign(radix, 1);
}

FlowId Workload::add_flow(FlowSpec spec) {
  spec.validate(radix_);
  flows_.push_back(std::move(spec));
  return static_cast<FlowId>(flows_.size() - 1);
}

void Workload::set_gl_reservation(OutputId dst, double rate,
                                  std::uint32_t packet_len) {
  ssq::detail::config_check(dst < radix_,
                            "GL reservation output out of range");
  ssq::detail::config_check(rate >= 0.0 && rate <= 1.0,
                            "GL reserve rate out of range [0,1]");
  ssq::detail::config_check(packet_len >= 1,
                            "GL reserve packet length must be >= 1");
  gl_rate_[dst] = rate;
  gl_packet_len_[dst] = packet_len;
}

const FlowSpec& Workload::flow(FlowId id) const {
  SSQ_EXPECT(id < flows_.size());
  return flows_[id];
}

core::OutputAllocation Workload::allocation_for(OutputId dst) const {
  SSQ_EXPECT(dst < radix_);
  core::OutputAllocation alloc = core::OutputAllocation::none(radix_);
  std::uint32_t gb_len = 1;
  for (const auto& f : flows_) {
    if (f.dst != dst || f.cls != TrafficClass::GuaranteedBandwidth) continue;
    alloc.gb_rate[f.src] += f.reserved_rate;
    gb_len = std::max(gb_len, f.mean_len());
  }
  alloc.gb_packet_len = gb_len;
  alloc.gl_rate = gl_rate_[dst];
  alloc.gl_packet_len = gl_packet_len_[dst];
  return alloc;
}

void Workload::validate() const {
  for (const auto& f : flows_) f.validate(radix_);
  ssq::detail::config_check(
      crosspoints_exclusive(),
      "two GB flows share one (src,dst) crosspoint; each crosspoint carries "
      "one flow");
  for (OutputId o = 0; o < radix_; ++o) {
    const auto alloc = allocation_for(o);
    ssq::detail::config_check(
        alloc.admissible(radix_),
        "output " + std::to_string(o) +
            " over-subscribed: sum of GB rates + GL rate > 1");
  }
}

bool Workload::crosspoints_exclusive() const {
  std::vector<std::uint8_t> gb_count(
      static_cast<std::size_t>(radix_) * radix_, 0);
  for (const auto& f : flows_) {
    if (f.cls != TrafficClass::GuaranteedBandwidth) continue;
    auto& n = gb_count[static_cast<std::size_t>(f.src) * radix_ + f.dst];
    if (n != 0) return false;
    n = 1;
  }
  return true;
}

}  // namespace ssq::traffic
