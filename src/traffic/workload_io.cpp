#include "traffic/workload_io.hpp"

#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/error.hpp"

namespace ssq::traffic {

namespace {

[[noreturn]] void parse_fail(const std::string& name, int line,
                             const std::string& what) {
  throw ssq::ConfigError("workload parse error at " + name + ":" +
                         std::to_string(line) + ": " + what);
}

struct FieldMap {
  std::vector<std::pair<std::string, std::string>> kv;
  const std::string& file;
  int line;

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string require(std::string_view key) const {
    auto v = get(key);
    if (!v) parse_fail(file, line, "missing field '" + std::string(key) + "'");
    return *v;
  }

  [[nodiscard]] double number(std::string_view key, double fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    char* end = nullptr;
    const double x = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      parse_fail(file, line, "field '" + std::string(key) +
                                 "' is not a number: " + *v);
    }
    return x;
  }

  [[nodiscard]] double require_number(std::string_view key) const {
    const std::string raw = require(key);
    (void)raw;
    return number(key, 0.0);
  }
};

FieldMap parse_fields(const std::vector<std::string>& tokens,
                      const std::string& file, int line) {
  FieldMap map{.kv = {}, .file = file, .line = line};
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto eq = tokens[t].find('=');
    if (eq == std::string::npos || eq == 0) {
      parse_fail(file, line, "expected key=value, got '" + tokens[t] + "'");
    }
    map.kv.push_back({tokens[t].substr(0, eq), tokens[t].substr(eq + 1)});
  }
  return map;
}

TrafficClass parse_class(const std::string& s, const std::string& file,
                         int line) {
  if (s == "be") return TrafficClass::BestEffort;
  if (s == "gb") return TrafficClass::GuaranteedBandwidth;
  if (s == "gl") return TrafficClass::GuaranteedLatency;
  parse_fail(file, line, "unknown class '" + s + "' (be|gb|gl)");
}

InjectKind parse_inject(const std::string& s, const std::string& file,
                        int line) {
  if (s == "bernoulli") return InjectKind::Bernoulli;
  if (s == "onoff") return InjectKind::OnOff;
  if (s == "periodic") return InjectKind::Periodic;
  if (s == "burst") return InjectKind::BurstOnce;
  parse_fail(file, line,
             "unknown inject '" + s + "' (bernoulli|onoff|periodic|burst)");
}

const char* class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::BestEffort: return "be";
    case TrafficClass::GuaranteedBandwidth: return "gb";
    case TrafficClass::GuaranteedLatency: return "gl";
  }
  return "?";
}

const char* inject_name(InjectKind k) {
  switch (k) {
    case InjectKind::Bernoulli: return "bernoulli";
    case InjectKind::OnOff: return "onoff";
    case InjectKind::Periodic: return "periodic";
    case InjectKind::BurstOnce: return "burst";
    case InjectKind::Trace: return "trace";
  }
  return "?";
}

}  // namespace

Workload parse_workload(std::istream& in, const std::string& name) {
  std::optional<Workload> workload;
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    for (std::string tok; ls >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;

    if (tokens[0] == "radix") {
      if (tokens.size() != 2) parse_fail(name, line_no, "radix <N>");
      const int radix = std::atoi(tokens[1].c_str());
      if (radix < 2 || radix > 64) {
        parse_fail(name, line_no, "radix out of range [2,64]");
      }
      if (workload) parse_fail(name, line_no, "duplicate radix line");
      workload.emplace(static_cast<std::uint32_t>(radix));
      continue;
    }
    if (!workload) {
      parse_fail(name, line_no, "the first directive must be 'radix <N>'");
    }

    const FieldMap f = parse_fields(tokens, name, line_no);
    if (tokens[0] == "flow") {
      FlowSpec spec;
      spec.src = static_cast<InputId>(f.require_number("src"));
      spec.dst = static_cast<OutputId>(f.require_number("dst"));
      spec.cls = parse_class(f.get("class").value_or("be"), name, line_no);
      spec.reserved_rate = f.number("rate", 0.0);
      const auto len = static_cast<std::uint32_t>(f.number("len", 1.0));
      spec.len_min = static_cast<std::uint32_t>(f.number("len_min", len));
      spec.len_max = static_cast<std::uint32_t>(f.number("len_max", len));
      spec.inject =
          parse_inject(f.get("inject").value_or("bernoulli"), name, line_no);
      spec.inject_rate = f.number("load", 0.0);
      spec.mean_on_cycles = f.number("on", 64.0);
      spec.mean_off_cycles = f.number("off", 64.0);
      spec.burst_start = static_cast<Cycle>(f.number("burst_start", 0.0));
      spec.burst_packets =
          static_cast<std::uint32_t>(f.number("burst_packets", 0.0));
      spec.start_cycle = static_cast<Cycle>(f.number("start", 0.0));
      spec.legacy_priority = static_cast<std::uint32_t>(f.number("prio", 0.0));
      workload->add_flow(spec);
    } else if (tokens[0] == "gl_reservation") {
      workload->set_gl_reservation(
          static_cast<OutputId>(f.require_number("dst")),
          f.require_number("rate"),
          static_cast<std::uint32_t>(f.number("len", 1.0)));
    } else {
      parse_fail(name, line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!workload) parse_fail(name, line_no, "empty workload (no 'radix' line)");
  workload->validate();
  return std::move(*workload);
}

Workload load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ssq::ConfigError("cannot open workload file '" + path + "'");
  }
  return parse_workload(in, path);
}

void write_workload(std::ostream& out, const Workload& workload) {
  out << "radix " << workload.radix() << "\n";
  for (const auto& f : workload.flows()) {
    out << "flow src=" << f.src << " dst=" << f.dst
        << " class=" << class_name(f.cls);
    if (f.cls == TrafficClass::GuaranteedBandwidth) {
      out << " rate=" << f.reserved_rate;
    }
    out << " len_min=" << f.len_min << " len_max=" << f.len_max
        << " inject=" << inject_name(f.inject);
    switch (f.inject) {
      case InjectKind::Bernoulli:
      case InjectKind::Periodic:
        out << " load=" << f.inject_rate;
        break;
      case InjectKind::OnOff:
        out << " load=" << f.inject_rate << " on=" << f.mean_on_cycles
            << " off=" << f.mean_off_cycles;
        break;
      case InjectKind::BurstOnce:
        out << " burst_start=" << f.burst_start
            << " burst_packets=" << f.burst_packets;
        break;
      case InjectKind::Trace:
        break;  // traces are not serialised by the text format
    }
    if (f.start_cycle != 0) out << " start=" << f.start_cycle;
    if (f.legacy_priority != 0) out << " prio=" << f.legacy_priority;
    out << "\n";
  }
  for (OutputId d = 0; d < workload.radix(); ++d) {
    if (workload.gl_reservation_rate(d) > 0.0) {
      out << "gl_reservation dst=" << d
          << " rate=" << workload.gl_reservation_rate(d)
          << " len=" << workload.gl_reservation_packet_len(d) << "\n";
    }
  }
}

}  // namespace ssq::traffic
