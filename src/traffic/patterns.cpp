#include "traffic/patterns.hpp"

#include <vector>

#include "sim/contracts.hpp"

namespace ssq::traffic {

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::UniformRandom: return "uniform";
    case Pattern::Hotspot: return "hotspot";
    case Pattern::Transpose: return "transpose";
    case Pattern::Tornado: return "tornado";
    case Pattern::Neighbour: return "neighbour";
  }
  return "?";
}

Workload build_pattern(const PatternConfig& config) {
  const std::uint32_t n = config.radix;
  SSQ_EXPECT(n >= 2 && n <= 64);
  SSQ_EXPECT(config.load_per_input > 0.0 && config.load_per_input <= 1.0);
  SSQ_EXPECT(config.cls != TrafficClass::GuaranteedLatency &&
             "patterns build BE/GB workloads; GL needs per-output "
             "reservations the pattern cannot choose for you");

  // Destination list per source.
  std::vector<std::vector<OutputId>> dests(n);
  switch (config.pattern) {
    case Pattern::UniformRandom:
      for (InputId i = 0; i < n; ++i) {
        for (OutputId o = 0; o < n; ++o) {
          if (o != i) dests[i].push_back(o);
        }
      }
      break;
    case Pattern::Hotspot:
      for (InputId i = 0; i < n; ++i) {
        if (i != config.hotspot) dests[i].push_back(config.hotspot);
      }
      break;
    case Pattern::Transpose:
      for (InputId i = 0; i < n; ++i) dests[i].push_back(n - 1 - i);
      break;
    case Pattern::Tornado:
      for (InputId i = 0; i < n; ++i) {
        dests[i].push_back((i + n / 2 - (n % 2 == 0 ? 1 : 0)) % n);
      }
      break;
    case Pattern::Neighbour:
      for (InputId i = 0; i < n; ++i) dests[i].push_back((i + 1) % n);
      break;
  }

  // Senders per destination (for GB reservations).
  std::vector<std::uint32_t> senders(n, 0);
  for (InputId i = 0; i < n; ++i) {
    for (OutputId o : dests[i]) ++senders[o];
  }

  Workload w(n);
  for (InputId i = 0; i < n; ++i) {
    if (dests[i].empty()) continue;
    const double per_flow_load =
        config.load_per_input / static_cast<double>(dests[i].size());
    for (OutputId o : dests[i]) {
      FlowSpec f;
      f.src = i;
      f.dst = o;
      f.cls = config.cls;
      if (config.cls == TrafficClass::GuaranteedBandwidth) {
        f.reserved_rate = 0.9 / static_cast<double>(senders[o]);
      }
      f.len_min = f.len_max = config.packet_len;
      f.inject = InjectKind::Bernoulli;
      f.inject_rate = per_flow_load;
      w.add_flow(f);
    }
  }
  w.validate();
  return w;
}

}  // namespace ssq::traffic
