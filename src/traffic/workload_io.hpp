// Plain-text workload description format, so experiments can be run from
// files (tools/ssq_sim) and exchanged without recompiling.
//
// Line-based, `#` comments, whitespace-separated key=value fields:
//
//     # 8-port switch, one GB stream, one BE hog, one GL heartbeat
//     radix 8
//     flow src=0 dst=7 class=gb rate=0.30 len=8 inject=bernoulli load=0.25
//     flow src=1 dst=7 class=be len=8 inject=bernoulli load=0.8
//     flow src=2 dst=7 class=gl len=1 inject=bernoulli load=0.005
//     gl_reservation dst=7 rate=0.05 len=1
//
// Flow fields:
//   src= dst=           port indices (required)
//   class=              be | gb | gl            (default be)
//   rate=               GB reserved fraction    (required for gb)
//   len= / len_min= len_max=   packet length in flits (default 1)
//   inject=             bernoulli | onoff | periodic | burst (default bernoulli)
//   load=               offered flits/cycle (bernoulli/onoff/periodic)
//   on= off=            onoff mean burst/idle cycles
//   burst_start= burst_packets=   burst injection
//   prio=               legacy 4-level message priority (default 0)
//
// Parse errors throw ssq::ConfigError carrying the offending line number —
// a workload silently misread is worse than no workload.
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/workload.hpp"

namespace ssq::traffic {

/// Parses a workload description; throws ssq::ConfigError with file:line
/// context on errors.
[[nodiscard]] Workload parse_workload(std::istream& in,
                                      const std::string& name = "<stream>");

/// Loads a workload from a file path.
[[nodiscard]] Workload load_workload(const std::string& path);

/// Serialises a workload back to the text format (round-trips with
/// parse_workload for every field the format covers).
void write_workload(std::ostream& out, const Workload& workload);

}  // namespace ssq::traffic
