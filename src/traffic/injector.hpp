// Per-flow packet injection processes.
//
// An Injector owns the stochastic state of one flow's source and answers,
// cycle by cycle, how many packets the source creates and how long each one
// is. Determinism: each injector is seeded by forking the experiment RNG.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "traffic/flow.hpp"

namespace ssq::traffic {

class Injector {
 public:
  Injector(const FlowSpec& spec, Rng rng);

  /// Number of packets created at cycle `now`. Cycles must be queried in
  /// non-decreasing order. Most processes yield 0 or 1; BurstOnce yields the
  /// whole burst at its start cycle. (Inline: called once per flow per
  /// simulated cycle — the creation loop is on the step hot path.)
  [[nodiscard]] std::uint32_t packets_at(Cycle now) {
    if (now < spec_.start_cycle && spec_.inject != InjectKind::BurstOnce &&
        spec_.inject != InjectKind::Trace) {
      return 0;
    }
    std::uint32_t n = 0;
    switch (spec_.inject) {
      case InjectKind::Bernoulli:
        n = rng_.bernoulli(p_inject_) ? 1 : 0;
        break;
      case InjectKind::OnOff:
        if (on_) {
          n = rng_.bernoulli(p_inject_) ? 1 : 0;
          if (rng_.bernoulli(p_leave_on_)) on_ = false;
        } else {
          if (rng_.bernoulli(p_leave_off_)) on_ = true;
        }
        break;
      case InjectKind::Periodic:
        if (now >= next_fire_) {
          n = 1;
          next_fire_ = now + period_;
        }
        break;
      case InjectKind::BurstOnce:
        if (!burst_done_ && now >= spec_.burst_start) {
          n = spec_.burst_packets;
          burst_done_ = true;
        }
        break;
      case InjectKind::Trace:
        while (trace_pos_ < spec_.trace.size() &&
               spec_.trace[trace_pos_] <= now) {
          ++n;
          ++trace_pos_;
        }
        break;
    }
    created_ += n;
    return n;
  }

  /// Draws the length (flits) for the next created packet.
  [[nodiscard]] std::uint32_t draw_length() {
    if (spec_.len_min == spec_.len_max) return spec_.len_min;
    return static_cast<std::uint32_t>(
        rng_.between(spec_.len_min, spec_.len_max));
  }

  /// Earliest cycle >= `now` at which this injector may act — create a
  /// packet OR consume RNG state. Idle-cycle fast-forward may skip every
  /// cycle strictly before it without perturbing the injection stream:
  /// packets_at(c) for skipped c would return 0 and draw nothing.
  /// Stochastic kinds (Bernoulli/OnOff) roll their RNG every cycle once
  /// started, so they report max(now, start_cycle); deterministic kinds
  /// report their exact next event; an exhausted source reports kNoCycle.
  [[nodiscard]] Cycle next_active_cycle(Cycle now) const;

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }

  /// Total packets created so far.
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }

 private:
  FlowSpec spec_;
  Rng rng_;
  std::uint64_t created_ = 0;

  // Bernoulli / OnOff.
  double p_inject_ = 0.0;   // per-cycle packet probability while active
  bool on_ = true;          // OnOff state
  double p_leave_on_ = 0.0;
  double p_leave_off_ = 0.0;

  // Periodic.
  Cycle period_ = 0;
  Cycle next_fire_ = 0;

  // Trace.
  std::size_t trace_pos_ = 0;

  bool burst_done_ = false;
};

}  // namespace ssq::traffic
