// Per-flow packet injection processes.
//
// An Injector owns the stochastic state of one flow's source and answers,
// cycle by cycle, how many packets the source creates and how long each one
// is. Determinism: each injector is seeded by forking the experiment RNG.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "traffic/bernoulli_bank.hpp"
#include "traffic/flow.hpp"

namespace ssq::traffic {

class Injector {
 public:
  Injector(const FlowSpec& spec, Rng rng);

  /// Moves this injector's RNG stream into `bank` if eligible (a Bernoulli
  /// flow with strict-interior probability). Afterwards packets_at() reads
  /// the bank's latched per-cycle trial — the caller must bank.roll(now)
  /// once per cycle before the creation pass — and draw_length() pulls from
  /// the bank slot, keeping the flow's draw sequence byte-identical. The
  /// bank pointer must outlive the injector. Returns true if banked.
  bool bind_bank(BernoulliBank& bank);

  /// Number of packets created at cycle `now`. Cycles must be queried in
  /// non-decreasing order. Most processes yield 0 or 1; BurstOnce yields the
  /// whole burst at its start cycle. (Inline: called once per flow per
  /// simulated cycle — the creation loop is on the step hot path.)
  [[nodiscard]] std::uint32_t packets_at(Cycle now) {
    if (now < spec_.start_cycle && spec_.inject != InjectKind::BurstOnce &&
        spec_.inject != InjectKind::Trace) {
      return 0;
    }
    std::uint32_t n = 0;
    switch (spec_.inject) {
      case InjectKind::Bernoulli:
        n = (bank_ != nullptr ? bank_->fire(slot_) : trial(thr_inject_)) ? 1
                                                                         : 0;
        break;
      case InjectKind::OnOff:
        if (on_) {
          n = trial(thr_inject_) ? 1 : 0;
          if (trial(thr_leave_on_)) on_ = false;
        } else {
          if (trial(thr_leave_off_)) on_ = true;
        }
        break;
      case InjectKind::Periodic:
        if (now >= next_fire_) {
          n = 1;
          next_fire_ = now + period_;
        }
        break;
      case InjectKind::BurstOnce:
        if (!burst_done_ && now >= spec_.burst_start) {
          n = spec_.burst_packets;
          burst_done_ = true;
        }
        break;
      case InjectKind::Trace:
        while (trace_pos_ < spec_.trace.size() &&
               spec_.trace[trace_pos_] <= now) {
          ++n;
          ++trace_pos_;
        }
        break;
    }
    created_ += n;
    return n;
  }

  /// Draws the length (flits) for the next created packet.
  [[nodiscard]] std::uint32_t draw_length() {
    if (spec_.len_min == spec_.len_max) return spec_.len_min;
    const std::uint64_t span = spec_.len_max - spec_.len_min + 1ULL;
    const std::uint64_t off =
        bank_ != nullptr
            ? below_with([this] { return bank_->draw(slot_); }, span)
            : rng_.below(span);
    return static_cast<std::uint32_t>(spec_.len_min + off);
  }

  /// Earliest cycle >= `now` at which this injector may act — create a
  /// packet OR consume RNG state. Idle-cycle fast-forward may skip every
  /// cycle strictly before it without perturbing the injection stream:
  /// packets_at(c) for skipped c would return 0 and draw nothing.
  /// Stochastic kinds (Bernoulli/OnOff) roll their RNG every cycle once
  /// started, so they report max(now, start_cycle); deterministic kinds
  /// report their exact next event; an exhausted source reports kNoCycle.
  [[nodiscard]] Cycle next_active_cycle(Cycle now) const;

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }

  /// Total packets created so far.
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }

 private:
  /// One local Bernoulli trial by precomputed integer threshold — exactly
  /// Rng::bernoulli(p) including the no-draw clamp branches.
  [[nodiscard]] bool trial(std::uint64_t thr) {
    if (thr == kBernoulliNever) return false;
    if (thr == kBernoulliAlways) return true;
    return (rng_() >> 11) < thr;
  }

  FlowSpec spec_;
  Rng rng_;
  std::uint64_t created_ = 0;

  // Bernoulli / OnOff: per-cycle trial thresholds (bernoulli_threshold of
  // the packet / burst-exit / burst-entry probabilities while active).
  std::uint64_t thr_inject_ = kBernoulliNever;
  bool on_ = true;  // OnOff state
  std::uint64_t thr_leave_on_ = kBernoulliNever;
  std::uint64_t thr_leave_off_ = kBernoulliNever;

  // Set when the RNG stream lives in a BernoulliBank slot instead of rng_.
  BernoulliBank* bank_ = nullptr;
  std::size_t slot_ = 0;

  // Periodic.
  Cycle period_ = 0;
  Cycle next_fire_ = 0;

  // Trace.
  std::size_t trace_pos_ = 0;

  bool burst_done_ = false;
};

}  // namespace ssq::traffic
