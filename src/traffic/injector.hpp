// Per-flow packet injection processes.
//
// An Injector owns the stochastic state of one flow's source and answers,
// cycle by cycle, how many packets the source creates and how long each one
// is. Determinism: each injector is seeded by forking the experiment RNG.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "traffic/flow.hpp"

namespace ssq::traffic {

class Injector {
 public:
  Injector(const FlowSpec& spec, Rng rng);

  /// Number of packets created at cycle `now`. Cycles must be queried in
  /// non-decreasing order. Most processes yield 0 or 1; BurstOnce yields the
  /// whole burst at its start cycle.
  [[nodiscard]] std::uint32_t packets_at(Cycle now);

  /// Draws the length (flits) for the next created packet.
  [[nodiscard]] std::uint32_t draw_length();

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }

  /// Total packets created so far.
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }

 private:
  FlowSpec spec_;
  Rng rng_;
  std::uint64_t created_ = 0;

  // Bernoulli / OnOff.
  double p_inject_ = 0.0;   // per-cycle packet probability while active
  bool on_ = true;          // OnOff state
  double p_leave_on_ = 0.0;
  double p_leave_off_ = 0.0;

  // Periodic.
  Cycle period_ = 0;
  Cycle next_fire_ = 0;

  // Trace.
  std::size_t trace_pos_ = 0;

  bool burst_done_ = false;
};

}  // namespace ssq::traffic
