// Flow specification (paper footnote 1: "A flow is a stream of packets that
// traverse the same route from a source to a destination").
//
// A workload is a set of flows; each flow binds a (src input, dst output)
// pair to a traffic class, a reserved rate (GB only), a packet-size range,
// and an injection process.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::traffic {

/// Stochastic process deciding when the source creates packets.
enum class InjectKind : std::uint8_t {
  /// Independent per-cycle coin flip with P = rate / mean_packet_len.
  Bernoulli = 0,
  /// Two-state Markov on/off source: bursts at the peak rate, idle between.
  OnOff,
  /// One packet every round(mean_packet_len / rate) cycles, phase 0.
  Periodic,
  /// A single burst of `burst_packets` back-to-back packets at cycle
  /// `burst_start` (GL latency-bound experiments).
  BurstOnce,
  /// Explicit injection-cycle list.
  Trace,
};

struct FlowSpec {
  InputId src = 0;
  OutputId dst = 0;
  TrafficClass cls = TrafficClass::BestEffort;

  /// GB only: fraction of the destination channel's bandwidth this flow
  /// reserves (Vtick derives from it). Ignored for BE; GL reservations are
  /// per-output and shared (see Workload::set_gl_reservation).
  double reserved_rate = 0.0;

  /// Packet length range in flits; fixed size when min == max. Lengths are
  /// drawn uniformly from [min, max].
  std::uint32_t len_min = 1;
  std::uint32_t len_max = 1;

  InjectKind inject = InjectKind::Bernoulli;
  /// Offered load in flits/cycle (Bernoulli, OnOff, Periodic).
  double inject_rate = 0.0;

  /// First cycle the source is active (Bernoulli/OnOff/Periodic): the flow
  /// creates nothing before this. Enables join/leave transients.
  Cycle start_cycle = 0;

  /// OnOff: mean burst and idle durations in cycles.
  double mean_on_cycles = 64.0;
  double mean_off_cycles = 64.0;

  /// BurstOnce parameters.
  Cycle burst_start = 0;
  std::uint32_t burst_packets = 0;

  /// Trace injection cycles (sorted non-decreasing).
  std::vector<Cycle> trace;

  /// Message priority level for the legacy 4-level QoS baseline [14]
  /// (arb::Kind::MultiLevel); 0 = lowest, 3 = highest. Ignored by SSVC.
  std::uint32_t legacy_priority = 0;

  [[nodiscard]] std::uint32_t mean_len() const noexcept {
    return (len_min + len_max) / 2;
  }

  void validate(std::uint32_t radix) const {
    SSQ_EXPECT(src < radix && dst < radix);
    SSQ_EXPECT(len_min >= 1 && len_min <= len_max);
    SSQ_EXPECT(legacy_priority < 4);
    SSQ_EXPECT(reserved_rate >= 0.0 && reserved_rate <= 1.0);
    if (cls == TrafficClass::GuaranteedBandwidth) {
      SSQ_EXPECT(reserved_rate > 0.0 &&
                 "GB flows must reserve a positive rate");
    }
    switch (inject) {
      case InjectKind::Bernoulli:
      case InjectKind::Periodic:
        SSQ_EXPECT(inject_rate > 0.0 && inject_rate <= 1.0);
        break;
      case InjectKind::OnOff:
        SSQ_EXPECT(inject_rate > 0.0 && inject_rate <= 1.0);
        SSQ_EXPECT(mean_on_cycles >= 1.0 && mean_off_cycles >= 0.0);
        break;
      case InjectKind::BurstOnce:
        SSQ_EXPECT(burst_packets >= 1);
        break;
      case InjectKind::Trace:
        for (std::size_t i = 1; i < trace.size(); ++i)
          SSQ_EXPECT(trace[i] >= trace[i - 1]);
        break;
    }
  }
};

}  // namespace ssq::traffic
