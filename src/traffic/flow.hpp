// Flow specification (paper footnote 1: "A flow is a stream of packets that
// traverse the same route from a source to a destination").
//
// A workload is a set of flows; each flow binds a (src input, dst output)
// pair to a traffic class, a reserved rate (GB only), a packet-size range,
// and an injection process.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/error.hpp"
#include "sim/types.hpp"

namespace ssq::traffic {

/// Stochastic process deciding when the source creates packets.
enum class InjectKind : std::uint8_t {
  /// Independent per-cycle coin flip with P = rate / mean_packet_len.
  Bernoulli = 0,
  /// Two-state Markov on/off source: bursts at the peak rate, idle between.
  OnOff,
  /// One packet every round(mean_packet_len / rate) cycles, phase 0.
  Periodic,
  /// A single burst of `burst_packets` back-to-back packets at cycle
  /// `burst_start` (GL latency-bound experiments).
  BurstOnce,
  /// Explicit injection-cycle list.
  Trace,
};

struct FlowSpec {
  InputId src = 0;
  OutputId dst = 0;
  TrafficClass cls = TrafficClass::BestEffort;

  /// GB only: fraction of the destination channel's bandwidth this flow
  /// reserves (Vtick derives from it). Ignored for BE; GL reservations are
  /// per-output and shared (see Workload::set_gl_reservation).
  double reserved_rate = 0.0;

  /// Packet length range in flits; fixed size when min == max. Lengths are
  /// drawn uniformly from [min, max].
  std::uint32_t len_min = 1;
  std::uint32_t len_max = 1;

  InjectKind inject = InjectKind::Bernoulli;
  /// Offered load in flits/cycle (Bernoulli, OnOff, Periodic).
  double inject_rate = 0.0;

  /// First cycle the source is active (Bernoulli/OnOff/Periodic): the flow
  /// creates nothing before this. Enables join/leave transients.
  Cycle start_cycle = 0;

  /// OnOff: mean burst and idle durations in cycles.
  double mean_on_cycles = 64.0;
  double mean_off_cycles = 64.0;

  /// BurstOnce parameters.
  Cycle burst_start = 0;
  std::uint32_t burst_packets = 0;

  /// Trace injection cycles (sorted non-decreasing).
  std::vector<Cycle> trace;

  /// Message priority level for the legacy 4-level QoS baseline [14]
  /// (arb::Kind::MultiLevel); 0 = lowest, 3 = highest. Ignored by SSVC.
  std::uint32_t legacy_priority = 0;

  [[nodiscard]] std::uint32_t mean_len() const noexcept {
    return (len_min + len_max) / 2;
  }

  /// Throws ssq::ConfigError — flow specs come from workload files.
  void validate(std::uint32_t radix) const {
    detail::config_check(src < radix && dst < radix,
                         "flow src/dst port out of range for this radix");
    detail::config_check(len_min >= 1 && len_min <= len_max,
                         "flow packet length range invalid (need 1 <= "
                         "len_min <= len_max)");
    detail::config_check(legacy_priority < 4,
                         "flow legacy_priority out of range [0,3]");
    detail::config_check(reserved_rate >= 0.0 && reserved_rate <= 1.0,
                         "flow reserved rate out of range [0,1]");
    if (cls == TrafficClass::GuaranteedBandwidth) {
      detail::config_check(reserved_rate > 0.0,
                           "GB flows must reserve a positive rate");
    }
    switch (inject) {
      case InjectKind::Bernoulli:
      case InjectKind::Periodic:
        detail::config_check(inject_rate > 0.0 && inject_rate <= 1.0,
                             "flow inject rate out of range (0,1]");
        break;
      case InjectKind::OnOff:
        detail::config_check(inject_rate > 0.0 && inject_rate <= 1.0,
                             "flow inject rate out of range (0,1]");
        detail::config_check(mean_on_cycles >= 1.0 && mean_off_cycles >= 0.0,
                             "flow on/off durations invalid");
        break;
      case InjectKind::BurstOnce:
        detail::config_check(burst_packets >= 1,
                             "burst flow needs burst_packets >= 1");
        break;
      case InjectKind::Trace:
        for (std::size_t i = 1; i < trace.size(); ++i) {
          detail::config_check(trace[i] >= trace[i - 1],
                               "flow trace cycles must be non-decreasing");
        }
        break;
    }
  }
};

}  // namespace ssq::traffic
