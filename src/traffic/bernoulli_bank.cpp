#include "traffic/bernoulli_bank.hpp"

#include "core/simd.hpp"

namespace ssq::traffic {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// One xoshiro256** step on a single SoA lane — same update as
// Rng::operator(), state spread across the four arrays.
std::uint64_t step_lane(std::uint64_t& s0, std::uint64_t& s1,
                        std::uint64_t& s2, std::uint64_t& s3) noexcept {
  const std::uint64_t result = rotl(s1 * 5, 7) * 9;
  const std::uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = rotl(s3, 45);
  return result;
}

}  // namespace

std::size_t BernoulliBank::add(const Rng& rng, std::uint64_t thr, Cycle start) {
  SSQ_EXPECT(thr != kBernoulliNever && thr != kBernoulliAlways);
  const auto st = rng.state();
  s0_.push_back(st[0]);
  s1_.push_back(st[1]);
  s2_.push_back(st[2]);
  s3_.push_back(st[3]);
  thr_.push_back(thr);
  res_.push_back(0);
  fire_.push_back(0);
  start_.push_back(start);
  if (start > max_start_) max_start_ = start;
  return thr_.size() - 1;
}

void BernoulliBank::roll(Cycle now) {
  const std::size_t n = thr_.size();
  if (n == 0) return;
  if (now >= max_start_) {
    // Steady state: every stream is live — one lock-step pass.
    core::simd::xoshiro_batch(s0_.data(), s1_.data(), s2_.data(), s3_.data(),
                              res_.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      fire_[k] = (res_[k] >> 11) < thr_[k] ? 1 : 0;
    }
    return;
  }
  // Warm-up with late joiners: a not-yet-started stream must not consume a
  // draw (packets_at returns before rolling), so step slots individually.
  for (std::size_t k = 0; k < n; ++k) {
    if (now < start_[k]) {
      fire_[k] = 0;
      continue;
    }
    const std::uint64_t x = step_lane(s0_[k], s1_[k], s2_[k], s3_[k]);
    fire_[k] = (x >> 11) < thr_[k] ? 1 : 0;
  }
}

std::uint64_t BernoulliBank::draw(std::size_t slot) {
  SSQ_EXPECT(slot < thr_.size());
  return step_lane(s0_[slot], s1_[slot], s2_[slot], s3_[slot]);
}

}  // namespace ssq::traffic
