#include "check/differential.hpp"

#include <sstream>

#include "sim/contracts.hpp"

namespace ssq::check {

namespace {

std::string class_name(TrafficClass c) { return std::string(to_string(c)); }

// Consecutive request-but-no-grant cycles tolerated under a matching engine
// before the progress guard calls starvation. Honest engines grant at least
// one pair per cycle with eligible requests; SW-QPS's emission gaps are
// bounded by window + max packet length (<= 8 + 32 flits), far below this.
constexpr Cycle kEngineStallThreshold = 128;

}  // namespace

DifferentialChecker::DifferentialChecker(sw::CrossbarSwitch& sim,
                                         CheckOptions opts)
    : sim_(sim), opts_(opts), tracer_(sink_), probe_(sim.config().radix) {
  sink_.self = this;
  const auto& cfg = sim_.config();
  const std::uint32_t radix = cfg.radix;
  single_request_ = cfg.allocation == sw::AllocationMode::SingleRequest;
  progress_guard_ = cfg.engine != arb::MatchKind::None;

  // The differential legs predict SSVC state exactly; anything else (baseline
  // arbiters, iterative matching, fault injection) falls back to
  // invariants-only checking.
  if (cfg.mode != sw::ArbitrationMode::SsvcQos || !single_request_ ||
      sim_.fault_injector() != nullptr) {
    opts_.differential = false;
  }

  if (opts_.differential) {
    refs_.reserve(radix);
    for (OutputId o = 0; o < radix; ++o) {
      refs_.emplace_back(radix, cfg.ssvc, sim_.workload().allocation_for(o),
                         cfg.gl_policing, cfg.gl_allowance_packets, opts_.bug);
      // The two sides must start from identical derived configuration; a
      // mismatch here is a harness bug, not a semantic divergence.
      auto& arb = sim_.qos_arbiter(o);
      for (InputId i = 0; i < radix; ++i) {
        SSQ_ENSURE(refs_[o].vtick(i) == arb.aux_vc(i).vtick());
      }
      SSQ_ENSURE(refs_[o].gl_vtick() == arb.gl_tracker().vtick());
    }
    const std::uint32_t gb_lanes = cfg.ssvc.gb_levels();
    // The bit-level model caps the bus at 1024 wires; a 64-port bus with 16
    // GB lanes (plus GL and BE) would need 1152, so the circuit leg bows out
    // for the largest geometries rather than mis-modelling them.
    if (opts_.circuit && radix >= 2 && radix * (gb_lanes + 2) <= 1024) {
      circuit::LaneLayout layout;
      layout.radix = radix;
      layout.gb_lanes = gb_lanes;
      layout.has_gl_lane = true;
      layout.has_be_lane = true;
      layout.bus_width = radix * (gb_lanes + 2);
      circuit_.emplace(layout);
      circuit_lrg_.emplace(radix);
      creqs_.reserve(radix);
      ctrace_.emplace(layout.bus_width);
    } else {
      opts_.circuit = false;
    }
  }

  reqs_.resize(radix);
  granted_.assign(radix, kNoPort);
  input_granted_.assign(radix, 0);
  const std::size_t flows = sim_.workload().num_flows();
  created_.assign(flows, 0);
  buffered_.assign(flows, 0);
  delivered_.assign(flows, 0);

  probe_.set_tracer(&tracer_);
  sim_.attach_probe(&probe_);
}

DifferentialChecker::~DifferentialChecker() {
  if (sim_.probe() == &probe_) sim_.attach_probe(nullptr);
}

bool DifferentialChecker::step() {
  if (divergence_.has_value()) return false;
  // A fault injector attached after construction disables the differential
  // legs from this cycle on — faults legitimately break oracle predictions.
  if (opts_.differential && sim_.fault_injector() != nullptr) {
    opts_.differential = false;
  }
  const Cycle t = sim_.now();
  sim_.step();
  if (!divergence_.has_value()) end_cycle(t);
  return !divergence_.has_value();
}

bool DifferentialChecker::run(Cycle cycles) {
  const Cycle end = sim_.now() + cycles;
  while (sim_.now() < end) {
    if (!divergence_.has_value() && sim_.fast_forward_eligible() &&
        sim_.quiescent()) {
      // A quiescent eligible stretch emits no events and mutates no state
      // either model predicts from, so the checker skips it exactly as the
      // bare switch does — per-cycle checks on it would compare two
      // untouched states.
      const Cycle from = sim_.now();
      sim_.fast_forward(end);
      if (sim_.now() > from) on_fast_forward();
      if (sim_.now() >= end) break;
    }
    if (!step()) return false;
  }
  return true;
}

void DifferentialChecker::handle(const obs::Event& e) {
  if (divergence_.has_value()) return;
  switch (e.kind) {
    case obs::EventKind::PacketCreated:
      ++created_[static_cast<std::size_t>(e.flow)];
      break;
    case obs::EventKind::PacketBuffered:
      ++buffered_[static_cast<std::size_t>(e.flow)];
      break;
    case obs::EventKind::Request: {
      if (single_request_ && ((requesting_inputs_ >> e.input) & 1ULL) != 0) {
        fail(e.cycle, e.output, "duplicate_request",
             "input " + std::to_string(e.input) +
                 " asserted two requests in one cycle (single-request mode)");
        return;
      }
      requesting_inputs_ |= 1ULL << e.input;
      reqs_[e.output].push_back(
          core::ClassRequest{e.input, e.cls, e.length != 0 ? e.length : 1});
      break;
    }
    case obs::EventKind::Grant:
      check_grant(e, /*chained=*/false);
      break;
    case obs::EventKind::ChainGrant:
      check_grant(e, /*chained=*/true);
      break;
    case obs::EventKind::Delivered:
      ++delivered_[static_cast<std::size_t>(e.flow)];
      break;
    default:
      break;  // arbitration internals, faults, repairs: not checked here
  }
}

void DifferentialChecker::check_grant(const obs::Event& e, bool chained) {
  ++grants_checked_;
  const OutputId o = e.output;
  const InputId i = e.input;

  // Invariants that hold in every mode: one grant per output channel and per
  // input bus per cycle (the crossbar's physical exclusivity).
  if (granted_[o] != kNoPort) {
    fail(e.cycle, o, "double_grant_output",
         "output granted twice in one cycle: first to input " +
             std::to_string(granted_[o]) + ", then to input " +
             std::to_string(i));
    return;
  }
  if (input_granted_[i] != 0) {
    fail(e.cycle, o, "double_grant_input",
         "input " + std::to_string(i) +
             " granted twice in one cycle (second grant by output " +
             std::to_string(o) + ")");
    return;
  }
  granted_[o] = i;
  input_granted_[i] = 1;

  if (progress_guard_ && !chained) {
    // Engine mode reports every eligible (input, output) pair as a Request;
    // a grant outside that set means the engine matched an ineligible pair.
    bool requested = false;
    for (const auto& r : reqs_[o]) {
      if (r.input == i) {
        requested = true;
        break;
      }
    }
    if (!requested) {
      fail(e.cycle, o, "unrequested_grant",
           "engine granted input " + std::to_string(i) +
               " at an output it never requested\n" + dump_requests(o));
      return;
    }
  }

  if (!opts_.differential) return;
  ReferenceOutput& ref = refs_[o];
  ref.advance_to(e.cycle);
  const bool gl_ok = ref.gl_eligible(e.cycle);
  if (chained) {
    // No arbitration ran; only the policer gates a chained GL grant.
    if (e.cls == TrafficClass::GuaranteedLatency && !gl_ok) {
      fail(e.cycle, o, "chain_gl_ineligible",
           "simulator chained a GL packet the reference policer stalls\n" +
               dump_output_state(o));
      return;
    }
  } else {
    const ReferenceOutput::Decision d = ref.pick(reqs_[o], e.cycle);
    if (d.winner != i || d.cls != e.cls) {
      std::ostringstream os;
      os << "simulator granted input " << i << " (" << class_name(e.cls)
         << "), reference picked ";
      if (d.winner == kNoPort) {
        os << "no winner";
      } else {
        os << "input " << d.winner << " (" << class_name(d.cls) << ")";
      }
      os << '\n' << dump_requests(o) << dump_output_state(o);
      fail(e.cycle, o, "winner_mismatch", os.str());
      return;
    }
    if (opts_.circuit) {
      check_circuit(e, ref, gl_ok);
      if (divergence_.has_value()) return;
    }
  }
  ref.on_grant(i, e.cls, e.cycle);
}

void DifferentialChecker::check_circuit(const obs::Event& e,
                                        const ReferenceOutput& ref,
                                        bool gl_ok) {
  // Build the crosspoint request vector the wires would see, from the
  // reference model's view of the state (levels + LRG order), so the circuit
  // leg is independent of the production arbiter.
  std::vector<circuit::CrosspointRequest>& creqs = creqs_;
  creqs.clear();
  for (const auto& r : reqs_[e.output]) {
    circuit::CrosspointRequest cr;
    cr.input = r.input;
    switch (r.cls) {
      case TrafficClass::GuaranteedBandwidth:
        cr.kind = circuit::RequestKind::Gb;
        cr.level = ref.level(r.input);
        break;
      case TrafficClass::BestEffort:
        cr.kind = circuit::RequestKind::BestEffort;
        break;
      case TrafficClass::GuaranteedLatency:
        if (gl_ok) {
          cr.kind = circuit::RequestKind::Gl;
        } else if (ref.policing() == core::GlPolicing::Demote) {
          cr.kind = circuit::RequestKind::BestEffort;  // demoted to BE lane
        } else {
          continue;  // stalled: the crosspoint does not assert
        }
        break;
    }
    creqs.push_back(cr);
  }
  if (creqs.empty()) {
    fail(e.cycle, e.output, "circuit_no_request",
         "simulator granted input " + std::to_string(e.input) +
             " but no crosspoint would assert a request\n" +
             dump_requests(e.output) + dump_output_state(e.output));
    return;
  }
  circuit_lrg_->set_matrix(ref.lrg_rows());
  circuit_->arbitrate_into(creqs, *circuit_lrg_, *ctrace_);
  const circuit::ArbitrationTrace& trace = *ctrace_;
  if (trace.winner != e.input) {
    std::ostringstream os;
    os << "bit-level circuit elected ";
    if (trace.winner == kNoPort) {
      os << "no winner";
    } else {
      os << "input " << trace.winner;
    }
    os << ", simulator granted input " << e.input << '\n'
       << dump_requests(e.output) << dump_output_state(e.output);
    fail(e.cycle, e.output, "circuit_mismatch", os.str());
  }
}

void DifferentialChecker::end_cycle(Cycle t) {
  if (opts_.differential) {
    for (OutputId o = 0; o < sim_.config().radix; ++o) {
      refs_[o].advance_to(t);
      if (!reqs_[o].empty() && granted_[o] == kNoPort) {
        // The simulator serviced nothing at this output; the reference must
        // agree (only policer-stalled GL requests present).
        const ReferenceOutput::Decision d = refs_[o].pick(reqs_[o], t);
        if (d.winner != kNoPort) {
          fail(t, o, "missed_grant",
               "simulator granted nothing, reference picked input " +
                   std::to_string(d.winner) + " (" + class_name(d.cls) +
                   ")\n" + dump_requests(o) + dump_output_state(o));
          return;
        }
      }
    }
    if (opts_.state_compare) {
      compare_state(t);
      if (divergence_.has_value()) return;
    }
  }

  // Packet conservation: a flow can never deliver more than it buffered nor
  // buffer more than it created. Holds in every mode, faults included.
  for (std::size_t f = 0; f < created_.size(); ++f) {
    if (buffered_[f] > created_[f] || delivered_[f] > buffered_[f]) {
      fail(t, kNoPort, "conservation",
           "flow " + std::to_string(f) + ": created " +
               std::to_string(created_[f]) + ", buffered " +
               std::to_string(buffered_[f]) + ", delivered " +
               std::to_string(delivered_[f]));
      return;
    }
  }

  if (progress_guard_) {
    // Work conservation under a matching engine: requests pending but zero
    // grants switch-wide, sustained past the threshold, is starvation.
    bool any_grant = false;
    for (const InputId g : granted_) {
      if (g != kNoPort) {
        any_grant = true;
        break;
      }
    }
    if (any_grant || requesting_inputs_ == 0) {
      stall_streak_ = 0;
    } else if (++stall_streak_ >= kEngineStallThreshold) {
      fail(t, kNoPort, "starvation",
           "matching engine granted nothing for " +
               std::to_string(stall_streak_) +
               " consecutive cycles with requests pending");
      return;
    }
  }

  for (auto& r : reqs_) r.clear();
  granted_.assign(granted_.size(), kNoPort);
  input_granted_.assign(input_granted_.size(), 0);
  requesting_inputs_ = 0;
}

void DifferentialChecker::compare_state(Cycle t) {
  const std::uint32_t radix = sim_.config().radix;
  for (OutputId o = 0; o < radix; ++o) {
    auto& arb = sim_.qos_arbiter(o);
    arb.advance_to(t);
    const ReferenceOutput& ref = refs_[o];
    const auto mismatch = [&](const std::string& what) {
      fail(t, o, "state_mismatch", what + '\n' + dump_output_state(o));
    };
    if (arb.epoch_rt() != ref.rt()) {
      mismatch("epoch real time: sim " + std::to_string(arb.epoch_rt()) +
               ", ref " + std::to_string(ref.rt()));
      return;
    }
    if (arb.gl_tracker().clock() != ref.gl_clock()) {
      mismatch("GL clock: sim " + std::to_string(arb.gl_tracker().clock()) +
               ", ref " + std::to_string(ref.gl_clock()));
      return;
    }
    if (!arb.gl_tracker().sane(t)) {
      mismatch("GL clock violates the Stall policing bound");
      return;
    }
    for (InputId i = 0; i < radix; ++i) {
      const auto& vc = arb.aux_vc(i);
      if (vc.value() > vc.cap()) {
        mismatch("auxVC[" + std::to_string(i) + "] above its cap: " +
                 std::to_string(vc.value()) + " > " + std::to_string(vc.cap()));
        return;
      }
      if (vc.value() != ref.value(i)) {
        mismatch("auxVC[" + std::to_string(i) + "] value: sim " +
                 std::to_string(vc.value()) + ", ref " +
                 std::to_string(ref.value(i)));
        return;
      }
      if (arb.gb_level(i) != ref.level(i) ||
          arb.sensed_gb_level(i) != ref.level(i)) {
        mismatch("GB level[" + std::to_string(i) + "]: sim " +
                 std::to_string(arb.gb_level(i)) + " (sensed " +
                 std::to_string(arb.sensed_gb_level(i)) + "), ref " +
                 std::to_string(ref.level(i)));
        return;
      }
      if (arb.lrg().rank(i) != ref.lrg_rank(i)) {
        mismatch("LRG rank[" + std::to_string(i) + "]: sim " +
                 std::to_string(arb.lrg().rank(i)) + ", ref " +
                 std::to_string(ref.lrg_rank(i)));
        return;
      }
    }
  }
}

void DifferentialChecker::fail(Cycle t, OutputId o, std::string kind,
                               std::string detail) {
  if (divergence_.has_value()) return;
  divergence_ = Divergence{t, o, std::move(kind), std::move(detail)};
}

std::string DifferentialChecker::dump_requests(OutputId o) const {
  std::ostringstream os;
  os << "requests:";
  if (reqs_[o].empty()) os << " (none)";
  for (const auto& r : reqs_[o]) {
    os << " [in=" << r.input << ' ' << class_name(r.cls) << ']';
  }
  os << '\n';
  return os.str();
}

std::string DifferentialChecker::dump_output_state(OutputId o) const {
  std::ostringstream os;
  os << "state (sim | ref) for output " << o << ":\n";
  if (!opts_.differential || sim_.config().mode != sw::ArbitrationMode::SsvcQos) {
    os << "  (no differential state)\n";
    return os.str();
  }
  auto& arb = sim_.qos_arbiter(o);
  const ReferenceOutput& ref = refs_[o];
  os << "  rt " << arb.epoch_rt() << '|' << ref.rt() << "  gl_clock "
     << arb.gl_tracker().clock() << '|' << ref.gl_clock() << "  gl_vtick "
     << ref.gl_vtick() << '\n';
  for (InputId i = 0; i < sim_.config().radix; ++i) {
    os << "  in " << i << ": vc " << arb.aux_vc(i).value() << '|'
       << ref.value(i) << "  lvl " << arb.gb_level(i) << '|' << ref.level(i)
       << "  sensed " << arb.sensed_gb_level(i) << "  rank "
       << arb.lrg().rank(i) << '|' << ref.lrg_rank(i) << "  vtick "
       << ref.vtick(i) << '\n';
  }
  return os.str();
}

}  // namespace ssq::check
