// Golden traces — a canonical, byte-stable text rendering of a scenario's
// observable behaviour, for the committed regression corpus under
// tests/golden/.
//
// GoldenTraceSink writes one space-separated integer-only line per selected
// event (grants, deliveries, management and fault/recovery events — the
// semantically load-bearing ones; the chatty per-cycle kinds are excluded to
// keep committed files small and diffs readable) plus an `end` footer with
// totals. The format has no floats, no pointers and no timestamps, so equal
// runs produce byte-identical files on every platform — that equality is the
// regression check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "check/scenario.hpp"
#include "obs/trace.hpp"

namespace ssq::check {

class GoldenTraceSink final : public obs::TraceSink {
 public:
  explicit GoldenTraceSink(std::ostream& os) : os_(os) {}
  void on_event(const obs::Event& e) override;
  void finish() override;
  [[nodiscard]] bool ok() const override;

  /// True for kinds a golden trace records.
  [[nodiscard]] static bool selected(obs::EventKind k) noexcept;

 private:
  std::ostream& os_;
  std::uint64_t lines_ = 0;
  Cycle last_cycle_ = 0;
  bool finished_ = false;
};

/// Runs the scenario (with its fault plan and scrubber, no checker) under a
/// GoldenTraceSink and returns the trace text. Deterministic: equal
/// scenarios yield byte-equal strings.
[[nodiscard]] std::string golden_trace(const Scenario& s);

}  // namespace ssq::check
