// Stability lab — cell-based throughput/delay measurement for the matching
// engines (bench/stability_lab drives it; matching_test.cpp leans on it for
// property checks).
//
// The crossbar model (sw::CrossbarSwitch) carries packets, arbitration
// cycles, finite buffers and QoS state; the scheduling literature's
// stability claims (iSLIP's 100% throughput under uniform traffic, QPS-r's
// r-round delay bounds, SW-QPS's batching gains) are stated for the *cell
// model*: unit-length cells, unbounded VOQs, every port free every slot.
// CellSwitch is that model — the full radix x radix VOQ matrix with
// arrival-stamped FIFOs — so the measured throughput floor and delay curves
// are comparable with the papers, and any engine bug shows up as a missing
// fraction of throughput instead of being masked by buffer backpressure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "arb/matching.hpp"
#include "sim/types.hpp"

namespace ssq::check {

/// Admissible synthetic traffic patterns (per-output offered load == the
/// per-input load for every pattern, so any load < 1 is admissible).
enum class TrafficPattern : std::uint8_t {
  /// Destination uniform over all outputs.
  Uniform,
  /// 2/3 of cells to output i, 1/3 to output i+1 (mod N) — the classic
  /// skewed "diagonal" load.
  Diagonal,
  /// Output i+k (mod N) with probability 2^-(k+1) (remainder on the last
  /// diagonal) — near-worst-case skew for sampling-based schedulers.
  LogDiagonal,
  /// Half of each input's cells to output i, half uniform.
  Hotspot,
};

[[nodiscard]] const char* to_string(TrafficPattern p) noexcept;
/// Throws ssq::ConfigError naming the offending token.
[[nodiscard]] TrafficPattern parse_pattern(std::string_view name);

struct StabilityConfig {
  std::uint32_t radix = 16;
  arb::MatchKind engine = arb::MatchKind::Islip;
  /// Iteration budget (iSLIP/QPS-r) or window T (SW-QPS).
  std::uint32_t iterations = 3;
  TrafficPattern pattern = TrafficPattern::Uniform;
  /// Offered load: cells per input per slot (admissible below 1.0).
  double load = 0.9;
  /// Slots run before measurement opens (queues reach steady state).
  Cycle warmup = 2000;
  /// Measured slots.
  Cycle cycles = 20000;
  std::uint64_t seed = 1;

  /// Throws ssq::ConfigError on bad values.
  void validate() const;
};

/// One measured (engine, pattern, load) point.
struct StabilityPoint {
  std::string engine;
  std::string pattern;
  double load = 0.0;
  Cycle cycles = 0;
  std::uint64_t arrived = 0;   // cells injected inside the window
  std::uint64_t departed = 0;  // cells served inside the window
  double offered = 0.0;        // arrived / (radix * cycles)
  double throughput = 0.0;     // departed / (radix * cycles)
  double mean_delay = 0.0;     // slots, over in-window departures
  std::uint64_t p99_delay = 0;
  /// Deepest single VOQ seen inside the window (cells) — the instability
  /// indicator: bounded when the engine is stable at this load.
  std::uint64_t max_backlog = 0;
  /// Cells still queued when the window closed.
  std::uint64_t backlog_end = 0;
  /// Mean engine iterations per slot that presented work (convergence).
  double avg_iterations = 0.0;
};

/// Runs one cell-model simulation and measures it. Deterministic in
/// `cfg` (engine and traffic draw from independent seeded streams).
[[nodiscard]] StabilityPoint measure_stability(const StabilityConfig& cfg);

}  // namespace ssq::check
