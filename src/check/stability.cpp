#include "check/stability.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace ssq::check {

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::Uniform: return "uniform";
    case TrafficPattern::Diagonal: return "diagonal";
    case TrafficPattern::LogDiagonal: return "logdiag";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

TrafficPattern parse_pattern(std::string_view name) {
  for (TrafficPattern p :
       {TrafficPattern::Uniform, TrafficPattern::Diagonal,
        TrafficPattern::LogDiagonal, TrafficPattern::Hotspot}) {
    if (to_string(p) == name) return p;
  }
  throw ssq::ConfigError("unknown traffic pattern '" + std::string(name) +
                         "' (uniform|diagonal|logdiag|hotspot)");
}

void StabilityConfig::validate() const {
  detail::config_check(radix >= 2 && radix <= 64, "radix out of range [2,64]");
  detail::config_check(engine != arb::MatchKind::None,
                       "the stability lab needs a matching engine");
  detail::config_check(iterations >= 1 && iterations <= 8,
                       "iterations out of range [1,8]");
  detail::config_check(load > 0.0 && load < 1.0,
                       "load must be in (0,1) — admissible offered load");
  detail::config_check(cycles >= 1, "cycles must be >= 1");
}

namespace {

/// Arrival-stamped FIFO: vector + head index, compacted when the dead
/// prefix dominates, so pops stay O(1) amortised without deque overhead.
struct CellFifo {
  std::vector<Cycle> q;
  std::size_t head = 0;

  [[nodiscard]] std::size_t size() const noexcept { return q.size() - head; }
  void push(Cycle arrival) { q.push_back(arrival); }
  Cycle pop() {
    const Cycle a = q[head++];
    if (head >= 4096 && head * 2 >= q.size()) {
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    return a;
  }
};

OutputId draw_destination(Rng& rng, TrafficPattern pattern, InputId i,
                          std::uint32_t radix) {
  switch (pattern) {
    case TrafficPattern::Uniform:
      return static_cast<OutputId>(rng.below(radix));
    case TrafficPattern::Diagonal:
      return static_cast<OutputId>(rng.below(3) < 2 ? i : (i + 1) % radix);
    case TrafficPattern::LogDiagonal: {
      // P(k) = 2^-(k+1), remainder pooled on the last diagonal.
      std::uint32_t k = 0;
      while (k < radix - 1 && !rng.bernoulli(0.5)) ++k;
      return static_cast<OutputId>((i + k) % radix);
    }
    case TrafficPattern::Hotspot:
      return static_cast<OutputId>(rng.bernoulli(0.5) ? i : rng.below(radix));
  }
  SSQ_EXPECT(false && "unreachable pattern");
  return 0;
}

}  // namespace

StabilityPoint measure_stability(const StabilityConfig& cfg) {
  cfg.validate();
  const std::uint32_t radix = cfg.radix;

  // Independent streams: reseeding the engine must not shift the arrival
  // process (and vice versa), so engine-vs-engine points see identical
  // traffic for the same (seed, pattern, load).
  std::uint64_t sm_traffic = cfg.seed ^ 0x7472616666696bULL;
  std::uint64_t sm_engine = cfg.seed ^ 0x656e67696e65ULL;
  Rng traffic_rng(splitmix64(sm_traffic));
  auto engine =
      arb::make_engine(cfg.engine, radix, cfg.iterations,
                       splitmix64(sm_engine));

  std::vector<CellFifo> voq(static_cast<std::size_t>(radix) * radix);
  std::vector<std::uint64_t> eligible(radix, 0);
  std::vector<std::uint32_t> lengths(static_cast<std::size_t>(radix) * radix,
                                     0);
  std::vector<InputId> match(radix, kNoPort);
  std::vector<std::uint32_t> delays;  // in-window departure delays, slots
  delays.reserve(static_cast<std::size_t>(cfg.cycles) * radix / 4 + 16);

  StabilityPoint pt;
  pt.engine = std::string(arb::match_kind_name(cfg.engine));
  pt.pattern = to_string(cfg.pattern);
  pt.load = cfg.load;
  pt.cycles = cfg.cycles;

  std::uint64_t iteration_sum = 0;
  std::uint64_t slots_with_work = 0;
  const Cycle end = cfg.warmup + cfg.cycles;
  for (Cycle t = 0; t < end; ++t) {
    const bool measuring = t >= cfg.warmup;
    // Arrivals: Bernoulli(load) per input, destination by pattern.
    for (InputId i = 0; i < radix; ++i) {
      if (!traffic_rng.bernoulli(cfg.load)) continue;
      const OutputId o = draw_destination(traffic_rng, cfg.pattern, i, radix);
      CellFifo& f = voq[static_cast<std::size_t>(i) * radix + o];
      f.push(t);
      if (measuring) {
        ++pt.arrived;
        pt.max_backlog = std::max<std::uint64_t>(pt.max_backlog, f.size());
      }
    }

    // Build the view. Cell model: every port is free every slot, so the
    // candidate and eligible sets coincide.
    bool any = false;
    for (InputId i = 0; i < radix; ++i) {
      std::uint64_t mask = 0;
      for (OutputId o = 0; o < radix; ++o) {
        const std::size_t idx = static_cast<std::size_t>(i) * radix + o;
        const std::size_t len = voq[idx].size();
        lengths[idx] = static_cast<std::uint32_t>(
            std::min<std::size_t>(len, 0xffffffffULL));
        if (len > 0) mask |= 1ULL << o;
      }
      eligible[i] = mask;
      any |= mask != 0;
    }
    if (!any) continue;  // engines leave no trace on an empty view
    ++slots_with_work;

    std::fill(match.begin(), match.end(), kNoPort);
    const arb::MatchView view{radix,
                              std::span<const std::uint64_t>(eligible),
                              std::span<const std::uint64_t>(eligible),
                              std::span<const std::uint32_t>(lengths)};
    iteration_sum += engine->match(view, match);

    std::uint64_t in_used = 0;
    for (OutputId o = 0; o < radix; ++o) {
      const InputId i = match[o];
      if (i == kNoPort) continue;
      SSQ_ENSURE(i < radix && ((eligible[i] >> o) & 1ULL) != 0);
      SSQ_ENSURE(((in_used >> i) & 1ULL) == 0);
      in_used |= 1ULL << i;
      const Cycle arrival = voq[static_cast<std::size_t>(i) * radix + o].pop();
      if (measuring) {
        ++pt.departed;
        delays.push_back(static_cast<std::uint32_t>(t - arrival));
      }
    }
  }

  for (const CellFifo& f : voq) pt.backlog_end += f.size();
  const double slots = static_cast<double>(cfg.cycles) * radix;
  pt.offered = static_cast<double>(pt.arrived) / slots;
  pt.throughput = static_cast<double>(pt.departed) / slots;
  pt.avg_iterations =
      slots_with_work > 0
          ? static_cast<double>(iteration_sum) /
                static_cast<double>(slots_with_work)
          : 0.0;
  if (!delays.empty()) {
    std::uint64_t sum = 0;
    for (const std::uint32_t d : delays) sum += d;
    pt.mean_delay =
        static_cast<double>(sum) / static_cast<double>(delays.size());
    const std::size_t k =
        (delays.size() * 99 + 99) / 100;  // ceil rank of the 99th percentile
    const std::size_t idx = std::min(delays.size() - 1, k - 1);
    std::nth_element(delays.begin(),
                     delays.begin() + static_cast<std::ptrdiff_t>(idx),
                     delays.end());
    pt.p99_delay = delays[idx];
  }
  return pt;
}

}  // namespace ssq::check
