#include "check/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/probe.hpp"

namespace ssq::check {

namespace {

void put_port(std::ostream& os, std::uint32_t p) {
  if (p == kNoPort) {
    os << '-';
  } else {
    os << p;
  }
}

void put_id(std::ostream& os, std::uint64_t id) {
  if (id == obs::kNoId) {
    os << '-';
  } else {
    os << id;
  }
}

}  // namespace

bool GoldenTraceSink::selected(obs::EventKind k) noexcept {
  switch (k) {
    case obs::EventKind::Grant:
    case obs::EventKind::ChainGrant:
    case obs::EventKind::Delivered:
    case obs::EventKind::Preempted:
    case obs::EventKind::MgmtHalve:
    case obs::EventKind::MgmtReset:
    case obs::EventKind::FaultInjected:
    case obs::EventKind::ScrubRepair:
    case obs::EventKind::LaneQuarantined:
    case obs::EventKind::PortOutage:
      return true;
    case obs::EventKind::PacketCreated:
    case obs::EventKind::PacketBuffered:
    case obs::EventKind::AdmitBlocked:
    case obs::EventKind::Request:
    case obs::EventKind::TransferStart:
    case obs::EventKind::GlStall:
    case obs::EventKind::LaneTieBreak:
    case obs::EventKind::AuxVcSaturated:
    case obs::EventKind::EpochWrap:
      return false;
  }
  return false;
}

void GoldenTraceSink::on_event(const obs::Event& e) {
  if (!selected(e.kind)) return;
  os_ << obs::to_string(e.kind) << ' ' << e.cycle << ' '
      << ssq::to_string(e.cls) << ' ';
  put_port(os_, e.input);
  os_ << ' ';
  put_port(os_, e.output);
  os_ << ' ';
  put_id(os_, e.flow);
  os_ << ' ';
  put_id(os_, e.packet);
  os_ << ' ' << e.length << ' ' << e.arg0 << ' ' << e.arg1 << '\n';
  ++lines_;
  if (e.cycle > last_cycle_) last_cycle_ = e.cycle;
}

void GoldenTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "end events=" << lines_ << " last_cycle=" << last_cycle_ << '\n';
}

bool GoldenTraceSink::ok() const { return static_cast<bool>(os_); }

std::string golden_trace(const Scenario& s) {
  ScenarioRun rig = instantiate(s);
  std::ostringstream out;
  GoldenTraceSink sink(out);
  obs::Tracer tracer(sink);
  obs::SwitchProbe probe(s.radix);
  probe.set_tracer(&tracer);
  rig.sim->attach_probe(&probe);
  // run(), not a manual step loop: scenarios eligible for idle-cycle
  // fast-forward take it here, so the committed golden corpus asserts the
  // skipped cycles are byte-invisible. Faulted/GSF scenarios are ineligible
  // and step plainly.
  rig.sim->run(s.cycles);
  rig.sim->attach_probe(nullptr);
  tracer.finish();
  return out.str();
}

}  // namespace ssq::check
