#include "check/reference.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace ssq::check {

const char* to_string(PlantedBug b) noexcept {
  switch (b) {
    case PlantedBug::None: return "none";
    case PlantedBug::GbVtickOffByOne: return "gb_vtick_off_by_one";
    case PlantedBug::LrgNoMoveToBack: return "lrg_no_move_to_back";
    case PlantedBug::GlAllowanceOffByOne: return "gl_allowance_off_by_one";
    case PlantedBug::SkipEpochWrap: return "skip_epoch_wrap";
    case PlantedBug::EngineStarve: return "engine_starve";
  }
  return "?";
}

ReferenceOutput::ReferenceOutput(std::uint32_t radix,
                                 const core::SsvcParams& params,
                                 const core::OutputAllocation& alloc,
                                 core::GlPolicing policing,
                                 std::uint32_t gl_allowance, PlantedBug bug)
    : radix_(radix),
      params_(params),
      policing_(policing),
      gl_allowance_(gl_allowance),
      bug_(bug),
      cap_(params.policy == core::CounterPolicy::None ? (1ULL << 62)
                                                      : params.aux_vc_cap()) {
  SSQ_EXPECT(radix >= 1 && radix <= 64);
  params_.validate();
  vtick_.resize(radix, 1);
  reserved_.resize(radix, false);
  value_.resize(radix, 0);
  for (InputId i = 0; i < radix; ++i) {
    const double rate = alloc.gb_rate[i];
    if (rate > 0.0) {
      reserved_[i] = true;
      vtick_[i] = core::quantize_vtick(
          params_, core::ideal_vtick(rate, alloc.gb_packet_len));
    }
  }
  if (alloc.gl_rate > 0.0) {
    gl_vtick_ = core::quantize_vtick(
        params_, core::ideal_vtick(alloc.gl_rate, alloc.gl_packet_len));
  }
  order_.resize(radix);
  pos_.resize(radix);
  for (InputId i = 0; i < radix; ++i) {
    order_[i] = i;
    pos_[i] = i;
  }
}

void ReferenceOutput::advance_to(Cycle now) {
  SSQ_EXPECT(now >= epoch_base_);
  rt_ = now - epoch_base_;
  if (params_.policy == core::CounterPolicy::None) return;
  const std::uint64_t epoch = params_.epoch_cycles();
  while (rt_ >= epoch) {
    if (bug_ != PlantedBug::SkipEpochWrap) {
      for (auto& v : value_) v = v >= epoch ? v - epoch : 0;
    }
    epoch_base_ += epoch;
    rt_ -= epoch;
  }
}

InputId ReferenceOutput::first_in_order(std::uint64_t bucket) const {
  for (const InputId i : order_) {
    if ((bucket >> i) & 1ULL) return i;
  }
  return kNoPort;
}

bool ReferenceOutput::gl_eligible(Cycle now) const {
  if (gl_vtick_ == 0 || policing_ == core::GlPolicing::None) return true;
  std::uint64_t allowance = gl_allowance_;
  if (bug_ == PlantedBug::GlAllowanceOffByOne) ++allowance;
  return gl_clock_ <= now + gl_vtick_ * allowance;
}

ReferenceOutput::Decision ReferenceOutput::pick(
    std::span<const core::ClassRequest> requests, Cycle now) const {
  SSQ_EXPECT(now >= epoch_base_ && now - epoch_base_ == rt_ &&
             "call advance_to(now) before pick()");
  if (requests.empty()) return {};

  // Stage 1 — eligible GL requests take absolute priority, LRG among them.
  const bool gl_ok = gl_eligible(now);
  std::uint64_t gl_bucket = 0;
  for (const auto& r : requests) {
    SSQ_EXPECT(r.input < radix_);
    if (r.cls == TrafficClass::GuaranteedLatency && gl_ok) {
      gl_bucket |= 1ULL << r.input;
    }
  }
  if (gl_bucket != 0) {
    return {first_in_order(gl_bucket), TrafficClass::GuaranteedLatency};
  }

  // Stage 2 — GB requests: smallest virtual-clock lane wins, LRG in-lane.
  std::uint32_t min_level = params_.gb_levels();
  for (const auto& r : requests) {
    if (r.cls != TrafficClass::GuaranteedBandwidth) continue;
    SSQ_EXPECT(reserved_[r.input]);
    min_level = std::min(min_level, level_of(value_[r.input]));
  }
  std::uint64_t gb_bucket = 0;
  for (const auto& r : requests) {
    if (r.cls == TrafficClass::GuaranteedBandwidth &&
        level_of(value_[r.input]) == min_level) {
      gb_bucket |= 1ULL << r.input;
    }
  }
  if (gb_bucket != 0) {
    return {first_in_order(gb_bucket), TrafficClass::GuaranteedBandwidth};
  }

  // Stage 3 — BE, joined by policer-demoted GL; winner keeps its own class.
  std::uint64_t be_bucket = 0;
  std::uint64_t demoted = 0;
  for (const auto& r : requests) {
    if (r.cls == TrafficClass::BestEffort) be_bucket |= 1ULL << r.input;
    if (r.cls == TrafficClass::GuaranteedLatency && !gl_ok &&
        policing_ == core::GlPolicing::Demote) {
      be_bucket |= 1ULL << r.input;
      demoted |= 1ULL << r.input;
    }
  }
  if (be_bucket != 0) {
    const InputId w = first_in_order(be_bucket);
    return {w, ((demoted >> w) & 1ULL) != 0
                   ? TrafficClass::GuaranteedLatency
                   : TrafficClass::BestEffort};
  }

  // Only policer-stalled GL requests present.
  return {};
}

void ReferenceOutput::on_grant(InputId input, TrafficClass cls, Cycle now) {
  SSQ_EXPECT(input < radix_);
  SSQ_EXPECT(now >= epoch_base_ && now - epoch_base_ == rt_ &&
             "call advance_to(now) before on_grant()");

  if (bug_ != PlantedBug::LrgNoMoveToBack) {
    // Move to back, shifting the tail down and keeping pos_ (the inverse
    // permutation lrg_rank reads) in step — one pass, no linear search.
    const std::uint32_t p = pos_[input];
    SSQ_ENSURE(order_[p] == input);
    for (std::uint32_t k = p; k + 1 < radix_; ++k) {
      order_[k] = order_[k + 1];
      pos_[order_[k]] = k;
    }
    order_[radix_ - 1] = input;
    pos_[input] = radix_ - 1;
  }

  switch (cls) {
    case TrafficClass::GuaranteedBandwidth: {
      std::uint64_t tick = vtick_[input];
      if (bug_ == PlantedBug::GbVtickOffByOne) ++tick;
      std::uint64_t v = std::max(value_[input], rt_);
      bool saturated = false;
      if (cap_ >= tick && v > cap_ - tick) {
        v = cap_;
        saturated = true;
      } else {
        v += tick;
        if (v >= cap_) {
          v = cap_;
          saturated = true;
        }
      }
      value_[input] = v;
      if (params_.policy != core::CounterPolicy::None &&
          level_of(v) == params_.gb_levels() - 1) {
        saturated = true;
      }
      if (saturated) {
        if (params_.policy == core::CounterPolicy::Halve) {
          for (auto& x : value_) x >>= 1;
        } else if (params_.policy == core::CounterPolicy::Reset) {
          for (auto& x : value_) x = 0;
        }
      }
      break;
    }
    case TrafficClass::GuaranteedLatency:
      if (gl_vtick_ != 0) {
        gl_clock_ = std::max(gl_clock_, static_cast<std::uint64_t>(now)) +
                    gl_vtick_;
      }
      break;
    case TrafficClass::BestEffort:
      break;
  }
}

std::vector<std::uint64_t> ReferenceOutput::lrg_rows() const {
  // order_[k] beats everything at positions > k.
  std::vector<std::uint64_t> rows(radix_, 0);
  std::uint64_t remaining = 0;
  for (InputId i = 0; i < radix_; ++i) remaining |= 1ULL << i;
  for (const InputId who : order_) {
    remaining &= ~(1ULL << who);
    rows[who] = remaining;
  }
  return rows;
}

}  // namespace ssq::check
