// Scenario shrinking — reduce a failing fuzz scenario to a minimal repro.
//
// Greedy delta-debugging to a fixpoint: each pass tries a sequence of
// simplifications (truncate cycles just past the failure, drop whole flows,
// drop fault-plan entries, collapse packet-length ranges, strip optional
// machinery), keeping a candidate only if it still fails the differential
// check. Every candidate is a full deterministic re-run, so the result is a
// scenario that *provably* still reproduces a divergence — typically a
// handful of cycles and one or two flows, small enough to read and to commit
// under tests/golden/ as a regression.
#pragma once

#include <cstdint>

#include "check/scenario.hpp"

namespace ssq::check {

struct ShrinkResult {
  Scenario scenario;       // the minimised repro (still failing)
  RunResult failure;       // the failure the minimised scenario produces
  std::uint32_t attempts = 0;  // candidate runs performed
  std::uint32_t accepted = 0;  // candidates that kept failing (simplifications)
};

/// Shrinks `failing` (which must fail under `opts`; SSQ_EXPECTed). Stops at
/// a fixpoint or after `max_attempts` candidate runs, whichever first.
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const CheckOptions& opts = {},
                                  std::uint32_t max_attempts = 400);

}  // namespace ssq::check
