// DifferentialChecker — lock-step three-way oracle for a running switch.
//
// Attaches an observability probe to a CrossbarSwitch and, from the event
// stream alone, replays every arbitration against two independent models:
//
//   1. ReferenceOutput — the obviously-correct SSVC semantics (per grant:
//      the reference must pick the same winner and class; per output-cycle
//      with requests but no grant: the reference must agree nothing was
//      serviceable).
//   2. circuit::CircuitArbiter — the bit-level precharge/discharge/sense
//      model, fed the reference's thermometer levels and LRG order (per
//      grant: the wires must elect the same winner).
//
// plus per-cycle invariants that hold in every mode, faults included:
// at most one grant per output and per input per cycle, and conservation of
// packets (delivered <= buffered <= created, per flow). In differential mode
// it additionally deep-compares arbiter state every cycle (auxVC values,
// thermometer levels — stored and sensed —, LRG ranks, GL clock, epoch
// real time) and enforces the GL policing bound and counter-cap safety.
//
// The first mismatch is captured as a Divergence with a full state dump of
// both sides; checking stops there so the dump describes the *first* broken
// cycle, not a cascade.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arb/lrg.hpp"
#include "check/reference.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "switch/crossbar.hpp"

namespace ssq::check {

struct CheckOptions {
  /// Reference-model + circuit comparisons. Requires SsvcQos mode with
  /// SingleRequest allocation and no fault injection (faults legitimately
  /// corrupt the state the oracle predicts). Invariants always run.
  bool differential = true;
  /// Third leg: bit-level circuit arbitration per grant (differential only).
  bool circuit = true;
  /// Deep per-cycle arbiter state comparison (differential only).
  bool state_compare = true;
  /// Deliberate defect planted in the reference model (tests only).
  PlantedBug bug = PlantedBug::None;
  /// Attach an online QoS conformance monitor (run_scenario only): GB
  /// share / GL Eq. (1) / BE fairness verdicts are counted into RunResult.
  /// Checks are armed per scenario — GL only under Stall policing, GB only
  /// under a real counter-management policy (see run_scenario).
  bool monitor = false;
  /// Conformance window in cycles. Smaller than ssq_sim's 2048 default:
  /// generated scenarios run only a few thousand cycles, and a campaign's
  /// teeth come from judged windows per scenario.
  Cycle monitor_window = 512;
  /// Flight-recorder ring capacity in events (0 = no recorder). With a
  /// recorder attached, RunResult::flight_dump carries a bounded JSONL
  /// snapshot of the first incident (violation, fault, or divergence).
  std::size_t flight_recorder = 0;
};

struct Divergence {
  Cycle cycle = 0;
  OutputId output = kNoPort;
  std::string kind;    // short machine-greppable tag, e.g. "winner_mismatch"
  std::string detail;  // full human-readable state dump
};

class DifferentialChecker {
 public:
  /// Attaches to `sim` (which must outlive the checker). The checker owns
  /// the probe; attaching replaces any probe already on the switch.
  explicit DifferentialChecker(sw::CrossbarSwitch& sim, CheckOptions opts = {});
  ~DifferentialChecker();
  DifferentialChecker(const DifferentialChecker&) = delete;
  DifferentialChecker& operator=(const DifferentialChecker&) = delete;

  /// Advances the switch one cycle and checks it. Returns false once a
  /// divergence has been recorded (the switch is no longer stepped).
  bool step();

  /// step() up to `cycles` times; returns false if a divergence stopped it.
  bool run(Cycle cycles);

  /// For drivers that call sim.fast_forward() themselves instead of going
  /// through run(): the skipped cycles carried no requests, so a stepped run
  /// would have reset the engine stall streak on every one of them. Call
  /// after any fast_forward() that advanced the clock.
  void on_fast_forward() noexcept { stall_streak_ = 0; }

  [[nodiscard]] const std::optional<Divergence>& divergence() const noexcept {
    return divergence_;
  }
  /// Grants compared against the reference (chained grants included).
  [[nodiscard]] std::uint64_t grants_checked() const noexcept {
    return grants_checked_;
  }
  [[nodiscard]] const CheckOptions& options() const noexcept { return opts_; }
  [[nodiscard]] obs::SwitchProbe& probe() noexcept { return probe_; }

 private:
  struct ForwardSink final : obs::TraceSink {
    DifferentialChecker* self = nullptr;
    void on_event(const obs::Event& e) override { self->handle(e); }
  };

  void handle(const obs::Event& e);
  void check_grant(const obs::Event& e, bool chained);
  void check_circuit(const obs::Event& e, const ReferenceOutput& ref,
                     bool gl_ok);
  void end_cycle(Cycle t);
  void compare_state(Cycle t);
  void fail(Cycle t, OutputId o, std::string kind, std::string detail);
  [[nodiscard]] std::string dump_output_state(OutputId o) const;
  [[nodiscard]] std::string dump_requests(OutputId o) const;

  sw::CrossbarSwitch& sim_;
  CheckOptions opts_;
  ForwardSink sink_;
  obs::Tracer tracer_;
  obs::SwitchProbe probe_;

  std::vector<ReferenceOutput> refs_;             // per output
  std::vector<std::vector<core::ClassRequest>> reqs_;  // per output, this cycle
  std::vector<InputId> granted_;                  // per output, this cycle
  std::vector<std::uint8_t> input_granted_;       // per input, this cycle
  bool single_request_ = false;
  std::uint64_t requesting_inputs_ = 0;           // this cycle (SingleRequest)
  // Progress guard, armed only for matching-engine configs (config.engine):
  // consecutive cycles with >= 1 request but zero grants switch-wide. An
  // honest engine matches at least one eligible pair per cycle (SW-QPS's
  // window gaps are bounded by T + the longest packet), so a streak past the
  // threshold means the engine starves the switch. NOT armed for the classic
  // paths: GL Stall policing under SingleRequest can legitimately hold an
  // output for thousands of cycles.
  bool progress_guard_ = false;
  Cycle stall_streak_ = 0;

  // Packet conservation, per flow.
  std::vector<std::uint64_t> created_, buffered_, delivered_;

  // Circuit leg (constructed only when enabled). The request vector and
  // arbitration trace are reused across every grant check so the per-grant
  // circuit leg stays allocation-free at steady state.
  std::optional<circuit::CircuitArbiter> circuit_;
  std::optional<arb::LrgArbiter> circuit_lrg_;
  std::vector<circuit::CrosspointRequest> creqs_;
  std::optional<circuit::ArbitrationTrace> ctrace_;

  std::optional<Divergence> divergence_;
  std::uint64_t grants_checked_ = 0;
};

}  // namespace ssq::check
