// Fuzz scenarios: a self-contained (config × workload × fault plan × length)
// description that can be generated from a seed, serialised to a small text
// file, replayed deterministically, and shrunk.
//
// The text format extends the workload format (traffic/workload_io) with
// switch-geometry, fault-plan and scrubber directives, so one file is a
// complete repro: `ssq_fuzz --replay=FILE` re-runs the exact failing run.
// Parse errors throw ssq::ConfigError with file:line context.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/scrubber.hpp"
#include "switch/config.hpp"
#include "switch/crossbar.hpp"
#include "traffic/flow.hpp"
#include "traffic/workload.hpp"

namespace ssq::check {

struct Scenario {
  std::string name = "scenario";
  /// Switch seed (injection processes).
  std::uint64_t seed = 0x5eed;
  Cycle cycles = 2000;

  std::uint32_t radix = 8;
  core::SsvcParams ssvc{};
  core::GlPolicing gl_policing = core::GlPolicing::Stall;
  std::uint32_t gl_allowance = 32;
  bool packet_chaining = false;
  std::uint32_t arbitration_cycles = 1;
  /// Matching engine replacing the per-output arbiters (None = the classic
  /// single-request path). Engine scenarios run invariants-only, plus the
  /// checker's progress guard and unrequested-grant checks.
  arb::MatchKind matching_engine = arb::MatchKind::None;
  /// Iteration budget (iSLIP/QPS-r) or window T (SW-QPS).
  std::uint32_t match_iterations = 2;
  sw::GsfConfig gsf{};
  sw::BufferConfig buffers{};

  std::vector<traffic::FlowSpec> flows;
  struct GlReservation {
    OutputId dst = 0;
    double rate = 0.0;
    std::uint32_t packet_len = 1;
  };
  std::vector<GlReservation> gl_reservations;

  fault::FaultPlan faults{};
  /// 0 = no scrubber attached.
  Cycle scrub_interval = 0;

  /// Execution knobs — NOT part of the serialised scenario (a repro file
  /// describes the workload; grants and traces are identical across kernels
  /// and fast-forward by construction, which the determinism tests assert by
  /// sweeping these over the same scenarios).
  core::ArbKernel kernel = core::ArbKernel::Bitsliced;
  bool fast_forward = true;
  /// Compile-time specialized step pipeline (off = fully dynamic pipeline).
  bool specialize = true;

  [[nodiscard]] bool has_faults() const noexcept { return !faults.empty(); }

  /// Switch configuration implied by this scenario: SsvcQos + SingleRequest
  /// (the differential-checkable configuration), or SsvcQos +
  /// IterativeMatching when a matching engine is set. Validates; throws
  /// ssq::ConfigError.
  [[nodiscard]] sw::SwitchConfig build_config() const;
  /// Workload implied by this scenario. Validates; throws ssq::ConfigError.
  [[nodiscard]] traffic::Workload build_workload() const;
  /// Cross-field checks the config/workload validators cannot see (fault
  /// coordinates against the radix). Throws ssq::ConfigError.
  void validate() const;
};

/// Deterministic scenario generator: scenario `index` of the fuzz campaign
/// seeded `base_seed`. Equal arguments yield equal scenarios on every
/// platform. Generated scenarios are always admissible and valid.
[[nodiscard]] Scenario generate_scenario(std::uint64_t index,
                                         std::uint64_t base_seed);

/// Parses the scenario text format; throws ssq::ConfigError with file:line.
[[nodiscard]] Scenario parse_scenario(std::istream& in,
                                      const std::string& name = "<stream>");
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Serialises round-trippably (doubles at full precision).
void write_scenario(std::ostream& out, const Scenario& s);

/// A scenario instantiated and wired: the switch plus its optional fault
/// injector and scrubber, attached in the right order.
struct ScenarioRun {
  std::unique_ptr<sw::CrossbarSwitch> sim;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::StateScrubber> scrubber;
};
[[nodiscard]] ScenarioRun instantiate(const Scenario& s);

struct RunResult {
  bool failed = false;
  Cycle fail_cycle = 0;
  OutputId output = kNoPort;
  std::string kind;
  std::string detail;
  std::uint64_t grants_checked = 0;
  std::uint64_t delivered = 0;
  // Conformance telemetry (CheckOptions::monitor).
  std::uint64_t violations_gb = 0;
  std::uint64_t violations_gl = 0;
  std::uint64_t violations_be = 0;
  std::uint64_t windows_checked = 0;
  /// Bounded JSONL incident snapshot (CheckOptions::flight_recorder):
  /// captured at the first violation or fault, replaced by the divergence
  /// snapshot if the differential checker fails. Empty when nothing fired.
  std::string flight_dump;
};

/// Runs the scenario under a DifferentialChecker (scenarios with faults are
/// checked invariants-only — the checker handles that automatically).
[[nodiscard]] RunResult run_scenario(const Scenario& s,
                                     const CheckOptions& opts = {});

/// Runs a batch of independent scenarios round-robin through one lock-step
/// loop (the campaign/fuzz batch plane; see sw::SwitchBatch for the
/// scheduling and parking discipline). results[i] is byte-identical to
/// run_scenario(scenarios[i], opts): each instance receives exactly the
/// serial step/fast-forward call sequence, only interleaved across
/// instances — which no instance can observe, since they share no state.
[[nodiscard]] std::vector<RunResult> run_scenario_batch(
    std::span<const Scenario> scenarios, const CheckOptions& opts = {});

}  // namespace ssq::check
