#include "check/shrink.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace ssq::check {

namespace {

struct Shrinker {
  const CheckOptions& opts;
  std::uint32_t budget;
  Scenario best;
  RunResult best_failure;
  std::uint32_t attempts = 0;
  std::uint32_t accepted = 0;

  /// Runs `candidate`; adopts it as the new best iff it still fails.
  bool try_adopt(Scenario candidate) {
    if (attempts >= budget) return false;
    ++attempts;
    RunResult r = run_scenario(candidate, opts);
    if (!r.failed) return false;
    ++accepted;
    best = std::move(candidate);
    best_failure = std::move(r);
    return true;
  }

  /// Cut the run just past the recorded failure cycle — the single biggest
  /// reduction, and it re-tightens after every structural simplification.
  void tighten_cycles() {
    const Cycle want = best_failure.fail_cycle + 1;
    if (want < best.cycles) {
      Scenario c = best;
      c.cycles = want;
      try_adopt(std::move(c));
    }
  }

  /// Try removing element `i` of a vector member; true if adopted.
  template <typename T>
  bool drop_one(std::vector<T> Scenario::* member, std::size_t i) {
    Scenario c = best;
    auto& vec = c.*member;
    vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
    return try_adopt(std::move(c));
  }

  template <typename T>
  bool drop_each(std::vector<T> Scenario::* member) {
    bool any = false;
    // Back-to-front so surviving indices stay valid after a removal.
    for (std::size_t i = (best.*member).size(); i-- > 0;) {
      if (attempts >= budget) return any;
      if (drop_one(member, i)) {
        any = true;
        tighten_cycles();
      }
    }
    return any;
  }

  template <typename T>
  bool drop_fault_each(std::vector<T> fault::FaultPlan::* member) {
    bool any = false;
    for (std::size_t i = (best.faults.*member).size(); i-- > 0;) {
      if (attempts >= budget) return any;
      Scenario c = best;
      auto& vec = c.faults.*member;
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_adopt(std::move(c))) {
        any = true;
        tighten_cycles();
      }
    }
    return any;
  }

  bool simplify_flows() {
    bool any = false;
    for (std::size_t i = 0; i < best.flows.size(); ++i) {
      if (attempts >= budget) return any;
      const auto& fl = best.flows[i];
      if (fl.len_max > fl.len_min) {
        Scenario c = best;
        c.flows[i].len_max = c.flows[i].len_min;
        any |= try_adopt(std::move(c));
      }
      if (best.flows[i].len_min > 1) {
        Scenario c = best;
        c.flows[i].len_min = 1;
        c.flows[i].len_max = 1;
        any |= try_adopt(std::move(c));
      }
      if (best.flows[i].start_cycle != 0) {
        Scenario c = best;
        c.flows[i].start_cycle = 0;
        any |= try_adopt(std::move(c));
      }
      // Collapse the injection process to a small burst at cycle 0: the
      // simplest possible source, and it drags the first grant — hence the
      // divergence — to the front of the run so tighten_cycles() can bite.
      const auto& cur = best.flows[i];
      if (cur.inject != traffic::InjectKind::BurstOnce ||
          cur.burst_start != 0 || cur.burst_packets > 4) {
        Scenario c = best;
        auto& g = c.flows[i];
        g.inject = traffic::InjectKind::BurstOnce;
        g.inject_rate = 0.0;
        g.burst_start = 0;
        g.burst_packets = 4;
        if (try_adopt(std::move(c))) {
          any = true;
          tighten_cycles();
        }
      }
    }
    return any;
  }

  bool strip_options() {
    bool any = false;
    auto try_flag = [&](auto mutate) {
      if (attempts >= budget) return;
      Scenario c = best;
      mutate(c);
      any |= try_adopt(std::move(c));
    };
    if (best.gsf.enabled) try_flag([](Scenario& c) { c.gsf.enabled = false; });
    if (best.matching_engine != arb::MatchKind::None) {
      // Engine-independent failures (conservation, double grants) shrink to
      // the classic path; engine-specific ones keep the engine but try the
      // smallest iteration budget.
      try_flag([](Scenario& c) { c.matching_engine = arb::MatchKind::None; });
      if (best.match_iterations > 1) {
        try_flag([](Scenario& c) { c.match_iterations = 1; });
      }
    }
    if (best.packet_chaining) {
      try_flag([](Scenario& c) { c.packet_chaining = false; });
    }
    if (best.arbitration_cycles > 1) {
      try_flag([](Scenario& c) { c.arbitration_cycles = 1; });
    }
    if (best.scrub_interval != 0) {
      try_flag([](Scenario& c) { c.scrub_interval = 0; });
    }
    if (best.faults.bitflip_rate > 0.0) {
      try_flag([](Scenario& c) { c.faults.bitflip_rate = 0.0; });
    }
    return any;
  }

  void run() {
    tighten_cycles();
    bool progressed = true;
    while (progressed && attempts < budget) {
      progressed = false;
      progressed |= drop_each(&Scenario::flows);
      progressed |= drop_fault_each(&fault::FaultPlan::stuck_lanes);
      progressed |= drop_fault_each(&fault::FaultPlan::port_kills);
      progressed |= drop_fault_each(&fault::FaultPlan::crosspoint_kills);
      progressed |= strip_options();
      progressed |= drop_each(&Scenario::gl_reservations);
      progressed |= simplify_flows();
      tighten_cycles();
    }
  }
};

}  // namespace

ShrinkResult shrink(const Scenario& failing, const CheckOptions& opts,
                    std::uint32_t max_attempts) {
  RunResult first = run_scenario(failing, opts);
  SSQ_EXPECT(first.failed && "shrink() needs a scenario that actually fails");
  Shrinker sh{opts, max_attempts, failing, std::move(first)};
  sh.run();
  ShrinkResult out;
  out.scenario = std::move(sh.best);
  out.scenario.name = failing.name + "-min";
  out.failure = std::move(sh.best_failure);
  out.attempts = sh.attempts;
  out.accepted = sh.accepted;
  return out;
}

}  // namespace ssq::check
