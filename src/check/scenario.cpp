#include "check/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>

#include "obs/conformance.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "switch/observe.hpp"

namespace ssq::check {

namespace {

[[noreturn]] void parse_fail(const std::string& name, int line,
                             const std::string& what) {
  throw ssq::ConfigError("scenario parse error at " + name + ":" +
                         std::to_string(line) + ": " + what);
}

struct FieldMap {
  std::vector<std::pair<std::string, std::string>> kv;
  const std::string& file;
  int line;

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string require(std::string_view key) const {
    auto v = get(key);
    if (!v) parse_fail(file, line, "missing field '" + std::string(key) + "'");
    return *v;
  }

  [[nodiscard]] double number(std::string_view key, double fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    char* end = nullptr;
    const double x = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      parse_fail(file, line,
                 "field '" + std::string(key) + "' is not a number: " + *v);
    }
    return x;
  }

  /// Exact 64-bit parse — seeds do not survive a double round-trip.
  [[nodiscard]] std::uint64_t u64(std::string_view key,
                                  std::uint64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    char* end = nullptr;
    const std::uint64_t x = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      parse_fail(file, line,
                 "field '" + std::string(key) + "' is not an integer: " + *v);
    }
    return x;
  }
};

FieldMap parse_fields(const std::vector<std::string>& tokens,
                      const std::string& file, int line) {
  FieldMap map{.kv = {}, .file = file, .line = line};
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto eq = tokens[t].find('=');
    if (eq == std::string::npos || eq == 0) {
      parse_fail(file, line, "expected key=value, got '" + tokens[t] + "'");
    }
    map.kv.push_back({tokens[t].substr(0, eq), tokens[t].substr(eq + 1)});
  }
  return map;
}

TrafficClass parse_class(const std::string& s, const std::string& file,
                         int line) {
  if (s == "be") return TrafficClass::BestEffort;
  if (s == "gb") return TrafficClass::GuaranteedBandwidth;
  if (s == "gl") return TrafficClass::GuaranteedLatency;
  parse_fail(file, line, "unknown class '" + s + "' (be|gb|gl)");
}

traffic::InjectKind parse_inject(const std::string& s, const std::string& file,
                                 int line) {
  if (s == "bernoulli") return traffic::InjectKind::Bernoulli;
  if (s == "onoff") return traffic::InjectKind::OnOff;
  if (s == "periodic") return traffic::InjectKind::Periodic;
  if (s == "burst") return traffic::InjectKind::BurstOnce;
  parse_fail(file, line,
             "unknown inject '" + s + "' (bernoulli|onoff|periodic|burst)");
}

core::CounterPolicy parse_policy(const std::string& s, const std::string& file,
                                 int line) {
  if (s == "subtract_real_clock") return core::CounterPolicy::SubtractRealClock;
  if (s == "halve") return core::CounterPolicy::Halve;
  if (s == "reset") return core::CounterPolicy::Reset;
  if (s == "none") return core::CounterPolicy::None;
  parse_fail(file, line, "unknown policy '" + s +
                             "' (subtract_real_clock|halve|reset|none)");
}

core::GlPolicing parse_policing(const std::string& s, const std::string& file,
                                int line) {
  if (s == "stall") return core::GlPolicing::Stall;
  if (s == "demote") return core::GlPolicing::Demote;
  if (s == "none") return core::GlPolicing::None;
  parse_fail(file, line, "unknown policing '" + s + "' (stall|demote|none)");
}

const char* class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::BestEffort: return "be";
    case TrafficClass::GuaranteedBandwidth: return "gb";
    case TrafficClass::GuaranteedLatency: return "gl";
  }
  return "?";
}

const char* inject_name(traffic::InjectKind k) {
  switch (k) {
    case traffic::InjectKind::Bernoulli: return "bernoulli";
    case traffic::InjectKind::OnOff: return "onoff";
    case traffic::InjectKind::Periodic: return "periodic";
    case traffic::InjectKind::BurstOnce: return "burst";
    case traffic::InjectKind::Trace: return "trace";
  }
  return "?";
}

}  // namespace

sw::SwitchConfig Scenario::build_config() const {
  sw::SwitchConfig config;
  config.radix = radix;
  config.ssvc = ssvc;
  config.buffers = buffers;
  config.mode = sw::ArbitrationMode::SsvcQos;
  config.allocation = matching_engine == arb::MatchKind::None
                          ? sw::AllocationMode::SingleRequest
                          : sw::AllocationMode::IterativeMatching;
  config.engine = matching_engine;
  config.match_iterations = match_iterations;
  config.gl_policing = gl_policing;
  config.gl_allowance_packets = gl_allowance;
  config.gsf = gsf;
  config.arbitration_cycles = arbitration_cycles;
  config.packet_chaining = packet_chaining;
  config.seed = seed;
  config.kernel = kernel;
  config.fast_forward = fast_forward;
  config.specialize = specialize;
  config.validate();
  return config;
}

traffic::Workload Scenario::build_workload() const {
  traffic::Workload w(radix);
  for (const auto& f : flows) w.add_flow(f);
  for (const auto& g : gl_reservations) {
    detail::config_check(g.dst < radix,
                         "gl reservation dst out of range for this radix");
    w.set_gl_reservation(g.dst, g.rate, g.packet_len);
  }
  w.validate();
  return w;
}

void Scenario::validate() const {
  detail::config_check(cycles >= 1, "scenario cycles must be >= 1");
  for (const auto& sl : faults.stuck_lanes) {
    detail::config_check(sl.output < radix, "stuck lane output out of range");
    detail::config_check(sl.lane < ssvc.gb_levels(),
                         "stuck lane index out of range for level_bits");
  }
  for (const auto& pk : faults.port_kills) {
    detail::config_check(pk.input < radix, "port kill input out of range");
  }
  for (const auto& ck : faults.crosspoint_kills) {
    detail::config_check(ck.input < radix && ck.output < radix,
                         "crosspoint kill coordinates out of range");
  }
}

Scenario generate_scenario(std::uint64_t index, std::uint64_t base_seed) {
  Rng rng(base_seed + 0x9e3779b97f4a7c15ULL * (index + 1));
  Scenario s;
  s.name = "gen-" + std::to_string(base_seed) + "-" + std::to_string(index);
  s.seed = rng();

  // Radix: mostly small (fast), occasionally the paper's 64-port far end.
  const std::uint64_t roll = rng.below(100);
  if (roll < 55) {
    s.radix = 4 + static_cast<std::uint32_t>(rng.below(13));  // 4..16
  } else if (roll < 75) {
    s.radix = 8;
  } else if (roll < 85) {
    s.radix = 2 + static_cast<std::uint32_t>(rng.below(2));  // 2..3
  } else if (roll < 95) {
    s.radix = 32;
  } else {
    s.radix = 64;
  }
  if (s.radix <= 16) {
    s.cycles = 1200 + rng.below(1800);
  } else if (s.radix <= 32) {
    s.cycles = 600 + rng.below(600);
  } else {
    s.cycles = 400 + rng.below(300);
  }

  s.ssvc.level_bits = 2 + static_cast<std::uint32_t>(rng.below(3));
  s.ssvc.lsb_bits = 4 + static_cast<std::uint32_t>(rng.below(5));
  s.ssvc.vtick_bits = 6 + static_cast<std::uint32_t>(rng.below(5));
  s.ssvc.vtick_shift = static_cast<std::uint32_t>(rng.below(4));
  s.ssvc.policy = static_cast<core::CounterPolicy>(rng.below(4));

  const std::uint64_t pol = rng.below(10);
  s.gl_policing = pol < 5   ? core::GlPolicing::Stall
                  : pol < 8 ? core::GlPolicing::Demote
                            : core::GlPolicing::None;
  s.gl_allowance = 1 + static_cast<std::uint32_t>(rng.below(48));
  s.packet_chaining = rng.bernoulli(0.25);
  s.arbitration_cycles = rng.bernoulli(0.2) ? 2 : 1;
  if (rng.bernoulli(0.15)) {
    s.gsf.enabled = true;
    s.gsf.frame_cycles = 128 + rng.below(256);
    s.gsf.barrier_cycles = 4 + rng.below(12);
  }
  s.buffers.be_flits = 8 + static_cast<std::uint32_t>(rng.below(24));
  s.buffers.gb_flits_per_output = 8 + static_cast<std::uint32_t>(rng.below(24));
  s.buffers.gl_flits = 4 + static_cast<std::uint32_t>(rng.below(12));

  // Flows: admissible by construction. Per-output GB budget of 0.85 leaves
  // room for a GL reservation of at most 0.11 (total <= 0.96 < 1).
  std::vector<double> budget(s.radix, 0.85);
  std::vector<bool> has_gl(s.radix, false);
  const std::uint64_t n_flows =
      2 + rng.below(std::min<std::uint64_t>(2 * s.radix, 22));
  for (std::uint64_t k = 0; k < n_flows; ++k) {
    traffic::FlowSpec f;
    f.src = static_cast<InputId>(rng.below(s.radix));
    f.dst = static_cast<OutputId>(rng.below(s.radix));
    f.len_min = 1 + static_cast<std::uint32_t>(rng.below(6));
    f.len_max = f.len_min + static_cast<std::uint32_t>(rng.below(6));

    const std::uint64_t kind = rng.below(12);
    if (kind >= 11) {
      f.inject = traffic::InjectKind::BurstOnce;
      f.burst_start = rng.below(std::max<Cycle>(s.cycles / 2, 1));
      f.burst_packets = 1 + static_cast<std::uint32_t>(rng.below(20));
    } else {
      f.inject = kind < 5   ? traffic::InjectKind::Bernoulli
                 : kind < 8 ? traffic::InjectKind::OnOff
                            : traffic::InjectKind::Periodic;
      f.inject_rate = 0.02 + rng.uniform() * 0.4;
      f.mean_on_cycles = 40.0 + rng.uniform() * 160.0;
      f.mean_off_cycles = 40.0 + rng.uniform() * 160.0;
    }
    if (rng.bernoulli(0.2)) f.start_cycle = rng.below(s.cycles / 2 + 1);

    const std::uint64_t cls = rng.below(10);
    if (cls >= 5 && cls < 8 && budget[f.dst] > 0.15) {
      // GB, crosspoint-exclusive, within the output's remaining budget.
      bool taken = false;
      for (const auto& e : s.flows) {
        if (e.cls == TrafficClass::GuaranteedBandwidth && e.src == f.src &&
            e.dst == f.dst) {
          taken = true;
        }
      }
      if (!taken) {
        f.cls = TrafficClass::GuaranteedBandwidth;
        const double room = std::min(budget[f.dst] - 0.05, 0.45);
        f.reserved_rate = 0.05 + rng.uniform() * room;
        budget[f.dst] -= f.reserved_rate;
      }
    } else if (cls >= 8) {
      f.cls = TrafficClass::GuaranteedLatency;
      f.len_min = f.len_max = 1 + static_cast<std::uint32_t>(rng.below(2));
      f.inject = traffic::InjectKind::Bernoulli;
      // Mostly compliant senders; sometimes an abuser to exercise policing.
      f.inject_rate = rng.bernoulli(0.3) ? 0.1 + rng.uniform() * 0.3
                                         : 0.005 + rng.uniform() * 0.04;
      has_gl[f.dst] = true;
    }
    // A packet longer than its class buffer can never be admitted and
    // wedges the queue behind it forever (the conformance monitor rightly
    // reads that as starvation). Clamp: generated packets must fit.
    const std::uint32_t buf_cap =
        f.cls == TrafficClass::GuaranteedBandwidth
            ? s.buffers.gb_flits_per_output
            : f.cls == TrafficClass::GuaranteedLatency ? s.buffers.gl_flits
                                                       : s.buffers.be_flits;
    f.len_max = std::min(f.len_max, buf_cap);
    f.len_min = std::min(f.len_min, f.len_max);
    s.flows.push_back(f);
  }
  for (OutputId o = 0; o < s.radix; ++o) {
    // Usually reserve GL bandwidth where GL flows exist; occasionally leave
    // the tracker disabled (GL then rides its priority unpoliced).
    if (has_gl[o] && rng.bernoulli(0.85)) {
      s.gl_reservations.push_back(
          {o, 0.02 + static_cast<double>(rng.below(9)) / 100.0, 1});
    }
  }

  // ~1 in 5 scenarios carries a fault plan (checked invariants-only).
  if (rng.bernoulli(0.2)) {
    s.faults.seed = rng();
    if (rng.bernoulli(0.7)) {
      s.faults.bitflip_rate = 0.0001 + rng.uniform() * 0.003;
    }
    if (rng.bernoulli(0.4)) {
      s.faults.stuck_lanes.push_back(
          {static_cast<OutputId>(rng.below(s.radix)),
           static_cast<std::uint32_t>(rng.below(s.ssvc.gb_levels())),
           rng.bernoulli(0.5), rng.below(s.cycles / 2 + 1)});
    }
    if (rng.bernoulli(0.3)) {
      const Cycle at = rng.below(s.cycles / 2 + 1);
      s.faults.port_kills.push_back(
          {static_cast<InputId>(rng.below(s.radix)), at,
           rng.bernoulli(0.3) ? kNoCycle : at + 1 + rng.below(s.cycles / 2)});
    }
    if (rng.bernoulli(0.3)) {
      const Cycle at = rng.below(s.cycles / 2 + 1);
      s.faults.crosspoint_kills.push_back(
          {static_cast<InputId>(rng.below(s.radix)),
           static_cast<OutputId>(rng.below(s.radix)), at,
           rng.bernoulli(0.3) ? kNoCycle : at + 1 + rng.below(s.cycles / 2)});
    }
    if (s.has_faults() && rng.bernoulli(0.6)) {
      s.scrub_interval = 64 + rng.below(512);
    }
  }

  // ~1 in 4 scenarios swaps the arbiters for a matching engine (checked
  // invariants-only plus the progress guard). Sampled LAST so the draw
  // sequence — and thus every scenario generated before this knob existed —
  // is unchanged for the classic path.
  const std::uint64_t eng = rng.below(16);
  if (eng >= 12) {
    s.matching_engine = eng == 12   ? arb::MatchKind::Islip
                        : eng == 13 ? arb::MatchKind::Qps
                        : eng == 14 ? arb::MatchKind::SwQps
                                    : arb::MatchKind::Ssvc;
    s.match_iterations = 1 + static_cast<std::uint32_t>(rng.below(4));
    s.packet_chaining = false;  // engines bypass the arbiters chaining charges
  }
  return s;
}

Scenario parse_scenario(std::istream& in, const std::string& name) {
  Scenario s;
  bool seen_scenario = false;
  bool seen_radix = false;
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    for (std::string tok; ls >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head == "radix") {
      // Positional form (`radix 8`), matching the workload-file idiom —
      // handled before the key=value FieldMap is built.
      if (tokens.size() != 2) parse_fail(name, line_no, "radix <N>");
      const long radix = std::atol(tokens[1].c_str());
      if (radix < 2 || radix > 64) {
        parse_fail(name, line_no, "radix out of range [2,64]");
      }
      s.radix = static_cast<std::uint32_t>(radix);
      seen_radix = true;
      continue;
    }
    const FieldMap f = parse_fields(tokens, name, line_no);

    if (head == "scenario") {
      seen_scenario = true;
      s.name = f.get("name").value_or(s.name);
      s.seed = f.u64("seed", s.seed);
      s.cycles = f.u64("cycles", s.cycles);
    } else if (head == "ssvc") {
      s.ssvc.level_bits = static_cast<std::uint32_t>(
          f.u64("level_bits", s.ssvc.level_bits));
      s.ssvc.lsb_bits =
          static_cast<std::uint32_t>(f.u64("lsb_bits", s.ssvc.lsb_bits));
      s.ssvc.vtick_bits =
          static_cast<std::uint32_t>(f.u64("vtick_bits", s.ssvc.vtick_bits));
      s.ssvc.vtick_shift =
          static_cast<std::uint32_t>(f.u64("vtick_shift", s.ssvc.vtick_shift));
      if (auto p = f.get("policy")) {
        s.ssvc.policy = parse_policy(*p, name, line_no);
      }
    } else if (head == "switch") {
      if (auto p = f.get("policing")) {
        s.gl_policing = parse_policing(*p, name, line_no);
      }
      s.gl_allowance =
          static_cast<std::uint32_t>(f.u64("allowance", s.gl_allowance));
      s.packet_chaining = f.u64("chaining", s.packet_chaining ? 1 : 0) != 0;
      s.arbitration_cycles = static_cast<std::uint32_t>(
          f.u64("arb_cycles", s.arbitration_cycles));
    } else if (head == "match") {
      const std::string eng = f.require("engine");
      try {
        s.matching_engine = arb::parse_match_kind(eng);
      } catch (const ssq::ConfigError&) {
        parse_fail(name, line_no,
                   "unknown engine '" + eng +
                       "' (islip|qps|swqps|ssvc|starve|none)");
      }
      s.match_iterations =
          static_cast<std::uint32_t>(f.u64("iters", s.match_iterations));
    } else if (head == "gsf") {
      s.gsf.enabled = true;
      s.gsf.frame_cycles = f.u64("frame", s.gsf.frame_cycles);
      s.gsf.barrier_cycles = f.u64("barrier", s.gsf.barrier_cycles);
    } else if (head == "buffers") {
      s.buffers.be_flits =
          static_cast<std::uint32_t>(f.u64("be", s.buffers.be_flits));
      s.buffers.gb_flits_per_output = static_cast<std::uint32_t>(
          f.u64("gb", s.buffers.gb_flits_per_output));
      s.buffers.gl_flits =
          static_cast<std::uint32_t>(f.u64("gl", s.buffers.gl_flits));
    } else if (head == "flow") {
      if (!seen_radix) {
        parse_fail(name, line_no, "'radix' must come before 'flow'");
      }
      traffic::FlowSpec spec;
      spec.src = static_cast<InputId>(f.u64("src", kNoPort));
      spec.dst = static_cast<OutputId>(f.u64("dst", kNoPort));
      if (spec.src == kNoPort || spec.dst == kNoPort) {
        parse_fail(name, line_no, "flow needs src= and dst=");
      }
      spec.cls = parse_class(f.get("class").value_or("be"), name, line_no);
      spec.reserved_rate = f.number("rate", 0.0);
      const auto len = static_cast<std::uint32_t>(f.u64("len", 1));
      spec.len_min = static_cast<std::uint32_t>(f.u64("len_min", len));
      spec.len_max = static_cast<std::uint32_t>(f.u64("len_max", len));
      spec.inject =
          parse_inject(f.get("inject").value_or("bernoulli"), name, line_no);
      spec.inject_rate = f.number("load", 0.0);
      spec.mean_on_cycles = f.number("on", 64.0);
      spec.mean_off_cycles = f.number("off", 64.0);
      spec.burst_start = f.u64("burst_start", 0);
      spec.burst_packets =
          static_cast<std::uint32_t>(f.u64("burst_packets", 0));
      spec.start_cycle = f.u64("start", 0);
      s.flows.push_back(spec);
    } else if (head == "glres") {
      s.gl_reservations.push_back(
          {static_cast<OutputId>(f.u64("dst", 0)),
           f.number("rate", 0.0),
           static_cast<std::uint32_t>(f.u64("len", 1))});
      if (s.gl_reservations.back().rate <= 0.0) {
        parse_fail(name, line_no, "glres needs rate > 0");
      }
    } else if (head == "fault") {
      s.faults.seed = f.u64("seed", s.faults.seed);
      s.faults.bitflip_rate = f.number("bitflip", s.faults.bitflip_rate);
    } else if (head == "fault_stuck") {
      s.faults.stuck_lanes.push_back(
          {static_cast<OutputId>(f.u64("output", 0)),
           static_cast<std::uint32_t>(f.u64("lane", 0)),
           f.u64("high", 1) != 0, f.u64("at", 0)});
    } else if (head == "fault_killport") {
      s.faults.port_kills.push_back({static_cast<InputId>(f.u64("input", 0)),
                                     f.u64("at", 0),
                                     f.u64("restore", kNoCycle)});
    } else if (head == "fault_killxp") {
      s.faults.crosspoint_kills.push_back(
          {static_cast<InputId>(f.u64("input", 0)),
           static_cast<OutputId>(f.u64("output", 0)), f.u64("at", 0),
           f.u64("restore", kNoCycle)});
    } else if (head == "scrub") {
      s.scrub_interval = f.u64("interval", 0);
      if (s.scrub_interval == 0) {
        parse_fail(name, line_no, "scrub needs interval >= 1");
      }
    } else {
      parse_fail(name, line_no, "unknown directive '" + head + "'");
    }
  }
  if (!seen_scenario) parse_fail(name, line_no, "missing 'scenario' line");
  if (!seen_radix) parse_fail(name, line_no, "missing 'radix' line");
  // Surface config errors with the file name attached.
  try {
    s.validate();
    (void)s.build_config();
    (void)s.build_workload();
  } catch (const ssq::ConfigError& e) {
    throw ssq::ConfigError("scenario '" + name + "': " + e.what());
  }
  return s;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ssq::ConfigError("cannot open scenario file '" + path + "'");
  }
  return parse_scenario(in, path);
}

void write_scenario(std::ostream& out, const Scenario& s) {
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "scenario name=" << s.name << " seed=" << s.seed
      << " cycles=" << s.cycles << "\n";
  out << "radix " << s.radix << "\n";
  out << "ssvc level_bits=" << s.ssvc.level_bits
      << " lsb_bits=" << s.ssvc.lsb_bits << " vtick_bits=" << s.ssvc.vtick_bits
      << " vtick_shift=" << s.ssvc.vtick_shift
      << " policy=" << core::to_string(s.ssvc.policy) << "\n";
  out << "switch policing=" << core::to_string(s.gl_policing)
      << " allowance=" << s.gl_allowance
      << " chaining=" << (s.packet_chaining ? 1 : 0)
      << " arb_cycles=" << s.arbitration_cycles << "\n";
  if (s.matching_engine != arb::MatchKind::None) {
    out << "match engine=" << arb::match_kind_name(s.matching_engine)
        << " iters=" << s.match_iterations << "\n";
  }
  if (s.gsf.enabled) {
    out << "gsf frame=" << s.gsf.frame_cycles
        << " barrier=" << s.gsf.barrier_cycles << "\n";
  }
  out << "buffers be=" << s.buffers.be_flits
      << " gb=" << s.buffers.gb_flits_per_output
      << " gl=" << s.buffers.gl_flits << "\n";
  for (const auto& fl : s.flows) {
    out << "flow src=" << fl.src << " dst=" << fl.dst
        << " class=" << class_name(fl.cls);
    if (fl.cls == TrafficClass::GuaranteedBandwidth) {
      out << " rate=" << fl.reserved_rate;
    }
    out << " len_min=" << fl.len_min << " len_max=" << fl.len_max
        << " inject=" << inject_name(fl.inject);
    switch (fl.inject) {
      case traffic::InjectKind::Bernoulli:
      case traffic::InjectKind::Periodic:
        out << " load=" << fl.inject_rate;
        break;
      case traffic::InjectKind::OnOff:
        out << " load=" << fl.inject_rate << " on=" << fl.mean_on_cycles
            << " off=" << fl.mean_off_cycles;
        break;
      case traffic::InjectKind::BurstOnce:
        out << " burst_start=" << fl.burst_start
            << " burst_packets=" << fl.burst_packets;
        break;
      case traffic::InjectKind::Trace:
        break;  // not serialised (the fuzzer never generates traces)
    }
    if (fl.start_cycle != 0) out << " start=" << fl.start_cycle;
    out << "\n";
  }
  for (const auto& g : s.gl_reservations) {
    out << "glres dst=" << g.dst << " rate=" << g.rate
        << " len=" << g.packet_len << "\n";
  }
  if (s.has_faults()) {
    out << "fault seed=" << s.faults.seed;
    if (s.faults.bitflip_rate > 0.0) {
      out << " bitflip=" << s.faults.bitflip_rate;
    }
    out << "\n";
    for (const auto& sl : s.faults.stuck_lanes) {
      out << "fault_stuck output=" << sl.output << " lane=" << sl.lane
          << " high=" << (sl.stuck_high ? 1 : 0) << " at=" << sl.at << "\n";
    }
    for (const auto& pk : s.faults.port_kills) {
      out << "fault_killport input=" << pk.input << " at=" << pk.at;
      if (pk.restore_at != kNoCycle) out << " restore=" << pk.restore_at;
      out << "\n";
    }
    for (const auto& ck : s.faults.crosspoint_kills) {
      out << "fault_killxp input=" << ck.input << " output=" << ck.output
          << " at=" << ck.at;
      if (ck.restore_at != kNoCycle) out << " restore=" << ck.restore_at;
      out << "\n";
    }
  }
  if (s.scrub_interval != 0) {
    out << "scrub interval=" << s.scrub_interval << "\n";
  }
  out.precision(old_precision);
}

ScenarioRun instantiate(const Scenario& s) {
  s.validate();
  ScenarioRun run;
  run.sim = std::make_unique<sw::CrossbarSwitch>(s.build_config(),
                                                 s.build_workload());
  if (s.has_faults()) {
    run.injector = std::make_unique<fault::FaultInjector>(s.faults);
    run.sim->attach_fault_injector(run.injector.get());
  }
  if (s.scrub_interval != 0) {
    run.scrubber = std::make_unique<fault::StateScrubber>(s.scrub_interval);
    run.sim->attach_scrubber(run.scrubber.get());
  }
  return run;
}

namespace {

/// EngineStarve is a harness plant, not a reference defect: the starving
/// engine IS the bug. Swap it into the scenario and check clean — the
/// progress guard must call starvation. Repro files stay engine-honest and
/// shrink flows through this same transform.
void apply_engine_starve(Scenario& s, CheckOptions& opts) {
  if (opts.bug != PlantedBug::EngineStarve) return;
  s.matching_engine = arb::MatchKind::Starve;
  s.packet_chaining = false;
  opts.bug = PlantedBug::None;
}

/// One in-flight scenario: the rig, checker and monitor plumbing of
/// run_scenario, advanced one run-loop iteration at a time so a batch can
/// interleave many of them. Not movable once prepared (the checker holds
/// the switch's address and the probe holds the tee's).
struct ScenarioExec {
  ScenarioRun rig;
  std::unique_ptr<DifferentialChecker> checker;
  RunResult result;
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::ConformanceMonitor> monitor;
  obs::TeeSink tee;
  Cycle end = 0;
  bool done = false;

  void prepare(const Scenario& s, const CheckOptions& opts) {
    rig = instantiate(s);
    checker = std::make_unique<DifferentialChecker>(*rig.sim, opts);
    if (opts.flight_recorder > 0) {
      // Added first so the ring already holds the triggering event when a
      // monitor callback captures the dump.
      recorder = std::make_unique<obs::FlightRecorder>(opts.flight_recorder);
      tee.add(recorder.get());
    }
    if (opts.monitor) {
      obs::ConformanceConfig cfg = sw::make_conformance_config(
          rig.sim->config(), rig.sim->workload(), opts.monitor_window);
      // Eq. (1) presumes the policer keeps GL arrivals inside the reserved
      // envelope — only Stall enforces that (and the monitor's stall-skip
      // removes the policer's own delays from the judged waits). GB share
      // under CounterPolicy::None is not judged either: unbounded counters
      // stop differentiating flows by design once they clamp.
      // A matching engine bypasses the QoS arbiters entirely, so the
      // GB-share and GL-latency guarantees the monitor judges do not apply.
      cfg.check_gl = s.gl_policing == core::GlPolicing::Stall &&
                     s.matching_engine == arb::MatchKind::None;
      cfg.check_gb = s.ssvc.policy != core::CounterPolicy::None &&
                     s.matching_engine == arb::MatchKind::None;
      monitor = std::make_unique<obs::ConformanceMonitor>(std::move(cfg));
      if (recorder != nullptr) {
        obs::FlightRecorder* rec = recorder.get();
        RunResult* res = &result;
        monitor->set_on_violation([rec, res](const obs::Violation& v) {
          if (res->flight_dump.empty()) {
            res->flight_dump = rec->dump_string(
                "violation:" + std::string(obs::to_string(v.kind)), v.cycle);
          }
        });
        monitor->set_on_fault([rec, res](const obs::Event& e) {
          if (res->flight_dump.empty()) {
            res->flight_dump = rec->dump_string("fault", e.cycle);
          }
        });
      }
      tee.add(monitor.get());
    }
    if (tee.size() > 0) checker->probe().set_extra_sink(&tee);
    end = rig.sim->now() + s.cycles;
  }

  /// One iteration of the serial DifferentialChecker::run() loop. Returns
  /// false once the horizon is reached or a divergence stopped the run.
  bool round() {
    if (done) return false;
    sw::CrossbarSwitch& sim = *rig.sim;
    if (sim.now() >= end) {
      done = true;
      return false;
    }
    if (!checker->divergence().has_value() && sim.fast_forward_eligible() &&
        sim.quiescent()) {
      const Cycle from = sim.now();
      sim.fast_forward(end);
      if (sim.now() > from) checker->on_fast_forward();
      if (sim.now() >= end) {
        done = true;
        return false;
      }
    }
    if (!checker->step()) {
      done = true;
      return false;
    }
    return true;
  }

  void finish() {
    result.grants_checked = checker->grants_checked();
    for (FlowId f = 0; f < rig.sim->workload().num_flows(); ++f) {
      result.delivered += rig.sim->delivered_packets(f);
    }
    if (monitor != nullptr) {
      monitor->finalize(rig.sim->now());
      result.violations_gb = monitor->violations(obs::ViolationKind::GbShare);
      result.violations_gl =
          monitor->violations(obs::ViolationKind::GlLatency);
      result.violations_be =
          monitor->violations(obs::ViolationKind::BeStarvation);
      result.windows_checked = monitor->windows_total();
    }
    if (checker->divergence().has_value()) {
      const Divergence& d = *checker->divergence();
      result.failed = true;
      result.fail_cycle = d.cycle;
      result.output = d.output;
      result.kind = d.kind;
      result.detail = d.detail;
      if (recorder != nullptr) {
        // The divergence moment is THE incident; it supersedes any earlier
        // violation/fault snapshot.
        result.flight_dump =
            recorder->dump_string("divergence:" + d.kind, d.cycle);
      }
    }
  }
};

}  // namespace

RunResult run_scenario(const Scenario& s, const CheckOptions& opts) {
  Scenario run = s;
  CheckOptions o = opts;
  apply_engine_starve(run, o);
  ScenarioExec exec;
  exec.prepare(run, o);
  while (exec.round()) {
  }
  exec.finish();
  return std::move(exec.result);
}

std::vector<RunResult> run_scenario_batch(std::span<const Scenario> scenarios,
                                          const CheckOptions& opts) {
  const std::size_t n = scenarios.size();
  // unique_ptr: a prepared exec is address-pinned (see ScenarioExec).
  std::vector<std::unique_ptr<ScenarioExec>> execs;
  execs.reserve(n);
  for (const Scenario& s : scenarios) {
    Scenario run = s;
    CheckOptions o = opts;
    apply_engine_starve(run, o);
    execs.push_back(std::make_unique<ScenarioExec>());
    execs.back()->prepare(run, o);
  }
  // Lock-step round-robin with fast-forward parking, exactly as
  // sw::SwitchBatch schedules bare switches: each round advances the
  // instances sitting at the batch-minimum clock; instances that jumped
  // ahead park until the clock catches up. Each visit advances its instance
  // by a stride of cycles, not a single step: instances share no state, so
  // ANY interleaving granularity hands every instance the exact serial call
  // sequence — a coarser grain just keeps the instance's working set hot in
  // cache while the stride bound keeps the batch skew from growing without
  // limit.
  constexpr Cycle kStride = 256;
  std::vector<std::size_t> hot;
  for (std::size_t i = 0; i < n; ++i) hot.push_back(i);
  while (!hot.empty()) {
    Cycle clock = kNoCycle;
    for (const std::size_t i : hot) {
      if (execs[i]->rig.sim->now() < clock) clock = execs[i]->rig.sim->now();
    }
    const Cycle horizon = clock + kStride;
    std::size_t w = 0;
    for (const std::size_t i : hot) {
      ScenarioExec& e = *execs[i];
      if (e.rig.sim->now() > horizon) {
        hot[w++] = i;  // parked (fast-forward jumped it ahead of the pack)
        continue;
      }
      bool alive = true;
      while (alive && e.rig.sim->now() <= horizon) alive = e.round();
      if (alive) hot[w++] = i;
    }
    hot.resize(w);
  }
  std::vector<RunResult> results;
  results.reserve(n);
  for (auto& e : execs) {
    e->finish();
    results.push_back(std::move(e->result));
  }
  return results;
}

}  // namespace ssq::check
