// Deliberately simple reference model of SSVC output-arbitration semantics.
//
// This is the *oracle* half of the differential-testing harness (paper §4.1:
// the authors verified the inhibit circuit against "the true winner based on
// an auxVC value comparison" — this class is that comparison, extended to
// the full three-class semantics). It trades every optimisation the
// production code makes for obviousness:
//
//   * virtual clocks are plain uint64 values updated by one assignment,
//     with no thermometer codes, parity bits or incremental shift logic;
//   * the LRG state is an explicit order vector (front = least recently
//     granted) instead of an N×N beats matrix;
//   * the GL policer is a single compare against now + vtick * allowance.
//
// DifferentialChecker steps one ReferenceOutput per output channel in
// lock-step with core::OutputQosArbiter (and, through the reference's
// levels + order, with circuit::CircuitArbiter) and flags the first cycle
// of divergence. Because the two implementations share no code beyond the
// Vtick quantisation of the configuration, a bug in either side shows up as
// a divergence instead of cancelling out.
//
// PlantedBug deliberately mis-implements one detail of the reference; the
// harness tests use it to prove that an off-by-one anywhere in the
// semantics is caught and shrunk to a short repro. Production checkers
// always run with PlantedBug::None.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/allocation.hpp"
#include "core/gl_tracker.hpp"
#include "core/output_arbiter.hpp"
#include "core/params.hpp"
#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::check {

/// Test-only deliberate defects (see header comment).
enum class PlantedBug : std::uint8_t {
  None = 0,
  /// GB grants advance the virtual clock by vtick + 1.
  GbVtickOffByOne,
  /// The LRG winner keeps its priority instead of moving to the back.
  LrgNoMoveToBack,
  /// The GL policer tolerates one extra packet of burst.
  GlAllowanceOffByOne,
  /// Real-time epoch wraps never subtract from the virtual clocks.
  SkipEpochWrap,
  /// Matching-engine runs only (run_scenario swaps the scenario's engine for
  /// arb::MatchKind::Starve): the switch stops granting while requests are
  /// pending — the checker's progress guard must fire.
  EngineStarve,
};

[[nodiscard]] const char* to_string(PlantedBug b) noexcept;

class ReferenceOutput {
 public:
  ReferenceOutput(std::uint32_t radix, const core::SsvcParams& params,
                  const core::OutputAllocation& alloc,
                  core::GlPolicing policing, std::uint32_t gl_allowance,
                  PlantedBug bug = PlantedBug::None);

  /// Epoch-wrap bookkeeping up to `now` (non-decreasing).
  void advance_to(Cycle now);

  struct Decision {
    InputId winner = kNoPort;
    TrafficClass cls = TrafficClass::BestEffort;
  };

  /// Winner of one arbitration at `now` (call advance_to(now) first), or
  /// kNoPort when only policer-stalled GL requests are present.
  [[nodiscard]] Decision pick(
      std::span<const core::ClassRequest> requests, Cycle now) const;

  /// Commits a grant (call advance_to(now) first).
  void on_grant(InputId input, TrafficClass cls, Cycle now);

  // ---- introspection (state comparison and divergence dumps) ----
  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }
  [[nodiscard]] const core::SsvcParams& params() const noexcept {
    return params_;
  }
  // (Inline: the differential checker reads these for every input of every
  // output every cycle — together with lrg_rank they dominate campaign time
  // when out-of-line.)
  [[nodiscard]] std::uint64_t value(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return value_[i];
  }
  [[nodiscard]] std::uint32_t level(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return level_of(value_[i]);
  }
  [[nodiscard]] std::uint64_t vtick(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return vtick_[i];
  }
  [[nodiscard]] bool has_gb_reservation(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return reserved_[i];
  }
  [[nodiscard]] std::uint64_t gl_clock() const noexcept { return gl_clock_; }
  [[nodiscard]] std::uint64_t gl_vtick() const noexcept { return gl_vtick_; }
  [[nodiscard]] bool gl_eligible(Cycle now) const;
  [[nodiscard]] core::GlPolicing policing() const noexcept {
    return policing_;
  }
  /// Epoch-relative real time at the last advance_to().
  [[nodiscard]] std::uint64_t rt() const noexcept { return rt_; }
  /// LRG order, front = least recently granted (most preferred).
  [[nodiscard]] const std::vector<InputId>& lrg_order() const noexcept {
    return order_;
  }
  /// Rank of input i in the order (0 = most preferred). O(1): pos_ is the
  /// maintained inverse permutation of order_.
  [[nodiscard]] std::uint32_t lrg_rank(InputId i) const {
    SSQ_EXPECT(i < radix_);
    return pos_[i];
  }
  /// Beats-matrix rows equivalent to the order vector, for seeding
  /// arb::LrgArbiter::set_matrix in the bit-level circuit leg.
  [[nodiscard]] std::vector<std::uint64_t> lrg_rows() const;

 private:
  /// First requester in LRG order among `bucket` (bit i = input i requests).
  [[nodiscard]] InputId first_in_order(std::uint64_t bucket) const;
  [[nodiscard]] std::uint32_t level_of(std::uint64_t value) const {
    const std::uint64_t lvl = value >> params_.lsb_bits;
    const std::uint32_t top = params_.gb_levels() - 1;
    return lvl < top ? static_cast<std::uint32_t>(lvl) : top;
  }

  std::uint32_t radix_;
  core::SsvcParams params_;
  core::GlPolicing policing_;
  std::uint64_t gl_allowance_;
  PlantedBug bug_;

  std::uint64_t cap_;
  std::vector<std::uint64_t> vtick_;    // per input, cycles per GB grant
  std::vector<bool> reserved_;          // per input, has a GB reservation
  std::vector<std::uint64_t> value_;    // per input, epoch-relative clock
  std::vector<InputId> order_;          // LRG: front = most preferred
  std::vector<std::uint32_t> pos_;      // inverse of order_: pos_[order_[k]]==k
  std::uint64_t gl_vtick_ = 0;          // 0 = GL tracking disabled
  std::uint64_t gl_clock_ = 0;
  Cycle epoch_base_ = 0;
  std::uint64_t rt_ = 0;
};

}  // namespace ssq::check
