#include "multihop/two_stage.hpp"

#include <algorithm>
#include <utility>

#include "core/params.hpp"

namespace ssq::multihop {

namespace {

constexpr std::size_t cls_idx(TrafficClass c) {
  return static_cast<std::size_t>(c);
}

}  // namespace

void TwoStageConfig::validate() const {
  SSQ_EXPECT(groups >= 2 && groups <= 64);
  SSQ_EXPECT(nodes_per_group >= 1 && nodes_per_group <= 64);
  SSQ_EXPECT(dests >= 1 && dests <= 64);
  SSQ_EXPECT(hop_buffer_flits >= 1);
  ssvc.validate();
}

TwoStageNetwork::TwoStageNetwork(const TwoStageConfig& config,
                                 std::vector<HopFlow> flows)
    : config_(config), flows_(std::move(flows)), rng_(config.seed) {
  config_.validate();

  // Per-node aggregate reservations (stage-1 uplink crosspoints) and
  // per-(group, dest) aggregates (stage-2 crosspoints — the shared state).
  std::vector<std::vector<double>> uplink_rate(
      config_.groups, std::vector<double>(config_.nodes_per_group, 0.0));
  std::vector<std::vector<double>> dest_rate(
      config_.dests, std::vector<double>(config_.groups, 0.0));
  std::uint32_t max_len = 1;
  for (const auto& f : flows_) {
    SSQ_EXPECT(f.node < config_.num_nodes());
    SSQ_EXPECT(f.dest < config_.dests);
    SSQ_EXPECT(f.packet_len >= 1);
    SSQ_EXPECT(f.cls != TrafficClass::GuaranteedLatency &&
               "the composed network models BE/GB only — maintaining GL "
               "bounds across hops is exactly the complexity §4.4 warns "
               "about");
    if (f.cls == TrafficClass::GuaranteedBandwidth) {
      SSQ_EXPECT(f.reserved_rate > 0.0);
      const std::uint32_t g = f.node / config_.nodes_per_group;
      uplink_rate[g][f.node % config_.nodes_per_group] += f.reserved_rate;
      dest_rate[f.dest][g] += f.reserved_rate;
    }
    max_len = std::max(max_len, f.packet_len);
  }

  for (std::uint32_t g = 0; g < config_.groups; ++g) {
    core::OutputAllocation alloc =
        core::OutputAllocation::none(config_.nodes_per_group);
    alloc.gb_rate = uplink_rate[g];
    alloc.gb_packet_len = max_len;
    SSQ_EXPECT(alloc.admissible(config_.nodes_per_group) &&
               "group over-subscribes its uplink");
    uplink_arb_.push_back(std::make_unique<core::OutputQosArbiter>(
        config_.nodes_per_group, config_.ssvc, std::move(alloc)));
  }
  for (OutputId d = 0; d < config_.dests; ++d) {
    core::OutputAllocation alloc = core::OutputAllocation::none(config_.groups);
    alloc.gb_rate = dest_rate[d];
    alloc.gb_packet_len = max_len;
    SSQ_EXPECT(alloc.admissible(config_.groups) &&
               "destination over-subscribed");
    dest_arb_.push_back(std::make_unique<core::OutputQosArbiter>(
        config_.groups, config_.ssvc, std::move(alloc)));
  }

  uplink_.resize(config_.groups);
  dest_ch_.resize(config_.dests);
  node_buf_.resize(config_.num_nodes());
  s2_buf_.assign(config_.groups, std::vector<ClassBuffers>(config_.dests));
  s2_reserved_.assign(config_.groups,
                      std::vector<std::uint32_t>(config_.dests, 0));
  s2_reserved_be_.assign(config_.groups, 0);
  s2_input_free_at_.assign(config_.groups, 0);
  node_free_at_.assign(config_.num_nodes(), 0);

  node_flows_.resize(config_.num_nodes());
  accept_ptr_.assign(config_.num_nodes(), 0);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    node_flows_[flows_[f].node].push_back(f);
  }
  source_q_.resize(flows_.size());
  delivered_.assign(flows_.size(), 0);
  throughput_.resize(flows_.size());
  injectors_.reserve(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    traffic::FlowSpec spec;
    spec.src = 0;  // unused by the injector
    spec.dst = 0;
    spec.cls = flows_[f].cls;
    spec.reserved_rate = flows_[f].reserved_rate;
    spec.len_min = spec.len_max = flows_[f].packet_len;
    spec.inject = flows_[f].inject;
    spec.inject_rate = flows_[f].inject_rate;
    injectors_.emplace_back(spec, rng_.fork(static_cast<std::uint64_t>(f)));
    latency_.register_flow(flows_[f].cls);
  }
  throughput_.open_window(0);
}

const HopFlow& TwoStageNetwork::flow(std::size_t f) const {
  SSQ_EXPECT(f < flows_.size());
  return flows_[f];
}

std::uint64_t TwoStageNetwork::delivered_packets(std::size_t f) const {
  SSQ_EXPECT(f < delivered_.size());
  return delivered_[f];
}

void TwoStageNetwork::inject() {
  for (std::size_t f = 0; f < injectors_.size(); ++f) {
    auto& inj = injectors_[f];
    const std::uint32_t n = inj.packets_at(now_);
    for (std::uint32_t k = 0; k < n; ++k) {
      sw::Packet p;
      p.id = next_id_++;
      p.flow = static_cast<FlowId>(f);
      p.src = flows_[f].node;
      p.dst = flows_[f].dest;
      p.cls = flows_[f].cls;
      p.length = inj.draw_length();
      p.created = now_;
      source_q_[f].push_back(std::move(p));
    }
  }
  // One packet per node per cycle into the node's class buffers,
  // round-robin over the node's flows so admission itself is fair.
  for (std::uint32_t node = 0; node < config_.num_nodes(); ++node) {
    const auto& nf = node_flows_[node];
    if (nf.empty()) continue;
    for (std::size_t k = 0; k < nf.size(); ++k) {
      const std::size_t f = nf[(accept_ptr_[node] + k) % nf.size()];
      if (source_q_[f].empty()) continue;
      auto& buf = node_buf_[node];
      sw::Packet& head = source_q_[f].front();
      const std::size_t c = cls_idx(head.cls);
      if (buf.occ[c] + head.length > config_.hop_buffer_flits) continue;
      head.buffered = now_;
      buf.occ[c] += head.length;
      buf.q[c].push_back(std::move(head));
      source_q_[f].pop_front();
      accept_ptr_[node] = (accept_ptr_[node] + k + 1) % nf.size();
      break;
    }
  }
}

void TwoStageNetwork::stage2_transfer_and_arbitrate() {
  // Transfer on destination channels; completions are end-to-end deliveries.
  for (OutputId d = 0; d < config_.dests; ++d) {
    auto& ch = dest_ch_[d];
    if (ch.active && now_ >= ch.first_flit) {
      throughput_.record_flit(ch.pkt.flow, now_);
      if (now_ == ch.last_flit) {
        ch.pkt.delivered = now_;
        if (measuring_) {
          latency_.record(ch.pkt.flow,
                          static_cast<double>(now_ - ch.pkt.buffered));
        }
        ++delivered_[ch.pkt.flow];
        ch.active = false;
      }
    }
  }

  // Arbitrate free destination channels among the uplink inputs.
  std::vector<core::ClassRequest> reqs;
  for (OutputId d = 0; d < config_.dests; ++d) {
    if (dest_ch_[d].free_at > now_) continue;
    reqs.clear();
    // Head selection per uplink input: GB queue for this dest, else the
    // shared BE queue if its head targets this dest.
    for (std::uint32_t g = 0; g < config_.groups; ++g) {
      if (s2_input_free_at_[g] > now_) continue;
      const auto& bufs = s2_buf_[g][d];
      const auto& gbq = bufs.q[cls_idx(TrafficClass::GuaranteedBandwidth)];
      if (!gbq.empty()) {
        reqs.push_back({g, TrafficClass::GuaranteedBandwidth,
                        gbq.front().length});
        continue;
      }
      const auto& beq =
          s2_buf_[g][0].q[cls_idx(TrafficClass::BestEffort)];  // shared BE
      if (!beq.empty() && beq.front().dst == d) {
        reqs.push_back({g, TrafficClass::BestEffort, beq.front().length});
      }
    }
    if (reqs.empty()) continue;
    auto& arb = *dest_arb_[d];
    arb.advance_to(now_);
    const InputId g = arb.pick(reqs, now_);
    if (g == kNoPort) continue;
    const TrafficClass cls = arb.picked_class();
    arb.on_grant(g, cls, 1, now_);

    auto& bufs = cls == TrafficClass::GuaranteedBandwidth
                     ? s2_buf_[g][d]
                     : s2_buf_[g][0];
    auto& q = bufs.q[cls_idx(cls)];
    SSQ_ENSURE(!q.empty());
    sw::Packet pkt = std::move(q.front());
    q.pop_front();
    bufs.occ[cls_idx(cls)] -= pkt.length;
    pkt.granted = now_;
    auto& ch = dest_ch_[d];
    ch.first_flit = now_ + 1;
    ch.last_flit = now_ + pkt.length;
    ch.free_at = ch.last_flit + 1;
    s2_input_free_at_[g] = ch.last_flit + 1;
    ch.pkt = std::move(pkt);
    ch.active = true;
  }
}

void TwoStageNetwork::stage1_transfer_and_arbitrate() {
  // Uplink transfers; a completing packet lands in its stage-2 buffer
  // (space was reserved at grant time).
  for (std::uint32_t g = 0; g < config_.groups; ++g) {
    auto& ch = uplink_[g];
    if (ch.active && now_ == ch.last_flit) {
      const OutputId d = ch.pkt.dst;
      const std::size_t c = cls_idx(ch.pkt.cls);
      const std::uint32_t len = ch.pkt.length;
      auto& bufs = ch.pkt.cls == TrafficClass::GuaranteedBandwidth
                       ? s2_buf_[g][d]
                       : s2_buf_[g][0];
      bufs.occ[c] += len;
      if (ch.pkt.cls == TrafficClass::GuaranteedBandwidth) {
        SSQ_ENSURE(s2_reserved_[g][d] >= len);
        s2_reserved_[g][d] -= len;
      } else {
        SSQ_ENSURE(s2_reserved_be_[g] >= len);
        s2_reserved_be_[g] -= len;
      }
      bufs.q[c].push_back(std::move(ch.pkt));
      ch.active = false;
    }
  }

  // Arbitrate free uplinks among the group's nodes (credit-checked).
  std::vector<core::ClassRequest> reqs;
  for (std::uint32_t g = 0; g < config_.groups; ++g) {
    if (uplink_[g].free_at > now_) continue;
    reqs.clear();
    for (std::uint32_t local = 0; local < config_.nodes_per_group; ++local) {
      const std::uint32_t node = g * config_.nodes_per_group + local;
      if (node_free_at_[node] > now_) continue;
      auto& buf = node_buf_[node];
      // GB ahead of BE at the node; credit check against the stage-2 buffer.
      for (TrafficClass cls : {TrafficClass::GuaranteedBandwidth,
                               TrafficClass::BestEffort}) {
        const auto& q = buf.q[cls_idx(cls)];
        if (q.empty()) continue;
        const sw::Packet& head = q.front();
        const auto& s2 = cls == TrafficClass::GuaranteedBandwidth
                             ? s2_buf_[g][head.dst]
                             : s2_buf_[g][0];
        const std::uint32_t reserved =
            cls == TrafficClass::GuaranteedBandwidth
                ? s2_reserved_[g][head.dst]
                : s2_reserved_be_[g];
        if (s2.occ[cls_idx(cls)] + reserved + head.length >
            config_.hop_buffer_flits) {
          continue;  // no credit downstream
        }
        reqs.push_back({local, cls, head.length});
        break;
      }
    }
    if (reqs.empty()) continue;
    auto& arb = *uplink_arb_[g];
    arb.advance_to(now_);
    const InputId local = arb.pick(reqs, now_);
    if (local == kNoPort) continue;
    const TrafficClass cls = arb.picked_class();
    arb.on_grant(local, cls, 1, now_);

    const std::uint32_t node = g * config_.nodes_per_group + local;
    auto& buf = node_buf_[node];
    auto& q = buf.q[cls_idx(cls)];
    sw::Packet pkt = std::move(q.front());
    q.pop_front();
    buf.occ[cls_idx(cls)] -= pkt.length;

    // Reserve stage-2 space until the packet lands there (credit).
    if (cls == TrafficClass::GuaranteedBandwidth) {
      s2_reserved_[g][pkt.dst] += pkt.length;
    } else {
      s2_reserved_be_[g] += pkt.length;
    }

    auto& ch = uplink_[g];
    ch.first_flit = now_ + 1;
    ch.last_flit = now_ + pkt.length;
    ch.free_at = ch.last_flit + 1;
    node_free_at_[node] = ch.last_flit + 1;
    ch.pkt = std::move(pkt);
    ch.active = true;
  }
}

void TwoStageNetwork::step() {
  inject();
  stage2_transfer_and_arbitrate();
  stage1_transfer_and_arbitrate();
  ++now_;
}

void TwoStageNetwork::run(Cycle cycles) {
  for (Cycle c = 0; c < cycles; ++c) step();
}

void TwoStageNetwork::warmup(Cycle cycles) {
  run(cycles);
  latency_.reset();
  throughput_.open_window(now_);
  measuring_ = true;
}

void TwoStageNetwork::measure(Cycle cycles) {
  run(cycles);
  throughput_.close_window(now_);
  measuring_ = false;
}

}  // namespace ssq::multihop
