// Two-stage composed network — the §4.4 scalability argument, made runnable.
//
// "Scaling to more nodes involve[s] composing multiple switches, which makes
// the QoS technique more complex. Crosspoints will have to be shared by
// several flows, requiring more per-flow state storage. In addition,
// composing multiple switches introduces conflicts in buffers at the input
// port. It becomes increasingly difficult to maintain separation between
// flows in buffers."
//
// Topology: `groups` first-stage concentrators, each with `nodes_per_group`
// local source nodes and ONE uplink, feeding a second-stage switch whose
// `groups` inputs (the uplinks) fan out to `dests` destination outputs.
//
//   node --> [stage-1 switch: nodes_per_group x 1] --uplink-->
//        --> [stage-2 switch: groups x dests] --> destination
//
// Each hop runs an independent SSVC OutputQosArbiter with per-hop class
// buffering and the same 1-cycle-arbitration + L-transfer-cycle channel
// model as the single-stage simulator. The deliberately-reproduced
// pathology: a stage-2 crosspoint belongs to an UPLINK, not to a source
// node, so every flow from the same group shares one auxVC counter and one
// set of class buffers there — per-flow separation is lost exactly as the
// paper warns. The stage-2 uplink reservation is the SUM of the group's
// per-flow reservations, so aggregate guarantees survive while per-flow
// guarantees inside a group do not (bench/sec44_composition measures both).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/output_arbiter.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "stats/latency.hpp"
#include "stats/throughput.hpp"
#include "switch/packet.hpp"
#include "traffic/flow.hpp"
#include "traffic/injector.hpp"

namespace ssq::multihop {

struct TwoStageConfig {
  std::uint32_t groups = 4;           // first-stage switches / uplinks
  std::uint32_t nodes_per_group = 4;  // local inputs per first-stage switch
  std::uint32_t dests = 4;            // second-stage outputs
  core::SsvcParams ssvc{};
  /// Per-hop buffer depth, flits, per class queue.
  std::uint32_t hop_buffer_flits = 32;
  std::uint64_t seed = 0x25717;

  [[nodiscard]] std::uint32_t num_nodes() const {
    return groups * nodes_per_group;
  }
  void validate() const;
};

/// A flow through the composed network: source node -> destination output.
struct HopFlow {
  std::uint32_t node = 0;  // global node id (group = node / nodes_per_group)
  OutputId dest = 0;
  TrafficClass cls = TrafficClass::GuaranteedBandwidth;
  double reserved_rate = 0.0;  // fraction of the DESTINATION channel
  std::uint32_t packet_len = 8;
  traffic::InjectKind inject = traffic::InjectKind::Bernoulli;
  double inject_rate = 0.0;  // flits/cycle
};

class TwoStageNetwork {
 public:
  TwoStageNetwork(const TwoStageConfig& config, std::vector<HopFlow> flows);

  void step();
  void run(Cycle cycles);
  void warmup(Cycle cycles);
  void measure(Cycle cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_flows() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] const HopFlow& flow(std::size_t f) const;

  /// End-to-end delivered rate (flits/cycle at the destination).
  [[nodiscard]] const stats::ThroughputMeter& throughput() const noexcept {
    return throughput_;
  }
  /// End-to-end packet latency (source-queue exit -> delivery).
  [[nodiscard]] const stats::LatencyRecorder& latency() const noexcept {
    return latency_;
  }
  [[nodiscard]] std::uint64_t delivered_packets(std::size_t f) const;

 private:
  // One queued packet with its owning flow.
  struct QueuedPacket {
    sw::Packet pkt;
  };

  /// A point-to-point channel (stage-1 uplink or stage-2 output): holds the
  /// active transmission; 1 arbitration cycle + L transfer cycles.
  struct Channel {
    Cycle free_at = 0;
    sw::Packet pkt{};
    Cycle first_flit = 0;
    Cycle last_flit = 0;
    bool active = false;
  };

  /// Per-class FIFO set with flit-occupancy accounting.
  struct ClassBuffers {
    std::deque<sw::Packet> q[kNumClasses];
    std::uint32_t occ[kNumClasses] = {0, 0, 0};
  };

  void inject();
  void stage1_transfer_and_arbitrate();
  void stage2_transfer_and_arbitrate();

  TwoStageConfig config_;
  std::vector<HopFlow> flows_;
  Rng rng_;
  Cycle now_ = 0;
  PacketId next_id_ = 0;

  std::vector<traffic::Injector> injectors_;
  std::vector<std::deque<sw::Packet>> source_q_;  // per flow (unbounded)
  std::vector<std::vector<std::size_t>> node_flows_;  // flows per node
  std::vector<std::size_t> accept_ptr_;               // admission round-robin

  // Stage 1: per node, per-class buffers feeding the group's uplink.
  std::vector<ClassBuffers> node_buf_;                    // [node]
  std::vector<Cycle> node_free_at_;                       // [node]
  std::vector<std::unique_ptr<core::OutputQosArbiter>> uplink_arb_;  // [group]
  std::vector<Channel> uplink_;                           // [group]

  // Stage 2: per (uplink input, dest) GB queues plus ONE shared BE queue per
  // uplink input (stored at s2_buf_[g][0]) — the crosspoint-granular state
  // the paper warns about. Credits: flits reserved at uplink-grant time
  // until the packet lands downstream.
  std::vector<std::vector<ClassBuffers>> s2_buf_;  // [group][dest]
  std::vector<std::vector<std::uint32_t>> s2_reserved_;  // [group][dest], GB
  std::vector<std::uint32_t> s2_reserved_be_;            // [group]
  std::vector<std::unique_ptr<core::OutputQosArbiter>> dest_arb_;  // [dest]
  std::vector<Channel> dest_ch_;                                   // [dest]
  std::vector<Cycle> s2_input_free_at_;   // uplink input drives one flit/cyc

  stats::LatencyRecorder latency_;
  stats::ThroughputMeter throughput_;
  std::vector<std::uint64_t> delivered_;
  bool measuring_ = true;
};

}  // namespace ssq::multihop
