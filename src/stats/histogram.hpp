// Fixed-width-bin histogram with overflow bin and percentile queries.
//
// Used for packet-latency distributions; bins hold cycle counts. Values are
// non-negative (latencies, queue depths). The last bin is an unbounded
// overflow bin so no sample is ever dropped; percentile queries fall back to
// the recorded true maximum when they land in the overflow bin.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"

namespace ssq::stats {

class Histogram {
 public:
  /// `bin_width` > 0; `num_bins` regular bins plus an implicit overflow bin.
  Histogram(double bin_width, std::size_t num_bins)
      : bin_width_(bin_width), bins_(num_bins + 1, 0) {
    SSQ_EXPECT(bin_width > 0.0);
    SSQ_EXPECT(num_bins > 0);
  }

  void add(double x) noexcept {
    SSQ_EXPECT(x >= 0.0);
    auto idx = static_cast<std::size_t>(x / bin_width_);
    if (idx >= bins_.size() - 1) idx = bins_.size() - 1;  // overflow bin
    ++bins_[idx];
    ++total_;
    if (x > max_seen_) max_seen_ = x;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size() - 1; }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    SSQ_EXPECT(i < bins_.size());
    return bins_[i];
  }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept {
    return bins_.back();
  }
  [[nodiscard]] double max_seen() const noexcept { return max_seen_; }

  /// Value below which fraction `q` of samples fall (q in [0,1]).
  /// Linear interpolation within the winning bin; returns the true maximum
  /// for queries resolving inside the overflow bin. 0 when empty.
  [[nodiscard]] double percentile(double q) const {
    SSQ_EXPECT(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.5);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i + 1 < bins_.size(); ++i) {
      cum += bins_[i];
      if (cum >= target) {
        // Interpolate within bin i.
        const auto in_bin = bins_[i];
        const double frac =
            in_bin == 0 ? 1.0
                        : 1.0 - static_cast<double>(cum - target) /
                                    static_cast<double>(in_bin);
        return (static_cast<double>(i) + frac) * bin_width_;
      }
    }
    return max_seen_;
  }

  void merge(const Histogram& other) {
    SSQ_EXPECT(other.bin_width_ == bin_width_);
    SSQ_EXPECT(other.bins_.size() == bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    total_ += other.total_;
    if (other.max_seen_ > max_seen_) max_seen_ = other.max_seen_;
  }

  void reset() noexcept {
    for (auto& b : bins_) b = 0;
    total_ = 0;
    max_seen_ = 0.0;
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;  // last element = overflow bin
  std::uint64_t total_ = 0;
  double max_seen_ = 0.0;
};

}  // namespace ssq::stats
