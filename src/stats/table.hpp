// Aligned ASCII / CSV table rendering for the bench harness.
//
// Every bench binary prints the same rows the paper's tables and figures
// report. Table collects string/number cells, then renders either as aligned
// monospace columns (default, human-readable) or CSV (`--csv`).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssq::stats {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  Table& header(std::vector<std::string> names);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(int value);

  /// Renders as aligned columns (padded with spaces, `|` separators).
  void render_ascii(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes quoted).
  void render_csv(std::ostream& os) const;

  /// Renders according to `csv`; convenience for bench main()s.
  void render(std::ostream& os, bool csv) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Raw cell access, used by serialisers (e.g. bench JSON reports).
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses bench argv for a `--csv` flag (shared by all bench binaries).
bool want_csv(int argc, char** argv) noexcept;

}  // namespace ssq::stats
