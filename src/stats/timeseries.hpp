// Windowed per-flow rate series — throughput as a function of time, for
// convergence and transient analysis (e.g. how quickly SSVC re-apportions
// bandwidth after a reserved flow joins).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::stats {

class RateSeries {
 public:
  /// `window_cycles` > 0: each series point is flits/cycle over one window.
  RateSeries(std::size_t num_flows, Cycle window_cycles)
      : window_(window_cycles), counts_(num_flows, 0) {
    SSQ_EXPECT(window_cycles >= 1);
    SSQ_EXPECT(num_flows >= 1);
    series_.resize(num_flows);
  }

  /// Records one delivered flit. `now` must be non-decreasing.
  void record_flit(std::size_t flow, Cycle now) {
    SSQ_EXPECT(flow < counts_.size());
    roll_to(now);
    ++counts_[flow];
  }

  /// Records `n` flits at once (batch form used by the observability
  /// sampler, which diffs counters once per window instead of per flit).
  void record_flits(std::size_t flow, Cycle now, std::uint64_t n) {
    SSQ_EXPECT(flow < counts_.size());
    roll_to(now);
    counts_[flow] += n;
  }

  /// Closes any windows ending at or before `now` (call at the end of a run
  /// so the final full window is flushed).
  void roll_to(Cycle now) {
    while (now >= window_start_ + window_) {
      for (std::size_t f = 0; f < counts_.size(); ++f) {
        series_[f].push_back(static_cast<double>(counts_[f]) /
                             static_cast<double>(window_));
        counts_[f] = 0;
      }
      window_start_ += window_;
    }
  }

  [[nodiscard]] Cycle window_cycles() const noexcept { return window_; }
  [[nodiscard]] std::size_t num_windows() const noexcept {
    return series_.empty() ? 0 : series_[0].size();
  }
  [[nodiscard]] const std::vector<double>& series(std::size_t flow) const {
    SSQ_EXPECT(flow < series_.size());
    return series_[flow];
  }

  /// First window index at or after `from_window` where the flow's rate
  /// stays within `tolerance` of `target` for `hold` consecutive windows;
  /// returns num_windows() if never.
  [[nodiscard]] std::size_t converged_at(std::size_t flow, double target,
                                         double tolerance,
                                         std::size_t from_window,
                                         std::size_t hold = 3) const {
    const auto& s = series(flow);
    std::size_t run = 0;
    for (std::size_t w = from_window; w < s.size(); ++w) {
      if (s[w] >= target - tolerance && s[w] <= target + tolerance) {
        if (++run >= hold) return w - hold + 1;
      } else {
        run = 0;
      }
    }
    return s.size();
  }

 private:
  Cycle window_;
  Cycle window_start_ = 0;
  std::vector<std::uint64_t> counts_;
  std::vector<std::vector<double>> series_;
};

}  // namespace ssq::stats
