// Streaming (single-pass) summary statistics.
//
// Welford's algorithm gives numerically stable mean/variance without storing
// samples — the simulator records millions of packet latencies per run.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ssq::stats {

/// Single-pass count/mean/variance/min/max accumulator (Welford).
class Streaming {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (parallel/chunked collection).
  void merge(const Streaming& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept { *this = Streaming{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Population variance (n in the denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Unbiased sample variance (n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// +inf / -inf when empty, so min()/max() of an empty accumulator is loud.
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ssq::stats
