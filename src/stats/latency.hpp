// Per-flow and per-class packet latency recording.
//
// A LatencyRecorder owns one Streaming accumulator and one Histogram per flow
// plus per-class aggregates. Flows register once (at workload build time);
// the hot path is an index into a flat vector.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/types.hpp"
#include "stats/histogram.hpp"
#include "stats/streaming.hpp"

namespace ssq::stats {

class LatencyRecorder {
 public:
  /// `hist_bin_width` / `hist_bins` size every per-flow histogram.
  explicit LatencyRecorder(double hist_bin_width = 4.0,
                           std::size_t hist_bins = 512)
      : bin_width_(hist_bin_width), bins_(hist_bins) {}

  /// Registers a flow; returns its dense index (== FlowId if registered in
  /// FlowId order, which Workload guarantees).
  std::size_t register_flow(TrafficClass cls) {
    flows_.push_back(FlowSlot{Streaming{}, Histogram{bin_width_, bins_}, cls});
    return flows_.size() - 1;
  }

  [[nodiscard]] std::size_t num_flows() const noexcept { return flows_.size(); }

  void record(std::size_t flow, double latency_cycles) {
    SSQ_EXPECT(flow < flows_.size());
    auto& slot = flows_[flow];
    slot.summary.add(latency_cycles);
    slot.histogram.add(latency_cycles);
    by_class_[static_cast<std::size_t>(slot.cls)].add(latency_cycles);
    all_.add(latency_cycles);
  }

  [[nodiscard]] const Streaming& flow_summary(std::size_t flow) const {
    SSQ_EXPECT(flow < flows_.size());
    return flows_[flow].summary;
  }
  [[nodiscard]] const Histogram& flow_histogram(std::size_t flow) const {
    SSQ_EXPECT(flow < flows_.size());
    return flows_[flow].histogram;
  }
  [[nodiscard]] TrafficClass flow_class(std::size_t flow) const {
    SSQ_EXPECT(flow < flows_.size());
    return flows_[flow].cls;
  }
  [[nodiscard]] const Streaming& class_summary(TrafficClass cls) const noexcept {
    return by_class_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] const Streaming& overall() const noexcept { return all_; }

  void reset() noexcept {
    for (auto& f : flows_) {
      f.summary.reset();
      f.histogram.reset();
    }
    for (auto& c : by_class_) c.reset();
    all_.reset();
  }

 private:
  struct FlowSlot {
    Streaming summary;
    Histogram histogram;
    TrafficClass cls;
  };

  double bin_width_;
  std::size_t bins_;
  std::vector<FlowSlot> flows_;
  Streaming by_class_[kNumClasses];
  Streaming all_;
};

}  // namespace ssq::stats
