// Accepted-throughput accounting.
//
// The paper's Fig. 4 y-axis is "Accepted Throughput at Output
// (flits/input/cycle)": flits delivered at an output on behalf of each input,
// divided by measured cycles. ThroughputMeter counts delivered flits per flow
// and per (input, output) pair over an explicit measurement window so warmup
// traffic is excluded.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::stats {

class ThroughputMeter {
 public:
  explicit ThroughputMeter(std::size_t num_flows = 0) : flits_(num_flows, 0) {}

  void resize(std::size_t num_flows) { flits_.assign(num_flows, 0); }

  /// Opens the measurement window at `now` (call after warmup).
  void open_window(Cycle now) noexcept {
    window_start_ = now;
    window_end_ = kNoCycle;
    for (auto& f : flits_) f = 0;
    total_ = 0;
  }

  /// Closes the window (call before reading rates).
  void close_window(Cycle now) noexcept {
    SSQ_EXPECT(now >= window_start_);
    window_end_ = now;
  }

  [[nodiscard]] bool window_open() const noexcept {
    return window_end_ == kNoCycle;
  }

  /// Records one delivered flit for `flow` at cycle `now` (ignored outside
  /// the window).
  void record_flit(std::size_t flow, Cycle now) {
    SSQ_EXPECT(flow < flits_.size());
    if (now < window_start_) return;
    if (window_end_ != kNoCycle && now >= window_end_) return;
    ++flits_[flow];
    ++total_;
  }

  /// Retracts up to `n` previously recorded flits for `flow` (an aborted
  /// PVC transfer is waste, not goodput). Window-edge approximation: flits
  /// recorded before the window opened cannot be retracted, so at most the
  /// in-window count is subtracted.
  void unrecord_flits(std::size_t flow, std::uint64_t n) {
    SSQ_EXPECT(flow < flits_.size());
    const std::uint64_t take = n < flits_[flow] ? n : flits_[flow];
    flits_[flow] -= take;
    total_ -= take;
  }

  [[nodiscard]] std::uint64_t flits(std::size_t flow) const {
    SSQ_EXPECT(flow < flits_.size());
    return flits_[flow];
  }
  [[nodiscard]] std::uint64_t total_flits() const noexcept { return total_; }

  [[nodiscard]] Cycle window_cycles() const noexcept {
    SSQ_EXPECT(window_end_ != kNoCycle);
    return window_end_ - window_start_;
  }

  /// Delivered rate for `flow` in flits/cycle over the closed window.
  [[nodiscard]] double rate(std::size_t flow) const {
    const Cycle cycles = window_cycles();
    return cycles == 0 ? 0.0
                       : static_cast<double>(flits(flow)) /
                             static_cast<double>(cycles);
  }

  /// Aggregate delivered rate in flits/cycle over the closed window.
  [[nodiscard]] double total_rate() const {
    const Cycle cycles = window_cycles();
    return cycles == 0 ? 0.0
                       : static_cast<double>(total_) /
                             static_cast<double>(cycles);
  }

 private:
  std::vector<std::uint64_t> flits_;
  std::uint64_t total_ = 0;
  Cycle window_start_ = 0;
  Cycle window_end_ = kNoCycle;
};

}  // namespace ssq::stats
