#include "stats/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/contracts.hpp"

namespace ssq::stats {

Table& Table::header(std::vector<std::string> names) {
  SSQ_EXPECT(rows_.empty());
  header_ = std::move(names);
  return *this;
}

Table& Table::row() {
  SSQ_EXPECT(!header_.empty());
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  SSQ_EXPECT(!rows_.empty());
  SSQ_EXPECT(rows_.back().size() < header_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::render_ascii(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "" : " | ") << std::left << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 3;
  os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  os << '\n';
}

namespace {
void csv_cell(std::ostream& os, const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) {
    os << v;
    return;
  }
  os << '"';
  for (char ch : v) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      csv_cell(os, cells[c]);
    }
    os << '\n';
  };
  if (!title_.empty()) os << "# " << title_ << '\n';
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

void Table::render(std::ostream& os, bool csv) const {
  if (csv)
    render_csv(os);
  else
    render_ascii(os);
}

bool want_csv(int argc, char** argv) noexcept {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  return false;
}

}  // namespace ssq::stats
