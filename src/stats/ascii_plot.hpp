// Terminal line plots for the figure benches — the repo is terminal-first,
// so Fig. 4/Fig. 5 can be *seen*, not just tabulated.
//
// Each series is a vector of y-values over a shared x index; points map
// onto a character grid (one column per x step, multiple columns per step
// when the grid is wider than the series). Overlapping points show the
// later series' symbol. Supports log-y for Fig. 5's decade-spanning
// latencies.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "sim/contracts.hpp"

namespace ssq::stats {

class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::size_t height = 16)
      : title_(std::move(title)), height_(height) {
    SSQ_EXPECT(height >= 4 && height <= 64);
  }

  /// Adds a series; all series must share the same length.
  void add_series(std::string label, std::vector<double> y, char symbol) {
    SSQ_EXPECT(!y.empty());
    if (!series_.empty()) SSQ_EXPECT(y.size() == series_[0].y.size());
    for (double v : y) SSQ_EXPECT(v == v);  // no NaNs
    series_.push_back({std::move(label), std::move(y), symbol});
  }

  /// Labels printed under the left/right edges of the x axis.
  void x_labels(std::string left, std::string right) {
    x_left_ = std::move(left);
    x_right_ = std::move(right);
  }

  void render(std::ostream& os, bool log_y = false) const {
    SSQ_EXPECT(!series_.empty());
    double lo = 1e300, hi = -1e300;
    for (const auto& s : series_) {
      for (double v : s.y) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (log_y) {
      SSQ_EXPECT(lo > 0.0 && "log-y needs positive data");
      lo = std::log10(lo);
      hi = std::log10(hi);
    }
    if (hi <= lo) hi = lo + 1.0;

    const std::size_t n = series_[0].y.size();
    const std::size_t col_per_x = n >= 48 ? 1 : (48 / n);
    const std::size_t width = n * col_per_x;
    std::vector<std::string> grid(height_, std::string(width, ' '));

    for (const auto& s : series_) {
      for (std::size_t x = 0; x < n; ++x) {
        double v = s.y[x];
        if (log_y) v = std::log10(v);
        const double t = (v - lo) / (hi - lo);
        const auto row = static_cast<std::size_t>(
            std::lround((1.0 - t) * static_cast<double>(height_ - 1)));
        for (std::size_t c = 0; c < col_per_x; ++c) {
          grid[row][x * col_per_x + c] = s.symbol;
        }
      }
    }

    auto y_label = [&](double frac) {
      const double v = lo + (hi - lo) * frac;
      const double shown = log_y ? std::pow(10.0, v) : v;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%8.1f", shown);
      return std::string(buf);
    };

    os << "-- " << title_ << (log_y ? " (log y)" : "") << " --\n";
    for (std::size_t r = 0; r < height_; ++r) {
      const double frac =
          1.0 - static_cast<double>(r) / static_cast<double>(height_ - 1);
      const bool labelled = r == 0 || r == height_ - 1 || r == height_ / 2;
      os << (labelled ? y_label(frac) : std::string(8, ' ')) << " |"
         << grid[r] << "\n";
    }
    os << std::string(8, ' ') << " +" << std::string(width, '-') << "\n";
    os << std::string(10, ' ') << x_left_
       << std::string(width > x_left_.size() + x_right_.size()
                          ? width - x_left_.size() - x_right_.size()
                          : 1,
                      ' ')
       << x_right_ << "\n";
    os << "   ";
    for (const auto& s : series_) {
      os << " [" << s.symbol << "] " << s.label;
    }
    os << "\n\n";
  }

 private:
  struct Series {
    std::string label;
    std::vector<double> y;
    char symbol;
  };

  std::string title_;
  std::size_t height_;
  std::vector<Series> series_;
  std::string x_left_;
  std::string x_right_;
};

}  // namespace ssq::stats
