// Closed-form Guaranteed-Latency results (paper §3.4).
//
// Eq. (1): the maximum waiting time for a buffered GL packet at the switch,
//
//     τ_GL <= l_max + N_GL,o * (b + b / l_min)
//
// where l_max/l_min are the maximum/minimum packet lengths (flits), N_GL,o
// is the number of inputs injecting GL traffic to output o, and b is the GL
// buffer depth per input (flits). The three terms: channel release from a
// packet already holding the channel, transmit latency of all buffered GL
// flits, and one arbitration cycle per buffered GL packet.
//
// Eqs. (2)-(3): admissible burst sizes. Order the N_GL,o inputs by latency
// constraint, tightest first: {L_1 <= L_2 <= ... <= L_N}. Then
//
//     σ_1 = (L_1 - l_max) / ((l_max + 1) * N_GL,o)
//     σ_n = σ_{n-1} + (L_n - L_{n-1}) / ((l_max + 1) * (N_GL,o - n)),  n > 1
//
// packets per burst. For n == N_GL,o the paper's denominator degenerates to
// zero (no looser flows remain to compete with); we floor the competitor
// count at one, which is conservative. The gl_latency_bound bench validates
// both results against the cycle-accurate simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace ssq::qosmath {

struct GlBoundParams {
  std::uint32_t l_max = 1;       // longest packet, flits
  std::uint32_t l_min = 1;       // shortest packet, flits
  std::uint32_t n_gl = 1;        // inputs injecting GL to this output
  std::uint32_t buffer_flits = 4;  // GL buffer depth b per input, flits
};

/// Eq. (1): worst-case wait (cycles) for a buffered GL packet.
[[nodiscard]] double gl_wait_bound(const GlBoundParams& p);

/// Eqs. (2)-(3): maximum burst sizes (packets), one per input, for inputs
/// sorted by latency constraint ascending (tightest first). Values are
/// real-valued; floor() them for integer packet budgets. Constraints must be
/// positive and non-decreasing; `constraints.size()` is N_GL,o.
[[nodiscard]] std::vector<double> gl_burst_budget(
    const std::vector<double>& constraints, std::uint32_t l_max);

}  // namespace ssq::qosmath
