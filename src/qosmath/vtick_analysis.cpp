#include "qosmath/vtick_analysis.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace ssq::qosmath {

VtickError vtick_error(const core::SsvcParams& params, double rate,
                       std::uint32_t packet_len) {
  SSQ_EXPECT(rate > 0.0 && rate <= 1.0);
  VtickError e;
  e.ideal_vtick = core::ideal_vtick(rate, packet_len);
  e.quantized = core::quantize_vtick(params, e.ideal_vtick);
  // The reserved fraction maps to one (L+1)-cycle packet slot per Vtick.
  e.effective_rate =
      static_cast<double>(packet_len + 1) / static_cast<double>(e.quantized);
  e.relative_error = std::abs(e.effective_rate - rate) / rate;
  return e;
}

double max_vtick_error(const core::SsvcParams& params, double rate_lo,
                       double rate_hi, std::uint32_t packet_len,
                       std::uint32_t samples) {
  SSQ_EXPECT(rate_lo > 0.0 && rate_lo <= rate_hi && rate_hi <= 1.0);
  SSQ_EXPECT(samples >= 2);
  double worst = 0.0;
  const double ratio = rate_hi / rate_lo;
  for (std::uint32_t s = 0; s < samples; ++s) {
    const double t = static_cast<double>(s) / (samples - 1);
    const double rate = rate_lo * std::pow(ratio, t);
    const double err = vtick_error(params, rate, packet_len).relative_error;
    if (err > worst) worst = err;
  }
  return worst;
}

}  // namespace ssq::qosmath
