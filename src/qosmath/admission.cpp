#include "qosmath/admission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/contracts.hpp"

namespace ssq::qosmath {

GlAdmissionResult admit_gl_senders(std::vector<GlSender> senders,
                                   GlBoundParams params) {
  SSQ_EXPECT(!senders.empty());
  params.n_gl = static_cast<std::uint32_t>(senders.size());

  GlAdmissionResult result;
  result.burst_packets.assign(senders.size(), 0);

  // Sort by deadline, tightest first (the Eq. 2-3 ordering), remembering
  // each sender's original position.
  std::vector<std::size_t> order(senders.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return senders[a].deadline_cycles < senders[b].deadline_cycles;
  });

  // Feasibility: even an isolated packet can wait up to tau_GL (Eq. 1).
  const double tau = gl_wait_bound(params);
  result.feasible = true;
  for (const auto& s : senders) {
    SSQ_EXPECT(s.deadline_cycles > 0.0);
    if (s.deadline_cycles < tau) result.feasible = false;
  }

  std::vector<double> constraints;
  constraints.reserve(senders.size());
  for (std::size_t k : order) {
    constraints.push_back(senders[k].deadline_cycles);
  }
  const auto sigma = gl_burst_budget(constraints, params.l_max);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    result.burst_packets[order[rank]] = static_cast<std::uint32_t>(
        std::max(0.0, std::floor(sigma[rank])));
  }
  return result;
}

}  // namespace ssq::qosmath
