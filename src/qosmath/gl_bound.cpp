#include "qosmath/gl_bound.hpp"

#include "sim/contracts.hpp"

namespace ssq::qosmath {

double gl_wait_bound(const GlBoundParams& p) {
  SSQ_EXPECT(p.l_max >= 1 && p.l_min >= 1 && p.l_min <= p.l_max);
  SSQ_EXPECT(p.n_gl >= 1);
  SSQ_EXPECT(p.buffer_flits >= 1);
  const double b = static_cast<double>(p.buffer_flits);
  return static_cast<double>(p.l_max) +
         static_cast<double>(p.n_gl) *
             (b + b / static_cast<double>(p.l_min));
}

std::vector<double> gl_burst_budget(const std::vector<double>& constraints,
                                    std::uint32_t l_max) {
  SSQ_EXPECT(!constraints.empty());
  SSQ_EXPECT(l_max >= 1);
  const auto n = static_cast<std::uint32_t>(constraints.size());
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    SSQ_EXPECT(constraints[i] > 0.0);
    if (i > 0) SSQ_EXPECT(constraints[i] >= constraints[i - 1]);
  }

  const double lmax = static_cast<double>(l_max);
  const double per_packet = lmax + 1.0;  // transmit + arbitration cycle

  std::vector<double> sigma(constraints.size(), 0.0);
  // Eq. (2).
  sigma[0] = (constraints[0] - lmax) / (per_packet * static_cast<double>(n));
  if (sigma[0] < 0.0) sigma[0] = 0.0;  // constraint tighter than one packet
  // Eq. (3), with the competitor count floored at 1 for the loosest flow.
  for (std::uint32_t k = 1; k < n; ++k) {
    const std::uint32_t competitors = n - (k + 1) >= 1 ? n - (k + 1) : 1;
    sigma[k] = sigma[k - 1] + (constraints[k] - constraints[k - 1]) /
                                  (per_packet * static_cast<double>(competitors));
  }
  return sigma;
}

}  // namespace ssq::qosmath
