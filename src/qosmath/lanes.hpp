// Lane-budget arithmetic (paper §4.4 "Scalability").
//
//     num_lanes = output_bus_width / radix
//
// Each lane needs one bitline per input (LRG arbitration), so supporting the
// three QoS classes needs at least three lanes: >=1 GB thermometer lane, the
// GL lane, and the BE lane. "For a radix-8, radix-16 and radix-32 switch, a
// 128-bit bus is sufficient. For a radix-64 switch, a 256-bit bus is
// required to support three QoS classes." The scheme does not scale past
// radix 64 without composing switches.
#pragma once

#include <cstdint>

#include "sim/contracts.hpp"

namespace ssq::qosmath {

inline constexpr std::uint32_t kMaxRadix = 64;
inline constexpr std::uint32_t kMinLanesForThreeClasses = 3;

/// Lanes available on a bus. Truncates (a partial lane is unusable).
[[nodiscard]] constexpr std::uint32_t num_lanes(std::uint32_t bus_width,
                                                std::uint32_t radix) {
  SSQ_EXPECT(radix >= 1);
  return bus_width / radix;
}

/// True iff `bus_width` can host `classes` QoS classes at `radix`
/// (1 lane minimum per class; GB accuracy grows with extra lanes, §4.4:
/// "The accuracy of the SSVC technique increases with more lanes").
[[nodiscard]] constexpr bool supports_classes(std::uint32_t bus_width,
                                              std::uint32_t radix,
                                              std::uint32_t classes) {
  return num_lanes(bus_width, radix) >= classes;
}

/// Minimum bus width (bits) for `classes` classes at `radix`.
[[nodiscard]] constexpr std::uint32_t min_bus_width(std::uint32_t radix,
                                                    std::uint32_t classes) {
  return radix * classes;
}

/// GB thermometer lanes left after reserving the GL and BE lanes, rounded
/// down to a power of two (the level is taken from auxVC MSBs). Returns 0
/// when the bus cannot host three classes.
[[nodiscard]] constexpr std::uint32_t gb_lanes_available(
    std::uint32_t bus_width, std::uint32_t radix, bool gl_lane, bool be_lane) {
  const std::uint32_t lanes = num_lanes(bus_width, radix);
  const std::uint32_t reserved = (gl_lane ? 1u : 0u) + (be_lane ? 1u : 0u);
  if (lanes <= reserved) return 0;
  std::uint32_t gb = lanes - reserved;
  std::uint32_t pow2 = 1;
  while (pow2 * 2 <= gb) pow2 *= 2;
  return pow2;
}

}  // namespace ssq::qosmath
