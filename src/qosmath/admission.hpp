// GL-class admission control — the runtime counterpart of Eqs. (1)-(3):
// given the senders that want to inject time-critical bursts to an output
// and their latency constraints, decide whether the constraints are
// satisfiable at all (Eq. 1) and apportion per-sender burst budgets
// (Eqs. 2-3), mapped back to sender identities.
#pragma once

#include <cstdint>
#include <vector>

#include "qosmath/gl_bound.hpp"
#include "sim/types.hpp"

namespace ssq::qosmath {

struct GlSender {
  InputId input = 0;
  /// The worst network wait (cycles) this sender's packets tolerate.
  double deadline_cycles = 0.0;
};

struct GlAdmissionResult {
  /// True iff every sender's deadline is at least the Eq. (1) bound for the
  /// registered population (a deadline below the structural bound is
  /// unsatisfiable no matter how small the bursts).
  bool feasible = false;
  /// Per registered sender (same order as the input vector): maximum burst
  /// size in whole packets (floor of the Eq. 2-3 budget; 0 = the deadline
  /// only admits isolated packets).
  std::vector<std::uint32_t> burst_packets;
};

/// Evaluates admission for `senders` at an output whose GL class has
/// `params.buffer_flits`-deep buffers and packet lengths in
/// [params.l_min, params.l_max]. `params.n_gl` is ignored (derived from
/// senders.size()).
[[nodiscard]] GlAdmissionResult admit_gl_senders(
    std::vector<GlSender> senders, GlBoundParams params);

}  // namespace ssq::qosmath
