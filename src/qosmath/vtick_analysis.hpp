// Vtick quantisation analysis.
//
// The hardware stores Vtick in a finite register (8 bits in Table 1, with an
// optional power-of-two pre-scale in this implementation). A quantised Vtick
// shifts the flow's effective reserved rate: effective_rate = L / Vtick_q.
// The paper reports all counter-management schemes delivering bandwidth
// "on average within 2 % of their reserved rates" — the quantisation error
// bound below is the analytical part of that budget.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace ssq::qosmath {

struct VtickError {
  double ideal_vtick = 0.0;      // cycles
  std::uint64_t quantized = 0;   // cycles, as represented by the register
  double effective_rate = 0.0;   // L / quantized
  double relative_error = 0.0;   // |effective - requested| / requested
};

/// Quantisation outcome for one reservation.
[[nodiscard]] VtickError vtick_error(const core::SsvcParams& params,
                                     double rate, std::uint32_t packet_len);

/// Worst relative rate error over rates in [rate_lo, rate_hi] sampled at
/// `samples` points (geometric spacing).
[[nodiscard]] double max_vtick_error(const core::SsvcParams& params,
                                     double rate_lo, double rate_hi,
                                     std::uint32_t packet_len,
                                     std::uint32_t samples = 256);

}  // namespace ssq::qosmath
