#include "switch/crossbar.hpp"

#include "arb/pvc.hpp"
#include "fault/injector.hpp"
#include "fault/scrubber.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <utility>

namespace ssq::sw {

CrossbarSwitch::CrossbarSwitch(const SwitchConfig& config,
                               traffic::Workload workload)
    : config_(config), workload_(std::move(workload)), rng_(config.seed) {
  config_.validate();
  SSQ_EXPECT(workload_.radix() == config_.radix);
  workload_.validate();
  if (config_.packet_chaining) {
    SSQ_EXPECT(config_.mode == ArbitrationMode::SsvcQos &&
               "packet chaining requires the QoS arbiters (baseline WRR/DWRR "
               "cannot be charged without a pick)");
  }

  const std::uint32_t radix = config_.radix;
  scratch_ = StepScratch(radix);
  inputs_.reserve(radix);
  for (InputId i = 0; i < radix; ++i) {
    inputs_.emplace_back(i, radix, config_.buffers);
  }
  output_free_at_.assign(radix, 0);
  transmissions_.resize(radix);
  usage_.resize(radix);
  preemptions_.assign(radix, 0);
  if (config_.pvc.preemption) {
    SSQ_EXPECT(config_.mode == ArbitrationMode::Baseline &&
               config_.baseline == arb::Kind::Pvc &&
               "PVC preemption requires the PVC baseline arbiter");
  }

  if (config_.mode == ArbitrationMode::SsvcQos) {
    qos_.reserve(radix);
  } else {
    baseline_.reserve(radix);
  }
  for (OutputId o = 0; o < radix; ++o) {
    auto alloc = workload_.allocation_for(o);
    if (config_.mode == ArbitrationMode::SsvcQos) {
      qos_.push_back(std::make_unique<core::OutputQosArbiter>(
          radix, config_.ssvc, std::move(alloc), config_.gl_policing,
          config_.gl_allowance_packets, config_.kernel));
    } else {
      // Rate-parameterised baselines receive the GB reservations; inputs
      // with no reservation get a nominal unit share.
      std::vector<double> rates(radix, 0.0);
      bool any = false;
      for (InputId i = 0; i < radix; ++i) {
        rates[i] = alloc.gb_rate[i];
        if (rates[i] > 0.0) any = true;
      }
      for (InputId i = 0; i < radix; ++i) {
        if (rates[i] <= 0.0) rates[i] = any ? 1e-3 : 1.0;
      }
      baseline_.push_back(arb::make_arbiter(config_.baseline, radix, rates,
                                            alloc.gb_packet_len));
    }
  }

  if (config_.engine != arb::MatchKind::None) {
    // The engine stream must be independent of the per-flow injector forks
    // (rng_.fork(f) below) — derive it by hashing the seed once.
    std::uint64_t sm = config_.seed ^ 0x6d61746368ULL;  // "match"
    engine_ = arb::make_engine(config_.engine, radix, config_.match_iterations,
                               splitmix64(sm));
  }

  input_flows_.resize(radix);
  accept_ptr_.assign(radix, 0);
  accept_out_ptr_.assign(radix, 0);
  const auto& flows = workload_.flows();
  injectors_.reserve(flows.size());
  source_q_.resize(flows.size());
  max_backlog_.assign(flows.size(), 0);
  delivered_.assign(flows.size(), 0);
  throughput_.resize(flows.size());
  gsf_quota_.assign(flows.size(), 0);
  gsf_used_.assign(flows.size(), 0);
  nonempty_src_flows_.assign(radix, 0);
  bern_bank_ = std::make_unique<traffic::BernoulliBank>();
  for (FlowId f = 0; f < flows.size(); ++f) {
    injectors_.emplace_back(flows[f], rng_.fork(f));
    // Eligible (strict-interior Bernoulli) streams migrate into the SoA
    // bank, advanced 4-wide once per cycle at the top of inject_create().
    injectors_.back().bind_bank(*bern_bank_);
    input_flows_[flows[f].src].push_back(f);
    latency_.register_flow(flows[f].cls);
    wait_.register_flow(flows[f].cls);
    if (config_.gsf.enabled &&
        flows[f].cls == TrafficClass::GuaranteedBandwidth) {
      const double per_frame =
          flows[f].reserved_rate *
          static_cast<double>(config_.gsf.frame_cycles) /
          static_cast<double>(flows[f].mean_len());
      gsf_quota_[f] = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(per_frame));
    }
  }
  throughput_.open_window(0);
  // Baseline arbiters tick on_idle() every cycle, which makes idle cycles
  // observable; every other per-cycle consumer participates in the
  // event-horizon protocol, so SSVC-mode configs are always eligible.
  ff_eligible_ = config_.fast_forward && config_.mode == ArbitrationMode::SsvcQos;
  select_pipeline();
}

void CrossbarSwitch::select_pipeline() noexcept {
  if (!config_.specialize) {
    step_fn_ = &CrossbarSwitch::step_impl<DynPolicy>;
    return;
  }
  // Index bits: probe | fault-or-scrub | gsf. The table pins all eight
  // static instantiations (plus DynPolicy above) into this TU.
  static constexpr void (CrossbarSwitch::*kPipelines[8])() = {
      &CrossbarSwitch::step_impl<StaticPolicy<false, false, false>>,
      &CrossbarSwitch::step_impl<StaticPolicy<false, false, true>>,
      &CrossbarSwitch::step_impl<StaticPolicy<false, true, false>>,
      &CrossbarSwitch::step_impl<StaticPolicy<false, true, true>>,
      &CrossbarSwitch::step_impl<StaticPolicy<true, false, false>>,
      &CrossbarSwitch::step_impl<StaticPolicy<true, false, true>>,
      &CrossbarSwitch::step_impl<StaticPolicy<true, true, false>>,
      &CrossbarSwitch::step_impl<StaticPolicy<true, true, true>>,
  };
  const unsigned idx = (obs_ != nullptr ? 4u : 0u) |
                       ((fault_ != nullptr || scrub_ != nullptr) ? 2u : 0u) |
                       (config_.gsf.enabled ? 1u : 0u);
  step_fn_ = kPipelines[idx];
}

const InputPort& CrossbarSwitch::input(InputId i) const {
  SSQ_EXPECT(i < inputs_.size());
  return inputs_[i];
}

void CrossbarSwitch::attach_probe(obs::SwitchProbe* probe) {
  SSQ_EXPECT(probe == nullptr || probe->radix() == config_.radix);
  obs_ = probe;
  // SSVC arbiters report their internals into the same probe; the class-blind
  // baselines have no QoS state worth tracing.
  for (OutputId o = 0; o < qos_.size(); ++o) {
    qos_[o]->set_probe(probe, o);
  }
  if (fault_ != nullptr) fault_->set_probe(probe);
  select_pipeline();
}

void CrossbarSwitch::attach_fault_injector(fault::FaultInjector* injector) {
  fault_ = injector;
  select_pipeline();
  if (injector == nullptr) return;
  std::vector<core::OutputQosArbiter*> arbs;
  arbs.reserve(qos_.size());
  for (auto& q : qos_) arbs.push_back(q.get());
  injector->bind(std::move(arbs), config_.radix);
  injector->set_probe(obs_);
  // Injected LRG corruption must degrade gracefully, not abort: the strict
  // total-order invariant is suspended only while faults are being injected.
  for (auto& q : qos_) q->lrg().set_fault_tolerant(true);
}

void CrossbarSwitch::attach_scrubber(fault::StateScrubber* scrubber) {
  scrub_ = scrubber;
  select_pipeline();
  if (scrubber == nullptr) return;
  std::vector<core::OutputQosArbiter*> arbs;
  arbs.reserve(qos_.size());
  for (auto& q : qos_) arbs.push_back(q.get());
  scrubber->bind(std::move(arbs));
}

core::OutputQosArbiter& CrossbarSwitch::qos_arbiter(OutputId o) {
  SSQ_EXPECT(config_.mode == ArbitrationMode::SsvcQos);
  SSQ_EXPECT(o < qos_.size());
  return *qos_[o];
}

bool CrossbarSwitch::output_idle(OutputId o) const {
  SSQ_EXPECT(o < output_free_at_.size());
  return output_free_at_[o] <= now_;
}

CrossbarSwitch::ChannelUsage CrossbarSwitch::channel_usage(OutputId o) const {
  SSQ_EXPECT(o < usage_.size());
  return usage_[o];
}

std::uint64_t CrossbarSwitch::preemptions(OutputId o) const {
  SSQ_EXPECT(o < preemptions_.size());
  return preemptions_[o];
}

void CrossbarSwitch::preempt_scan() {
  for (OutputId o = 0; o < config_.radix; ++o) {
    auto& t = transmissions_[o];
    if (!t.active || now_ >= t.last_flit) continue;
    auto* pvc = dynamic_cast<arb::PvcArbiter*>(baseline_[o].get());
    SSQ_ENSURE(pvc != nullptr);
    // Best waiting challenger for this output.
    std::uint32_t best_level = pvc->num_levels();
    for (InputId i = 0; i < config_.radix; ++i) {
      if (inputs_[i].busy(now_)) continue;
      if (candidate_for(i, o) == nullptr) continue;
      best_level = std::min(best_level, pvc->level(i, now_));
    }
    if (best_level + config_.pvc.preempt_margin >= t.granted_level) continue;

    // Abort: the victim is dropped and retried from the source buffer; the
    // flits already moved are waste. transfer() has already run this cycle,
    // so flits for cycles first_flit..now_ inclusive are gone.
    const auto transferred = static_cast<std::uint32_t>(
        now_ >= t.first_flit ? now_ - t.first_flit + 1 : 0);
    throughput_.unrecord_flits(t.pkt.flow, transferred);
    if (measuring_) {
      // Saturating: the grant may predate the measurement window.
      const std::uint64_t untransferred = t.pkt.length - transferred;
      usage_[o].transfer_cycles -=
          std::min<std::uint64_t>(untransferred, usage_[o].transfer_cycles);
    }
    wasted_flits_ += transferred;
    ++preemptions_[o];
    if (obs_ != nullptr) {
      obs_->preempted(now_, t.pkt.src, o, t.pkt.cls, t.pkt.flow, t.pkt.id,
                      transferred);
    }
    const InputId src = t.pkt.src;
    Packet victim = std::move(t.pkt);
    victim.granted = kNoCycle;
    if (inputs_[src].can_restore(victim.cls, victim.dst, transferred)) {
      // Re-account the drained flits and retry from the buffer head.
      inputs_[src].push_front(std::move(victim), transferred);
    } else {
      // Admission refilled the drained space: release what the victim still
      // holds and retransmit from the source queue (its network-latency
      // clock restarts at re-admission, as a true source retransmit would).
      for (std::uint32_t k = transferred; k < victim.length; ++k) {
        inputs_[src].drain_flit(victim.cls, victim.dst);
      }
      const FlowId vf = victim.flow;
      source_q_[vf].push_front(std::move(victim));
      note_source_push(vf, src);
      max_backlog_[vf] = std::max(max_backlog_[vf], source_q_[vf].size());
    }
    inputs_[src].set_free_at(now_);
    output_free_at_[o] = now_;
    t.active = false;
    active_out_ &= ~(1ULL << o);
  }
}

std::uint64_t CrossbarSwitch::delivered_packets(FlowId f) const {
  SSQ_EXPECT(f < delivered_.size());
  return delivered_[f];
}

std::uint64_t CrossbarSwitch::created_packets(FlowId f) const {
  SSQ_EXPECT(f < injectors_.size());
  return injectors_[f].created();
}

std::size_t CrossbarSwitch::max_source_backlog(FlowId f) const {
  SSQ_EXPECT(f < max_backlog_.size());
  return max_backlog_[f];
}

template <class P>
void CrossbarSwitch::inject_create() {
  // One lock-step trial for every banked Bernoulli stream; packets_at()
  // below reads the latched outcomes.
  if (!bern_bank_->empty()) bern_bank_->roll(now_);
  // Packet creation into source queues.
  for (FlowId f = 0; f < injectors_.size(); ++f) {
    auto& inj = injectors_[f];
    const std::uint32_t n = inj.packets_at(now_);
    for (std::uint32_t k = 0; k < n; ++k) {
      Packet p;
      p.id = next_packet_id_++;
      p.flow = f;
      p.src = inj.spec().src;
      p.dst = inj.spec().dst;
      p.cls = inj.spec().cls;
      p.length = inj.draw_length();
      p.created = now_;
      if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
        pr->packet_created(now_, f, p.id, p.src, p.dst, p.cls, p.length,
                           source_q_[f].size() + 1);
      }
      source_q_[f].push_back(std::move(p));
      note_source_push(f, inj.spec().src);
    }
    if (n != 0) {
      // The backlog only grows at a push, so sampling after pushes (here and
      // at the preempt re-queue) sees the same running maximum as sampling
      // every cycle did.
      live_packets_ += n;
      max_backlog_[f] = std::max(max_backlog_[f], source_q_[f].size());
    }
  }
}

template <class P>
void CrossbarSwitch::inject_admit() {
  // GSF frame bookkeeping: reset quotas at frame boundaries; injection of
  // regulated flows pauses during the barrier window.
  bool gsf_barrier = false;
  if (p_gsf<P>()) {
    if (now_ - gsf_frame_start_ >= config_.gsf.frame_cycles) {
      // Catch up whole frames — one in stepped runs, possibly many after a
      // fast-forward jump — keeping the boundary grid aligned to cycle 0.
      // Assigning now_ here instead would shear the grid after a jump; the
      // modulo form is identical when stepping (the quotient is 1: the
      // boundary is checked every cycle, so the distance is exactly one
      // frame when it triggers).
      gsf_frame_start_ +=
          ((now_ - gsf_frame_start_) / config_.gsf.frame_cycles) *
          config_.gsf.frame_cycles;
      for (auto& used : gsf_used_) used = 0;
    }
    gsf_barrier =
        (now_ - gsf_frame_start_) < config_.gsf.barrier_cycles;
  }

  // Admission: at most one packet per input per cycle, round-robin over the
  // input's flows. Only inputs with something queued at the source are
  // visited (admit_mask_); skipped inputs would fall straight through every
  // source_q_ empty-check, so the walk order (still ascending) and outcome
  // are unchanged.
  fault::FaultInjector* const fi = p_fault<P>();
  for (std::uint64_t mw = admit_mask_; mw != 0; mw &= mw - 1) {
    const auto i = static_cast<InputId>(std::countr_zero(mw));
    const auto& flows = input_flows_[i];
    // A dead input port admits nothing; its traffic backs up at the source.
    if (fi != nullptr && fi->port_dead(i)) continue;
    const std::size_t nf = flows.size();
    for (std::size_t k = 0; k < nf; ++k) {
      // accept_ptr_ < nf and k < nf, so one conditional subtract replaces
      // the modulo (an integer division per input per cycle on the hot path).
      std::size_t idx = accept_ptr_[i] + k;
      if (idx >= nf) idx -= nf;
      const FlowId f = flows[idx];
      if (source_q_[f].empty()) continue;
      if (gsf_quota_[f] > 0 &&
          (gsf_barrier || gsf_used_[f] >= gsf_quota_[f])) {
        continue;  // GSF: out of frame quota, or inside the barrier window
      }
      if (!inputs_[i].can_accept(source_q_[f].front())) {
        if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
          const Packet& blocked = source_q_[f].front();
          pr->admit_blocked(now_, f, blocked.src, blocked.dst, blocked.cls,
                            blocked.length);
        }
        continue;
      }
      if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
        const Packet& head = source_q_[f].front();
        pr->packet_buffered(now_, f, head.id, head.src, head.dst, head.cls,
                            head.length);
      }
      inputs_[i].accept(std::move(source_q_[f].front()), now_);
      source_q_[f].pop_front();
      note_source_pop(f, i);
      if (gsf_quota_[f] > 0) ++gsf_used_[f];
      accept_ptr_[i] = idx + 1 == nf ? 0 : idx + 1;
      break;
    }
  }
}

template <class P>
void CrossbarSwitch::transfer() {
  for (std::uint64_t w = active_out_; w != 0; w &= w - 1) {
    const auto o = static_cast<OutputId>(std::countr_zero(w));
    auto& t = transmissions_[o];
    if (now_ < t.first_flit) continue;
    SSQ_ENSURE(now_ <= t.last_flit);
    throughput_.record_flit(t.pkt.flow, now_);
    inputs_[t.pkt.src].drain_flit(t.pkt.cls, t.pkt.dst);
    if (now_ == t.last_flit) complete<P>(t, o);
  }
}

template <class P>
void CrossbarSwitch::complete(Transmission& t, OutputId o) {
  t.pkt.delivered = now_;
  if (measuring_) {
    const Cycle from =
        config_.latency_from_creation ? t.pkt.created : t.pkt.buffered;
    latency_.record(t.pkt.flow, static_cast<double>(t.pkt.delivered - from));
    wait_.record(t.pkt.flow, static_cast<double>(t.pkt.granted - t.pkt.buffered));
  }
  ++delivered_[t.pkt.flow];
  SSQ_ENSURE(live_packets_ >= 1);
  --live_packets_;
  if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
    const Cycle from =
        config_.latency_from_creation ? t.pkt.created : t.pkt.buffered;
    pr->delivered(now_, t.pkt.src, o, t.pkt.cls, t.pkt.flow, t.pkt.id,
                  t.pkt.length, now_ - from);
  }

  const InputId src = t.pkt.src;
  const TrafficClass cls = t.pkt.cls;
  t.active = false;
  active_out_ &= ~(1ULL << o);

  // Packet Chaining: the next packet of the same (input, queue, output) may
  // seize the channel without a fresh arbitration cycle; the arbiter state
  // is still charged for it. GL-awareness: chaining removes arbitration
  // opportunities, which would break the Eq. (1) bound — so a chain is
  // broken whenever any input holds a GL packet for this output.
  if (config_.packet_chaining) {
    // A dead port or crosspoint cannot chain either.
    if (fault::FaultInjector* const fi = p_fault<P>();
        fi != nullptr && (fi->port_dead(src) || !fi->link_alive(src, o))) {
      return;
    }
    for (InputId i = 0; i < config_.radix; ++i) {
      if (const Packet* h = inputs_[i].gl_head();
          h != nullptr && h->dst == o) {
        return;  // yield the channel to a fresh (GL-winning) arbitration
      }
    }
    const Packet* head = nullptr;
    switch (cls) {
      case TrafficClass::GuaranteedBandwidth:
        head = inputs_[src].gb_head(o);
        break;
      case TrafficClass::BestEffort: {
        const Packet* h = inputs_[src].be_head();
        head = (h && h->dst == o) ? h : nullptr;
        break;
      }
      case TrafficClass::GuaranteedLatency: {
        const Packet* h = inputs_[src].gl_head();
        head = (h && h->dst == o) ? h : nullptr;
        break;
      }
    }
    if (head != nullptr) {
      qos_[o]->advance_to(now_);
      // GL chaining is also policed: an over-budget GL class cannot chain.
      if (cls != TrafficClass::GuaranteedLatency ||
          qos_[o]->gl_tracker().eligible(now_)) {
        Packet pkt = pop_for(src, cls, o);
        pkt.granted = now_;
        if (measuring_) usage_[o].transfer_cycles += pkt.length;  // no arb
        qos_[o]->on_grant(src, cls, pkt.length, now_);
        if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
          pr->grant(now_, src, o, cls, pkt.flow, pkt.id, pkt.length,
                    now_ - pkt.buffered, /*chained=*/true);
          pr->transfer_start(now_ + 1, src, o, cls, pkt.flow, pkt.id,
                             pkt.length);
        }
        start_transmission(std::move(pkt), o, now_ + 1);
        if (cls == TrafficClass::GuaranteedBandwidth) {
          inputs_[src].advance_gb_pointer(o);
        }
      }
    }
  }
}

Packet CrossbarSwitch::pop_for(InputId i, TrafficClass cls, OutputId o) {
  switch (cls) {
    case TrafficClass::BestEffort: {
      Packet p = inputs_[i].pop_be();
      SSQ_ENSURE(p.dst == o);
      return p;
    }
    case TrafficClass::GuaranteedBandwidth:
      return inputs_[i].pop_gb(o);
    case TrafficClass::GuaranteedLatency: {
      Packet p = inputs_[i].pop_gl();
      SSQ_ENSURE(p.dst == o);
      return p;
    }
  }
  SSQ_EXPECT(false);
  return Packet{};
}

void CrossbarSwitch::start_transmission(Packet&& pkt, OutputId o,
                                        Cycle first_flit) {
  auto& t = transmissions_[o];
  SSQ_EXPECT(!t.active);
  const Cycle last = first_flit + pkt.length - 1;
  inputs_[pkt.src].set_free_at(last + 1);
  output_free_at_[o] = last + 1;
  t.pkt = std::move(pkt);
  t.first_flit = first_flit;
  t.last_flit = last;
  t.active = true;
  active_out_ |= 1ULL << o;
}

template <class P>
void CrossbarSwitch::select_requests(
    std::vector<PendingRequest>& pending) const {
  pending.assign(inputs_.size(), PendingRequest{});
  // Outputs that can start a transmission this cycle, as one bitmask: hoists
  // the output_idle() probes out of the per-input scans — the GB rotation
  // pre-ANDs busy outputs away instead of testing them one by one.
  std::uint64_t idle = 0;
  for (std::size_t o = 0; o < output_free_at_.size(); ++o) {
    if (output_free_at_[o] <= now_) idle |= 1ULL << o;
  }
  fault::FaultInjector* const fi = p_fault<P>();
  for (InputId i = 0; i < inputs_.size(); ++i) {
    const auto& port = inputs_[i];
    if (port.busy(now_)) continue;
    if (fi != nullptr && fi->port_dead(i)) continue;  // port outage

    const auto link_ok = [fi, i](OutputId o) {
      return fi == nullptr || fi->link_alive(i, o);
    };
    const auto prio_of = [this](const Packet& p) {
      return workload_.flow(p.flow).legacy_priority;
    };
    // 1) GL head, if its channel can arbitrate this cycle.
    if (const Packet* h = port.gl_head();
        h != nullptr && ((idle >> h->dst) & 1) != 0 && link_ok(h->dst)) {
      pending[i] = {h->dst, h->cls, h->length, h->buffered, prio_of(*h)};
      continue;
    }
    // 2) GB heads, rotating over outputs for per-port fairness. The port's
    // non-empty bitmask, masked to idle outputs, narrows the rotating scan
    // to servable crosspoint queues (same visit order — and so the same
    // choice — as scanning every output from gb_pointer()).
    bool chosen = false;
    if (const std::uint64_t occ = port.gb_nonempty() & idle; occ != 0) {
      const auto try_output = [&](OutputId o) {
        if (chosen || !link_ok(o)) return;
        const Packet* h = port.gb_head(o);
        pending[i] = {o, h->cls, h->length, h->buffered, prio_of(*h)};
        chosen = true;
      };
      const std::uint32_t ptr = port.gb_pointer();
      const std::uint64_t below = (1ULL << ptr) - 1;  // ptr < radix <= 64
      for (std::uint64_t w = occ & ~below; w != 0 && !chosen; w &= w - 1) {
        try_output(static_cast<OutputId>(std::countr_zero(w)));
      }
      for (std::uint64_t w = occ & below; w != 0 && !chosen; w &= w - 1) {
        try_output(static_cast<OutputId>(std::countr_zero(w)));
      }
    }
    if (chosen) continue;
    // 3) BE head.
    if (const Packet* h = port.be_head();
        h != nullptr && ((idle >> h->dst) & 1) != 0 && link_ok(h->dst)) {
      pending[i] = {h->dst, h->cls, h->length, h->buffered, prio_of(*h)};
    }
  }
}

template <class P>
void CrossbarSwitch::arbitrate() {
  StepScratch& s = scratch_;
  select_requests<P>(s.pending);
  if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
    for (InputId i = 0; i < s.pending.size(); ++i) {
      if (s.pending[i].out != kNoPort) {
        pr->request(now_, i, s.pending[i].out, s.pending[i].cls);
      }
    }
  }

  const std::uint32_t radix = config_.radix;
  const bool ssvc = config_.mode == ArbitrationMode::SsvcQos;
  if (ssvc && config_.kernel != core::ArbKernel::Scalar) {
    arbitrate_masked<P>();
    return;
  }

  // Counting-sort the asserted requests into per-output slices of one flat
  // array (stable: input order is preserved within each output, exactly as
  // the old per-output input scan produced it). One O(radix) pass replaces
  // the O(radix^2) gather, and the scratch arrays make it allocation-free.
  std::fill(s.bucket_begin.begin(), s.bucket_begin.end(), 0u);
  for (InputId i = 0; i < radix; ++i) {
    const OutputId o = s.pending[i].out;
    if (o != kNoPort) ++s.bucket_begin[o + 1];
  }
  for (OutputId o = 0; o < radix; ++o) {
    s.bucket_begin[o + 1] += s.bucket_begin[o];
  }
  std::copy(s.bucket_begin.begin(), s.bucket_begin.end() - 1,
            s.bucket_cursor.begin());
  const std::uint32_t total = s.bucket_begin[radix];
  if (ssvc) {
    s.qos_reqs.resize(total);  // capacity reserved to radix at construction
  } else {
    s.base_reqs.resize(total);
  }
  for (InputId i = 0; i < radix; ++i) {
    const PendingRequest& p = s.pending[i];
    if (p.out == kNoPort) continue;
    const std::uint32_t slot = s.bucket_cursor[p.out]++;
    if (ssvc) {
      s.qos_reqs[slot] = {i, p.cls, p.length};
    } else {
      s.base_reqs[slot] = {i, p.length, p.buffered, p.prio};
    }
  }

  for (OutputId o = 0; o < radix; ++o) {
    if (!output_idle(o)) continue;
    const std::uint32_t begin = s.bucket_begin[o];
    const std::uint32_t count = s.bucket_begin[o + 1] - begin;

    InputId winner = kNoPort;
    TrafficClass win_cls = TrafficClass::BestEffort;
    if (ssvc) {
      if (count == 0) continue;
      auto& arbiter = *qos_[o];
      arbiter.advance_to(now_);
      const std::span<const core::ClassRequest> reqs(&s.qos_reqs[begin],
                                                     count);
      winner = arbiter.pick(reqs, now_);
      if (winner == kNoPort) continue;  // stalled GL only
      win_cls = arbiter.picked_class();
      SSQ_ENSURE(win_cls == s.pending[winner].cls);
      arbiter.on_grant(winner, win_cls, s.pending[winner].length, now_);
    } else {
      auto& arbiter = *baseline_[o];
      if (count == 0) {
        arbiter.on_idle(now_);
        continue;
      }
      const std::span<const arb::Request> reqs(&s.base_reqs[begin], count);
      winner = arbiter.pick(reqs, now_);
      if (winner == kNoPort) {  // TDM: the slot owner is idle — wasted slot
        arbiter.on_idle(now_);
        continue;
      }
      win_cls = s.pending[winner].cls;
      if (auto* pvc = dynamic_cast<arb::PvcArbiter*>(&arbiter)) {
        transmissions_[o].granted_level = pvc->level(winner, now_);
      }
      arbiter.on_grant(winner, s.pending[winner].length, now_);
    }

    commit_grant<P>(winner, o, win_cls);
  }
}

template <class P>
void CrossbarSwitch::arbitrate_masked() {
  // Bit-sliced single-request allocation: one O(radix) pass packs every
  // asserted request into per-output class masks, and each live output
  // resolves in O(lanes + words) word operations. Request order inside an
  // output is ascending input order by construction (bit order), exactly
  // what the counting sort produced for the scalar kernel.
  StepScratch& s = scratch_;
  const std::uint32_t radix = config_.radix;
  std::fill(s.gl_mask.begin(), s.gl_mask.end(), 0ULL);
  std::fill(s.gb_mask.begin(), s.gb_mask.end(), 0ULL);
  std::fill(s.be_mask.begin(), s.be_mask.end(), 0ULL);
  std::uint64_t requested = 0;  // outputs with >= 1 asserted request
  for (InputId i = 0; i < radix; ++i) {
    const PendingRequest& p = s.pending[i];
    if (p.out == kNoPort) continue;
    const std::uint64_t bit = 1ULL << i;
    requested |= 1ULL << p.out;
    switch (p.cls) {
      case TrafficClass::GuaranteedLatency: s.gl_mask[p.out] |= bit; break;
      case TrafficClass::GuaranteedBandwidth: s.gb_mask[p.out] |= bit; break;
      case TrafficClass::BestEffort: s.be_mask[p.out] |= bit; break;
    }
  }
  // Only requested outputs can grant; an un-requested output's advance_to()
  // stays lazy exactly as in the scalar kernel. Bit order == ascending o.
  for (std::uint64_t w = requested; w != 0; w &= w - 1) {
    const auto o = static_cast<OutputId>(std::countr_zero(w));
    if (!output_idle(o)) continue;
    const std::uint64_t gl = s.gl_mask[o];
    const std::uint64_t gb = s.gb_mask[o];
    const std::uint64_t be = s.be_mask[o];
    auto& arbiter = *qos_[o];
    arbiter.advance_to(now_);
    const InputId winner = arbiter.pick_masked(gl, gb, be, now_);
    if (winner == kNoPort) continue;  // stalled GL only
    const TrafficClass win_cls = arbiter.picked_class();
    SSQ_ENSURE(win_cls == s.pending[winner].cls);
    arbiter.on_grant(winner, win_cls, s.pending[winner].length, now_);
    commit_grant<P>(winner, o, win_cls);
  }
}

template <class P>
void CrossbarSwitch::commit_grant(InputId winner, OutputId o,
                                  TrafficClass cls) {
  Packet pkt = pop_for(winner, cls, o);
  pkt.granted = now_;
  if (measuring_) {
    usage_[o].arbitration_cycles += config_.arbitration_cycles;
    usage_[o].transfer_cycles += pkt.length;
  }
  if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
    pr->grant(now_, winner, o, cls, pkt.flow, pkt.id, pkt.length,
              now_ - pkt.buffered, /*chained=*/false);
    pr->transfer_start(now_ + config_.arbitration_cycles, winner, o, cls,
                       pkt.flow, pkt.id, pkt.length);
  }
  // Arbitration occupies arbitration_cycles (1 for SSVC, 2 for the legacy
  // 4-level design [14]); flits flow once it completes.
  start_transmission(std::move(pkt), o, now_ + config_.arbitration_cycles);
  if (cls == TrafficClass::GuaranteedBandwidth) {
    inputs_[winner].advance_gb_pointer(o);
  }
}

const Packet* CrossbarSwitch::candidate_for(InputId i, OutputId o) const {
  const auto& port = inputs_[i];
  if (const Packet* h = port.gl_head(); h != nullptr && h->dst == o) return h;
  if (const Packet* h = port.gb_head(o); h != nullptr) return h;
  if (const Packet* h = port.be_head(); h != nullptr && h->dst == o) return h;
  return nullptr;
}

template <class P>
void CrossbarSwitch::arbitrate_matched() {
  // iSLIP-style request/grant/accept over the idle ports. Every iteration:
  // each unmatched idle output runs its (QoS or baseline) arbitration over
  // the unmatched idle inputs that have a ready head for it (the GRANT
  // step); each input then ACCEPTS at most one grant — highest class first,
  // then a rotating pointer over outputs — and the pair is committed
  // immediately, so later iterations arbitrate against updated state.
  const std::uint32_t radix = config_.radix;
  StepScratch& s = scratch_;
  // Matching masks: bit i of in_matched == input i is matched (or may not
  // request); bit o of out_done == output o is settled. One uint64_t word
  // each — radix <= 64 — where the old code allocated two vector<bool>.
  std::uint64_t in_matched = 0;
  std::uint64_t out_done = 0;
  for (OutputId o = 0; o < radix; ++o) {
    if (!output_idle(o)) out_done |= 1ULL << o;
  }
  fault::FaultInjector* const fi = p_fault<P>();
  for (InputId i = 0; i < radix; ++i) {
    if (inputs_[i].busy(now_)) in_matched |= 1ULL << i;
    if (fi != nullptr && fi->port_dead(i)) in_matched |= 1ULL << i;
  }

  auto& qos_reqs = s.qos_reqs;
  auto& base_reqs = s.base_reqs;
  for (std::uint32_t iter = 0; iter < config_.match_iterations; ++iter) {
    // GRANT step: every live output picks a winner among current requesters.
    s.grant_to.assign(radix, kNoPort);     // per output
    s.grant_cls.assign(radix, TrafficClass::BestEffort);
    bool any_grant = false;
    for (OutputId o = 0; o < radix; ++o) {
      if ((out_done >> o) & 1ULL) continue;
      qos_reqs.clear();
      base_reqs.clear();
      for (InputId i = 0; i < radix; ++i) {
        if ((in_matched >> i) & 1ULL) continue;
        if (fi != nullptr && !fi->link_alive(i, o)) continue;
        const Packet* h = candidate_for(i, o);
        if (h == nullptr) continue;
        // Matched mode exposes every ready head; report each (input, output)
        // candidacy once, on the first matching round.
        if (obs::SwitchProbe* pr = p_probe<P>(); iter == 0 && pr != nullptr) {
          pr->request(now_, i, o, h->cls);
        }
        if (config_.mode == ArbitrationMode::SsvcQos) {
          qos_reqs.push_back({i, h->cls, h->length});
        } else {
          base_reqs.push_back({i, h->length, h->buffered,
                               workload_.flow(h->flow).legacy_priority});
        }
      }
      InputId w = kNoPort;
      if (config_.mode == ArbitrationMode::SsvcQos) {
        if (qos_reqs.empty()) continue;
        auto& arbiter = *qos_[o];
        arbiter.advance_to(now_);
        w = arbiter.pick(qos_reqs, now_);
        if (w == kNoPort) {  // stalled GL only
          out_done |= 1ULL << o;
          continue;
        }
        s.grant_cls[o] = arbiter.picked_class();
      } else {
        if (base_reqs.empty()) continue;
        w = baseline_[o]->pick(base_reqs, now_);
        if (w == kNoPort) continue;  // TDM off-slot
        const Packet* h = candidate_for(w, o);
        SSQ_ENSURE(h != nullptr);
        s.grant_cls[o] = h->cls;
      }
      s.grant_to[o] = w;
      any_grant = true;
    }
    if (!any_grant) break;

    // ACCEPT step: each input takes its best grant.
    for (InputId i = 0; i < radix; ++i) {
      if ((in_matched >> i) & 1ULL) continue;
      OutputId best = kNoPort;
      for (std::uint32_t off = 0; off < radix; ++off) {
        const OutputId o = (accept_out_ptr_[i] + off) % radix;
        if (s.grant_to[o] != i) continue;
        if (best == kNoPort ||
            higher_priority(s.grant_cls[o], s.grant_cls[best])) {
          best = o;
        }
      }
      if (best == kNoPort) continue;

      const TrafficClass cls = s.grant_cls[best];
      const Packet* h = candidate_for(i, best);
      SSQ_ENSURE(h != nullptr && h->cls == cls);
      const std::uint32_t length = h->length;
      if (config_.mode == ArbitrationMode::SsvcQos) {
        qos_[best]->on_grant(i, cls, length, now_);
      } else {
        // Restage the staged baselines (WRR/DWRR) on the accepted pair.
        s.restage.clear();
        s.restage.push_back({i, length, h->buffered,
                             workload_.flow(h->flow).legacy_priority});
        const InputId confirm = baseline_[best]->pick(s.restage, now_);
        SSQ_ENSURE(confirm == i);
        baseline_[best]->on_grant(i, length, now_);
      }
      commit_grant<P>(i, best, cls);
      in_matched |= 1ULL << i;
      out_done |= 1ULL << best;
      accept_out_ptr_[i] = (best + 1) % radix;
    }
  }
}

template <class P>
void CrossbarSwitch::arbitrate_engine() {
  // Matching-engine allocation: build the switch-wide eligibility/backlog
  // view once, hand it to the engine, commit the returned partial
  // permutation. The per-output QoS arbiters stay idle — class priority
  // survives only in candidate_for()'s head order (GL > GB > BE).
  const std::uint32_t radix = config_.radix;
  StepScratch& s = scratch_;
  std::fill(s.eng_voq.begin(), s.eng_voq.end(), 0U);

  std::uint64_t out_free = 0;
  for (OutputId o = 0; o < radix; ++o) {
    if (output_idle(o)) out_free |= 1ULL << o;
  }

  bool any_candidate = false;
  fault::FaultInjector* const fi = p_fault<P>();
  for (InputId i = 0; i < radix; ++i) {
    const InputPort& port = inputs_[i];
    std::uint64_t cand = 0;
    if (fi == nullptr || !fi->port_dead(i)) {
      cand = port.gb_nonempty();
      if (const Packet* h = port.gl_head(); h != nullptr) {
        cand |= 1ULL << h->dst;
      }
      if (const Packet* h = port.be_head(); h != nullptr) {
        cand |= 1ULL << h->dst;
      }
      if (fi != nullptr) {
        for (std::uint64_t w = cand; w != 0; w &= w - 1) {
          const auto o = static_cast<OutputId>(std::countr_zero(w));
          if (!fi->link_alive(i, o)) cand &= ~(1ULL << o);
        }
      }
    }
    const std::uint64_t elig = port.busy(now_) ? 0 : (cand & out_free);
    s.eng_candidates[i] = cand;
    s.eng_eligible[i] = elig;
    any_candidate |= cand != 0;
    // Backlog in flits behind each candidate crosspoint: the crosspoint GB
    // queue, plus the (shared-FIFO) GL/BE buffers when their head points at
    // o. Sampling weight for QPS, retirement signal for SW-QPS.
    for (std::uint64_t w = cand; w != 0; w &= w - 1) {
      const auto o = static_cast<OutputId>(std::countr_zero(w));
      std::uint32_t backlog = port.gb_occupancy(o);
      if (const Packet* h = port.gl_head(); h != nullptr && h->dst == o) {
        backlog += port.gl_occupancy();
      }
      if (const Packet* h = port.be_head(); h != nullptr && h->dst == o) {
        backlog += port.be_occupancy();
      }
      s.eng_voq[static_cast<std::size_t>(i) * radix + o] = backlog;
    }
    if (obs::SwitchProbe* pr = p_probe<P>(); pr != nullptr) {
      for (std::uint64_t w = elig; w != 0; w &= w - 1) {
        const auto o = static_cast<OutputId>(std::countr_zero(w));
        const Packet* h = candidate_for(i, o);
        SSQ_ENSURE(h != nullptr);
        pr->request(now_, i, o, h->cls);
      }
    }
  }
  // Nothing buffered anywhere: skip the engine call entirely. Exact under
  // idle-cycle fast-forward — engines change no state on an empty view, and
  // SW-QPS retires drained window entries lazily at its next real call.
  if (!any_candidate) return;

  std::fill(s.eng_match.begin(), s.eng_match.end(), kNoPort);
  const arb::MatchView view{
      radix, std::span<const std::uint64_t>(s.eng_eligible),
      std::span<const std::uint64_t>(s.eng_candidates),
      std::span<const std::uint32_t>(s.eng_voq)};
  const std::uint32_t iters = engine_->match(view, s.eng_match);
  ++engine_stats_.cycles;
  engine_stats_.iterations += iters;

  std::uint64_t in_used = 0;
  for (OutputId o = 0; o < radix; ++o) {
    const InputId i = s.eng_match[o];
    if (i == kNoPort) continue;
    SSQ_ENSURE(i < radix && "engine matched an out-of-range input");
    SSQ_ENSURE(((s.eng_eligible[i] >> o) & 1ULL) != 0 &&
               "engine matched an ineligible pair");
    SSQ_ENSURE(((in_used >> i) & 1ULL) == 0 &&
               "engine matched an input twice");
    in_used |= 1ULL << i;
    const Packet* h = candidate_for(i, o);
    SSQ_ENSURE(h != nullptr);
    commit_grant<P>(i, o, h->cls);
    ++engine_stats_.matches;
  }
}

template <class P>
void CrossbarSwitch::step_impl() {
  if (fault::FaultInjector* const fi = p_fault<P>(); fi != nullptr) {
    fi->on_cycle(now_);
  }
  if (fault::StateScrubber* const sc = p_scrub<P>(); sc != nullptr) {
    sc->on_cycle(now_);
  }
  if (create_pending_) {
    create_pending_ = false;  // fast_forward() already created at now_
  } else {
    inject_create<P>();
  }
  inject_admit<P>();
  transfer<P>();
  if (config_.pvc.preemption) preempt_scan();
  if (config_.allocation == AllocationMode::IterativeMatching) {
    if (engine_ != nullptr) {
      arbitrate_engine<P>();
    } else {
      arbitrate_matched<P>();
    }
  } else {
    arbitrate<P>();
  }
  ++now_;
}

void CrossbarSwitch::fast_forward(Cycle end) {
  SSQ_EXPECT(ff_eligible_);
  const Cycle from = now_;
  while (now_ < end && quiescent()) {
    // Fold every consumer's horizon (see event_horizon.hpp). Schedule-driven
    // consumers first: the fault plan's outage/stuck schedule and the
    // scrubber's next pass must land on full step() cycles.
    EventHorizon horizon(end);
    Cycle fault_due = kNoCycle;
    if (fault_ != nullptr) {
      fault_due = fault_->next_event(now_);
      horizon.limit(fault_due);
    }
    Cycle scrub_due = kNoCycle;
    if (scrub_ != nullptr) {
      scrub_due = scrub_->next_event();
      horizon.limit(scrub_due);
    }
    // Next cycle any injector may act. Bernoulli/OnOff sources roll their
    // RNG every cycle past start and report `now_`; deterministic kinds
    // (Periodic/BurstOnce/Trace) report their exact next event.
    Cycle min_next = kNoCycle;
    for (const auto& inj : injectors_) {
      const Cycle c = inj.next_active_cycle(now_);
      if (c < min_next) min_next = c;
    }
    horizon.limit(min_next);
    Cycle fire = kNoCycle;
    if (fault_ != nullptr && fault_->has_bitflip_rng()) {
      // Pre-roll the bitflip Bernoulli stream over the candidate window —
      // the cycles a jump would skip, plus now_ itself when the
      // creation-only path below would bypass the stepped on_cycle(). A
      // firing cycle clamps the horizon so the flip lands in a full step.
      fire = fault_->scan_fire(now_, std::max(horizon.target(), now_ + 1));
      horizon.limit(fire);
    }
    if (!horizon.due_now(now_)) {
      // Nothing is due before the horizon: nothing in an eligible idle
      // cycle touches any other state, so the clock jumps.
      ff_skipped_cycles_ += horizon.target() - now_;
      now_ = horizon.target();
      continue;
    }
    if (fault_due <= now_ || scrub_due <= now_ || fire <= now_) {
      // A fault/scrub consumer is due at now_ — its work must run inside a
      // full step() (injection before scrubbing before admission); hand
      // control back to the caller's step loop.
      break;
    }
    // Only injector work is due at now_: run creation alone.
    inject_create<DynPolicy>();
    if (live_packets_ != 0) {
      // Created at now_ — the next step() admits and arbitrates this same
      // cycle, skipping its own (already run) creation pass.
      create_pending_ = true;
      break;
    }
    // Nothing created: admission, transfer and arbitration are all no-ops
    // (no packets exist, SSVC outputs with zero requests touch nothing; the
    // fault stream for this cycle was consumed by the scan above, outage /
    // stuck / scrub work is provably absent, and GSF frame state catches up
    // retroactively in inject_admit), so the cycle is complete.
    ++ff_idle_stepped_cycles_;
    ++now_;
  }
  // Window-based probe consumers must see the jump (never traced — see
  // SwitchProbe::clock_jump), or a skipped boundary would silently stretch
  // their current window.
  if (obs_ != nullptr && now_ != from) obs_->clock_jump(from, now_);
}

void CrossbarSwitch::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  if (ff_eligible_) {
    while (now_ < end) {
      if (quiescent()) {
        fast_forward(end);
        if (now_ >= end) break;
      }
      step();
    }
    return;
  }
  while (now_ < end) step();
}

void CrossbarSwitch::warmup(Cycle cycles) {
  run(cycles);
  latency_.reset();
  wait_.reset();
  for (auto& u : usage_) u = ChannelUsage{};
  throughput_.open_window(now_);
  measuring_ = true;
}

void CrossbarSwitch::measure(Cycle cycles) {
  run(cycles);
  throughput_.close_window(now_);
  measuring_ = false;
}

}  // namespace ssq::sw
