// sw::SwitchBatch — lock-step driver for a batch of independent switches.
//
// Steps B CrossbarSwitch instances through one cache-resident loop: every
// round advances each instance whose clock sits within kStride of the batch
// minimum by up to kStride cycles, so each instance's working set stays hot
// across its stride while no instance races unboundedly ahead of the pack.
//
// Fast-forward grouping: an instance that goes quiescent runs its own
// fast_forward() — the same call its serial run() loop would make — which
// may jump its clock far ahead. Such instances are parked out of the hot
// set (skipped each round) until the batch clock catches up to them, so the
// inner loop only touches instances with real per-cycle work.
//
// Byte-identity argument: the instances share no state, and each one
// receives exactly the serial CrossbarSwitch::run() call sequence — the
// same fast_forward_eligible()/quiescent() probes, the same fast_forward()
// horizons, the same step() calls, in the same per-instance order. Only the
// interleaving *across* instances differs, which no instance can observe.
// The batch determinism tests assert this cycle-for-cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "switch/crossbar.hpp"

namespace ssq::sw {

class SwitchBatch {
 public:
  /// Non-owning; every pointer must stay valid for the batch's lifetime.
  explicit SwitchBatch(std::vector<CrossbarSwitch*> sims);

  /// Runs every instance `cycles` cycles past its own now(), lock-step.
  /// Equivalent to calling sims[i]->run(cycles) for each i in turn.
  void run(Cycle cycles);

  [[nodiscard]] std::size_t size() const noexcept { return sims_.size(); }
  [[nodiscard]] CrossbarSwitch& at(std::size_t i) {
    SSQ_EXPECT(i < sims_.size());
    return *sims_[i];
  }

 private:
  /// Cycles an instance may advance per round-robin visit (and the bound on
  /// batch skew). Granularity is invisible to results — see the
  /// byte-identity argument above — so this trades only scheduling overhead
  /// against skew.
  static constexpr Cycle kStride = 256;

  std::vector<CrossbarSwitch*> sims_;
  // run() scratch, reused across calls.
  std::vector<Cycle> target_;
  std::vector<char> ff_;  // fast_forward_eligible(), hoisted per run()
  std::vector<std::size_t> hot_;
};

}  // namespace ssq::sw
