// Input port: per-class buffering and the single-transmitter constraint.
//
// Buffer layout follows Table 1: one FIFO for BE, one FIFO per output for GB
// (the crosspoint queue — this is what keeps GB flows separated, §4.4 notes
// that losing this separation is what makes multi-switch QoS hard), and one
// FIFO for GL ("At the input ports, GL class packets should be buffered
// separately from GB class packets", §3.2).
//
// Occupancy is accounted in flits: a packet needs `length` free flits to be
// accepted and its flits drain one per transfer cycle while it transmits,
// so buffer space frees exactly as the wires would.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/ring_queue.hpp"
#include "sim/types.hpp"
#include "switch/config.hpp"
#include "switch/packet.hpp"

namespace ssq::sw {

class InputPort {
 public:
  InputPort(InputId id, std::uint32_t radix, const BufferConfig& buffers);

  [[nodiscard]] InputId id() const noexcept { return id_; }

  /// True iff the packet's class buffer has `length` free flits.
  /// (Inline: called for every admission attempt of every cycle.)
  [[nodiscard]] bool can_accept(const Packet& pkt) const {
    switch (pkt.cls) {
      case TrafficClass::BestEffort:
        return be_occ_ + pkt.length <= buffers_.be_flits;
      case TrafficClass::GuaranteedBandwidth:
        SSQ_EXPECT(pkt.dst < radix_);
        return gb_occ_[pkt.dst] + pkt.length <= buffers_.gb_flits_per_output;
      case TrafficClass::GuaranteedLatency:
        return gl_occ_ + pkt.length <= buffers_.gl_flits;
    }
    return false;
  }

  /// Moves a packet into its class buffer; stamps `buffered = now`.
  void accept(Packet&& pkt, Cycle now);

  // Head-of-line visibility (nullptr when empty). Inline: the request
  // selection scan consults heads for every non-busy input every cycle.
  [[nodiscard]] const Packet* be_head() const {
    return be_q_.empty() ? nullptr : &be_q_.front();
  }
  [[nodiscard]] const Packet* gb_head(OutputId dst) const {
    SSQ_EXPECT(dst < radix_);
    return gb_q_[dst].empty() ? nullptr : &gb_q_[dst].front();
  }
  [[nodiscard]] const Packet* gl_head() const {
    return gl_q_.empty() ? nullptr : &gl_q_.front();
  }

  /// Pops the head of the given queue. The packet's flits remain accounted
  /// in the buffer until drained via drain_flit.
  Packet pop_be();
  Packet pop_gb(OutputId dst);
  Packet pop_gl();

  /// Releases one flit of buffer space (called once per transfer cycle of a
  /// packet popped from the corresponding queue).
  void drain_flit(TrafficClass cls, OutputId dst) {
    switch (cls) {
      case TrafficClass::BestEffort:
        SSQ_EXPECT(be_occ_ >= 1);
        --be_occ_;
        break;
      case TrafficClass::GuaranteedBandwidth:
        SSQ_EXPECT(dst < radix_);
        SSQ_EXPECT(gb_occ_[dst] >= 1);
        --gb_occ_[dst];
        break;
      case TrafficClass::GuaranteedLatency:
        SSQ_EXPECT(gl_occ_ >= 1);
        --gl_occ_;
        break;
    }
  }

  /// True iff `flits` more flits fit in the class buffer (PVC preemption:
  /// can the victim's drained flits be re-accounted in place?).
  [[nodiscard]] bool can_restore(TrafficClass cls, OutputId dst,
                                 std::uint32_t flits) const;

  /// Returns a previously popped packet to the FRONT of its queue and
  /// re-accounts `drained_flits` of buffer space (PVC preemption: the
  /// victim is retransmitted from the source buffer). Requires can_restore.
  void push_front(Packet&& pkt, std::uint32_t drained_flits);

  // Single-transmitter constraint: the input bus carries one flit/cycle.
  // `free_at` is the first cycle the port may request again.
  [[nodiscard]] bool busy(Cycle now) const noexcept { return now < free_at_; }
  void set_free_at(Cycle c) noexcept { free_at_ = c; }

  // Occupancy introspection (flits currently held, queued or in flight).
  [[nodiscard]] std::uint32_t be_occupancy() const noexcept { return be_occ_; }
  [[nodiscard]] std::uint32_t gb_occupancy(OutputId dst) const;
  [[nodiscard]] std::uint32_t gl_occupancy() const noexcept { return gl_occ_; }
  /// Flits across all GB crosspoint queues (snapshot sampling).
  [[nodiscard]] std::uint32_t gb_total_occupancy() const noexcept;

  // High-water marks since construction (always maintained — three compares
  // per accepted packet — so run summaries can report buffer pressure even
  // without a probe attached).
  [[nodiscard]] std::uint32_t peak_be_occupancy() const noexcept {
    return peak_be_;
  }
  [[nodiscard]] std::uint32_t peak_gb_occupancy() const noexcept {
    return peak_gb_;
  }
  [[nodiscard]] std::uint32_t peak_gl_occupancy() const noexcept {
    return peak_gl_;
  }

  /// Rotating preference pointer over GB output queues (used by the request
  /// selection policy; the port owns it so fairness is per-port).
  [[nodiscard]] OutputId gb_pointer() const noexcept { return gb_ptr_; }
  void advance_gb_pointer(OutputId granted) noexcept {
    gb_ptr_ = (granted + 1) % radix_;
  }

  /// Bitmask of outputs whose GB crosspoint queue is non-empty (bit o set ==
  /// gb_head(o) != nullptr). Lets the request-selection scan visit only
  /// occupied queues instead of all `radix` of them.
  [[nodiscard]] std::uint64_t gb_nonempty() const noexcept {
    return gb_nonempty_;
  }

 private:
  InputId id_;
  std::uint32_t radix_;
  BufferConfig buffers_;

  RingQueue<Packet> be_q_;
  std::vector<RingQueue<Packet>> gb_q_;  // per output
  RingQueue<Packet> gl_q_;
  std::uint64_t gb_nonempty_ = 0;  // bit o == gb_q_[o] non-empty

  std::uint32_t be_occ_ = 0;
  std::vector<std::uint32_t> gb_occ_;
  std::uint32_t gl_occ_ = 0;
  std::uint32_t peak_be_ = 0;
  std::uint32_t peak_gb_ = 0;  // per-crosspoint high-water mark
  std::uint32_t peak_gl_ = 0;

  Cycle free_at_ = 0;
  OutputId gb_ptr_ = 0;
};

}  // namespace ssq::sw
