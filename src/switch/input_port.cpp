#include "switch/input_port.hpp"

#include <utility>

namespace ssq::sw {

InputPort::InputPort(InputId id, std::uint32_t radix,
                     const BufferConfig& buffers)
    : id_(id), radix_(radix), buffers_(buffers) {
  buffers_.validate();
  gb_q_.resize(radix);
  gb_occ_.assign(radix, 0);
}

void InputPort::accept(Packet&& pkt, Cycle now) {
  SSQ_EXPECT(pkt.src == id_);
  SSQ_EXPECT(can_accept(pkt));
  pkt.buffered = now;
  switch (pkt.cls) {
    case TrafficClass::BestEffort:
      be_occ_ += pkt.length;
      if (be_occ_ > peak_be_) peak_be_ = be_occ_;
      be_q_.push_back(std::move(pkt));
      break;
    case TrafficClass::GuaranteedBandwidth: {
      const OutputId dst = pkt.dst;
      gb_occ_[dst] += pkt.length;
      if (gb_occ_[dst] > peak_gb_) peak_gb_ = gb_occ_[dst];
      gb_q_[dst].push_back(std::move(pkt));
      gb_nonempty_ |= 1ULL << dst;
      break;
    }
    case TrafficClass::GuaranteedLatency:
      gl_occ_ += pkt.length;
      if (gl_occ_ > peak_gl_) peak_gl_ = gl_occ_;
      gl_q_.push_back(std::move(pkt));
      break;
  }
}

Packet InputPort::pop_be() {
  SSQ_EXPECT(!be_q_.empty());
  Packet p = std::move(be_q_.front());
  be_q_.pop_front();
  return p;
}

Packet InputPort::pop_gb(OutputId dst) {
  SSQ_EXPECT(dst < radix_);
  SSQ_EXPECT(!gb_q_[dst].empty());
  Packet p = std::move(gb_q_[dst].front());
  gb_q_[dst].pop_front();
  if (gb_q_[dst].empty()) gb_nonempty_ &= ~(1ULL << dst);
  return p;
}

Packet InputPort::pop_gl() {
  SSQ_EXPECT(!gl_q_.empty());
  Packet p = std::move(gl_q_.front());
  gl_q_.pop_front();
  return p;
}

bool InputPort::can_restore(TrafficClass cls, OutputId dst,
                            std::uint32_t flits) const {
  switch (cls) {
    case TrafficClass::BestEffort:
      return be_occ_ + flits <= buffers_.be_flits;
    case TrafficClass::GuaranteedBandwidth:
      SSQ_EXPECT(dst < radix_);
      return gb_occ_[dst] + flits <= buffers_.gb_flits_per_output;
    case TrafficClass::GuaranteedLatency:
      return gl_occ_ + flits <= buffers_.gl_flits;
  }
  return false;
}

void InputPort::push_front(Packet&& pkt, std::uint32_t drained_flits) {
  SSQ_EXPECT(pkt.src == id_);
  switch (pkt.cls) {
    case TrafficClass::BestEffort:
      SSQ_EXPECT(be_occ_ + drained_flits <= buffers_.be_flits);
      be_occ_ += drained_flits;
      be_q_.push_front(std::move(pkt));
      break;
    case TrafficClass::GuaranteedBandwidth: {
      const OutputId dst = pkt.dst;
      SSQ_EXPECT(dst < radix_);
      SSQ_EXPECT(gb_occ_[dst] + drained_flits <=
                 buffers_.gb_flits_per_output);
      gb_occ_[dst] += drained_flits;
      gb_q_[dst].push_front(std::move(pkt));
      gb_nonempty_ |= 1ULL << dst;
      break;
    }
    case TrafficClass::GuaranteedLatency:
      SSQ_EXPECT(gl_occ_ + drained_flits <= buffers_.gl_flits);
      gl_occ_ += drained_flits;
      gl_q_.push_front(std::move(pkt));
      break;
  }
}

std::uint32_t InputPort::gb_occupancy(OutputId dst) const {
  SSQ_EXPECT(dst < radix_);
  return gb_occ_[dst];
}

std::uint32_t InputPort::gb_total_occupancy() const noexcept {
  std::uint32_t total = 0;
  for (const auto occ : gb_occ_) total += occ;
  return total;
}

}  // namespace ssq::sw
