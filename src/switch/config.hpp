// Switch configuration.
#pragma once

#include <cstdint>

#include "arb/factory.hpp"
#include "arb/matching.hpp"
#include "core/gl_tracker.hpp"
#include "core/params.hpp"
#include "sim/contracts.hpp"
#include "sim/error.hpp"

namespace ssq::sw {

/// Input-port buffering, in flits (paper Table 1 layout: one BE buffer, one
/// GB buffer per output — the crosspoint queue — and one GL buffer).
struct BufferConfig {
  std::uint32_t be_flits = 16;
  std::uint32_t gb_flits_per_output = 16;
  std::uint32_t gl_flits = 16;

  void validate() const {
    detail::config_check(be_flits >= 1, "buffer be_flits must be >= 1");
    detail::config_check(gb_flits_per_output >= 1,
                         "buffer gb_flits_per_output must be >= 1");
    detail::config_check(gl_flits >= 1, "buffer gl_flits must be >= 1");
  }
};

/// Globally-Synchronized-Frames-style source regulation (Lee et al.,
/// ISCA'08 — §2.2: "a frame-based approach that controls the number of
/// packets injected into the network at the source. It requires a global
/// barrier network across all nodes, which adds overhead and can be slow").
///
/// When enabled, every reserved (GB) flow may admit at most
/// ceil(reserved_rate * frame_cycles / packet_len) packets per frame, and
/// injection pauses for `barrier_cycles` at every frame boundary (the
/// global barrier cost). Combine with ArbitrationMode::Baseline + Lrg to
/// model GSF over a QoS-unaware network.
struct GsfConfig {
  bool enabled = false;
  Cycle frame_cycles = 256;
  Cycle barrier_cycles = 16;

  void validate() const {
    if (!enabled) return;
    detail::config_check(frame_cycles >= 2, "gsf frame_cycles must be >= 2");
    detail::config_check(barrier_cycles < frame_cycles,
                         "gsf barrier_cycles must be < frame_cycles");
  }
};

/// How output arbitration is performed.
enum class ArbitrationMode : std::uint8_t {
  /// Full three-class SSVC QoS (the paper's scheme).
  SsvcQos = 0,
  /// Class-blind single arbiter (Fig. 4(a) LRG baseline, or any arb::Kind
  /// baseline such as the exact Virtual Clock of Fig. 5).
  Baseline = 1,
};

/// How inputs present requests to the outputs each cycle.
enum class AllocationMode : std::uint8_t {
  /// Each idle input asserts exactly ONE request (the Swizzle Switch model:
  /// one input bus, requests raised by the port logic). Simple, but an
  /// input whose chosen output loses arbitration idles the cycle even if
  /// another of its queues could have been served.
  SingleRequest = 0,
  /// iSLIP-style iterative matching (extension): inputs expose every ready
  /// head; unmatched outputs run their (QoS or baseline) arbitration as the
  /// grant step; inputs accept one grant (class priority, then a rotating
  /// pointer); unmatched ports retry for `match_iterations` rounds. Improves
  /// utilisation under multi-destination traffic at the cost of a more
  /// complex allocator than the paper's single-cycle story.
  IterativeMatching = 1,
};

struct SwitchConfig {
  std::uint32_t radix = 8;
  core::SsvcParams ssvc{};
  BufferConfig buffers{};

  /// Arbitration-kernel implementation for the SSVC arbiters (scalar request
  /// scan vs packed-mask bit-sliced kernel). Semantically identical — the
  /// differential checker and golden corpus assert byte-identical grants and
  /// traces across both — so this is a performance knob (--kernel=).
  core::ArbKernel kernel = core::ArbKernel::Bitsliced;

  /// Idle-cycle fast-forward: when no packet exists anywhere in the switch,
  /// run() skips ahead — jumping the clock to the minimum event horizon
  /// over every per-cycle consumer (injector next-active cycles, the fault
  /// plan's outage/stuck schedule, the pre-rolled bitflip stream, the
  /// scrubber's next pass — see switch/event_horizon.hpp), or at minimum
  /// stepping a creation-only fast path. Exact: an eligible idle cycle
  /// touches no arbiter, queue, stats or probe state; epoch wraps defer to
  /// the next request's advance_to(); GSF frame state catches up
  /// retroactively; window consumers coalesce via clock_jump. Faulted,
  /// scrubbed, monitored and GSF runs all stay byte-identical to their
  /// stepped equivalents. Auto-disabled (regardless of this flag) only for
  /// baseline mode, whose arbiters tick on_idle() every cycle.
  bool fast_forward = true;

  /// Compile-time specialized step pipelines: select the step() loop
  /// instantiation matching the attachment state {probe, fault/scrub, GSF}
  /// once per attach instead of branching on the hook pointers every cycle.
  /// Semantically identical — the determinism suites assert byte-identical
  /// traces across both — so this is a performance knob (off = always run
  /// the fully dynamic pipeline, mainly for differential testing).
  bool specialize = true;

  ArbitrationMode mode = ArbitrationMode::SsvcQos;
  /// Baseline arbiter kind when mode == Baseline. Rate-parameterised kinds
  /// (WRR/DWRR/WFQ/VirtualClock) receive each output's GB reservations.
  arb::Kind baseline = arb::Kind::Lrg;

  core::GlPolicing gl_policing = core::GlPolicing::Stall;
  std::uint32_t gl_allowance_packets = 32;

  /// Optional GSF-style source regulation (see GsfConfig).
  GsfConfig gsf{};

  /// Preemptive Virtual Clock switch support (meaningful with
  /// mode == Baseline and baseline == arb::Kind::Pvc): a waiting packet
  /// whose PVC level beats the in-flight packet's grant-time level by more
  /// than `preempt_margin` levels aborts the transfer; the victim retries
  /// from the source buffer and the moved flits count as waste.
  struct PvcConfig {
    bool preemption = false;
    std::uint32_t preempt_margin = 2;
  };
  PvcConfig pvc{};

  /// Input-request presentation policy (see AllocationMode).
  AllocationMode allocation = AllocationMode::SingleRequest;
  /// Matching rounds when allocation == IterativeMatching; doubles as the
  /// window size T for the SW-QPS engine.
  std::uint32_t match_iterations = 2;

  /// Matching engine (iSLIP / QPS-r / SW-QPS / ...) replacing the per-output
  /// arbiter grant step under IterativeMatching allocation. None (default)
  /// keeps the classic path: SSVC/baseline arbiters arbitrate each output.
  /// An engine ignores QoS state entirely — class priority survives only in
  /// head selection (GL > GB > BE per input), so engine runs are checked
  /// invariants-only by the differential harness. Requires SsvcQos mode,
  /// IterativeMatching allocation and no packet chaining (chaining charges
  /// the per-output arbiters an engine bypasses).
  arb::MatchKind engine = arb::MatchKind::None;

  /// Cycles consumed by output arbitration before the first flit moves.
  /// 1 for the Swizzle Switch / SSVC (the paper's single-cycle headline);
  /// 2 models the earlier 4-level QoS design [14] that "required two
  /// arbitration cycles" — the saturated throughput ceiling becomes
  /// L/(L + arbitration_cycles).
  std::uint32_t arbitration_cycles = 1;

  /// Packet Chaining [Michelogiannakis, CAL'11]: when the granted input's
  /// next packet in the same queue heads to the same output, it is chained
  /// onto the channel without a fresh arbitration cycle — the mitigation the
  /// paper cites for the arbitration-cycle throughput loss.
  bool packet_chaining = false;

  /// If true, packet latency is measured from source-queue creation instead
  /// of from input-buffer entry (adds source queueing delay).
  bool latency_from_creation = false;

  std::uint64_t seed = 0x5eed;

  /// Throws ssq::ConfigError on bad user configuration (CLI flags).
  void validate() const {
    detail::config_check(radix >= 2 && radix <= 64,
                         "radix out of range [2,64]");
    detail::config_check(arbitration_cycles >= 1 && arbitration_cycles <= 4,
                         "arbitration_cycles out of range [1,4]");
    detail::config_check(match_iterations >= 1 && match_iterations <= 8,
                         "match_iterations out of range [1,8]");
    if (engine != arb::MatchKind::None) {
      detail::config_check(allocation == AllocationMode::IterativeMatching,
                           "a matching engine requires IterativeMatching "
                           "allocation");
      detail::config_check(mode == ArbitrationMode::SsvcQos,
                           "a matching engine requires SsvcQos mode");
      detail::config_check(!packet_chaining,
                           "packet chaining cannot be combined with a "
                           "matching engine (chaining charges the per-output "
                           "arbiters an engine bypasses)");
    }
    ssvc.validate();
    buffers.validate();
    gsf.validate();
  }
};

}  // namespace ssq::sw
