// Glue between the switch and the observability layer: occupancy snapshots
// and a sampled run loop. Lives in ssq_switch (obs cannot see CrossbarSwitch
// — it sits below core in the dependency order).
#pragma once

#include <vector>

#include "obs/snapshot.hpp"
#include "switch/crossbar.hpp"

namespace ssq::sw {

/// Current per-input-port class-buffer occupancy, in flits.
[[nodiscard]] std::vector<obs::PortOccupancy> collect_occupancy(
    const CrossbarSwitch& sw);

/// Steps `cycles` cycles, taking one sampler snapshot whenever the switch
/// clock crosses a multiple of sampler.interval(). Requires an attached
/// probe (the sampler diffs its per-output counters).
void run_sampled(CrossbarSwitch& sw, Cycle cycles,
                 obs::SnapshotSampler& sampler);

}  // namespace ssq::sw
