// Glue between the switch and the observability layer: occupancy snapshots
// and a sampled run loop. Lives in ssq_switch (obs cannot see CrossbarSwitch
// — it sits below core in the dependency order).
#pragma once

#include <vector>

#include "obs/conformance.hpp"
#include "obs/snapshot.hpp"
#include "switch/crossbar.hpp"

namespace ssq::sw {

/// Current per-input-port class-buffer occupancy, in flits.
[[nodiscard]] std::vector<obs::PortOccupancy> collect_occupancy(
    const CrossbarSwitch& sw);

/// Steps `cycles` cycles, taking one sampler snapshot whenever the switch
/// clock crosses a multiple of sampler.interval(). Requires an attached
/// probe (the sampler diffs its per-output counters). Fast-forward aware:
/// a quiescent clock jump emits one snapshot per crossed boundary — with
/// state provably unchanged by the jump, those samples are byte-identical
/// to a --no-fast-forward run's — instead of capping the jump at one
/// interval.
void run_sampled(CrossbarSwitch& sw, Cycle cycles,
                 obs::SnapshotSampler& sampler);

/// Builds the monitor configuration implied by a switch configuration and
/// its workload: per-flow GB reservations and the per-output Eq. (1) GL
/// wait bounds (qosmath sits above obs in the library order, so the bound
/// values travel by config). l_max/l_min derive from the GL flows actually
/// aimed at each output (falling back to the reservation's nominal packet
/// length), N_GL,o counts distinct injecting inputs, and b is the GL
/// buffer depth.
[[nodiscard]] obs::ConformanceConfig make_conformance_config(
    const SwitchConfig& config, const traffic::Workload& workload,
    Cycle window = 2048);

}  // namespace ssq::sw
