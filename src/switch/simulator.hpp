// Experiment driver: warmup/measure orchestration plus per-flow summaries.
//
// Benches and examples run the same recipe: build a switch, warm it up,
// measure, and read per-flow accepted throughput and latency. ExperimentRun
// packages that so every table in EXPERIMENTS.md is produced by the same
// audited code path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "switch/crossbar.hpp"

namespace ssq::sw {

struct FlowSummary {
  FlowId flow = 0;
  InputId src = 0;
  OutputId dst = 0;
  TrafficClass cls = TrafficClass::BestEffort;
  double reserved_rate = 0.0;
  double offered_rate = 0.0;    // created flits / measured cycles
  double accepted_rate = 0.0;   // delivered flits / measured cycles
  double mean_latency = 0.0;    // cycles/packet
  double p50_latency = 0.0;     // percentiles are histogram estimates
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  double mean_wait = 0.0;       // grant - buffered
  double p50_wait = 0.0;
  double p95_wait = 0.0;
  double p99_wait = 0.0;
  double max_wait = 0.0;
  std::uint64_t delivered_packets = 0;
};

struct ExperimentResult {
  std::vector<FlowSummary> flows;
  Cycle measured_cycles = 0;
  double total_accepted_rate = 0.0;  // flits/cycle summed over flows
};

/// Runs warmup + measurement on a fresh switch and summarises.
[[nodiscard]] ExperimentResult run_experiment(const SwitchConfig& config,
                                              traffic::Workload workload,
                                              Cycle warmup_cycles,
                                              Cycle measure_cycles);

/// Summarises an already-measured switch.
[[nodiscard]] ExperimentResult summarize(const CrossbarSwitch& sw);

}  // namespace ssq::sw
