#include "switch/observe.hpp"

#include <algorithm>

namespace ssq::sw {

std::vector<obs::PortOccupancy> collect_occupancy(const CrossbarSwitch& sw) {
  const std::uint32_t radix = sw.config().radix;
  std::vector<obs::PortOccupancy> occ(radix);
  for (InputId i = 0; i < radix; ++i) {
    const InputPort& port = sw.input(i);
    occ[i].be = port.be_occupancy();
    occ[i].gb = port.gb_total_occupancy();
    occ[i].gl = port.gl_occupancy();
  }
  return occ;
}

void run_sampled(CrossbarSwitch& sw, Cycle cycles,
                 obs::SnapshotSampler& sampler) {
  SSQ_EXPECT(sw.probe() != nullptr &&
             "run_sampled needs an attached probe to diff grant counters");
  const Cycle interval = sampler.interval();
  while (cycles > 0) {
    const Cycle to_boundary = interval - (sw.now() % interval);
    const Cycle chunk = std::min(cycles, to_boundary);
    sw.run(chunk);
    cycles -= chunk;
    if (sw.now() % interval == 0) {
      sampler.sample(sw.now(), collect_occupancy(sw), *sw.probe());
    }
  }
}

}  // namespace ssq::sw
