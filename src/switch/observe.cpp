#include "switch/observe.hpp"

#include <algorithm>

#include "qosmath/gl_bound.hpp"

namespace ssq::sw {

std::vector<obs::PortOccupancy> collect_occupancy(const CrossbarSwitch& sw) {
  const std::uint32_t radix = sw.config().radix;
  std::vector<obs::PortOccupancy> occ(radix);
  for (InputId i = 0; i < radix; ++i) {
    const InputPort& port = sw.input(i);
    occ[i].be = port.be_occupancy();
    occ[i].gb = port.gb_total_occupancy();
    occ[i].gl = port.gl_occupancy();
  }
  return occ;
}

void run_sampled(CrossbarSwitch& sw, Cycle cycles,
                 obs::SnapshotSampler& sampler) {
  SSQ_EXPECT(sw.probe() != nullptr &&
             "run_sampled needs an attached probe to diff grant counters");
  const Cycle interval = sampler.interval();
  const Cycle end = sw.now() + cycles;
  while (sw.now() < end) {
    if (sw.fast_forward_eligible() && sw.quiescent()) {
      // Jump as far as quiescence allows — not just to the next boundary —
      // and emit the boundary samples the jump skipped. Quiescent cycles
      // change no occupancy and no probe counter, so sampling each crossed
      // boundary with the current state reproduces the no-fast-forward
      // samples exactly.
      const Cycle from = sw.now();
      sw.fast_forward(end);
      for (Cycle b = from + (interval - from % interval); b <= sw.now();
           b += interval) {
        sampler.sample(b, collect_occupancy(sw), *sw.probe());
      }
      if (sw.now() >= end) break;
      // A jump can stop short without advancing at all when a horizon
      // consumer (fault edge, scrub pass, pre-rolled bitflip) is due this
      // very cycle: fall through to the stepped path instead of spinning.
      if (sw.now() != from) continue;
    }
    const Cycle to_boundary = interval - (sw.now() % interval);
    const Cycle chunk = std::min(end - sw.now(), to_boundary);
    sw.run(chunk);
    if (sw.now() % interval == 0) {
      sampler.sample(sw.now(), collect_occupancy(sw), *sw.probe());
    }
  }
}

obs::ConformanceConfig make_conformance_config(
    const SwitchConfig& config, const traffic::Workload& workload,
    Cycle window) {
  obs::ConformanceConfig cfg;
  cfg.window = window;
  cfg.arbitration_cycles = config.arbitration_cycles;
  const std::uint32_t radix = config.radix;

  // GB applicability mirrors the GL gate below: under SingleRequest an
  // input raises one request per cycle, so two guaranteed flows sharing an
  // input serialize *before* the output arbiter and neither can be held to
  // its per-output reservation (Fig. 4's setup is one guaranteed flow per
  // input). Judge a GB flow only when it is its input's sole guaranteed
  // flow; BE neighbours are fine — they rank below GB in request selection.
  const auto& flows = workload.flows();
  cfg.flows.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    obs::FlowReservation r;
    r.src = f.src;
    r.dst = f.dst;
    r.cls = f.cls;
    r.mean_len = static_cast<double>(f.mean_len());
    // Packet chaining trades short-horizon fairness for arbitration
    // amortisation: a chain yields to GL but not to GB, so another class
    // can legitimately hold an output past a whole window. No per-window
    // GB floor is guaranteed then — report-only.
    if (f.cls == TrafficClass::GuaranteedBandwidth && !config.packet_chaining) {
      bool judged = true;
      for (std::size_t j = 0; j < flows.size(); ++j) {
        if (j == i) continue;
        // Guaranteed neighbour at the same input serializes with us.
        if (flows[j].src == f.src &&
            flows[j].cls != TrafficClass::BestEffort) {
          judged = false;
          break;
        }
        // GL outranks GB at the output, so GB's floor presumes the GL
        // sharing this output is policed: a reservation must exist (the
        // tracker is disabled without one) and policing must be armed.
        if (flows[j].dst == f.dst &&
            flows[j].cls == TrafficClass::GuaranteedLatency &&
            (workload.gl_reservation_rate(f.dst) <= 0.0 ||
             config.gl_policing == core::GlPolicing::None)) {
          judged = false;
          break;
        }
      }
      if (judged) r.reserved_rate = f.reserved_rate;
    }
    cfg.flows.push_back(r);
  }

  // Eq. (1) applicability: the bound assumes a GL packet is head-of-line at
  // its input the whole time it waits. Under SingleRequest allocation an
  // input raises ONE request, and the GL request is only raised while the
  // destination output is idle — so an input mixing GL with other classes
  // (or spreading GL over several outputs) serializes its GL packets behind
  // transfers Eq. (1) does not model. Judge only outputs whose GL senders
  // are dedicated: every flow from those inputs is GL and aims at that one
  // output (the configuration the gl_latency_bound bench validates).
  std::vector<bool> dedicated(radix, true);
  for (const auto& f : workload.flows()) {
    if (f.cls != TrafficClass::GuaranteedLatency) continue;
    for (const auto& g : workload.flows()) {
      if (g.src != f.src) continue;
      if (g.cls != TrafficClass::GuaranteedLatency || g.dst != f.dst) {
        dedicated[f.dst] = false;
        break;
      }
    }
  }

  cfg.gl_bound.assign(radix, 0.0);
  for (OutputId o = 0; o < radix; ++o) {
    if (workload.gl_reservation_rate(o) <= 0.0) continue;
    if (!dedicated[o]) continue;
    // Eq. (1)'s l_max is the channel-release hazard: the longest packet of
    // ANY class headed to this output can hold the channel when a GL packet
    // arrives (the gl_latency_bound bench uses the GB background length
    // here). l_min is GL-only — b/l_min counts arbitrations among buffered
    // GL packets.
    std::uint32_t l_max = 0;
    std::uint32_t l_min = ~0U;
    std::vector<bool> inputs(radix, false);
    std::uint32_t n_gl = 0;
    for (const auto& f : workload.flows()) {
      if (f.dst != o) continue;
      l_max = std::max(l_max, f.len_max);
      if (f.cls != TrafficClass::GuaranteedLatency) continue;
      l_min = std::min(l_min, f.len_min);
      if (!inputs[f.src]) {
        inputs[f.src] = true;
        ++n_gl;
      }
    }
    if (n_gl == 0) {
      // Reservation configured but no GL flow aims here yet: fall back to
      // the reservation's nominal packet length and one potential sender.
      const std::uint32_t len =
          std::max(1U, workload.gl_reservation_packet_len(o));
      l_max = std::max(l_max, len);
      l_min = len;
      n_gl = 1;
    }
    double bound = qosmath::gl_wait_bound({.l_max = l_max,
                                           .l_min = l_min,
                                           .n_gl = n_gl,
                                           .buffer_flits =
                                               config.buffers.gl_flits});
    // The paper assumes one arbitration cycle per buffered packet; with
    // arb_cycles = A each of the n_gl * b/l_min arbitrations (plus the
    // channel-release one) costs A-1 extra cycles.
    if (config.arbitration_cycles > 1) {
      const double extra = static_cast<double>(config.arbitration_cycles - 1);
      const double arbs = static_cast<double>(n_gl) *
                              static_cast<double>(config.buffers.gl_flits) /
                              static_cast<double>(l_min) +
                          1.0;
      bound += extra * arbs;
    }
    cfg.gl_bound[o] = bound;
  }
  return cfg;
}

}  // namespace ssq::sw
