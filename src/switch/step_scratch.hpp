// StepScratch — the per-cycle scratch arena of CrossbarSwitch::step().
//
// Every container the cycle loop needs is owned here, sized once at switch
// construction, and reused every cycle, so the steady-state step() performs
// no heap allocation (asserted by tests/hotpath_alloc_test.cpp). Ownership
// rule: the arena belongs to exactly one CrossbarSwitch and is touched only
// from inside its step(); nothing escapes the call — spans handed to the
// arbiters are dead once pick()/on_grant() return.
//
// The matching masks are single uint64_t words: the Swizzle Switch tops out
// at radix 64 (config.validate() enforces it), so one word replaces the
// std::vector<bool> pair the matcher used to allocate per cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "arb/arbiter.hpp"
#include "core/output_arbiter.hpp"
#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::sw {

/// The single request an idle input asserts in single-request mode.
struct PendingRequest {
  OutputId out = kNoPort;
  TrafficClass cls = TrafficClass::BestEffort;
  std::uint32_t length = 0;
  Cycle buffered = 0;
  std::uint32_t prio = 0;  // legacy 4-level message priority
};

struct StepScratch {
  /// Empty arena; CrossbarSwitch sizes it (once) after config validation.
  StepScratch() = default;

  explicit StepScratch(std::uint32_t radix) {
    SSQ_EXPECT(radix >= 1 && radix <= 64);
    pending.resize(radix);
    bucket_begin.resize(radix + 1);
    bucket_cursor.resize(radix);
    qos_reqs.reserve(radix);
    base_reqs.reserve(radix);
    grant_to.reserve(radix);
    grant_cls.reserve(radix);
    restage.reserve(1);
    gl_mask.resize(radix);
    gb_mask.resize(radix);
    be_mask.resize(radix);
    eng_eligible.resize(radix);
    eng_candidates.resize(radix);
    eng_voq.resize(static_cast<std::size_t>(radix) * radix);
    eng_match.resize(radix);
  }

  // ---- single-request mode (arbitrate) ----
  /// pending[i] = input i's asserted request (out == kNoPort: none).
  std::vector<PendingRequest> pending;
  /// Counting-sort slice bounds: output o's requests occupy
  /// [bucket_begin[o], bucket_begin[o+1]) of the flat request array.
  std::vector<std::uint32_t> bucket_begin;
  std::vector<std::uint32_t> bucket_cursor;

  // ---- flat request arrays, grouped by output, input order preserved ----
  // Also reused as per-output gather buffers by the iterative matcher.
  std::vector<core::ClassRequest> qos_reqs;
  std::vector<arb::Request> base_reqs;

  // ---- iterative matching (arbitrate_matched) ----
  std::vector<InputId> grant_to;         // per output
  std::vector<TrafficClass> grant_cls;   // per output
  std::vector<arb::Request> restage;     // 1-slot re-pick buffer

  // ---- bit-sliced single-request mode ----
  // Per-output packed request masks (bit i == input i requests output o in
  // that class), fed straight to OutputQosArbiter::pick_masked() — the
  // counting sort and the flat ClassRequest array are skipped entirely.
  std::vector<std::uint64_t> gl_mask;  // per output
  std::vector<std::uint64_t> gb_mask;  // per output
  std::vector<std::uint64_t> be_mask;  // per output

  // ---- matching engines (arbitrate_engine) ----
  // The MatchView handed to the engine points into these; eng_match receives
  // the per-output matched inputs back.
  std::vector<std::uint64_t> eng_eligible;    // per input
  std::vector<std::uint64_t> eng_candidates;  // per input
  std::vector<std::uint32_t> eng_voq;         // radix x radix, row-major
  std::vector<InputId> eng_match;             // per output
};

}  // namespace ssq::sw
