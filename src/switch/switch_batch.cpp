#include "switch/switch_batch.hpp"

#include "sim/contracts.hpp"

namespace ssq::sw {

SwitchBatch::SwitchBatch(std::vector<CrossbarSwitch*> sims)
    : sims_(std::move(sims)) {
  for (const CrossbarSwitch* s : sims_) SSQ_EXPECT(s != nullptr);
}

void SwitchBatch::run(Cycle cycles) {
  const std::size_t n = sims_.size();
  target_.resize(n);
  ff_.resize(n);
  hot_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    target_[i] = sims_[i]->now() + cycles;
    // Eligibility is a function of config and attachment state, neither of
    // which changes inside run(): hoist it out of the per-step loop.
    ff_[i] = sims_[i]->fast_forward_eligible();
    hot_.push_back(i);
  }
  while (!hot_.empty()) {
    // Batch clock: the minimum unfinished clock. Instances that jumped
    // ahead (fast-forward) park until the clock reaches them again.
    Cycle clock = kNoCycle;
    for (const std::size_t i : hot_) {
      if (sims_[i]->now() < clock) clock = sims_[i]->now();
    }
    // Each visit advances its instance by up to kStride cycles, not one
    // step: instances share no state, so any interleaving granularity
    // hands each one the exact serial run() call sequence — the coarser
    // grain keeps the instance's working set hot in cache, the stride
    // bound keeps batch skew finite.
    const Cycle horizon = clock + kStride;
    std::size_t w = 0;
    for (const std::size_t i : hot_) {
      CrossbarSwitch& sim = *sims_[i];
      if (sim.now() > horizon) {
        hot_[w++] = i;  // parked: ahead of the batch clock
        continue;
      }
      const bool ff = ff_[i];
      bool finished = false;
      while (!finished && sim.now() <= horizon) {
        // One iteration of the serial CrossbarSwitch::run() loop.
        if (ff && sim.quiescent()) {
          sim.fast_forward(target_[i]);
          if (sim.now() >= target_[i]) {
            finished = true;  // finished inside the jump
            break;
          }
        }
        sim.step();
        finished = sim.now() >= target_[i];
      }
      if (!finished) hot_[w++] = i;
    }
    hot_.resize(w);
  }
}

}  // namespace ssq::sw
