// Packet — the unit of arbitration and accounting.
//
// Transfers are flit-granular (one flit per cycle per channel) but grants
// are packet-granular and non-preemptive: a granted packet holds its output
// channel for one arbitration cycle plus `length` transfer cycles, which is
// why an 8-flit-packet workload tops out at 8/9 ≈ 0.89 flits/cycle (the
// "throughput loss from the Swizzle Switch's arbitration cycle" the paper
// notes under Fig. 4).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace ssq::sw {

struct Packet {
  PacketId id = 0;
  FlowId flow = 0;
  InputId src = 0;
  OutputId dst = 0;
  TrafficClass cls = TrafficClass::BestEffort;
  std::uint32_t length = 1;  // flits

  /// Cycle the source created the packet (enqueued in the source queue).
  Cycle created = 0;
  /// Cycle the packet entered the switch input buffer.
  Cycle buffered = kNoCycle;
  /// Cycle the packet won output arbitration.
  Cycle granted = kNoCycle;
  /// Cycle the last flit left the output channel.
  Cycle delivered = kNoCycle;
};

}  // namespace ssq::sw
