// The cycle-accurate single-crossbar Swizzle Switch model.
//
// Machine model (one cycle):
//   1. inject  — flow injectors create packets into unbounded source queues;
//                each input port admits at most one packet per cycle into
//                its (finite) class buffers.
//   2. transfer — every active transmission moves one flit across its output
//                channel; buffer space drains; completing packets are
//                recorded.
//   3. arbitrate — each idle input asserts at most ONE request (its bus
//                carries one flit/cycle): GL head first, then GB heads by a
//                rotating output pointer, then BE, restricted to idle output
//                channels. Each idle output runs one single-cycle
//                arbitration (three-class SSVC, or a class-blind baseline
//                arbiter) and the winner's packet seizes the channel for
//                1 arbitration cycle + `length` transfer cycles.
//
// The 1-cycle arbitration occupancy is intrinsic: the Swizzle Switch
// repurposes the output data bus for arbitration, so a channel cannot
// arbitrate and transfer simultaneously — this is what caps Fig. 4 at
// 8/(8+1) ≈ 0.89 flits/cycle for 8-flit packets, and what the optional
// Packet Chaining extension recovers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arb/arbiter.hpp"
#include "core/output_arbiter.hpp"
#include "obs/probe.hpp"
#include "sim/ring_queue.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "stats/latency.hpp"
#include "stats/throughput.hpp"
#include "switch/config.hpp"
#include "switch/event_horizon.hpp"
#include "switch/input_port.hpp"
#include "switch/packet.hpp"
#include "switch/step_scratch.hpp"
#include "traffic/injector.hpp"
#include "traffic/workload.hpp"

namespace ssq::fault {
class FaultInjector;
class StateScrubber;
}

namespace ssq::sw {

class CrossbarSwitch {
 public:
  CrossbarSwitch(const SwitchConfig& config, traffic::Workload workload);

  /// Advances one cycle, through the pipeline selected for the current
  /// attachment state (see select_pipeline()).
  void step() { (this->*step_fn_)(); }

  /// Advances `cycles` cycles. When fast_forward_eligible() and the switch
  /// is quiescent, idle stretches are skipped (exactly — see
  /// SwitchConfig::fast_forward) instead of stepped.
  void run(Cycle cycles);

  /// True when the configuration permits idle-cycle fast-forward: SSVC mode
  /// with config.fast_forward set. Attachments no longer disqualify — fault
  /// injectors, scrubbers, probes/monitors and GSF regulation all
  /// participate through the event-horizon protocol (event_horizon.hpp):
  /// schedule-driven consumers clamp the jump to their next event, RNG
  /// streams are pre-rolled, and window consumers catch up retroactively.
  /// Only the baseline arbiters (per-cycle on_idle state) remain stepped.
  /// Cached at construction: config is immutable, so this is one flag read.
  [[nodiscard]] bool fast_forward_eligible() const noexcept {
    return ff_eligible_;
  }

  /// True when no packet exists anywhere (source queues, input buffers, or
  /// in flight) and no freshly-created packet awaits admission.
  [[nodiscard]] bool quiescent() const noexcept {
    return live_packets_ == 0 && !create_pending_;
  }

  /// Fast-forwards from now() toward `end` (absolute cycle) while the
  /// switch stays quiescent. Requires fast_forward_eligible(). Folds every
  /// attached consumer's horizon (EventHorizon): injector next-active
  /// cycles, the fault plan's outage/stuck schedule, the pre-rolled bitflip
  /// stream, and the scrubber's next pass. The clock jumps over stretches
  /// where nothing is due; cycles where only an injector must roll its RNG
  /// run through the creation-only fast path; cycles where a fault/scrub
  /// consumer is due return to the caller for a full step(). Returns with
  /// either now() == end, no progress possible without a full step, or
  /// packets created and pending admission (the next step() picks them up
  /// within the same cycle).
  void fast_forward(Cycle end);

  /// Cycles skipped outright by fast-forward (clock jumps, no per-cycle
  /// work at all) since construction.
  [[nodiscard]] std::uint64_t ff_skipped_cycles() const noexcept {
    return ff_skipped_cycles_;
  }
  /// Cycles handled by the creation-only idle fast path since construction.
  [[nodiscard]] std::uint64_t ff_idle_stepped_cycles() const noexcept {
    return ff_idle_stepped_cycles_;
  }

  /// run() then reset stats and open the measurement window — call once
  /// after the warmup phase.
  void warmup(Cycle cycles);

  /// run() then close the measurement window.
  void measure(Cycle cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SwitchConfig& config() const noexcept { return config_; }
  [[nodiscard]] const traffic::Workload& workload() const noexcept {
    return workload_;
  }

  // ---- statistics (valid after measure()) ----
  /// Packet latency: delivery − input-buffer entry (or − creation when
  /// config.latency_from_creation).
  [[nodiscard]] const stats::LatencyRecorder& latency() const noexcept {
    return latency_;
  }
  /// Arbitration waiting time: grant − input-buffer entry. The quantity
  /// bounded by Eq. (1) for GL packets.
  [[nodiscard]] const stats::LatencyRecorder& wait() const noexcept {
    return wait_;
  }
  [[nodiscard]] const stats::ThroughputMeter& throughput() const noexcept {
    return throughput_;
  }
  [[nodiscard]] std::uint64_t delivered_packets(FlowId f) const;
  [[nodiscard]] std::uint64_t created_packets(FlowId f) const;
  /// Deepest source-queue backlog seen (packets) — a saturation indicator.
  [[nodiscard]] std::size_t max_source_backlog(FlowId f) const;

  /// Per-output channel occupancy inside the measurement window.
  struct ChannelUsage {
    std::uint64_t arbitration_cycles = 0;
    std::uint64_t transfer_cycles = 0;
  };
  [[nodiscard]] ChannelUsage channel_usage(OutputId o) const;

  /// PVC-mode statistics (0 unless pvc.preemption).
  [[nodiscard]] std::uint64_t preemptions(OutputId o) const;
  [[nodiscard]] std::uint64_t wasted_flits() const noexcept {
    return wasted_flits_;
  }

  /// Matching-engine convergence counters (all 0 unless config.engine):
  /// arbitration cycles run, iterations the engine reported across them,
  /// and pairs committed — avg iterations/cycle is the stability-lab
  /// convergence metric on live-switch runs.
  struct EngineStats {
    std::uint64_t cycles = 0;
    std::uint64_t iterations = 0;
    std::uint64_t matches = 0;
  };
  [[nodiscard]] const EngineStats& engine_stats() const noexcept {
    return engine_stats_;
  }

  // ---- introspection ----
  [[nodiscard]] const InputPort& input(InputId i) const;
  [[nodiscard]] core::OutputQosArbiter& qos_arbiter(OutputId o);
  [[nodiscard]] bool output_idle(OutputId o) const;

  // ---- observability ----
  /// Attaches (or with nullptr detaches) the observability probe. While
  /// attached, every packet-lifecycle step and — in SSVC mode — every
  /// arbitration-internal event is reported; detached, each hook site costs
  /// a single branch on this pointer (the null-sink fast path). The probe
  /// must outlive the switch or be detached first.
  void attach_probe(obs::SwitchProbe* probe);
  [[nodiscard]] obs::SwitchProbe* probe() const noexcept { return obs_; }

  // ---- fault injection / recovery ----
  /// Attaches (or with nullptr detaches) a fault injector. While attached it
  /// runs at the top of every step() and its port/crosspoint outages gate
  /// request selection; the LRG arbiters switch to fault-tolerant (graceful
  /// degradation) mode. Detached, each hook site costs a single branch on
  /// this pointer. SSVC mode only for state corruption; outages apply in
  /// every mode. The injector must outlive the switch or be detached first.
  void attach_fault_injector(fault::FaultInjector* injector);
  [[nodiscard]] fault::FaultInjector* fault_injector() const noexcept {
    return fault_;
  }

  /// Attaches (or with nullptr detaches) the periodic state scrubber, which
  /// then runs at its interval from inside step(). Same lifetime rule.
  void attach_scrubber(fault::StateScrubber* scrubber);
  [[nodiscard]] fault::StateScrubber* scrubber() const noexcept {
    return scrub_;
  }

 private:
  struct Transmission {
    Packet pkt;
    Cycle first_flit = 0;
    Cycle last_flit = 0;
    bool active = false;
    std::uint32_t granted_level = 0;  // PVC level at grant time
  };

  // ---- compile-time specialized step pipelines ----
  // The per-cycle hooks sprinkled through the pipeline (probe, fault
  // injector + scrubber, GSF frame bookkeeping) are selected once per
  // attachment change instead of branched on every cycle: the whole step
  // pipeline is a member template over a policy whose constexpr flags fold
  // detached hooks away entirely. DynPolicy keeps every runtime check (the
  // pre-refactor behaviour; also what config.specialize = false forces);
  // StaticPolicy<false, false, false> is the common detached configuration
  // with zero hook branches. select_pipeline() maps the current attachment
  // state to one of the nine instantiations via step_fn_.
  struct DynPolicy {
    static constexpr bool kDyn = true;
    static constexpr bool kProbe = true;
    static constexpr bool kFaultScrub = true;
    static constexpr bool kGsf = true;
  };
  template <bool Probe, bool FaultScrub, bool Gsf>
  struct StaticPolicy {
    static constexpr bool kDyn = false;
    static constexpr bool kProbe = Probe;
    static constexpr bool kFaultScrub = FaultScrub;
    static constexpr bool kGsf = Gsf;
  };
  // Policy accessors: a false static flag folds to a compile-time constant
  // (hook code eliminated); a true flag keeps the runtime pointer check so
  // one FaultScrub flag covers injector-only / scrubber-only attachments.
  template <class P>
  [[nodiscard]] obs::SwitchProbe* p_probe() const noexcept {
    if constexpr (!P::kDyn && !P::kProbe) {
      return nullptr;
    } else {
      return obs_;
    }
  }
  template <class P>
  [[nodiscard]] fault::FaultInjector* p_fault() const noexcept {
    if constexpr (!P::kDyn && !P::kFaultScrub) {
      return nullptr;
    } else {
      return fault_;
    }
  }
  template <class P>
  [[nodiscard]] fault::StateScrubber* p_scrub() const noexcept {
    if constexpr (!P::kDyn && !P::kFaultScrub) {
      return nullptr;
    } else {
      return scrub_;
    }
  }
  template <class P>
  [[nodiscard]] bool p_gsf() const noexcept {
    if constexpr (P::kDyn) {
      return config_.gsf.enabled;
    } else {
      return P::kGsf;
    }
  }
  /// Recomputes step_fn_ from config.specialize and the attachment state.
  /// Called at construction and from every attach_*().
  void select_pipeline() noexcept;

  template <class P>
  void step_impl();
  /// Packet creation into source queues (injector RNG rolls live here).
  template <class P>
  void inject_create();
  /// GSF bookkeeping + per-input admission of created packets into buffers.
  template <class P>
  void inject_admit();
  template <class P>
  void transfer();
  template <class P>
  void select_requests(std::vector<PendingRequest>& pending) const;
  template <class P>
  void arbitrate();
  /// SSVC + bit-sliced kernel: per-output packed request masks straight to
  /// pick_masked(), skipping the counting sort.
  template <class P>
  void arbitrate_masked();
  template <class P>
  void arbitrate_matched();
  /// Matching-engine allocation (config.engine != None): build the
  /// eligibility/backlog view, let the engine compute a matching, commit it.
  template <class P>
  void arbitrate_engine();
  void preempt_scan();
  /// Pops the winner's packet, charges usage, seizes the channel.
  template <class P>
  void commit_grant(InputId winner, OutputId o, TrafficClass cls);
  /// Highest-priority ready head of input i for output o, or nullptr.
  [[nodiscard]] const Packet* candidate_for(InputId i, OutputId o) const;
  void start_transmission(Packet&& pkt, OutputId o, Cycle first_flit);
  template <class P>
  void complete(Transmission& t, OutputId o);
  Packet pop_for(InputId i, TrafficClass cls, OutputId o);

  // Admit-mask bookkeeping; call right after pushing to / popping from
  // source_q_[f] (src == the flow's source input).
  void note_source_push(FlowId f, InputId src) {
    if (source_q_[f].size() == 1) {
      if (nonempty_src_flows_[src]++ == 0) admit_mask_ |= 1ULL << src;
    }
  }
  void note_source_pop(FlowId f, InputId src) {
    if (source_q_[f].empty()) {
      SSQ_EXPECT(nonempty_src_flows_[src] > 0);
      if (--nonempty_src_flows_[src] == 0) admit_mask_ &= ~(1ULL << src);
    }
  }

  SwitchConfig config_;
  traffic::Workload workload_;
  Rng rng_;
  Cycle now_ = 0;
  PacketId next_packet_id_ = 0;

  // ---- idle-cycle fast-forward state ----
  // Packets alive anywhere in the switch (created, not yet delivered; a
  // preempted packet stays alive). 0 <=> every queue and channel is empty.
  std::uint64_t live_packets_ = 0;
  // inject_create() already ran for the current cycle (set by
  // fast_forward() when creation fires); step() must not run it again.
  bool create_pending_ = false;
  std::uint64_t ff_skipped_cycles_ = 0;
  std::uint64_t ff_idle_stepped_cycles_ = 0;
  // Eligibility depends only on the (immutable) config; computed once in
  // the constructor so run loops and SwitchBatch read one flag per run
  // instead of re-deriving it per iteration.
  bool ff_eligible_ = false;
  // The step pipeline selected for the current attachment state.
  void (CrossbarSwitch::*step_fn_)() = nullptr;

  std::vector<InputPort> inputs_;
  std::vector<Cycle> output_free_at_;
  std::vector<Transmission> transmissions_;  // per output
  // Bit o set <=> transmissions_[o].active; lets transfer() visit only live
  // channels instead of scanning all `radix` transmissions every cycle.
  std::uint64_t active_out_ = 0;

  // QoS or baseline arbitration state, one per output.
  std::vector<std::unique_ptr<core::OutputQosArbiter>> qos_;
  std::vector<std::unique_ptr<arb::Arbiter>> baseline_;
  // Matching engine (config.engine != None): replaces the per-output grant
  // step wholesale; the qos_ arbiters stay idle.
  std::unique_ptr<arb::MatchingEngine> engine_;
  EngineStats engine_stats_;

  // Traffic plumbing, indexed by FlowId.
  std::vector<traffic::Injector> injectors_;
  // SoA bank advancing all strict-interior Bernoulli streams in lock-step
  // (one simd::xoshiro_batch pass per cycle instead of a per-injector roll).
  // unique_ptr: injectors hold its address, which must survive a switch move.
  std::unique_ptr<traffic::BernoulliBank> bern_bank_;
  std::vector<RingQueue<Packet>> source_q_;
  std::vector<std::size_t> max_backlog_;
  std::vector<std::uint64_t> delivered_;
  // Per-input list of its flows + acceptance round-robin pointer.
  std::vector<std::vector<FlowId>> input_flows_;
  std::vector<std::size_t> accept_ptr_;
  // Admission pruning: bit i set <=> some flow sourced at input i has a
  // non-empty source queue (count kept per input; transitions maintained at
  // every source_q_ push/pop). inject_admit() walks only these inputs.
  std::vector<std::uint32_t> nonempty_src_flows_;
  std::uint64_t admit_mask_ = 0;
  // GSF source regulation: per-flow packet quota per frame and usage in the
  // current frame; frame boundary bookkeeping.
  std::vector<std::uint32_t> gsf_quota_;   // 0 = unregulated (BE/GL)
  std::vector<std::uint32_t> gsf_used_;
  Cycle gsf_frame_start_ = 0;
  // IterativeMatching: per-input rotating accept pointer over outputs.
  std::vector<OutputId> accept_out_ptr_;
  // Per-cycle scratch arena: sized at construction, reused every step so the
  // steady-state cycle loop never touches the heap.
  StepScratch scratch_;
  // (src, dst, cls-bucket) -> FlowId for attributing granted packets.
  // GB flows are crosspoint-exclusive; BE/GL may multiplex per input.

  stats::LatencyRecorder latency_;
  stats::LatencyRecorder wait_;
  stats::ThroughputMeter throughput_;
  std::vector<ChannelUsage> usage_;  // per output, measurement window only
  std::vector<std::uint64_t> preemptions_;  // per output (PVC mode)
  std::uint64_t wasted_flits_ = 0;
  bool measuring_ = true;
  obs::SwitchProbe* obs_ = nullptr;  // null = observability off
  fault::FaultInjector* fault_ = nullptr;  // null = fault injection off
  fault::StateScrubber* scrub_ = nullptr;  // null = scrubbing off
};

}  // namespace ssq::sw
