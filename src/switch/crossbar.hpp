// The cycle-accurate single-crossbar Swizzle Switch model.
//
// Machine model (one cycle):
//   1. inject  — flow injectors create packets into unbounded source queues;
//                each input port admits at most one packet per cycle into
//                its (finite) class buffers.
//   2. transfer — every active transmission moves one flit across its output
//                channel; buffer space drains; completing packets are
//                recorded.
//   3. arbitrate — each idle input asserts at most ONE request (its bus
//                carries one flit/cycle): GL head first, then GB heads by a
//                rotating output pointer, then BE, restricted to idle output
//                channels. Each idle output runs one single-cycle
//                arbitration (three-class SSVC, or a class-blind baseline
//                arbiter) and the winner's packet seizes the channel for
//                1 arbitration cycle + `length` transfer cycles.
//
// The 1-cycle arbitration occupancy is intrinsic: the Swizzle Switch
// repurposes the output data bus for arbitration, so a channel cannot
// arbitrate and transfer simultaneously — this is what caps Fig. 4 at
// 8/(8+1) ≈ 0.89 flits/cycle for 8-flit packets, and what the optional
// Packet Chaining extension recovers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arb/arbiter.hpp"
#include "core/output_arbiter.hpp"
#include "obs/probe.hpp"
#include "sim/ring_queue.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "stats/latency.hpp"
#include "stats/throughput.hpp"
#include "switch/config.hpp"
#include "switch/input_port.hpp"
#include "switch/packet.hpp"
#include "switch/step_scratch.hpp"
#include "traffic/injector.hpp"
#include "traffic/workload.hpp"

namespace ssq::fault {
class FaultInjector;
class StateScrubber;
}

namespace ssq::sw {

class CrossbarSwitch {
 public:
  CrossbarSwitch(const SwitchConfig& config, traffic::Workload workload);

  /// Advances one cycle.
  void step();

  /// Advances `cycles` cycles. When fast_forward_eligible() and the switch
  /// is quiescent, idle stretches are skipped (exactly — see
  /// SwitchConfig::fast_forward) instead of stepped.
  void run(Cycle cycles);

  /// True when config/attachment state permits idle-cycle fast-forward:
  /// SSVC mode, no GSF regulation, no fault injector or scrubber attached,
  /// and config.fast_forward set. Under these conditions a quiescent cycle
  /// touches nothing but the injector RNG streams, which the fast path
  /// drives identically.
  [[nodiscard]] bool fast_forward_eligible() const noexcept;

  /// True when no packet exists anywhere (source queues, input buffers, or
  /// in flight) and no freshly-created packet awaits admission.
  [[nodiscard]] bool quiescent() const noexcept {
    return live_packets_ == 0 && !create_pending_;
  }

  /// Fast-forwards from now() toward `end` (absolute cycle) while the
  /// switch stays quiescent. Requires fast_forward_eligible(). Jumps the
  /// clock over stretches where every injector reports no activity
  /// (Injector::next_active_cycle); cycles where an injector must roll its
  /// RNG are run through the creation-only fast path. Returns with either
  /// now() == end, or packets created and pending admission (the next
  /// step() picks them up within the same cycle).
  void fast_forward(Cycle end);

  /// Cycles skipped outright by fast-forward (clock jumps, no per-cycle
  /// work at all) since construction.
  [[nodiscard]] std::uint64_t ff_skipped_cycles() const noexcept {
    return ff_skipped_cycles_;
  }
  /// Cycles handled by the creation-only idle fast path since construction.
  [[nodiscard]] std::uint64_t ff_idle_stepped_cycles() const noexcept {
    return ff_idle_stepped_cycles_;
  }

  /// run() then reset stats and open the measurement window — call once
  /// after the warmup phase.
  void warmup(Cycle cycles);

  /// run() then close the measurement window.
  void measure(Cycle cycles);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SwitchConfig& config() const noexcept { return config_; }
  [[nodiscard]] const traffic::Workload& workload() const noexcept {
    return workload_;
  }

  // ---- statistics (valid after measure()) ----
  /// Packet latency: delivery − input-buffer entry (or − creation when
  /// config.latency_from_creation).
  [[nodiscard]] const stats::LatencyRecorder& latency() const noexcept {
    return latency_;
  }
  /// Arbitration waiting time: grant − input-buffer entry. The quantity
  /// bounded by Eq. (1) for GL packets.
  [[nodiscard]] const stats::LatencyRecorder& wait() const noexcept {
    return wait_;
  }
  [[nodiscard]] const stats::ThroughputMeter& throughput() const noexcept {
    return throughput_;
  }
  [[nodiscard]] std::uint64_t delivered_packets(FlowId f) const;
  [[nodiscard]] std::uint64_t created_packets(FlowId f) const;
  /// Deepest source-queue backlog seen (packets) — a saturation indicator.
  [[nodiscard]] std::size_t max_source_backlog(FlowId f) const;

  /// Per-output channel occupancy inside the measurement window.
  struct ChannelUsage {
    std::uint64_t arbitration_cycles = 0;
    std::uint64_t transfer_cycles = 0;
  };
  [[nodiscard]] ChannelUsage channel_usage(OutputId o) const;

  /// PVC-mode statistics (0 unless pvc.preemption).
  [[nodiscard]] std::uint64_t preemptions(OutputId o) const;
  [[nodiscard]] std::uint64_t wasted_flits() const noexcept {
    return wasted_flits_;
  }

  /// Matching-engine convergence counters (all 0 unless config.engine):
  /// arbitration cycles run, iterations the engine reported across them,
  /// and pairs committed — avg iterations/cycle is the stability-lab
  /// convergence metric on live-switch runs.
  struct EngineStats {
    std::uint64_t cycles = 0;
    std::uint64_t iterations = 0;
    std::uint64_t matches = 0;
  };
  [[nodiscard]] const EngineStats& engine_stats() const noexcept {
    return engine_stats_;
  }

  // ---- introspection ----
  [[nodiscard]] const InputPort& input(InputId i) const;
  [[nodiscard]] core::OutputQosArbiter& qos_arbiter(OutputId o);
  [[nodiscard]] bool output_idle(OutputId o) const;

  // ---- observability ----
  /// Attaches (or with nullptr detaches) the observability probe. While
  /// attached, every packet-lifecycle step and — in SSVC mode — every
  /// arbitration-internal event is reported; detached, each hook site costs
  /// a single branch on this pointer (the null-sink fast path). The probe
  /// must outlive the switch or be detached first.
  void attach_probe(obs::SwitchProbe* probe);
  [[nodiscard]] obs::SwitchProbe* probe() const noexcept { return obs_; }

  // ---- fault injection / recovery ----
  /// Attaches (or with nullptr detaches) a fault injector. While attached it
  /// runs at the top of every step() and its port/crosspoint outages gate
  /// request selection; the LRG arbiters switch to fault-tolerant (graceful
  /// degradation) mode. Detached, each hook site costs a single branch on
  /// this pointer. SSVC mode only for state corruption; outages apply in
  /// every mode. The injector must outlive the switch or be detached first.
  void attach_fault_injector(fault::FaultInjector* injector);
  [[nodiscard]] fault::FaultInjector* fault_injector() const noexcept {
    return fault_;
  }

  /// Attaches (or with nullptr detaches) the periodic state scrubber, which
  /// then runs at its interval from inside step(). Same lifetime rule.
  void attach_scrubber(fault::StateScrubber* scrubber);
  [[nodiscard]] fault::StateScrubber* scrubber() const noexcept {
    return scrub_;
  }

 private:
  struct Transmission {
    Packet pkt;
    Cycle first_flit = 0;
    Cycle last_flit = 0;
    bool active = false;
    std::uint32_t granted_level = 0;  // PVC level at grant time
  };

  /// Packet creation into source queues (injector RNG rolls live here).
  void inject_create();
  /// GSF bookkeeping + per-input admission of created packets into buffers.
  void inject_admit();
  void transfer();
  void select_requests(std::vector<PendingRequest>& pending) const;
  void arbitrate();
  /// SSVC + bit-sliced kernel: per-output packed request masks straight to
  /// pick_masked(), skipping the counting sort.
  void arbitrate_masked();
  void arbitrate_matched();
  /// Matching-engine allocation (config.engine != None): build the
  /// eligibility/backlog view, let the engine compute a matching, commit it.
  void arbitrate_engine();
  void preempt_scan();
  /// Pops the winner's packet, charges usage, seizes the channel.
  void commit_grant(InputId winner, OutputId o, TrafficClass cls);
  /// Highest-priority ready head of input i for output o, or nullptr.
  [[nodiscard]] const Packet* candidate_for(InputId i, OutputId o) const;
  void start_transmission(Packet&& pkt, OutputId o, Cycle first_flit);
  void complete(Transmission& t, OutputId o);
  Packet pop_for(InputId i, TrafficClass cls, OutputId o);

  // Admit-mask bookkeeping; call right after pushing to / popping from
  // source_q_[f] (src == the flow's source input).
  void note_source_push(FlowId f, InputId src) {
    if (source_q_[f].size() == 1) {
      if (nonempty_src_flows_[src]++ == 0) admit_mask_ |= 1ULL << src;
    }
  }
  void note_source_pop(FlowId f, InputId src) {
    if (source_q_[f].empty()) {
      SSQ_EXPECT(nonempty_src_flows_[src] > 0);
      if (--nonempty_src_flows_[src] == 0) admit_mask_ &= ~(1ULL << src);
    }
  }

  SwitchConfig config_;
  traffic::Workload workload_;
  Rng rng_;
  Cycle now_ = 0;
  PacketId next_packet_id_ = 0;

  // ---- idle-cycle fast-forward state ----
  // Packets alive anywhere in the switch (created, not yet delivered; a
  // preempted packet stays alive). 0 <=> every queue and channel is empty.
  std::uint64_t live_packets_ = 0;
  // inject_create() already ran for the current cycle (set by
  // fast_forward() when creation fires); step() must not run it again.
  bool create_pending_ = false;
  std::uint64_t ff_skipped_cycles_ = 0;
  std::uint64_t ff_idle_stepped_cycles_ = 0;

  std::vector<InputPort> inputs_;
  std::vector<Cycle> output_free_at_;
  std::vector<Transmission> transmissions_;  // per output
  // Bit o set <=> transmissions_[o].active; lets transfer() visit only live
  // channels instead of scanning all `radix` transmissions every cycle.
  std::uint64_t active_out_ = 0;

  // QoS or baseline arbitration state, one per output.
  std::vector<std::unique_ptr<core::OutputQosArbiter>> qos_;
  std::vector<std::unique_ptr<arb::Arbiter>> baseline_;
  // Matching engine (config.engine != None): replaces the per-output grant
  // step wholesale; the qos_ arbiters stay idle.
  std::unique_ptr<arb::MatchingEngine> engine_;
  EngineStats engine_stats_;

  // Traffic plumbing, indexed by FlowId.
  std::vector<traffic::Injector> injectors_;
  // SoA bank advancing all strict-interior Bernoulli streams in lock-step
  // (one simd::xoshiro_batch pass per cycle instead of a per-injector roll).
  // unique_ptr: injectors hold its address, which must survive a switch move.
  std::unique_ptr<traffic::BernoulliBank> bern_bank_;
  std::vector<RingQueue<Packet>> source_q_;
  std::vector<std::size_t> max_backlog_;
  std::vector<std::uint64_t> delivered_;
  // Per-input list of its flows + acceptance round-robin pointer.
  std::vector<std::vector<FlowId>> input_flows_;
  std::vector<std::size_t> accept_ptr_;
  // Admission pruning: bit i set <=> some flow sourced at input i has a
  // non-empty source queue (count kept per input; transitions maintained at
  // every source_q_ push/pop). inject_admit() walks only these inputs.
  std::vector<std::uint32_t> nonempty_src_flows_;
  std::uint64_t admit_mask_ = 0;
  // GSF source regulation: per-flow packet quota per frame and usage in the
  // current frame; frame boundary bookkeeping.
  std::vector<std::uint32_t> gsf_quota_;   // 0 = unregulated (BE/GL)
  std::vector<std::uint32_t> gsf_used_;
  Cycle gsf_frame_start_ = 0;
  // IterativeMatching: per-input rotating accept pointer over outputs.
  std::vector<OutputId> accept_out_ptr_;
  // Per-cycle scratch arena: sized at construction, reused every step so the
  // steady-state cycle loop never touches the heap.
  StepScratch scratch_;
  // (src, dst, cls-bucket) -> FlowId for attributing granted packets.
  // GB flows are crosspoint-exclusive; BE/GL may multiplex per input.

  stats::LatencyRecorder latency_;
  stats::LatencyRecorder wait_;
  stats::ThroughputMeter throughput_;
  std::vector<ChannelUsage> usage_;  // per output, measurement window only
  std::vector<std::uint64_t> preemptions_;  // per output (PVC mode)
  std::uint64_t wasted_flits_ = 0;
  bool measuring_ = true;
  obs::SwitchProbe* obs_ = nullptr;  // null = observability off
  fault::FaultInjector* fault_ = nullptr;  // null = fault injection off
  fault::StateScrubber* scrub_ = nullptr;  // null = scrubbing off
};

}  // namespace ssq::sw
