#include "switch/simulator.hpp"

namespace ssq::sw {

ExperimentResult summarize(const CrossbarSwitch& sw) {
  ExperimentResult result;
  result.measured_cycles = sw.throughput().window_cycles();
  const auto& flows = sw.workload().flows();
  result.flows.reserve(flows.size());
  for (FlowId f = 0; f < flows.size(); ++f) {
    FlowSummary s;
    s.flow = f;
    s.src = flows[f].src;
    s.dst = flows[f].dst;
    s.cls = flows[f].cls;
    s.reserved_rate = flows[f].reserved_rate;
    s.accepted_rate = sw.throughput().rate(f);
    const auto& lat = sw.latency().flow_summary(f);
    const auto& lat_hist = sw.latency().flow_histogram(f);
    s.mean_latency = lat.mean();
    s.p50_latency = lat_hist.percentile(0.50);
    s.p95_latency = lat_hist.percentile(0.95);
    s.p99_latency = lat_hist.percentile(0.99);
    s.max_latency = lat.count() ? lat.max() : 0.0;
    const auto& wt = sw.wait().flow_summary(f);
    const auto& wt_hist = sw.wait().flow_histogram(f);
    s.mean_wait = wt.mean();
    s.p50_wait = wt_hist.percentile(0.50);
    s.p95_wait = wt_hist.percentile(0.95);
    s.p99_wait = wt_hist.percentile(0.99);
    s.max_wait = wt.count() ? wt.max() : 0.0;
    s.delivered_packets = sw.delivered_packets(f);
    result.total_accepted_rate += s.accepted_rate;
    result.flows.push_back(s);
  }
  return result;
}

ExperimentResult run_experiment(const SwitchConfig& config,
                                traffic::Workload workload,
                                Cycle warmup_cycles, Cycle measure_cycles) {
  SSQ_EXPECT(measure_cycles >= 1);
  CrossbarSwitch sw(config, std::move(workload));

  // Offered rate needs created-packet counts inside the window; snapshot at
  // the window edges.
  sw.warmup(warmup_cycles);
  std::vector<std::uint64_t> created_at_open;
  const std::size_t n = sw.workload().num_flows();
  created_at_open.reserve(n);
  for (FlowId f = 0; f < n; ++f) created_at_open.push_back(sw.created_packets(f));
  sw.measure(measure_cycles);

  ExperimentResult result = summarize(sw);
  for (FlowId f = 0; f < n; ++f) {
    const auto created =
        sw.created_packets(f) - created_at_open[f];
    const double mean_len =
        static_cast<double>(sw.workload().flow(f).mean_len());
    result.flows[f].offered_rate =
        static_cast<double>(created) * mean_len /
        static_cast<double>(result.measured_cycles);
  }
  return result;
}

}  // namespace ssq::sw
