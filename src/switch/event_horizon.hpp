// EventHorizon — the min-fold that makes idle-cycle fast-forward universal.
//
// A quiescent switch (no live packets, no pending injection work) may jump
// its clock forward, but only as far as the earliest cycle at which any
// per-cycle consumer would do observable work. Each consumer participates
// through one of two contracts:
//
//   1. Finite horizon — the consumer exposes `next_event(now)`, the
//      earliest cycle >= now at which it must run inside a full step()
//      (fault-plan outage edges and stuck-lane starts, the scrubber's next
//      pass, a pre-rolled bitflip firing cycle, an injector's next active
//      cycle). The jump is clamped so that cycle is reached by stepping,
//      never skipped. A consumer whose remaining schedule is empty returns
//      kNoCycle and stops constraining the jump.
//
//   2. Exact retroactive catch-up — the consumer can reconstruct the effect
//      of the skipped cycles from the jump distance alone, so it needs no
//      horizon at all: the conformance monitor coalesces whole idle windows
//      in on_clock_jump(), injectors advance their periodic phase
//      arithmetically, and the GSF frame bookkeeping realigns
//      frame_start by a modulo catch-up. Catch-up must be *exact*: a jumped
//      run and a stepped run end the skipped range in byte-identical state.
//
// Consumers whose per-cycle work is idempotent on quiescent state (stuck-
// lane reassertion re-forcing the same thermometer cells) satisfy contract
// 2 trivially with a no-op: every cycle on which the forced state could be
// read or mutated is itself horizon-forced to a full step.
//
// The fold is conservative by construction: adding a consumer can only pull
// the horizon closer (shrink jumps), never push it past another consumer's
// constraint — so safety arguments stay local to each consumer.
// docs/PERFORMANCE.md carries the full safety argument.
#pragma once

#include "sim/types.hpp"

namespace ssq::sw {

/// Accumulates the minimum event horizon for one fast-forward jump.
/// Start at the run's end cycle, `limit()` in every consumer's horizon,
/// then jump to `target()`; `due_now(now)` says a consumer needs a full
/// step immediately (jump distance zero).
class EventHorizon {
 public:
  explicit constexpr EventHorizon(Cycle end) noexcept : target_(end) {}

  /// Folds a consumer's next-event cycle in. kNoCycle = unconstrained.
  constexpr void limit(Cycle at) noexcept {
    if (at < target_) target_ = at;
  }

  /// True when the folded horizon is at or before `now`: some consumer has
  /// work this very cycle, so the switch must step, not jump.
  [[nodiscard]] constexpr bool due_now(Cycle now) const noexcept {
    return target_ <= now;
  }

  /// The furthest cycle the clock may jump to.
  [[nodiscard]] constexpr Cycle target() const noexcept { return target_; }

 private:
  Cycle target_;
};

}  // namespace ssq::sw
