#include "obs/probe.hpp"

#include <string>

namespace ssq::obs {

namespace {

std::string out_name(const char* stem, OutputId o) {
  return std::string(stem) + std::to_string(o);
}

}  // namespace

SwitchProbe::SwitchProbe(std::uint32_t radix, Cycle grant_window_cycles)
    : radix_(radix) {
  SSQ_EXPECT(radix >= 1 && radix <= 64);
  if (grant_window_cycles > 0) {
    delivered_series_.emplace_back(radix, grant_window_cycles);
  }
  created_ = metrics_.counter("switch.packets.created");
  buffered_ = metrics_.counter("switch.packets.buffered");
  blocked_ = metrics_.counter("switch.admit.blocked");
  requests_ = metrics_.counter("switch.requests");
  grants_ = metrics_.counter("arb.grants");
  chain_grants_ = metrics_.counter("arb.grants.chained");
  delivered_flits_ = metrics_.counter("switch.delivered.flits");
  delivered_pkts_ = metrics_.counter("switch.delivered.packets");
  preemptions_ = metrics_.counter("switch.preemptions");
  wasted_flits_ = metrics_.counter("switch.wasted.flits");
  epoch_wraps_ = metrics_.counter("ssvc.epoch_wraps");
  mgmt_halves_ = metrics_.counter("ssvc.mgmt.halve");
  mgmt_resets_ = metrics_.counter("ssvc.mgmt.reset");
  tie_breaks_ = metrics_.counter("ssvc.lane_tie_breaks");
  faults_injected_ = metrics_.counter("fault.injected");
  scrub_repairs_ = metrics_.counter("fault.scrub.repairs");
  quarantines_ = metrics_.counter("fault.quarantines");
  port_outages_ = metrics_.counter("fault.port_outages");
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    grants_cls_[c] = metrics_.counter(
        std::string("arb.grants.") +
        std::string(to_string(static_cast<TrafficClass>(c))));
  }
  grants_out_.reserve(radix);
  auxvc_sat_out_.reserve(radix);
  gl_stall_out_.reserve(radix);
  scrub_repairs_out_.reserve(radix);
  for (OutputId o = 0; o < radix; ++o) {
    grants_out_.push_back(metrics_.counter(out_name("arb.grants.out", o)));
    auxvc_sat_out_.push_back(
        metrics_.counter(out_name("ssvc.auxvc_saturations.out", o)));
    gl_stall_out_.push_back(
        metrics_.counter(out_name("ssvc.gl_stalls.out", o)));
    scrub_repairs_out_.push_back(
        metrics_.counter(out_name("fault.repairs.out", o)));
  }
  wait_hist_ = metrics_.histogram("switch.wait.cycles", 8.0, 64);
  latency_hist_ = metrics_.histogram("switch.latency.cycles", 16.0, 64);
}

void SwitchProbe::packet_created(Cycle now, FlowId flow, PacketId pkt,
                                 InputId src, OutputId dst, TrafficClass cls,
                                 std::uint32_t len, std::uint64_t backlog) {
  metrics_.add(created_);
  emit({now, EventKind::PacketCreated, cls, src, dst, flow, pkt, len, backlog,
        0});
}

void SwitchProbe::packet_buffered(Cycle now, FlowId flow, PacketId pkt,
                                  InputId src, OutputId dst, TrafficClass cls,
                                  std::uint32_t len) {
  metrics_.add(buffered_);
  emit({now, EventKind::PacketBuffered, cls, src, dst, flow, pkt, len, 0, 0});
}

void SwitchProbe::admit_blocked(Cycle now, FlowId flow, InputId src,
                                OutputId dst, TrafficClass cls,
                                std::uint32_t len) {
  metrics_.add(blocked_);
  emit({now, EventKind::AdmitBlocked, cls, src, dst, flow, kNoId, len, 0, 0});
}

void SwitchProbe::request(Cycle now, InputId input, OutputId output,
                          TrafficClass cls) {
  metrics_.add(requests_);
  emit({now, EventKind::Request, cls, input, output, kNoId, kNoId, 0, 0, 0});
}

void SwitchProbe::grant(Cycle now, InputId input, OutputId output,
                        TrafficClass cls, FlowId flow, PacketId pkt,
                        std::uint32_t len, Cycle wait, bool chained) {
  metrics_.add(grants_);
  metrics_.add(grants_cls_[static_cast<std::size_t>(cls)]);
  metrics_.add(grants_out_[output]);
  if (chained) metrics_.add(chain_grants_);
  metrics_.observe(wait_hist_, static_cast<double>(wait));
  emit({now, chained ? EventKind::ChainGrant : EventKind::Grant, cls, input,
        output, flow, pkt, len, wait, 0});
}

void SwitchProbe::transfer_start(Cycle first_flit, InputId input,
                                 OutputId output, TrafficClass cls,
                                 FlowId flow, PacketId pkt,
                                 std::uint32_t len) {
  emit({first_flit, EventKind::TransferStart, cls, input, output, flow, pkt,
        len, 0, 0});
}

void SwitchProbe::delivered(Cycle now, InputId input, OutputId output,
                            TrafficClass cls, FlowId flow, PacketId pkt,
                            std::uint32_t len, Cycle latency) {
  metrics_.add(delivered_pkts_);
  metrics_.add(delivered_flits_, len);
  metrics_.observe(latency_hist_, static_cast<double>(latency));
  if (!delivered_series_.empty()) {
    delivered_series_.front().record_flits(output, now, len);
  }
  emit({now, EventKind::Delivered, cls, input, output, flow, pkt, len, latency,
        0});
}

void SwitchProbe::preempted(Cycle now, InputId input, OutputId output,
                            TrafficClass cls, FlowId flow, PacketId pkt,
                            std::uint64_t wasted_flits) {
  metrics_.add(preemptions_);
  metrics_.add(wasted_flits_, wasted_flits);
  emit({now, EventKind::Preempted, cls, input, output, flow, pkt, 0,
        wasted_flits, 0});
}

void SwitchProbe::gl_stall(Cycle now, OutputId output, std::uint64_t overrun) {
  metrics_.add(gl_stall_out_[output]);
  emit({now, EventKind::GlStall, TrafficClass::GuaranteedLatency, kNoPort,
        output, kNoId, kNoId, 0, overrun, 0});
}

void SwitchProbe::lane_tie_break(Cycle now, OutputId output, TrafficClass cls,
                                 InputId winner, std::uint32_t lane_level,
                                 std::uint32_t candidates) {
  metrics_.add(tie_breaks_);
  emit({now, EventKind::LaneTieBreak, cls, winner, output, kNoId, kNoId, 0,
        lane_level, candidates});
}

void SwitchProbe::auxvc_saturated(Cycle now, OutputId output, InputId input,
                                  std::uint64_t cap) {
  metrics_.add(auxvc_sat_out_[output]);
  emit({now, EventKind::AuxVcSaturated, TrafficClass::GuaranteedBandwidth,
        input, output, kNoId, kNoId, 0, cap, 0});
}

void SwitchProbe::epoch_wrap(Cycle now, OutputId output) {
  metrics_.add(epoch_wraps_);
  emit({now, EventKind::EpochWrap, TrafficClass::GuaranteedBandwidth, kNoPort,
        output, kNoId, kNoId, 0, 0, 0});
}

void SwitchProbe::mgmt_event(Cycle now, OutputId output, bool halve) {
  metrics_.add(halve ? mgmt_halves_ : mgmt_resets_);
  emit({now, halve ? EventKind::MgmtHalve : EventKind::MgmtReset,
        TrafficClass::GuaranteedBandwidth, kNoPort, output, kNoId, kNoId, 0, 0,
        0});
}

void SwitchProbe::fault_injected(Cycle now, OutputId output, InputId input,
                                 std::uint32_t target, std::uint64_t detail) {
  metrics_.add(faults_injected_);
  emit({now, EventKind::FaultInjected, TrafficClass::BestEffort, input, output,
        kNoId, kNoId, 0, target, detail});
}

void SwitchProbe::scrub_repair(Cycle now, OutputId output, InputId input,
                               std::uint32_t repair_kind) {
  metrics_.add(scrub_repairs_);
  if (output != kNoPort) metrics_.add(scrub_repairs_out_[output]);
  emit({now, EventKind::ScrubRepair, TrafficClass::BestEffort, input, output,
        kNoId, kNoId, 0, repair_kind, 0});
}

void SwitchProbe::lane_quarantined(Cycle now, OutputId output,
                                   std::uint32_t lane) {
  metrics_.add(quarantines_);
  emit({now, EventKind::LaneQuarantined, TrafficClass::GuaranteedBandwidth,
        kNoPort, output, kNoId, kNoId, 0, lane, 0});
}

void SwitchProbe::port_outage(Cycle now, InputId input, bool down) {
  metrics_.add(port_outages_);
  emit({now, EventKind::PortOutage, TrafficClass::BestEffort, input, kNoPort,
        kNoId, kNoId, 0, down ? 1u : 0u, 0});
}

}  // namespace ssq::obs
