// Metrics registry: counters, gauges and fixed-bucket histograms addressed
// by interned name handles.
//
// Registration (name interning) is the cold path — it does a hash lookup and
// may allocate. The returned handle is a plain index, so hot-path updates are
// one bounds-checked vector access with no hashing and no allocation.
// Registering the same name twice returns the same handle (idempotent),
// which is what lets merge() unify registries built independently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/contracts.hpp"
#include "stats/histogram.hpp"

namespace ssq::obs {

struct CounterId { std::uint32_t idx = 0; };
struct GaugeId { std::uint32_t idx = 0; };
struct HistogramId { std::uint32_t idx = 0; };

class MetricsRegistry {
 public:
  // ---- registration (cold; idempotent per name) ----
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  /// Fixed-bucket histogram: `num_bins` bins of `bin_width` plus an overflow
  /// bin (stats::Histogram semantics). Re-registering a name requires the
  /// same geometry.
  HistogramId histogram(std::string_view name, double bin_width,
                        std::size_t num_bins);

  // ---- hot-path updates ----
  void add(CounterId id, std::uint64_t delta = 1) noexcept {
    SSQ_EXPECT(id.idx < counters_.size());
    counters_[id.idx].value += delta;
  }
  void set(GaugeId id, double value) noexcept {
    SSQ_EXPECT(id.idx < gauges_.size());
    gauges_[id.idx].value = value;
  }
  void observe(HistogramId id, double value) {
    SSQ_EXPECT(id.idx < histograms_.size());
    histograms_[id.idx].hist.add(value);
  }

  // ---- introspection ----
  [[nodiscard]] std::uint64_t value(CounterId id) const {
    SSQ_EXPECT(id.idx < counters_.size());
    return counters_[id.idx].value;
  }
  [[nodiscard]] double value(GaugeId id) const {
    SSQ_EXPECT(id.idx < gauges_.size());
    return gauges_[id.idx].value;
  }
  [[nodiscard]] const stats::Histogram& data(HistogramId id) const {
    SSQ_EXPECT(id.idx < histograms_.size());
    return histograms_[id.idx].hist;
  }
  /// Counter value by name; 0 when the name was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::size_t num_counters() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] std::size_t num_gauges() const noexcept {
    return gauges_.size();
  }
  [[nodiscard]] std::size_t num_histograms() const noexcept {
    return histograms_.size();
  }

  /// Folds `other` into this registry, matching metrics by name: counters
  /// add, gauges take the other's latest value, histograms merge bin-wise
  /// (geometries must match). Metrics unknown here are created.
  void merge(const MetricsRegistry& other);

  /// Writes the whole registry as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  void write_json(std::ostream& os) const;

 private:
  struct Counter { std::string name; std::uint64_t value = 0; };
  struct Gauge { std::string name; double value = 0.0; };
  struct Hist {
    std::string name;
    stats::Histogram hist;
  };

  std::unordered_map<std::string, std::uint32_t> counter_index_;
  std::unordered_map<std::string, std::uint32_t> gauge_index_;
  std::unordered_map<std::string, std::uint32_t> histogram_index_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Hist> histograms_;
};

}  // namespace ssq::obs
