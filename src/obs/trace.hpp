// Event tracer and its sinks.
//
// The Tracer is the funnel every probe hook feeds: it applies the event
// limit and forwards to one sink. Two file sinks are provided —
//
//   * ChromeTraceSink: Chrome trace-event JSON ({"traceEvents":[...]})
//     loadable in Perfetto / chrome://tracing. Ports become tracks: one
//     process for input ports, one for output ports, one thread per port.
//     Packet transfers are B/E duration pairs on the output track; all
//     other events are instants.
//   * JsonlSink: one JSON object per line, schema-stable, for jq/pandas.
//
// Sinks format; the simulator never does. finish() must be called before
// closing the underlying stream (the Chrome format needs its closing
// brackets); Tracer::~Tracer calls it for you.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace ssq::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& e) = 0;
  /// Idle-cycle fast-forward notification: the simulator clock jumped from
  /// `from` to `to` with provably no events in between. NOT a trace event —
  /// file sinks ignore it (traces stay byte-identical across fast-forward),
  /// but window-based consumers (conformance monitor) use it to advance or
  /// coalesce the skipped window boundaries instead of silently stretching
  /// a window.
  virtual void on_clock_jump(Cycle /*from*/, Cycle /*to*/) {}
  /// Flushes trailers (closing brackets, metadata). Idempotent.
  virtual void finish() {}
  /// False once the underlying stream has failed. File sinks report write
  /// errors (disk full, closed pipe) here instead of silently truncating
  /// the trace; callers should check after finish().
  [[nodiscard]] virtual bool ok() const { return true; }
};

/// Formats one event as the schema-stable JSONL line (with trailing
/// newline) shared by JsonlSink and the flight recorder.
[[nodiscard]] std::string jsonl_event_line(const Event& e);

/// Chrome trace-event JSON. `radix` sizes the port tracks.
class ChromeTraceSink final : public TraceSink {
 public:
  ChromeTraceSink(std::ostream& os, std::uint32_t radix);
  void on_event(const Event& e) override;
  void finish() override;
  [[nodiscard]] bool ok() const override;

 private:
  void write_metadata();
  std::ostream& os_;
  std::uint32_t radix_;
  bool any_ = false;
  bool finished_ = false;
};

/// One JSON object per line.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void on_event(const Event& e) override;
  void finish() override;
  [[nodiscard]] bool ok() const override;

 private:
  std::ostream& os_;
};

/// In-memory sink — tests and programmatic consumers.
class CollectSink final : public TraceSink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<Event> events_;
};

/// Fan-out to several sinks in registration order — the composition point
/// for "file trace + conformance monitor + flight recorder" on the one
/// probe attachment. Does not own the sinks.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void on_event(const Event& e) override {
    for (TraceSink* s : sinks_) s->on_event(e);
  }
  void on_clock_jump(Cycle from, Cycle to) override {
    for (TraceSink* s : sinks_) s->on_clock_jump(from, to);
  }
  void finish() override {
    for (TraceSink* s : sinks_) s->finish();
  }
  [[nodiscard]] bool ok() const override {
    for (const TraceSink* s : sinks_) {
      if (!s->ok()) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sinks_.size(); }

 private:
  std::vector<TraceSink*> sinks_;
};

class Tracer {
 public:
  /// `limit` caps emitted events (kNoLimit = unbounded); events beyond the
  /// cap are counted as dropped but never formatted.
  static constexpr std::uint64_t kNoLimit = ~0ULL;
  explicit Tracer(TraceSink& sink, std::uint64_t limit = kNoLimit)
      : sink_(sink), limit_(limit) {}
  ~Tracer() { finish(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void emit(const Event& e) {
    if (emitted_ >= limit_) {
      ++dropped_;
      return;
    }
    ++emitted_;
    sink_.on_event(e);
  }

  void finish() { sink_.finish(); }

  /// Delegates to the sink: false once the trace file stopped accepting
  /// writes.
  [[nodiscard]] bool ok() const { return sink_.ok(); }

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  TraceSink& sink_;
  std::uint64_t limit_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ssq::obs
