#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace ssq::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::on_event(const Event& e) {
  ring_[head_] = e;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
  ++seen_;
}

std::vector<Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  // Oldest event sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& os, std::string_view reason,
                          Cycle now) const {
  os << "{\"schema\":\"ssq.flight.v1\",\"reason\":" << json_quote(reason)
     << ",\"cycle\":" << now << ",\"events\":" << size_
     << ",\"dropped\":" << (seen_ - size_) << "}\n";
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    os << jsonl_event_line(ring_[(start + i) % ring_.size()]);
  }
}

std::string FlightRecorder::dump_string(std::string_view reason,
                                        Cycle now) const {
  std::ostringstream os;
  dump(os, reason, now);
  return os.str();
}

}  // namespace ssq::obs
