#include "obs/trace.hpp"

#include <ostream>
#include <string>

#include "obs/json.hpp"

namespace ssq::obs {

namespace {

/// Kind-specific label of Event::arg0 (nullptr = arg0 unused).
const char* arg0_label(EventKind k) {
  switch (k) {
    case EventKind::PacketCreated: return "backlog";
    case EventKind::Grant:
    case EventKind::ChainGrant: return "wait";
    case EventKind::Delivered: return "latency";
    case EventKind::Preempted: return "wasted";
    case EventKind::GlStall: return "overrun";
    case EventKind::LaneTieBreak: return "lane";
    case EventKind::AuxVcSaturated: return "cap";
    case EventKind::FaultInjected: return "target";
    case EventKind::ScrubRepair: return "repair";
    case EventKind::LaneQuarantined: return "lane";
    case EventKind::PortOutage: return "down";
    default: return nullptr;
  }
}

/// Kind-specific label of Event::arg1 (nullptr = arg1 unused).
const char* arg1_label(EventKind k) {
  switch (k) {
    case EventKind::LaneTieBreak: return "candidates";
    case EventKind::FaultInjected: return "bit";
    default: return nullptr;
  }
}

/// Output-port events render on the output track; everything else on the
/// input track.
bool on_output_track(const Event& e) {
  return e.output != kNoPort;
}

/// Common payload fields shared by both sinks ({"cls":...,"flow":...,...}).
void append_payload(const Event& e, std::string& out) {
  bool first = true;
  const auto field = [&](const char* name, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += value;
  };
  field("cls", json_quote(to_string(e.cls)));
  if (e.input != kNoPort) field("in", std::to_string(e.input));
  if (e.output != kNoPort) field("out", std::to_string(e.output));
  if (e.flow != kNoId) field("flow", std::to_string(e.flow));
  if (e.packet != kNoId) field("pkt", std::to_string(e.packet));
  if (e.length != 0) field("len", std::to_string(e.length));
  if (const char* l = arg0_label(e.kind)) field(l, std::to_string(e.arg0));
  if (const char* l = arg1_label(e.kind)) field(l, std::to_string(e.arg1));
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& os, std::uint32_t radix)
    : os_(os), radix_(radix) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  write_metadata();
}

void ChromeTraceSink::write_metadata() {
  // Two synthetic processes: pid 0 = input ports, pid 1 = output ports; one
  // thread (track) per port.
  os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"input ports\"}}";
  os_ << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"output ports\"}}";
  for (std::uint32_t p = 0; p < radix_; ++p) {
    os_ << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << p
        << ",\"args\":{\"name\":\"in" << p << "\"}}";
    os_ << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << p
        << ",\"args\":{\"name\":\"out" << p << "\"}}";
  }
  any_ = true;
}

void ChromeTraceSink::on_event(const Event& e) {
  const bool out_track = on_output_track(e);
  const std::uint32_t tid = out_track ? e.output : e.input;
  const char* ph = "i";
  Cycle ts = e.cycle;
  std::string name;
  if (e.kind == EventKind::TransferStart) {
    ph = "B";
    name = "xfer f" + std::to_string(e.flow) + " p" + std::to_string(e.packet);
  } else if (e.kind == EventKind::Delivered) {
    // Close the transfer slice after the last flit cycle so the slice width
    // equals the packet length in cycles.
    ph = "E";
    ts = e.cycle + 1;
    name = "xfer f" + std::to_string(e.flow) + " p" + std::to_string(e.packet);
  } else {
    name = to_string(e.kind);
  }

  std::string line;
  line.reserve(160);
  if (any_) line += ",\n";
  line += "{\"name\":";
  line += json_quote(name);
  line += ",\"cat\":\"ssq\",\"ph\":\"";
  line += ph;
  line += "\",\"ts\":";
  line += std::to_string(ts);
  line += ",\"pid\":";
  line += out_track ? '1' : '0';
  line += ",\"tid\":";
  line += std::to_string(tid == kNoPort ? 0 : tid);
  if (ph[0] == 'i') line += ",\"s\":\"t\"";
  line += ",\"args\":{\"ev\":";
  line += json_quote(to_string(e.kind));
  line += ',';
  append_payload(e, line);
  line += "}}";
  os_ << line;
  any_ = true;
}

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]}\n";
  os_.flush();
}

bool ChromeTraceSink::ok() const { return static_cast<bool>(os_); }

std::string jsonl_event_line(const Event& e) {
  std::string line;
  line.reserve(160);
  line += "{\"t\":";
  line += std::to_string(e.cycle);
  line += ",\"ev\":";
  line += json_quote(to_string(e.kind));
  line += ',';
  append_payload(e, line);
  line += "}\n";
  return line;
}

void JsonlSink::on_event(const Event& e) { os_ << jsonl_event_line(e); }

void JsonlSink::finish() { os_.flush(); }

bool JsonlSink::ok() const { return static_cast<bool>(os_); }

}  // namespace ssq::obs
