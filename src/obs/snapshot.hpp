// Periodic time-series snapshot sampler — the third sink.
//
// Every `interval` cycles the driver hands the sampler the switch's current
// per-port class-buffer occupancy plus the attached SwitchProbe; the sampler
// diffs the probe's per-output counters against the previous sample and
// appends one snapshot row: per-class occupancy, per-output grant shares in
// the window, auxVC saturation and GL-stall counts. Per-output grant rates
// are additionally folded into a stats::RateSeries so convergence analyses
// get the same windowed-rate view the benches use.
//
// Sampling is pull-based (the driver calls sample()) so the cycle loop pays
// nothing between samples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hpp"
#include "stats/timeseries.hpp"

namespace ssq::obs {

class SwitchProbe;

/// Flits held per class in one input port's buffers.
struct PortOccupancy {
  std::uint32_t be = 0;
  std::uint32_t gb = 0;  // summed over the per-output crosspoint queues
  std::uint32_t gl = 0;
};

class SnapshotSampler {
 public:
  SnapshotSampler(std::uint32_t radix, Cycle interval);

  /// Records one snapshot at `now` (non-decreasing). `occupancy` has one
  /// entry per input port.
  void sample(Cycle now, const std::vector<PortOccupancy>& occupancy,
              const SwitchProbe& probe);

  [[nodiscard]] Cycle interval() const noexcept { return interval_; }
  [[nodiscard]] std::size_t num_samples() const noexcept {
    return samples_.size();
  }

  /// Writes {"interval":...,"samples":[...],"grant_rate_series":{...}}.
  void write_json(std::ostream& os) const;

 private:
  struct Snapshot {
    Cycle cycle = 0;
    std::vector<PortOccupancy> occupancy;
    std::vector<std::uint64_t> grants;  // per output, this window
    std::vector<double> grant_share;    // grants / window total (0 if none)
    std::vector<std::uint64_t> auxvc_saturations;  // per output, cumulative
    std::vector<std::uint64_t> gl_stalls;          // per output, cumulative
  };

  std::uint32_t radix_;
  Cycle interval_;
  std::vector<std::uint64_t> prev_grants_;
  stats::RateSeries grant_series_;  // per-output grants/cycle by window
  std::vector<Snapshot> samples_;
};

}  // namespace ssq::obs
