#include "obs/metrics.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace ssq::obs {

CounterId MetricsRegistry::counter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return {it->second};
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back({std::string(name), 0});
  counter_index_.emplace(std::string(name), idx);
  return {idx};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return {it->second};
  const auto idx = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back({std::string(name), 0.0});
  gauge_index_.emplace(std::string(name), idx);
  return {idx};
}

HistogramId MetricsRegistry::histogram(std::string_view name, double bin_width,
                                       std::size_t num_bins) {
  auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) {
    const auto& h = histograms_[it->second].hist;
    SSQ_EXPECT(h.bin_width() == bin_width && h.num_bins() == num_bins &&
               "histogram re-registered with a different geometry");
    return {it->second};
  }
  const auto idx = static_cast<std::uint32_t>(histograms_.size());
  histograms_.push_back({std::string(name),
                         stats::Histogram(bin_width, num_bins)});
  histogram_index_.emplace(std::string(name), idx);
  return {idx};
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counter_index_.find(std::string(name));
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& c : other.counters_) {
    add(counter(c.name), c.value);
  }
  for (const auto& g : other.gauges_) {
    set(gauge(g.name), g.value);
  }
  for (const auto& h : other.histograms_) {
    const HistogramId id =
        histogram(h.name, h.hist.bin_width(), h.hist.num_bins());
    histograms_[id.idx].hist.merge(h.hist);
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) os << ',';
    os << json_quote(counters_[i].name) << ':' << counters_[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i) os << ',';
    os << json_quote(gauges_[i].name) << ':' << json_number(gauges_[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i) os << ',';
    const auto& h = histograms_[i].hist;
    os << json_quote(histograms_[i].name) << ":{\"bin_width\":"
       << json_number(h.bin_width()) << ",\"total\":" << h.total()
       << ",\"max\":" << json_number(h.max_seen())
       << ",\"p50\":" << json_number(h.percentile(0.50))
       << ",\"p95\":" << json_number(h.percentile(0.95))
       << ",\"p99\":" << json_number(h.percentile(0.99)) << ",\"bins\":[";
    for (std::size_t b = 0; b <= h.num_bins(); ++b) {
      if (b) os << ',';
      os << h.bin_count(b);  // last entry is the overflow bin
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace ssq::obs
