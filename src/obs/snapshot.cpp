#include "obs/snapshot.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/probe.hpp"

namespace ssq::obs {

SnapshotSampler::SnapshotSampler(std::uint32_t radix, Cycle interval)
    : radix_(radix),
      interval_(interval),
      prev_grants_(radix, 0),
      grant_series_(radix, interval) {
  SSQ_EXPECT(radix >= 1);
  SSQ_EXPECT(interval >= 1);
}

void SnapshotSampler::sample(Cycle now,
                             const std::vector<PortOccupancy>& occupancy,
                             const SwitchProbe& probe) {
  SSQ_EXPECT(occupancy.size() == radix_);
  SSQ_EXPECT(probe.radix() == radix_);
  Snapshot s;
  s.cycle = now;
  s.occupancy = occupancy;
  s.grants.resize(radix_);
  s.grant_share.resize(radix_);
  s.auxvc_saturations.resize(radix_);
  s.gl_stalls.resize(radix_);

  std::uint64_t total = 0;
  for (OutputId o = 0; o < radix_; ++o) {
    const std::uint64_t cum = probe.grants_for_output(o);
    s.grants[o] = cum - prev_grants_[o];
    prev_grants_[o] = cum;
    total += s.grants[o];
    s.auxvc_saturations[o] = probe.auxvc_saturations(o);
    s.gl_stalls[o] = probe.gl_stalls(o);
    if (s.grants[o] > 0 && now > 0) {
      grant_series_.record_flits(o, now - 1, s.grants[o]);
    }
  }
  grant_series_.roll_to(now);
  for (OutputId o = 0; o < radix_; ++o) {
    s.grant_share[o] = total == 0 ? 0.0
                                  : static_cast<double>(s.grants[o]) /
                                        static_cast<double>(total);
  }
  samples_.push_back(std::move(s));
}

void SnapshotSampler::write_json(std::ostream& os) const {
  os << "{\"interval\":" << interval_ << ",\"radix\":" << radix_
     << ",\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto& s = samples_[i];
    if (i) os << ',';
    os << "\n{\"cycle\":" << s.cycle << ",\"occupancy\":{\"be\":[";
    for (std::size_t p = 0; p < s.occupancy.size(); ++p) {
      if (p) os << ',';
      os << s.occupancy[p].be;
    }
    os << "],\"gb\":[";
    for (std::size_t p = 0; p < s.occupancy.size(); ++p) {
      if (p) os << ',';
      os << s.occupancy[p].gb;
    }
    os << "],\"gl\":[";
    for (std::size_t p = 0; p < s.occupancy.size(); ++p) {
      if (p) os << ',';
      os << s.occupancy[p].gl;
    }
    os << "]},\"grants\":[";
    for (std::size_t o = 0; o < s.grants.size(); ++o) {
      if (o) os << ',';
      os << s.grants[o];
    }
    os << "],\"grant_share\":[";
    for (std::size_t o = 0; o < s.grant_share.size(); ++o) {
      if (o) os << ',';
      os << json_number(s.grant_share[o]);
    }
    os << "],\"auxvc_saturations\":[";
    for (std::size_t o = 0; o < s.auxvc_saturations.size(); ++o) {
      if (o) os << ',';
      os << s.auxvc_saturations[o];
    }
    os << "],\"gl_stalls\":[";
    for (std::size_t o = 0; o < s.gl_stalls.size(); ++o) {
      if (o) os << ',';
      os << s.gl_stalls[o];
    }
    os << "]}";
  }
  os << "],\"grant_rate_series\":{\"window\":" << grant_series_.window_cycles()
     << ",\"outputs\":[";
  for (std::size_t o = 0; o < radix_; ++o) {
    if (o) os << ',';
    os << '[';
    const auto& series = grant_series_.series(o);
    for (std::size_t w = 0; w < series.size(); ++w) {
      if (w) os << ',';
      os << json_number(series[w]);
    }
    os << ']';
  }
  os << "]}}";
}

}  // namespace ssq::obs
