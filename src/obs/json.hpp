// Minimal JSON emission helpers for the observability sinks.
//
// The sinks write JSON by hand (no external dependency); everything that
// could carry arbitrary bytes — workload paths, bench titles, metric names —
// must pass through json_escape so the emitted files always parse. Numbers
// are written with enough precision to round-trip doubles.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ssq::obs {

/// Appends the RFC 8259 escaping of `s` (without surrounding quotes) to
/// `out`. Control characters below 0x20 become \u00XX; multi-byte UTF-8
/// sequences pass through untouched.
inline void json_escape_to(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Returns `s` escaped and wrapped in double quotes.
[[nodiscard]] inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  json_escape_to(s, out);
  out += '"';
  return out;
}

/// Formats a double as a JSON number token (JSON has no NaN/Inf; those are
/// emitted as null, which keeps every file parseable).
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[nodiscard]] inline std::string json_number(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace ssq::obs
