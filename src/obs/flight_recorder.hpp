// Flight recorder — a fixed-size ring of the most recent obs::Events that
// can dump a bounded, self-contained JSONL incident snapshot on demand.
//
// The recorder is a plain TraceSink: attach it (usually via a TeeSink or
// SwitchProbe::set_extra_sink) and it silently retains the last `capacity`
// events with no allocation after construction. When something goes wrong —
// a conformance violation fires, a fault is injected, or the differential
// checker diverges — dump() writes one header line followed by the retained
// events oldest-first, in the JsonlSink line schema, so every fuzz failure
// or monitor alert ships with the grant/deliver history that led up to it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"
#include "obs/trace.hpp"

namespace ssq::obs {

class FlightRecorder final : public TraceSink {
 public:
  /// `capacity` bounds both memory and dump size; it is clamped to >= 1.
  explicit FlightRecorder(std::size_t capacity);

  void on_event(const Event& e) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total events observed since construction (dropped = seen - size).
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  /// Writes the snapshot: one `ssq.flight.v1` header line (reason, cycle,
  /// retained/dropped counts) then one JSONL line per retained event,
  /// oldest first. Does not clear the ring — later triggers still dump.
  void dump(std::ostream& os, std::string_view reason, Cycle now) const;
  [[nodiscard]] std::string dump_string(std::string_view reason,
                                        Cycle now) const;

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t seen_ = 0;
};

}  // namespace ssq::obs
