// SwitchProbe — the single observability attachment point of the simulator.
//
// The crossbar holds a raw `SwitchProbe*` that is null by default; every
// hot-path hook site is `if (probe) probe->hook(...)`, so the tracing-off
// configuration costs one predictable branch and nothing else (no
// allocation, no formatting, no virtual dispatch). When attached, each hook
// bumps pre-interned metrics-registry handles (plain index adds) and, if a
// tracer is connected, forwards one POD Event to the sink.
//
// The probe speaks only scalar vocabulary types (sim/types.hpp), never
// sw::Packet, so obs sits below core/switch in the dependency order and the
// SSVC output arbiter can report into the same probe.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"
#include "stats/timeseries.hpp"

namespace ssq::obs {

class SwitchProbe {
 public:
  /// `grant_window_cycles` sizes the per-output delivered-flit RateSeries
  /// used by snapshot sampling (0 disables the series).
  explicit SwitchProbe(std::uint32_t radix, Cycle grant_window_cycles = 0);

  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }
  /// Secondary event sink, bypassing the tracer and its event limit —
  /// consumers that must see every event to stay correct (conformance
  /// monitor, flight recorder; compose several with a TeeSink) attach here
  /// so a --trace-limit can never starve them.
  void set_extra_sink(TraceSink* sink) noexcept { extra_ = sink; }
  [[nodiscard]] TraceSink* extra_sink() const noexcept { return extra_; }

  /// Fast-forward notification from the switch: the clock jumped from
  /// `from` to `to` across provably event-free cycles. Forwarded to the
  /// extra sink only — never traced, so trace files stay byte-identical
  /// across fast-forward on/off.
  void clock_jump(Cycle from, Cycle to) {
    if (extra_ != nullptr) extra_->on_clock_jump(from, to);
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }

  // ---- per-output aggregates (snapshot sampling reads these) ----
  [[nodiscard]] std::uint64_t grants_for_output(OutputId o) const {
    return metrics_.value(grants_out_[o]);
  }
  [[nodiscard]] std::uint64_t auxvc_saturations(OutputId o) const {
    return metrics_.value(auxvc_sat_out_[o]);
  }
  [[nodiscard]] std::uint64_t gl_stalls(OutputId o) const {
    return metrics_.value(gl_stall_out_[o]);
  }
  [[nodiscard]] std::uint64_t faults_injected() const {
    return metrics_.value(faults_injected_);
  }
  [[nodiscard]] std::uint64_t scrub_repairs() const {
    return metrics_.value(scrub_repairs_);
  }
  [[nodiscard]] std::uint64_t scrub_repairs_for_output(OutputId o) const {
    return metrics_.value(scrub_repairs_out_[o]);
  }
  [[nodiscard]] std::uint64_t lane_quarantines() const {
    return metrics_.value(quarantines_);
  }
  /// Per-output delivered-flit rate series (empty when disabled).
  [[nodiscard]] const stats::RateSeries* delivered_series() const noexcept {
    return delivered_series_.empty() ? nullptr : &delivered_series_.front();
  }
  void roll_series_to(Cycle now) {
    if (!delivered_series_.empty()) delivered_series_.front().roll_to(now);
  }

  // ---- packet lifecycle hooks (called by CrossbarSwitch) ----
  void packet_created(Cycle now, FlowId flow, PacketId pkt, InputId src,
                      OutputId dst, TrafficClass cls, std::uint32_t len,
                      std::uint64_t backlog);
  void packet_buffered(Cycle now, FlowId flow, PacketId pkt, InputId src,
                       OutputId dst, TrafficClass cls, std::uint32_t len);
  void admit_blocked(Cycle now, FlowId flow, InputId src, OutputId dst,
                     TrafficClass cls, std::uint32_t len);
  void request(Cycle now, InputId input, OutputId output, TrafficClass cls);
  void grant(Cycle now, InputId input, OutputId output, TrafficClass cls,
             FlowId flow, PacketId pkt, std::uint32_t len, Cycle wait,
             bool chained);
  void transfer_start(Cycle first_flit, InputId input, OutputId output,
                      TrafficClass cls, FlowId flow, PacketId pkt,
                      std::uint32_t len);
  void delivered(Cycle now, InputId input, OutputId output, TrafficClass cls,
                 FlowId flow, PacketId pkt, std::uint32_t len, Cycle latency);
  void preempted(Cycle now, InputId input, OutputId output, TrafficClass cls,
                 FlowId flow, PacketId pkt, std::uint64_t wasted_flits);

  // ---- SSVC arbitration hooks (called by core::OutputQosArbiter) ----
  void gl_stall(Cycle now, OutputId output, std::uint64_t overrun);
  void lane_tie_break(Cycle now, OutputId output, TrafficClass cls,
                      InputId winner, std::uint32_t lane_level,
                      std::uint32_t candidates);
  void auxvc_saturated(Cycle now, OutputId output, InputId input,
                       std::uint64_t cap);
  void epoch_wrap(Cycle now, OutputId output);
  void mgmt_event(Cycle now, OutputId output, bool halve);

  // ---- fault / recovery hooks (called by fault::FaultInjector/Scrubber) ----
  void fault_injected(Cycle now, OutputId output, InputId input,
                      std::uint32_t target, std::uint64_t detail);
  void scrub_repair(Cycle now, OutputId output, InputId input,
                    std::uint32_t repair_kind);
  void lane_quarantined(Cycle now, OutputId output, std::uint32_t lane);
  void port_outage(Cycle now, InputId input, bool down);

 private:
  void emit(const Event& e) {
    if (extra_ != nullptr) extra_->on_event(e);
    if (tracer_ != nullptr) tracer_->emit(e);
  }

  std::uint32_t radix_;
  MetricsRegistry metrics_;
  Tracer* tracer_ = nullptr;
  TraceSink* extra_ = nullptr;
  // Holds 0 or 1 series; a vector sidesteps RateSeries's lack of a default
  // constructor while keeping the disabled path allocation-free.
  std::vector<stats::RateSeries> delivered_series_;

  // Pre-interned handles: global counters...
  CounterId created_, buffered_, blocked_, requests_, grants_, chain_grants_,
      delivered_flits_, delivered_pkts_, preemptions_, wasted_flits_,
      epoch_wraps_, mgmt_halves_, mgmt_resets_, tie_breaks_,
      faults_injected_, scrub_repairs_, quarantines_, port_outages_;
  // ...per-class grant counters (BE/GB/GL)...
  CounterId grants_cls_[kNumClasses];
  // ...and per-output counters.
  std::vector<CounterId> grants_out_;
  std::vector<CounterId> auxvc_sat_out_;
  std::vector<CounterId> gl_stall_out_;
  std::vector<CounterId> scrub_repairs_out_;
  HistogramId wait_hist_, latency_hist_;
};

}  // namespace ssq::obs
