// Online QoS conformance monitor.
//
// The paper's claims are *guarantees* — GB flows receive their reserved
// bandwidth share while backlogged, GL packets wait at most the Eq. (1)
// bound, BE shares the leftovers fairly — and this monitor checks them
// while the simulator runs, from the probe's event stream alone. It is a
// plain TraceSink: attach it next to (or instead of) a file sink and it
// judges fixed-size windows of `window` cycles:
//
//   * GB share: a flow that was backlogged for the whole window (its
//     created-minus-delivered packet count never hit zero) must have
//     received at least its reserved rate, derated by the arbitration
//     overhead len/(len + arb_cycles) and the configured tolerance.
//   * GL latency: every GL grant's wait is compared against the Eq. (1)
//     bound precomputed per output (obs sits below qosmath in the library
//     order, so the bound arrives via ConformanceConfig — see
//     sw::make_conformance_config). Grants whose wait overlaps a policer
//     stall are skipped when gl_skip_stalled is set: Stall-policed waits
//     include deliberate ineligibility, which Eq. (1) does not cover.
//   * BE fairness: Jain's index over the window deliveries of backlogged
//     BE flows, reported as a gauge (and optionally enforced).
//
// Violations become typed records (bounded), per-kind counters in the
// monitor's own MetricsRegistry (merge into a probe's registry for one
// report), per-window verdict counters, and an optional callback — the
// flight-recorder dump trigger. Window advancement is event-driven and
// fast-forward aware: on_clock_jump() coalesces windows skipped by an
// idle-cycle jump (counted under conformance.windows.coalesced_idle)
// instead of silently stretching the current window.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"

namespace ssq::obs {

enum class ViolationKind : std::uint8_t { GbShare, GlLatency, BeStarvation };

[[nodiscard]] constexpr std::string_view to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::GbShare: return "gb_share";
    case ViolationKind::GlLatency: return "gl_latency";
    case ViolationKind::BeStarvation: return "be_starvation";
  }
  return "?";
}

/// Per-flow reservation facts the monitor judges against (one entry per
/// FlowId, in order).
struct FlowReservation {
  InputId src = 0;
  OutputId dst = 0;
  TrafficClass cls = TrafficClass::BestEffort;
  /// GB only: reserved fraction of the destination channel.
  double reserved_rate = 0.0;
  /// Mean packet length in flits (derates GB expectations by arbitration
  /// overhead).
  double mean_len = 1.0;
};

struct ConformanceConfig {
  /// Judgement window in cycles (windows are aligned to multiples of it).
  Cycle window = 2048;
  /// GB: relative tolerance on the derated reservation. The default is
  /// deliberately loose — SSVC shares *channel time*, so mixed packet
  /// lengths, counter-management drift and admissible-but-time-overcommitted
  /// reservations all legitimately shave the flit share — and still has
  /// teeth: real failures (killed port, unpoliced GL flood) starve a flow
  /// outright, far below any reasonable floor.
  double gb_tolerance = 0.5;
  /// GB: absolute per-window slack in flits (packet granularity).
  double gb_slack_flits = 16.0;
  /// BE: minimum acceptable Jain index; <= 0 reports the gauge only.
  double be_jain_min = 0.0;
  bool check_gb = true;
  bool check_gl = true;
  /// Skip GL grants whose wait span overlaps a GlStall on that output.
  bool gl_skip_stalled = true;
  /// Cap on stored Violation records (counters keep exact totals).
  std::size_t max_records = 64;
  /// Output arbitration cycles per grant (derates GB expectations).
  std::uint32_t arbitration_cycles = 1;
  std::vector<FlowReservation> flows;
  /// Per-output Eq. (1) wait bound in cycles; <= 0 means no GL reservation
  /// at that output (GL grants there are not judged).
  std::vector<double> gl_bound;
};

struct Violation {
  ViolationKind kind = ViolationKind::GbShare;
  /// Cycle the violation was detected (window close, or the grant cycle).
  Cycle cycle = 0;
  Cycle window_start = 0;
  std::uint64_t flow = kNoId;  // kNoId for BE fairness verdicts
  OutputId output = kNoPort;
  /// Observed quantity: GB delivered flits / GL wait cycles / Jain index.
  double observed = 0.0;
  /// The floor (GB), bound (GL) or minimum (BE) it was judged against.
  double bound = 0.0;
};

class ConformanceMonitor final : public TraceSink {
 public:
  explicit ConformanceMonitor(ConformanceConfig config);

  void on_event(const Event& e) override;
  void on_clock_jump(Cycle from, Cycle to) override;
  /// Closes every window ending at or before `end` (call once after the
  /// run; the trailing partial window is left unjudged).
  void finalize(Cycle end);

  /// Called on every violation (including ones beyond the record cap) —
  /// the flight-recorder dump trigger.
  void set_on_violation(std::function<void(const Violation&)> cb) {
    on_violation_ = std::move(cb);
  }
  /// Called on every FaultInjected event (secondary dump trigger).
  void set_on_fault(std::function<void(const Event&)> cb) {
    on_fault_ = std::move(cb);
  }

  [[nodiscard]] const ConformanceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<Violation>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t violations(ViolationKind k) const;
  [[nodiscard]] std::uint64_t total_violations() const;
  [[nodiscard]] std::uint64_t windows_total() const;
  [[nodiscard]] std::uint64_t windows_ok() const;
  [[nodiscard]] std::uint64_t windows_violating() const;
  [[nodiscard]] std::uint64_t windows_coalesced() const;
  [[nodiscard]] std::uint64_t gl_grants_checked() const;
  [[nodiscard]] std::uint64_t gl_stall_skipped() const;
  /// Smallest per-window Jain index seen (1.0 until a BE window closes).
  [[nodiscard]] double jain_min() const noexcept { return jain_min_; }

  /// The monitor's own registry (conformance.* counters and gauges);
  /// merge() it into a probe's registry for a single metrics report.
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// One `ssq.conformance.v1` JSON object: window geometry, verdict and
  /// violation counters, and the bounded violation records.
  void write_json(std::ostream& os) const;
  /// Human-readable verdict table (end-of-run summaries).
  void write_summary(std::ostream& os) const;

 private:
  struct FlowState {
    std::uint64_t delivered_flits = 0;
    std::uint64_t delivered_at_ws = 0;  // snapshot at window start
    std::int64_t inflight = 0;          // created - delivered packets
    std::int64_t min_inflight = 0;      // since window start
  };
  void advance_to(Cycle c);
  void close_window();
  void record(const Violation& v);

  ConformanceConfig config_;
  MetricsRegistry metrics_;
  std::vector<FlowState> flows_;
  std::vector<Violation> records_;
  std::function<void(const Violation&)> on_violation_;
  std::function<void(const Event&)> on_fault_;

  Cycle window_start_ = 0;
  bool window_active_ = false;     // any event since window_start_
  bool window_violating_ = false;  // any violation since window_start_
  Cycle last_stall_any_ = 0;       // latest GlStall on any output
  bool stalled_any_ = false;
  std::int64_t live_ = 0;          // total inflight packets across flows
  double jain_min_ = 1.0;
  double jain_last_ = 1.0;

  CounterId windows_total_, windows_ok_, windows_violating_,
      windows_coalesced_, gb_windows_backlogged_, viol_gb_, viol_gl_,
      viol_be_, gl_checked_, gl_skipped_;
  GaugeId jain_gauge_, jain_min_gauge_;
};

}  // namespace ssq::obs
