// Trace events — the packet-lifecycle and arbitration vocabulary of the
// observability layer.
//
// One fixed-size POD per event: the hot path fills scalar fields and hands
// the struct to the tracer; all string formatting happens inside the sink,
// so a disabled tracer costs exactly one pointer test. Field meaning varies
// slightly by kind (see the table in docs/OBSERVABILITY.md); unused fields
// keep their sentinel defaults and sinks omit them.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace ssq::obs {

enum class EventKind : std::uint8_t {
  // ---- packet lifecycle ----
  PacketCreated = 0,  // source queue push           arg0 = source backlog
  PacketBuffered,     // admitted to an input buffer
  AdmitBlocked,       // class buffer full: admission refused this cycle
  Request,            // input asserts its one request towards an output
  Grant,              // output arbitration won      arg0 = wait (cycles)
  ChainGrant,         // packet-chaining grant       arg0 = wait (cycles)
  TransferStart,      // first flit cycle
  Delivered,          // last flit cycle             arg0 = latency (cycles)
  Preempted,          // PVC abort                   arg0 = wasted flits
  // ---- SSVC arbitration internals ----
  GlStall,            // policer made GL ineligible  arg0 = overrun (cycles)
  LaneTieBreak,       // LRG broke a tie             arg0 = lane level,
                      //                             arg1 = candidate count
  AuxVcSaturated,     // a grant saturated input's auxVC  arg0 = counter cap
  EpochWrap,          // real-time epoch wrap: every auxVC shifted down
  MgmtHalve,          // global halve management event
  MgmtReset,          // global reset management event
  // ---- fault injection / recovery ----
  FaultInjected,      // fault fired                 arg0 = target kind,
                      //                             arg1 = bit / lane index
  ScrubRepair,        // scrubber repaired state     arg0 = repair kind
  LaneQuarantined,    // stuck lane compressed out   arg0 = lane
  PortOutage,         // input port killed/restored  arg0 = 1 down, 0 up
};

/// Short stable name used by every sink.
[[nodiscard]] constexpr std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::PacketCreated: return "create";
    case EventKind::PacketBuffered: return "buffer";
    case EventKind::AdmitBlocked: return "admit_blocked";
    case EventKind::Request: return "request";
    case EventKind::Grant: return "grant";
    case EventKind::ChainGrant: return "chain_grant";
    case EventKind::TransferStart: return "xfer_start";
    case EventKind::Delivered: return "deliver";
    case EventKind::Preempted: return "preempt";
    case EventKind::GlStall: return "gl_stall";
    case EventKind::LaneTieBreak: return "tie_break";
    case EventKind::AuxVcSaturated: return "auxvc_saturated";
    case EventKind::EpochWrap: return "epoch_wrap";
    case EventKind::MgmtHalve: return "mgmt_halve";
    case EventKind::MgmtReset: return "mgmt_reset";
    case EventKind::FaultInjected: return "fault";
    case EventKind::ScrubRepair: return "scrub_repair";
    case EventKind::LaneQuarantined: return "quarantine";
    case EventKind::PortOutage: return "port_outage";
  }
  return "?";
}

/// Sentinel for "no flow / no packet attached to this event".
inline constexpr std::uint64_t kNoId = ~0ULL;

// FaultInjected arg0: which structure the fault hit.
inline constexpr std::uint32_t kTargetAuxValue = 0;   // auxVC register bit
inline constexpr std::uint32_t kTargetAuxCode = 1;    // thermometer cell
inline constexpr std::uint32_t kTargetLrgRow = 2;     // LRG priority flop
inline constexpr std::uint32_t kTargetGlClock = 3;    // GL clock bit
inline constexpr std::uint32_t kTargetStuckLane = 4;  // bitline stuck-at
inline constexpr std::uint32_t kTargetPortKill = 5;   // input port outage

// ScrubRepair arg0: what the scrubber did.
inline constexpr std::uint32_t kRepairAuxCode = 0;   // thermometer re-derived
inline constexpr std::uint32_t kRepairAuxValue = 1;  // register reset to rt
inline constexpr std::uint32_t kRepairLrgOrder = 2;  // LRG matrix rebuilt
inline constexpr std::uint32_t kRepairGlClock = 3;   // GL clock rewound

struct Event {
  Cycle cycle = 0;
  EventKind kind = EventKind::PacketCreated;
  TrafficClass cls = TrafficClass::BestEffort;
  InputId input = kNoPort;
  OutputId output = kNoPort;
  std::uint64_t flow = kNoId;    // FlowId, widened so kNoId is distinct
  std::uint64_t packet = kNoId;  // PacketId
  std::uint32_t length = 0;      // flits (0 = not applicable)
  std::uint64_t arg0 = 0;        // kind-specific, see the enum comments
  std::uint64_t arg1 = 0;
};

}  // namespace ssq::obs
