#include "obs/conformance.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json.hpp"
#include "sim/contracts.hpp"
#include "stats/table.hpp"

namespace ssq::obs {

ConformanceMonitor::ConformanceMonitor(ConformanceConfig config)
    : config_(std::move(config)) {
  SSQ_EXPECT(config_.window >= 1);
  flows_.resize(config_.flows.size());
  windows_total_ = metrics_.counter("conformance.windows.total");
  windows_ok_ = metrics_.counter("conformance.windows.ok");
  windows_violating_ = metrics_.counter("conformance.windows.violating");
  windows_coalesced_ = metrics_.counter("conformance.windows.coalesced_idle");
  gb_windows_backlogged_ =
      metrics_.counter("conformance.gb.windows_backlogged");
  viol_gb_ = metrics_.counter("conformance.violations.gb_share");
  viol_gl_ = metrics_.counter("conformance.violations.gl_latency");
  viol_be_ = metrics_.counter("conformance.violations.be_starvation");
  gl_checked_ = metrics_.counter("conformance.gl.grants_checked");
  gl_skipped_ = metrics_.counter("conformance.gl.stall_skipped");
  jain_gauge_ = metrics_.gauge("conformance.be.jain");
  jain_min_gauge_ = metrics_.gauge("conformance.be.jain_min");
  metrics_.set(jain_gauge_, 1.0);
  metrics_.set(jain_min_gauge_, 1.0);
}

std::uint64_t ConformanceMonitor::violations(ViolationKind k) const {
  switch (k) {
    case ViolationKind::GbShare: return metrics_.value(viol_gb_);
    case ViolationKind::GlLatency: return metrics_.value(viol_gl_);
    case ViolationKind::BeStarvation: return metrics_.value(viol_be_);
  }
  return 0;
}

std::uint64_t ConformanceMonitor::total_violations() const {
  return metrics_.value(viol_gb_) + metrics_.value(viol_gl_) +
         metrics_.value(viol_be_);
}

std::uint64_t ConformanceMonitor::windows_total() const {
  return metrics_.value(windows_total_);
}
std::uint64_t ConformanceMonitor::windows_ok() const {
  return metrics_.value(windows_ok_);
}
std::uint64_t ConformanceMonitor::windows_violating() const {
  return metrics_.value(windows_violating_);
}
std::uint64_t ConformanceMonitor::windows_coalesced() const {
  return metrics_.value(windows_coalesced_);
}
std::uint64_t ConformanceMonitor::gl_grants_checked() const {
  return metrics_.value(gl_checked_);
}
std::uint64_t ConformanceMonitor::gl_stall_skipped() const {
  return metrics_.value(gl_skipped_);
}

void ConformanceMonitor::record(const Violation& v) {
  switch (v.kind) {
    case ViolationKind::GbShare: metrics_.add(viol_gb_); break;
    case ViolationKind::GlLatency: metrics_.add(viol_gl_); break;
    case ViolationKind::BeStarvation: metrics_.add(viol_be_); break;
  }
  window_violating_ = true;
  if (records_.size() < config_.max_records) records_.push_back(v);
  if (on_violation_) on_violation_(v);
}

void ConformanceMonitor::advance_to(Cycle c) {
  const Cycle w = config_.window;
  while (window_start_ + w <= c) {
    if (live_ == 0 && !window_active_) {
      // Nothing inflight and no event since the window opened: every whole
      // window up to c closes trivially "ok". Coalesce them in O(1) — this
      // is the idle-cycle fast-forward path, where a clock jump may span
      // thousands of windows.
      const std::uint64_t skipped = (c - window_start_) / w;
      metrics_.add(windows_total_, skipped);
      metrics_.add(windows_ok_, skipped);
      metrics_.add(windows_coalesced_, skipped);
      window_start_ += skipped * w;
      continue;
    }
    close_window();
  }
}

void ConformanceMonitor::close_window() {
  const Cycle ws = window_start_;
  const Cycle we = ws + config_.window;
  const double wlen = static_cast<double>(config_.window);
  std::size_t be_n = 0;
  double be_sum = 0.0;
  double be_sumsq = 0.0;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    FlowState& fs = flows_[f];
    const FlowReservation& spec = config_.flows[f];
    const auto delivered_w =
        static_cast<double>(fs.delivered_flits - fs.delivered_at_ws);
    const bool backlogged = fs.min_inflight >= 1;
    if (backlogged && spec.cls == TrafficClass::GuaranteedBandwidth &&
        spec.reserved_rate > 0.0 && config_.check_gb) {
      metrics_.add(gb_windows_backlogged_);
      // Channel efficiency: each grant moves mean_len flits but occupies
      // the output for mean_len + arbitration cycles.
      const double eff =
          spec.mean_len /
          (spec.mean_len + static_cast<double>(config_.arbitration_cycles));
      const double floor = spec.reserved_rate * wlen * eff *
                               (1.0 - config_.gb_tolerance) -
                           config_.gb_slack_flits;
      if (delivered_w < floor) {
        record({ViolationKind::GbShare, we, ws, f, spec.dst, delivered_w,
                floor});
      }
    }
    if (backlogged && spec.cls == TrafficClass::BestEffort) {
      ++be_n;
      be_sum += delivered_w;
      be_sumsq += delivered_w * delivered_w;
    }
    fs.delivered_at_ws = fs.delivered_flits;
    fs.min_inflight = fs.inflight;
  }
  if (be_n > 0) {
    // Jain's fairness index over backlogged BE flows' window deliveries.
    // All-zero means everyone was (equally) shut out by the guaranteed
    // classes, which BE permits — define that as 1.
    const double jain =
        be_sum == 0.0
            ? 1.0
            : be_sum * be_sum / (static_cast<double>(be_n) * be_sumsq);
    jain_last_ = jain;
    jain_min_ = std::min(jain_min_, jain);
    metrics_.set(jain_gauge_, jain_last_);
    metrics_.set(jain_min_gauge_, jain_min_);
    if (config_.be_jain_min > 0.0 && jain < config_.be_jain_min) {
      record({ViolationKind::BeStarvation, we, ws, kNoId, kNoPort, jain,
              config_.be_jain_min});
    }
  }
  metrics_.add(windows_total_);
  metrics_.add(window_violating_ ? windows_violating_ : windows_ok_);
  window_violating_ = false;
  window_active_ = false;
  window_start_ = we;
}

void ConformanceMonitor::on_event(const Event& e) {
  advance_to(e.cycle);
  window_active_ = true;
  switch (e.kind) {
    case EventKind::PacketCreated: {
      if (e.flow >= flows_.size()) break;
      ++flows_[e.flow].inflight;
      ++live_;
      break;
    }
    case EventKind::Delivered: {
      if (e.flow >= flows_.size()) break;
      FlowState& fs = flows_[e.flow];
      fs.delivered_flits += e.length;
      --fs.inflight;
      fs.min_inflight = std::min(fs.min_inflight, fs.inflight);
      --live_;
      break;
    }
    case EventKind::Grant:
    case EventKind::ChainGrant: {
      if (e.cls != TrafficClass::GuaranteedLatency || !config_.check_gl ||
          e.output >= config_.gl_bound.size()) {
        break;
      }
      const double bound = config_.gl_bound[e.output];
      if (bound <= 0.0) break;
      metrics_.add(gl_checked_);
      const auto wait = static_cast<double>(e.arg0);
      if (wait <= bound) break;
      // A policer stall inside this packet's waiting span means the wait
      // includes deliberate ineligibility, which Eq. (1) does not cover.
      // Any output counts, not just the granted one: each input has one GL
      // queue, so a packet stalled toward output A head-of-line blocks the
      // packets behind it bound for output B.
      if (config_.gl_skip_stalled && stalled_any_ &&
          last_stall_any_ + e.arg0 >= e.cycle) {
        metrics_.add(gl_skipped_);
        break;
      }
      record({ViolationKind::GlLatency, e.cycle, window_start_, e.flow,
              e.output, wait, bound});
      break;
    }
    case EventKind::GlStall: {
      last_stall_any_ = e.cycle;
      stalled_any_ = true;
      break;
    }
    case EventKind::FaultInjected: {
      if (on_fault_) on_fault_(e);
      break;
    }
    default: break;
  }
}

void ConformanceMonitor::on_clock_jump(Cycle /*from*/, Cycle to) {
  advance_to(to);
}

void ConformanceMonitor::finalize(Cycle end) { advance_to(end); }

void ConformanceMonitor::write_json(std::ostream& os) const {
  os << "{\"schema\":\"ssq.conformance.v1\",\"window\":" << config_.window
     << ",\"windows\":{\"total\":" << windows_total()
     << ",\"ok\":" << windows_ok() << ",\"violating\":" << windows_violating()
     << ",\"coalesced_idle\":" << windows_coalesced()
     << "},\"violations\":{\"gb_share\":"
     << violations(ViolationKind::GbShare)
     << ",\"gl_latency\":" << violations(ViolationKind::GlLatency)
     << ",\"be_starvation\":" << violations(ViolationKind::BeStarvation)
     << "},\"gl\":{\"grants_checked\":" << gl_grants_checked()
     << ",\"stall_skipped\":" << gl_stall_skipped()
     << "},\"be\":{\"jain_last\":" << json_number(jain_last_)
     << ",\"jain_min\":" << json_number(jain_min_) << "},\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Violation& v = records_[i];
    if (i != 0) os << ',';
    os << "{\"kind\":" << json_quote(to_string(v.kind))
       << ",\"cycle\":" << v.cycle << ",\"window_start\":" << v.window_start;
    if (v.flow != kNoId) os << ",\"flow\":" << v.flow;
    if (v.output != kNoPort) os << ",\"output\":" << v.output;
    os << ",\"observed\":" << json_number(v.observed)
       << ",\"bound\":" << json_number(v.bound) << '}';
  }
  os << "]}";
}

void ConformanceMonitor::write_summary(std::ostream& os) const {
  stats::Table t("QoS conformance");
  t.header({"check", "windows", "violations", "detail"});
  t.row()
      .cell("gb_share")
      .cell(metrics_.value(gb_windows_backlogged_))
      .cell(violations(ViolationKind::GbShare))
      .cell("backlogged flow-windows vs derated reservation");
  t.row()
      .cell("gl_latency")
      .cell(gl_grants_checked())
      .cell(violations(ViolationKind::GlLatency))
      .cell("grants vs Eq.(1); " + std::to_string(gl_stall_skipped()) +
            " stall-skipped");
  char jain[64];
  std::snprintf(jain, sizeof jain, "jain last %.3f min %.3f", jain_last_,
                jain_min_);
  t.row()
      .cell("be_fairness")
      .cell(windows_total())
      .cell(violations(ViolationKind::BeStarvation))
      .cell(jain);
  t.render_ascii(os);
  os << "windows: " << windows_total() << " total, " << windows_ok()
     << " ok, " << windows_violating() << " violating, "
     << windows_coalesced() << " coalesced idle\n";
}

}  // namespace ssq::obs
