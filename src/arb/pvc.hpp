// Preemptive Virtual Clock (PVC) — Grot, Keckler & Mutlu, MICRO'09 (the
// paper's reference [7]), adapted to a single-stage crossbar.
//
// PVC tracks each flow's bandwidth consumption over fixed frames; a flow's
// priority LEVEL is how much of its reservation it has already used this
// frame (coarsely quantised, fewer-consumed = higher priority = lower
// level). Arbitration picks the lowest level, round-robin within a level.
// Frames reset the counters, so history is bounded without per-crosspoint
// clocks — PVC's answer to the same finite-state problem SSVC solves with
// the subtract/halve/reset policies.
//
// The "preemptive" part lives in the switch (SwitchConfig::pvc): a waiting
// packet whose level beats the in-flight packet's grant-time level by more
// than `preempt_margin` levels may abort the transfer; the victim is
// dropped and retransmitted from the source buffer (push-front), and the
// flits already moved count as waste, not goodput. Preemption bounds
// priority inversion without reserved VCs — at the price of wasted link
// time that bench/pvc_comparison quantifies against SSVC.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class PvcArbiter final : public Arbiter {
 public:
  /// `shares[i]` > 0: relative reserved shares (normalised internally).
  /// `frame_cycles`: bandwidth-accounting frame length. `levels`: priority
  /// quantisation (PVC uses a handful of levels).
  PvcArbiter(std::uint32_t radix, std::vector<double> shares,
             Cycle frame_cycles = 512, std::uint32_t levels = 8);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "PVC";
  }

  /// Priority level of input i at `now` (0 = highest). Advances the frame
  /// if `now` crossed a boundary.
  [[nodiscard]] std::uint32_t level(InputId i, Cycle now);

  [[nodiscard]] Cycle frame_cycles() const noexcept { return frame_; }
  [[nodiscard]] std::uint32_t num_levels() const noexcept { return levels_; }

 private:
  void roll_frame(Cycle now);

  std::vector<double> share_;      // normalised to sum 1
  std::vector<std::uint64_t> consumed_;  // flits this frame
  Cycle frame_;
  std::uint32_t levels_;
  Cycle frame_start_ = 0;
  InputId rr_ = 0;  // round-robin pointer within a level
};

}  // namespace ssq::arb
