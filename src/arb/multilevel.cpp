#include "arb/multilevel.hpp"

#include <vector>

namespace ssq::arb {

MultiLevelArbiter::MultiLevelArbiter(std::uint32_t radix,
                                     std::uint32_t num_levels)
    : Arbiter(radix), num_levels_(num_levels), lrg_(radix) {
  SSQ_EXPECT(num_levels >= 2 && num_levels <= 16);
}

void MultiLevelArbiter::reset() { lrg_.reset(); }

InputId MultiLevelArbiter::pick(std::span<const Request> requests,
                                Cycle now) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  std::uint32_t best_level = 0;
  for (const auto& r : requests) {
    SSQ_EXPECT(r.priority < num_levels_);
    if (r.priority > best_level) best_level = r.priority;
  }
  std::vector<Request> bucket;
  for (const auto& r : requests) {
    if (r.priority == best_level) bucket.push_back(r);
  }
  return lrg_.pick(bucket, now);
}

void MultiLevelArbiter::on_grant(InputId input, std::uint32_t length,
                                 Cycle now) {
  lrg_.on_grant(input, length, now);
}

}  // namespace ssq::arb
