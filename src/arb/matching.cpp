#include "arb/matching.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "sim/error.hpp"

namespace ssq::arb {

std::string_view match_kind_name(MatchKind kind) noexcept {
  switch (kind) {
    case MatchKind::None: return "none";
    case MatchKind::Islip: return "islip";
    case MatchKind::Qps: return "qps";
    case MatchKind::SwQps: return "swqps";
    case MatchKind::Ssvc: return "ssvc";
    case MatchKind::Starve: return "starve";
  }
  return "?";
}

MatchKind parse_match_kind(std::string_view name) {
  for (MatchKind k : {MatchKind::None, MatchKind::Islip, MatchKind::Qps,
                      MatchKind::SwQps, MatchKind::Ssvc, MatchKind::Starve}) {
    if (match_kind_name(k) == name) return k;
  }
  throw ssq::ConfigError("unknown matching engine '" + std::string(name) +
                         "' (none|islip|qps|swqps|ssvc|starve) [" __FILE__
                         ":" +
                         std::to_string(__LINE__) + "]");
}

std::uint32_t MatchingEngine::rotate_pick(std::uint64_t mask,
                                          std::uint32_t from) noexcept {
  const std::uint64_t at_or_after = mask & ~((1ULL << from) - 1);  // from < 64
  return static_cast<std::uint32_t>(
      std::countr_zero(at_or_after != 0 ? at_or_after : mask));
}

namespace {

/// Samples one output from `mask` with probability proportional to the
/// backlog of (i, o). Precondition: mask != 0 and every bit carries a
/// positive backlog.
OutputId sample_proportional(Rng& rng, const MatchView& view, InputId i,
                             std::uint64_t mask) {
  std::uint64_t total = 0;
  for (std::uint64_t w = mask; w != 0; w &= w - 1) {
    total += view.backlog(i, static_cast<OutputId>(std::countr_zero(w)));
  }
  SSQ_ENSURE(total > 0);
  std::uint64_t r = rng.below(total);
  for (std::uint64_t w = mask; w != 0; w &= w - 1) {
    const auto o = static_cast<OutputId>(std::countr_zero(w));
    const std::uint64_t len = view.backlog(i, o);
    if (r < len) return o;
    r -= len;
  }
  SSQ_EXPECT(false && "proportional sample fell off the distribution");
  return kNoPort;
}

/// Per-input mask of inputs with at least one eligible output.
std::uint64_t free_inputs(const MatchView& view) {
  std::uint64_t mask = 0;
  for (InputId i = 0; i < view.radix; ++i) {
    if (view.eligible[i] != 0) mask |= 1ULL << i;
  }
  return mask;
}

}  // namespace

// ---------------------------------------------------------------- iSLIP --

IslipEngine::IslipEngine(std::uint32_t radix, std::uint32_t iterations)
    : MatchingEngine(radix), iterations_(iterations) {
  SSQ_EXPECT(iterations >= 1);
  grant_ptr_.assign(radix, 0);
  accept_ptr_.assign(radix, 0);
  requests_.assign(radix, 0);
  grant_to_.assign(radix, kNoPort);
}

void IslipEngine::reset() {
  std::fill(grant_ptr_.begin(), grant_ptr_.end(), 0u);
  std::fill(accept_ptr_.begin(), accept_ptr_.end(), 0u);
}

std::uint32_t IslipEngine::match(const MatchView& view,
                                 std::span<InputId> match_in) {
  const std::uint32_t radix = view.radix;
  for (auto& m : match_in) m = kNoPort;
  std::uint64_t in_free = free_inputs(view);
  if (in_free == 0) return 1;

  // Transpose eligibility into per-output request masks once; iterations
  // shrink them via in_free.
  std::fill(requests_.begin(), requests_.end(), 0ULL);
  for (std::uint64_t w = in_free; w != 0; w &= w - 1) {
    const auto i = static_cast<InputId>(std::countr_zero(w));
    for (std::uint64_t e = view.eligible[i]; e != 0; e &= e - 1) {
      requests_[static_cast<std::size_t>(std::countr_zero(e))] |= 1ULL << i;
    }
  }

  std::uint32_t used = 0;
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    ++used;
    // GRANT: each unmatched output grants the first unmatched requester at
    // or after its pointer.
    bool any_grant = false;
    for (OutputId o = 0; o < radix; ++o) {
      grant_to_[o] = kNoPort;
      if (match_in[o] != kNoPort) continue;
      const std::uint64_t req = requests_[o] & in_free;
      if (req == 0) continue;
      grant_to_[o] = rotate_pick(req, grant_ptr_[o]);
      any_grant = true;
    }
    if (!any_grant) break;

    // ACCEPT: each unmatched input takes the first grant at or after its
    // pointer. Pointers move only on first-iteration accepts — the update
    // rule behind iSLIP's pointer desynchronisation and its 100% throughput
    // under saturated uniform traffic.
    bool any_accept = false;
    for (std::uint64_t w = in_free; w != 0; w &= w - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(w));
      std::uint64_t offered = 0;
      for (OutputId o = 0; o < radix; ++o) {
        if (grant_to_[o] == i) offered |= 1ULL << o;
      }
      if (offered == 0) continue;
      const auto o = static_cast<OutputId>(rotate_pick(offered, accept_ptr_[i]));
      match_in[o] = i;
      in_free &= ~(1ULL << i);
      any_accept = true;
      if (iter == 0) {
        grant_ptr_[o] = (i + 1) % radix;
        accept_ptr_[i] = (o + 1) % radix;
      }
    }
    if (!any_accept || in_free == 0) break;
  }
  return used;
}

// ---------------------------------------------------------------- QPS-r --

QpsEngine::QpsEngine(std::uint32_t radix, std::uint32_t iterations,
                     std::uint64_t seed)
    : MatchingEngine(radix), iterations_(iterations), seed_(seed), rng_(seed) {
  SSQ_EXPECT(iterations >= 1);
  proposer_.assign(radix, kNoPort);
  prop_len_.assign(radix, 0);
}

void QpsEngine::reset() { rng_ = Rng(seed_); }

std::uint32_t QpsEngine::match(const MatchView& view,
                               std::span<InputId> match_in) {
  const std::uint32_t radix = view.radix;
  for (auto& m : match_in) m = kNoPort;
  std::uint64_t in_free = free_inputs(view);
  if (in_free == 0) return 1;

  std::uint64_t out_taken = 0;
  std::uint32_t used = 0;
  for (std::uint32_t iter = 0; iter < iterations_ && in_free != 0; ++iter) {
    // PROPOSE: every still-unmatched backlogged input samples one
    // still-free output, queue-proportionally. Each output keeps the
    // proposal with the longest VOQ (ties: lowest input — the ascending
    // scan makes the comparison strict).
    std::fill(proposer_.begin(), proposer_.end(), kNoPort);
    bool any = false;
    for (std::uint64_t w = in_free; w != 0; w &= w - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(w));
      const std::uint64_t elig = view.eligible[i] & ~out_taken;
      if (elig == 0) continue;
      const OutputId o = sample_proportional(rng_, view, i, elig);
      const std::uint32_t len = view.backlog(i, o);
      if (proposer_[o] == kNoPort || len > prop_len_[o]) {
        proposer_[o] = i;
        prop_len_[o] = len;
      }
      any = true;
    }
    if (!any) break;
    ++used;

    // ACCEPT: the surviving proposal of each output becomes a match.
    for (OutputId o = 0; o < radix; ++o) {
      const InputId i = proposer_[o];
      if (i == kNoPort) continue;
      match_in[o] = i;
      in_free &= ~(1ULL << i);
      out_taken |= 1ULL << o;
    }
  }
  return std::max<std::uint32_t>(used, 1);
}

// --------------------------------------------------------------- SW-QPS --

SwQpsEngine::SwQpsEngine(std::uint32_t radix, std::uint32_t window,
                         std::uint64_t seed)
    : MatchingEngine(radix), seed_(seed), rng_(seed) {
  SSQ_EXPECT(window >= 1);
  frames_.resize(window);
  for (auto& f : frames_) f.match_in.assign(radix, kNoPort);
}

void SwQpsEngine::clear_frame(Frame& f) {
  std::fill(f.match_in.begin(), f.match_in.end(), kNoPort);
  f.in_used = 0;
  f.out_used = 0;
}

void SwQpsEngine::reset() {
  rng_ = Rng(seed_);
  for (auto& f : frames_) clear_frame(f);
}

std::uint32_t SwQpsEngine::frame_size(std::uint32_t k) const {
  SSQ_EXPECT(k < frames_.size());
  return static_cast<std::uint32_t>(std::popcount(frames_[k].out_used));
}

std::uint32_t SwQpsEngine::match(const MatchView& view,
                                 std::span<InputId> match_in) {
  const std::uint32_t radix = view.radix;

  // 1. Retire drained pairs from every frame. Beyond keeping the window
  // honest, this guarantees the window is EMPTY whenever the switch holds
  // no packets at all — which is what makes skipping quiescent cycles
  // (idle fast-forward never calls match()) exact.
  for (auto& f : frames_) {
    if (f.out_used == 0) continue;
    for (std::uint64_t w = f.out_used; w != 0; w &= w - 1) {
      const auto o = static_cast<OutputId>(std::countr_zero(w));
      const InputId i = f.match_in[o];
      if (view.backlog(i, o) != 0) continue;
      f.match_in[o] = kNoPort;
      f.in_used &= ~(1ULL << i);
      f.out_used &= ~(1ULL << o);
    }
  }

  // 2. One QPS proposing round: each backlogged input samples one output
  // (from `candidates` — a busy channel now is no reason not to book a
  // future frame) and the pair lands in the EARLIEST frame where both ends
  // are still free. Frames only ever gain edges here, so a frame's matching
  // size never shrinks while it waits (the SW-QPS refinement guarantee);
  // edges only leave through departure or backlog drain above.
  for (InputId i = 0; i < radix; ++i) {
    const std::uint64_t cand = view.candidates[i];
    if (cand == 0) continue;
    const OutputId o = sample_proportional(rng_, view, i, cand);
    for (auto& f : frames_) {
      if (((f.in_used >> i) | (f.out_used >> o)) & 1ULL) continue;
      f.match_in[o] = i;
      f.in_used |= 1ULL << i;
      f.out_used |= 1ULL << o;
      break;
    }
  }

  // 3. The departing frame is this cycle's matching, filtered down to pairs
  // that are actually servable now (ends idle, link alive).
  Frame& head = frames_.front();
  for (OutputId o = 0; o < radix; ++o) {
    const InputId i = head.match_in[o];
    match_in[o] =
        (i != kNoPort && ((view.eligible[i] >> o) & 1ULL)) ? i : kNoPort;
  }

  // 4. Slide the window: frame k+1 becomes frame k, a fresh frame enters.
  clear_frame(head);
  std::rotate(frames_.begin(), frames_.begin() + 1, frames_.end());
  return 1;
}

// ---------------------------------------------------- SSVC single-request --

SsvcSingleRequestEngine::SsvcSingleRequestEngine(std::uint32_t radix)
    : MatchingEngine(radix) {
  request_ptr_.assign(radix, 0);
  last_grant_.assign(static_cast<std::size_t>(radix) * radix, 0);
  requests_.assign(radix, 0);
}

void SsvcSingleRequestEngine::reset() {
  std::fill(request_ptr_.begin(), request_ptr_.end(), 0u);
  std::fill(last_grant_.begin(), last_grant_.end(), 0ULL);
  grant_seq_ = 0;
}

std::uint32_t SsvcSingleRequestEngine::match(const MatchView& view,
                                             std::span<InputId> match_in) {
  const std::uint32_t radix = view.radix;
  for (auto& m : match_in) m = kNoPort;

  // Each input raises ONE request: the first eligible output at or after
  // its rotating pointer (the paper's one-bus-per-input model).
  std::fill(requests_.begin(), requests_.end(), 0ULL);
  bool any = false;
  for (InputId i = 0; i < radix; ++i) {
    const std::uint64_t elig = view.eligible[i];
    if (elig == 0) continue;
    requests_[rotate_pick(elig, request_ptr_[i])] |= 1ULL << i;
    any = true;
  }
  if (!any) return 1;

  // Each output grants its least-recently-granted requester (LRG).
  for (OutputId o = 0; o < radix; ++o) {
    std::uint64_t req = requests_[o];
    if (req == 0) continue;
    InputId winner = kNoPort;
    std::uint64_t oldest = 0;
    for (; req != 0; req &= req - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(req));
      const std::uint64_t stamp =
          last_grant_[static_cast<std::size_t>(o) * radix + i];
      if (winner == kNoPort || stamp < oldest) {
        winner = i;
        oldest = stamp;
      }
    }
    match_in[o] = winner;
    last_grant_[static_cast<std::size_t>(o) * radix + winner] = ++grant_seq_;
    request_ptr_[winner] = (o + 1) % radix;
  }
  return 1;
}

// --------------------------------------------------------------- factory --

std::unique_ptr<MatchingEngine> make_engine(MatchKind kind,
                                            std::uint32_t radix,
                                            std::uint32_t iterations,
                                            std::uint64_t seed) {
  switch (kind) {
    case MatchKind::None:
      throw ssq::ConfigError(
          "make_engine: MatchKind::None is the per-output arbiter path, not "
          "an engine [" __FILE__ "]");
    case MatchKind::Islip:
      return std::make_unique<IslipEngine>(radix, iterations);
    case MatchKind::Qps:
      return std::make_unique<QpsEngine>(radix, iterations, seed);
    case MatchKind::SwQps:
      return std::make_unique<SwQpsEngine>(radix, iterations, seed);
    case MatchKind::Ssvc:
      return std::make_unique<SsvcSingleRequestEngine>(radix);
    case MatchKind::Starve:
      return std::make_unique<StarvingEngine>(radix);
  }
  throw ssq::ConfigError("make_engine: unhandled matching engine kind " +
                         std::to_string(static_cast<int>(kind)));
}

}  // namespace ssq::arb
