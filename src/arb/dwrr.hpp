// Deficit Weighted Round-Robin (DWRR) arbiter [Shreedhar & Varghese,
// SIGCOMM'95] — the variable-packet-size-correct static baseline (§2.2).
//
// Each input carries a deficit counter in flits. Visiting an input during a
// round adds its quantum; the input may transmit head packets while the
// deficit covers their length. Unlike WRR, bandwidth shares are exact in
// flits even with mixed packet sizes.
//
// Same staging contract as WrrArbiter: pick() stages, on_grant() commits.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class DwrrArbiter final : public Arbiter {
 public:
  /// `quanta[i]` >= 1 flits added per round visit. For guaranteed-share
  /// configurations choose quanta proportional to the reserved rates with
  /// min(quanta) >= the largest packet length (the classic O(1) condition).
  DwrrArbiter(std::uint32_t radix, std::vector<std::uint32_t> quanta);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "DWRR";
  }

  [[nodiscard]] std::uint64_t deficit(InputId i) const {
    SSQ_EXPECT(i < radix());
    return deficits_[i];
  }

 private:
  std::vector<std::uint32_t> quanta_;
  std::vector<std::uint64_t> deficits_;
  InputId pointer_ = 0;

  std::vector<std::uint64_t> staged_deficits_;
  InputId staged_winner_ = kNoPort;
  InputId staged_pointer_ = 0;
};

}  // namespace ssq::arb
