#include "arb/pvc.hpp"

#include <cmath>

namespace ssq::arb {

PvcArbiter::PvcArbiter(std::uint32_t radix, std::vector<double> shares,
                       Cycle frame_cycles, std::uint32_t levels)
    : Arbiter(radix), share_(std::move(shares)), frame_(frame_cycles),
      levels_(levels) {
  SSQ_EXPECT(share_.size() == radix);
  SSQ_EXPECT(frame_cycles >= 16);
  SSQ_EXPECT(levels >= 2 && levels <= 64);
  double total = 0.0;
  for (double s : share_) {
    SSQ_EXPECT(s > 0.0);
    total += s;
  }
  for (double& s : share_) s /= total;
  consumed_.assign(radix, 0);
}

void PvcArbiter::reset() {
  consumed_.assign(radix(), 0);
  frame_start_ = 0;
  rr_ = 0;
}

void PvcArbiter::roll_frame(Cycle now) {
  while (now >= frame_start_ + frame_) {
    frame_start_ += frame_;
    for (auto& c : consumed_) c = 0;
  }
}

std::uint32_t PvcArbiter::level(InputId i, Cycle now) {
  SSQ_EXPECT(i < radix());
  roll_frame(now);
  // Fraction of the flow's per-frame budget already consumed, quantised.
  const double budget = share_[i] * static_cast<double>(frame_);
  const double used = static_cast<double>(consumed_[i]) / budget;
  const auto lvl = static_cast<std::uint32_t>(used *
                                              static_cast<double>(levels_));
  return lvl >= levels_ ? levels_ - 1 : lvl;
}

InputId PvcArbiter::pick(std::span<const Request> requests, Cycle now) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  roll_frame(now);
  std::uint32_t best_level = levels_;
  for (const auto& r : requests) {
    best_level = std::min(best_level, level(r.input, now));
  }
  // Round-robin within the winning level.
  InputId winner = kNoPort;
  for (std::uint32_t off = 0; off < radix(); ++off) {
    const InputId candidate = (rr_ + off) % radix();
    for (const auto& r : requests) {
      if (r.input == candidate && level(candidate, now) == best_level) {
        winner = candidate;
        break;
      }
    }
    if (winner != kNoPort) break;
  }
  return winner;
}

void PvcArbiter::on_grant(InputId input, std::uint32_t length, Cycle now) {
  SSQ_EXPECT(input < radix());
  roll_frame(now);
  consumed_[input] += length;
  rr_ = (input + 1) % radix();
}

}  // namespace ssq::arb
