// Pluggable output-port arbiter interface.
//
// The switch performs one arbitration per output channel per cycle in which
// the channel is free: it collects the set of inputs with a ready head packet
// for that output and asks an Arbiter to pick the winner. State updates
// (priority rotation, deficit counters, virtual clocks) are committed through
// on_grant so a pick can be inspected before being taken.
//
// Concrete arbiters: LRG (the Swizzle Switch default), round-robin, fixed
// priority, age-based, WRR, DWRR, packet-level WFQ, and the exact Virtual
// Clock baseline. The paper's SSVC arbiter lives in src/core (it composes an
// LRG arbiter) and the bit-level circuit equivalent in src/circuit.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "sim/contracts.hpp"
#include "sim/types.hpp"

namespace ssq::arb {

/// One input's request to an output in the current arbitration.
struct Request {
  InputId input = 0;
  /// Packet length in flits of the head packet (WFQ and DWRR consume it).
  std::uint32_t length = 1;
  /// Arbiter-specific key; the age arbiter reads the head packet's injection
  /// cycle here. Ignored by the others.
  std::uint64_t key = 0;
  /// Message priority level (MultiLevelArbiter); 0 = lowest.
  std::uint32_t priority = 0;
};

class Arbiter {
 public:
  explicit Arbiter(std::uint32_t radix) : radix_(radix) {
    SSQ_EXPECT(radix >= 1 && radix <= 64);
  }
  virtual ~Arbiter() = default;

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;

  /// Picks a winner among `requests` at cycle `now` WITHOUT mutating state.
  /// Returns kNoPort iff `requests` is empty. Inputs must be unique and
  /// < radix().
  [[nodiscard]] virtual InputId pick(std::span<const Request> requests,
                                     Cycle now) = 0;

  /// Commits a grant to `input` of a packet `length` flits long at `now`.
  virtual void on_grant(InputId input, std::uint32_t length, Cycle now) = 0;

  /// Notification that a free channel's arbitration opportunity passed
  /// without a grant (no serviceable request). Only TDM cares — its slot
  /// wheel advances and the slot is wasted.
  virtual void on_idle(Cycle now) { (void)now; }

  /// Restores the freshly-constructed state.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }

 protected:
  /// Shared precondition check for pick() implementations.
  void check_requests(std::span<const Request> requests) const {
    std::uint64_t seen = 0;
    for (const auto& r : requests) {
      SSQ_EXPECT(r.input < radix_);
      SSQ_EXPECT((seen & (1ULL << r.input)) == 0);
      seen |= 1ULL << r.input;
      SSQ_EXPECT(r.length >= 1);
    }
  }

 private:
  std::uint32_t radix_;
};

}  // namespace ssq::arb
