// Packet-level Weighted Fair Queueing in the self-clocked (SCFQ, Golestani)
// formulation — the bit-by-bit round-robin emulation family the paper cites
// (§2.2: FQ/WFQ "compute finish times for packets … O(N) complexity").
//
// Virtual time v(t) is the finish tag of the packet in service. A head
// packet of input i gets tag_i = max(v, last_tag_i) + length / weight_i,
// assigned ONCE when the packet is first seen at the head (its "arrival" at
// the scheduler) and held until served — recomputing it against the sliding
// v would let served flows lap unserved ones forever. The smallest pinned
// tag wins. pick() therefore pins tags for newly seen heads (internal
// bookkeeping); on_grant() consumes the winner's pin and advances v to it.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class WfqArbiter final : public Arbiter {
 public:
  /// `weights[i]` > 0, relative service shares (need not sum to 1).
  WfqArbiter(std::uint32_t radix, std::vector<double> weights);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override { return "WFQ"; }

  [[nodiscard]] double virtual_time() const noexcept { return vtime_; }
  [[nodiscard]] double last_tag(InputId i) const {
    SSQ_EXPECT(i < radix());
    return last_tag_[i];
  }

 private:
  /// Pins (or returns the pinned) finish tag for input's head packet.
  double head_tag(InputId input, std::uint32_t length) {
    if (!pinned_[input]) {
      const double start =
          last_tag_[input] > vtime_ ? last_tag_[input] : vtime_;
      head_tag_[input] = start + static_cast<double>(length) / weights_[input];
      pinned_[input] = true;
    }
    return head_tag_[input];
  }

  std::vector<double> weights_;
  std::vector<double> last_tag_;
  std::vector<double> head_tag_;
  std::vector<bool> pinned_;
  double vtime_ = 0.0;
};

}  // namespace ssq::arb
