// Pluggable crossbar matching engines.
//
// The per-output Arbiter interface (arbiter.hpp) resolves ONE output at a
// time; a MatchingEngine computes a whole input/output matching per cycle
// from the switch-wide request state: the eligibility matrix in, a partial
// permutation out, under an iteration budget. This is the natural frame for
// the iterative input-queued schedulers of the literature — iSLIP
// (round-robin grant/accept pointers that desynchronise under contention),
// QPS-r (queue-proportional sampling, r rounds), and SW-QPS (sliding-window
// batch matching that keeps refining the matchings of the next T cycles) —
// and lets the stability lab (src/check/stability.hpp) and the crossbar
// (SwitchConfig::engine) drive the exact same algorithm objects.
//
// Contract highlights:
//  * match() fills `match_in[o]` with the matched input for output o (or
//    kNoPort), forming a partial permutation: no input appears twice, and
//    every pair (i, o) satisfies `eligible[i] bit o` and `backlog(i,o) > 0`.
//  * match() is deterministic: sampling engines draw from an internal
//    seeded Rng, and a call with an all-empty view rolls no RNG and leaves
//    no observable trace (SW-QPS retires drained window entries first), so
//    idle-cycle fast-forward stays exact.
//  * The return value is the number of matching iterations actually used —
//    the convergence metric of the stability lab.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ssq::arb {

/// Matching-engine selector. None = the classic per-output Arbiter path.
enum class MatchKind : std::uint8_t {
  None = 0,
  /// iSLIP [McKeown '99]: per-output round-robin grant pointers, per-input
  /// round-robin accept pointers, updated only on first-iteration accepts.
  Islip,
  /// QPS-r: each backlogged input samples one output with probability
  /// proportional to VOQ length; outputs accept the longest-VOQ proposal;
  /// r proposing rounds per cycle.
  Qps,
  /// SW-QPS: one QPS proposing round per cycle into a sliding window of T
  /// future cycles; each frame's matching only ever grows while it waits.
  SwQps,
  /// Single-request emulation of the paper's switch: one rotating request
  /// per input, least-recently-granted winner per output. The stability
  /// lab's stand-in for SSVC (which needs reservations the cell model
  /// does not have).
  Ssvc,
  /// Test-only: never matches anything. Planted-bug teeth for the
  /// differential checker's work-conservation (starvation) guard.
  Starve,
};

/// Stable lowercase name ("islip", "qps", "swqps", "ssvc", ...).
[[nodiscard]] std::string_view match_kind_name(MatchKind kind) noexcept;

/// Parses a kind from its name; throws ssq::ConfigError naming the
/// offending token on unknown names.
[[nodiscard]] MatchKind parse_match_kind(std::string_view name);

/// One cycle's request state, handed to match(). Spans point into the
/// caller's scratch arena and die when match() returns.
struct MatchView {
  std::uint32_t radix = 0;
  /// Per input: bitmask of outputs this input can be matched to THIS cycle
  /// (servable head, input bus free, output channel idle, link alive).
  std::span<const std::uint64_t> eligible;
  /// Per input: bitmask of outputs with a servable head and a live link,
  /// regardless of channel business — a superset of `eligible`. SW-QPS
  /// proposes future-frame pairs from here.
  std::span<const std::uint64_t> candidates;
  /// Row-major radix x radix backlog matrix in flits; positive exactly on
  /// the `candidates` bits. QPS sampling weight, and SW-QPS's signal for
  /// retiring drained window entries.
  std::span<const std::uint32_t> voq;

  [[nodiscard]] std::uint32_t backlog(InputId i, OutputId o) const noexcept {
    return voq[static_cast<std::size_t>(i) * radix + o];
  }
};

class MatchingEngine {
 public:
  explicit MatchingEngine(std::uint32_t radix) : radix_(radix) {
    SSQ_EXPECT(radix >= 1 && radix <= 64);
  }
  virtual ~MatchingEngine() = default;
  MatchingEngine(const MatchingEngine&) = delete;
  MatchingEngine& operator=(const MatchingEngine&) = delete;

  /// Computes this cycle's matching into `match_in` (size radix, entry o =
  /// matched input or kNoPort). Returns iterations used (>= 1).
  virtual std::uint32_t match(const MatchView& view,
                              std::span<InputId> match_in) = 0;

  /// Restores the freshly-constructed state (sampling engines reseed).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }

 protected:
  /// First set bit of `mask` at or cyclically after `from` (mask != 0).
  [[nodiscard]] static std::uint32_t rotate_pick(std::uint64_t mask,
                                                 std::uint32_t from) noexcept;

 private:
  std::uint32_t radix_;
};

class IslipEngine final : public MatchingEngine {
 public:
  IslipEngine(std::uint32_t radix, std::uint32_t iterations);
  std::uint32_t match(const MatchView& view,
                      std::span<InputId> match_in) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "islip";
  }
  [[nodiscard]] std::uint32_t grant_pointer(OutputId o) const {
    return grant_ptr_[o];
  }
  [[nodiscard]] std::uint32_t accept_pointer(InputId i) const {
    return accept_ptr_[i];
  }

 private:
  std::uint32_t iterations_;
  std::vector<std::uint32_t> grant_ptr_;   // per output
  std::vector<std::uint32_t> accept_ptr_;  // per input
  std::vector<std::uint64_t> requests_;    // scratch: per output, input bits
  std::vector<InputId> grant_to_;          // scratch: per output
};

class QpsEngine final : public MatchingEngine {
 public:
  QpsEngine(std::uint32_t radix, std::uint32_t iterations, std::uint64_t seed);
  std::uint32_t match(const MatchView& view,
                      std::span<InputId> match_in) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "qps";
  }

 private:
  std::uint32_t iterations_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<InputId> proposer_;        // scratch: per output
  std::vector<std::uint32_t> prop_len_;  // scratch: per output
};

class SwQpsEngine final : public MatchingEngine {
 public:
  /// `window` = T, the number of future cycles being refined (>= 1).
  SwQpsEngine(std::uint32_t radix, std::uint32_t window, std::uint64_t seed);
  std::uint32_t match(const MatchView& view,
                      std::span<InputId> match_in) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "swqps";
  }
  [[nodiscard]] std::uint32_t window() const noexcept {
    return static_cast<std::uint32_t>(frames_.size());
  }
  /// Matched pairs currently held in frame `k` (0 departs next).
  [[nodiscard]] std::uint32_t frame_size(std::uint32_t k) const;

 private:
  struct Frame {
    std::vector<InputId> match_in;  // per output
    std::uint64_t in_used = 0;
    std::uint64_t out_used = 0;
  };
  void clear_frame(Frame& f);

  std::uint64_t seed_;
  Rng rng_;
  std::vector<Frame> frames_;  // frames_[0] departs at the current cycle
};

class SsvcSingleRequestEngine final : public MatchingEngine {
 public:
  explicit SsvcSingleRequestEngine(std::uint32_t radix);
  std::uint32_t match(const MatchView& view,
                      std::span<InputId> match_in) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ssvc";
  }

 private:
  std::vector<std::uint32_t> request_ptr_;  // per input, rotating over outputs
  std::vector<std::uint64_t> last_grant_;   // per (o, i): LRG recency stamp
  std::vector<std::uint64_t> requests_;     // scratch: per output, input bits
  std::uint64_t grant_seq_ = 0;
};

class StarvingEngine final : public MatchingEngine {
 public:
  explicit StarvingEngine(std::uint32_t radix) : MatchingEngine(radix) {}
  std::uint32_t match(const MatchView&, std::span<InputId> match_in) override {
    for (auto& m : match_in) m = kNoPort;
    return 1;
  }
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "starve";
  }
};

/// Constructs an engine. `iterations` is the round budget (iSLIP/QPS-r) or
/// the window T (SW-QPS); `seed` feeds the sampling engines' Rng streams.
/// Throws ssq::ConfigError for MatchKind::None.
[[nodiscard]] std::unique_ptr<MatchingEngine> make_engine(
    MatchKind kind, std::uint32_t radix, std::uint32_t iterations,
    std::uint64_t seed);

}  // namespace ssq::arb
