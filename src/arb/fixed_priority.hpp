// Static fixed-priority arbiter.
//
// The priority order never changes; lower order index wins. This is the
// starvation-prone policy the paper contrasts against (§2.2 third difference
// from the 4-level QoS design of [14]): "the previous design used a
// fixed-priority QoS mechanism ... which could lead to starvation". Included
// both as a baseline and for tests that demonstrate that starvation.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class FixedPriorityArbiter final : public Arbiter {
 public:
  /// Default order: input 0 highest priority.
  explicit FixedPriorityArbiter(std::uint32_t radix);

  /// Custom order: order[k] = input with the k-th highest priority. Must be
  /// a permutation of 0..radix-1.
  FixedPriorityArbiter(std::uint32_t radix, std::vector<InputId> order);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override {
    SSQ_EXPECT(input < radix());
    (void)length;
    (void)now;
  }
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "FixedPriority";
  }

 private:
  std::vector<InputId> order_;
};

}  // namespace ssq::arb
