// Classic rotating-pointer round-robin arbiter.
//
// The pointer names the most-preferred input; after a grant it advances to
// one past the winner, so each input waits at most N-1 grants.
#pragma once

#include "arb/arbiter.hpp"

namespace ssq::arb {

class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(std::uint32_t radix) : Arbiter(radix) {}

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override { pointer_ = 0; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "RoundRobin";
  }

  [[nodiscard]] InputId pointer() const noexcept { return pointer_; }

 private:
  InputId pointer_ = 0;
};

}  // namespace ssq::arb
