#include "arb/virtual_clock.hpp"

namespace ssq::arb {

VirtualClockArbiter::VirtualClockArbiter(std::uint32_t radix,
                                         std::vector<double> vticks)
    : Arbiter(radix), vticks_(std::move(vticks)) {
  SSQ_EXPECT(vticks_.size() == radix);
  for (double v : vticks_) SSQ_EXPECT(v > 0.0);
  vc_.assign(radix, 0.0);
}

void VirtualClockArbiter::reset() { vc_.assign(radix(), 0.0); }

InputId VirtualClockArbiter::pick(std::span<const Request> requests,
                                  Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  InputId winner = kNoPort;
  double best = 0.0;
  for (const auto& r : requests) {
    const double vc = vc_[r.input];
    if (winner == kNoPort || vc < best || (vc == best && r.input < winner)) {
      winner = r.input;
      best = vc;
    }
  }
  return winner;
}

void VirtualClockArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                                   Cycle now) {
  SSQ_EXPECT(input < radix());
  const double t = static_cast<double>(now);
  const double clamped = vc_[input] > t ? vc_[input] : t;
  vc_[input] = clamped + vticks_[input];
}

}  // namespace ssq::arb
