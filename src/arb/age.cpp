#include "arb/age.hpp"

namespace ssq::arb {

InputId AgeArbiter::pick(std::span<const Request> requests, Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  const Request* best = &requests[0];
  for (const auto& r : requests.subspan(1)) {
    if (r.key < best->key || (r.key == best->key && r.input < best->input)) {
      best = &r;
    }
  }
  return best->input;
}

}  // namespace ssq::arb
