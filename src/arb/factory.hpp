// Factory for constructing arbiters by name — used by benches and examples
// that sweep policies.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

enum class Kind {
  Lrg,
  RoundRobin,
  FixedPriority,
  Age,
  Wrr,
  Dwrr,
  Wfq,
  VirtualClock,
  /// The 4-level message-based QoS of [14] (fixed priority + LRG in-level).
  MultiLevel,
  /// Slot-table TDM (Aethereal/Nostrum style) — non-work-conserving.
  Tdm,
  /// Preemptive Virtual Clock [7] (frame-based priority levels; the
  /// preemption itself is a switch feature, SwitchConfig::pvc).
  Pvc,
};

/// Stable lowercase name for CLI selection ("lrg", "round_robin", ...).
[[nodiscard]] std::string_view kind_name(Kind kind) noexcept;

/// Parses a kind from its name; throws ssq::ConfigError naming the
/// offending token on unknown names.
[[nodiscard]] Kind parse_kind(std::string_view name);

/// Constructs an arbiter.
///
/// `rates[i]` is input i's relative bandwidth share (any positive scale).
/// It parameterizes WRR (packets/round), DWRR (quantum flits), WFQ (weight)
/// and VirtualClock (Vtick = mean_packet_len / rate). Policies that take no
/// weights ignore it. `mean_packet_len` is used to size WRR/DWRR quanta and
/// VirtualClock Vticks; pass the workload's (largest) packet length.
[[nodiscard]] std::unique_ptr<Arbiter> make_arbiter(
    Kind kind, std::uint32_t radix, const std::vector<double>& rates = {},
    std::uint32_t mean_packet_len = 1);

}  // namespace ssq::arb
