// Least-Recently-Granted (LRG) matrix arbiter — the Swizzle Switch's native
// policy [Satpathy ISSCC'12] and the paper's Fig. 4(a) no-QoS baseline.
//
// State is an N×N "beats" relation stored as one bitmask row per input:
// row(i) bit j == 1 means i currently has priority over j. The relation is a
// strict total order at all times; granting input w moves it to the back
// (row(w) cleared, bit w set in every other row), which is exactly the
// hardware's self-updating priority flop behaviour. In silicon each
// crosspoint stores its own 63-bit row (Table 1); here the matrix is per
// output and shared by all classes, matching that layout.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class LrgArbiter final : public Arbiter {
 public:
  explicit LrgArbiter(std::uint32_t radix);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override { return "LRG"; }

  /// True iff input `i` currently has priority over input `j` (i != j).
  [[nodiscard]] bool beats(InputId i, InputId j) const;

  /// Row of the beats matrix for input `i` (bit j set == i beats j).
  /// (Inline: the differential checker reads every row every cycle.)
  [[nodiscard]] std::uint64_t row(InputId i) const {
    SSQ_EXPECT(i < radix());
    return rows_[i];
  }

  /// Rank of `i` in the current priority order: 0 == most-preferred
  /// (least recently granted). In a strict total order, rank == number of
  /// inputs that beat i. (Inline: per-input state comparison hot path.)
  [[nodiscard]] std::uint32_t rank(InputId i) const {
    SSQ_EXPECT(i < radix());
    return radix() - 1 -
           static_cast<std::uint32_t>(std::popcount(rows_[i]));
  }

  /// Contiguous row storage (radix() words) for the vectorized kernel's
  /// covering sweep.
  [[nodiscard]] const std::uint64_t* rows_data() const noexcept {
    return rows_.data();
  }

  /// Directly installs a beats matrix (used by the circuit-equivalence tests
  /// to enumerate "all valid LRG states" as the paper's §4.1 verification
  /// does). Rows must encode a strict total order; enforced.
  void set_matrix(const std::vector<std::uint64_t>& rows);

  /// Checks the strict-total-order invariant (asymmetric, total, transitive
  /// by rank consistency).
  [[nodiscard]] bool is_total_order() const;

  // ---- fault injection / scrubbing (hardware DFT surface) ----

  /// Flips bit `j` of row `i` — a soft error in one crosspoint priority
  /// flop. Breaks the total order until repair_order() rebuilds it.
  void fault_flip(InputId i, InputId j);

  /// Rebuilds a strict total order from a corrupted matrix: inputs are
  /// ranked by surviving out-degree (ties broken toward the lower index, the
  /// hardware's wired tie-break) and the matrix rewritten to that order —
  /// the closest consistent state to what the flipped flops still encode.
  /// Returns true iff the matrix was actually repaired.
  bool repair_order();

  /// Fault-tolerant mode: pick() on a matrix that has lost its total order
  /// degrades to the max-out-degree requester instead of aborting. Enabled
  /// by the fault subsystem when an injector is attached; detached operation
  /// keeps the strict abort so silent corruption cannot skew results.
  void set_fault_tolerant(bool on) noexcept { fault_tolerant_ = on; }
  [[nodiscard]] bool fault_tolerant() const noexcept { return fault_tolerant_; }

 private:
  std::vector<std::uint64_t> rows_;
  bool fault_tolerant_ = false;
};

}  // namespace ssq::arb
