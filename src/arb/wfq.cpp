#include "arb/wfq.hpp"

namespace ssq::arb {

WfqArbiter::WfqArbiter(std::uint32_t radix, std::vector<double> weights)
    : Arbiter(radix), weights_(std::move(weights)) {
  SSQ_EXPECT(weights_.size() == radix);
  for (double w : weights_) SSQ_EXPECT(w > 0.0);
  last_tag_.assign(radix, 0.0);
  head_tag_.assign(radix, 0.0);
  pinned_.assign(radix, false);
}

void WfqArbiter::reset() {
  last_tag_.assign(radix(), 0.0);
  head_tag_.assign(radix(), 0.0);
  pinned_.assign(radix(), false);
  vtime_ = 0.0;
}

InputId WfqArbiter::pick(std::span<const Request> requests, Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  InputId winner = kNoPort;
  double best = 0.0;
  for (const auto& r : requests) {
    const double tag = head_tag(r.input, r.length);
    if (winner == kNoPort || tag < best ||
        (tag == best && r.input < winner)) {
      winner = r.input;
      best = tag;
    }
  }
  return winner;
}

void WfqArbiter::on_grant(InputId input, std::uint32_t length, Cycle /*now*/) {
  SSQ_EXPECT(input < radix());
  const double tag = head_tag(input, length);
  pinned_[input] = false;  // the head packet departs; the next one re-pins
  last_tag_[input] = tag;
  // Self-clocking: system virtual time jumps to the in-service finish tag.
  vtime_ = tag;
}

}  // namespace ssq::arb
