#include "arb/dwrr.hpp"

namespace ssq::arb {

DwrrArbiter::DwrrArbiter(std::uint32_t radix, std::vector<std::uint32_t> quanta)
    : Arbiter(radix), quanta_(std::move(quanta)) {
  SSQ_EXPECT(quanta_.size() == radix);
  for (auto q : quanta_) SSQ_EXPECT(q >= 1);
  deficits_.assign(radix, 0);
  staged_deficits_ = deficits_;
}

void DwrrArbiter::reset() {
  deficits_.assign(radix(), 0);
  pointer_ = 0;
  staged_winner_ = kNoPort;
}

InputId DwrrArbiter::pick(std::span<const Request> requests, Cycle /*now*/) {
  check_requests(requests);
  staged_winner_ = kNoPort;
  if (requests.empty()) return kNoPort;

  // Head-packet length per requesting input.
  std::uint64_t mask = 0;
  std::uint32_t length[64] = {};
  std::uint32_t max_len = 1;
  for (const auto& r : requests) {
    mask |= 1ULL << r.input;
    length[r.input] = r.length;
    if (r.length > max_len) max_len = r.length;
  }

  staged_deficits_ = deficits_;
  staged_pointer_ = pointer_;
  // Each full pass adds >= min(quanta) to every requester, so at most
  // ceil(max_len / min_quantum) + 1 passes are needed; bound generously.
  const std::uint32_t max_rounds = max_len + 2;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    for (std::uint32_t off = 0; off < radix(); ++off) {
      const InputId candidate = (staged_pointer_ + off) % radix();
      if (!((mask >> candidate) & 1ULL)) continue;
      if (staged_deficits_[candidate] >= length[candidate]) {
        staged_winner_ = candidate;
        staged_deficits_[candidate] -= length[candidate];
        // Keep the pointer on the winner: DWRR keeps serving a queue while
        // its deficit lasts.
        staged_pointer_ = candidate;
        return candidate;
      }
      // Visit without service: refill and move on (one refill per visit).
      staged_deficits_[candidate] += quanta_[candidate];
    }
  }
  SSQ_ENSURE(false && "DWRR refill failed to produce a winner");
  return kNoPort;
}

void DwrrArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                           Cycle /*now*/) {
  SSQ_EXPECT(input == staged_winner_);
  deficits_ = staged_deficits_;
  pointer_ = staged_pointer_;
  staged_winner_ = kNoPort;
}

}  // namespace ssq::arb
