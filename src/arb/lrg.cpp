#include "arb/lrg.hpp"

#include <algorithm>
#include <bit>

namespace ssq::arb {

LrgArbiter::LrgArbiter(std::uint32_t radix) : Arbiter(radix) {
  rows_.resize(radix);
  reset();
}

void LrgArbiter::reset() {
  // Initial total order: 0 beats 1 beats 2 ... (input 0 most-preferred).
  for (InputId i = 0; i < radix(); ++i) {
    std::uint64_t row = 0;
    for (InputId j = i + 1; j < radix(); ++j) row |= 1ULL << j;
    rows_[i] = row;
  }
}

bool LrgArbiter::beats(InputId i, InputId j) const {
  SSQ_EXPECT(i < radix() && j < radix() && i != j);
  return (rows_[i] >> j) & 1ULL;
}

InputId LrgArbiter::pick(std::span<const Request> requests, Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  std::uint64_t mask = 0;
  for (const auto& r : requests) mask |= 1ULL << r.input;
  // Winner beats every other requester. The total-order invariant guarantees
  // exactly one such input exists.
  for (const auto& r : requests) {
    const std::uint64_t others = mask & ~(1ULL << r.input);
    if ((rows_[r.input] & others) == others) return r.input;
  }
  if (fault_tolerant_) {
    // Corrupted matrix: no requester beats all the others. Degrade to the
    // requester that beats the most other requesters (first in request order
    // on ties) — bounded unfairness until the scrubber repairs the order.
    InputId best = requests.front().input;
    int best_deg = -1;
    for (const auto& r : requests) {
      const std::uint64_t others = mask & ~(1ULL << r.input);
      const int deg = std::popcount(rows_[r.input] & others);
      if (deg > best_deg) {
        best_deg = deg;
        best = r.input;
      }
    }
    return best;
  }
  SSQ_ENSURE(false && "LRG matrix lost its total order");
  return kNoPort;
}

void LrgArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                          Cycle /*now*/) {
  SSQ_EXPECT(input < radix());
  // Move-to-back: the winner now loses to everyone.
  rows_[input] = 0;
  const std::uint64_t bit = 1ULL << input;
  for (InputId j = 0; j < radix(); ++j) {
    if (j != input) rows_[j] |= bit;
  }
}

void LrgArbiter::set_matrix(const std::vector<std::uint64_t>& rows) {
  SSQ_EXPECT(rows.size() == radix());
  rows_ = rows;
  SSQ_EXPECT(is_total_order());
}

void LrgArbiter::fault_flip(InputId i, InputId j) {
  SSQ_EXPECT(i < radix() && j < radix());
  rows_[i] ^= 1ULL << j;
}

bool LrgArbiter::repair_order() {
  if (is_total_order()) return false;
  const std::uint32_t n = radix();
  // Rank by surviving out-degree: the input whose row still claims the most
  // wins becomes most-preferred. Ties go to the lower index.
  std::vector<InputId> order(n);
  for (InputId i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](InputId a, InputId b) {
    return std::popcount(rows_[a]) > std::popcount(rows_[b]);
  });
  // Rewrite the matrix as exactly that total order.
  std::uint64_t remaining = 0;
  for (InputId i = 0; i < n; ++i) remaining |= 1ULL << i;
  for (InputId k = 0; k < n; ++k) {
    const InputId who = order[k];
    remaining &= ~(1ULL << who);
    rows_[who] = remaining;
  }
  SSQ_ENSURE(is_total_order());
  return true;
}

bool LrgArbiter::is_total_order() const {
  const std::uint32_t n = radix();
  // Asymmetric and total: exactly one of beats(i,j), beats(j,i).
  for (InputId i = 0; i < n; ++i) {
    if ((rows_[i] >> i) & 1ULL) return false;  // irreflexive
    if (n < 64 && (rows_[i] >> n) != 0) return false;  // no stray bits
    for (InputId j = i + 1; j < n; ++j) {
      const bool ij = (rows_[i] >> j) & 1ULL;
      const bool ji = (rows_[j] >> i) & 1ULL;
      if (ij == ji) return false;
    }
  }
  // Transitivity: out-degrees must be a permutation of {0..n-1}.
  std::uint64_t degrees_seen = 0;
  for (InputId i = 0; i < n; ++i) {
    const auto deg = static_cast<std::uint32_t>(std::popcount(rows_[i]));
    if (deg >= n) return false;
    if ((degrees_seen >> deg) & 1ULL) return false;
    degrees_seen |= 1ULL << deg;
  }
  return true;
}

}  // namespace ssq::arb
