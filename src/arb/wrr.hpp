// Weighted Round-Robin (WRR) arbiter — a static bandwidth-guarantee baseline
// (§2.2: "Static approaches such as WRR and DWRR can provide strict bandwidth
// guarantees [17]. However, WRR and DWRR lead to network underutilization as
// they do not distribute leftover bandwidth equally…").
//
// Each input holds an integer weight = packets it may send per round. The
// arbiter serves requesters round-robin, consuming one credit per grant; when
// no requester has credit left, a new round begins (credits reload). Reload
// only considers current requesters, so the policy is work-conserving at the
// link level, but leftover bandwidth goes to whoever happens to be backlogged
// at reload time rather than proportionally — the weakness the paper cites.
//
// Contract note: pick() computes the winner (and any reloads needed) from
// committed state without publishing it; on_grant(winner) must follow a
// pick() that returned that winner and commits the staged state.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class WrrArbiter final : public Arbiter {
 public:
  /// `weights[i]` >= 1 packets per round for input i.
  WrrArbiter(std::uint32_t radix, std::vector<std::uint32_t> weights);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override { return "WRR"; }

  [[nodiscard]] std::uint32_t credit(InputId i) const {
    SSQ_EXPECT(i < radix());
    return credits_[i];
  }

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint32_t> credits_;
  InputId pointer_ = 0;

  // Staged by pick(), committed by on_grant().
  std::vector<std::uint32_t> staged_credits_;
  InputId staged_winner_ = kNoPort;
  InputId staged_pointer_ = 0;
};

}  // namespace ssq::arb
