#include "arb/round_robin.hpp"

namespace ssq::arb {

InputId RoundRobinArbiter::pick(std::span<const Request> requests,
                                Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  std::uint64_t mask = 0;
  for (const auto& r : requests) mask |= 1ULL << r.input;
  for (std::uint32_t off = 0; off < radix(); ++off) {
    const InputId candidate = (pointer_ + off) % radix();
    if ((mask >> candidate) & 1ULL) return candidate;
  }
  return kNoPort;  // unreachable: requests non-empty
}

void RoundRobinArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                                 Cycle /*now*/) {
  SSQ_EXPECT(input < radix());
  pointer_ = (input + 1) % radix();
}

}  // namespace ssq::arb
