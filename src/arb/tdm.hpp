// Time-Division Multiplexing slot-table arbiter — the circuit-switched
// guarantee mechanism of Æthereal [6] and Nostrum [11] (§5), and the
// strawman Virtual Clock improves on (§2.2): "In a true TDM system, packets
// are serviced only in the time slots allocated to the source. If the
// source has no packets to send, that time slot is wasted and results in
// link underutilization."
//
// Slots are wall-clock aligned: slot k covers cycles
// [k*slot_cycles, (k+1)*slot_cycles) and belongs to table[k % period] (or to
// nobody, kNoPort). A grant is only issued at a slot boundary to the slot's
// owner; an owner with nothing to send wastes the WHOLE slot — the channel
// sits idle until the next boundary. Size slot_cycles to packet_len + 1 so
// one packet (plus its arbitration cycle) fills a slot exactly.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class TdmArbiter final : public Arbiter {
 public:
  /// `table[k]` = input owning slot k, or kNoPort for an unallocated slot.
  /// `slot_cycles` = wall-clock length of one slot.
  TdmArbiter(std::uint32_t radix, std::vector<InputId> table,
             std::uint32_t slot_cycles);

  /// Builds a slot table proportional to `shares` over `period` slots
  /// (largest-remainder apportionment, round-robin interleaved).
  static std::vector<InputId> shares_to_table(
      std::uint32_t radix, const std::vector<double>& shares,
      std::uint32_t period);

  /// Returns the current slot's owner iff `now` is the slot boundary and
  /// the owner is requesting; kNoPort otherwise (the slot is wasted).
  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "TDM";
  }

  [[nodiscard]] std::size_t slot_at(Cycle now) const noexcept {
    return static_cast<std::size_t>((now / slot_cycles_) % table_.size());
  }
  [[nodiscard]] std::uint32_t slot_cycles() const noexcept {
    return slot_cycles_;
  }
  [[nodiscard]] const std::vector<InputId>& table() const noexcept {
    return table_;
  }

 private:
  std::vector<InputId> table_;
  std::uint32_t slot_cycles_;
};

}  // namespace ssq::arb
