// Fixed-priority multi-level message arbiter — the 4-level message-based QoS
// of the earlier Swizzle Switch design [Satpathy et al., DAC'12], the prior
// art the paper differentiates SSVC from (§2.2):
//
//   1. "inputs could only assign a priority level to messages and could not
//      control how much bandwidth each priority level receives",
//   2. "the previous design used a fixed-priority QoS mechanism (highest
//      level messages are prioritized first), which could lead to starvation
//      of messages in other levels",
//   3. "the previous design required two arbitration cycles" (modelled by
//      SwitchConfig::arbitration_cycles = 2).
//
// Arbitration: the highest message priority present wins the level compare;
// LRG matrix state breaks ties within the level. Request::priority carries
// the message level (0 = lowest).
#pragma once

#include "arb/arbiter.hpp"
#include "arb/lrg.hpp"

namespace ssq::arb {

class MultiLevelArbiter final : public Arbiter {
 public:
  /// `num_levels` message priority levels (4 in [14]).
  MultiLevelArbiter(std::uint32_t radix, std::uint32_t num_levels = 4);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MultiLevel";
  }

  [[nodiscard]] std::uint32_t num_levels() const noexcept {
    return num_levels_;
  }
  [[nodiscard]] const LrgArbiter& lrg() const noexcept { return lrg_; }

 private:
  std::uint32_t num_levels_;
  LrgArbiter lrg_;
};

}  // namespace ssq::arb
