// Oldest-first (age-based) arbiter.
//
// Picks the request whose head packet was injected earliest (Request::key
// carries the injection cycle). Ties break toward the lower input index.
// Age arbitration is a common NoC fairness baseline: it is starvation-free
// but offers no bandwidth differentiation.
#pragma once

#include "arb/arbiter.hpp"

namespace ssq::arb {

class AgeArbiter final : public Arbiter {
 public:
  explicit AgeArbiter(std::uint32_t radix) : Arbiter(radix) {}

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override {
    SSQ_EXPECT(input < radix());
    (void)length;
    (void)now;
  }
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override { return "Age"; }
};

}  // namespace ssq::arb
