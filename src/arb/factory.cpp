#include "arb/factory.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "arb/age.hpp"
#include "arb/dwrr.hpp"
#include "arb/fixed_priority.hpp"
#include "arb/lrg.hpp"
#include "arb/multilevel.hpp"
#include "arb/pvc.hpp"
#include "arb/round_robin.hpp"
#include "arb/tdm.hpp"
#include "arb/virtual_clock.hpp"
#include "arb/wfq.hpp"
#include "arb/wrr.hpp"
#include "sim/error.hpp"

namespace ssq::arb {

std::string_view kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::Lrg: return "lrg";
    case Kind::RoundRobin: return "round_robin";
    case Kind::FixedPriority: return "fixed_priority";
    case Kind::Age: return "age";
    case Kind::Wrr: return "wrr";
    case Kind::Dwrr: return "dwrr";
    case Kind::Wfq: return "wfq";
    case Kind::VirtualClock: return "virtual_clock";
    case Kind::MultiLevel: return "multilevel";
    case Kind::Tdm: return "tdm";
    case Kind::Pvc: return "pvc";
  }
  return "?";
}

Kind parse_kind(std::string_view name) {
  for (Kind k : {Kind::Lrg, Kind::RoundRobin, Kind::FixedPriority, Kind::Age,
                 Kind::Wrr, Kind::Dwrr, Kind::Wfq, Kind::VirtualClock,
                 Kind::MultiLevel, Kind::Tdm, Kind::Pvc}) {
    if (kind_name(k) == name) return k;
  }
  // A name reaches here straight from a CLI flag or scenario file: user
  // input, so throw (with the offending token) rather than abort.
  throw ssq::ConfigError(
      "unknown arbiter kind '" + std::string(name) +
      "' (lrg|round_robin|fixed_priority|age|wrr|dwrr|wfq|virtual_clock|"
      "multilevel|tdm|pvc) [" __FILE__ ":" +
      std::to_string(__LINE__) + "]");
}

namespace {

std::vector<double> normalized_rates(std::uint32_t radix,
                                     const std::vector<double>& rates) {
  if (rates.empty()) return std::vector<double>(radix, 1.0);
  SSQ_EXPECT(rates.size() == radix);
  for (double r : rates) SSQ_EXPECT(r > 0.0);
  return rates;
}

}  // namespace

std::unique_ptr<Arbiter> make_arbiter(Kind kind, std::uint32_t radix,
                                      const std::vector<double>& rates,
                                      std::uint32_t mean_packet_len) {
  SSQ_EXPECT(mean_packet_len >= 1);
  const auto shares = normalized_rates(radix, rates);
  const double min_share = *std::min_element(shares.begin(), shares.end());

  switch (kind) {
    case Kind::Lrg:
      return std::make_unique<LrgArbiter>(radix);
    case Kind::RoundRobin:
      return std::make_unique<RoundRobinArbiter>(radix);
    case Kind::FixedPriority:
      return std::make_unique<FixedPriorityArbiter>(radix);
    case Kind::Age:
      return std::make_unique<AgeArbiter>(radix);
    case Kind::Wrr: {
      // Packets per round proportional to share, minimum 1.
      std::vector<std::uint32_t> weights(radix);
      for (std::uint32_t i = 0; i < radix; ++i) {
        weights[i] = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::lround(shares[i] / min_share)));
      }
      return std::make_unique<WrrArbiter>(radix, std::move(weights));
    }
    case Kind::Dwrr: {
      // Quantum flits proportional to share, minimum one max-size packet for
      // the classic O(1) service condition.
      std::vector<std::uint32_t> quanta(radix);
      for (std::uint32_t i = 0; i < radix; ++i) {
        quanta[i] = std::max<std::uint32_t>(
            mean_packet_len,
            static_cast<std::uint32_t>(
                std::lround(shares[i] / min_share *
                            static_cast<double>(mean_packet_len))));
      }
      return std::make_unique<DwrrArbiter>(radix, std::move(quanta));
    }
    case Kind::Wfq:
      return std::make_unique<WfqArbiter>(radix, shares);
    case Kind::VirtualClock: {
      // Vtick = mean inter-packet time at the reserved rate, counting the
      // per-packet arbitration cycle (same calibration as core::ideal_vtick
      // so the Fig. 5 baseline is compared on equal footing).
      std::vector<double> vticks(radix);
      for (std::uint32_t i = 0; i < radix; ++i) {
        vticks[i] = static_cast<double>(mean_packet_len + 1) / shares[i];
      }
      return std::make_unique<VirtualClockArbiter>(radix, std::move(vticks));
    }
    case Kind::MultiLevel:
      return std::make_unique<MultiLevelArbiter>(radix);
    case Kind::Tdm: {
      const std::uint32_t period = std::max(16u, 4u * radix);
      // One packet (plus its arbitration cycle) per slot.
      return std::make_unique<TdmArbiter>(
          radix, TdmArbiter::shares_to_table(radix, shares, period),
          mean_packet_len + 1);
    }
    case Kind::Pvc:
      return std::make_unique<PvcArbiter>(radix, shares);
  }
  throw ssq::ConfigError("unhandled arbiter kind " +
                         std::to_string(static_cast<int>(kind)) +
                         " [" __FILE__ "]");
}

}  // namespace ssq::arb
