#include "arb/fixed_priority.hpp"

#include <numeric>

namespace ssq::arb {

FixedPriorityArbiter::FixedPriorityArbiter(std::uint32_t radix)
    : Arbiter(radix), order_(radix) {
  std::iota(order_.begin(), order_.end(), 0u);
}

FixedPriorityArbiter::FixedPriorityArbiter(std::uint32_t radix,
                                           std::vector<InputId> order)
    : Arbiter(radix), order_(std::move(order)) {
  SSQ_EXPECT(order_.size() == radix);
  std::uint64_t seen = 0;
  for (InputId i : order_) {
    SSQ_EXPECT(i < radix);
    SSQ_EXPECT(((seen >> i) & 1ULL) == 0);
    seen |= 1ULL << i;
  }
}

InputId FixedPriorityArbiter::pick(std::span<const Request> requests,
                                   Cycle /*now*/) {
  check_requests(requests);
  if (requests.empty()) return kNoPort;
  std::uint64_t mask = 0;
  for (const auto& r : requests) mask |= 1ULL << r.input;
  for (InputId candidate : order_) {
    if ((mask >> candidate) & 1ULL) return candidate;
  }
  return kNoPort;  // unreachable
}

}  // namespace ssq::arb
