#include "arb/tdm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ssq::arb {

TdmArbiter::TdmArbiter(std::uint32_t radix, std::vector<InputId> table,
                       std::uint32_t slot_cycles)
    : Arbiter(radix), table_(std::move(table)), slot_cycles_(slot_cycles) {
  SSQ_EXPECT(!table_.empty());
  SSQ_EXPECT(slot_cycles_ >= 1);
  for (InputId owner : table_) {
    SSQ_EXPECT(owner == kNoPort || owner < radix);
  }
}

std::vector<InputId> TdmArbiter::shares_to_table(
    std::uint32_t radix, const std::vector<double>& shares,
    std::uint32_t period) {
  SSQ_EXPECT(shares.size() == radix);
  SSQ_EXPECT(period >= 1);
  double total = 0.0;
  for (double s : shares) {
    SSQ_EXPECT(s >= 0.0);
    total += s;
  }
  SSQ_EXPECT(total > 0.0);

  // Largest-remainder apportionment of `period` slots.
  std::vector<std::uint32_t> slots(radix, 0);
  std::vector<std::pair<double, InputId>> remainders;
  std::uint32_t assigned = 0;
  for (InputId i = 0; i < radix; ++i) {
    const double ideal = shares[i] / total * period;
    slots[i] = static_cast<std::uint32_t>(std::floor(ideal));
    assigned += slots[i];
    remainders.push_back({ideal - std::floor(ideal), i});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < period; ++k) {
    ++slots[remainders[k % remainders.size()].second];
    ++assigned;
  }

  // Interleave the owners round-robin so slots spread across the period.
  std::vector<InputId> table;
  table.reserve(period);
  std::vector<std::uint32_t> left = slots;
  while (table.size() < period) {
    bool placed = false;
    for (InputId i = 0; i < radix && table.size() < period; ++i) {
      if (left[i] > 0) {
        table.push_back(i);
        --left[i];
        placed = true;
      }
    }
    SSQ_ENSURE(placed);
  }
  return table;
}

InputId TdmArbiter::pick(std::span<const Request> requests, Cycle now) {
  check_requests(requests);
  if (now % slot_cycles_ != 0) return kNoPort;  // mid-slot: wait
  const InputId owner = table_[slot_at(now)];
  if (owner == kNoPort) return kNoPort;
  for (const auto& r : requests) {
    if (r.input == owner) return owner;
  }
  return kNoPort;  // owner idle: the whole slot is wasted
}

void TdmArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                          Cycle now) {
  SSQ_EXPECT(now % slot_cycles_ == 0);
  SSQ_EXPECT(input == table_[slot_at(now)]);
}

}  // namespace ssq::arb
