// Exact (infinite-precision) Virtual Clock arbiter [Zhang, SIGCOMM'90] — the
// "Original Virtual Clock" series of the paper's Fig. 5.
//
// Per input flow: a real-valued auxVC and a Vtick (mean inter-packet time at
// the reserved rate, in cycles). Arbitration compares the raw auxVC values
// at full precision; the smallest wins, ties to the lower index. On grant,
// auxVC_i <- max(auxVC_i, now) + Vtick_i — the anti-burst clamp of step 1 of
// the original algorithm, applied at service time (the SSVC paper's own
// reading: the counter "is incremented by Vtick each time a packet is
// transmitted"). Clamping at service rather than at pick matters: a flow
// returning from idleness wins exactly one cheap arbitration before its
// clock snaps to now+Vtick, instead of permanently tying with every other
// backlogged flow at `now` and starving them through the index tie-break.
//
// This is precisely what the paper's SSVC computes, minus the thermometer
// coarsening and the LRG tie-break — which is why Fig. 5 shows it giving
// low-rate flows (large Vtick) much higher latency: a low-rate flow's auxVC
// leaps far ahead after every packet, so at full precision it loses to every
// high-rate flow until real time catches up.
#pragma once

#include <vector>

#include "arb/arbiter.hpp"

namespace ssq::arb {

class VirtualClockArbiter final : public Arbiter {
 public:
  /// `vticks[i]` > 0: cycles of virtual time per packet of input i.
  VirtualClockArbiter(std::uint32_t radix, std::vector<double> vticks);

  [[nodiscard]] InputId pick(std::span<const Request> requests,
                             Cycle now) override;
  void on_grant(InputId input, std::uint32_t length, Cycle now) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "VirtualClock";
  }

  [[nodiscard]] double aux_vc(InputId i) const {
    SSQ_EXPECT(i < radix());
    return vc_[i];
  }
  void set_vtick(InputId i, double vtick) {
    SSQ_EXPECT(i < radix());
    SSQ_EXPECT(vtick > 0.0);
    vticks_[i] = vtick;
  }

 private:
  std::vector<double> vticks_;
  std::vector<double> vc_;
};

}  // namespace ssq::arb
