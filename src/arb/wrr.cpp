#include "arb/wrr.hpp"

namespace ssq::arb {

WrrArbiter::WrrArbiter(std::uint32_t radix, std::vector<std::uint32_t> weights)
    : Arbiter(radix), weights_(std::move(weights)) {
  SSQ_EXPECT(weights_.size() == radix);
  for (auto w : weights_) SSQ_EXPECT(w >= 1);
  credits_ = weights_;
  staged_credits_ = credits_;
}

void WrrArbiter::reset() {
  credits_ = weights_;
  pointer_ = 0;
  staged_winner_ = kNoPort;
}

InputId WrrArbiter::pick(std::span<const Request> requests, Cycle /*now*/) {
  check_requests(requests);
  staged_winner_ = kNoPort;
  if (requests.empty()) return kNoPort;

  std::uint64_t mask = 0;
  for (const auto& r : requests) mask |= 1ULL << r.input;

  staged_credits_ = credits_;
  staged_pointer_ = pointer_;
  // At most one reload is ever needed: after reloading, every requester has
  // credit >= 1 (weights are >= 1).
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (std::uint32_t off = 0; off < radix(); ++off) {
      const InputId candidate = (staged_pointer_ + off) % radix();
      if (((mask >> candidate) & 1ULL) && staged_credits_[candidate] > 0) {
        staged_winner_ = candidate;
        --staged_credits_[candidate];
        // Round-robin within a round: move past the winner.
        staged_pointer_ = (candidate + 1) % radix();
        return candidate;
      }
    }
    // No requester has credit: new round for the current requesters.
    for (const auto& r : requests) staged_credits_[r.input] = weights_[r.input];
  }
  SSQ_ENSURE(false && "WRR reload failed to produce a winner");
  return kNoPort;
}

void WrrArbiter::on_grant(InputId input, std::uint32_t /*length*/,
                          Cycle /*now*/) {
  SSQ_EXPECT(input == staged_winner_);
  credits_ = staged_credits_;
  pointer_ = staged_pointer_;
  staged_winner_ = kNoPort;
}

}  // namespace ssq::arb
