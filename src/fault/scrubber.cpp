#include "fault/scrubber.hpp"

#include "core/output_arbiter.hpp"
#include "sim/contracts.hpp"

namespace ssq::fault {

StateScrubber::StateScrubber(Cycle interval,
                             std::uint32_t quarantine_threshold)
    : interval_(interval), threshold_(quarantine_threshold) {
  SSQ_EXPECT(interval >= 1);
}

void StateScrubber::bind(std::vector<core::OutputQosArbiter*> arbiters) {
  arbs_ = std::move(arbiters);
  lane_faults_.clear();
  lane_faults_.reserve(arbs_.size());
  for (const auto* arb : arbs_) {
    lane_faults_.emplace_back(arb->params().gb_levels(), 0);
  }
}

std::uint32_t StateScrubber::scrub_now(Cycle now) {
  ++passes_;
  std::uint32_t total = 0;
  for (std::size_t o = 0; o < arbs_.size(); ++o) {
    auto& arb = *arbs_[o];
    // Attribute thermometer corruption to lanes before the repair erases it:
    // a transient upset hits a random lane once, a stuck bitline hits the
    // same lane every pass.
    if (threshold_ > 0) {
      for (InputId i = 0; i < arb.radix(); ++i) {
        const auto& code = arb.aux_vc(i).code();
        std::uint64_t diff = code.raw_bits() ^ code.bits();
        while (diff != 0) {
          const auto lane =
              static_cast<std::uint32_t>(__builtin_ctzll(diff));
          diff &= diff - 1;
          ++lane_faults_[o][lane];
        }
      }
    }
    total += arb.scrub(now);
    if (threshold_ > 0) {
      for (std::uint32_t lane = 0; lane < lane_faults_[o].size(); ++lane) {
        if (lane_faults_[o][lane] >= threshold_ &&
            ((arb.quarantined_lanes() >> lane) & 1ULL) == 0) {
          arb.quarantine_lane(lane);
        }
      }
    }
  }
  repairs_ += total;
  return total;
}

}  // namespace ssq::fault
