// FaultInjector — executes a FaultPlan against a switch's arbitration state.
//
// Attached to a CrossbarSwitch through a nullable pointer exactly like the
// SwitchProbe: detached operation costs one branch per hook site. Attached,
// the injector runs once per cycle before injection/arbitration and
//
//   * flips single bits in auxVC registers, thermometer vectors, LRG
//     priority flops and the GL clock at the plan's bitflip rate,
//   * forces stuck bitline lanes by continuously overriding the affected
//     thermometer cells (the behavioural image of a shorted wire),
//   * tracks input-port and crosspoint outages, which the switch consults
//     when selecting requests.
//
// Every realised fault is appended to log() — the replayable schedule — and
// reported through the probe as a FaultInjected event.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ssq::core {
class OutputQosArbiter;
}
namespace ssq::obs {
class SwitchProbe;
}

namespace ssq::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Binds the per-output QoS arbiters the injector corrupts (empty in
  /// baseline mode: only outages apply). Called by
  /// CrossbarSwitch::attach_fault_injector.
  void bind(std::vector<core::OutputQosArbiter*> arbiters,
            std::uint32_t radix);

  /// Observability sink for FaultInjected / PortOutage events (nullable).
  void set_probe(obs::SwitchProbe* probe) noexcept { probe_ = probe; }

  /// Runs one cycle of the plan. Called by the switch at the top of step().
  void on_cycle(Cycle now);

  // ---- event-horizon API (idle-cycle fast-forward) ----
  //
  // The injector's observable actions split into two kinds:
  //   * schedule-driven (outage edges, stuck-lane starts): fire at cycles
  //     known from the plan alone — next_event() reports the earliest one,
  //   * RNG-driven (bitflips): decided by one Bernoulli draw per cycle —
  //     scan_fire() pre-rolls those draws over a candidate jump window and
  //     reports the first firing cycle (pre-rolled outcomes are remembered,
  //     so a later stepped on_cycle() consumes the exact same decision).
  // Stuck-lane *reassertion* needs no horizon: corruption is idempotent and
  // every cycle where arbiter state can change is itself a full step, so
  // reasserting only on stepped cycles is observationally identical.

  /// Earliest plan-scheduled cycle >= now at which the injector must run a
  /// full step (outage at/restore edges, stuck-lane starts). kNoCycle when
  /// the remaining plan is silent.
  [[nodiscard]] Cycle next_event(Cycle now) const noexcept;

  /// True when the per-cycle bitflip Bernoulli stream is live (bound arbiters
  /// and a positive rate) — the stream then constrains fast-forward.
  [[nodiscard]] bool has_bitflip_rng() const noexcept {
    return !arbs_.empty() && plan_.bitflip_rate > 0.0;
  }

  /// Pre-rolls the bitflip Bernoulli draws for cycles [now, limit) and
  /// returns the first cycle that fires, or kNoCycle if none do. Cycles
  /// whose draw has already been decided (by stepping or a previous scan)
  /// are never re-rolled; a pending firing cycle is sticky until the
  /// stepped on_cycle() at that cycle consumes it.
  [[nodiscard]] Cycle scan_fire(Cycle now, Cycle limit);

  // ---- outage queries (switch hot path; call only when attached) ----
  [[nodiscard]] bool port_dead(InputId i) const noexcept {
    return (dead_ports_ >> i) & 1ULL;
  }
  [[nodiscard]] bool link_alive(InputId i, OutputId o) const noexcept {
    return ((dead_links_[i] >> o) & 1ULL) == 0;
  }
  [[nodiscard]] bool any_outage() const noexcept { return any_outage_; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// The realised fault schedule, in injection order.
  [[nodiscard]] const std::vector<InjectedFault>& log() const noexcept {
    return log_;
  }

 private:
  void update_outages(Cycle now);
  void apply_stuck_lanes(Cycle now);
  void inject_bitflip(Cycle now);
  void record(const InjectedFault& f);

  FaultPlan plan_;
  Rng rng_;
  std::vector<core::OutputQosArbiter*> arbs_;
  std::uint32_t radix_ = 0;
  obs::SwitchProbe* probe_ = nullptr;
  std::uint64_t dead_ports_ = 0;
  std::vector<std::uint64_t> dead_links_;  // per input: bitmask of outputs
  bool any_outage_ = false;
  std::vector<InjectedFault> log_;
  // Bitflip pre-roll state: every cycle < rolled_until_ has had its
  // Bernoulli decided; pending_fire_ is the one undelivered firing cycle
  // (kNoCycle if none). Invariant: pending_fire_ == kNoCycle or
  // pending_fire_ < rolled_until_.
  Cycle rolled_until_ = 0;
  Cycle pending_fire_ = kNoCycle;
};

}  // namespace ssq::fault
