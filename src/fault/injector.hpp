// FaultInjector — executes a FaultPlan against a switch's arbitration state.
//
// Attached to a CrossbarSwitch through a nullable pointer exactly like the
// SwitchProbe: detached operation costs one branch per hook site. Attached,
// the injector runs once per cycle before injection/arbitration and
//
//   * flips single bits in auxVC registers, thermometer vectors, LRG
//     priority flops and the GL clock at the plan's bitflip rate,
//   * forces stuck bitline lanes by continuously overriding the affected
//     thermometer cells (the behavioural image of a shorted wire),
//   * tracks input-port and crosspoint outages, which the switch consults
//     when selecting requests.
//
// Every realised fault is appended to log() — the replayable schedule — and
// reported through the probe as a FaultInjected event.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ssq::core {
class OutputQosArbiter;
}
namespace ssq::obs {
class SwitchProbe;
}

namespace ssq::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Binds the per-output QoS arbiters the injector corrupts (empty in
  /// baseline mode: only outages apply). Called by
  /// CrossbarSwitch::attach_fault_injector.
  void bind(std::vector<core::OutputQosArbiter*> arbiters,
            std::uint32_t radix);

  /// Observability sink for FaultInjected / PortOutage events (nullable).
  void set_probe(obs::SwitchProbe* probe) noexcept { probe_ = probe; }

  /// Runs one cycle of the plan. Called by the switch at the top of step().
  void on_cycle(Cycle now);

  // ---- outage queries (switch hot path; call only when attached) ----
  [[nodiscard]] bool port_dead(InputId i) const noexcept {
    return (dead_ports_ >> i) & 1ULL;
  }
  [[nodiscard]] bool link_alive(InputId i, OutputId o) const noexcept {
    return ((dead_links_[i] >> o) & 1ULL) == 0;
  }
  [[nodiscard]] bool any_outage() const noexcept { return any_outage_; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// The realised fault schedule, in injection order.
  [[nodiscard]] const std::vector<InjectedFault>& log() const noexcept {
    return log_;
  }

 private:
  void update_outages(Cycle now);
  void apply_stuck_lanes(Cycle now);
  void inject_bitflip(Cycle now);
  void record(const InjectedFault& f);

  FaultPlan plan_;
  Rng rng_;
  std::vector<core::OutputQosArbiter*> arbs_;
  std::uint32_t radix_ = 0;
  obs::SwitchProbe* probe_ = nullptr;
  std::uint64_t dead_ports_ = 0;
  std::vector<std::uint64_t> dead_links_;  // per input: bitmask of outputs
  bool any_outage_ = false;
  std::vector<InjectedFault> log_;
};

}  // namespace ssq::fault
