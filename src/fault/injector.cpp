#include "fault/injector.hpp"

#include <algorithm>

#include "core/output_arbiter.hpp"
#include "obs/probe.hpp"
#include "sim/contracts.hpp"
#include "sim/error.hpp"

namespace ssq::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::bind(std::vector<core::OutputQosArbiter*> arbiters,
                         std::uint32_t radix) {
  SSQ_EXPECT(radix >= 1 && radix <= 64);
  arbs_ = std::move(arbiters);
  radix_ = radix;
  dead_links_.assign(radix, 0);
  // Plan coordinates come from CLI flags, so bad ones are config errors.
  for (const auto& s : plan_.stuck_lanes) {
    ssq::detail::config_check(
        s.output < radix, "fault plan: stuck-lane output out of range");
    if (!arbs_.empty()) {
      ssq::detail::config_check(
          s.lane < arbs_[s.output]->params().gb_levels(),
          "fault plan: stuck-lane index >= 2^level_bits GB lanes");
    }
  }
  for (const auto& k : plan_.port_kills) {
    ssq::detail::config_check(k.input < radix,
                              "fault plan: kill-port input out of range");
  }
  for (const auto& k : plan_.crosspoint_kills) {
    ssq::detail::config_check(
        k.input < radix && k.output < radix,
        "fault plan: crosspoint-kill coordinates out of range");
  }
}

void FaultInjector::record(const InjectedFault& f) {
  log_.push_back(f);
  if (probe_ != nullptr) {
    probe_->fault_injected(f.cycle, f.output, f.input, f.target, f.bit);
  }
}

void FaultInjector::update_outages(Cycle now) {
  for (const auto& k : plan_.port_kills) {
    if (k.at == now) {
      dead_ports_ |= 1ULL << k.input;
      record({now, obs::kTargetPortKill, kNoPort, k.input, 1});
      if (probe_ != nullptr) probe_->port_outage(now, k.input, /*down=*/true);
    }
    if (k.restore_at == now) {
      dead_ports_ &= ~(1ULL << k.input);
      if (probe_ != nullptr) probe_->port_outage(now, k.input, /*down=*/false);
    }
  }
  for (const auto& k : plan_.crosspoint_kills) {
    if (k.at == now) {
      dead_links_[k.input] |= 1ULL << k.output;
      record({now, obs::kTargetPortKill, k.output, k.input, 1});
    }
    if (k.restore_at == now) dead_links_[k.input] &= ~(1ULL << k.output);
  }
  any_outage_ = dead_ports_ != 0;
  for (const auto m : dead_links_) any_outage_ = any_outage_ || m != 0;
}

void FaultInjector::apply_stuck_lanes(Cycle now) {
  // A stuck wire corrupts continuously: every cycle, any crosspoint whose
  // stored thermometer cell disagrees with the stuck value gets that cell
  // forced — so the scrubber keeps seeing fresh corruption at the same lane
  // until it quarantines it.
  for (const auto& s : plan_.stuck_lanes) {
    if (now < s.at || arbs_.empty()) continue;
    auto& arb = *arbs_[s.output];
    for (InputId i = 0; i < radix_; ++i) {
      const auto& code = arb.aux_vc(i).code();
      const bool reads_high = ((code.raw_bits() >> s.lane) & 1ULL) != 0;
      if (reads_high != s.stuck_high) {
        arb.aux_vc_mut(i).fault_flip_code(s.lane);
        if (now == s.at) {
          record({now, obs::kTargetStuckLane, s.output, i, s.lane});
        }
      }
    }
  }
}

void FaultInjector::inject_bitflip(Cycle now) {
  if (arbs_.empty()) return;
  if (now < rolled_until_) {
    // This cycle's Bernoulli was pre-rolled by scan_fire(); honour it.
    if (pending_fire_ != now) return;
    pending_fire_ = kNoCycle;
  } else {
    rolled_until_ = now + 1;
    if (!rng_.bernoulli(plan_.bitflip_rate)) return;
  }
  // Draw the victim. The draw order is fixed so equal plans replay equal
  // schedules regardless of what the faults do to the switch.
  const auto target = static_cast<std::uint32_t>(rng_.below(4));
  const auto output = static_cast<OutputId>(rng_.below(arbs_.size()));
  const auto input = static_cast<InputId>(rng_.below(radix_));
  const std::uint64_t raw_bit = rng_.below(64);
  auto& arb = *arbs_[output];
  InjectedFault f{now, target, output, input, 0};
  switch (target) {
    case obs::kTargetAuxValue: {
      auto& vc = arb.aux_vc_mut(input);
      f.bit = static_cast<std::uint32_t>(raw_bit % vc.register_bits());
      vc.fault_flip_value(f.bit);
      break;
    }
    case obs::kTargetAuxCode: {
      f.bit = static_cast<std::uint32_t>(raw_bit % arb.params().gb_levels());
      arb.aux_vc_mut(input).fault_flip_code(f.bit);
      break;
    }
    case obs::kTargetLrgRow: {
      // Off-diagonal column: a crosspoint stores only rows against others.
      f.bit = static_cast<std::uint32_t>(raw_bit % radix_);
      if (radix_ > 1 && f.bit == input) f.bit = (f.bit + 1) % radix_;
      arb.lrg().fault_flip(input, f.bit);
      break;
    }
    case obs::kTargetGlClock: {
      f.input = kNoPort;  // the GL clock is shared per output
      f.bit = static_cast<std::uint32_t>(raw_bit % 48);
      arb.gl_tracker_mut().fault_flip(f.bit);
      break;
    }
    default:
      SSQ_EXPECT(false);
  }
  record(f);
}

void FaultInjector::on_cycle(Cycle now) {
  update_outages(now);
  apply_stuck_lanes(now);
  inject_bitflip(now);
}

Cycle FaultInjector::next_event(Cycle now) const noexcept {
  // Static plan schedule only: outage edges and stuck-lane starts are the
  // cycles where update_outages/apply_stuck_lanes do something new. Ongoing
  // stuck-lane reassertion is idempotent and therefore horizon-free (see the
  // header); bitflips are covered separately by scan_fire().
  Cycle next = kNoCycle;
  const auto consider = [&](Cycle at) {
    if (at != kNoCycle && at >= now && at < next) next = at;
  };
  for (const auto& k : plan_.port_kills) {
    consider(k.at);
    consider(k.restore_at);
  }
  for (const auto& k : plan_.crosspoint_kills) {
    consider(k.at);
    consider(k.restore_at);
  }
  for (const auto& s : plan_.stuck_lanes) consider(s.at);
  return next;
}

Cycle FaultInjector::scan_fire(Cycle now, Cycle limit) {
  if (pending_fire_ != kNoCycle) {
    return pending_fire_ >= now && pending_fire_ < limit ? pending_fire_
                                                         : kNoCycle;
  }
  // Roll forward from wherever the stream last stopped; cycles before `now`
  // were already consumed by stepping. One Bernoulli per cycle, in cycle
  // order — exactly the draws a stepped run would make, so a jumped run and
  // a stepped run consume the same stream.
  for (Cycle c = std::max(now, rolled_until_); c < limit; ++c) {
    if (rng_.bernoulli(plan_.bitflip_rate)) {
      pending_fire_ = c;
      rolled_until_ = c + 1;
      return c;
    }
  }
  rolled_until_ = std::max(rolled_until_, limit);
  return kNoCycle;
}

}  // namespace ssq::fault
