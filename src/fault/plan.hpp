// Deterministic fault plan — the schedule and rates a FaultInjector executes.
//
// A plan is pure data: a seed, a per-cycle single-event-upset rate, and
// scheduled hard faults (stuck bitline lanes, input-port and crosspoint
// outages). Two injectors built from equal plans against equal switches
// realise bit-identical fault schedules, which is what makes chaos runs
// replayable (`--fault-seed`) and the golden-replay test possible.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ssq::fault {

/// A GB bitline lane of one output hard-stuck from cycle `at` on.
/// stuck_high: the lane reads occupied for every crosspoint (stuck-at-1);
/// otherwise it reads empty (stuck-at-0).
struct StuckLane {
  OutputId output = 0;
  std::uint32_t lane = 0;
  bool stuck_high = true;
  Cycle at = 0;
};

/// Input port `input` dead in [at, restore_at): no admission, no requests.
/// restore_at == kNoCycle means the outage is permanent.
struct PortKill {
  InputId input = 0;
  Cycle at = 0;
  Cycle restore_at = kNoCycle;
};

/// Crosspoint (input, output) dead in [at, restore_at): the input never
/// requests that output; traffic for it backs up or is rerouted upstream.
struct CrosspointKill {
  InputId input = 0;
  OutputId output = 0;
  Cycle at = 0;
  Cycle restore_at = kNoCycle;
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  /// Per-cycle probability that one single-bit upset strikes the switch.
  /// The victim structure (auxVC register, thermometer cell, LRG priority
  /// flop, GL clock) and bit position are drawn uniformly from the seed.
  double bitflip_rate = 0.0;
  std::vector<StuckLane> stuck_lanes;
  std::vector<PortKill> port_kills;
  std::vector<CrosspointKill> crosspoint_kills;

  [[nodiscard]] bool empty() const noexcept {
    return bitflip_rate <= 0.0 && stuck_lanes.empty() && port_kills.empty() &&
           crosspoint_kills.empty();
  }
};

/// One realised fault, appended to the injector's log — the replayable
/// schedule the golden-replay test compares across runs.
struct InjectedFault {
  Cycle cycle = 0;
  std::uint32_t target = 0;  // obs::kTarget* constant
  OutputId output = kNoPort;
  InputId input = kNoPort;
  std::uint32_t bit = 0;  // bit / lane / column, per target

  friend bool operator==(const InjectedFault&, const InjectedFault&) = default;
};

}  // namespace ssq::fault
