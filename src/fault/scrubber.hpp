// StateScrubber — the periodic recovery engine pairing the FaultInjector.
//
// Every `interval` cycles the scrubber walks each output's arbitration
// state and repairs what the invariants catch (see
// OutputQosArbiter::scrub): auxVC parity and thermometer/level agreement,
// LRG total order, and the GL clock's policing bound. Before repairing, it
// attributes thermometer corruption to lanes; a lane that keeps showing
// corruption pass after pass (a stuck bitline, not a transient upset) is
// quarantined — taken out of service via the arbiter's level remap — once
// its count reaches the threshold. Repairs and quarantines surface through
// the arbiter's probe as ScrubRepair / LaneQuarantined events and metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ssq::core {
class OutputQosArbiter;
}

namespace ssq::fault {

class StateScrubber {
 public:
  /// `interval` >= 1 cycles between passes. `quarantine_threshold` is the
  /// number of corrupted reads observed at one (output, lane) before that
  /// lane is quarantined; 0 disables quarantine.
  explicit StateScrubber(Cycle interval, std::uint32_t quarantine_threshold = 4);

  /// Binds the per-output QoS arbiters (empty = scrubbing is a no-op).
  void bind(std::vector<core::OutputQosArbiter*> arbiters);

  /// Runs a pass when `now` reaches the next scheduled one. Called by the
  /// switch at the top of step().
  void on_cycle(Cycle now) {
    if (now >= next_) {
      scrub_now(now);
      next_ = now + interval_;
    }
  }

  /// Forces a pass immediately; returns the number of repairs it made.
  std::uint32_t scrub_now(Cycle now);

  /// Event horizon for idle-cycle fast-forward: the cycle of the next
  /// scheduled pass. A fast-forwarding switch must take a full step at this
  /// cycle so the pass (and its quarantine counting) runs exactly when a
  /// stepped run would have run it.
  [[nodiscard]] Cycle next_event() const noexcept { return next_; }

  [[nodiscard]] Cycle interval() const noexcept { return interval_; }
  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }

 private:
  Cycle interval_;
  std::uint32_t threshold_;
  Cycle next_ = 0;
  std::vector<core::OutputQosArbiter*> arbs_;
  std::vector<std::vector<std::uint32_t>> lane_faults_;  // [output][lane]
  std::uint64_t passes_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace ssq::fault
