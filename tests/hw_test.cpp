// Tests for src/hw: the Table 1 storage reconstruction, the §4.5 area
// claims, and the Table 2 timing-model anchors and monotonic shape.
#include <gtest/gtest.h>

#include "hw/area_model.hpp"
#include "hw/energy_model.hpp"
#include "hw/storage_model.hpp"
#include "hw/timing_model.hpp"

namespace ssq::hw {
namespace {

// ------------------------------------------------------------ Table 1 ----

TEST(StorageModelTest, Table1WorstCase) {
  // 64x64 switch, 512-bit output buses, 64-byte flits, 4-flit buffers.
  const StorageParams p{};  // defaults are exactly the Table 1 configuration
  const auto b = compute_storage(p);

  EXPECT_DOUBLE_EQ(b.be_buffer_bytes, 256.0);
  EXPECT_DOUBLE_EQ(b.gb_buffer_bytes, 16384.0);  // 4 flits/out x 64 outs x 64B
  EXPECT_DOUBLE_EQ(b.gl_buffer_bytes, 256.0);
  EXPECT_DOUBLE_EQ(b.total_buffering_kib(), 1056.0);  // "1,056 K"

  EXPECT_DOUBLE_EQ(b.aux_vc_bytes, 1.375);       // 3+8 bits
  EXPECT_DOUBLE_EQ(b.thermometer_bytes, 1.0);    // 8 bits
  EXPECT_DOUBLE_EQ(b.vtick_bytes, 1.0);          // 8 bits
  EXPECT_DOUBLE_EQ(b.lrg_bytes, 7.875);          // 63 bits
  EXPECT_EQ(b.num_crosspoints, 4096u);
  EXPECT_DOUBLE_EQ(b.total_crosspoint_kib(), 45.0);  // "45 K"

  EXPECT_DOUBLE_EQ(b.total_kib(), 1101.0);  // "1,101 K" — about 1 MB
}

TEST(StorageModelTest, BufferingDominatesCrosspointState) {
  const auto b = compute_storage(StorageParams{});
  EXPECT_GT(b.total_buffering_bytes, 20.0 * b.total_crosspoint_bytes);
}

TEST(StorageModelTest, ScalesWithRadix) {
  StorageParams p{};
  p.radix = 8;
  const auto small = compute_storage(p);
  const auto large = compute_storage(StorageParams{});
  // Crosspoint state grows ~quadratically with radix.
  EXPECT_GT(large.total_crosspoint_bytes, 40.0 * small.total_crosspoint_bytes);
  // Per-crosspoint LRG row shrinks with radix.
  EXPECT_DOUBLE_EQ(small.lrg_bytes, 7.0 / 8.0);
}

// --------------------------------------------------------- Area model ----

TEST(AreaModelTest, PaperClaims) {
  EXPECT_NEAR(ssvc_area_overhead(128), 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(ssvc_area_overhead(256), 0.0);
  EXPECT_DOUBLE_EQ(ssvc_area_overhead(512), 0.0);
  // "equivalent to the area of a 131-bit channel"
  EXPECT_NEAR(ssvc_equivalent_channel_bits(128), 130.56, 0.01);
  EXPECT_DOUBLE_EQ(ssvc_equivalent_channel_bits(512), 512.0);
}

TEST(AreaModelTest, NarrowerChannelsPayMore) {
  EXPECT_GT(ssvc_area_overhead(64), ssvc_area_overhead(128));
}

// ------------------------------------------------------- Energy model ----

TEST(EnergyModelTest, ScalesWithDischargesAndRadix) {
  EXPECT_DOUBLE_EQ(arbitration_energy_pj(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(arbitration_energy_pj(64, 64), 64.0);  // reference point
  // Shorter bitlines (smaller radix) cost proportionally less per wire.
  EXPECT_DOUBLE_EQ(arbitration_energy_pj(10, 8),
                   arbitration_energy_pj(10, 64) / 8.0);
  EXPECT_GT(arbitration_energy_pj(100, 16), arbitration_energy_pj(50, 16));
}

// ------------------------------------------------------------ Table 2 ----

TEST(TimingModelTest, AnchorsReproduced) {
  const TimingModel m;
  // [16]: 64x64 Swizzle Switch at 1.5 GHz (128-bit channels).
  EXPECT_NEAR(m.ss_freq_ghz(64, 128), 1.5, 1e-9);
  // §4.5: "The worst slowdown is 8.4% for the 256-bit channel, 8x8".
  EXPECT_NEAR(m.slowdown(8, 256), 0.084, 1e-9);
}

TEST(TimingModelTest, WorstSlowdownIsAtRadix8By256) {
  const TimingModel m;
  const double worst = m.slowdown(8, 256);
  for (std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t width : {128u, 256u, 512u}) {
      EXPECT_LE(m.slowdown(radix, width), worst + 1e-12)
          << radix << "x" << width;
    }
  }
}

TEST(TimingModelTest, FrequencyFallsWithRadixAndWidth) {
  const TimingModel m;
  for (std::uint32_t width : {128u, 256u, 512u}) {
    EXPECT_GT(m.ss_freq_ghz(8, width), m.ss_freq_ghz(16, width));
    EXPECT_GT(m.ss_freq_ghz(16, width), m.ss_freq_ghz(32, width));
    EXPECT_GT(m.ss_freq_ghz(32, width), m.ss_freq_ghz(64, width));
  }
  for (std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    EXPECT_GT(m.ss_freq_ghz(radix, 128), m.ss_freq_ghz(radix, 256));
    EXPECT_GT(m.ss_freq_ghz(radix, 256), m.ss_freq_ghz(radix, 512));
  }
}

TEST(TimingModelTest, SsvcAlwaysSlowerButBounded) {
  const TimingModel m;
  for (std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t width : {128u, 256u, 512u}) {
      const double s = m.slowdown(radix, width);
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 0.084 + 1e-12);
      EXPECT_LT(m.ssvc_freq_ghz(radix, width), m.ss_freq_ghz(radix, width));
    }
  }
}

TEST(TimingModelTest, LargeSwitchesBarelyNoticeSsvc) {
  const TimingModel m;
  // At 64x64 the wire delay dominates; the mux adds ~1 %.
  EXPECT_LT(m.slowdown(64, 128), 0.02);
}

}  // namespace
}  // namespace ssq::hw
