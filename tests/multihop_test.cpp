// Tests for src/multihop: the two-stage composed network that demonstrates
// §4.4's scalability argument — aggregate guarantees survive composition,
// per-flow separation inside a group does not.
#include <gtest/gtest.h>

#include "multihop/two_stage.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace ssq::multihop {
namespace {

HopFlow gb(std::uint32_t node, OutputId dest, double rate,
           double inject_rate, std::uint32_t len = 8) {
  HopFlow f;
  f.node = node;
  f.dest = dest;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.packet_len = len;
  f.inject = traffic::InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

TwoStageConfig small_config() {
  TwoStageConfig c;
  c.groups = 4;
  c.nodes_per_group = 4;
  c.dests = 4;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_shift = 2;
  c.seed = 5;
  return c;
}

TEST(TwoStageTest, UncontendedDeliveryAcrossTwoHops) {
  HopFlow f = gb(0, 3, 0.5, 0.05);
  f.inject = traffic::InjectKind::Periodic;
  TwoStageNetwork net(small_config(), {f});
  net.warmup(0);
  net.measure(4000);
  ASSERT_GT(net.delivered_packets(0), 10u);
  // Two hops, each 1 arbitration + 8 transfer cycles, plus the hand-off.
  EXPECT_GE(net.latency().flow_summary(0).mean(), 16.0);
  EXPECT_LE(net.latency().flow_summary(0).mean(), 24.0);
  EXPECT_NEAR(net.throughput().rate(0), 0.05, 0.01);
}

TEST(TwoStageTest, ThroughputConservationAtOneDestination) {
  // Four groups saturate destination 0; it can deliver at most 8/9.
  std::vector<HopFlow> flows;
  for (std::uint32_t g = 0; g < 4; ++g) {
    flows.push_back(gb(g * 4, 0, 0.2, 0.9));
  }
  TwoStageNetwork net(small_config(), flows);
  net.warmup(3000);
  net.measure(30000);
  double total = 0.0;
  for (std::size_t f = 0; f < 4; ++f) total += net.throughput().rate(f);
  EXPECT_LE(total, 8.0 / 9.0 + 0.01);
  EXPECT_GT(total, 8.0 / 9.0 - 0.03);
}

TEST(TwoStageTest, AggregateGroupGuaranteeSurvivesComposition) {
  // Group 0 reserves 0.4 of dest 0 (two flows); groups 1..3 reserve 0.15
  // each and are saturated. The group-0 AGGREGATE must still get ~0.4 of
  // the delivered total.
  std::vector<HopFlow> flows;
  flows.push_back(gb(0, 0, 0.30, 0.9));
  flows.push_back(gb(1, 0, 0.10, 0.9));
  for (std::uint32_t g = 1; g < 4; ++g) {
    flows.push_back(gb(g * 4, 0, 0.15, 0.9));
  }
  TwoStageNetwork net(small_config(), flows);
  net.warmup(5000);
  net.measure(60000);
  const double group0 = net.throughput().rate(0) + net.throughput().rate(1);
  double total = group0;
  for (std::size_t f = 2; f < 5; ++f) total += net.throughput().rate(f);
  EXPECT_GE(group0, 0.40 * total * 0.9);
}

TEST(TwoStageTest, PerFlowSeparationLostAtSharedCrosspoint) {
  // §4.4's warning, measured: "Crosspoints will have to be shared by
  // several flows." Node 0 sends flow A to dest 0 (30 % reservation) and
  // flow B to dest 1 (5 % reservation, greedy). Both share the single
  // (node0, uplink) crosspoint and its one GB FIFO; the uplink arbiter can
  // only see node 0's aggregate (35 %), so when node 1 congests the uplink,
  // A and B split node 0's share ~evenly and A misses its guarantee. The
  // same flows through a single-stage switch keep distinct crosspoints and
  // their reservations.
  std::vector<HopFlow> flows;
  flows.push_back(gb(0, 0, 0.30, 0.35));  // A: wants its full 0.30
  flows.push_back(gb(0, 1, 0.05, 0.35));  // B: greedy 7x over-subscriber
  flows.push_back(gb(1, 0, 0.30, 0.40));  // congests the shared uplink
  TwoStageNetwork net(small_config(), flows);
  net.warmup(5000);
  net.measure(60000);
  const double a_composed = net.throughput().rate(0);
  const double b_composed = net.throughput().rate(1);
  // Violation: A gets well below its 0.30 reservation...
  EXPECT_LT(a_composed, 0.27);
  // ...because B rides the shared crosspoint to ~equal service.
  EXPECT_GT(b_composed, 3.0 * 0.05);

  // Reference: the same flows through one radix-16 SSVC switch, where
  // (input0, out0) and (input0, out1) are distinct crosspoints.
  traffic::Workload w(16);
  auto add = [&w](InputId src, OutputId dst, double rate, double inject) {
    traffic::FlowSpec f;
    f.src = src;
    f.dst = dst;
    f.cls = TrafficClass::GuaranteedBandwidth;
    f.reserved_rate = rate;
    f.len_min = f.len_max = 8;
    f.inject = traffic::InjectKind::Bernoulli;
    f.inject_rate = inject;
    return w.add_flow(f);
  };
  const FlowId a = add(0, 0, 0.30, 0.35);
  add(0, 1, 0.05, 0.35);
  add(1, 0, 0.30, 0.40);
  sw::SwitchConfig c;
  c.radix = 16;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_shift = 2;
  c.seed = 5;
  const auto r = sw::run_experiment(c, std::move(w), 5000, 60000);
  EXPECT_GT(r.flows[a].accepted_rate, 0.32);  // single switch: full offer
}

TEST(TwoStageTest, BeYieldsToGbAcrossHops) {
  std::vector<HopFlow> flows;
  flows.push_back(gb(0, 0, 0.6, 0.6));
  HopFlow be;
  be.node = 1;  // same group: contends at the uplink AND at the destination
  be.dest = 0;
  be.cls = TrafficClass::BestEffort;
  be.packet_len = 8;
  be.inject = traffic::InjectKind::Bernoulli;
  be.inject_rate = 0.8;
  flows.push_back(be);
  TwoStageNetwork net(small_config(), flows);
  net.warmup(3000);
  net.measure(40000);
  EXPECT_NEAR(net.throughput().rate(0), 0.6, 0.04);
  EXPECT_GT(net.throughput().rate(1), 0.02);  // scavenges leftover
}

TEST(TwoStageTest, Deterministic) {
  auto run = [] {
    std::vector<HopFlow> flows = {gb(0, 0, 0.3, 0.5), gb(5, 0, 0.3, 0.5)};
    TwoStageNetwork net(small_config(), flows);
    net.warmup(1000);
    net.measure(10000);
    return std::pair{net.delivered_packets(0), net.delivered_packets(1)};
  };
  EXPECT_EQ(run(), run());
}

TEST(TwoStageDeathTest, GlFlowsRejected) {
  HopFlow f = gb(0, 0, 0.1, 0.1);
  f.cls = TrafficClass::GuaranteedLatency;
  EXPECT_DEATH(TwoStageNetwork(small_config(), {f}), "BE/GB only");
}

TEST(TwoStageDeathTest, OverSubscribedUplinkRejected) {
  std::vector<HopFlow> flows = {gb(0, 0, 0.6, 0.1), gb(1, 1, 0.6, 0.1)};
  EXPECT_DEATH(TwoStageNetwork(small_config(), flows), "uplink");
}

}  // namespace
}  // namespace ssq::multihop
