// Golden-trace regression corpus: every committed scenario under
// tests/golden/ must replay to a byte-exact copy of its committed .trace
// file, and the clean ones must pass the full differential check. A
// legitimate behaviour change shows up here as a readable trace diff;
// regenerate with
//   ssq_fuzz --replay=tests/golden/NAME.scenario --trace=tests/golden/NAME.trace
// and review the diff like any other code change (docs/TESTING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arb/matching.hpp"
#include "check/scenario.hpp"
#include "check/trace.hpp"

namespace ssq::check {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SSQ_GOLDEN_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Golden, CorpusCoversTheFeatureMatrix) {
  const auto files = corpus();
  ASSERT_GE(files.size(), 9u) << "golden corpus shrank below 9 scenarios";

  bool any_fault = false;
  bool any_clean = false;
  bool any_gl = false;
  std::uint32_t min_radix = 64;
  std::uint32_t max_radix = 2;
  std::uint64_t engines = 0;  // bitmask over arb::MatchKind values
  for (const auto& f : files) {
    const Scenario s = load_scenario(f.string());
    min_radix = std::min(min_radix, s.radix);
    max_radix = std::max(max_radix, s.radix);
    any_fault |= s.has_faults();
    any_clean |= !s.has_faults();
    engines |= 1ULL << static_cast<unsigned>(s.matching_engine);
    for (const auto& fl : s.flows) {
      any_gl |= fl.cls == TrafficClass::GuaranteedLatency;
    }
  }
  EXPECT_LE(min_radix, 8u);
  EXPECT_GE(max_radix, 64u);
  EXPECT_TRUE(any_fault) << "corpus needs a fault-injected scenario";
  EXPECT_TRUE(any_clean) << "corpus needs clean scenarios";
  EXPECT_TRUE(any_gl) << "corpus needs GL traffic";
  for (const auto kind : {arb::MatchKind::None, arb::MatchKind::Islip,
                          arb::MatchKind::Qps, arb::MatchKind::SwQps}) {
    EXPECT_NE(engines & (1ULL << static_cast<unsigned>(kind)), 0u)
        << "corpus needs a scenario on engine '" << arb::match_kind_name(kind)
        << "'";
  }
}

TEST(Golden, TracesReplayByteExactly) {
  for (const auto& file : corpus()) {
    const Scenario s = load_scenario(file.string());
    fs::path trace_file = file;
    trace_file.replace_extension(".trace");
    ASSERT_TRUE(fs::exists(trace_file))
        << file << " has no committed .trace — generate one with ssq_fuzz "
                   "--replay --trace";
    const std::string expected = slurp(trace_file);
    const std::string actual = golden_trace(s);
    // Byte equality; on mismatch point at the first differing line rather
    // than dumping two multi-thousand-line traces.
    if (actual != expected) {
      std::istringstream ia(actual), ie(expected);
      std::string la, le;
      std::size_t line = 0;
      while (true) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(ia, la));
        const bool ge = static_cast<bool>(std::getline(ie, le));
        if (!ga && !ge) break;
        ASSERT_EQ(ga, ge) << s.name << ": trace length differs at line "
                          << line;
        ASSERT_EQ(la, le) << s.name << ": first divergence at line " << line;
      }
      FAIL() << s.name << ": traces differ";  // unreachable belt-and-braces
    }
  }
}

TEST(Golden, TracesInvariantAcrossKernelAndFastForward) {
  // The committed traces are the ground truth for ALL arbitration kernels,
  // for idle-cycle fast-forward on/off, AND for both step pipelines
  // (compile-time specialized vs fully dynamic): a bug in any of them that
  // shifts a single grant or event timestamp shows up as a corpus diff.
  for (const auto& file : corpus()) {
    Scenario s = load_scenario(file.string());
    fs::path trace_file = file;
    trace_file.replace_extension(".trace");
    const std::string expected = slurp(trace_file);
    for (const auto kernel :
         {core::ArbKernel::Scalar, core::ArbKernel::Bitsliced,
          core::ArbKernel::Simd}) {
      for (const bool ff : {false, true}) {
        for (const bool specialize : {false, true}) {
          s.kernel = kernel;
          s.fast_forward = ff;
          s.specialize = specialize;
          EXPECT_EQ(golden_trace(s), expected)
              << s.name << " kernel=" << core::to_string(kernel)
              << " fast_forward=" << ff << " specialize=" << specialize;
        }
      }
    }
  }
}

TEST(Golden, CleanScenariosPassTheDifferentialCheck) {
  std::uint64_t grants = 0;
  for (const auto& file : corpus()) {
    const Scenario s = load_scenario(file.string());
    const RunResult r = run_scenario(s);
    EXPECT_FALSE(r.failed) << s.name << ": " << r.kind << " at cycle "
                           << r.fail_cycle << "\n" << r.detail;
    grants += r.grants_checked;
  }
  EXPECT_GT(grants, 5000u) << "corpus exercises too little arbitration";
}

}  // namespace
}  // namespace ssq::check
