// Property tests for the bit-sliced arbitration kernel.
//
// The packed lane-mask mirrors (OutputQosArbiter::lane_mask) are maintained
// incrementally — epoch wraps shift them, halve/reset management transforms
// them, grants re-slot single bits — instead of being recomputed from the
// per-input auxVC counters. These tests drive randomized sequences of every
// event that can move a counter (grants, epoch wraps, counter-policy
// management, lane quarantines, injected faults, scrub repairs) and assert
// the documented invariant: after resync_lane_masks(), bit i of lane_mask(m)
// is set iff aux_vc(i).arb_level() == m, with every input in exactly one
// lane. A second suite pits twin scalar/bitsliced arbiters against identical
// request streams and requires identical winners, and a third re-checks the
// mirrors inside full switch runs produced by the fuzz scenario generator.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "check/scenario.hpp"
#include "core/allocation.hpp"
#include "core/output_arbiter.hpp"
#include "core/params.hpp"
#include "sim/rng.hpp"
#include "switch/crossbar.hpp"

namespace ssq::core {
namespace {

SsvcParams small_params(CounterPolicy policy) {
  SsvcParams p;
  // Narrow registers so epoch wraps and saturation events fire every few
  // dozen cycles instead of every few thousand.
  p.level_bits = 2;
  p.lsb_bits = 5;
  p.policy = policy;
  return p;
}

OutputAllocation full_gb_alloc(std::uint32_t radix) {
  OutputAllocation alloc = OutputAllocation::none(radix);
  for (std::uint32_t i = 0; i < radix; ++i) {
    alloc.gb_rate[i] = 0.8 / static_cast<double>(radix);
  }
  alloc.gb_packet_len = 4;
  alloc.gl_rate = 0.1;
  alloc.gl_packet_len = 4;
  return alloc;
}

/// The invariant under test: resync puts every input's bit in exactly the
/// lane equal to its raw sensed thermometer level.
void expect_mirrors_exact(OutputQosArbiter& arb, const char* context) {
  arb.resync_lane_masks();
  const std::uint32_t lanes = arb.params().gb_levels();
  std::uint64_t seen = 0;
  for (std::uint32_t m = 0; m < lanes; ++m) {
    const std::uint64_t mask = arb.lane_mask(m);
    EXPECT_EQ(seen & mask, 0u)
        << context << ": input present in two lanes (lane " << m << ")";
    seen |= mask;
    for (std::uint64_t w = mask; w != 0; w &= w - 1) {
      const auto i = static_cast<InputId>(std::countr_zero(w));
      EXPECT_EQ(arb.aux_vc(i).arb_level(), m)
          << context << ": lane_mask(" << m << ") claims input " << i
          << " but its raw level is " << arb.aux_vc(i).arb_level();
    }
  }
  for (InputId i = 0; i < arb.radix(); ++i) {
    EXPECT_NE(seen & (1ULL << i), 0u)
        << context << ": input " << i << " is in no lane at all";
  }
}

/// Drives one arbiter through `steps` random events drawn from `rng`.
/// Returns the number of mirror checks performed (sanity that the loop ran).
int drive_random_events(OutputQosArbiter& arb, Rng& rng, int steps,
                        const char* context) {
  const std::uint32_t radix = arb.radix();
  const std::uint32_t lanes = arb.params().gb_levels();
  Cycle now = 0;
  int checks = 0;
  for (int step = 0; step < steps; ++step) {
    // Jumps up to ~2 epochs ahead so multi-wrap advance_to paths run too.
    now += rng.below(2 * arb.params().epoch_cycles() + 1);
    arb.advance_to(now);
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2: {  // GB grant burst — drives levels up until saturation
        const auto i = static_cast<InputId>(rng.below(radix));
        const auto burst = 1 + rng.below(4);
        for (std::uint64_t b = 0; b < burst; ++b) {
          arb.on_grant(i, TrafficClass::GuaranteedBandwidth,
                       1 + static_cast<std::uint32_t>(rng.below(8)), now);
        }
        break;
      }
      case 3: {  // BE grant — moves LRG only; mirrors must not move
        arb.on_grant(static_cast<InputId>(rng.below(radix)),
                     TrafficClass::BestEffort,
                     1 + static_cast<std::uint32_t>(rng.below(8)), now);
        break;
      }
      case 4: {  // lane quarantine (remaps sensed levels, not raw mirrors)
        arb.quarantine_lane(static_cast<std::uint32_t>(rng.below(lanes)));
        break;
      }
      case 5: {  // fault: flip a stored-value bit behind the mirror's back
        auto& vc = arb.aux_vc_mut(static_cast<InputId>(rng.below(radix)));
        vc.fault_flip_value(static_cast<std::uint32_t>(
            rng.below(arb.params().level_bits + arb.params().lsb_bits)));
        break;
      }
      case 6: {  // fault: corrupt the thermometer code itself
        auto& vc = arb.aux_vc_mut(static_cast<InputId>(rng.below(radix)));
        vc.fault_flip_code(static_cast<std::uint32_t>(rng.below(lanes)));
        break;
      }
      case 7: {  // scrub pass — repairs corruption, may rewrite levels
        arb.scrub(now);
        break;
      }
    }
    if (step % 5 == 0) {
      expect_mirrors_exact(arb, context);
      ++checks;
    }
  }
  expect_mirrors_exact(arb, context);
  return checks + 1;
}

TEST(KernelMirror, RandomEventSequencesKeepMirrorsExact) {
  const std::array<CounterPolicy, 3> policies = {
      CounterPolicy::SubtractRealClock, CounterPolicy::Halve,
      CounterPolicy::Reset};
  const std::array<std::uint32_t, 3> radices = {5, 17, 64};
  Rng rng(0xbead5);
  for (const CounterPolicy policy : policies) {
    for (const std::uint32_t radix : radices) {
      OutputQosArbiter arb(radix, small_params(policy), full_gb_alloc(radix),
                           GlPolicing::Stall, 32, ArbKernel::Bitsliced);
      const int checks =
          drive_random_events(arb, rng, 400, to_string(policy));
      EXPECT_GT(checks, 50);
      if (HasFailure()) return;  // one broken trial floods the log
    }
  }
}

TEST(KernelMirror, EpochWrapShiftsEveryOccupiedLane) {
  // Deterministic wrap check: park inputs on distinct levels, cross exactly
  // one epoch boundary, and require every mirror bit to have shifted down in
  // lock-step with the counters.
  const std::uint32_t radix = 8;
  OutputQosArbiter arb(radix, small_params(CounterPolicy::SubtractRealClock),
                       full_gb_alloc(radix), GlPolicing::Stall, 32,
                       ArbKernel::Bitsliced);
  arb.advance_to(0);
  for (InputId i = 0; i < radix; ++i) {
    for (InputId g = 0; g <= i; ++g) {
      arb.on_grant(i, TrafficClass::GuaranteedBandwidth, 8, 0);
    }
  }
  expect_mirrors_exact(arb, "pre-wrap");
  std::vector<std::uint32_t> before(radix);
  for (InputId i = 0; i < radix; ++i) before[i] = arb.aux_vc(i).arb_level();

  arb.advance_to(arb.params().epoch_cycles());
  expect_mirrors_exact(arb, "post-wrap");
  for (InputId i = 0; i < radix; ++i) {
    EXPECT_LE(arb.aux_vc(i).arb_level(), before[i]) << "input " << i;
  }
}

TEST(KernelMirror, CorruptedInputStaysDirtyUntilScrubbed) {
  const std::uint32_t radix = 8;
  OutputQosArbiter arb(radix, small_params(CounterPolicy::SubtractRealClock),
                       full_gb_alloc(radix), GlPolicing::Stall, 32,
                       ArbKernel::Bitsliced);
  arb.advance_to(0);
  arb.aux_vc_mut(3).fault_flip_code(1);
  ASSERT_TRUE(arb.aux_vc(3).corrupted());

  // Resync re-slots the bit to the corrupted read — but the input must stay
  // on the dirty list (the XOR overlay is pinned to physical cells, so the
  // incremental transforms no longer track it).
  expect_mirrors_exact(arb, "corrupted");
  EXPECT_NE(arb.dirty_inputs() & (1ULL << 3), 0u);

  const std::uint32_t repairs = arb.scrub(0);
  EXPECT_GE(repairs, 1u);
  expect_mirrors_exact(arb, "scrubbed");
  arb.resync_lane_masks();
  EXPECT_EQ(arb.dirty_inputs(), 0u);
}

// ---- scalar vs bit-sliced pick equivalence --------------------------------

TEST(KernelEquivalence, TwinArbitersAgreeOnEveryPick) {
  const std::array<GlPolicing, 2> policings = {GlPolicing::Stall,
                                               GlPolicing::Demote};
  Rng rng(0xface7);
  for (const GlPolicing policing : policings) {
    for (const std::uint32_t radix : {3u, 16u, 64u}) {
      const SsvcParams params = small_params(CounterPolicy::Halve);
      const OutputAllocation alloc = full_gb_alloc(radix);
      OutputQosArbiter scalar(radix, params, alloc, policing, 4,
                              ArbKernel::Scalar);
      OutputQosArbiter sliced(radix, params, alloc, policing, 4,
                              ArbKernel::Bitsliced);
      OutputQosArbiter vec(radix, params, alloc, policing, 4,
                           ArbKernel::Simd);
      ASSERT_EQ(scalar.kernel(), ArbKernel::Scalar);
      ASSERT_EQ(sliced.kernel(), ArbKernel::Bitsliced);
      ASSERT_EQ(vec.kernel(), ArbKernel::Simd);

      Cycle now = 0;
      std::vector<ClassRequest> reqs;
      for (int round = 0; round < 600; ++round) {
        now += rng.below(40);
        scalar.advance_to(now);
        sliced.advance_to(now);
        vec.advance_to(now);

        reqs.clear();
        for (InputId i = 0; i < radix; ++i) {
          if (!rng.bernoulli(0.4)) continue;
          const std::uint64_t c = rng.below(3);
          reqs.push_back({i,
                          c == 0   ? TrafficClass::GuaranteedLatency
                          : c == 1 ? TrafficClass::GuaranteedBandwidth
                                   : TrafficClass::BestEffort,
                          1 + static_cast<std::uint32_t>(rng.below(8))});
        }

        const InputId w1 = scalar.pick(reqs, now);
        const InputId w2 = sliced.pick(reqs, now);
        const InputId w3 = vec.pick(reqs, now);
        ASSERT_EQ(w1, w2) << "round " << round << " radix " << radix;
        ASSERT_EQ(w1, w3) << "round " << round << " radix " << radix
                          << " (simd)";
        if (w1 == kNoPort) continue;
        ASSERT_EQ(scalar.picked_class(), sliced.picked_class())
            << "round " << round;
        ASSERT_EQ(scalar.picked_class(), vec.picked_class())
            << "round " << round << " (simd)";
        // Apply the grant to ALL so state stays in lock-step; the granted
        // class is the post-policing one (a demoted GL charges as BE).
        std::uint32_t len = 1;
        for (const auto& r : reqs) {
          if (r.input == w1) len = r.length;
        }
        scalar.on_grant(w1, scalar.picked_class(), len, now);
        sliced.on_grant(w1, sliced.picked_class(), len, now);
        vec.on_grant(w1, vec.picked_class(), len, now);
      }
      // Final cross-check: identical internal levels after 600 rounds.
      for (InputId i = 0; i < radix; ++i) {
        EXPECT_EQ(scalar.aux_vc(i).arb_level(), sliced.aux_vc(i).arb_level())
            << "input " << i;
        EXPECT_EQ(scalar.aux_vc(i).arb_level(), vec.aux_vc(i).arb_level())
            << "input " << i << " (simd)";
      }
      expect_mirrors_exact(sliced, "twin-final");
      expect_mirrors_exact(vec, "twin-final-simd");
    }
  }
}

TEST(KernelEquivalence, SimdAgreesWithBitslicedUnderFaultsAndQuarantine) {
  // The SIMD kernel's covering sweep and min-level scan replace the
  // bitsliced word loops inside the SAME masked pick path, so the two must
  // agree even when the lane mirrors go stale: injected counter faults put
  // inputs on the dirty list, lane quarantines remap sensed levels, and
  // scrub passes repair cells — all of which the masked path resolves via
  // resync before picking. Both twins receive identical fault coordinates,
  // so their state (including corruption) stays lock-step.
  Rng rng(0x51d0f);
  for (const std::uint32_t radix : {7u, 33u, 64u}) {
    const SsvcParams params = small_params(CounterPolicy::SubtractRealClock);
    const OutputAllocation alloc = full_gb_alloc(radix);
    const std::uint32_t lanes = params.gb_levels();
    OutputQosArbiter sliced(radix, params, alloc, GlPolicing::Stall, 4,
                            ArbKernel::Bitsliced);
    OutputQosArbiter vec(radix, params, alloc, GlPolicing::Stall, 4,
                         ArbKernel::Simd);

    Cycle now = 0;
    std::vector<ClassRequest> reqs;
    for (int round = 0; round < 500; ++round) {
      now += rng.below(2 * params.epoch_cycles() + 1);
      sliced.advance_to(now);
      vec.advance_to(now);

      switch (rng.below(6)) {
        case 0: {  // flip a stored-value bit in BOTH, behind the mirrors
          const auto i = static_cast<InputId>(rng.below(radix));
          const auto bit = static_cast<std::uint32_t>(
              rng.below(params.level_bits + params.lsb_bits));
          sliced.aux_vc_mut(i).fault_flip_value(bit);
          vec.aux_vc_mut(i).fault_flip_value(bit);
          break;
        }
        case 1: {  // corrupt a thermometer code in BOTH
          const auto i = static_cast<InputId>(rng.below(radix));
          const auto lane = static_cast<std::uint32_t>(rng.below(lanes));
          sliced.aux_vc_mut(i).fault_flip_code(lane);
          vec.aux_vc_mut(i).fault_flip_code(lane);
          break;
        }
        case 2: {  // quarantine a lane in BOTH
          const auto lane = static_cast<std::uint32_t>(rng.below(lanes));
          sliced.quarantine_lane(lane);
          vec.quarantine_lane(lane);
          break;
        }
        case 3: {  // scrub BOTH (repair counts must agree too)
          EXPECT_EQ(sliced.scrub(now), vec.scrub(now)) << "round " << round;
          break;
        }
        default:
          break;  // plain request round
      }

      reqs.clear();
      for (InputId i = 0; i < radix; ++i) {
        if (!rng.bernoulli(0.5)) continue;
        const std::uint64_t c = rng.below(3);
        reqs.push_back({i,
                        c == 0   ? TrafficClass::GuaranteedLatency
                        : c == 1 ? TrafficClass::GuaranteedBandwidth
                                 : TrafficClass::BestEffort,
                        1 + static_cast<std::uint32_t>(rng.below(8))});
      }
      ASSERT_EQ(sliced.dirty_inputs(), vec.dirty_inputs())
          << "round " << round << " radix " << radix;

      const InputId w1 = sliced.pick(reqs, now);
      const InputId w2 = vec.pick(reqs, now);
      ASSERT_EQ(w1, w2) << "round " << round << " radix " << radix;
      if (w1 == kNoPort) continue;
      ASSERT_EQ(sliced.picked_class(), vec.picked_class())
          << "round " << round;
      std::uint32_t len = 1;
      for (const auto& r : reqs) {
        if (r.input == w1) len = r.length;
      }
      sliced.on_grant(w1, sliced.picked_class(), len, now);
      vec.on_grant(w1, vec.picked_class(), len, now);
    }
    for (InputId i = 0; i < radix; ++i) {
      EXPECT_EQ(sliced.aux_vc(i).arb_level(), vec.aux_vc(i).arb_level())
          << "input " << i << " radix " << radix;
    }
    expect_mirrors_exact(sliced, "faulted-twin-sliced");
    expect_mirrors_exact(vec, "faulted-twin-simd");
    if (HasFailure()) return;
  }
}

// ---- full-switch integration via the fuzz scenario generator --------------

TEST(KernelMirror, GeneratedScenarioRunsKeepMirrorsExact) {
  for (std::uint64_t index = 0; index < 6; ++index) {
    check::Scenario s = check::generate_scenario(index, 0x515e7);
    s.kernel = ArbKernel::Bitsliced;
    check::ScenarioRun rig = check::instantiate(s);
    const Cycle chunk = s.cycles / 4 + 1;
    for (int leg = 0; leg < 4; ++leg) {
      rig.sim->run(chunk);
      for (OutputId o = 0; o < s.radix; ++o) {
        expect_mirrors_exact(rig.sim->qos_arbiter(o), s.name.c_str());
      }
      if (HasFailure()) return;
    }
  }
}

}  // namespace
}  // namespace ssq::core
