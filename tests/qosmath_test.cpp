// Tests for src/qosmath: Eq. (1) bound arithmetic, Eqs. (2)-(3) burst
// budgets, the §4.4 lane-budget rules, and Vtick quantisation analysis.
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "qosmath/admission.hpp"
#include "qosmath/gl_bound.hpp"
#include "qosmath/lanes.hpp"
#include "qosmath/vtick_analysis.hpp"

namespace ssq::qosmath {
namespace {

// ------------------------------------------------------------ Eq. (1) ----

TEST(GlBoundTest, Eq1Arithmetic) {
  // tau = l_max + N * (b + b/l_min)
  GlBoundParams p{.l_max = 8, .l_min = 1, .n_gl = 1, .buffer_flits = 4};
  EXPECT_DOUBLE_EQ(gl_wait_bound(p), 8.0 + 1.0 * (4.0 + 4.0));
  p = {.l_max = 8, .l_min = 2, .n_gl = 8, .buffer_flits = 16};
  EXPECT_DOUBLE_EQ(gl_wait_bound(p), 8.0 + 8.0 * (16.0 + 8.0));
}

TEST(GlBoundTest, BoundGrowsWithEveryParameter) {
  const GlBoundParams base{.l_max = 4, .l_min = 2, .n_gl = 2,
                           .buffer_flits = 8};
  const double t0 = gl_wait_bound(base);
  GlBoundParams p = base;
  p.l_max = 8;
  EXPECT_GT(gl_wait_bound(p), t0);
  p = base;
  p.n_gl = 4;
  EXPECT_GT(gl_wait_bound(p), t0);
  p = base;
  p.buffer_flits = 16;
  EXPECT_GT(gl_wait_bound(p), t0);
  // Smaller l_min means more arbitration cycles per buffered flit.
  p = base;
  p.l_min = 1;
  EXPECT_GT(gl_wait_bound(p), t0);
}

// ------------------------------------------------------- Eqs. (2)-(3) ----

TEST(GlBurstTest, SingleInputBudget) {
  // One input, bound L, packets of l_max: sigma_1 = (L - l)/( (l+1)*1 ).
  const auto sigma = gl_burst_budget({100.0}, 8);
  ASSERT_EQ(sigma.size(), 1u);
  EXPECT_DOUBLE_EQ(sigma[0], (100.0 - 8.0) / 9.0);
}

TEST(GlBurstTest, EightEqualInputsShareTheBudget) {
  // The paper's worked example shape: 8 inputs, equal bounds, 1-flit
  // packets: each gets (L-1)/(2*8) packets.
  const std::vector<double> L(8, 100.0);
  const auto sigma = gl_burst_budget(L, 1);
  ASSERT_EQ(sigma.size(), 8u);
  for (double s : sigma) EXPECT_DOUBLE_EQ(s, 99.0 / 16.0);
}

TEST(GlBurstTest, LooserConstraintsEarnLargerBursts) {
  const auto sigma = gl_burst_budget({50.0, 100.0, 200.0}, 4);
  ASSERT_EQ(sigma.size(), 3u);
  EXPECT_LT(sigma[0], sigma[1]);
  EXPECT_LT(sigma[1], sigma[2]);
  // Eq. (2): (50-4)/(5*3).
  EXPECT_DOUBLE_EQ(sigma[0], 46.0 / 15.0);
  // Eq. (3), n=2: sigma_1 + (100-50)/(5*(3-2)).
  EXPECT_DOUBLE_EQ(sigma[1], sigma[0] + 50.0 / 5.0);
  // n=3: competitor count floors at 1.
  EXPECT_DOUBLE_EQ(sigma[2], sigma[1] + 100.0 / 5.0);
}

TEST(GlBurstTest, ConstraintTighterThanOnePacketFloorsAtZero) {
  const auto sigma = gl_burst_budget({2.0}, 8);
  EXPECT_DOUBLE_EQ(sigma[0], 0.0);
}

// --------------------------------------------------------- Admission ----

TEST(GlAdmissionTest, FeasibleWhenDeadlinesExceedEq1Bound) {
  // tau for 2 senders, l_max 8, l_min 2, b 4: 8 + 2*(4+2) = 20.
  const GlBoundParams p{.l_max = 8, .l_min = 2, .n_gl = 0, .buffer_flits = 4};
  const auto ok = admit_gl_senders({{0, 50.0}, {3, 100.0}}, p);
  EXPECT_TRUE(ok.feasible);
  const auto bad = admit_gl_senders({{0, 15.0}, {3, 100.0}}, p);
  EXPECT_FALSE(bad.feasible);
}

TEST(GlAdmissionTest, BudgetsMapBackToSenderOrder) {
  const GlBoundParams p{.l_max = 4, .l_min = 4, .n_gl = 0, .buffer_flits = 8};
  // Register out of deadline order; budgets must land on the right senders.
  const auto r = admit_gl_senders({{7, 200.0}, {2, 50.0}, {5, 100.0}}, p);
  ASSERT_EQ(r.burst_packets.size(), 3u);
  // Tightest (50, sender 2): sigma1 = (50-4)/(5*3) = 3.06 -> 3 packets.
  EXPECT_EQ(r.burst_packets[1], 3u);
  // Next (100, sender 5): 3.06 + 50/(5*1) = 13.06 -> 13.
  EXPECT_EQ(r.burst_packets[2], 13u);
  // Loosest (200, sender 7): 13.06 + 100/5 = 33.06 -> 33.
  EXPECT_EQ(r.burst_packets[0], 33u);
}

TEST(GlAdmissionTest, SubPacketDeadlineYieldsZeroBudget) {
  const GlBoundParams p{.l_max = 8, .l_min = 8, .n_gl = 0, .buffer_flits = 8};
  const auto r = admit_gl_senders({{0, 5.0}}, p);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.burst_packets[0], 0u);
}

// ------------------------------------------------------------- Lanes ----

TEST(LanesTest, Sec44LaneArithmetic) {
  EXPECT_EQ(num_lanes(128, 8), 16u);
  EXPECT_EQ(num_lanes(128, 16), 8u);
  EXPECT_EQ(num_lanes(128, 32), 4u);
  EXPECT_EQ(num_lanes(128, 64), 2u);
  EXPECT_EQ(num_lanes(256, 64), 4u);
}

TEST(LanesTest, PaperScalabilityClaims) {
  // "For a radix-8, radix-16 and radix-32 switch, a 128-bit bus is
  // sufficient. For a radix-64 switch, a 256-bit bus is required."
  for (std::uint32_t radix : {8u, 16u, 32u}) {
    EXPECT_TRUE(supports_classes(128, radix, kMinLanesForThreeClasses));
  }
  EXPECT_FALSE(supports_classes(128, 64, kMinLanesForThreeClasses));
  EXPECT_TRUE(supports_classes(256, 64, kMinLanesForThreeClasses));
  EXPECT_EQ(min_bus_width(64, 3), 192u);
}

TEST(LanesTest, GbLanesPowerOfTwo) {
  // 128-bit radix-8 with GL+BE: 14 lanes left -> 8 usable (power of two).
  EXPECT_EQ(gb_lanes_available(128, 8, true, true), 8u);
  // GB-only (Fig. 4): all 16 lanes.
  EXPECT_EQ(gb_lanes_available(128, 8, false, false), 16u);
  // 256-bit radix-64: 4 lanes, minus GL+BE -> 2.
  EXPECT_EQ(gb_lanes_available(256, 64, true, true), 2u);
  // Bus too narrow: 0.
  EXPECT_EQ(gb_lanes_available(128, 64, true, true), 0u);
}

// ---------------------------------------------------- Vtick analysis ----

TEST(VtickAnalysisTest, ErrorSmallForPaperConfig) {
  // Fig. 4 rates (5 %..40 %, 8-flit packets), unscaled register wide enough
  // to hold Vtick 180: quantisation error stays within the cycle-resolution
  // budget (0.5 cycles on a 22.5-cycle Vtick ~ 2.3 %).
  core::SsvcParams p;
  p.vtick_bits = 8;
  p.vtick_shift = 0;
  const double worst = max_vtick_error(p, 0.05, 0.40, 8);
  EXPECT_LT(worst, 0.025);
  // The coarse shift-2 prescale costs up to 4x that.
  p.vtick_shift = 2;
  EXPECT_LT(max_vtick_error(p, 0.05, 0.40, 8), 0.1);
}

TEST(VtickAnalysisTest, ErrorFieldsConsistent) {
  core::SsvcParams p;
  p.vtick_bits = 8;
  p.vtick_shift = 0;
  const auto e = vtick_error(p, 0.45, 8);  // ideal Vtick = 9/0.45 = 20
  EXPECT_DOUBLE_EQ(e.ideal_vtick, 20.0);
  EXPECT_EQ(e.quantized, 20u);
  EXPECT_DOUBLE_EQ(e.effective_rate, 0.45);
  EXPECT_DOUBLE_EQ(e.relative_error, 0.0);
}

TEST(VtickAnalysisTest, NarrowRegisterSaturatesForTinyRates) {
  // 1 % of 8-flit traffic needs Vtick 900 — an unscaled 8-bit register
  // saturates at 255 and misrepresents the rate by >2.5x.
  core::SsvcParams p;
  p.vtick_bits = 8;
  p.vtick_shift = 0;
  const auto e = vtick_error(p, 0.01, 8);
  EXPECT_EQ(e.quantized, 255u);
  EXPECT_GT(e.relative_error, 2.0);
  // The shift-2 prescale brings it back within the 4-cycle resolution.
  p.vtick_shift = 2;
  EXPECT_LT(vtick_error(p, 0.01, 8).relative_error, 0.01);
}

}  // namespace
}  // namespace ssq::qosmath
