// Tests for src/traffic: flow validation, injection process statistics,
// workload-to-allocation derivation, crosspoint exclusivity.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "traffic/bernoulli_bank.hpp"
#include "traffic/flow.hpp"
#include "traffic/injector.hpp"
#include "traffic/patterns.hpp"
#include "traffic/workload.hpp"
#include "traffic/workload_io.hpp"

namespace ssq::traffic {
namespace {

FlowSpec gb_flow(InputId src, OutputId dst, double rate, std::uint32_t len,
                 double inject_rate) {
  FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.len_min = f.len_max = len;
  f.inject = InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

// ----------------------------------------------------------- Injector ----

TEST(InjectorTest, BernoulliRateMatches) {
  FlowSpec f = gb_flow(0, 0, 0.5, 4, 0.4);  // 0.4 flits/cycle, 4-flit packets
  Injector inj(f, Rng(1));
  std::uint64_t packets = 0;
  constexpr Cycle kCycles = 200000;
  for (Cycle c = 0; c < kCycles; ++c) packets += inj.packets_at(c);
  const double flit_rate = static_cast<double>(packets) * 4.0 / kCycles;
  EXPECT_NEAR(flit_rate, 0.4, 0.01);
  EXPECT_EQ(inj.created(), packets);
}

TEST(InjectorTest, PeriodicIsExact) {
  FlowSpec f = gb_flow(0, 0, 0.5, 8, 0.25);  // period 32 cycles
  f.inject = InjectKind::Periodic;
  Injector inj(f, Rng(2));
  std::vector<Cycle> fires;
  for (Cycle c = 0; c < 200; ++c) {
    if (inj.packets_at(c)) fires.push_back(c);
  }
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], 0u);
  EXPECT_EQ(fires[1], 32u);
  EXPECT_EQ(fires[2], 64u);
}

TEST(InjectorTest, OnOffMatchesAverageRate) {
  FlowSpec f = gb_flow(0, 0, 0.5, 2, 0.2);
  f.inject = InjectKind::OnOff;
  f.mean_on_cycles = 50.0;
  f.mean_off_cycles = 50.0;
  Injector inj(f, Rng(3));
  std::uint64_t packets = 0;
  constexpr Cycle kCycles = 400000;
  for (Cycle c = 0; c < kCycles; ++c) packets += inj.packets_at(c);
  EXPECT_NEAR(static_cast<double>(packets) * 2.0 / kCycles, 0.2, 0.02);
}

TEST(InjectorTest, OnOffIsBurstier) {
  // Same average rate; the on/off source should show a larger variance of
  // per-window packet counts than Bernoulli.
  FlowSpec fb = gb_flow(0, 0, 0.5, 1, 0.2);
  FlowSpec fo = fb;
  fo.inject = InjectKind::OnOff;
  fo.mean_on_cycles = 100.0;
  fo.mean_off_cycles = 100.0;
  Injector ib(fb, Rng(4)), io(fo, Rng(5));
  auto window_var = [](Injector& inj) {
    constexpr int kWindows = 2000;
    constexpr Cycle kWin = 100;
    double sum = 0.0, sum2 = 0.0;
    Cycle now = 0;
    for (int w = 0; w < kWindows; ++w) {
      double count = 0;
      for (Cycle c = 0; c < kWin; ++c) count += inj.packets_at(now++);
      sum += count;
      sum2 += count * count;
    }
    const double mean = sum / kWindows;
    return sum2 / kWindows - mean * mean;
  };
  EXPECT_GT(window_var(io), 2.0 * window_var(ib));
}

TEST(InjectorTest, BurstOnceFiresOnce) {
  FlowSpec f;
  f.cls = TrafficClass::GuaranteedLatency;
  f.inject = InjectKind::BurstOnce;
  f.burst_start = 100;
  f.burst_packets = 7;
  Injector inj(f, Rng(6));
  std::uint64_t total = 0;
  for (Cycle c = 0; c < 1000; ++c) {
    const auto n = inj.packets_at(c);
    if (n) {
      EXPECT_EQ(c, 100u);
    }
    total += n;
  }
  EXPECT_EQ(total, 7u);
}

TEST(InjectorTest, TraceReplaysExactCycles) {
  FlowSpec f;
  f.inject = InjectKind::Trace;
  f.trace = {5, 5, 9, 20};
  Injector inj(f, Rng(7));
  EXPECT_EQ(inj.packets_at(0), 0u);
  EXPECT_EQ(inj.packets_at(5), 2u);
  EXPECT_EQ(inj.packets_at(10), 1u);  // catch-up for cycle 9
  EXPECT_EQ(inj.packets_at(20), 1u);
  EXPECT_EQ(inj.packets_at(30), 0u);
}

TEST(InjectorTest, VariableLengthsUniform) {
  FlowSpec f = gb_flow(0, 0, 0.5, 1, 0.5);
  f.len_min = 2;
  f.len_max = 5;
  Injector inj(f, Rng(8));
  std::uint64_t counts[6] = {};
  for (int i = 0; i < 40000; ++i) {
    const auto len = inj.draw_length();
    ASSERT_GE(len, 2u);
    ASSERT_LE(len, 5u);
    ++counts[len];
  }
  for (int len = 2; len <= 5; ++len) {
    EXPECT_NEAR(static_cast<double>(counts[len]), 10000.0, 400.0);
  }
}

TEST(InjectorTest, StartCycleDelaysTheSource) {
  for (InjectKind kind :
       {InjectKind::Bernoulli, InjectKind::OnOff, InjectKind::Periodic}) {
    FlowSpec f = gb_flow(0, 0, 0.5, 2, 0.4);
    f.inject = kind;
    f.start_cycle = 500;
    Injector inj(f, Rng(41));
    for (Cycle c = 0; c < 500; ++c) {
      ASSERT_EQ(inj.packets_at(c), 0u) << "kind " << static_cast<int>(kind);
    }
    std::uint64_t after = 0;
    for (Cycle c = 500; c < 10500; ++c) after += inj.packets_at(c);
    EXPECT_NEAR(static_cast<double>(after) * 2.0 / 10000.0, 0.4, 0.05);
  }
}

TEST(InjectorTest, DeterministicAcrossRuns) {
  FlowSpec f = gb_flow(0, 0, 0.5, 4, 0.3);
  Injector a(f, Rng(99)), b(f, Rng(99));
  for (Cycle c = 0; c < 1000; ++c) {
    ASSERT_EQ(a.packets_at(c), b.packets_at(c));
  }
}

// ----------------------------------------------------------- Workload ----

TEST(WorkloadTest, AllocationFromGbFlows) {
  Workload w(4);
  w.add_flow(gb_flow(0, 3, 0.4, 8, 0.1));
  w.add_flow(gb_flow(1, 3, 0.2, 8, 0.1));
  w.add_flow(gb_flow(2, 1, 0.5, 4, 0.1));
  w.set_gl_reservation(3, 0.1, 2);
  const auto a3 = w.allocation_for(3);
  EXPECT_DOUBLE_EQ(a3.gb_rate[0], 0.4);
  EXPECT_DOUBLE_EQ(a3.gb_rate[1], 0.2);
  EXPECT_DOUBLE_EQ(a3.gb_rate[2], 0.0);
  EXPECT_DOUBLE_EQ(a3.gl_rate, 0.1);
  EXPECT_EQ(a3.gl_packet_len, 2u);
  EXPECT_EQ(a3.gb_packet_len, 8u);
  const auto a1 = w.allocation_for(1);
  EXPECT_DOUBLE_EQ(a1.gb_rate[2], 0.5);
  EXPECT_DOUBLE_EQ(a1.gl_rate, 0.0);
  w.validate();
}

TEST(WorkloadTest, CrosspointExclusivity) {
  Workload w(4);
  w.add_flow(gb_flow(0, 1, 0.3, 8, 0.1));
  EXPECT_TRUE(w.crosspoints_exclusive());
  w.add_flow(gb_flow(0, 1, 0.3, 8, 0.1));  // second GB flow, same crosspoint
  EXPECT_FALSE(w.crosspoints_exclusive());
}

TEST(WorkloadTest, BeFlowsDontNeedReservations) {
  Workload w(2);
  FlowSpec f;
  f.src = 0;
  f.dst = 1;
  f.cls = TrafficClass::BestEffort;
  f.inject = InjectKind::Bernoulli;
  f.inject_rate = 0.5;
  w.add_flow(f);
  w.validate();
  EXPECT_DOUBLE_EQ(w.allocation_for(1).gb_total(), 0.0);
}

// ------------------------------------------------------------ Patterns ----

TEST(PatternsTest, UniformCoversAllPairs) {
  PatternConfig c;
  c.pattern = Pattern::UniformRandom;
  c.radix = 4;
  c.load_per_input = 0.6;
  const Workload w = build_pattern(c);
  EXPECT_EQ(w.num_flows(), 12u);  // 4 * 3
  double load0 = 0.0;
  for (const auto& f : w.flows()) {
    EXPECT_NE(f.src, f.dst);
    if (f.src == 0) load0 += f.inject_rate;
  }
  EXPECT_NEAR(load0, 0.6, 1e-9);
}

TEST(PatternsTest, PermutationPatternsAreBijections) {
  for (Pattern p : {Pattern::Transpose, Pattern::Tornado,
                    Pattern::Neighbour}) {
    PatternConfig c;
    c.pattern = p;
    c.radix = 8;
    c.load_per_input = 0.5;
    const Workload w = build_pattern(c);
    EXPECT_EQ(w.num_flows(), 8u) << pattern_name(p);
    std::uint32_t seen = 0;
    for (const auto& f : w.flows()) {
      EXPECT_EQ((seen >> f.dst) & 1u, 0u) << pattern_name(p);
      seen |= 1u << f.dst;
    }
    EXPECT_EQ(seen, 0xFFu) << pattern_name(p);
  }
}

TEST(PatternsTest, HotspotTargetsOneOutput) {
  PatternConfig c;
  c.pattern = Pattern::Hotspot;
  c.radix = 8;
  c.hotspot = 3;
  c.load_per_input = 0.2;
  const Workload w = build_pattern(c);
  EXPECT_EQ(w.num_flows(), 7u);
  for (const auto& f : w.flows()) EXPECT_EQ(f.dst, 3u);
}

TEST(PatternsTest, GbVariantReservesAdmissibly) {
  PatternConfig c;
  c.pattern = Pattern::UniformRandom;
  c.radix = 6;
  c.load_per_input = 0.5;
  c.cls = TrafficClass::GuaranteedBandwidth;
  const Workload w = build_pattern(c);  // validate() inside would abort if not
  for (OutputId o = 0; o < 6; ++o) {
    EXPECT_NEAR(w.allocation_for(o).gb_total(), 0.9, 1e-9);
  }
}

// -------------------------------------------------------- Workload I/O ----

TEST(WorkloadIoTest, ParsesTheDocumentedExample) {
  std::istringstream in(R"(
# 8-port switch, one GB stream, one BE hog, one GL heartbeat
radix 8
flow src=0 dst=7 class=gb rate=0.30 len=8 inject=bernoulli load=0.25
flow src=1 dst=7 class=be len=8 inject=bernoulli load=0.8
flow src=2 dst=7 class=gl len=1 inject=bernoulli load=0.005
gl_reservation dst=7 rate=0.05 len=1
)");
  const Workload w = parse_workload(in, "example");
  EXPECT_EQ(w.radix(), 8u);
  ASSERT_EQ(w.num_flows(), 3u);
  EXPECT_EQ(w.flow(0).cls, TrafficClass::GuaranteedBandwidth);
  EXPECT_DOUBLE_EQ(w.flow(0).reserved_rate, 0.30);
  EXPECT_EQ(w.flow(0).len_max, 8u);
  EXPECT_EQ(w.flow(1).cls, TrafficClass::BestEffort);
  EXPECT_EQ(w.flow(2).cls, TrafficClass::GuaranteedLatency);
  EXPECT_DOUBLE_EQ(w.gl_reservation_rate(7), 0.05);
  EXPECT_EQ(w.gl_reservation_packet_len(7), 1u);
}

TEST(WorkloadIoTest, ParsesEveryInjectKindAndOptionalFields) {
  std::istringstream in(R"(
radix 4
flow src=0 dst=1 class=gb rate=0.2 len_min=2 len_max=6 inject=onoff load=0.1 on=50 off=150
flow src=1 dst=1 class=be inject=periodic load=0.25 len=4
flow src=2 dst=1 class=gl inject=burst burst_start=100 burst_packets=7 len=2
flow src=3 dst=1 class=be prio=3 load=0.1
)");
  const Workload w = parse_workload(in, "kinds");
  ASSERT_EQ(w.num_flows(), 4u);
  EXPECT_EQ(w.flow(0).inject, InjectKind::OnOff);
  EXPECT_EQ(w.flow(0).len_min, 2u);
  EXPECT_EQ(w.flow(0).len_max, 6u);
  EXPECT_DOUBLE_EQ(w.flow(0).mean_on_cycles, 50.0);
  EXPECT_DOUBLE_EQ(w.flow(0).mean_off_cycles, 150.0);
  EXPECT_EQ(w.flow(1).inject, InjectKind::Periodic);
  EXPECT_EQ(w.flow(2).inject, InjectKind::BurstOnce);
  EXPECT_EQ(w.flow(2).burst_start, 100u);
  EXPECT_EQ(w.flow(2).burst_packets, 7u);
  EXPECT_EQ(w.flow(3).legacy_priority, 3u);
}

TEST(WorkloadIoTest, RoundTripsThroughWriteAndParse) {
  std::istringstream in(R"(
radix 8
flow src=0 dst=3 class=gb rate=0.4 len=8 load=0.3
flow src=1 dst=3 class=be len_min=1 len_max=4 inject=onoff load=0.2 on=80 off=40
gl_reservation dst=3 rate=0.1 len=2
)");
  const Workload original = parse_workload(in, "round");
  std::ostringstream out;
  write_workload(out, original);
  std::istringstream back(out.str());
  const Workload reparsed = parse_workload(back, "reparsed");
  ASSERT_EQ(reparsed.num_flows(), original.num_flows());
  for (FlowId f = 0; f < original.num_flows(); ++f) {
    EXPECT_EQ(reparsed.flow(f).src, original.flow(f).src);
    EXPECT_EQ(reparsed.flow(f).dst, original.flow(f).dst);
    EXPECT_EQ(reparsed.flow(f).cls, original.flow(f).cls);
    EXPECT_DOUBLE_EQ(reparsed.flow(f).reserved_rate,
                     original.flow(f).reserved_rate);
    EXPECT_EQ(reparsed.flow(f).len_min, original.flow(f).len_min);
    EXPECT_EQ(reparsed.flow(f).len_max, original.flow(f).len_max);
    EXPECT_EQ(reparsed.flow(f).inject, original.flow(f).inject);
    EXPECT_DOUBLE_EQ(reparsed.flow(f).inject_rate,
                     original.flow(f).inject_rate);
  }
  EXPECT_DOUBLE_EQ(reparsed.gl_reservation_rate(3), 0.1);
}

/// Expects `fn` to throw ssq::ConfigError whose message contains `needle`.
template <typename Fn>
void expect_config_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected ssq::ConfigError containing '" << needle << "'";
  } catch (const ssq::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(WorkloadIoErrorTest, RejectsGarbage) {
  auto parse = [](const char* text) {
    return [text] {
      std::istringstream in(text);
      (void)parse_workload(in, "bad");
    };
  };
  expect_config_error(parse("flow src=0 dst=1\n"), "radix");
  expect_config_error(parse("radix 8\nflow dst=1\n"), "missing field 'src'");
  expect_config_error(parse("radix 8\nflow src=0 dst=1 class=xx\n"),
                      "unknown class");
  expect_config_error(parse("radix 8\nflow src=0 dst=1 load=abc\n"),
                      "not a number");
  expect_config_error(parse("radix 8\nblah x=1\n"), "unknown directive");
  expect_config_error(parse("radix 99\n"), "out of range");
  expect_config_error(parse(""), "empty workload");
}

TEST(WorkloadErrorTest, OverSubscriptionThrows) {
  Workload w(2);
  w.add_flow(gb_flow(0, 1, 0.7, 8, 0.1));
  w.add_flow(gb_flow(1, 1, 0.7, 8, 0.1));
  expect_config_error([&] { w.validate(); }, "over-subscribed");
}

TEST(FlowSpecErrorTest, GbWithoutReservationThrows) {
  FlowSpec f;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.inject_rate = 0.1;
  expect_config_error([&] { f.validate(4); }, "reserve");
}

// ----------------------------------------------------- BernoulliBank ----

TEST(BernoulliBankTest, ThresholdTrialMatchesDoubleBernoulli) {
  // The integer trial `(x >> 11) < ceil(p * 2^53)` must equal the double
  // comparison `uniform() < p` on the SAME draw for every p: uniform() is
  // exactly (x >> 11) * 2^-53 and both sides of the scaled comparison are
  // exact, so this is an identity, not an approximation.
  for (const double p : {1e-9, 0.004, 0.25, 0.5, 0.75, 0.9999999}) {
    const std::uint64_t thr = bernoulli_threshold(p);
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 20000; ++i) {
      const bool via_double = a.uniform() < p;
      const bool via_int = (b() >> 11) < thr;
      ASSERT_EQ(via_double, via_int) << "p=" << p << " draw " << i;
    }
  }
  EXPECT_EQ(bernoulli_threshold(0.0), kBernoulliNever);
  EXPECT_EQ(bernoulli_threshold(-1.0), kBernoulliNever);
  EXPECT_EQ(bernoulli_threshold(1.0), kBernoulliAlways);
}

TEST(BernoulliBankTest, BankSlotsMatchPrivateRngsWithStaggeredStarts) {
  // Each bank slot must reproduce its donor Rng's draw stream exactly:
  // fire(slot) after roll(now) equals the donor's next trial, draw(slot)
  // equals the donor's next raw draw — including slots whose start cycle
  // hasn't arrived yet (they must consume NO draws while parked).
  const std::uint64_t thr = bernoulli_threshold(0.37);
  const std::array<Cycle, 4> starts = {0, 0, 100, 250};
  BernoulliBank bank;
  std::vector<Rng> refs;
  std::vector<std::size_t> slots;
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const Rng donor(0x1000 + k);
    refs.push_back(donor);
    slots.push_back(bank.add(donor, thr, starts[k]));
  }
  Rng pick(7);
  for (Cycle now = 0; now < 600; ++now) {
    bank.roll(now);
    for (std::size_t k = 0; k < starts.size(); ++k) {
      if (now < starts[k]) {
        ASSERT_FALSE(bank.fire(slots[k])) << "slot " << k << " cycle " << now;
        continue;
      }
      const bool expect_fire = (refs[k]() >> 11) < thr;
      ASSERT_EQ(bank.fire(slots[k]), expect_fire)
          << "slot " << k << " cycle " << now;
      // Interleave extra draws (packet-length style) on a random slot to
      // prove per-slot streams stay independent of bank order.
      if (expect_fire && pick.bernoulli(0.5)) {
        ASSERT_EQ(bank.draw(slots[k]), refs[k]())
            << "slot " << k << " cycle " << now;
      }
    }
  }
}

}  // namespace
}  // namespace ssq::traffic
