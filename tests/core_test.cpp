// Tests for src/core: SSVC parameters, thermometer codes, auxVC counters,
// the counter-management policies, the GL tracker, and the three-class
// OutputQosArbiter semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/allocation.hpp"
#include "core/aux_vc.hpp"
#include "core/gl_tracker.hpp"
#include "core/output_arbiter.hpp"
#include "core/params.hpp"
#include "core/thermometer.hpp"

namespace ssq::core {
namespace {

SsvcParams small_params(CounterPolicy policy = CounterPolicy::SubtractRealClock) {
  SsvcParams p;
  p.level_bits = 3;   // 8 GB levels (Fig. 1)
  p.lsb_bits = 4;     // small epoch so wraps are easy to exercise
  p.vtick_bits = 8;
  p.vtick_shift = 0;
  p.policy = policy;
  return p;
}

// ------------------------------------------------------------- Params ----

TEST(ParamsTest, DerivedQuantities) {
  SsvcParams p;  // defaults: 3+8 bits — the Table 1 configuration
  EXPECT_EQ(p.gb_levels(), 8u);
  EXPECT_EQ(p.aux_vc_cap(), (1ULL << 11) - 1);
  EXPECT_EQ(p.epoch_cycles(), 256u);
}

TEST(ParamsTest, IdealVtickIsInterPacketTime) {
  // Rate 0.4 of the channel, 8-flit packets: each packet occupies 8 transfer
  // cycles + 1 arbitration cycle -> one packet per 22.5 cycles.
  EXPECT_DOUBLE_EQ(ideal_vtick(0.4, 8), 22.5);
  EXPECT_DOUBLE_EQ(ideal_vtick(0.05, 8), 180.0);
  EXPECT_DOUBLE_EQ(ideal_vtick(1.0, 1), 2.0);
}

TEST(ParamsTest, QuantizeRoundsAndSaturates) {
  SsvcParams p = small_params();
  EXPECT_EQ(quantize_vtick(p, 20.0), 20u);
  EXPECT_EQ(quantize_vtick(p, 20.4), 20u);
  EXPECT_EQ(quantize_vtick(p, 20.6), 21u);
  EXPECT_EQ(quantize_vtick(p, 0.2), 1u);      // floor at 1
  EXPECT_EQ(quantize_vtick(p, 1e9), 255u);    // register saturates
}

TEST(ParamsTest, QuantizeWithShiftExtendsRange) {
  SsvcParams p = small_params();
  p.vtick_shift = 2;  // values are multiples of 4 cycles
  EXPECT_EQ(quantize_vtick(p, 800.0), 800u);
  EXPECT_EQ(quantize_vtick(p, 21.0), 20u);  // rounds to nearest multiple of 4
  EXPECT_EQ(p.max_vtick_cycles(), 255u << 2);
}

// -------------------------------------------------------- Thermometer ----

TEST(ThermometerTest, EncodingMatchesFig1) {
  // Fig. 1(a): level 6 -> [1,1,1,1,1,1,1,0]; level 0 -> [1,0,...];
  // level 7 -> all ones.
  ThermometerCode t6(8, 6);
  EXPECT_EQ(t6.bits(), 0b0111'1111u);
  ThermometerCode t0(8, 0);
  EXPECT_EQ(t0.bits(), 0b0000'0001u);
  ThermometerCode t7(8, 7);
  EXPECT_EQ(t7.bits(), 0b1111'1111u);
}

TEST(ThermometerTest, BitQueries) {
  ThermometerCode t(8, 4);
  for (std::uint32_t i = 0; i <= 4; ++i) EXPECT_TRUE(t.bit(i));
  for (std::uint32_t i = 5; i < 8; ++i) EXPECT_FALSE(t.bit(i));
}

TEST(ThermometerTest, ShiftUpSaturatesAtTopLane) {
  ThermometerCode t(4, 2);
  t.shift_up();
  EXPECT_EQ(t.level(), 3u);
  t.shift_up();
  EXPECT_EQ(t.level(), 3u);  // saturates
}

TEST(ThermometerTest, ShiftDownFloorsAtZero) {
  ThermometerCode t(4, 1);
  t.shift_down();
  EXPECT_EQ(t.level(), 0u);
  t.shift_down();
  EXPECT_EQ(t.level(), 0u);
}

TEST(ThermometerTest, HalveAndReset) {
  ThermometerCode t(8, 7);
  t.halve();
  EXPECT_EQ(t.level(), 3u);
  t.halve();
  EXPECT_EQ(t.level(), 1u);
  t.reset();
  EXPECT_EQ(t.level(), 0u);
}

TEST(ThermometerTest, SetLevelClampsToWidth) {
  ThermometerCode t(4);
  t.set_level(100);
  EXPECT_EQ(t.level(), 3u);
}

// -------------------------------------------------------------- AuxVc ----

TEST(AuxVcTest, GrantAppliesMaxThenVtick) {
  AuxVc vc(small_params(), 10);
  // value 0, rt 5: max(0,5)+10 = 15.
  EXPECT_FALSE(vc.on_grant(5));
  EXPECT_EQ(vc.value(), 15u);
  // value 15, rt 3 (behind): max(15,3)+10 = 25.
  EXPECT_FALSE(vc.on_grant(3));
  EXPECT_EQ(vc.value(), 25u);
}

TEST(AuxVcTest, LevelFromMsbs) {
  SsvcParams p = small_params();  // lsb_bits 4 -> level = value >> 4
  AuxVc vc(p, 16);
  EXPECT_EQ(vc.level(), 0u);
  vc.on_grant(0);  // value 16
  EXPECT_EQ(vc.level(), 1u);
  vc.on_grant(0);  // value 32
  EXPECT_EQ(vc.level(), 2u);
  EXPECT_EQ(vc.code().level(), vc.level());
}

TEST(AuxVcTest, SaturationReportsAndClamps) {
  SsvcParams p = small_params();
  AuxVc vc(p, 100);
  bool saturated = false;
  for (int g = 0; g < 10 && !saturated; ++g) saturated = vc.on_grant(0);
  EXPECT_TRUE(saturated);
  EXPECT_EQ(vc.value(), p.aux_vc_cap());
  EXPECT_EQ(vc.level(), p.gb_levels() - 1);
}

TEST(AuxVcTest, EpochWrapSubtractsOneMsb) {
  SsvcParams p = small_params();
  AuxVc vc(p, 40);
  vc.on_grant(0);  // value 40, level 2
  EXPECT_EQ(vc.level(), 2u);
  vc.epoch_wrap();  // value 24, level 1
  EXPECT_EQ(vc.value(), 24u);
  EXPECT_EQ(vc.level(), 1u);
  vc.epoch_wrap();  // value 8, level 0
  vc.epoch_wrap();  // floor at 0
  EXPECT_EQ(vc.value(), 0u);
  EXPECT_EQ(vc.level(), 0u);
}

TEST(AuxVcTest, HalveHalvesValueAndCode) {
  SsvcParams p = small_params(CounterPolicy::Halve);
  AuxVc vc(p, 50);
  vc.on_grant(0);  // 50, level 3
  EXPECT_EQ(vc.level(), 3u);
  vc.halve();
  EXPECT_EQ(vc.value(), 25u);
  EXPECT_EQ(vc.level(), 1u);
  EXPECT_EQ(vc.code().level(), 1u);
}

TEST(AuxVcTest, ResetClears) {
  AuxVc vc(small_params(CounterPolicy::Reset), 50);
  vc.on_grant(7);
  vc.reset();
  EXPECT_EQ(vc.value(), 0u);
  EXPECT_EQ(vc.level(), 0u);
}

TEST(AuxVcTest, PolicyNoneNeverSaturatesInPractice) {
  AuxVc vc(small_params(CounterPolicy::None), 1000);
  for (int g = 0; g < 100000; ++g) ASSERT_FALSE(vc.on_grant(0));
  EXPECT_EQ(vc.level(), small_params().gb_levels() - 1);  // clamped level
}

// ---------------------------------------------------------- GlTracker ----

TEST(GlTrackerTest, DisabledIsAlwaysEligible) {
  GlTracker t(0, 4, GlPolicing::Stall);
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.eligible(0));
  t.on_grant(0);  // no-op
  EXPECT_EQ(t.clock(), 0u);
}

TEST(GlTrackerTest, CompliantClassStaysEligible) {
  GlTracker t(100, 4, GlPolicing::Stall);  // vtick 100, allowance 4 packets
  Cycle now = 0;
  for (int g = 0; g < 50; ++g) {
    ASSERT_TRUE(t.eligible(now));
    t.on_grant(now);
    now += 100;  // sending exactly at the reserved rate
  }
}

TEST(GlTrackerTest, BurstBeyondAllowanceBecomesIneligible) {
  GlTracker t(100, 4, GlPolicing::Stall);
  // Eligibility is clock <= now + allowance: allowance+1 packets pass.
  for (int g = 0; g < 5; ++g) {
    ASSERT_TRUE(t.eligible(0)) << "packet " << g;
    t.on_grant(0);
  }
  EXPECT_FALSE(t.eligible(0));
  EXPECT_GT(t.overrun(0), 0u);
  // Real time catches up -> eligible again.
  EXPECT_TRUE(t.eligible(100));
}

TEST(GlTrackerTest, PolicingNoneNeverBlocks) {
  GlTracker t(100, 1, GlPolicing::None);
  for (int g = 0; g < 100; ++g) t.on_grant(0);
  EXPECT_TRUE(t.eligible(0));
}

// --------------------------------------------------------- Allocation ----

TEST(AllocationTest, AdmissionControl) {
  auto a = OutputAllocation::none(4);
  EXPECT_TRUE(a.admissible(4));
  a.gb_rate = {0.4, 0.2, 0.2, 0.1};
  a.gl_rate = 0.1;
  EXPECT_TRUE(a.admissible(4));
  EXPECT_DOUBLE_EQ(a.gb_total(), 0.9);
  a.gl_rate = 0.2;  // 1.1 total
  EXPECT_FALSE(a.admissible(4));
  a.gl_rate = 0.0;
  a.gb_rate[0] = -0.1;
  EXPECT_FALSE(a.admissible(4));
  a.gb_rate = {0.5, 0.5};  // wrong size
  EXPECT_FALSE(a.admissible(4));
}

// ----------------------------------------------------- OutputQosArbiter ----

OutputQosArbiter make_gb_arbiter(
    CounterPolicy policy = CounterPolicy::SubtractRealClock) {
  auto alloc = OutputAllocation::none(4);
  alloc.gb_rate = {0.4, 0.3, 0.2, 0.1};
  alloc.gb_packet_len = 1;
  return OutputQosArbiter(4, small_params(policy), alloc);
}

std::vector<ClassRequest> gb_requests(std::uint32_t n,
                                      std::uint32_t length = 1) {
  std::vector<ClassRequest> reqs;
  for (InputId i = 0; i < n; ++i) {
    reqs.push_back({i, TrafficClass::GuaranteedBandwidth, length});
  }
  return reqs;
}

TEST(OutputQosArbiterTest, GbSharesFollowReservations) {
  // 8-flit packets so Vtick quantisation is small (Vticks 23/30/45/90 for
  // rates 0.4/0.3/0.2/0.1). Real time advances 9 cycles per grant (8
  // transfer + 1 arbitration), matching the Vtick calibration, so every
  // flow should receive ~its reserved share of grants.
  auto alloc = OutputAllocation::none(4);
  alloc.gb_rate = {0.4, 0.3, 0.2, 0.1};
  alloc.gb_packet_len = 8;
  OutputQosArbiter arb(4, small_params(), alloc);
  std::vector<std::uint64_t> wins(4, 0);
  Cycle now = 0;
  const auto reqs = gb_requests(4, 8);
  constexpr int kGrants = 20000;
  for (int g = 0; g < kGrants; ++g) {
    arb.advance_to(now);
    const InputId w = arb.pick(reqs, now);
    ASSERT_NE(w, kNoPort);
    EXPECT_EQ(arb.picked_class(), TrafficClass::GuaranteedBandwidth);
    arb.on_grant(w, TrafficClass::GuaranteedBandwidth, 8, now);
    ++wins[w];
    now += 9;
  }
  const double total = kGrants;
  EXPECT_NEAR(static_cast<double>(wins[0]) / total, 0.4, 0.03);
  EXPECT_NEAR(static_cast<double>(wins[1]) / total, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(wins[2]) / total, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(wins[3]) / total, 0.1, 0.03);
}

TEST(OutputQosArbiterTest, GlOverridesGbAndBe) {
  auto alloc = OutputAllocation::none(4);
  alloc.gb_rate = {0.5, 0.0, 0.0, 0.0};
  alloc.gl_rate = 0.1;
  OutputQosArbiter arb(4, small_params(), alloc);
  arb.advance_to(0);
  std::vector<ClassRequest> reqs = {
      {0, TrafficClass::GuaranteedBandwidth, 1},
      {1, TrafficClass::BestEffort, 1},
      {2, TrafficClass::GuaranteedLatency, 1},
  };
  const InputId w = arb.pick(reqs, 0);
  EXPECT_EQ(w, 2u);
  EXPECT_EQ(arb.picked_class(), TrafficClass::GuaranteedLatency);
}

TEST(OutputQosArbiterTest, GbBeatsBe) {
  auto arb = make_gb_arbiter();
  arb.advance_to(0);
  std::vector<ClassRequest> reqs = {
      {0, TrafficClass::BestEffort, 1},
      {3, TrafficClass::GuaranteedBandwidth, 1},
  };
  EXPECT_EQ(arb.pick(reqs, 0), 3u);
  EXPECT_EQ(arb.picked_class(), TrafficClass::GuaranteedBandwidth);
}

TEST(OutputQosArbiterTest, BeUsesLrg) {
  auto arb = make_gb_arbiter();
  std::vector<ClassRequest> reqs = {
      {0, TrafficClass::BestEffort, 1},
      {1, TrafficClass::BestEffort, 1},
  };
  arb.advance_to(0);
  const InputId w1 = arb.pick(reqs, 0);
  EXPECT_EQ(w1, 0u);
  arb.on_grant(w1, TrafficClass::BestEffort, 1, 0);
  const InputId w2 = arb.pick(reqs, 0);
  EXPECT_EQ(w2, 1u);  // LRG moved input 0 to the back
}

TEST(OutputQosArbiterTest, StalledGlYieldsNoWinner) {
  auto alloc = OutputAllocation::none(2);
  alloc.gl_rate = 0.05;
  alloc.gl_packet_len = 1;
  OutputQosArbiter arb(2, small_params(), alloc, GlPolicing::Stall,
                       /*gl_allowance_packets=*/2);
  std::vector<ClassRequest> reqs = {{0, TrafficClass::GuaranteedLatency, 1}};
  Cycle now = 0;
  // Exhaust the allowance (eligibility is clock <= now + allowance, so
  // allowance+1 packets fit before the class stalls).
  int granted = 0;
  for (int g = 0; g < 10; ++g) {
    arb.advance_to(now);
    const InputId w = arb.pick(reqs, now);
    if (w == kNoPort) break;
    arb.on_grant(w, TrafficClass::GuaranteedLatency, 1, now);
    ++granted;
  }
  EXPECT_EQ(granted, 3);
  arb.advance_to(now);
  EXPECT_EQ(arb.pick(reqs, now), kNoPort);
  // After the clock catches up the class is serviceable again.
  const Cycle later = arb.gl_tracker().clock();
  arb.advance_to(later);
  EXPECT_NE(arb.pick(reqs, later), kNoPort);
}

TEST(OutputQosArbiterTest, DemotedGlLosesToGb) {
  auto alloc = OutputAllocation::none(2);
  alloc.gb_rate = {0.5, 0.0};
  alloc.gl_rate = 0.05;
  alloc.gl_packet_len = 1;
  OutputQosArbiter arb(2, small_params(), alloc, GlPolicing::Demote,
                       /*gl_allowance_packets=*/1);
  Cycle now = 0;
  std::vector<ClassRequest> gl_only = {{1, TrafficClass::GuaranteedLatency, 1}};
  arb.advance_to(now);
  // Grant GL until the policer marks the class over budget.
  for (int g = 0; g < 10 && arb.gl_tracker().eligible(now); ++g) {
    arb.on_grant(1, TrafficClass::GuaranteedLatency, 1, now);
  }
  ASSERT_FALSE(arb.gl_tracker().eligible(now));
  // Over budget: a GB request now beats the demoted GL request.
  std::vector<ClassRequest> mixed = {
      {0, TrafficClass::GuaranteedBandwidth, 1},
      {1, TrafficClass::GuaranteedLatency, 1},
  };
  const InputId w = arb.pick(mixed, now);
  EXPECT_EQ(w, 0u);
  EXPECT_EQ(arb.picked_class(), TrafficClass::GuaranteedBandwidth);
  // Demoted GL alone still gets service (unlike Stall).
  const InputId w2 = arb.pick(gl_only, now);
  EXPECT_EQ(w2, 1u);
  EXPECT_EQ(arb.picked_class(), TrafficClass::GuaranteedLatency);
}

TEST(OutputQosArbiterTest, LowerLevelAlwaysBeatsHigherLevel) {
  auto arb = make_gb_arbiter();
  Cycle now = 0;
  // Give input 0 many grants so its auxVC level rises.
  arb.advance_to(now);
  for (int g = 0; g < 8; ++g) {
    arb.on_grant(0, TrafficClass::GuaranteedBandwidth, 1, now);
  }
  ASSERT_GT(arb.gb_level(0), arb.gb_level(3));
  const auto reqs = gb_requests(4);
  const InputId w = arb.pick(reqs, now);
  EXPECT_NE(w, 0u);  // the busy flow cannot win against lower levels
}

TEST(OutputQosArbiterTest, EpochWrapLowersLevels) {
  auto arb = make_gb_arbiter();  // lsb_bits 4 -> epoch 16 cycles
  arb.advance_to(0);
  for (int g = 0; g < 12; ++g) {
    arb.on_grant(0, TrafficClass::GuaranteedBandwidth, 1, 0);
  }
  const auto level_before = arb.gb_level(0);
  ASSERT_GT(level_before, 1u);
  arb.advance_to(16);  // one epoch
  EXPECT_EQ(arb.gb_level(0), level_before - 1);
}

TEST(OutputQosArbiterTest, ResetPolicyClearsAllOnSaturation) {
  auto alloc = OutputAllocation::none(2);
  alloc.gb_rate = {0.5, 0.5};
  alloc.gb_packet_len = 1;
  SsvcParams p = small_params(CounterPolicy::Reset);
  OutputQosArbiter arb(2, p, alloc);
  arb.advance_to(0);
  // Drive input 0 to saturation (vtick 2, cap 127 -> 64 grants).
  bool reset_seen = false;
  for (int g = 0; g < 200; ++g) {
    arb.on_grant(0, TrafficClass::GuaranteedBandwidth, 1, 0);
    if (arb.aux_vc(0).value() == 0) {
      reset_seen = true;
      break;
    }
  }
  EXPECT_TRUE(reset_seen);
  EXPECT_EQ(arb.aux_vc(1).value(), 0u);
}

TEST(OutputQosArbiterTest, HalvePolicyCompressesAll) {
  auto alloc = OutputAllocation::none(2);
  alloc.gb_rate = {0.5, 0.25};
  alloc.gb_packet_len = 1;
  SsvcParams p = small_params(CounterPolicy::Halve);
  OutputQosArbiter arb(2, p, alloc);
  arb.advance_to(0);
  // Saturate input 1 (vtick 4). Track that a halving event hits input 0 too.
  arb.on_grant(0, TrafficClass::GuaranteedBandwidth, 1, 0);
  const auto v0_before = arb.aux_vc(0).value();
  ASSERT_GT(v0_before, 0u);
  std::uint64_t prev = 0;
  bool halved = false;
  for (int g = 0; g < 200 && !halved; ++g) {
    arb.on_grant(1, TrafficClass::GuaranteedBandwidth, 1, 0);
    const auto v = arb.aux_vc(1).value();
    if (v < prev) halved = true;
    prev = v;
  }
  EXPECT_TRUE(halved);
  EXPECT_LT(arb.aux_vc(0).value(), v0_before);
}

TEST(OutputQosArbiterTest, ResetRestoresInitialState) {
  auto arb = make_gb_arbiter();
  arb.advance_to(5);
  arb.on_grant(0, TrafficClass::GuaranteedBandwidth, 1, 5);
  arb.reset();
  EXPECT_EQ(arb.aux_vc(0).value(), 0u);
  EXPECT_EQ(arb.epoch_rt(), 0u);
  arb.advance_to(0);
  const auto reqs = gb_requests(4);
  EXPECT_EQ(arb.pick(reqs, 0), 0u);  // initial LRG order restored
}

}  // namespace
}  // namespace ssq::core
