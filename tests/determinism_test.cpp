// Seeded-determinism regression: equal seeds must produce byte-identical
// trace output across independent runs, for the plain simulation path, the
// fuzz-generated path, and the chaos (fault-injected + scrubbed) path. This
// is the property every other test leans on — replayable repros, the golden
// corpus, `--fault-seed` chaos replays — so it gets its own regression.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arb/matching.hpp"
#include "check/differential.hpp"
#include "check/scenario.hpp"
#include "check/trace.hpp"
#include "exec/thread_pool.hpp"
#include "obs/conformance.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "switch/crossbar.hpp"
#include "switch/observe.hpp"

namespace ssq::check {
namespace {

/// Full JSONL event trace of a scenario run — every event kind, not just the
/// golden selection, so divergence anywhere in the event stream is caught.
std::string jsonl_trace(const Scenario& s) {
  ScenarioRun rig = instantiate(s);
  std::ostringstream out;
  obs::JsonlSink sink(out);
  obs::Tracer tracer(sink);
  obs::SwitchProbe probe(s.radix);
  probe.set_tracer(&tracer);
  rig.sim->attach_probe(&probe);
  for (Cycle t = 0; t < s.cycles; ++t) rig.sim->step();
  rig.sim->attach_probe(nullptr);
  tracer.finish();
  return out.str();
}

Scenario sim_scenario() {
  Scenario s;
  s.name = "determinism-sim";
  s.seed = 77;
  s.cycles = 1500;
  s.radix = 8;
  traffic::FlowSpec gb;
  gb.src = 0;
  gb.dst = 3;
  gb.cls = TrafficClass::GuaranteedBandwidth;
  gb.reserved_rate = 0.3;
  gb.inject = traffic::InjectKind::Bernoulli;
  gb.inject_rate = 0.35;
  s.flows.push_back(gb);
  traffic::FlowSpec be;
  be.src = 1;
  be.dst = 3;
  be.inject = traffic::InjectKind::OnOff;
  be.inject_rate = 0.5;
  s.flows.push_back(be);
  traffic::FlowSpec gl;
  gl.src = 2;
  gl.dst = 3;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.inject = traffic::InjectKind::Bernoulli;
  gl.inject_rate = 0.02;
  s.flows.push_back(gl);
  s.gl_reservations.push_back({3, 0.05, 1});
  return s;
}

Scenario chaos_scenario() {
  Scenario s = sim_scenario();
  s.name = "determinism-chaos";
  s.faults.seed = 4242;
  s.faults.bitflip_rate = 0.002;
  s.faults.stuck_lanes.push_back({3, 1, true, 400});
  s.faults.port_kills.push_back({1, 600, 900});
  s.scrub_interval = 200;
  return s;
}

TEST(Determinism, SimPathTraceIsByteIdenticalAcrossRuns) {
  const Scenario s = sim_scenario();
  const std::string a = jsonl_trace(s);
  const std::string b = jsonl_trace(s);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, FuzzPathTraceIsByteIdenticalAcrossRuns) {
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Scenario s = generate_scenario(i, 2026);
    EXPECT_EQ(jsonl_trace(s), jsonl_trace(s)) << s.name;
  }
}

TEST(Determinism, ChaosPathTraceIsByteIdenticalAcrossRuns) {
  const Scenario s = chaos_scenario();
  const std::string a = jsonl_trace(s);
  // The fault schedule must itself be deterministic, so the traces match
  // event-for-event including every injected fault and scrub repair.
  EXPECT_NE(a.find("\"fault\""), std::string::npos)
      << "chaos scenario injected no faults — the test would be vacuous";
  EXPECT_EQ(a, jsonl_trace(s));
}

TEST(Determinism, GoldenTraceMatchesItselfAndDiffersAcrossSeeds) {
  Scenario s = sim_scenario();
  const std::string a = golden_trace(s);
  EXPECT_EQ(a, golden_trace(s));
  s.seed = 78;
  // Different seed, different injection draws, different trace — guards
  // against the trace accidentally ignoring the seed.
  EXPECT_NE(a, golden_trace(s));
}

// -- Kernel and fast-forward invariance -------------------------------------
//
// The bit-sliced kernel and idle-cycle fast-forward are pure execution
// optimisations: the full JSONL event stream must be byte-identical across
// {scalar, bitsliced} x {fast-forward on, off}. The reference trace comes
// from the manual step() loop above (where fast-forward can never engage),
// so these tests prove run()'s clock jumps are invisible even against the
// most naive execution.

/// Like jsonl_trace() but drives the switch through run(), the only entry
/// point where fast-forward engages. Reports the cycles actually skipped.
std::string jsonl_trace_run(Scenario s, core::ArbKernel kernel,
                            bool fast_forward, Cycle* skipped = nullptr,
                            bool specialize = true) {
  s.kernel = kernel;
  s.fast_forward = fast_forward;
  s.specialize = specialize;
  ScenarioRun rig = instantiate(s);
  std::ostringstream out;
  obs::JsonlSink sink(out);
  obs::Tracer tracer(sink);
  obs::SwitchProbe probe(s.radix);
  probe.set_tracer(&tracer);
  rig.sim->attach_probe(&probe);
  rig.sim->run(s.cycles);
  rig.sim->attach_probe(nullptr);
  tracer.finish();
  if (skipped != nullptr) *skipped = rig.sim->ff_skipped_cycles();
  return out.str();
}

void expect_trace_invariant(const Scenario& base) {
  Scenario stepped = base;
  stepped.kernel = core::ArbKernel::Scalar;
  const std::string ref = jsonl_trace(stepped);
  ASSERT_FALSE(ref.empty());
  for (const auto kernel :
       {core::ArbKernel::Scalar, core::ArbKernel::Bitsliced,
        core::ArbKernel::Simd}) {
    for (const bool ff : {false, true}) {
      EXPECT_EQ(ref, jsonl_trace_run(base, kernel, ff))
          << base.name << " kernel=" << core::to_string(kernel)
          << " fast_forward=" << ff;
    }
  }
  // The fully dynamic step pipeline (specialize=false) against the same
  // reference: the compile-time specialized pipelines above and the generic
  // one must be indistinguishable event for event.
  for (const bool ff : {false, true}) {
    EXPECT_EQ(ref, jsonl_trace_run(base, core::ArbKernel::Bitsliced, ff,
                                   nullptr, /*specialize=*/false))
        << base.name << " generic pipeline fast_forward=" << ff;
  }
}

/// sim_scenario() under GSF source regulation: the frame/barrier/quota
/// bookkeeping must survive kernel swaps, fast-forward's retroactive frame
/// catch-up, and both step pipelines.
Scenario gsf_scenario() {
  Scenario s = sim_scenario();
  s.name = "determinism-gsf";
  s.gsf.enabled = true;
  s.gsf.frame_cycles = 128;
  s.gsf.barrier_cycles = 8;
  return s;
}

TEST(KernelInvariance, SimAndChaosTracesIdenticalAcrossKernelAndFF) {
  expect_trace_invariant(sim_scenario());
  expect_trace_invariant(chaos_scenario());
}

TEST(KernelInvariance, GsfTracesIdenticalAcrossKernelAndFF) {
  expect_trace_invariant(gsf_scenario());
}

/// sim_scenario() re-run through a matching engine instead of the classic
/// single-request arbiters.
Scenario engine_scenario(arb::MatchKind kind) {
  Scenario s = sim_scenario();
  s.name = "determinism-engine-" + std::string(arb::match_kind_name(kind));
  s.matching_engine = kind;
  s.match_iterations = 3;
  return s;
}

TEST(KernelInvariance, EngineTracesIdenticalAcrossKernelAndFF) {
  // Every matching engine must be as kernel- and fast-forward-invariant as
  // the classic path: the engine RNG stream advances only on non-quiescent
  // cycles, so skipped idle cycles leave it untouched.
  for (const auto kind : {arb::MatchKind::Islip, arb::MatchKind::Qps,
                          arb::MatchKind::SwQps, arb::MatchKind::Ssvc}) {
    expect_trace_invariant(engine_scenario(kind));
    if (HasFailure()) return;  // one divergent engine floods the log
  }
}

TEST(KernelInvariance, FuzzTracesIdenticalAcrossKernelAndFF) {
  for (std::uint64_t i = 0; i < 5; ++i) {
    expect_trace_invariant(generate_scenario(i, 2026));
    if (HasFailure()) return;  // one divergent scenario floods the log
  }
}

/// A workload idle ~97% of the time: two synchronized periodic BE flows
/// with long quiescent gaps between bursts (period 400) — the shape on
/// which fast-forward must genuinely engage.
Scenario sparse_scenario() {
  Scenario s;
  s.name = "determinism-sparse";
  s.seed = 9;
  s.cycles = 4000;
  s.radix = 8;
  for (std::uint32_t i = 0; i < 2; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 5;
    f.inject = traffic::InjectKind::Periodic;
    f.len_min = 8;
    f.len_max = 8;
    f.inject_rate = 0.02;
    s.flows.push_back(f);
  }
  return s;
}

TEST(KernelInvariance, FastForwardEngagesOnSparseTrafficWithoutTraceDrift) {
  // Here the clock genuinely jumps (ff_skipped_cycles > 0), so the equality
  // against the stepped reference is a non-vacuous proof that skipped idle
  // cycles touch no observable state.
  const Scenario s = sparse_scenario();
  Scenario stepped = s;
  stepped.kernel = core::ArbKernel::Scalar;
  const std::string ref = jsonl_trace(stepped);
  Cycle skipped = 0;
  const std::string ff_trace =
      jsonl_trace_run(s, core::ArbKernel::Bitsliced, true, &skipped);
  EXPECT_GT(skipped, s.cycles / 2)
      << "fast-forward never engaged — the invariance check is vacuous";
  EXPECT_EQ(ref, ff_trace);
  Cycle noff_skipped = 0;
  const std::string noff_trace =
      jsonl_trace_run(s, core::ArbKernel::Bitsliced, false, &noff_skipped);
  EXPECT_EQ(noff_skipped, 0u);
  EXPECT_EQ(ref, noff_trace);
  // The SIMD kernel through the same genuinely-engaging fast-forward run.
  Cycle simd_skipped = 0;
  const std::string simd_trace =
      jsonl_trace_run(s, core::ArbKernel::Simd, true, &simd_skipped);
  EXPECT_GT(simd_skipped, s.cycles / 2);
  EXPECT_EQ(ref, simd_trace);
}

TEST(KernelInvariance, FastForwardEngagesOnFaultedSparseScenario) {
  // Sparse periodic traffic plus the full fault stack (bitflip process,
  // stuck lane, port outage, periodic scrubber). Before the event-horizon
  // fast-forward this configuration was flatly ineligible; now the clock
  // must genuinely jump between the plan's events (skipped > 0) while the
  // trace — faults, repairs and quarantines included — stays byte-identical
  // to the fully stepped run, on both step pipelines.
  Scenario s = sparse_scenario();
  s.name = "determinism-faulted-sparse";
  s.cycles = 6000;
  s.faults.seed = 777;
  s.faults.bitflip_rate = 0.001;
  s.faults.stuck_lanes.push_back({5, 1, true, 900});
  s.faults.port_kills.push_back({1, 1500, 2500});
  s.scrub_interval = 400;

  Scenario stepped = s;
  stepped.kernel = core::ArbKernel::Scalar;
  const std::string ref = jsonl_trace(stepped);
  EXPECT_NE(ref.find("\"fault\""), std::string::npos)
      << "no faults fired — the invariance check is vacuous";
  for (const bool specialize : {false, true}) {
    Cycle skipped = 0;
    const std::string ff_trace = jsonl_trace_run(
        s, core::ArbKernel::Bitsliced, true, &skipped, specialize);
    EXPECT_GT(skipped, 0u)
        << "fast-forward never engaged on the faulted sparse scenario "
           "(specialize=" << specialize << ")";
    EXPECT_EQ(ref, ff_trace) << "specialize=" << specialize;
  }
  Cycle noff_skipped = 0;
  EXPECT_EQ(ref, jsonl_trace_run(s, core::ArbKernel::Bitsliced, false,
                                 &noff_skipped));
  EXPECT_EQ(noff_skipped, 0u);
}

TEST(KernelInvariance, FastForwardEngagesUnderConformanceMonitor) {
  // The sparse run again with a probe + QoS conformance monitor attached
  // (the --monitor plane): the monitor's on_clock_jump coalesces whole
  // skipped windows, so fast-forward stays engaged and every verdict —
  // window counts, violation counts, the full event trace — matches the
  // stepped run on both pipelines.
  const Scenario base = sparse_scenario();
  struct MonRun {
    std::string trace;
    std::uint64_t windows = 0;
    std::uint64_t violations = 0;
    Cycle skipped = 0;
  };
  const auto run_monitored = [&](bool ff, bool specialize) {
    Scenario v = base;
    v.fast_forward = ff;
    v.specialize = specialize;
    ScenarioRun rig = instantiate(v);
    std::ostringstream out;
    obs::JsonlSink sink(out);
    obs::Tracer tracer(sink);
    obs::SwitchProbe probe(v.radix);
    probe.set_tracer(&tracer);
    obs::ConformanceMonitor monitor(sw::make_conformance_config(
        rig.sim->config(), rig.sim->workload(), /*window=*/256));
    probe.set_extra_sink(&monitor);
    rig.sim->attach_probe(&probe);
    rig.sim->run(v.cycles);
    monitor.finalize(rig.sim->now());
    rig.sim->attach_probe(nullptr);
    tracer.finish();
    MonRun r;
    r.trace = out.str();
    r.windows = monitor.windows_total();
    r.violations = monitor.violations(obs::ViolationKind::GbShare) +
                   monitor.violations(obs::ViolationKind::GlLatency) +
                   monitor.violations(obs::ViolationKind::BeStarvation);
    r.skipped = rig.sim->ff_skipped_cycles();
    return r;
  };
  const MonRun ref = run_monitored(false, true);
  ASSERT_GT(ref.windows, 0u) << "monitor judged no windows — vacuous";
  EXPECT_EQ(ref.skipped, 0u);
  for (const bool specialize : {false, true}) {
    const MonRun ff = run_monitored(true, specialize);
    EXPECT_GT(ff.skipped, 0u)
        << "fast-forward never engaged under the monitor (specialize="
        << specialize << ")";
    EXPECT_EQ(ref.trace, ff.trace) << "specialize=" << specialize;
    EXPECT_EQ(ref.windows, ff.windows) << "specialize=" << specialize;
    EXPECT_EQ(ref.violations, ff.violations) << "specialize=" << specialize;
  }
}

// -- Determinism under parallelism -----------------------------------------
//
// The --jobs campaign and the sweep benches promise byte-identical results
// at any thread count: scenario generation and execution depend only on
// (index, base_seed), and exec::run_batch stores results by index. These
// tests replay a 100-scenario campaign and a trace corpus serially and on
// an 8-thread pool and require identical output.

/// Everything a campaign verdict consists of, per scenario.
struct Verdict {
  bool failed = false;
  std::string kind;
  Cycle fail_cycle = 0;
  std::uint64_t grants_checked = 0;
  std::uint64_t delivered = 0;
  std::uint64_t violations = 0;       // conformance totals (monitor runs)
  std::uint64_t windows_checked = 0;  // judged windows (monitor runs)

  bool operator==(const Verdict&) const = default;
};

std::vector<Verdict> run_campaign(
    unsigned threads, std::uint64_t count, std::uint64_t base_seed,
    core::ArbKernel kernel = core::ArbKernel::Bitsliced,
    bool fast_forward = true, bool specialize = true, bool monitor = false) {
  exec::ThreadPool pool(threads);
  return exec::run_batch<Verdict>(pool, count, [&](std::size_t i) {
    Scenario s = generate_scenario(i, base_seed);
    s.kernel = kernel;
    s.fast_forward = fast_forward;
    s.specialize = specialize;
    CheckOptions opts;
    opts.monitor = monitor;
    const RunResult r = run_scenario(s, opts);
    return Verdict{r.failed,
                   r.kind,
                   r.fail_cycle,
                   r.grants_checked,
                   r.delivered,
                   r.violations_gb + r.violations_gl + r.violations_be,
                   r.windows_checked};
  });
}

TEST(DeterminismParallel, HundredScenarioCampaignIdenticalAtJobs1And8) {
  const auto serial = run_campaign(1, 100, 99);
  const auto parallel = run_campaign(8, 100, 99);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "scenario " << i;
  }
  // Every scenario of a healthy build passes; a campaign of 100 all-failing
  // verdicts comparing equal would be vacuous.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].failed) << "scenario " << i << ": "
                                   << serial[i].kind;
  }
}

TEST(DeterminismParallel, HundredScenarioCampaignIdenticalAcrossKernelAndFF) {
  // The fuzz campaign's verdicts (fail/pass, failure site, grant and
  // delivery counts) must not depend on which kernel ran or whether idle
  // cycles were fast-forwarded. The fastest configuration (bitsliced + FF,
  // the default) is the reference; the slowest (scalar, no FF) must agree
  // scenario by scenario.
  const auto fast = run_campaign(4, 100, 99);
  const auto slow =
      run_campaign(4, 100, 99, core::ArbKernel::Scalar, /*fast_forward=*/false);
  const auto simd =
      run_campaign(4, 100, 99, core::ArbKernel::Simd, /*fast_forward=*/true);
  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(fast.size(), simd.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], slow[i]) << "scenario " << i;
    EXPECT_EQ(fast[i], simd[i]) << "scenario " << i << " (simd kernel)";
    EXPECT_FALSE(fast[i].failed) << "scenario " << i << ": " << fast[i].kind;
  }
}

TEST(DeterminismParallel, TwoHundredScenarioCampaignIdenticalAcrossPipelines) {
  // {generic, specialized} step pipelines × {fast-forward, fully stepped},
  // with the conformance monitor attached to every scenario: the verdicts —
  // failure sites, grant and delivery counts, judged windows, violation
  // totals — must agree scenario for scenario across all four executions.
  const auto spec_ff =
      run_campaign(4, 200, 424242, core::ArbKernel::Bitsliced,
                   /*fast_forward=*/true, /*specialize=*/true, /*monitor=*/true);
  const auto spec_noff =
      run_campaign(4, 200, 424242, core::ArbKernel::Bitsliced,
                   /*fast_forward=*/false, /*specialize=*/true,
                   /*monitor=*/true);
  const auto dyn_ff =
      run_campaign(4, 200, 424242, core::ArbKernel::Bitsliced,
                   /*fast_forward=*/true, /*specialize=*/false,
                   /*monitor=*/true);
  const auto dyn_noff =
      run_campaign(4, 200, 424242, core::ArbKernel::Bitsliced,
                   /*fast_forward=*/false, /*specialize=*/false,
                   /*monitor=*/true);
  ASSERT_EQ(spec_ff.size(), 200u);
  std::uint64_t windows = 0;
  for (std::size_t i = 0; i < spec_ff.size(); ++i) {
    EXPECT_EQ(spec_ff[i], spec_noff[i]) << "scenario " << i << " (ff vs noff)";
    EXPECT_EQ(spec_ff[i], dyn_ff[i]) << "scenario " << i << " (generic ff)";
    EXPECT_EQ(spec_ff[i], dyn_noff[i]) << "scenario " << i
                                       << " (generic noff)";
    EXPECT_FALSE(spec_ff[i].failed)
        << "scenario " << i << ": " << spec_ff[i].kind;
    windows += spec_ff[i].windows_checked;
  }
  EXPECT_GT(windows, 0u) << "no conformance windows judged — the monitored "
                            "leg of this sweep is vacuous";
}

TEST(DeterminismParallel, GoldenTraceCorpusIdenticalUnderPool) {
  // Golden traces rendered inside pool workers must equal the serially
  // rendered ones byte for byte (the property the corpus refresh workflow
  // relies on when run with --jobs).
  constexpr std::uint64_t kCount = 8;
  std::vector<std::string> serial;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    serial.push_back(golden_trace(generate_scenario(i, 2026)));
  }
  exec::ThreadPool pool(8);
  const auto parallel = exec::run_batch<std::string>(
      pool, kCount,
      [](std::size_t i) { return golden_trace(generate_scenario(i, 2026)); });
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "scenario " << i;
  }
}

TEST(DeterminismParallel, EngineScenarioTracesIdenticalUnderPool) {
  // The engine scenarios of the golden corpus are refreshed with --jobs like
  // every other scenario: rendering them inside pool workers must be
  // byte-identical to the serial render, for all four engines at once.
  const std::vector<arb::MatchKind> kinds = {
      arb::MatchKind::Islip, arb::MatchKind::Qps, arb::MatchKind::SwQps,
      arb::MatchKind::Ssvc};
  std::vector<std::string> serial;
  for (const auto kind : kinds) {
    serial.push_back(golden_trace(engine_scenario(kind)));
  }
  exec::ThreadPool pool(8);
  const auto parallel = exec::run_batch<std::string>(
      pool, kinds.size(),
      [&](std::size_t i) { return golden_trace(engine_scenario(kinds[i])); });
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    ASSERT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i])
        << arb::match_kind_name(kinds[i]);
  }
}

}  // namespace
}  // namespace ssq::check
