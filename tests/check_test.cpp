// Tests for src/check/: the differential oracle, the scenario fuzzer, the
// shrinker, and — crucially — the self-test that a deliberately planted
// defect in the reference model is caught and shrunk to a tiny repro. A
// checker that never fires is worse than none.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arb/matching.hpp"
#include "check/differential.hpp"
#include "check/reference.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "check/trace.hpp"
#include "sim/error.hpp"

namespace ssq::check {
namespace {

constexpr std::uint64_t kCampaignSeed = 12345;

/// First generated scenario (index < limit) that fails under `opts`.
Scenario find_failing(const CheckOptions& opts, std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    Scenario s = generate_scenario(i, kCampaignSeed);
    if (run_scenario(s, opts).failed) return s;
  }
  ADD_FAILURE() << "no generated scenario tripped the planted bug in "
                << limit << " tries";
  return generate_scenario(0, kCampaignSeed);
}

TEST(Differential, RandomScenariosAgreeThreeWays) {
  std::uint64_t grants = 0;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const Scenario s = generate_scenario(i, kCampaignSeed);
    const RunResult r = run_scenario(s);
    EXPECT_FALSE(r.failed) << s.name << ": " << r.kind << " at cycle "
                           << r.fail_cycle << "\n" << r.detail;
    grants += r.grants_checked;
  }
  // The campaign must actually exercise arbitration, not vacuously pass.
  EXPECT_GT(grants, 1000u);
}

TEST(Differential, FaultedScenariosKeepInvariantChecks) {
  // Find a generated scenario that carries a fault plan; the checker must
  // drop to invariants-only (no oracle false positives) yet still verify
  // grant uniqueness and packet conservation.
  for (std::uint64_t i = 0; i < 50; ++i) {
    Scenario s = generate_scenario(i, kCampaignSeed);
    if (!s.has_faults()) continue;
    ScenarioRun rig = instantiate(s);
    DifferentialChecker checker(*rig.sim);
    EXPECT_FALSE(checker.options().differential);
    EXPECT_TRUE(checker.run(s.cycles))
        << checker.divergence()->kind << "\n" << checker.divergence()->detail;
    return;
  }
  FAIL() << "no generated scenario carried a fault plan in 50 tries";
}

TEST(Differential, ChecksEveryGrantOfACleanRun) {
  // Find a generated scenario on the classic single-request path (engine
  // scenarios run invariants-only and would make this vacuous).
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario s = generate_scenario(i, kCampaignSeed);
    if (s.has_faults() || s.matching_engine != arb::MatchKind::None) continue;
    ScenarioRun rig = instantiate(s);
    DifferentialChecker checker(*rig.sim);
    ASSERT_TRUE(checker.run(s.cycles));
    EXPECT_TRUE(checker.options().differential);
    EXPECT_GT(checker.grants_checked(), 0u);
    return;
  }
  FAIL() << "no clean engine-free scenario generated in 50 tries";
}

TEST(Differential, EveryMatchingEngineRunsCleanUnderInvariants) {
  // The engine knob forced onto the same handful of generated scenarios:
  // every engine must pass the invariant checks (grant uniqueness, packet
  // conservation, progress) on traffic it did not pick itself.
  std::uint64_t grants = 0;
  for (const auto kind : {arb::MatchKind::Islip, arb::MatchKind::Qps,
                          arb::MatchKind::SwQps, arb::MatchKind::Ssvc}) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      Scenario s = generate_scenario(i, kCampaignSeed);
      s.matching_engine = kind;
      s.match_iterations = 2;
      s.packet_chaining = false;
      const RunResult r = run_scenario(s);
      EXPECT_FALSE(r.failed)
          << s.name << " on " << arb::match_kind_name(kind) << ": " << r.kind
          << " at cycle " << r.fail_cycle << "\n" << r.detail;
      grants += r.grants_checked;
    }
  }
  EXPECT_GT(grants, 1000u) << "engine sweep exercised too little arbitration";
}

class PlantedBugP : public ::testing::TestWithParam<PlantedBug> {};

TEST_P(PlantedBugP, IsCaughtByTheFuzzer) {
  CheckOptions opts;
  opts.bug = GetParam();
  bool caught = false;
  for (std::uint64_t i = 0; i < 60 && !caught; ++i) {
    const Scenario s = generate_scenario(i, kCampaignSeed);
    caught = run_scenario(s, opts).failed;
  }
  EXPECT_TRUE(caught) << "planted bug '" << to_string(GetParam())
                      << "' survived 60 scenarios undetected";
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, PlantedBugP,
    ::testing::Values(PlantedBug::GbVtickOffByOne,
                      PlantedBug::LrgNoMoveToBack,
                      PlantedBug::GlAllowanceOffByOne,
                      PlantedBug::SkipEpochWrap,
                      PlantedBug::EngineStarve),
    [](const auto& pinfo) { return std::string(to_string(pinfo.param)); });

TEST(Shrink, OffByOneShrinksToATinyRepro) {
  CheckOptions opts;
  opts.bug = PlantedBug::GbVtickOffByOne;
  const Scenario failing = find_failing(opts, 60);

  const ShrinkResult sh = shrink(failing, opts);
  EXPECT_LE(sh.scenario.cycles, 10u) << "shrunk repro still "
                                     << sh.scenario.cycles << " cycles";
  EXPECT_LE(sh.scenario.flows.size(), 2u);
  EXPECT_TRUE(sh.failure.failed);

  // The minimised scenario must still reproduce, including after a
  // serialise/parse round trip (that file is what gets committed).
  std::ostringstream out;
  write_scenario(out, sh.scenario);
  std::istringstream in(out.str());
  const Scenario reloaded = parse_scenario(in, "repro");
  EXPECT_TRUE(run_scenario(reloaded, opts).failed);
  // ...and pass once the defect is gone: the repro blames the bug, not the
  // scenario.
  EXPECT_FALSE(run_scenario(reloaded).failed);
}

TEST(Scenario, SerialisationRoundTripsExactly) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Scenario s = generate_scenario(i, 0xfeedULL);
    std::ostringstream first;
    write_scenario(first, s);
    std::istringstream in(first.str());
    const Scenario back = parse_scenario(in, "round-trip");
    std::ostringstream second;
    write_scenario(second, back);
    // Byte-equal re-serialisation covers every field, including u64 seeds
    // (which would not survive a double round trip) and full-precision
    // rates.
    EXPECT_EQ(first.str(), second.str()) << "scenario " << i;
    EXPECT_EQ(s.seed, back.seed);
    EXPECT_EQ(s.faults.seed, back.faults.seed);
  }
}

TEST(Scenario, GeneratorIsDeterministic) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::ostringstream a, b;
    write_scenario(a, generate_scenario(i, 42));
    write_scenario(b, generate_scenario(i, 42));
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(Scenario, ParserRejectsGarbageWithContext) {
  std::istringstream bad("scenario name=x seed=1 cycles=10\nradix 8\n"
                         "flow src=0 dst=99 class=be inject=bernoulli "
                         "load=0.1\n");
  EXPECT_THROW(
      { [[maybe_unused]] auto s = parse_scenario(bad, "bad"); }, ConfigError);
  std::istringstream junk("wibble a=1\n");
  EXPECT_THROW({ [[maybe_unused]] auto s = parse_scenario(junk, "junk"); },
               ConfigError);
}

TEST(Reference, LrgStartsInPortOrderAndMovesToBack) {
  core::SsvcParams params;
  ReferenceOutput ref(4, params, core::OutputAllocation::none(4),
                      core::GlPolicing::Stall, 32);
  ref.advance_to(0);
  const core::ClassRequest reqs[] = {{1, TrafficClass::BestEffort, 1},
                                     {2, TrafficClass::BestEffort, 1}};
  EXPECT_EQ(ref.pick(reqs, 0).winner, 1u);  // lowest index most preferred
  ref.on_grant(1, TrafficClass::BestEffort, 0);
  EXPECT_EQ(ref.pick(reqs, 0).winner, 2u);  // 1 moved to the back
  EXPECT_EQ(ref.lrg_rank(1), 3u);
}

}  // namespace
}  // namespace ssq::check
