// Tests for src/circuit: bus bits, lane layout, the Fig. 1(b)/Fig. 3
// discharge cells, and the §4.1 verification — circuit decisions equal the
// golden reference for all thermometer-code combinations and valid LRG
// states (exhaustive for small configurations, randomized for radix 8).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "arb/lrg.hpp"
#include "circuit/bus_bits.hpp"
#include "circuit/circuit_arbiter.hpp"
#include "circuit/discharge.hpp"
#include "circuit/lane_layout.hpp"
#include "circuit/sense_mux.hpp"
#include "sim/rng.hpp"

namespace ssq::circuit {
namespace {

// ------------------------------------------------------------ BusBits ----

TEST(BusBitsTest, SetGetClear) {
  BusBits b(128);
  EXPECT_FALSE(b.get(0));
  b.set(0);
  b.set(127);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(127));
  EXPECT_EQ(b.popcount(), 2u);
  b.clear(0);
  EXPECT_FALSE(b.get(0));
  b.clear_all();
  EXPECT_EQ(b.popcount(), 0u);
}

TEST(BusBitsTest, SetRangeCrossesWords) {
  BusBits b(128);
  b.set_range(60, 0xFFULL, 8);  // spans the word boundary at 64
  for (std::uint32_t i = 60; i < 68; ++i) EXPECT_TRUE(b.get(i));
  EXPECT_FALSE(b.get(59));
  EXPECT_FALSE(b.get(68));
}

TEST(BusBitsTest, WiredOr) {
  BusBits a(64), b(64);
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_TRUE(a.get(1));
  EXPECT_TRUE(a.get(2));
}

// --------------------------------------------------------- LaneLayout ----

TEST(LaneLayoutTest, LaneArithmetic) {
  LaneLayout l{.radix = 8, .bus_width = 128, .gb_lanes = 8,
               .has_gl_lane = true, .has_be_lane = true};
  l.validate();
  EXPECT_EQ(l.num_lanes(), 16u);
  EXPECT_EQ(l.lanes_used(), 10u);
  EXPECT_EQ(l.gl_lane(), 8u);
  EXPECT_EQ(l.be_lane(), 9u);
  EXPECT_EQ(l.level_bits(), 3u);
  // Fig. 1: input 2 senses wires 2, 10, 18, ..., 58 on a radix-8 bus.
  for (std::uint32_t lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(l.wire(lane, 2), lane * 8 + 2);
  }
}

TEST(LaneLayoutTest, Fig4ConfigurationUsesAllLanesForGb) {
  // 128-bit bus, radix 8, GB only: 16 lanes = 4 significant auxVC bits.
  LaneLayout l{.radix = 8, .bus_width = 128, .gb_lanes = 16,
               .has_gl_lane = false, .has_be_lane = false};
  l.validate();
  EXPECT_EQ(l.level_bits(), 4u);
  EXPECT_EQ(l.lanes_used(), 16u);
}

// ---------------------------------------------------- Discharge cells ----

TEST(DischargeTest, Fig1bTruthTable) {
  // Input at level 3 of 8 lanes, LRG row 0b0110 (beats inputs 1 and 2).
  core::ThermometerCode code(8, 3);
  const std::uint64_t lrg_row = 0b0110;
  // Lanes above the level (T_i == 0): discharge everything.
  for (std::uint32_t lane = 4; lane < 8; ++lane) {
    EXPECT_EQ(gb_lane_decision(code, lane, lrg_row, 4).bits, 0b1111u)
        << "lane " << lane;
  }
  // Own lane (T_i == 1, T_{i+1} == 0): LRG row.
  EXPECT_EQ(gb_lane_decision(code, 3, lrg_row, 4).bits, 0b0110u);
  // Lanes below (T_{i+1} == 1): nothing.
  for (std::uint32_t lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(gb_lane_decision(code, lane, lrg_row, 4).bits, 0u)
        << "lane " << lane;
  }
}

TEST(DischargeTest, TopLevelDischargesOnlyItsLrgRow) {
  core::ThermometerCode code(8, 7);  // all-ones thermometer (Fig. 1 In7)
  for (std::uint32_t lane = 0; lane < 7; ++lane) {
    EXPECT_EQ(gb_lane_decision(code, lane, 0b1, 8).bits, 0u);
  }
  EXPECT_EQ(gb_lane_decision(code, 7, 0b1, 8).bits, 0b1u);
}

TEST(DischargeTest, GlRequestDischargesAllGbLanes) {
  LaneLayout l{.radix = 4, .bus_width = 32, .gb_lanes = 4,
               .has_gl_lane = true, .has_be_lane = true};
  l.validate();
  core::ThermometerCode code(4, 0);
  const BusBits bus = discharge_vector(l, RequestKind::Gl, code, 0b0010);
  // All GB-lane wires discharged (Fig. 3).
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    for (InputId n = 0; n < 4; ++n) {
      EXPECT_TRUE(bus.get(l.wire(lane, n)));
    }
  }
  // GL lane: only the LRG row bit.
  EXPECT_FALSE(bus.get(l.wire(l.gl_lane(), 0)));
  EXPECT_TRUE(bus.get(l.wire(l.gl_lane(), 1)));
  EXPECT_FALSE(bus.get(l.wire(l.gl_lane(), 2)));
  // BE lane fully discharged.
  for (InputId n = 0; n < 4; ++n) {
    EXPECT_TRUE(bus.get(l.wire(l.be_lane(), n)));
  }
}

TEST(DischargeTest, BeRequestTouchesOnlyBeLane) {
  LaneLayout l{.radix = 4, .bus_width = 32, .gb_lanes = 4,
               .has_gl_lane = true, .has_be_lane = true};
  core::ThermometerCode code(4, 0);
  const BusBits bus =
      discharge_vector(l, RequestKind::BestEffort, code, 0b1100);
  for (std::uint32_t lane = 0; lane <= l.gl_lane(); ++lane) {
    for (InputId n = 0; n < 4; ++n) {
      EXPECT_FALSE(bus.get(l.wire(lane, n)));
    }
  }
  EXPECT_FALSE(bus.get(l.wire(l.be_lane(), 0)));
  EXPECT_FALSE(bus.get(l.wire(l.be_lane(), 1)));
  EXPECT_TRUE(bus.get(l.wire(l.be_lane(), 2)));
  EXPECT_TRUE(bus.get(l.wire(l.be_lane(), 3)));
}

TEST(DischargeTest, SenseWireSelection) {
  LaneLayout l{.radix = 8, .bus_width = 128, .gb_lanes = 8,
               .has_gl_lane = true, .has_be_lane = true};
  core::ThermometerCode code(8, 6);
  EXPECT_EQ(sense_wire(l, RequestKind::Gb, code, 0), 48u);  // Fig. 1: In0
  EXPECT_EQ(sense_wire(l, RequestKind::Gl, code, 3), l.wire(8, 3));
  EXPECT_EQ(sense_wire(l, RequestKind::BestEffort, code, 3), l.wire(9, 3));
}

// ----------------------------------------------------------- SenseMux ----

TEST(SenseMuxTest, DepthAndCount) {
  EXPECT_EQ(SenseMux(1).depth(), 0u);
  EXPECT_EQ(SenseMux(8).depth(), 3u);
  EXPECT_EQ(SenseMux(16).depth(), 4u);
  EXPECT_EQ(SenseMux(16).mux_count(), 15u);
}

TEST(SenseMuxTest, TreeSelectsTheSameWireAsDirectLookup) {
  LaneLayout l{.radix = 8, .bus_width = 64, .gb_lanes = 8,
               .has_gl_lane = false, .has_be_lane = false};
  l.validate();
  SenseMux mux(8);
  Rng rng(0x5e);
  for (int trial = 0; trial < 2000; ++trial) {
    BusBits bus(64);
    for (std::uint32_t wire = 0; wire < 64; ++wire) {
      if (rng.bernoulli(0.5)) bus.set(wire);
    }
    const auto n = static_cast<InputId>(rng.below(8));
    const auto level = static_cast<std::uint32_t>(rng.below(8));
    const bool direct = !bus.get(l.wire(level, n));
    ASSERT_EQ(mux.sense(bus, l, n, level), direct)
        << "n=" << n << " level=" << level;
  }
}

// ------------------------------------------------- Fig. 1 worked example ----

TEST(CircuitArbiterTest, PaperFig1Example) {
  // Fig. 1(a): In0..In7 levels from the 3 MSBs of their auxVC counters;
  // inputs 0, 1, 2, 5, 6 request output M. Levels: In0=6, In1=6, In2=4,
  // In5=4, In6=4. The paper's stated outcome: In0 and In1 lose to the
  // level-4 inputs; among In2/In5/In6, LRG picks In2 (sensing wire 34).
  LaneLayout l{.radix = 8, .bus_width = 64, .gb_lanes = 8,
               .has_gl_lane = false, .has_be_lane = false};
  arb::LrgArbiter lrg(8);
  // The paper's example has In1 with LRG priority over In0 (In1 discharges
  // wire 48), and In2 beating In5/In6 in lane 4. The initial index order
  // 0<1<...<7 gives In0 priority over In1; grant In0 once so In1 beats it.
  lrg.on_grant(0, 1, 0);
  CircuitArbiter circuit(l);
  std::vector<CrosspointRequest> reqs = {
      {0, RequestKind::Gb, 6}, {1, RequestKind::Gb, 6},
      {2, RequestKind::Gb, 4}, {5, RequestKind::Gb, 4},
      {6, RequestKind::Gb, 4},
  };
  const auto trace = circuit.arbitrate(reqs, lrg);
  EXPECT_EQ(trace.winner, 2u);
  // In2 senses wire 34 = lane 4 * 8 + 2 and it is still charged.
  EXPECT_EQ(trace.sensed_wire[2], 34u);
  EXPECT_TRUE(trace.sensed_charged[2]);
  // In0 senses wire 48, discharged by the level-4 inputs (and In1's LRG bit).
  EXPECT_EQ(trace.sensed_wire[0], 48u);
  EXPECT_FALSE(trace.sensed_charged[0]);
}

// --------------------------------------------- §4.1-style verification ----

/// Builds an LRG matrix from a priority permutation (perm[0] = top rank).
std::vector<std::uint64_t> matrix_from_permutation(
    const std::vector<InputId>& perm) {
  std::vector<std::uint64_t> rows(perm.size(), 0);
  for (std::size_t a = 0; a < perm.size(); ++a) {
    for (std::size_t b = a + 1; b < perm.size(); ++b) {
      rows[perm[a]] |= 1ULL << perm[b];
    }
  }
  return rows;
}

/// Exhaustive: every GB-level combination x every LRG total order x every
/// request subset, for a small configuration (the paper: "We tested this
/// program with all input combinations of thermometer code vectors and
/// valid LRG states").
TEST(CircuitVerificationTest, ExhaustiveRadix3GbOnly) {
  constexpr std::uint32_t kRadix = 3;
  constexpr std::uint32_t kLanes = 4;
  LaneLayout l{.radix = kRadix, .bus_width = kRadix * kLanes,
               .gb_lanes = kLanes, .has_gl_lane = false, .has_be_lane = false};
  CircuitArbiter circuit(l);
  arb::LrgArbiter lrg(kRadix);

  std::vector<InputId> perm = {0, 1, 2};
  std::sort(perm.begin(), perm.end());
  long cases = 0;
  do {
    lrg.set_matrix(matrix_from_permutation(perm));
    for (std::uint32_t mask = 1; mask < (1u << kRadix); ++mask) {
      // Enumerate all level combinations for the requesting subset.
      std::vector<InputId> members;
      for (InputId i = 0; i < kRadix; ++i) {
        if ((mask >> i) & 1u) members.push_back(i);
      }
      std::vector<std::uint32_t> levels(members.size(), 0);
      while (true) {
        std::vector<CrosspointRequest> reqs;
        for (std::size_t k = 0; k < members.size(); ++k) {
          reqs.push_back({members[k], RequestKind::Gb, levels[k]});
        }
        const auto trace = circuit.arbitrate(reqs, lrg);
        const InputId expect = reference_decision(reqs, lrg, l);
        ASSERT_EQ(trace.winner, expect);
        ++cases;
        // Odometer over levels.
        std::size_t d = 0;
        while (d < levels.size() && ++levels[d] == kLanes) {
          levels[d] = 0;
          ++d;
        }
        if (d == levels.size()) break;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  // 3! orders x (subsets with their level spaces) — make sure we really
  // swept a nontrivial space.
  EXPECT_GT(cases, 500);
}

/// Exhaustive with all three classes at radix 2 x 2 GB lanes.
TEST(CircuitVerificationTest, ExhaustiveRadix2AllClasses) {
  constexpr std::uint32_t kRadix = 2;
  LaneLayout l{.radix = kRadix, .bus_width = 8, .gb_lanes = 2,
               .has_gl_lane = true, .has_be_lane = true};
  CircuitArbiter circuit(l);
  arb::LrgArbiter lrg(kRadix);

  const RequestKind kinds[] = {RequestKind::None, RequestKind::BestEffort,
                               RequestKind::Gb, RequestKind::Gl};
  for (int order = 0; order < 2; ++order) {
    lrg.set_matrix(matrix_from_permutation(
        order == 0 ? std::vector<InputId>{0, 1} : std::vector<InputId>{1, 0}));
    for (RequestKind k0 : kinds) {
      for (RequestKind k1 : kinds) {
        if (k0 == RequestKind::None && k1 == RequestKind::None) continue;
        for (std::uint32_t l0 = 0; l0 < 2; ++l0) {
          for (std::uint32_t l1 = 0; l1 < 2; ++l1) {
            std::vector<CrosspointRequest> reqs;
            if (k0 != RequestKind::None) reqs.push_back({0, k0, l0});
            if (k1 != RequestKind::None) reqs.push_back({1, k1, l1});
            const auto trace = circuit.arbitrate(reqs, lrg);
            ASSERT_EQ(trace.winner, reference_decision(reqs, lrg, l));
          }
        }
      }
    }
  }
}

/// Randomized at radix 8 with all classes and 8 GB lanes.
TEST(CircuitVerificationTest, RandomizedRadix8) {
  LaneLayout l{.radix = 8, .bus_width = 128, .gb_lanes = 8,
               .has_gl_lane = true, .has_be_lane = true};
  CircuitArbiter circuit(l);
  arb::LrgArbiter lrg(8);
  Rng rng(2014);

  for (int trial = 0; trial < 20000; ++trial) {
    // Random valid LRG state via random grant.
    lrg.on_grant(static_cast<InputId>(rng.below(8)), 1, 0);
    std::vector<CrosspointRequest> reqs;
    for (InputId i = 0; i < 8; ++i) {
      switch (rng.below(4)) {
        case 0: break;  // no request
        case 1: reqs.push_back({i, RequestKind::BestEffort, 0}); break;
        case 2:
          reqs.push_back(
              {i, RequestKind::Gb, static_cast<std::uint32_t>(rng.below(8))});
          break;
        case 3: reqs.push_back({i, RequestKind::Gl, 0}); break;
      }
    }
    if (reqs.empty()) continue;
    const auto trace = circuit.arbitrate(reqs, lrg);
    ASSERT_EQ(trace.winner, reference_decision(reqs, lrg, l));
  }
}

/// The single-winner invariant holds at radix 64 / 512-bit — the largest
/// configuration in the paper (Table 1).
TEST(CircuitVerificationTest, Radix64LargestConfiguration) {
  LaneLayout l{.radix = 64, .bus_width = 512, .gb_lanes = 4,
               .has_gl_lane = true, .has_be_lane = true};
  l.validate();
  CircuitArbiter circuit(l);
  arb::LrgArbiter lrg(64);
  Rng rng(64);
  for (int trial = 0; trial < 500; ++trial) {
    lrg.on_grant(static_cast<InputId>(rng.below(64)), 1, 0);
    std::vector<CrosspointRequest> reqs;
    for (InputId i = 0; i < 64; ++i) {
      if (rng.bernoulli(0.5)) {
        reqs.push_back(
            {i, RequestKind::Gb, static_cast<std::uint32_t>(rng.below(4))});
      }
    }
    if (reqs.empty()) continue;
    const auto trace = circuit.arbitrate(reqs, lrg);
    ASSERT_EQ(trace.winner, reference_decision(reqs, lrg, l));
  }
}

}  // namespace
}  // namespace ssq::circuit
