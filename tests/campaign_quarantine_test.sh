#!/bin/sh
# Watchdog + quarantine teeth for ssq_campaign (see docs/CAMPAIGN.md): a
# planted hang must be caught by the heartbeat watchdog, retried with
# backoff, and quarantined as a poisoned-*.scenario repro — and the campaign
# must still complete with exit 0 and an explicit quarantine count. A planted
# crash exercises the supervisor's restart path the same way.
#
# Usage: campaign_quarantine_test.sh <path-to-ssq_campaign>
set -eu

BIN=$1
TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssq_campaign_quar.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- planted hang: watchdog -> retry -> quarantine --------------------------
set +e
"$BIN" --new="$TMP/hang" --scenarios=6 --shards=2 --seed=1 \
  --plant-hang=2 --scenario-timeout-ms=400 --max-attempts=2 --backoff-ms=100 \
  --quiet
CODE=$?
set -e
[ "$CODE" -eq 0 ] || fail "hang campaign exited $CODE, expected 0 (a poisoned input must not fail the run)"

grep -q '"quarantined":1' "$TMP/hang/report.json" \
  || fail "report.json does not count exactly one quarantined unit"
grep -q '"kind":"hang"' "$TMP/hang/report.json" \
  || fail "quarantine incident does not carry reason 'hang'"
[ -f "$TMP/hang/poisoned-1-2.scenario" ] \
  || fail "poisoned repro file missing"
grep -q '# quarantined: reason=hang attempts=2' "$TMP/hang/poisoned-1-2.scenario" \
  || fail "poisoned repro missing its quarantine trailer"
WD=$(sed -n 's/.*"watchdog_kills":\([0-9]*\).*/\1/p' "$TMP/hang/execution.json")
[ "${WD:-0}" -ge 2 ] \
  || fail "expected >=2 watchdog kills in execution.json, got '${WD:-}'"

# --- planted crash: supervisor restart -> retry -> quarantine ---------------
set +e
"$BIN" --new="$TMP/crash" --scenarios=6 --shards=2 --seed=1 \
  --plant-crash=4 --scenario-timeout-ms=5000 --max-attempts=2 --backoff-ms=100 \
  --quiet
CODE=$?
set -e
[ "$CODE" -eq 0 ] || fail "crash campaign exited $CODE, expected 0"
grep -q '"quarantined":1' "$TMP/crash/report.json" \
  || fail "crash campaign report does not count one quarantined unit"
[ -f "$TMP/crash/poisoned-1-4.scenario" ] \
  || fail "poisoned repro for the crashing unit missing"
RS=$(sed -n 's/.*"worker_restarts":\([0-9]*\).*/\1/p' "$TMP/crash/execution.json")
[ "${RS:-0}" -ge 2 ] \
  || fail "expected >=2 worker restarts in execution.json, got '${RS:-}'"

echo "ok: hang quarantined after watchdog kills, crash quarantined after worker restarts, both campaigns exit 0"
