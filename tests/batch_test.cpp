// Byte-identity tests for the SoA batch plane: sw::SwitchBatch and
// check::run_scenario_batch promise results byte-identical to running each
// instance serially — any interleaving the lock-step scheduler picks must be
// invisible, because instances share no state and each receives exactly the
// serial call sequence. These tests take the promise literally: full JSONL
// event traces for SwitchBatch, every RunResult field (flight dumps
// included) for the scenario batch, over the golden corpus and a generated
// campaign, at several batch widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "obs/json.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "switch/crossbar.hpp"
#include "switch/switch_batch.hpp"
#include "traffic/flow.hpp"

namespace ssq::check {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SSQ_GOLDEN_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// A traced rig: the instantiated scenario plus a JSONL tracer capturing its
/// full event stream. Address-pinned (the probe holds the tracer, the sim
/// holds the probe), hence unique_ptr storage below.
struct TracedRun {
  ScenarioRun rig;
  std::ostringstream out;
  std::unique_ptr<obs::JsonlSink> sink;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::SwitchProbe> probe;

  explicit TracedRun(const Scenario& s) : rig(instantiate(s)) {
    sink = std::make_unique<obs::JsonlSink>(out);
    tracer = std::make_unique<obs::Tracer>(*sink);
    probe = std::make_unique<obs::SwitchProbe>(s.radix);
    probe->set_tracer(tracer.get());
    rig.sim->attach_probe(probe.get());
  }
  std::string finish() {
    rig.sim->attach_probe(nullptr);
    tracer->finish();
    return out.str();
  }
};

/// A mixed bag of scenarios for the SwitchBatch trace test: generated fuzz
/// scenarios (different radices, lengths, fault plans) plus one sparse
/// periodic scenario where fast-forward genuinely engages, so the parking
/// path is exercised, not just compiled.
std::vector<Scenario> mixed_scenarios() {
  std::vector<Scenario> out;
  for (std::uint64_t i = 0; i < 6; ++i) {
    out.push_back(generate_scenario(i, 0xba7c4));
  }
  Scenario sparse;
  sparse.name = "batch-sparse";
  sparse.seed = 9;
  sparse.cycles = 4000;
  sparse.radix = 8;
  for (std::uint32_t i = 0; i < 2; ++i) {
    traffic::FlowSpec f;
    f.src = i;
    f.dst = 5;
    f.inject = traffic::InjectKind::Periodic;
    f.len_min = 8;
    f.len_max = 8;
    f.inject_rate = 0.02;  // period 400: long quiescent gaps, FF engages
    sparse.flows.push_back(f);
  }
  out.push_back(sparse);
  return out;
}

TEST(SwitchBatch, TracesIdenticalToSerialRuns) {
  const std::vector<Scenario> scenarios = mixed_scenarios();

  // Serial reference: each rig runs alone, in two legs to also cover
  // re-entering run() with carried-over state.
  std::vector<std::string> serial;
  for (const Scenario& s : scenarios) {
    TracedRun run(s);
    run.rig.sim->run(s.cycles / 2);
    run.rig.sim->run(s.cycles - s.cycles / 2);
    serial.push_back(run.finish());
    ASSERT_FALSE(serial.back().empty()) << s.name;
  }

  // Single-instance batches, re-entered mid-run: the batch scheduler
  // degenerates to serial order but the batch code path (stride loop,
  // parking test, per-instance targets) still executes, against the
  // two-leg serial reference.
  std::vector<std::unique_ptr<TracedRun>> runs;
  std::vector<sw::CrossbarSwitch*> sims;
  for (const Scenario& s : scenarios) {
    runs.push_back(std::make_unique<TracedRun>(s));
    sims.push_back(runs.back()->rig.sim.get());
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    sw::SwitchBatch solo({sims[i]});
    solo.run(scenarios[i].cycles / 2);
    solo.run(scenarios[i].cycles - scenarios[i].cycles / 2);
    EXPECT_EQ(runs[i]->finish(), serial[i]) << scenarios[i].name;
  }

  // One-leg mixed batch vs one-leg serial reference.
  std::vector<std::string> serial_one;
  for (const Scenario& s : scenarios) {
    TracedRun run(s);
    run.rig.sim->run(s.cycles);
    serial_one.push_back(run.finish());
  }
  std::vector<std::unique_ptr<TracedRun>> mixed;
  std::vector<sw::CrossbarSwitch*> mixed_sims;
  for (const Scenario& s : scenarios) {
    mixed.push_back(std::make_unique<TracedRun>(s));
    mixed_sims.push_back(mixed.back()->rig.sim.get());
  }
  // Equal-length run: every instance advances its own `cycles`; instances
  // with shorter scenarios would overrun, so run the minimum and then top
  // each up individually — per-instance sequences stay serial regardless.
  sw::SwitchBatch all(mixed_sims);
  Cycle min_cycles = scenarios.front().cycles;
  for (const Scenario& s : scenarios) {
    min_cycles = std::min(min_cycles, s.cycles);
  }
  all.run(min_cycles);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (scenarios[i].cycles > min_cycles) {
      mixed[i]->rig.sim->run(scenarios[i].cycles - min_cycles);
    }
    EXPECT_EQ(mixed[i]->finish(), serial_one[i])
        << scenarios[i].name << " (mixed batch)";
  }
}

// ---- run_scenario_batch vs run_scenario -----------------------------------

void expect_equal_results(const RunResult& a, const RunResult& b,
                          const std::string& context) {
  EXPECT_EQ(a.failed, b.failed) << context;
  EXPECT_EQ(a.fail_cycle, b.fail_cycle) << context;
  EXPECT_EQ(a.output, b.output) << context;
  EXPECT_EQ(a.kind, b.kind) << context;
  EXPECT_EQ(a.detail, b.detail) << context;
  EXPECT_EQ(a.grants_checked, b.grants_checked) << context;
  EXPECT_EQ(a.delivered, b.delivered) << context;
  EXPECT_EQ(a.violations_gb, b.violations_gb) << context;
  EXPECT_EQ(a.violations_gl, b.violations_gl) << context;
  EXPECT_EQ(a.violations_be, b.violations_be) << context;
  EXPECT_EQ(a.windows_checked, b.windows_checked) << context;
  EXPECT_EQ(a.flight_dump, b.flight_dump) << context;
}

TEST(ScenarioBatch, GoldenCorpusResultsIdenticalToSerial) {
  CheckOptions opts;
  opts.monitor = true;
  opts.flight_recorder = 128;
  std::vector<Scenario> scenarios;
  for (const auto& file : corpus()) {
    scenarios.push_back(load_scenario(file.string()));
  }
  ASSERT_GE(scenarios.size(), 9u);

  std::vector<RunResult> serial;
  std::uint64_t grants = 0;
  for (const Scenario& s : scenarios) {
    serial.push_back(run_scenario(s, opts));
    grants += serial.back().grants_checked;
  }
  EXPECT_GT(grants, 0u) << "corpus checked no grants — comparison is vacuous";

  const std::vector<RunResult> batched = run_scenario_batch(scenarios, opts);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_equal_results(serial[i], batched[i], scenarios[i].name);
  }
}

TEST(ScenarioBatch, CampaignVerdictsIdenticalAtWidths1And4And8) {
  // 200 generated scenarios — the fuzz campaign's own unit of work — split
  // into blocks of each width, exactly as `ssq_fuzz --batch` and the
  // batched shard runner do. Every RunResult field must match the serial
  // run, scenario for scenario.
  constexpr std::uint64_t kScenarios = 200;
  CheckOptions opts;
  std::vector<Scenario> scenarios;
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    scenarios.push_back(generate_scenario(i, 2027));
  }
  std::vector<RunResult> serial;
  for (const Scenario& s : scenarios) {
    serial.push_back(run_scenario(s, opts));
  }
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
    std::vector<RunResult> batched;
    for (std::size_t start = 0; start < scenarios.size(); start += width) {
      const std::size_t count =
          std::min(width, scenarios.size() - start);
      const std::span<const Scenario> block(scenarios.data() + start, count);
      std::vector<RunResult> results = run_scenario_batch(block, opts);
      for (auto& r : results) batched.push_back(std::move(r));
    }
    ASSERT_EQ(batched.size(), serial.size()) << "width " << width;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_equal_results(serial[i], batched[i],
                           scenarios[i].name + " width " +
                               std::to_string(width));
    }
  }
}

}  // namespace
}  // namespace ssq::check
