// ThreadPool / run_batch coverage: result ordering, serial equivalence at
// any thread count, lowest-index exception semantics, and pool reuse across
// batches. Determinism here is what lets ssq_fuzz --jobs and the sweep
// benches promise byte-identical output regardless of parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace ssq::exec {
namespace {

/// A cheap deterministic per-index value with enough mixing that ordering
/// bugs can't cancel out.
std::uint64_t mix(std::uint64_t i) {
  std::uint64_t x = i * 0x9E3779B97F4A7C15ull + 1;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 29;
  return x;
}

TEST(ThreadPool, InlineWhenOneThreadRequested) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.run_indexed(5, [&](std::size_t i) { order.push_back(i); });
  // Inline mode runs on the calling thread, strictly in order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroThreadsMeansOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, RunBatchReturnsResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out = run_batch<std::uint64_t>(pool, 1000, mix);
  ASSERT_EQ(out.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], mix(i));
}

TEST(ThreadPool, ResultsIdenticalAcrossThreadCounts) {
  ThreadPool serial(1);
  const auto expected = run_batch<std::uint64_t>(serial, 500, mix);
  for (unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run_batch<std::uint64_t>(pool, 500, mix), expected)
        << threads << " threads";
  }
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2000);
  pool.run_indexed(2000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run_indexed(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Indices are claimed in order from one atomic counter, so index 3 is
  // always claimed before index 7; whichever subset of throwers actually
  // runs, the rethrown exception must be the lowest-index one — the same
  // exception a serial loop would have surfaced.
  for (unsigned threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    try {
      pool.run_indexed(50, [](std::size_t i) {
        if (i == 3 || i == 7) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected an exception at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << threads << " threads";
    }
  }
}

TEST(ThreadPool, UsableAgainAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(
                   10, [](std::size_t i) {
                     if (i == 0) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  const auto out = run_batch<std::uint64_t>(pool, 100, mix);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], mix(i));
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::uint64_t total = 0;
  for (int batch = 0; batch < 20; ++batch) {
    const auto out = run_batch<std::uint64_t>(
        pool, 64, [&](std::size_t i) { return i + 1; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 20ull * (64ull * 65ull / 2ull));
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(CancelToken, PreCancelledBatchRunsNothing) {
  CancelToken token;
  token.cancel();
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<std::uint64_t> ran{0};
    const std::size_t done = pool.run_indexed(
        100, [&](std::size_t) { ran.fetch_add(1); }, &token);
    EXPECT_EQ(done, 0u) << threads << " threads";
    EXPECT_EQ(ran.load(), 0u) << threads << " threads";
  }
}

TEST(CancelToken, NullTokenAndUncancelledTokenRunEverything) {
  ThreadPool pool(4);
  CancelToken token;
  std::size_t done = 0;
  const auto out =
      run_batch<std::uint64_t>(pool, 200, mix, &token, &done);
  EXPECT_EQ(done, 200u);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(out[i], mix(i));
}

TEST(CancelToken, MidBatchCancelCompletesExactlyAPrefix) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    CancelToken token;
    // Distinct elements written by distinct indices: no data race, and the
    // pool joins before we read.
    std::vector<unsigned char> ran(1000, 0);
    std::size_t done = 0;
    run_batch<int>(
        pool, 1000,
        [&](std::size_t i) {
          if (i == 37) token.cancel();
          ran[i] = 1;
          return 0;
        },
        &token, &done);
    // Every index below the reported count ran, nothing at or above it —
    // cancellation never leaves holes (claims come from one counter).
    EXPECT_GE(done, 38u) << threads << " threads";
    EXPECT_LT(done, 1000u) << threads << " threads";
    for (std::size_t i = 0; i < 1000; ++i) {
      EXPECT_EQ(ran[i] != 0, i < done)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(CancelToken, ResetMakesThePoolUsableAgain) {
  ThreadPool pool(4);
  CancelToken token;
  token.cancel();
  EXPECT_EQ(pool.run_indexed(10, [](std::size_t) {}, &token), 0u);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(pool.run_indexed(10, [](std::size_t) {}, &token), 10u);
}

}  // namespace
}  // namespace ssq::exec
