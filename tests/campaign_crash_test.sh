#!/bin/sh
# Process-level durability test for ssq_campaign (see docs/CAMPAIGN.md):
#
#   1. run a reference campaign to completion;
#   2. run the same campaign throttled, SIGKILL the supervisor once at least
#      three verdicts are journaled (workers die with it via PDEATHSIG);
#   3. --resume must finish only the unfinished units — every unit ends with
#      exactly one done record — and produce a report.json byte-identical to
#      the reference (cmp, not jq: byte equality IS the claim);
#   4. separately, SIGTERM must drain gracefully: exit 3, a partial report
#      marked resumable, and a clean resume afterwards.
#
# Usage: campaign_crash_test.sh <path-to-ssq_campaign>
set -eu

BIN=$1
TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssq_campaign_crash.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

SCENARIOS=12
SHARDS=4
TOTAL=$SCENARIOS  # one grid point

fail() { echo "FAIL: $*" >&2; exit 1; }

done_records() {
  cat "$1"/shard-*.ckpt.jsonl 2>/dev/null | grep -c '"t":"d"' || true
}

# --- reference run ----------------------------------------------------------
"$BIN" --new="$TMP/ref" --scenarios=$SCENARIOS --shards=$SHARDS --quiet \
  || fail "reference campaign exited $?"
[ "$(done_records "$TMP/ref")" -eq "$TOTAL" ] \
  || fail "reference campaign did not finish all $TOTAL units"

# --- kill -9 mid-campaign, then resume --------------------------------------
"$BIN" --new="$TMP/crash" --scenarios=$SCENARIOS --shards=$SHARDS \
  --throttle-ms=40 --quiet &
SUP=$!
i=0
while [ "$(done_records "$TMP/crash")" -lt 3 ]; do
  i=$((i + 1))
  [ "$i" -gt 600 ] && fail "timed out waiting for the campaign to make progress"
  sleep 0.05
done
kill -9 "$SUP" 2>/dev/null || true
wait "$SUP" 2>/dev/null || true
sleep 0.2  # let PDEATHSIG reap the workers

SURVIVED=$(done_records "$TMP/crash")
[ "$SURVIVED" -lt "$TOTAL" ] \
  || fail "campaign finished before the kill landed; nothing was tested"

"$BIN" --resume="$TMP/crash" --quiet || fail "--resume exited $?"

# Exactly one done record per unit: finished units were skipped, not re-run.
AFTER=$(done_records "$TMP/crash")
[ "$AFTER" -eq "$TOTAL" ] \
  || fail "expected $TOTAL done records after resume, got $AFTER (finished units re-ran or work was lost)"

cmp "$TMP/ref/report.json" "$TMP/crash/report.json" \
  || fail "resumed report.json differs from the uninterrupted reference"

# --- SIGTERM graceful drain, then resume ------------------------------------
"$BIN" --new="$TMP/drain" --scenarios=$SCENARIOS --shards=$SHARDS \
  --throttle-ms=40 --quiet &
SUP=$!
i=0
while [ "$(done_records "$TMP/drain")" -lt 2 ]; do
  i=$((i + 1))
  [ "$i" -gt 600 ] && fail "timed out waiting for the drain campaign"
  sleep 0.05
done
kill -TERM "$SUP" 2>/dev/null || true
set +e
wait "$SUP"
CODE=$?
set -e
[ "$CODE" -eq 3 ] || fail "drained supervisor exited $CODE, expected 3 (resumable)"
grep -q '"resumable":true' "$TMP/drain/report.json" \
  || fail "drained report.json not marked resumable"

"$BIN" --resume="$TMP/drain" --quiet || fail "post-drain --resume exited $?"
cmp "$TMP/ref/report.json" "$TMP/drain/report.json" \
  || fail "post-drain report.json differs from the uninterrupted reference"

echo "ok: kill -9 survived with $SURVIVED/$TOTAL units; resume and drain both byte-identical"
