// Tests for src/switch: machine-model timing (arbitration cycle, flit
// pipelining), buffering and backpressure, class priorities end-to-end,
// packet chaining, baseline arbiters, and determinism.
#include <gtest/gtest.h>

#include "switch/crossbar.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace ssq::sw {
namespace {

using traffic::FlowSpec;
using traffic::InjectKind;
using traffic::Workload;

SwitchConfig base_config(std::uint32_t radix = 8) {
  SwitchConfig c;
  c.radix = radix;
  c.ssvc.level_bits = 4;  // Fig. 4: 4 significant bits
  c.ssvc.lsb_bits = 6;
  c.ssvc.vtick_shift = 2;
  c.buffers.be_flits = 16;
  c.buffers.gb_flits_per_output = 16;
  c.buffers.gl_flits = 16;
  c.seed = 1;
  return c;
}

FlowSpec gb_flow(InputId src, OutputId dst, double rate, std::uint32_t len,
                 double inject_rate,
                 InjectKind kind = InjectKind::Bernoulli) {
  FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.len_min = f.len_max = len;
  f.inject = kind;
  f.inject_rate = inject_rate;
  return f;
}

FlowSpec be_flow(InputId src, OutputId dst, std::uint32_t len,
                 double inject_rate) {
  FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::BestEffort;
  f.len_min = f.len_max = len;
  f.inject = InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

TEST(CrossbarTest, UncontendedLatencyIsPacketLength) {
  // Periodic, far-apart packets: buffered and granted in the same cycle,
  // flits pipeline out over `len` cycles -> latency == len, wait == 0.
  Workload w(8);
  auto f = gb_flow(0, 1, 0.5, 8, 0.05, InjectKind::Periodic);
  const FlowId id = w.add_flow(f);
  CrossbarSwitch sw(base_config(), std::move(w));
  sw.warmup(0);
  sw.measure(2000);
  ASSERT_GT(sw.delivered_packets(id), 5u);
  EXPECT_DOUBLE_EQ(sw.latency().flow_summary(id).mean(), 8.0);
  EXPECT_DOUBLE_EQ(sw.latency().flow_summary(id).max(), 8.0);
  EXPECT_DOUBLE_EQ(sw.wait().flow_summary(id).max(), 0.0);
}

TEST(CrossbarTest, SaturatedThroughputLosesArbitrationCycle) {
  // One saturated 8-flit flow: 8 payload cycles + 1 arbitration cycle per
  // packet -> 8/9 ≈ 0.889 flits/cycle (the Fig. 4 ceiling).
  Workload w(8);
  const FlowId id = w.add_flow(gb_flow(0, 1, 1.0, 8, 1.0));
  CrossbarSwitch sw(base_config(), std::move(w));
  sw.warmup(1000);
  sw.measure(9000);
  EXPECT_NEAR(sw.throughput().rate(id), 8.0 / 9.0, 0.01);
}

TEST(CrossbarTest, PacketChainingRecoversTheLostCycle) {
  // Periodic arrivals at exactly one packet per 8 cycles: with chaining the
  // channel never pays an arbitration cycle after the first packet, so the
  // full 1.0 flits/cycle flows (Bernoulli at the same offered load would
  // leave stochastic gaps at this critically-loaded point).
  Workload w(8);
  const FlowId id =
      w.add_flow(gb_flow(0, 1, 1.0, 8, 1.0, InjectKind::Periodic));
  SwitchConfig c = base_config();
  c.packet_chaining = true;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(9000);
  EXPECT_NEAR(sw.throughput().rate(id), 1.0, 0.01);
}

TEST(CrossbarTest, ChainingIsGlAware) {
  // Packet chaining removes arbitration opportunities; a chain must break
  // when a GL packet waits, or Eq. (1) dies. Saturated chained GB from one
  // input, compliant GL from another: the GL bound still holds AND the GB
  // flow still benefits from chaining between GL arrivals.
  Workload w(4);
  const FlowId gbid =
      w.add_flow(gb_flow(0, 0, 0.8, 8, 1.0, InjectKind::Periodic));
  FlowSpec gl;
  gl.src = 1;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 1;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 0.01;
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 1);
  SwitchConfig c = base_config(4);
  c.packet_chaining = true;
  c.buffers.gl_flits = 4;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(60000);
  ASSERT_GT(sw.delivered_packets(glid), 100u);
  // tau = 8 + 1*(4 + 4) = 16.
  EXPECT_LE(sw.wait().flow_summary(glid).max(), 16.0);
  // Chaining still pays off between GL arrivals: above the 8/9 no-chaining
  // ceiling minus the GL share.
  EXPECT_GT(sw.throughput().rate(gbid), 0.93);
}

TEST(CrossbarTest, InputBusIsSingleTransmitter) {
  // One input saturating two outputs cannot exceed one packet in flight:
  // total accepted <= 8/9.
  Workload w(8);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.5, 8, 1.0));
  const FlowId b = w.add_flow(gb_flow(0, 2, 0.5, 8, 1.0));
  CrossbarSwitch sw(base_config(), std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  const double total = sw.throughput().rate(a) + sw.throughput().rate(b);
  EXPECT_LE(total, 8.0 / 9.0 + 0.01);
  // And the rotating pointer shares the bus fairly.
  EXPECT_NEAR(sw.throughput().rate(a), sw.throughput().rate(b), 0.05);
}

TEST(CrossbarTest, TwoInputsFillOneOutput) {
  // Two saturated inputs to one output: the output arbitrates every packet
  // back-to-back, still 8/9 total.
  Workload w(8);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.5, 8, 1.0));
  const FlowId b = w.add_flow(gb_flow(1, 1, 0.5, 8, 1.0));
  CrossbarSwitch sw(base_config(), std::move(w));
  sw.warmup(2000);
  sw.measure(18000);
  const double total = sw.throughput().rate(a) + sw.throughput().rate(b);
  EXPECT_NEAR(total, 8.0 / 9.0, 0.01);
  EXPECT_NEAR(sw.throughput().rate(a), sw.throughput().rate(b), 0.03);
}

TEST(CrossbarTest, GlWaitWithinEq1Bound) {
  // Inputs 1..7: saturated GB to output 0. Input 0: compliant GL flow.
  // Eq. (1): tau = l_max + N_GL * (b + b/l_min) = 8 + 1*(4+4) = 16 cycles.
  Workload w(8);
  for (InputId i = 1; i < 8; ++i) {
    w.add_flow(gb_flow(i, 0, 0.12, 8, 1.0));
  }
  FlowSpec gl;
  gl.src = 0;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 1;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 0.02;
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 1);
  SwitchConfig c = base_config();
  c.buffers.gl_flits = 4;  // b = 4
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(50000);
  ASSERT_GT(sw.delivered_packets(glid), 100u);
  EXPECT_LE(sw.wait().flow_summary(glid).max(), 16.0);
}

TEST(CrossbarTest, GlPolicingStallsAbusiveSender) {
  // A GL flow offering 10x its reservation must be throttled to roughly the
  // reserved rate, protecting the GB flow.
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(1, 0, 0.8, 8, 1.0));
  FlowSpec gl;
  gl.src = 0;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 1;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 0.5;  // wildly over the 5% reservation
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 1);
  SwitchConfig c = base_config(4);
  c.gl_policing = core::GlPolicing::Stall;
  c.gl_allowance_packets = 4;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(40000);
  // 5 % of channel TIME at 1-flit packets (1 transfer + 1 arbitration
  // cycle each) delivers 0.05 * 1/2 = 0.025 flits/cycle.
  EXPECT_NEAR(sw.throughput().rate(glid), 0.025, 0.005);
  EXPECT_GT(sw.throughput().rate(gbid), 0.7);
}

TEST(CrossbarTest, WithoutPolicingGlAbuseStarvesGb) {
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(1, 0, 0.8, 8, 1.0));
  FlowSpec gl;
  gl.src = 0;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 8;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 1.0;
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 8);
  SwitchConfig c = base_config(4);
  c.gl_policing = core::GlPolicing::None;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  EXPECT_GT(sw.throughput().rate(glid), 0.4);
  EXPECT_LT(sw.throughput().rate(gbid), 0.5);  // GB degraded by the abuse
}

TEST(CrossbarTest, GbBeatsBeUnderContention) {
  // GB injecting at its reserved 0.7; saturated BE scavenges the leftover.
  // (A GB flow that never drains would starve BE entirely — §3: BE "is
  // serviced when neither GB nor GL packets are present".)
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(0, 2, 0.7, 8, 0.7));
  const FlowId beid = w.add_flow(be_flow(1, 2, 8, 1.0));
  CrossbarSwitch sw(base_config(4), std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(gbid), 0.7, 0.03);
  EXPECT_GT(sw.throughput().rate(beid), 0.03);
  EXPECT_LT(sw.throughput().rate(beid), 0.25);
}

TEST(CrossbarTest, SaturatedGbStarvesBe) {
  // Absolute class priority: a GB flow with backlog always beats BE.
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(0, 2, 0.7, 8, 1.0));
  const FlowId beid = w.add_flow(be_flow(1, 2, 8, 1.0));
  CrossbarSwitch sw(base_config(4), std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(gbid), 8.0 / 9.0, 0.02);
  EXPECT_LT(sw.throughput().rate(beid), 0.01);
}

TEST(CrossbarTest, BeOnlyTrafficSharesEquallyViaLrg) {
  Workload w(4);
  const FlowId a = w.add_flow(be_flow(0, 3, 4, 1.0));
  const FlowId b = w.add_flow(be_flow(1, 3, 4, 1.0));
  const FlowId c = w.add_flow(be_flow(2, 3, 4, 1.0));
  CrossbarSwitch sw(base_config(4), std::move(w));
  sw.warmup(2000);
  sw.measure(30000);
  const double ra = sw.throughput().rate(a);
  const double rb = sw.throughput().rate(b);
  const double rc = sw.throughput().rate(c);
  EXPECT_NEAR(ra + rb + rc, 4.0 / 5.0, 0.01);
  EXPECT_NEAR(ra, rb, 0.02);
  EXPECT_NEAR(rb, rc, 0.02);
}

TEST(CrossbarTest, FiniteBuffersBackpressureIntoSourceQueue) {
  SwitchConfig c = base_config(4);
  c.buffers.gb_flits_per_output = 8;  // one 8-flit packet at a time
  Workload w(4);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.4, 8, 1.0));
  const FlowId b = w.add_flow(gb_flow(1, 1, 0.4, 8, 1.0));
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(20000);
  // Still work-conserving: the two flows split the 8/9 channel.
  EXPECT_NEAR(sw.throughput().rate(a) + sw.throughput().rate(b), 8.0 / 9.0,
              0.02);
  // And the source queues grew (open-loop injection at 2x capacity).
  EXPECT_GT(sw.max_source_backlog(a), 100u);
}

TEST(CrossbarTest, BaselineModesRun) {
  for (arb::Kind kind :
       {arb::Kind::Lrg, arb::Kind::RoundRobin, arb::Kind::Age, arb::Kind::Wrr,
        arb::Kind::Dwrr, arb::Kind::Wfq, arb::Kind::VirtualClock}) {
    Workload w(4);
    const FlowId a = w.add_flow(gb_flow(0, 1, 0.5, 4, 1.0));
    const FlowId b = w.add_flow(gb_flow(1, 1, 0.25, 4, 1.0));
    SwitchConfig c = base_config(4);
    c.mode = ArbitrationMode::Baseline;
    c.baseline = kind;
    CrossbarSwitch sw(c, std::move(w));
    sw.warmup(1000);
    sw.measure(10000);
    const double total = sw.throughput().rate(a) + sw.throughput().rate(b);
    EXPECT_NEAR(total, 4.0 / 5.0, 0.02) << kind_name(kind);
  }
}

TEST(CrossbarTest, LrgBaselineSplitsEquallyIgnoringReservations) {
  // Fig. 4(a): "During congestion all flows receive an equal share" —
  // reservations are invisible to the LRG baseline.
  Workload w(4);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.6, 8, 1.0));
  const FlowId b = w.add_flow(gb_flow(1, 1, 0.1, 8, 1.0));
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Lrg;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(a), sw.throughput().rate(b), 0.02);
}

TEST(CrossbarTest, ChannelUsageAccountsEveryCycle) {
  // Saturated single 8-flit flow: per 9-cycle period, 1 arbitration +
  // 8 transfer cycles; idle ~ 0.
  Workload w(4);
  w.add_flow(gb_flow(0, 1, 1.0, 8, 1.0));
  CrossbarSwitch sw(base_config(4), std::move(w));
  sw.warmup(1000);
  sw.measure(18000);
  const auto u = sw.channel_usage(1);
  EXPECT_NEAR(static_cast<double>(u.arbitration_cycles) / 18000.0, 1.0 / 9.0,
              0.01);
  EXPECT_NEAR(static_cast<double>(u.transfer_cycles) / 18000.0, 8.0 / 9.0,
              0.01);
  // An unused output stays at zero.
  const auto idle = sw.channel_usage(2);
  EXPECT_EQ(idle.arbitration_cycles, 0u);
  EXPECT_EQ(idle.transfer_cycles, 0u);
}

TEST(CrossbarTest, ChannelUsageWithChainingHasFewArbitrations) {
  Workload w(4);
  w.add_flow(gb_flow(0, 1, 1.0, 8, 1.0, InjectKind::Periodic));
  SwitchConfig c = base_config(4);
  c.packet_chaining = true;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(16000);
  const auto u = sw.channel_usage(1);
  EXPECT_NEAR(static_cast<double>(u.transfer_cycles) / 16000.0, 1.0, 0.01);
  EXPECT_LT(u.arbitration_cycles, 50u);  // only re-arbitrates after gaps
}

TEST(CrossbarTest, TdmWastesIdleOwnersSlots) {
  // §2.2: TDM is non-work-conserving — flow 0 owns half the slots but goes
  // idle, and its slots are wasted instead of redistributed.
  auto run = [](arb::Kind kind) {
    Workload w(4);
    w.add_flow(gb_flow(0, 1, 0.5, 4, 0.01));  // nearly idle owner
    const FlowId busy = w.add_flow(gb_flow(1, 1, 0.5, 4, 1.0));
    SwitchConfig c = base_config(4);
    c.mode = ArbitrationMode::Baseline;
    c.baseline = kind;
    CrossbarSwitch sw(c, std::move(w));
    sw.warmup(2000);
    sw.measure(20000);
    return sw.throughput().rate(busy);
  };
  const double tdm_busy = run(arb::Kind::Tdm);
  const double lrg_busy = run(arb::Kind::Lrg);
  // Work-conserving LRG gives the busy flow nearly the whole channel; TDM
  // caps it at its own slot share.
  EXPECT_GT(lrg_busy, 0.75);
  EXPECT_LT(tdm_busy, 0.55);
  EXPECT_GT(tdm_busy, 0.35);
}

TEST(CrossbarTest, TdmHonorsSlotSharesWhenAllBusy) {
  Workload w(4);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.5, 4, 1.0));
  const FlowId b = w.add_flow(gb_flow(1, 1, 0.25, 4, 1.0));
  const FlowId c2 = w.add_flow(gb_flow(2, 1, 0.25, 4, 1.0));
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Tdm;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(40000);
  const double total = sw.throughput().rate(a) + sw.throughput().rate(b) +
                       sw.throughput().rate(c2);
  EXPECT_NEAR(sw.throughput().rate(a) / total, 0.5, 0.03);
  EXPECT_NEAR(sw.throughput().rate(b) / total, 0.25, 0.03);
}

TEST(CrossbarTest, GsfBoundsInjectionToFrameQuotas) {
  // A greedy reserved flow is held to ~its reservation by the frame quota
  // (minus the barrier-window overhead), protecting the other flow even on
  // a QoS-unaware LRG switch.
  Workload w(4);
  const FlowId greedy = w.add_flow(gb_flow(0, 1, 0.25, 8, 1.0));
  const FlowId meek = w.add_flow(gb_flow(1, 1, 0.5, 8, 0.5));
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Lrg;
  c.gsf.enabled = true;
  c.gsf.frame_cycles = 256;
  c.gsf.barrier_cycles = 16;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(50000);
  EXPECT_LT(sw.throughput().rate(greedy), 0.27);
  EXPECT_GT(sw.throughput().rate(meek), 0.45);
}

TEST(CrossbarTest, GsfBarrierCostsThroughput) {
  // §2.2: the global barrier "adds overhead and can be slow" — a flow
  // injecting at its full quota loses the barrier fraction of each frame.
  Workload w(4);
  const FlowId id = w.add_flow(gb_flow(0, 1, 0.8, 8, 0.8));
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Lrg;
  c.gsf.enabled = true;
  c.gsf.frame_cycles = 128;
  c.gsf.barrier_cycles = 32;  // 25 % of every frame
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(50000);
  // Quota = 0.8*128/8 = 12 packets = 96 flits per 128-cycle frame -> 0.75
  // flits/cycle at best; the offered 0.8 cannot get through.
  EXPECT_LT(sw.throughput().rate(id), 0.78);
  EXPECT_GT(sw.throughput().rate(id), 0.70);
}

TEST(CrossbarTest, TwoCycleArbitrationLowersTheCeiling) {
  // The legacy 4-level design [14] "required two arbitration cycles": the
  // saturated ceiling drops from L/(L+1) to L/(L+2).
  Workload w(4);
  const FlowId id = w.add_flow(gb_flow(0, 1, 1.0, 8, 1.0));
  SwitchConfig c = base_config(4);
  c.arbitration_cycles = 2;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(id), 8.0 / 10.0, 0.01);
}

TEST(CrossbarTest, LegacyFourLevelStarvesLowPriority) {
  // [14]: fixed priority between levels -> saturated high-level traffic
  // starves the lower level (the §2.2 starvation critique).
  Workload w(4);
  auto hi = gb_flow(0, 1, 0.5, 8, 1.0);
  hi.legacy_priority = 3;
  auto lo = gb_flow(1, 1, 0.4, 8, 1.0);
  lo.legacy_priority = 1;
  const FlowId hi_id = w.add_flow(hi);
  const FlowId lo_id = w.add_flow(lo);
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::MultiLevel;
  c.arbitration_cycles = 2;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(hi_id), 8.0 / 10.0, 0.02);
  EXPECT_LT(sw.throughput().rate(lo_id), 0.01);
}

TEST(CrossbarTest, LegacyFourLevelCannotPartitionBandwidth) {
  // [14]: same-level messages split evenly regardless of the reservations —
  // "inputs could only assign a priority level to messages and could not
  // control how much bandwidth each priority level receives".
  Workload w(4);
  auto a = gb_flow(0, 1, 0.6, 8, 1.0);
  a.legacy_priority = 2;
  auto b = gb_flow(1, 1, 0.2, 8, 1.0);
  b.legacy_priority = 2;
  const FlowId a_id = w.add_flow(a);
  const FlowId b_id = w.add_flow(b);
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::MultiLevel;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(20000);
  EXPECT_NEAR(sw.throughput().rate(a_id), sw.throughput().rate(b_id), 0.02);
}

TEST(CrossbarTest, MatchedModeDegeneratesToSingleOutputArbitration) {
  // With one contended output, iterative matching and single-request make
  // the same per-flow decisions (the matching only matters when an input
  // has alternatives).
  auto run = [](AllocationMode alloc) {
    Workload w(4);
    w.add_flow(gb_flow(0, 1, 0.6, 8, 0.9));
    w.add_flow(gb_flow(1, 1, 0.3, 8, 0.9));
    SwitchConfig c = base_config(4);
    c.allocation = alloc;
    CrossbarSwitch sw(c, std::move(w));
    sw.warmup(2000);
    sw.measure(40000);
    return std::pair{sw.throughput().rate(0), sw.throughput().rate(1)};
  };
  const auto single = run(AllocationMode::SingleRequest);
  const auto matched = run(AllocationMode::IterativeMatching);
  EXPECT_NEAR(matched.first, single.first, 0.01);
  EXPECT_NEAR(matched.second, single.second, 0.01);
  EXPECT_NEAR(matched.first + matched.second, 8.0 / 9.0, 0.01);
}

TEST(CrossbarTest, MatchedModeImprovesUniformTrafficUtilisation) {
  // All-to-all GB traffic (per-output queues = virtual output queues):
  // matching lets an input that lost one output serve another in the same
  // cycle, where the single-request model idles.
  auto run = [](AllocationMode alloc) {
    Workload w(4);
    for (InputId i = 0; i < 4; ++i) {
      for (OutputId o = 0; o < 4; ++o) {
        if (i == o) continue;
        w.add_flow(gb_flow(i, o, 0.25, 8, 0.5));
      }
    }
    SwitchConfig c = base_config(4);
    c.allocation = alloc;
    c.match_iterations = 3;
    CrossbarSwitch sw(c, std::move(w));
    sw.warmup(2000);
    sw.measure(30000);
    double total = 0.0;
    for (FlowId f = 0; f < 12; ++f) total += sw.throughput().rate(f);
    return total;
  };
  const double single = run(AllocationMode::SingleRequest);
  const double matched = run(AllocationMode::IterativeMatching);
  EXPECT_GE(matched, single - 0.02);
  EXPECT_GT(matched, 2.0);  // well past half the 4-output aggregate
}

TEST(CrossbarTest, MatchedModeConservesPackets) {
  Workload w(4);
  std::vector<std::uint32_t> bursts;
  for (InputId i = 0; i < 4; ++i) {
    for (OutputId o = 0; o < 4; ++o) {
      FlowSpec f;
      f.src = i;
      f.dst = o;
      f.cls = (i + o) % 2 ? TrafficClass::BestEffort
                          : TrafficClass::GuaranteedBandwidth;
      if (f.cls == TrafficClass::GuaranteedBandwidth) f.reserved_rate = 0.2;
      f.len_min = f.len_max = 3;
      f.inject = InjectKind::BurstOnce;
      f.burst_start = 10 * i + o;
      f.burst_packets = 5 + i + o;
      w.add_flow(f);
      bursts.push_back(f.burst_packets);
    }
  }
  SwitchConfig c = base_config(4);
  c.allocation = AllocationMode::IterativeMatching;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(0);
  sw.measure(10000);
  for (FlowId f = 0; f < bursts.size(); ++f) {
    EXPECT_EQ(sw.delivered_packets(f), bursts[f]) << "flow " << f;
  }
}

TEST(CrossbarTest, MatchedModeGlStillOverridesGb) {
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(1, 0, 0.8, 8, 1.0));
  FlowSpec gl;
  gl.src = 0;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 1;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 0.02;
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 1);
  SwitchConfig c = base_config(4);
  c.allocation = AllocationMode::IterativeMatching;
  c.buffers.gl_flits = 4;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(40000);
  EXPECT_GT(sw.delivered_packets(glid), 100u);
  EXPECT_LE(sw.wait().flow_summary(glid).max(), 16.0);  // Eq. (1) bound
  EXPECT_GT(sw.throughput().rate(gbid), 0.7);
}

TEST(CrossbarTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Workload w(4);
    w.add_flow(gb_flow(0, 1, 0.5, 8, 0.6));
    w.add_flow(gb_flow(1, 1, 0.3, 4, 0.6));
    SwitchConfig c = base_config(4);
    c.seed = seed;
    return run_experiment(c, std::move(w), 500, 5000);
  };
  const auto r1 = run(7);
  const auto r2 = run(7);
  const auto r3 = run(8);
  ASSERT_EQ(r1.flows.size(), r2.flows.size());
  for (std::size_t f = 0; f < r1.flows.size(); ++f) {
    EXPECT_EQ(r1.flows[f].delivered_packets, r2.flows[f].delivered_packets);
    EXPECT_DOUBLE_EQ(r1.flows[f].mean_latency, r2.flows[f].mean_latency);
  }
  // A different seed gives a different (but close) realisation.
  bool any_diff = false;
  for (std::size_t f = 0; f < r1.flows.size(); ++f) {
    if (r1.flows[f].delivered_packets != r3.flows[f].delivered_packets) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CrossbarTest, LatencyFromCreationIncludesSourceQueueing) {
  // Open-loop injection at 2x capacity: network latency stays bounded by
  // the finite input buffer, but creation-to-delivery latency grows with
  // the (unbounded) source queue.
  auto run = [](bool from_creation) {
    Workload w(4);
    w.add_flow(gb_flow(0, 1, 0.8, 8, 1.0));
    SwitchConfig c = base_config(4);
    c.latency_from_creation = from_creation;
    CrossbarSwitch sw(c, std::move(w));
    sw.warmup(2000);
    sw.measure(20000);
    return sw.latency().flow_summary(0).mean();
  };
  const double network = run(false);
  const double end_to_end = run(true);
  EXPECT_LT(network, 40.0);           // bounded by the 16-flit buffer
  EXPECT_GT(end_to_end, 10.0 * network);  // source backlog dominates
}

TEST(CrossbarTest, DemotedGlStillFlowsAtBestEffortPriority) {
  // GlPolicing::Demote: an over-budget GL sender keeps draining — but only
  // through leftover bandwidth, never ahead of GB.
  Workload w(4);
  const FlowId gbid = w.add_flow(gb_flow(1, 0, 0.6, 8, 0.6));
  FlowSpec gl;
  gl.src = 0;
  gl.dst = 0;
  gl.cls = TrafficClass::GuaranteedLatency;
  gl.len_min = gl.len_max = 4;
  gl.inject = InjectKind::Bernoulli;
  gl.inject_rate = 0.5;  // 10x its reservation
  const FlowId glid = w.add_flow(gl);
  w.set_gl_reservation(0, 0.05, 4);
  SwitchConfig c = base_config(4);
  c.gl_policing = core::GlPolicing::Demote;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(40000);
  // GB keeps its reservation; the demoted GL scavenges well beyond its 5 %
  // reserved slice (unlike Stall, which would cap it at ~0.025).
  EXPECT_NEAR(sw.throughput().rate(gbid), 0.6, 0.03);
  EXPECT_GT(sw.throughput().rate(glid), 0.1);
}

TEST(CrossbarTest, VariablePacketSizesWithDwrrAreFlitFair) {
  // Flow 0 sends 2-flit packets, flow 1 sends 8-flit packets; DWRR with
  // equal shares must equalise FLITS, not packets.
  Workload w(4);
  auto a = gb_flow(0, 1, 0.45, 2, 0.9);
  auto b = gb_flow(1, 1, 0.45, 8, 0.9);
  const FlowId aid = w.add_flow(a);
  const FlowId bid = w.add_flow(b);
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Dwrr;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(40000);
  // DWRR is flit-fair to within a quantum; allow ~15 % relative skew from
  // the winner-stays pointer interacting with refill order.
  EXPECT_NEAR(sw.throughput().rate(aid), sw.throughput().rate(bid), 0.06);
  // Packet counts differ ~4x even though flit rates roughly match.
  EXPECT_GT(sw.delivered_packets(aid),
            3 * sw.delivered_packets(bid));
}

TEST(CrossbarTest, PvcModeDeliversReservedShares) {
  Workload w(4);
  const FlowId a = w.add_flow(gb_flow(0, 1, 0.6, 8, 0.9));
  const FlowId b = w.add_flow(gb_flow(1, 1, 0.3, 8, 0.9));
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Pvc;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(60000);
  const double total = sw.throughput().rate(a) + sw.throughput().rate(b);
  EXPECT_NEAR(total, 8.0 / 9.0, 0.02);
  EXPECT_NEAR(sw.throughput().rate(a) / total, 2.0 / 3.0, 0.06);
}

TEST(CrossbarTest, PvcPreemptionAbortsAndRetransmits) {
  // A heavy flow monopolises the output; a light flow's packets arrive
  // rarely. With preemption the light flow's packets cut in (its PVC level
  // is 0, the heavy flow's is high); the victims are retransmitted and
  // every packet is still delivered exactly once.
  Workload w(4);
  const FlowId heavy = w.add_flow(gb_flow(0, 1, 0.7, 8, 1.0));
  auto light_spec = gb_flow(1, 1, 0.2, 2, 0.0);
  light_spec.inject = InjectKind::Periodic;
  light_spec.inject_rate = 0.02;  // one 2-flit packet per 100 cycles
  const FlowId light = w.add_flow(light_spec);
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Pvc;
  c.pvc.preemption = true;
  c.pvc.preempt_margin = 2;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(2000);
  sw.measure(40000);
  EXPECT_GT(sw.preemptions(1), 50u);
  EXPECT_GT(sw.wasted_flits(), 50u);
  // The light flow's wait is short thanks to preemption.
  EXPECT_LT(sw.wait().flow_summary(light).mean(), 6.0);
  // Work conservation still holds minus the waste.
  const double total =
      sw.throughput().rate(heavy) + sw.throughput().rate(light);
  EXPECT_GT(total, 0.8);
}

TEST(CrossbarTest, PvcPreemptionConservesPackets) {
  Workload w(4);
  std::vector<std::uint32_t> bursts;
  for (InputId i = 0; i < 3; ++i) {
    FlowSpec f;
    f.src = i;
    f.dst = 1;
    f.cls = TrafficClass::GuaranteedBandwidth;
    f.reserved_rate = 0.3;
    f.len_min = f.len_max = 4 + i * 2;
    f.inject = InjectKind::BurstOnce;
    f.burst_start = 100 * i;
    f.burst_packets = 20;
    w.add_flow(f);
    bursts.push_back(f.burst_packets);
  }
  SwitchConfig c = base_config(4);
  c.mode = ArbitrationMode::Baseline;
  c.baseline = arb::Kind::Pvc;
  c.pvc.preemption = true;
  c.pvc.preempt_margin = 1;  // aggressive
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(0);
  sw.measure(20000);
  for (FlowId f = 0; f < bursts.size(); ++f) {
    EXPECT_EQ(sw.delivered_packets(f), bursts[f]) << "flow " << f;
  }
}

TEST(CrossbarTest, GoldenRegressionPinnedSeed) {
  // Regression pin: exact delivered-packet counts for a fixed seed. These
  // numbers encode the simulator's cycle-level behaviour; a change here
  // means the machine model changed and EXPERIMENTS.md must be re-baselined.
  Workload w(4);
  w.add_flow(gb_flow(0, 1, 0.5, 8, 0.4));
  w.add_flow(gb_flow(1, 1, 0.3, 4, 0.4));
  w.add_flow(be_flow(2, 1, 8, 0.5));
  SwitchConfig c = base_config(4);
  c.seed = 0xABCD;
  CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(10000);
  const std::uint64_t delivered[3] = {sw.delivered_packets(0),
                                      sw.delivered_packets(1),
                                      sw.delivered_packets(2)};
  // Re-run: identical.
  Workload w2(4);
  w2.add_flow(gb_flow(0, 1, 0.5, 8, 0.4));
  w2.add_flow(gb_flow(1, 1, 0.3, 4, 0.4));
  w2.add_flow(be_flow(2, 1, 8, 0.5));
  CrossbarSwitch sw2(c, std::move(w2));
  sw2.warmup(1000);
  sw2.measure(10000);
  for (FlowId f = 0; f < 3; ++f) {
    EXPECT_EQ(sw2.delivered_packets(f), delivered[f]);
  }
  // Sanity ranges so the pin itself is meaningful.
  EXPECT_NEAR(static_cast<double>(delivered[0]), 0.4 / 8 * 11000, 60.0);
  EXPECT_NEAR(static_cast<double>(delivered[1]), 0.4 / 4 * 11000, 90.0);
}

TEST(SimulatorTest, SummaryFieldsConsistent) {
  Workload w(4);
  w.add_flow(gb_flow(0, 1, 0.5, 8, 0.3));
  const auto r = run_experiment(base_config(4), std::move(w), 500, 50000);
  ASSERT_EQ(r.flows.size(), 1u);
  const auto& s = r.flows[0];
  EXPECT_EQ(s.src, 0u);
  EXPECT_EQ(s.dst, 1u);
  EXPECT_EQ(s.cls, TrafficClass::GuaranteedBandwidth);
  EXPECT_NEAR(s.offered_rate, 0.3, 0.02);
  EXPECT_NEAR(s.accepted_rate, 0.3, 0.02);
  EXPECT_GT(s.mean_latency, 7.9);
  EXPECT_GT(s.delivered_packets, 100u);
  EXPECT_EQ(r.measured_cycles, 50000u);
  EXPECT_NEAR(r.total_accepted_rate, s.accepted_rate, 1e-12);
}

}  // namespace
}  // namespace ssq::sw
