// Parameterized property suites (TEST_P / INSTANTIATE_TEST_SUITE_P):
//   * rate adherence over 20 random allocation vectors x packet sizes
//     (§4.2's "20 combinations of reserved rates and a variety of packet
//     sizes ... within 2 % of their reserved rates"),
//   * throughput ceiling L/(L+1) across packet sizes,
//   * the Eq. (1) GL bound across GL population sizes,
//   * counter-policy invariants under random grant streams.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/aux_vc.hpp"
#include "core/output_arbiter.hpp"
#include "qosmath/gl_bound.hpp"
#include "qosmath/vtick_analysis.hpp"
#include "sim/rng.hpp"
#include "switch/simulator.hpp"
#include "traffic/workload.hpp"

namespace ssq {
namespace {

using sw::SwitchConfig;
using traffic::FlowSpec;
using traffic::InjectKind;
using traffic::Workload;

FlowSpec gb_flow(InputId src, OutputId dst, double rate, std::uint32_t len,
                 double inject_rate) {
  FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.cls = TrafficClass::GuaranteedBandwidth;
  f.reserved_rate = rate;
  f.len_min = f.len_max = len;
  f.inject = InjectKind::Bernoulli;
  f.inject_rate = inject_rate;
  return f;
}

SwitchConfig qos_config(core::CounterPolicy policy =
                            core::CounterPolicy::SubtractRealClock) {
  SwitchConfig c;
  c.radix = 8;
  c.ssvc.level_bits = 4;
  c.ssvc.lsb_bits = 5;
  c.ssvc.vtick_shift = 2;
  c.ssvc.policy = policy;
  c.seed = 99;
  return c;
}

/// Random admissible allocation over 8 inputs summing to ~0.9.
std::vector<double> random_rates(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  std::vector<double> r(8);
  double sum = 0.0;
  for (auto& v : r) {
    v = 0.02 + rng.uniform();
    sum += v;
  }
  for (auto& v : r) v = v / sum * 0.9;
  return r;
}

// ----------------------------------------- §4.2 rate-adherence sweep ----

class RateAdherenceP
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(RateAdherenceP, SaturatedFlowsReceiveReservedShares) {
  const auto [combo, packet_len] = GetParam();
  const auto rates = random_rates(static_cast<std::uint64_t>(combo));
  Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(gb_flow(i, 0, rates[i], packet_len, 0.9));  // all saturated
  }
  SwitchConfig c = qos_config();
  c.seed = static_cast<std::uint64_t>(combo) + 1;
  const auto r = sw::run_experiment(c, std::move(w), 5000, 60000);
  const double capacity = static_cast<double>(packet_len) / (packet_len + 1);
  EXPECT_NEAR(r.total_accepted_rate, capacity, 0.02);
  // Each flow gets at least its reserved fraction of the delivered total,
  // within a 2 % of-capacity tolerance plus Vtick quantisation.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GE(r.flows[i].accepted_rate,
              rates[i] * r.total_accepted_rate - 0.02)
        << "combo " << combo << " len " << packet_len << " flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TwentyCombinations, RateAdherenceP,
    ::testing::Combine(::testing::Range(0, 20),
                       ::testing::Values(8u)),
    [](const auto& pinfo) {
      return "combo" + std::to_string(std::get<0>(pinfo.param));
    });

INSTANTIATE_TEST_SUITE_P(
    PacketSizes, RateAdherenceP,
    ::testing::Combine(::testing::Values(3, 11),
                       ::testing::Values(1u, 2u, 4u, 16u)),
    [](const auto& pinfo) {
      return "combo" + std::to_string(std::get<0>(pinfo.param)) + "_len" +
             std::to_string(std::get<1>(pinfo.param));
    });

// ------------------------------------- counter policies keep adhering ----

class CounterPolicyP : public ::testing::TestWithParam<core::CounterPolicy> {};

TEST_P(CounterPolicyP, AdherenceHoldsUnderEveryPolicy) {
  // Fig. 5's caption: "All three methods were able to provide bandwidth to
  // flows on average within 2 % of their reserved rates."
  const std::vector<double> rates = {0.40, 0.20, 0.10, 0.10,
                                     0.05, 0.05, 0.05, 0.05};
  Workload w(8);
  for (InputId i = 0; i < 8; ++i) {
    w.add_flow(gb_flow(i, 0, rates[i], 8, 0.9));
  }
  SwitchConfig c = qos_config(GetParam());
  const auto r = sw::run_experiment(c, std::move(w), 5000, 100000);
  for (std::size_t i = 0; i < 8; ++i) {
    // The guarantee the hardware can make is against the QUANTISED Vtick:
    // the finite register shifts the effective reserved rate slightly.
    const double effective =
        qosmath::vtick_error(c.ssvc, rates[i], 8).effective_rate;
    EXPECT_GE(r.flows[i].accepted_rate,
              effective * r.total_accepted_rate - 0.02)
        << to_string(GetParam()) << " flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CounterPolicyP,
                         ::testing::Values(
                             core::CounterPolicy::SubtractRealClock,
                             core::CounterPolicy::Halve,
                             core::CounterPolicy::Reset),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

// ------------------------------------------- throughput ceiling L/(L+1) ----

class PacketSizeP : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PacketSizeP, SaturatedCeilingIsLOverLPlusOne) {
  const std::uint32_t len = GetParam();
  Workload w(8);
  const FlowId id = w.add_flow(gb_flow(0, 1, 1.0, len, 1.0));
  sw::CrossbarSwitch sw(qos_config(), std::move(w));
  sw.warmup(2000);
  sw.measure(20000);
  const double ceiling = static_cast<double>(len) / (len + 1);
  EXPECT_NEAR(sw.throughput().rate(id), ceiling, 0.01) << "len " << len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, PacketSizeP,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto& pinfo) {
                           return "len" + std::to_string(pinfo.param);
                         });

// ------------------------------------------------ Eq. (1) bound sweep ----

class GlBoundP : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GlBoundP, MeasuredWaitNeverExceedsEq1) {
  const std::uint32_t n_gl = GetParam();
  Workload w(8);
  // GB background from the remaining inputs, saturated.
  for (InputId i = n_gl; i < 8; ++i) {
    w.add_flow(gb_flow(i, 0, 0.5 / (8 - n_gl), 8, 1.0));
  }
  std::vector<FlowId> gl_flows;
  for (InputId i = 0; i < n_gl; ++i) {
    FlowSpec f;
    f.src = i;
    f.dst = 0;
    f.cls = TrafficClass::GuaranteedLatency;
    f.len_min = f.len_max = 2;
    f.inject = InjectKind::Bernoulli;
    f.inject_rate = 0.02;
    gl_flows.push_back(w.add_flow(f));
  }
  w.set_gl_reservation(0, 0.2, 2);
  SwitchConfig c = qos_config();
  c.buffers.gl_flits = 4;
  sw::CrossbarSwitch sw(c, std::move(w));
  sw.warmup(1000);
  sw.measure(60000);
  const double bound = qosmath::gl_wait_bound(
      {.l_max = 8, .l_min = 2, .n_gl = n_gl, .buffer_flits = 4});
  for (const FlowId f : gl_flows) {
    ASSERT_GT(sw.delivered_packets(f), 50u);
    EXPECT_LE(sw.wait().flow_summary(f).max(), bound) << "N_GL " << n_gl;
  }
}

INSTANTIATE_TEST_SUITE_P(Population, GlBoundP, ::testing::Values(1u, 2u, 4u),
                         [](const auto& pinfo) {
                           return "ngl" + std::to_string(pinfo.param);
                         });

// ------------------------------------------- packet conservation ----

class ConservationP : public ::testing::TestWithParam<int> {};

TEST_P(ConservationP, EveryInjectedPacketIsDeliveredExactlyOnce) {
  // Random single-burst workload over all classes; after the network drains,
  // delivered counts must equal created counts for every flow — no loss, no
  // duplication, regardless of buffering, arbitration, or class priorities.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  constexpr std::uint32_t kRadix = 6;
  Workload w(kRadix);
  std::vector<double> gb_budget(kRadix, 0.9);  // remaining GB rate per dst
  std::vector<std::uint32_t> bursts;
  const auto n_flows = 4 + rng.below(8);
  for (std::uint64_t k = 0; k < n_flows; ++k) {
    FlowSpec f;
    f.src = static_cast<InputId>(rng.below(kRadix));
    f.dst = static_cast<OutputId>(rng.below(kRadix));
    const auto cls = rng.below(3);
    f.len_min = 1 + static_cast<std::uint32_t>(rng.below(4));
    f.len_max = f.len_min + static_cast<std::uint32_t>(rng.below(4));
    f.inject = InjectKind::BurstOnce;
    f.burst_start = rng.below(500);
    f.burst_packets = 1 + static_cast<std::uint32_t>(rng.below(30));
    if (cls == 0) {
      f.cls = TrafficClass::BestEffort;
    } else if (cls == 1) {
      f.cls = TrafficClass::GuaranteedBandwidth;
      // A random admissible reservation; skip if this crosspoint is taken
      // or the destination budget is exhausted.
      if (gb_budget[f.dst] < 0.05) {
        f.cls = TrafficClass::BestEffort;
      } else {
        const double rate = 0.05 + rng.uniform() * (gb_budget[f.dst] - 0.05);
        f.cls = TrafficClass::GuaranteedBandwidth;
        f.reserved_rate = rate;
      }
    } else {
      f.cls = TrafficClass::GuaranteedLatency;  // no reservation: unpoliced
    }
    if (f.cls == TrafficClass::GuaranteedBandwidth) {
      // Crosspoint exclusivity: only one GB flow per (src, dst).
      bool taken = false;
      for (const auto& existing : w.flows()) {
        if (existing.cls == TrafficClass::GuaranteedBandwidth &&
            existing.src == f.src && existing.dst == f.dst) {
          taken = true;
        }
      }
      if (taken) f.cls = TrafficClass::BestEffort;
    }
    if (f.cls == TrafficClass::GuaranteedBandwidth) {
      gb_budget[f.dst] -= f.reserved_rate;
    } else {
      f.reserved_rate = 0.0;
    }
    w.add_flow(f);
    bursts.push_back(f.burst_packets);
  }

  SwitchConfig c = qos_config();
  c.radix = kRadix;
  c.seed = static_cast<std::uint64_t>(GetParam());
  sw::CrossbarSwitch sim(c, std::move(w));
  sim.warmup(0);
  sim.measure(30000);  // plenty of time to drain every burst
  for (FlowId f = 0; f < bursts.size(); ++f) {
    EXPECT_EQ(sim.created_packets(f), bursts[f]) << "flow " << f;
    EXPECT_EQ(sim.delivered_packets(f), bursts[f]) << "flow " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, ConservationP,
                         ::testing::Range(0, 10),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// ------------------------------------------------ AuxVc invariants ----

class AuxVcInvariantP : public ::testing::TestWithParam<core::CounterPolicy> {
};

TEST_P(AuxVcInvariantP, CodeLevelTracksValueUnderRandomOps) {
  core::SsvcParams p;
  p.level_bits = 3;
  p.lsb_bits = 5;
  p.policy = GetParam();
  core::AuxVc vc(p, 17);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int op = 0; op < 50000; ++op) {
    switch (rng.below(4)) {
      case 0:
        vc.on_grant(rng.below(p.epoch_cycles()));
        break;
      case 1:
        if (p.policy == core::CounterPolicy::SubtractRealClock)
          vc.epoch_wrap();
        break;
      case 2:
        if (p.policy == core::CounterPolicy::Halve) vc.halve();
        break;
      case 3:
        if (p.policy == core::CounterPolicy::Reset) vc.reset();
        break;
    }
    ASSERT_EQ(vc.code().level(), vc.level());
    ASSERT_LE(vc.value(), vc.cap());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AuxVcInvariantP,
                         ::testing::Values(
                             core::CounterPolicy::SubtractRealClock,
                             core::CounterPolicy::Halve,
                             core::CounterPolicy::Reset,
                             core::CounterPolicy::None),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

}  // namespace
}  // namespace ssq
